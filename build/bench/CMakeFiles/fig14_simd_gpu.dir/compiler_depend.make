# Empty compiler generated dependencies file for fig14_simd_gpu.
# This may be replaced when dependencies are built.
