file(REMOVE_RECURSE
  "CMakeFiles/fig14_simd_gpu.dir/fig14_simd_gpu.cc.o"
  "CMakeFiles/fig14_simd_gpu.dir/fig14_simd_gpu.cc.o.d"
  "fig14_simd_gpu"
  "fig14_simd_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_simd_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
