# Empty compiler generated dependencies file for fig12_cpi_stack.
# This may be replaced when dependencies are built.
