file(REMOVE_RECURSE
  "CMakeFiles/fig12_cpi_stack.dir/fig12_cpi_stack.cc.o"
  "CMakeFiles/fig12_cpi_stack.dir/fig12_cpi_stack.cc.o.d"
  "fig12_cpi_stack"
  "fig12_cpi_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpi_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
