file(REMOVE_RECURSE
  "CMakeFiles/fig17_memory.dir/fig17_memory.cc.o"
  "CMakeFiles/fig17_memory.dir/fig17_memory.cc.o.d"
  "fig17_memory"
  "fig17_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
