file(REMOVE_RECURSE
  "CMakeFiles/fig16_vector_configs.dir/fig16_vector_configs.cc.o"
  "CMakeFiles/fig16_vector_configs.dir/fig16_vector_configs.cc.o.d"
  "fig16_vector_configs"
  "fig16_vector_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_vector_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
