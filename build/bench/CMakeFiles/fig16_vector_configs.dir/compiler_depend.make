# Empty compiler generated dependencies file for fig16_vector_configs.
# This may be replaced when dependencies are built.
