file(REMOVE_RECURSE
  "CMakeFiles/fig15_characterization.dir/fig15_characterization.cc.o"
  "CMakeFiles/fig15_characterization.dir/fig15_characterization.cc.o.d"
  "fig15_characterization"
  "fig15_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
