# Empty compiler generated dependencies file for fig15_characterization.
# This may be replaced when dependencies are built.
