file(REMOVE_RECURSE
  "CMakeFiles/fig10_main_results.dir/fig10_main_results.cc.o"
  "CMakeFiles/fig10_main_results.dir/fig10_main_results.cc.o.d"
  "fig10_main_results"
  "fig10_main_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_main_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
