file(REMOVE_RECURSE
  "CMakeFiles/irregular_bfs.dir/irregular_bfs.cc.o"
  "CMakeFiles/irregular_bfs.dir/irregular_bfs.cc.o.d"
  "irregular_bfs"
  "irregular_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
