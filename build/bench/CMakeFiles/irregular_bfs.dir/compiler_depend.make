# Empty compiler generated dependencies file for irregular_bfs.
# This may be replaced when dependencies are built.
