
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/graph_bfs.cpp" "examples/CMakeFiles/graph_bfs.dir/graph_bfs.cpp.o" "gcc" "examples/CMakeFiles/graph_bfs.dir/graph_bfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/rc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/rc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/rc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/rc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/rc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
