
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bfs.cc" "src/kernels/CMakeFiles/rc_kernels.dir/bfs.cc.o" "gcc" "src/kernels/CMakeFiles/rc_kernels.dir/bfs.cc.o.d"
  "/root/repo/src/kernels/common.cc" "src/kernels/CMakeFiles/rc_kernels.dir/common.cc.o" "gcc" "src/kernels/CMakeFiles/rc_kernels.dir/common.cc.o.d"
  "/root/repo/src/kernels/emitters.cc" "src/kernels/CMakeFiles/rc_kernels.dir/emitters.cc.o" "gcc" "src/kernels/CMakeFiles/rc_kernels.dir/emitters.cc.o.d"
  "/root/repo/src/kernels/gramschm.cc" "src/kernels/CMakeFiles/rc_kernels.dir/gramschm.cc.o" "gcc" "src/kernels/CMakeFiles/rc_kernels.dir/gramschm.cc.o.d"
  "/root/repo/src/kernels/matmul_family.cc" "src/kernels/CMakeFiles/rc_kernels.dir/matmul_family.cc.o" "gcc" "src/kernels/CMakeFiles/rc_kernels.dir/matmul_family.cc.o.d"
  "/root/repo/src/kernels/matvec_family.cc" "src/kernels/CMakeFiles/rc_kernels.dir/matvec_family.cc.o" "gcc" "src/kernels/CMakeFiles/rc_kernels.dir/matvec_family.cc.o.d"
  "/root/repo/src/kernels/stencil_family.cc" "src/kernels/CMakeFiles/rc_kernels.dir/stencil_family.cc.o" "gcc" "src/kernels/CMakeFiles/rc_kernels.dir/stencil_family.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/rc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/rc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
