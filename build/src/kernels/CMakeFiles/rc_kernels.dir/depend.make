# Empty dependencies file for rc_kernels.
# This may be replaced when dependencies are built.
