file(REMOVE_RECURSE
  "CMakeFiles/rc_kernels.dir/bfs.cc.o"
  "CMakeFiles/rc_kernels.dir/bfs.cc.o.d"
  "CMakeFiles/rc_kernels.dir/common.cc.o"
  "CMakeFiles/rc_kernels.dir/common.cc.o.d"
  "CMakeFiles/rc_kernels.dir/emitters.cc.o"
  "CMakeFiles/rc_kernels.dir/emitters.cc.o.d"
  "CMakeFiles/rc_kernels.dir/gramschm.cc.o"
  "CMakeFiles/rc_kernels.dir/gramschm.cc.o.d"
  "CMakeFiles/rc_kernels.dir/matmul_family.cc.o"
  "CMakeFiles/rc_kernels.dir/matmul_family.cc.o.d"
  "CMakeFiles/rc_kernels.dir/matvec_family.cc.o"
  "CMakeFiles/rc_kernels.dir/matvec_family.cc.o.d"
  "CMakeFiles/rc_kernels.dir/stencil_family.cc.o"
  "CMakeFiles/rc_kernels.dir/stencil_family.cc.o.d"
  "librc_kernels.a"
  "librc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
