file(REMOVE_RECURSE
  "librc_kernels.a"
)
