file(REMOVE_RECURSE
  "CMakeFiles/rc_core.dir/core.cc.o"
  "CMakeFiles/rc_core.dir/core.cc.o.d"
  "librc_core.a"
  "librc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
