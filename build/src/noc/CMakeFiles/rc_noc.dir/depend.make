# Empty dependencies file for rc_noc.
# This may be replaced when dependencies are built.
