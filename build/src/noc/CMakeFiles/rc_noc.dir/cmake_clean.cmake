file(REMOVE_RECURSE
  "CMakeFiles/rc_noc.dir/inet.cc.o"
  "CMakeFiles/rc_noc.dir/inet.cc.o.d"
  "CMakeFiles/rc_noc.dir/mesh.cc.o"
  "CMakeFiles/rc_noc.dir/mesh.cc.o.d"
  "librc_noc.a"
  "librc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
