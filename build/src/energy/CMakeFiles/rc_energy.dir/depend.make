# Empty dependencies file for rc_energy.
# This may be replaced when dependencies are built.
