file(REMOVE_RECURSE
  "CMakeFiles/rc_energy.dir/energy.cc.o"
  "CMakeFiles/rc_energy.dir/energy.cc.o.d"
  "librc_energy.a"
  "librc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
