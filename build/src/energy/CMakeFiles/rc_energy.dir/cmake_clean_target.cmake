file(REMOVE_RECURSE
  "librc_energy.a"
)
