file(REMOVE_RECURSE
  "CMakeFiles/rc_harness.dir/report.cc.o"
  "CMakeFiles/rc_harness.dir/report.cc.o.d"
  "CMakeFiles/rc_harness.dir/runner.cc.o"
  "CMakeFiles/rc_harness.dir/runner.cc.o.d"
  "librc_harness.a"
  "librc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
