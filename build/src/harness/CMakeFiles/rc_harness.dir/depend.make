# Empty dependencies file for rc_harness.
# This may be replaced when dependencies are built.
