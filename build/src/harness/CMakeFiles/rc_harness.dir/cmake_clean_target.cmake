file(REMOVE_RECURSE
  "librc_harness.a"
)
