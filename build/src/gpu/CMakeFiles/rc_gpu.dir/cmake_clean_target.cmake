file(REMOVE_RECURSE
  "librc_gpu.a"
)
