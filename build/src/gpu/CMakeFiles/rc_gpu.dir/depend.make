# Empty dependencies file for rc_gpu.
# This may be replaced when dependencies are built.
