file(REMOVE_RECURSE
  "CMakeFiles/rc_gpu.dir/gpu.cc.o"
  "CMakeFiles/rc_gpu.dir/gpu.cc.o.d"
  "librc_gpu.a"
  "librc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
