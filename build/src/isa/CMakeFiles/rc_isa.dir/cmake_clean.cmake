file(REMOVE_RECURSE
  "CMakeFiles/rc_isa.dir/assembler.cc.o"
  "CMakeFiles/rc_isa.dir/assembler.cc.o.d"
  "CMakeFiles/rc_isa.dir/instr.cc.o"
  "CMakeFiles/rc_isa.dir/instr.cc.o.d"
  "CMakeFiles/rc_isa.dir/program.cc.o"
  "CMakeFiles/rc_isa.dir/program.cc.o.d"
  "librc_isa.a"
  "librc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
