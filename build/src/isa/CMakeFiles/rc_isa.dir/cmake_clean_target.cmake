file(REMOVE_RECURSE
  "librc_isa.a"
)
