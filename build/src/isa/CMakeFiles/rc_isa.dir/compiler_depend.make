# Empty compiler generated dependencies file for rc_isa.
# This may be replaced when dependencies are built.
