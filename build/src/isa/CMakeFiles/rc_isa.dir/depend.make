# Empty dependencies file for rc_isa.
# This may be replaced when dependencies are built.
