# Empty dependencies file for rc_machine.
# This may be replaced when dependencies are built.
