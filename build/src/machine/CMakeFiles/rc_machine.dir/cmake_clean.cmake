file(REMOVE_RECURSE
  "CMakeFiles/rc_machine.dir/machine.cc.o"
  "CMakeFiles/rc_machine.dir/machine.cc.o.d"
  "librc_machine.a"
  "librc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
