file(REMOVE_RECURSE
  "librc_machine.a"
)
