# Empty dependencies file for rc_mem.
# This may be replaced when dependencies are built.
