file(REMOVE_RECURSE
  "librc_mem.a"
)
