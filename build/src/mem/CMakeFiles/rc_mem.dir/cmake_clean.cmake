file(REMOVE_RECURSE
  "CMakeFiles/rc_mem.dir/cachetags.cc.o"
  "CMakeFiles/rc_mem.dir/cachetags.cc.o.d"
  "CMakeFiles/rc_mem.dir/dram.cc.o"
  "CMakeFiles/rc_mem.dir/dram.cc.o.d"
  "CMakeFiles/rc_mem.dir/llc.cc.o"
  "CMakeFiles/rc_mem.dir/llc.cc.o.d"
  "CMakeFiles/rc_mem.dir/scratchpad.cc.o"
  "CMakeFiles/rc_mem.dir/scratchpad.cc.o.d"
  "librc_mem.a"
  "librc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
