# Empty compiler generated dependencies file for rc_compiler.
# This may be replaced when dependencies are built.
