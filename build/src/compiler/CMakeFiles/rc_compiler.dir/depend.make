# Empty dependencies file for rc_compiler.
# This may be replaced when dependencies are built.
