file(REMOVE_RECURSE
  "librc_compiler.a"
)
