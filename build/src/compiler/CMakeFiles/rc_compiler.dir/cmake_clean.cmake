file(REMOVE_RECURSE
  "CMakeFiles/rc_compiler.dir/codegen.cc.o"
  "CMakeFiles/rc_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/rc_compiler.dir/sync.cc.o"
  "CMakeFiles/rc_compiler.dir/sync.cc.o.d"
  "librc_compiler.a"
  "librc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
