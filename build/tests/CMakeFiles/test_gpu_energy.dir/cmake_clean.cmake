file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_energy.dir/test_gpu_energy.cc.o"
  "CMakeFiles/test_gpu_energy.dir/test_gpu_energy.cc.o.d"
  "test_gpu_energy"
  "test_gpu_energy.pdb"
  "test_gpu_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
