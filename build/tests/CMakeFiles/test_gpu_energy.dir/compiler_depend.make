# Empty compiler generated dependencies file for test_gpu_energy.
# This may be replaced when dependencies are built.
