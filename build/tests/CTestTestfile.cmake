# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_machine_basic[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_energy[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
