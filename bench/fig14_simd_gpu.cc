/**
 * @file
 * Regenerates Figure 14: performance, I-cache accesses, and energy
 * with per-core SIMD units and the GPU, all relative to NV_PF —
 * PCV_PF (narrow SIMD baseline), BEST_V, BEST_V_PCV (SIMD composed
 * into vector groups), and the matched GPU model.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report speed("Figure 14a: Speedup relative to NV_PF",
                 {"Benchmark", "NV_PF", "PCV_PF", "BEST_V",
                  "BEST_V_PCV", "GPU"});
    Report icache("Figure 14b: I-cache accesses relative to NV_PF",
                  {"Benchmark", "NV_PF", "PCV_PF", "BEST_V",
                   "BEST_V_PCV"});
    Report energy("Figure 14c: On-chip energy relative to NV_PF",
                  {"Benchmark", "NV_PF", "PCV_PF", "BEST_V",
                   "BEST_V_PCV"});

    const std::vector<std::string> benches = benchList();

    Sweep s;
    struct Ids
    {
        Sweep::Id pf, pcv, v4, v16, v4pcv, v16pcv, gpu;
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches)
        ids.push_back({s.add(bench, "NV_PF"), s.add(bench, "PCV_PF"),
                       s.add(bench, "V4"), s.add(bench, "V16"),
                       s.add(bench, "V4_PCV"),
                       s.add(bench, "V16_PCV"), s.addGpu(bench)});
    s.run();

    std::vector<double> s_pcv, s_best, s_bpcv, s_gpu;
    std::vector<double> i_pcv, i_best, i_bpcv;
    std::vector<double> e_pcv, e_best, e_bpcv;

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string &bench = benches[i];
        const RunResult &pf = s[ids[i].pf];
        const RunResult &pcv = s[ids[i].pcv];
        const RunResult &best = betterOf(s[ids[i].v4], s[ids[i].v16]);
        const RunResult &bpcv =
            betterOf(s[ids[i].v4pcv], s[ids[i].v16pcv]);
        const RunResult &gpu = s[ids[i].gpu];

        double base = static_cast<double>(pf.cycles);
        speed.row(
            {bench, usable(pf) ? "1.00" : "FAIL",
             ratioCell(base, static_cast<double>(pcv.cycles),
                       usable(pf) && usable(pcv), &s_pcv),
             ratioCell(base, static_cast<double>(best.cycles),
                       usable(pf) && usable(best), &s_best),
             ratioCell(base, static_cast<double>(bpcv.cycles),
                       usable(pf) && usable(bpcv), &s_bpcv),
             ratioCell(base, static_cast<double>(gpu.cycles),
                       usable(pf) && usable(gpu), &s_gpu)});

        double ib = static_cast<double>(pf.icacheAccesses);
        icache.row(
            {bench, usable(pf) ? "1.00" : "FAIL",
             ratioCell(static_cast<double>(pcv.icacheAccesses), ib,
                       usable(pf) && usable(pcv), &i_pcv),
             ratioCell(static_cast<double>(best.icacheAccesses), ib,
                       usable(pf) && usable(best), &i_best),
             ratioCell(static_cast<double>(bpcv.icacheAccesses), ib,
                       usable(pf) && usable(bpcv), &i_bpcv)});

        energy.row({bench, usable(pf) ? "1.00" : "FAIL",
                    ratioCell(pcv.energyPj, pf.energyPj,
                              usable(pf) && usable(pcv), &e_pcv),
                    ratioCell(best.energyPj, pf.energyPj,
                              usable(pf) && usable(best), &e_best),
                    ratioCell(bpcv.energyPj, pf.energyPj,
                              usable(pf) && usable(bpcv), &e_bpcv)});
    }

    speed.row({"GeoMean", "1.00", meanCell(s_pcv), meanCell(s_best),
               meanCell(s_bpcv), meanCell(s_gpu)});
    icache.row({"GeoMean", "1.00", meanCell(i_pcv), meanCell(i_best),
                meanCell(i_bpcv)});
    energy.row({"GeoMean", "1.00", meanCell(e_pcv), meanCell(e_best),
                meanCell(e_bpcv)});
    speed.print(std::cout);
    icache.print(std::cout);
    energy.print(std::cout);

    if (!s_best.empty() && !s_gpu.empty())
        std::cout << "\nHeadline: Rockcress vs GPU (paper: ~1.9x): "
                  << fmt(geomean(s_best) / geomean(s_gpu)) << "x\n";
    return 0;
}
