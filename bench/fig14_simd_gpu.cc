/**
 * @file
 * Regenerates Figure 14: performance, I-cache accesses, and energy
 * with per-core SIMD units and the GPU, all relative to NV_PF —
 * PCV_PF (narrow SIMD baseline), BEST_V, BEST_V_PCV (SIMD composed
 * into vector groups), and the matched GPU model.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report speed("Figure 14a: Speedup relative to NV_PF",
                 {"Benchmark", "NV_PF", "PCV_PF", "BEST_V",
                  "BEST_V_PCV", "GPU"});
    Report icache("Figure 14b: I-cache accesses relative to NV_PF",
                  {"Benchmark", "NV_PF", "PCV_PF", "BEST_V",
                   "BEST_V_PCV"});
    Report energy("Figure 14c: On-chip energy relative to NV_PF",
                  {"Benchmark", "NV_PF", "PCV_PF", "BEST_V",
                   "BEST_V_PCV"});

    std::vector<double> s_pcv, s_best, s_bpcv, s_gpu;
    std::vector<double> i_pcv, i_best, i_bpcv;
    std::vector<double> e_pcv, e_best, e_bpcv;

    for (const std::string &bench : benchList()) {
        RunResult pf = runChecked(bench, "NV_PF");
        RunResult pcv = runChecked(bench, "PCV_PF");
        RunResult best =
            betterOf(runChecked(bench, "V4"), runChecked(bench, "V16"));
        RunResult bpcv = betterOf(runChecked(bench, "V4_PCV"),
                                  runChecked(bench, "V16_PCV"));
        RunResult gpu = runGpu(bench);
        if (!gpu.ok)
            std::cerr << "!! " << bench << "/GPU: " << gpu.error
                      << "\n";

        double base = static_cast<double>(pf.cycles);
        double sp = base / static_cast<double>(pcv.cycles);
        double sb = base / static_cast<double>(best.cycles);
        double sv = base / static_cast<double>(bpcv.cycles);
        double sg = base / static_cast<double>(gpu.cycles);
        speed.row({bench, "1.00", fmt(sp), fmt(sb), fmt(sv), fmt(sg)});
        s_pcv.push_back(sp);
        s_best.push_back(sb);
        s_bpcv.push_back(sv);
        s_gpu.push_back(sg);

        double ib = static_cast<double>(pf.icacheAccesses);
        icache.row(
            {bench, "1.00",
             fmt(static_cast<double>(pcv.icacheAccesses) / ib),
             fmt(static_cast<double>(best.icacheAccesses) / ib),
             fmt(static_cast<double>(bpcv.icacheAccesses) / ib)});
        i_pcv.push_back(static_cast<double>(pcv.icacheAccesses) / ib);
        i_best.push_back(static_cast<double>(best.icacheAccesses) / ib);
        i_bpcv.push_back(static_cast<double>(bpcv.icacheAccesses) / ib);

        energy.row({bench, "1.00", fmt(pcv.energyPj / pf.energyPj),
                    fmt(best.energyPj / pf.energyPj),
                    fmt(bpcv.energyPj / pf.energyPj)});
        e_pcv.push_back(pcv.energyPj / pf.energyPj);
        e_best.push_back(best.energyPj / pf.energyPj);
        e_bpcv.push_back(bpcv.energyPj / pf.energyPj);
    }

    speed.row({"GeoMean", "1.00", fmt(geomean(s_pcv)),
               fmt(geomean(s_best)), fmt(geomean(s_bpcv)),
               fmt(geomean(s_gpu))});
    icache.row({"GeoMean", "1.00", fmt(geomean(i_pcv)),
                fmt(geomean(i_best)), fmt(geomean(i_bpcv))});
    energy.row({"GeoMean", "1.00", fmt(geomean(e_pcv)),
                fmt(geomean(e_best)), fmt(geomean(e_bpcv))});
    speed.print(std::cout);
    icache.print(std::cout);
    energy.print(std::cout);

    std::cout << "\nHeadline: Rockcress vs GPU (paper: ~1.9x): "
              << fmt(geomean(s_best) / geomean(s_gpu)) << "x\n";
    return 0;
}
