/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's substrate
 * components: cache tag throughput, mesh routing, inet forwarding,
 * assembler throughput, and whole-machine simulation rate. These
 * guard the simulator's own performance (simulation speed is the
 * artifact's usability constraint, Appendix A).
 */

#include <benchmark/benchmark.h>

#include "compiler/codegen.hh"
#include "machine/machine.hh"
#include "mem/cachetags.hh"
#include "sim/rng.hh"

using namespace rockcress;

namespace
{

void
BM_CacheTagsAccess(benchmark::State &state)
{
    StatRegistry reg;
    StatScope scope(reg, "bm.");
    CacheTags tags(16 * 1024, 4, 64, scope);
    Rng rng(7);
    for (auto _ : state) {
        Addr a = static_cast<Addr>(rng.below(1 << 20)) * 64;
        benchmark::DoNotOptimize(tags.access(a, false).hit);
    }
}
BENCHMARK(BM_CacheTagsAccess);

void
BM_MeshRandomTraffic(benchmark::State &state)
{
    StatRegistry reg;
    StatScope scope(reg, "bm.");
    Mesh mesh(8, 10, 4, scope);
    long delivered = 0;
    for (int n = 0; n < 80; ++n)
        mesh.setSink(n, [&delivered](const Packet &) { ++delivered; });
    Rng rng(13);
    Cycle now = 0;
    for (auto _ : state) {
        Packet p;
        p.srcNode = static_cast<int>(rng.below(80));
        p.dstNode = static_cast<int>(rng.below(80));
        p.words = 1;
        mesh.send(p);
        mesh.tick(now++);
    }
    while (!mesh.idle())
        mesh.tick(now++);
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshRandomTraffic);

void
BM_InetForwardChain(benchmark::State &state)
{
    StatRegistry reg;
    StatScope scope(reg, "bm.");
    Inet inet(17, 2, scope);
    std::vector<CoreId> chain;
    for (CoreId c = 0; c < 17; ++c)
        chain.push_back(c);
    inet.configureChain(chain);
    InetMsg msg;
    msg.kind = InetMsg::Kind::Instr;
    Cycle now = 0;
    for (auto _ : state) {
        if (inet.canSend(0))
            inet.send(0, msg);
        for (CoreId c = 1; c < 17; ++c) {
            if (inet.hasMsg(c)) {
                if (c < 16 && inet.canSend(c))
                    inet.send(c, inet.front(c));
                else if (c < 16)
                    continue;
                inet.pop(c);
            }
        }
        inet.tick(now++);
    }
}
BENCHMARK(BM_InetForwardChain);

void
BM_AssemblerEmit(benchmark::State &state)
{
    for (auto _ : state) {
        Assembler as("bm");
        for (int i = 0; i < 1000; ++i) {
            as.addi(x(5), x(5), 1);
            as.fmadd(f(0), f(1), f(2), f(0));
        }
        as.halt();
        Program p = as.finish();
        benchmark::DoNotOptimize(p.size());
    }
}
BENCHMARK(BM_AssemblerEmit);

void
BM_MachineSimRate(benchmark::State &state)
{
    // Whole-machine simulation throughput: 16 cores spinning.
    for (auto _ : state) {
        MachineParams params;
        params.cols = 4;
        params.rows = 4;
        Machine m(params);
        Assembler as("spin");
        as.li(x(5), 0);
        as.li(x(6), 2000);
        {
            Loop l(as, x(5), x(6), 1);
            as.add(x(7), x(7), x(5));
            l.end();
        }
        as.halt();
        m.loadAll(std::make_shared<Program>(as.finish()));
        benchmark::DoNotOptimize(m.run(10'000'000));
    }
}
BENCHMARK(BM_MachineSimRate);

} // namespace
