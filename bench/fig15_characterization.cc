/**
 * @file
 * Regenerates Figure 15: vector-group characterization. (a) Input
 * inet stalls per hop (hop 1 is the expander) relative to that hop's
 * vector cycles, for V4 and V16; (b) backpressure stalls per hop;
 * (c) fraction of cycles waiting for a frame, NV_PF vs V4.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

namespace
{

const std::vector<std::string> hopBenches = {"2dconv", "3dconv", "bicg",
                                             "gemm", "syr2k"};

void
hopReport(const std::string &title,
          std::map<int, std::uint64_t> RunResult::*field,
          const std::string &config, std::ostream &os)
{
    int hops = config == "V4" ? 3 : 7;
    std::vector<std::string> cols = {"Benchmark"};
    for (int h = 1; h <= hops; ++h)
        cols.push_back("hop" + std::to_string(h));
    Report t(title, cols);
    for (const std::string &bench : hopBenches) {
        RunResult r = runChecked(bench, config);
        std::vector<std::string> row = {bench};
        for (int h = 1; h <= hops; ++h) {
            double cyc = static_cast<double>(r.hopCycles[h]);
            double stalls = static_cast<double>((r.*field)[h]);
            row.push_back(cyc > 0 ? fmt(stalls / cyc) : "-");
        }
        t.row(row);
    }
    t.print(os);
}

} // namespace

int
main()
{
    hopReport("Figure 15a: Input inet stalls per hop (V4)",
              &RunResult::hopInetStalls, "V4", std::cout);
    hopReport("Figure 15a: Input inet stalls per hop (V16)",
              &RunResult::hopInetStalls, "V16", std::cout);
    hopReport("Figure 15b: Backpressure stalls per hop (V4)",
              &RunResult::hopBackpressure, "V4", std::cout);
    hopReport("Figure 15b: Backpressure stalls per hop (V16)",
              &RunResult::hopBackpressure, "V16", std::cout);

    Report t("Figure 15c: Fraction of cycles waiting for a frame",
             {"Benchmark", "NV_PF", "V4"});
    std::vector<double> a_pf, a_v4;
    for (const std::string &bench : benchList()) {
        RunResult pf = runChecked(bench, "NV_PF");
        RunResult v4 = runChecked(bench, "V4");
        double frac_pf = static_cast<double>(pf.stallFrame) /
                         static_cast<double>(pf.coreCycles);
        double frac_v4 =
            v4.vectorCycles == 0
                ? 0.0
                : static_cast<double>(v4.frameStallVector) /
                      static_cast<double>(v4.vectorCycles);
        t.row({bench, fmt(frac_pf), fmt(frac_v4)});
        a_pf.push_back(frac_pf);
        a_v4.push_back(frac_v4);
    }
    t.row({"ArithMean", fmt(amean(a_pf)), fmt(amean(a_v4))});
    t.print(std::cout);
    std::cout << "\nPaper shape: V4 roughly halves frame-wait stalls "
                 "vs NV_PF; inet stalls plateau after hop 2 (scalar "
                 "feeding bottleneck, not forwarding depth).\n";
    return 0;
}
