/**
 * @file
 * Regenerates Figure 15: vector-group characterization. (a) Input
 * inet stalls per hop (hop 1 is the expander) relative to that hop's
 * vector cycles, for V4 and V16; (b) backpressure stalls per hop;
 * (c) fraction of cycles waiting for a frame, NV_PF vs V4.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

namespace
{

const std::vector<std::string> hopBenches = {"2dconv", "3dconv", "bicg",
                                             "gemm", "syr2k"};

void
hopReport(const std::string &title,
          std::map<int, std::uint64_t> RunResult::*field,
          const std::string &config, const Sweep &s,
          const std::vector<Sweep::Id> &ids, std::ostream &os)
{
    int hops = config == "V4" ? 3 : 7;
    std::vector<std::string> cols = {"Benchmark"};
    for (int h = 1; h <= hops; ++h)
        cols.push_back("hop" + std::to_string(h));
    Report t(title, cols);
    for (std::size_t i = 0; i < hopBenches.size(); ++i) {
        RunResult r = s[ids[i]];
        std::vector<std::string> row = {hopBenches[i]};
        for (int h = 1; h <= hops; ++h) {
            double cyc = static_cast<double>(r.hopCycles[h]);
            double stalls = static_cast<double>((r.*field)[h]);
            if (!usable(r))
                row.push_back("FAIL");
            else
                row.push_back(cyc > 0 ? fmt(stalls / cyc) : "-");
        }
        t.row(row);
    }
    t.print(os);
}

} // namespace

int
main()
{
    const std::vector<std::string> benches = benchList();

    Sweep s;
    std::vector<Sweep::Id> hopV4, hopV16;
    for (const std::string &bench : hopBenches) {
        hopV4.push_back(s.add(bench, "V4"));
        hopV16.push_back(s.add(bench, "V16"));
    }
    struct Ids
    {
        Sweep::Id pf, v4;
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches)
        ids.push_back({s.add(bench, "NV_PF"), s.add(bench, "V4")});
    s.run();

    hopReport("Figure 15a: Input inet stalls per hop (V4)",
              &RunResult::hopInetStalls, "V4", s, hopV4, std::cout);
    hopReport("Figure 15a: Input inet stalls per hop (V16)",
              &RunResult::hopInetStalls, "V16", s, hopV16, std::cout);
    hopReport("Figure 15b: Backpressure stalls per hop (V4)",
              &RunResult::hopBackpressure, "V4", s, hopV4, std::cout);
    hopReport("Figure 15b: Backpressure stalls per hop (V16)",
              &RunResult::hopBackpressure, "V16", s, hopV16,
              std::cout);

    Report t("Figure 15c: Fraction of cycles waiting for a frame",
             {"Benchmark", "NV_PF", "V4"});
    std::vector<double> a_pf, a_v4;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const RunResult &pf = s[ids[i].pf];
        const RunResult &v4 = s[ids[i].v4];
        std::string pf_cell =
            ratioCell(static_cast<double>(pf.stallFrame),
                      static_cast<double>(pf.coreCycles), usable(pf),
                      &a_pf);
        std::string v4_cell;
        if (!usable(v4)) {
            v4_cell = "FAIL";
        } else if (v4.vectorCycles == 0) {
            a_v4.push_back(0.0);
            v4_cell = fmt(0.0);
        } else {
            v4_cell =
                ratioCell(static_cast<double>(v4.frameStallVector),
                          static_cast<double>(v4.vectorCycles), true,
                          &a_v4);
        }
        t.row({benches[i], pf_cell, v4_cell});
    }
    t.row({"ArithMean", meanCell(a_pf, false), meanCell(a_v4, false)});
    t.print(std::cout);
    std::cout << "\nPaper shape: V4 roughly halves frame-wait stalls "
                 "vs NV_PF; inet stalls plateau after hop 2 (scalar "
                 "feeding bottleneck, not forwarding depth).\n";
    return 0;
}
