/**
 * @file
 * Regenerates Figure 16: speedup of V4_LL_PCV, V16, and V16_LL_PCV
 * relative to V4 — vector length flexibility plus the long-cache-line
 * experiment (1024-byte lines, Section 6.6).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report t("Figure 16: Speedup relative to V4",
             {"Benchmark", "V4", "V4_LL_PCV", "V16", "V16_LL_PCV"});

    const std::vector<std::string> benches = benchList();

    Sweep s;
    struct Ids
    {
        Sweep::Id v4, v4ll, v16, v16ll;
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches)
        ids.push_back({s.add(bench, "V4"), s.add(bench, "V4_LL_PCV"),
                       s.add(bench, "V16"),
                       s.add(bench, "V16_LL_PCV")});
    s.run();

    std::vector<double> g_llpcv, g_v16, g_16ll;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const RunResult &v4 = s[ids[i].v4];
        const RunResult &v4ll = s[ids[i].v4ll];
        const RunResult &v16 = s[ids[i].v16];
        const RunResult &v16ll = s[ids[i].v16ll];
        double base = static_cast<double>(v4.cycles);
        t.row({benches[i], usable(v4) ? "1.00" : "FAIL",
               ratioCell(base, static_cast<double>(v4ll.cycles),
                         usable(v4) && usable(v4ll), &g_llpcv),
               ratioCell(base, static_cast<double>(v16.cycles),
                         usable(v4) && usable(v16), &g_v16),
               ratioCell(base, static_cast<double>(v16ll.cycles),
                         usable(v4) && usable(v16ll), &g_16ll)});
    }
    t.row({"GeoMean", "1.00", meanCell(g_llpcv), meanCell(g_v16),
           meanCell(g_16ll)});
    t.print(std::cout);
    std::cout << "\nPaper shape: V16 wins on the group-load benchmarks "
                 "(atax, bicg, mvt); V4 is the better geomean alone.\n";
    return 0;
}
