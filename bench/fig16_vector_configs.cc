/**
 * @file
 * Regenerates Figure 16: speedup of V4_LL_PCV, V16, and V16_LL_PCV
 * relative to V4 — vector length flexibility plus the long-cache-line
 * experiment (1024-byte lines, Section 6.6).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report t("Figure 16: Speedup relative to V4",
             {"Benchmark", "V4", "V4_LL_PCV", "V16", "V16_LL_PCV"});
    std::vector<double> g_llpcv, g_v16, g_16ll;
    for (const std::string &bench : benchList()) {
        RunResult v4 = runChecked(bench, "V4");
        RunResult v4ll = runChecked(bench, "V4_LL_PCV");
        RunResult v16 = runChecked(bench, "V16");
        RunResult v16ll = runChecked(bench, "V16_LL_PCV");
        double base = static_cast<double>(v4.cycles);
        double a = base / static_cast<double>(v4ll.cycles);
        double b = base / static_cast<double>(v16.cycles);
        double c = base / static_cast<double>(v16ll.cycles);
        t.row({bench, "1.00", fmt(a), fmt(b), fmt(c)});
        g_llpcv.push_back(a);
        g_v16.push_back(b);
        g_16ll.push_back(c);
    }
    t.row({"GeoMean", "1.00", fmt(geomean(g_llpcv)),
           fmt(geomean(g_v16)), fmt(geomean(g_16ll))});
    t.print(std::cout);
    std::cout << "\nPaper shape: V16 wins on the group-load benchmarks "
                 "(atax, bicg, mvt); V4 is the better geomean alone.\n";
    return 0;
}
