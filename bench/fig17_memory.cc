/**
 * @file
 * Regenerates Figure 17: memory-system sensitivity. (a) LLC miss
 * rate for NV, NV_PF, BEST_V, V16_LL; (b) speedup when the per-bank
 * LLC capacity grows from 16 kB to 32 kB (relative to NV_PF at
 * 32 kB); (c) speedup when the on-chip network width grows from 1 to
 * 4 words (relative to NV_PF at width 1).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    const std::vector<std::string> benches = benchList();

    RunOverrides s16, s32;
    s16.llcBankBytes = 16 * 1024;
    s32.llcBankBytes = 32 * 1024;
    RunOverrides w1, w4;
    w1.nocWidthWords = 1;
    w4.nocWidthWords = 4;

    // All three panels in one engine sweep; identical points (the
    // defaults overlap with the 16 kB / width-4 sweeps) simulate once.
    Sweep s;
    struct Ids
    {
        Sweep::Id nv, pf, v4, v16, ll;            // (a)
        Sweep::Id pf16, pf32, v416, v432, ll16, ll32; // (b)
        Sweep::Id pf1, pf4, v41, v44, ll1, ll4;   // (c)
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches) {
        Ids e;
        e.nv = s.add(bench, "NV");
        e.pf = s.add(bench, "NV_PF");
        e.v4 = s.add(bench, "V4");
        e.v16 = s.add(bench, "V16");
        e.ll = s.add(bench, "V16_LL");
        e.pf16 = s.add(bench, "NV_PF", s16);
        e.pf32 = s.add(bench, "NV_PF", s32);
        e.v416 = s.add(bench, "V4", s16);
        e.v432 = s.add(bench, "V4", s32);
        e.ll16 = s.add(bench, "V16_LL", s16);
        e.ll32 = s.add(bench, "V16_LL", s32);
        e.pf1 = s.add(bench, "NV_PF", w1);
        e.pf4 = s.add(bench, "NV_PF", w4);
        e.v41 = s.add(bench, "V4", w1);
        e.v44 = s.add(bench, "V4", w4);
        e.ll1 = s.add(bench, "V16_LL", w1);
        e.ll4 = s.add(bench, "V16_LL", w4);
        ids.push_back(e);
    }
    s.run();

    // (a) Miss rates.
    Report a("Figure 17a: LLC miss rate",
             {"Benchmark", "NV", "NV_PF", "BEST_V", "V16_LL"});
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const RunResult &nv = s[ids[i].nv];
        const RunResult &pf = s[ids[i].pf];
        const RunResult &best = betterOf(s[ids[i].v4], s[ids[i].v16]);
        const RunResult &ll = s[ids[i].ll];
        auto cell = [](const RunResult &r) {
            return usable(r) ? fmt(r.llcMissRate)
                             : std::string("FAIL");
        };
        a.row({benches[i], cell(nv), cell(pf), cell(best), cell(ll)});
    }
    a.print(std::cout);

    // (b) LLC capacity sweep.
    Report b("Figure 17b: Speedup vs per-bank LLC capacity "
             "(relative to NV_PF_32kB)",
             {"Benchmark", "NV_PF_16kB", "NV_PF_32kB", "V4_16kB",
              "V4_32kB", "V16_LL_16kB", "V16_LL_32kB"});
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const RunResult &pf32 = s[ids[i].pf32];
        double base = static_cast<double>(pf32.cycles);
        auto cell = [&](Sweep::Id id) {
            const RunResult &r = s[id];
            return ratioCell(base, static_cast<double>(r.cycles),
                             usable(pf32) && usable(r));
        };
        b.row({benches[i], cell(ids[i].pf16),
               usable(pf32) ? "1.00" : "FAIL", cell(ids[i].v416),
               cell(ids[i].v432), cell(ids[i].ll16),
               cell(ids[i].ll32)});
    }
    b.print(std::cout);

    // (c) NoC width sweep.
    Report c("Figure 17c: Speedup vs on-chip network width "
             "(relative to NV_PF_NW1)",
             {"Benchmark", "NV_PF_NW1", "NV_PF_NW4", "V4_NW1",
              "V4_NW4", "V16_LL_NW1", "V16_LL_NW4"});
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const RunResult &pf1 = s[ids[i].pf1];
        double base = static_cast<double>(pf1.cycles);
        auto cell = [&](Sweep::Id id) {
            const RunResult &r = s[id];
            return ratioCell(base, static_cast<double>(r.cycles),
                             usable(pf1) && usable(r));
        };
        c.row({benches[i], usable(pf1) ? "1.00" : "FAIL",
               cell(ids[i].pf4), cell(ids[i].v41), cell(ids[i].v44),
               cell(ids[i].ll1), cell(ids[i].ll4)});
    }
    c.print(std::cout);
    std::cout << "\nPaper shape: group loads improve hit rates on "
                 "bicg/mvt; network width is not critical.\n";
    return 0;
}
