/**
 * @file
 * Regenerates Figure 17: memory-system sensitivity. (a) LLC miss
 * rate for NV, NV_PF, BEST_V, V16_LL; (b) speedup when the per-bank
 * LLC capacity grows from 16 kB to 32 kB (relative to NV_PF at
 * 32 kB); (c) speedup when the on-chip network width grows from 1 to
 * 4 words (relative to NV_PF at width 1).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    // (a) Miss rates.
    Report a("Figure 17a: LLC miss rate",
             {"Benchmark", "NV", "NV_PF", "BEST_V", "V16_LL"});
    for (const std::string &bench : benchList()) {
        RunResult nv = runChecked(bench, "NV");
        RunResult pf = runChecked(bench, "NV_PF");
        RunResult best =
            betterOf(runChecked(bench, "V4"), runChecked(bench, "V16"));
        RunResult ll = runChecked(bench, "V16_LL");
        a.row({bench, fmt(nv.llcMissRate), fmt(pf.llcMissRate),
               fmt(best.llcMissRate), fmt(ll.llcMissRate)});
    }
    a.print(std::cout);

    // (b) LLC capacity sweep.
    Report b("Figure 17b: Speedup vs per-bank LLC capacity "
             "(relative to NV_PF_32kB)",
             {"Benchmark", "NV_PF_16kB", "NV_PF_32kB", "V4_16kB",
              "V4_32kB", "V16_LL_16kB", "V16_LL_32kB"});
    for (const std::string &bench : benchList()) {
        RunOverrides s16, s32;
        s16.llcBankBytes = 16 * 1024;
        s32.llcBankBytes = 32 * 1024;
        RunResult pf16 = runChecked(bench, "NV_PF", s16);
        RunResult pf32 = runChecked(bench, "NV_PF", s32);
        RunResult v416 = runChecked(bench, "V4", s16);
        RunResult v432 = runChecked(bench, "V4", s32);
        RunResult ll16 = runChecked(bench, "V16_LL", s16);
        RunResult ll32 = runChecked(bench, "V16_LL", s32);
        double base = static_cast<double>(pf32.cycles);
        b.row({bench, fmt(base / static_cast<double>(pf16.cycles)),
               "1.00", fmt(base / static_cast<double>(v416.cycles)),
               fmt(base / static_cast<double>(v432.cycles)),
               fmt(base / static_cast<double>(ll16.cycles)),
               fmt(base / static_cast<double>(ll32.cycles))});
    }
    b.print(std::cout);

    // (c) NoC width sweep.
    Report c("Figure 17c: Speedup vs on-chip network width "
             "(relative to NV_PF_NW1)",
             {"Benchmark", "NV_PF_NW1", "NV_PF_NW4", "V4_NW1",
              "V4_NW4", "V16_LL_NW1", "V16_LL_NW4"});
    for (const std::string &bench : benchList()) {
        RunOverrides w1, w4;
        w1.nocWidthWords = 1;
        w4.nocWidthWords = 4;
        RunResult pf1 = runChecked(bench, "NV_PF", w1);
        RunResult pf4 = runChecked(bench, "NV_PF", w4);
        RunResult v41 = runChecked(bench, "V4", w1);
        RunResult v44 = runChecked(bench, "V4", w4);
        RunResult ll1 = runChecked(bench, "V16_LL", w1);
        RunResult ll4 = runChecked(bench, "V16_LL", w4);
        double base = static_cast<double>(pf1.cycles);
        c.row({bench, "1.00",
               fmt(base / static_cast<double>(pf4.cycles)),
               fmt(base / static_cast<double>(v41.cycles)),
               fmt(base / static_cast<double>(v44.cycles)),
               fmt(base / static_cast<double>(ll1.cycles)),
               fmt(base / static_cast<double>(ll4.cycles))});
    }
    c.print(std::cout);
    std::cout << "\nPaper shape: group loads improve hit rates on "
                 "bicg/mvt; network width is not critical.\n";
    return 0;
}
