/**
 * @file
 * Regenerates Figure 11: NV_PF speedup at 1, 4, 16, and 64 cores
 * over the single-core machine, holding total LLC capacity and DRAM
 * bandwidth constant across sizes (Section 6.5).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

namespace
{

RunOverrides
sized(int cols, int rows)
{
    RunOverrides o;
    o.cols = cols;
    o.rows = rows;
    // Same memory system capacity and bandwidth at every size.
    o.llcBankBytes = 256 * 1024 / static_cast<Addr>(2 * cols);
    return o;
}

} // namespace

int
main()
{
    Report t("Figure 11: NV_PF speedup vs a single core",
             {"Benchmark", "NV_PF_1", "NV_PF_4", "NV_PF_16",
              "NV_PF_64"});

    const std::vector<std::string> benches = benchList();

    Sweep s;
    struct Ids
    {
        Sweep::Id r1, r4, r16, r64;
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches)
        ids.push_back({s.add(bench, "NV_PF", sized(1, 1)),
                       s.add(bench, "NV_PF", sized(2, 2)),
                       s.add(bench, "NV_PF", sized(4, 4)),
                       s.add(bench, "NV_PF", sized(8, 8))});
    s.run();

    std::vector<double> g4, g16, g64;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const RunResult &r1 = s[ids[i].r1];
        const RunResult &r4 = s[ids[i].r4];
        const RunResult &r16 = s[ids[i].r16];
        const RunResult &r64 = s[ids[i].r64];
        double base = static_cast<double>(r1.cycles);
        t.row({benches[i], usable(r1) ? "1.00" : "FAIL",
               ratioCell(base, static_cast<double>(r4.cycles),
                         usable(r1) && usable(r4), &g4),
               ratioCell(base, static_cast<double>(r16.cycles),
                         usable(r1) && usable(r16), &g16),
               ratioCell(base, static_cast<double>(r64.cycles),
                         usable(r1) && usable(r64), &g64)});
    }
    t.row({"GeoMean", "1.00", meanCell(g4), meanCell(g16),
           meanCell(g64)});
    t.print(std::cout);
    std::cout << "\nPaper shape: 2mm/3mm/gemm scale ~linearly; most "
                 "others go sub-linear past 16 cores (DRAM-bound).\n";
    return 0;
}
