/**
 * @file
 * Regenerates Figure 11: NV_PF speedup at 1, 4, 16, and 64 cores
 * over the single-core machine, holding total LLC capacity and DRAM
 * bandwidth constant across sizes (Section 6.5).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

namespace
{

RunOverrides
sized(int cols, int rows)
{
    RunOverrides o;
    o.cols = cols;
    o.rows = rows;
    // Same memory system capacity and bandwidth at every size.
    o.llcBankBytes = 256 * 1024 / static_cast<Addr>(2 * cols);
    return o;
}

} // namespace

int
main()
{
    Report t("Figure 11: NV_PF speedup vs a single core",
             {"Benchmark", "NV_PF_1", "NV_PF_4", "NV_PF_16",
              "NV_PF_64"});
    std::vector<double> g4, g16, g64;
    for (const std::string &bench : benchList()) {
        RunResult r1 = runChecked(bench, "NV_PF", sized(1, 1));
        RunResult r4 = runChecked(bench, "NV_PF", sized(2, 2));
        RunResult r16 = runChecked(bench, "NV_PF", sized(4, 4));
        RunResult r64 = runChecked(bench, "NV_PF", sized(8, 8));
        double base = static_cast<double>(r1.cycles);
        double s4 = base / static_cast<double>(r4.cycles);
        double s16 = base / static_cast<double>(r16.cycles);
        double s64 = base / static_cast<double>(r64.cycles);
        t.row({bench, "1.00", fmt(s4), fmt(s16), fmt(s64)});
        g4.push_back(s4);
        g16.push_back(s16);
        g64.push_back(s64);
    }
    t.row({"GeoMean", "1.00", fmt(geomean(g4)), fmt(geomean(g16)),
           fmt(geomean(g64))});
    t.print(std::cout);
    std::cout << "\nPaper shape: 2mm/3mm/gemm scale ~linearly; most "
                 "others go sub-linear past 16 cores (DRAM-bound).\n";
    return 0;
}
