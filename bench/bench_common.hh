/**
 * @file
 * Shared helpers for the figure-regeneration binaries: suite
 * iteration, scaled-down run budgets, and failure reporting.
 */

#ifndef ROCKCRESS_BENCH_COMMON_HH
#define ROCKCRESS_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"

namespace rockcress
{

/**
 * Benchmarks to sweep. Set ROCKCRESS_BENCHES=comma,separated,names
 * to restrict a bench binary to a subset (useful on slow machines,
 * mirroring the artifact's small/medium/large evaluation sizes).
 */
inline std::vector<std::string>
benchList()
{
    const char *env = std::getenv("ROCKCRESS_BENCHES");
    if (!env)
        return suiteNames();
    std::vector<std::string> out;
    std::string s(env), cur;
    for (char c : s + ",") {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return out;
}

/** Run and loudly report verification failures (results still print). */
inline RunResult
runChecked(const std::string &bench, const std::string &config,
           const RunOverrides &overrides = {})
{
    RunResult r = runManycore(bench, config, overrides);
    if (!r.ok) {
        std::cerr << "!! " << bench << "/" << config
                  << " failed verification: " << r.error << "\n";
    }
    return r;
}

} // namespace rockcress

#endif // ROCKCRESS_BENCH_COMMON_HH
