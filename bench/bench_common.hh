/**
 * @file
 * Shared helpers for the figure-regeneration binaries: suite
 * iteration, sweep declaration over the parallel experiment engine
 * (src/exp), and failure-propagating ratio cells.
 *
 * A figure binary declares every (bench, config, overrides) point it
 * needs up front, runs them in one engine sweep — parallel across
 * ROCKCRESS_JOBS workers, memoized in ROCKCRESS_CACHE_DIR — and then
 * reads the results back by handle in deterministic point order.
 */

#ifndef ROCKCRESS_BENCH_COMMON_HH
#define ROCKCRESS_BENCH_COMMON_HH

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/engine.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

namespace rockcress
{

/**
 * Benchmarks to sweep. Set ROCKCRESS_BENCHES=comma,separated,names
 * to restrict a bench binary to a subset (useful on slow machines,
 * mirroring the artifact's small/medium/large evaluation sizes).
 */
inline std::vector<std::string>
benchList()
{
    const char *env = std::getenv("ROCKCRESS_BENCHES");
    if (!env)
        return suiteNames();
    std::vector<std::string> out;
    std::string s(env), cur;
    for (char c : s + ",") {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return out;
}

/**
 * ROCKCRESS_TRACE=1 runs every manycore point of a figure sweep with
 * the event trace attached (DESIGN.md S5h). The trace is an observer
 * — every table is unchanged — but each full-coverage run is then
 * cross-checked exactly against its flat CPI-stack counters, turning
 * a figure regeneration into a self-test of the cycle accounting.
 * Traced points key the result cache separately from untraced ones.
 */
inline bool
traceFromEnv()
{
    const char *env = std::getenv("ROCKCRESS_TRACE");
    return env && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

/**
 * A declared batch of simulation points. Declare every point with
 * add()/addGpu(), run() the batch once, then index results by the
 * returned handles. Identical points collapse onto one simulation.
 */
class Sweep
{
  public:
    using Id = std::size_t;

    /** Declare a manycore point; @return its result handle. */
    Id
    add(const std::string &bench, const std::string &config,
        const RunOverrides &overrides = {})
    {
        RunOverrides o = overrides;
        if (traceFromEnv())
            o.trace = true;
        points_.push_back(RunPoint{bench, config, o});
        return points_.size() - 1;
    }

    /** Declare a GPU-model point. */
    Id
    addGpu(const std::string &bench)
    {
        points_.push_back(RunPoint{bench, "GPU", {}});
        return points_.size() - 1;
    }

    /**
     * Run every declared point on the engine. Verification failures
     * are reported loudly on stderr (results still print as FAIL
     * cells downstream).
     */
    void
    run()
    {
        ExperimentEngine engine;
        results_ = engine.sweep(points_);
        for (const RunResult &r : results_) {
            if (!r.ok)
                std::cerr << "!! " << r.bench << "/" << r.config
                          << " failed: " << r.error << "\n";
        }
    }

    /** Result of a declared point (run() must have completed). */
    const RunResult &
    operator[](Id id) const
    {
        return results_.at(id);
    }

  private:
    std::vector<RunPoint> points_;
    std::vector<RunResult> results_;
};

/** Did the run complete with a nonzero cycle count? */
inline bool
usable(const RunResult &r)
{
    return r.ok && r.cycles > 0;
}

/**
 * A relative-metric table cell that propagates failure: "FAIL" when
 * either run failed or the ratio is degenerate, instead of inf/nan.
 * Successful values are optionally accumulated for the mean row.
 * @param ok Both runs completed (see usable()).
 */
inline std::string
ratioCell(double num, double den, bool ok,
          std::vector<double> *acc = nullptr)
{
    if (!ok || !(den > 0) || !std::isfinite(num / den))
        return "FAIL";
    double v = num / den;
    if (acc)
        acc->push_back(v);
    return fmt(v);
}

/** Mean cell: "n/a" when every contributing point failed. */
inline std::string
meanCell(const std::vector<double> &values, bool geometric = true)
{
    if (values.empty())
        return "n/a";
    return fmt(geometric ? geomean(values) : amean(values));
}

} // namespace rockcress

#endif // ROCKCRESS_BENCH_COMMON_HH
