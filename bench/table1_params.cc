/**
 * @file
 * Regenerates Table 1: microarchitectural parameters of the manycore
 * (1a) and the APU comparison model (1b).
 */

#include <iostream>

#include "bench_common.hh"
#include "gpu/gpu.hh"
#include "machine/params.hh"

using namespace rockcress;

int
main()
{
    MachineParams m;
    Report a("Table 1a: Manycore", {"Component", "Setting"});
    a.row({"Cores", std::to_string(m.numCores())});
    a.row({"ALU Latency", std::to_string(fuLatency(Opcode::ADD))});
    a.row({"Multiply Latency", std::to_string(fuLatency(Opcode::MUL))});
    a.row({"Divide Latency", std::to_string(fuLatency(Opcode::DIV))});
    a.row({"FP ALU Latency", std::to_string(fuLatency(Opcode::FADD))});
    a.row({"FP MUL Latency", std::to_string(fuLatency(Opcode::FMUL))});
    a.row({"SIMD Width", std::to_string(m.core.simdWidth) + " words"});
    a.row({"SIMD ALU Latency",
           std::to_string(fuLatency(Opcode::SIMD_FADD))});
    a.row({"Load Queue Entries", std::to_string(m.core.lqEntries)});
    a.row({"inet Queue Entries", std::to_string(m.inetQueueEntries)});
    a.row({"Cache line Size", std::to_string(m.lineBytes) + " bytes"});
    a.row({"I-Cache Capacity",
           std::to_string(m.core.icache.capacityBytes / 1024) + "kB"});
    a.row({"I-Cache Hit Latency",
           std::to_string(m.core.icache.hitLatency) + " cycle"});
    a.row({"I-Cache Ways", std::to_string(m.core.icache.ways)});
    a.row({"Spm Capacity", std::to_string(m.spadBytes / 1024) + "kB"});
    a.row({"Spm Hit Latency",
           std::to_string(m.core.spadLatency) + " cycles"});
    a.row({"Router Hop Latency", "1"});
    a.row({"On-Chip Net Width",
           std::to_string(m.nocWidthWords) + " words"});
    a.row({"LLC Capacity",
           std::to_string(m.llcTotalBytes / 1024) + "kB"});
    a.row({"LLC Banks", std::to_string(m.numBanks())});
    a.row({"LLC Hit Latency",
           std::to_string(m.llcHitLatency) + " cycle"});
    a.row({"LLC Ways", std::to_string(m.llcWays)});
    a.row({"Frame Counters", std::to_string(m.frameCounters)});
    a.row({"DRAM Latency",
           std::to_string(m.dramLatencyCycles) + "ns"});
    a.row({"DRAM Bandwidth",
           fmt(m.dramBytesPerCycle, 0) + "GB/s"});
    a.print(std::cout);

    GpuParams g;
    Report b("Table 1b: APU", {"Component", "Setting"});
    b.row({"Compute Units (CUs)", std::to_string(g.cus)});
    b.row({"Lanes per vALU", "16"});
    b.row({"vALUs per CU", "4"});
    b.row({"vALU Latency", std::to_string(g.valuLatency)});
    b.row({"Wavefront Size", std::to_string(g.wavefrontSize)});
    b.row({"Wavefronts per CU", std::to_string(g.wavefrontsPerCu)});
    b.row({"Cacheline Size", std::to_string(g.lineBytes) + " bytes"});
    b.row({"TCP Capacity", std::to_string(g.tcpBytes / 1024) + "kB"});
    b.row({"TCP Hit Latency",
           std::to_string(g.tcpHitLatency) + " cycle"});
    b.row({"TCP Ways", std::to_string(g.tcpWays)});
    b.row({"TCC Capacity", std::to_string(g.tccBytes / 1024) + "kB"});
    b.row({"TCC Hit Latency",
           std::to_string(g.tccHitLatency) + " cycles"});
    b.row({"LLC Capacity",
           std::to_string(g.llcBytes / 1024 / 1024) + "MB"});
    b.row({"LLC Hit Latency",
           std::to_string(g.llcHitLatency) + " cycles"});
    b.row({"LLC Ways", std::to_string(g.llcWays)});
    b.row({"DRAM Latency", std::to_string(g.dramLatency) + "ns"});
    b.row({"DRAM Bandwidth", fmt(g.dramBytesPerCycle, 0) + "GB/s"});
    b.print(std::cout);
    return 0;
}
