/**
 * @file
 * Regenerates Figure 13: CPI stacks for the 64-core baseline
 * (NV_PF), the baseline with doubled DRAM bandwidth (NV_PF_2xBW),
 * and 4-wide vector groups (V4). For the vector configuration only
 * expander-core events are averaged, as in the paper's caption, and
 * an INET-stall component appears.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report t("Figure 13: CPI stacks vs DRAM bandwidth",
             {"Benchmark", "Config", "Issued", "Frame", "INET",
              "Other", "CPI"});

    const std::vector<std::string> benches = benchList();

    RunOverrides bw2;
    bw2.dramBytesPerCycle = 32.0;

    Sweep s;
    struct Ids
    {
        Sweep::Id base, twox, v4;
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches)
        ids.push_back({s.add(bench, "NV_PF"),
                       s.add(bench, "NV_PF", bw2),
                       s.add(bench, "V4")});
    s.run();

    std::vector<double> cpi_b, cpi_2x, cpi_v4;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string &bench = benches[i];
        auto mimd_row = [&](const std::string &label,
                            const RunResult &r,
                            std::vector<double> &acc) {
            bool ok = usable(r) && r.issued > 0;
            double issued = static_cast<double>(r.issued);
            t.row({bench, label, ok ? "1.00" : "FAIL",
                   ratioCell(static_cast<double>(r.stallFrame),
                             issued, ok),
                   "-",
                   ratioCell(static_cast<double>(r.stallOther),
                             issued, ok),
                   ratioCell(static_cast<double>(r.coreCycles),
                             issued, ok, &acc)});
        };
        mimd_row("B", s[ids[i].base], cpi_b);
        mimd_row("2X", s[ids[i].twox], cpi_2x);

        const RunResult &v4 = s[ids[i].v4];
        bool ok = usable(v4) && v4.expIssued > 0;
        double issued = static_cast<double>(v4.expIssued);
        t.row({bench, "V4", ok ? "1.00" : "FAIL",
               ratioCell(static_cast<double>(v4.expStallFrame),
                         issued, ok),
               ratioCell(static_cast<double>(v4.expStallInet),
                         issued, ok),
               ratioCell(static_cast<double>(v4.expStallOther),
                         issued, ok),
               ratioCell(static_cast<double>(v4.expCycles), issued,
                         ok, &cpi_v4)});
    }
    t.row({"ArithMean", "B", "-", "-", "-", "-",
           meanCell(cpi_b, false)});
    t.row({"ArithMean", "2X", "-", "-", "-", "-",
           meanCell(cpi_2x, false)});
    t.row({"ArithMean", "V4", "-", "-", "-", "-",
           meanCell(cpi_v4, false)});
    t.print(std::cout);
    std::cout << "\nPaper shape: V4 at 16 GB/s beats several "
                 "benchmarks' NV_PF even at 32 GB/s — better use of "
                 "existing bandwidth, not more of it.\n";
    return 0;
}
