/**
 * @file
 * Regenerates Figure 13: CPI stacks for the 64-core baseline
 * (NV_PF), the baseline with doubled DRAM bandwidth (NV_PF_2xBW),
 * and 4-wide vector groups (V4). For the vector configuration only
 * expander-core events are averaged, as in the paper's caption, and
 * an INET-stall component appears.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report t("Figure 13: CPI stacks vs DRAM bandwidth",
             {"Benchmark", "Config", "Issued", "Frame", "INET",
              "Other", "CPI"});
    std::vector<double> cpi_b, cpi_2x, cpi_v4;
    for (const std::string &bench : benchList()) {
        RunResult base = runChecked(bench, "NV_PF");
        RunOverrides bw2;
        bw2.dramBytesPerCycle = 32.0;
        RunResult twox = runChecked(bench, "NV_PF", bw2);
        RunResult v4 = runChecked(bench, "V4");

        auto mimd_row = [&](const std::string &label,
                            const RunResult &r) {
            double issued = static_cast<double>(r.issued);
            t.row({bench, label, "1.00",
                   fmt(static_cast<double>(r.stallFrame) / issued),
                   "-",
                   fmt(static_cast<double>(r.stallOther) / issued),
                   fmt(static_cast<double>(r.coreCycles) / issued)});
            return static_cast<double>(r.coreCycles) / issued;
        };
        cpi_b.push_back(mimd_row("B", base));
        cpi_2x.push_back(mimd_row("2X", twox));

        double issued = static_cast<double>(v4.expIssued);
        double cpi = static_cast<double>(v4.expCycles) / issued;
        t.row({bench, "V4", "1.00",
               fmt(static_cast<double>(v4.expStallFrame) / issued),
               fmt(static_cast<double>(v4.expStallInet) / issued),
               fmt(static_cast<double>(v4.expStallOther) / issued),
               fmt(cpi)});
        cpi_v4.push_back(cpi);
    }
    t.row({"ArithMean", "B", "-", "-", "-", "-", fmt(amean(cpi_b))});
    t.row({"ArithMean", "2X", "-", "-", "-", "-", fmt(amean(cpi_2x))});
    t.row({"ArithMean", "V4", "-", "-", "-", "-", fmt(amean(cpi_v4))});
    t.print(std::cout);
    std::cout << "\nPaper shape: V4 at 16 GB/s beats several "
                 "benchmarks' NV_PF even at 32 GB/s — better use of "
                 "existing bandwidth, not more of it.\n";
    return 0;
}
