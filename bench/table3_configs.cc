/**
 * @file
 * Regenerates Table 3: the benchmark configurations and their
 * features (group size, SIMD words, wide access, DAE, long lines).
 */

#include <iostream>

#include "bench_common.hh"
#include "compiler/codegen.hh"

using namespace rockcress;

int
main()
{
    Report t("Table 3: Benchmark configurations",
             {"Config", "Group Size", "SIMD Words", "Wide Access",
              "DAE", "Long Lines"});
    for (const std::string &name : allConfigNames()) {
        BenchConfig c = configByName(name);
        auto mark = [](bool b) { return b ? std::string("x") : ""; };
        t.row({c.name, std::to_string(c.groupSize),
               std::to_string(c.simdWords), mark(c.wideAccess),
               mark(c.dae), mark(c.longLines)});
    }
    t.row({"BEST_V", "4 or 16", "1", "x", "x", "?"});
    t.row({"GPU", "1", "16", "", "", ""});
    t.print(std::cout);
    return 0;
}
