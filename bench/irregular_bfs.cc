/**
 * @file
 * Regenerates the Section 6.6 irregular-workload experiment: bfs in
 * plain manycore mode versus the vector configurations. The paper
 * measures NV ~2.9x faster than either vector version — the case for
 * run-time reconfigurability.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Sweep s;
    Sweep::Id nv_id = s.add("bfs", "NV");
    Sweep::Id v4_id = s.add("bfs", "V4");
    Sweep::Id v16_id = s.add("bfs", "V16");
    s.run();

    const RunResult &nv = s[nv_id];
    const RunResult &v4 = s[v4_id];
    const RunResult &v16 = s[v16_id];

    Report t("Section 6.6: bfs (irregular) cycles",
             {"Config", "Cycles", "NV speedup over it"});
    t.row({"NV", std::to_string(nv.cycles),
           usable(nv) ? "1.00" : "FAIL"});
    t.row({"V4", std::to_string(v4.cycles),
           ratioCell(static_cast<double>(v4.cycles),
                     static_cast<double>(nv.cycles),
                     usable(nv) && usable(v4))});
    t.row({"V16", std::to_string(v16.cycles),
           ratioCell(static_cast<double>(v16.cycles),
                     static_cast<double>(nv.cycles),
                     usable(nv) && usable(v16))});
    t.print(std::cout);
    std::cout << "\nPaper shape: NV ~2.9x faster than the vector "
                 "configurations; Rockcress handles this by simply "
                 "staying in manycore mode.\n";
    return 0;
}
