/**
 * @file
 * Regenerates the Section 6.6 irregular-workload experiment: bfs in
 * plain manycore mode versus the vector configurations. The paper
 * measures NV ~2.9x faster than either vector version — the case for
 * run-time reconfigurability.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    RunResult nv = runChecked("bfs", "NV");
    RunResult v4 = runChecked("bfs", "V4");
    RunResult v16 = runChecked("bfs", "V16");

    Report t("Section 6.6: bfs (irregular) cycles",
             {"Config", "Cycles", "NV speedup over it"});
    t.row({"NV", std::to_string(nv.cycles), "1.00"});
    t.row({"V4", std::to_string(v4.cycles),
           fmt(static_cast<double>(v4.cycles) /
               static_cast<double>(nv.cycles))});
    t.row({"V16", std::to_string(v16.cycles),
           fmt(static_cast<double>(v16.cycles) /
               static_cast<double>(nv.cycles))});
    t.print(std::cout);
    std::cout << "\nPaper shape: NV ~2.9x faster than the vector "
                 "configurations; Rockcress handles this by simply "
                 "staying in manycore mode.\n";
    return 0;
}
