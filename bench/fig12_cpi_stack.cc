/**
 * @file
 * Regenerates Figure 12: CPI stacks (issued / frame stall / other
 * stall, normalized to issued instructions) for NV_PF at 1, 16, and
 * 64 cores. As core count grows, memory (frame) stalls dominate.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

namespace
{

RunOverrides
sized(int cols, int rows)
{
    RunOverrides o;
    o.cols = cols;
    o.rows = rows;
    o.llcBankBytes = 256 * 1024 / static_cast<Addr>(2 * cols);
    return o;
}

void
stack(Report &t, const std::string &bench, const std::string &label,
      const RunResult &r)
{
    double issued = static_cast<double>(r.issued);
    t.row({bench, label, fmt(1.0),
           fmt(static_cast<double>(r.stallFrame) / issued),
           fmt(static_cast<double>(r.stallOther) / issued),
           fmt(static_cast<double>(r.coreCycles) / issued)});
}

} // namespace

int
main()
{
    Report t("Figure 12: NV_PF CPI stacks by machine size",
             {"Benchmark", "Cores", "Issued", "Frame Stall",
              "Other Stall", "CPI"});
    std::vector<double> f1, f16, f64, c1, c16, c64;
    for (const std::string &bench : benchList()) {
        RunResult r1 = runChecked(bench, "NV_PF", sized(1, 1));
        RunResult r16 = runChecked(bench, "NV_PF", sized(4, 4));
        RunResult r64 = runChecked(bench, "NV_PF", sized(8, 8));
        stack(t, bench, "1", r1);
        stack(t, bench, "16", r16);
        stack(t, bench, "64", r64);
        f1.push_back(static_cast<double>(r1.stallFrame) /
                     static_cast<double>(r1.issued));
        f16.push_back(static_cast<double>(r16.stallFrame) /
                      static_cast<double>(r16.issued));
        f64.push_back(static_cast<double>(r64.stallFrame) /
                      static_cast<double>(r64.issued));
        c1.push_back(static_cast<double>(r1.coreCycles) /
                     static_cast<double>(r1.issued));
        c16.push_back(static_cast<double>(r16.coreCycles) /
                      static_cast<double>(r16.issued));
        c64.push_back(static_cast<double>(r64.coreCycles) /
                      static_cast<double>(r64.issued));
    }
    t.row({"ArithMean", "1", "1.00", fmt(amean(f1)), "-", fmt(amean(c1))});
    t.row({"ArithMean", "16", "1.00", fmt(amean(f16)), "-",
           fmt(amean(c16))});
    t.row({"ArithMean", "64", "1.00", fmt(amean(f64)), "-",
           fmt(amean(c64))});
    t.print(std::cout);
    return 0;
}
