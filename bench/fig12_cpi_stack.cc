/**
 * @file
 * Regenerates Figure 12: CPI stacks (issued / frame stall / other
 * stall, normalized to issued instructions) for NV_PF at 1, 16, and
 * 64 cores. As core count grows, memory (frame) stalls dominate.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

namespace
{

RunOverrides
sized(int cols, int rows)
{
    RunOverrides o;
    o.cols = cols;
    o.rows = rows;
    o.llcBankBytes = 256 * 1024 / static_cast<Addr>(2 * cols);
    return o;
}

/** One CPI-stack row; accumulates frame-stall and CPI components. */
void
stack(Report &t, const std::string &bench, const std::string &label,
      const RunResult &r, std::vector<double> &frame_acc,
      std::vector<double> &cpi_acc)
{
    bool ok = usable(r) && r.issued > 0;
    double issued = static_cast<double>(r.issued);
    t.row({bench, label, ok ? "1.00" : "FAIL",
           ratioCell(static_cast<double>(r.stallFrame), issued, ok,
                     &frame_acc),
           ratioCell(static_cast<double>(r.stallOther), issued, ok),
           ratioCell(static_cast<double>(r.coreCycles), issued, ok,
                     &cpi_acc)});
}

} // namespace

int
main()
{
    Report t("Figure 12: NV_PF CPI stacks by machine size",
             {"Benchmark", "Cores", "Issued", "Frame Stall",
              "Other Stall", "CPI"});

    const std::vector<std::string> benches = benchList();

    Sweep s;
    struct Ids
    {
        Sweep::Id r1, r16, r64;
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches)
        ids.push_back({s.add(bench, "NV_PF", sized(1, 1)),
                       s.add(bench, "NV_PF", sized(4, 4)),
                       s.add(bench, "NV_PF", sized(8, 8))});
    s.run();

    std::vector<double> f1, f16, f64, c1, c16, c64;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        stack(t, benches[i], "1", s[ids[i].r1], f1, c1);
        stack(t, benches[i], "16", s[ids[i].r16], f16, c16);
        stack(t, benches[i], "64", s[ids[i].r64], f64, c64);
    }
    t.row({"ArithMean", "1", "1.00", meanCell(f1, false), "-",
           meanCell(c1, false)});
    t.row({"ArithMean", "16", "1.00", meanCell(f16, false), "-",
           meanCell(c16, false)});
    t.row({"ArithMean", "64", "1.00", meanCell(f64, false), "-",
           meanCell(c64, false)});
    t.print(std::cout);
    return 0;
}
