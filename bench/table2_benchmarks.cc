/**
 * @file
 * Regenerates Table 2: the PolyBench/GPU applications, their inputs
 * (scaled for cycle-level simulation; see EXPERIMENTS.md), and
 * kernel counts.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report t("Table 2: PolyBench/GPU applications",
             {"Name", "Description", "Kernels"});
    for (const std::string &name : suiteNames()) {
        auto b = makeBenchmark(name);
        t.row({b->name(), b->description(),
               std::to_string(b->kernelCount())});
    }
    auto bfs = makeBenchmark("bfs");
    t.row({bfs->name(), bfs->description() + " (Section 6.6)",
           std::to_string(bfs->kernelCount())});
    t.print(std::cout);
    return 0;
}
