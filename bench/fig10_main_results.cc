/**
 * @file
 * Regenerates Figure 10, the paper's headline result: per-benchmark
 * (a) speedup relative to the NV baseline, (b) I-cache accesses
 * relative to NV, and (c) total on-chip energy relative to NV, for
 * NV, NV_PF, and BEST_V (the faster of V4 and V16, as the paper's
 * compile-time vector-length selection).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report speed("Figure 10a: Speedup relative to NV",
                 {"Benchmark", "NV", "NV_PF", "BEST_V", "(best cfg)"});
    Report icache("Figure 10b: I-cache accesses relative to NV",
                  {"Benchmark", "NV", "NV_PF", "BEST_V"});
    Report energy("Figure 10c: Total on-chip energy relative to NV",
                  {"Benchmark", "NV", "NV_PF", "BEST_V"});
    Report lint("Perf-lint: simulated per-core IPC / certified "
                "static bound",
                {"Benchmark", "NV", "NV_PF", "V4", "V16"});

    const std::vector<std::string> benches = benchList();

    Sweep s;
    struct Ids
    {
        Sweep::Id nv, pf, v4, v16;
    };
    std::vector<Ids> ids;
    for (const std::string &bench : benches)
        ids.push_back({s.add(bench, "NV"), s.add(bench, "NV_PF"),
                       s.add(bench, "V4"), s.add(bench, "V16")});
    s.run();

    std::vector<double> sp_pf, sp_best, ic_pf, ic_best, en_pf, en_best;

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string &bench = benches[i];
        const RunResult &nv = s[ids[i].nv];
        const RunResult &pf = s[ids[i].pf];
        const RunResult &best = betterOf(s[ids[i].v4], s[ids[i].v16]);

        double base = static_cast<double>(nv.cycles);
        speed.row({bench, usable(nv) ? "1.00" : "FAIL",
                   ratioCell(base, static_cast<double>(pf.cycles),
                             usable(nv) && usable(pf), &sp_pf),
                   ratioCell(base, static_cast<double>(best.cycles),
                             usable(nv) && usable(best), &sp_best),
                   best.config});
        double i_base = static_cast<double>(nv.icacheAccesses);
        icache.row(
            {bench, usable(nv) ? "1.00" : "FAIL",
             ratioCell(static_cast<double>(pf.icacheAccesses), i_base,
                       usable(nv) && usable(pf), &ic_pf),
             ratioCell(static_cast<double>(best.icacheAccesses),
                       i_base, usable(nv) && usable(best), &ic_best)});
        energy.row({bench, usable(nv) ? "1.00" : "FAIL",
                    ratioCell(pf.energyPj, nv.energyPj,
                              usable(nv) && usable(pf), &en_pf),
                    ratioCell(best.energyPj, nv.energyPj,
                              usable(nv) && usable(best), &en_best)});
        // A measured IPC above the certified bound would already have
        // failed the run (harness/runner.cc), so this table can only
        // show utilizations <= 1.
        auto ipcCell = [](const RunResult &r) {
            if (!usable(r) || !(r.staticIpcBound > 0))
                return std::string("FAIL");
            return fmt(r.measuredIpc) + "/" + fmt(r.staticIpcBound);
        };
        lint.row({bench, ipcCell(nv), ipcCell(pf),
                  ipcCell(s[ids[i].v4]), ipcCell(s[ids[i].v16])});
    }

    speed.row({"GeoMean", "1.00", meanCell(sp_pf), meanCell(sp_best),
               ""});
    icache.row({"GeoMean", "1.00", meanCell(ic_pf), meanCell(ic_best)});
    energy.row({"GeoMean", "1.00", meanCell(en_pf), meanCell(en_best)});

    speed.print(std::cout);
    icache.print(std::cout);
    energy.print(std::cout);
    lint.print(std::cout);

    if (!sp_pf.empty() && !sp_best.empty() && !en_pf.empty() &&
        !en_best.empty()) {
        std::cout
            << "\nHeadline: BEST_V speedup over NV_PF (paper: ~1.7x): "
            << fmt(geomean(sp_best) / geomean(sp_pf)) << "x\n"
            << "Headline: BEST_V energy vs NV_PF (paper: ~0.78x): "
            << fmt(geomean(en_best) / geomean(en_pf)) << "x\n";
    }
    return 0;
}
