/**
 * @file
 * Regenerates Figure 10, the paper's headline result: per-benchmark
 * (a) speedup relative to the NV baseline, (b) I-cache accesses
 * relative to NV, and (c) total on-chip energy relative to NV, for
 * NV, NV_PF, and BEST_V (the faster of V4 and V16, as the paper's
 * compile-time vector-length selection).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rockcress;

int
main()
{
    Report speed("Figure 10a: Speedup relative to NV",
                 {"Benchmark", "NV", "NV_PF", "BEST_V", "(best cfg)"});
    Report icache("Figure 10b: I-cache accesses relative to NV",
                  {"Benchmark", "NV", "NV_PF", "BEST_V"});
    Report energy("Figure 10c: Total on-chip energy relative to NV",
                  {"Benchmark", "NV", "NV_PF", "BEST_V"});

    std::vector<double> sp_pf, sp_best, ic_pf, ic_best, en_pf, en_best;

    for (const std::string &bench : benchList()) {
        RunResult nv = runChecked(bench, "NV");
        RunResult pf = runChecked(bench, "NV_PF");
        RunResult v4 = runChecked(bench, "V4");
        RunResult v16 = runChecked(bench, "V16");
        const RunResult &best = betterOf(v4, v16);

        double base = static_cast<double>(nv.cycles);
        double s_pf = base / static_cast<double>(pf.cycles);
        double s_best = base / static_cast<double>(best.cycles);
        double i_base = static_cast<double>(nv.icacheAccesses);
        double i_pf = static_cast<double>(pf.icacheAccesses) / i_base;
        double i_best =
            static_cast<double>(best.icacheAccesses) / i_base;
        double e_pf = pf.energyPj / nv.energyPj;
        double e_best = best.energyPj / nv.energyPj;

        speed.row({bench, "1.00", fmt(s_pf), fmt(s_best), best.config});
        icache.row({bench, "1.00", fmt(i_pf), fmt(i_best)});
        energy.row({bench, "1.00", fmt(e_pf), fmt(e_best)});

        sp_pf.push_back(s_pf);
        sp_best.push_back(s_best);
        ic_pf.push_back(i_pf);
        ic_best.push_back(i_best);
        en_pf.push_back(e_pf);
        en_best.push_back(e_best);
    }

    speed.row({"GeoMean", "1.00", fmt(geomean(sp_pf)),
               fmt(geomean(sp_best)), ""});
    icache.row({"GeoMean", "1.00", fmt(geomean(ic_pf)),
                fmt(geomean(ic_best))});
    energy.row({"GeoMean", "1.00", fmt(geomean(en_pf)),
                fmt(geomean(en_best))});

    speed.print(std::cout);
    icache.print(std::cout);
    energy.print(std::cout);

    std::cout << "\nHeadline: BEST_V speedup over NV_PF (paper: ~1.7x): "
              << fmt(geomean(sp_best) / geomean(sp_pf)) << "x\n"
              << "Headline: BEST_V energy vs NV_PF (paper: ~0.78x): "
              << fmt(geomean(en_best) / geomean(en_pf)) << "x\n";
    return 0;
}
