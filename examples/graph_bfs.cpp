/**
 * @file
 * The reconfigurability story (Sections 6.6 and 8): the same fabric
 * runs an irregular graph search in plain manycore mode and a
 * regular kernel in vector mode — software picks the parallelism
 * strategy per kernel at run time.
 */

#include <iostream>

#include "harness/runner.hh"

using namespace rockcress;

int
main()
{
    // Irregular: bfs prefers MIMD.
    RunResult bfs_nv = runManycore("bfs", "NV");
    RunResult bfs_v4 = runManycore("bfs", "V4");

    // Regular: mvt prefers vector groups.
    RunResult mvt_pf = runManycore("mvt", "NV_PF");
    RunResult mvt_v16 = runManycore("mvt", "V16");

    std::cout << "One fabric, two personalities\n";
    std::cout << "  bfs  (irregular): NV " << bfs_nv.cycles
              << " cycles vs V4 " << bfs_v4.cycles << " -> MIMD wins "
              << static_cast<double>(bfs_v4.cycles) /
                     static_cast<double>(bfs_nv.cycles)
              << "x\n";
    std::cout << "  mvt  (regular):   NV_PF " << mvt_pf.cycles
              << " cycles vs V16 " << mvt_v16.cycles
              << " -> vector wins "
              << static_cast<double>(mvt_pf.cycles) /
                     static_cast<double>(mvt_v16.cycles)
              << "x\n";
    std::cout << "Software-defined vectors let the application choose "
                 "per kernel; no silicon is re-spun.\n";
    bool ok = bfs_nv.ok && bfs_v4.ok && mvt_pf.ok && mvt_v16.ok;
    if (!ok) {
        std::cerr << "verification failed: " << bfs_nv.error
                  << bfs_v4.error << mvt_pf.error << mvt_v16.error
                  << "\n";
    }
    return ok ? 0 : 1;
}
