/**
 * @file
 * Software-defined vectors end to end: a 1D blur over image rows
 * using a vector group — the scalar core group-loads row chunks into
 * the lanes' frame queues while microthreads compute, exactly the
 * VECTORIZE / VECTOR_LOAD / VECTOR_ISSUE pattern of Figure 8.
 */

#include <cmath>
#include <iostream>

#include "compiler/codegen.hh"
#include "kernels/emitters.hh"
#include "machine/machine.hh"

using namespace rockcress;

int
main()
{
    MachineParams params;
    params.cols = 4;
    params.rows = 4;   // 16 tiles: one group of 1 scalar + 8 lanes.
    Machine machine(params);

    const int vlen = 8;
    const int chunk = 8;     // Words per lane per frame.
    const int chunks = 24;
    const int n = vlen * chunk * chunks;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 65536;
    for (int i = 0; i < n; ++i)
        machine.mem().writeFloat(in + 4 * static_cast<Addr>(i),
                                 std::sin(0.1f * static_cast<float>(i)));

    BenchConfig cfg;
    cfg.name = "example_v8";
    cfg.groupSize = vlen;
    cfg.wideAccess = true;
    cfg.dae = true;

    SpmdBuilder b("image_pipeline", cfg, params);
    Label init_mt = b.declareMicrothread();
    Label body_mt = b.declareMicrothread();

    // Lanes: out[i] = 0.25*in[i] + 0.5*in[i] + 0.25*in[i] (a toy
    // pointwise filter on the streamed chunk).
    // Group loads hand lane l the words {s*16 + l*2 + t}: each frame
    // element (s*2 + t) of lane l mirrors global element
    // s*16 + l*2 + t, so the store offsets below are strided.
    const int w = 16 / vlen;   // words per lane per group load
    b.defineMicrothread(init_mt, [&](Assembler &a) {
        emitFConst(a, f(10), 0.25f, x(7));
        emitFConst(a, f(11), 0.5f, x(7));
        a.csrr(x(5), Csr::GroupTid);
        a.la(x(6), out);
        emitScale(a, x(8), x(5), w * 4, x(7));
        a.add(x(6), x(6), x(8));        // lane base in the output
        a.li(x(9), vlen * chunk * 4);   // advance per frame
    });
    b.defineMicrothread(body_mt, [&](Assembler &a) {
        a.frameStart(x(13));
        for (int p = 0; p < chunk; ++p) {
            int out_off = (p / w) * vlen * w * 4 + (p % w) * 4;
            a.flw(f(0), x(13), 4 * p);
            a.fmul(f(1), f(0), f(10));
            a.fmadd(f(1), f(0), f(11), f(1));
            a.fmadd(f(1), f(0), f(10), f(1));
            a.fsw(f(1), x(6), out_off);
        }
        a.add(x(6), x(6), x(9));
        a.remem();
    });

    b.vectorPhase(chunk, 8, [&](Assembler &a) {
        a.vissue(init_mt);
        a.la(x(5), in);
        DaeStreamSpec spec;
        spec.iters = chunks;
        spec.frameBytes = chunk * 4;
        spec.numFrames = 8;
        spec.bodyMt = body_mt;
        spec.fill = [&](Assembler &aa, RegIdx off) {
            // A group load is capped at one cache line (16 words), so
            // each 8-word-per-lane frame takes 4 group loads of 2
            // words per lane.
            const int w = 16 / vlen;
            for (int s = 0; s < chunk / w; ++s) {
                RegIdx areg = x(5), oreg = off;
                if (s > 0) {
                    aa.addi(x(10), x(5), s * w * vlen * 4);
                    areg = x(10);
                    aa.addi(x(11), off, s * w * 4);
                    oreg = x(11);
                }
                aa.vload(areg, oreg, 0, w, VloadVariant::Group);
            }
            aa.addi(x(5), x(5), vlen * chunk * 4);
        };
        DaeStreamRegs regs;
        FrameRotator rot(a, regs.off, spec.frameBytes, spec.numFrames);
        rot.emitInit();
        emitScalarStream(a, spec, rot, regs);
    });
    machine.loadAll(std::make_shared<Program>(b.finish()));

    GroupPlan plan;
    for (CoreId c = 0; c <= vlen; ++c)
        plan.chain.push_back(c);
    machine.planGroup(plan);

    Cycle cycles = machine.run();

    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
        float v = machine.mem().readFloat(in + 4 * static_cast<Addr>(i));
        float want = v * (0.25f + 0.5f + 0.25f);
        float got =
            machine.mem().readFloat(out + 4 * static_cast<Addr>(i));
        ok = std::fabs(want - got) < 1e-4f;
    }

    std::cout << "vector group (1 scalar + " << vlen
              << " lanes) filtered " << n << " samples in " << cycles
              << " cycles: " << (ok ? "OK" : "WRONG") << "\n";
    std::cout << "wide loads issued by the scalar core: "
              << machine.stats().sumSuffix(".n_vload") << "\n";
    std::cout << "instructions forwarded on the inet: "
              << machine.stats().get("inet.sends") << "\n";
    std::cout << "I-cache accesses (only scalar+expander fetch): "
              << machine.stats().sumSuffix("icache.accesses") << "\n";
    return ok ? 0 : 1;
}
