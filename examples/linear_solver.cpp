/**
 * @file
 * Domain example: Jacobi iteration for A x = b built from the
 * library's matvec emitters, comparing the MIMD baseline against a
 * software-defined vector configuration on the same fabric — the
 * "choose your own parallelism strategy" workflow of Section 8.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "kernels/common.hh"
#include "kernels/emitters.hh"
#include "machine/machine.hh"

using namespace rockcress;

namespace
{

constexpr int N = 128;
constexpr int iterations = 3;

/** Build, run, and time the Jacobi sweep under one configuration. */
Cycle
solve(const BenchConfig &cfg, std::vector<float> &result)
{
    MachineParams params = machineFor(cfg);
    Machine machine(params);

    // Diagonally dominant A; b = A * ones, so x converges toward 1.
    std::vector<float> a(static_cast<size_t>(N) * N);
    std::vector<float> b_vec(N, 0.0f);
    Rng rng(99);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            float v = i == j ? static_cast<float>(N)
                             : 0.01f * static_cast<float>(
                                           rng.below(100));
            a[static_cast<size_t>(i) * N + j] = v;
            b_vec[static_cast<size_t>(i)] += v;
        }
    }
    // Jacobi: x' = x + Dinv (b - A x). Fold into the library's
    // matvec phases: r = A x (set), then a map phase computes
    // x' = x + (b - r) / A[i][i] as a small MIMD phase.
    Addr aAddr = AddrMap::globalBase;
    Addr bAddr = aAddr + N * N * 4;
    Addr xAddr = bAddr + N * 4;
    Addr rAddr = xAddr + N * 4;
    Addr partials = rAddr + N * 4;
    uploadFloats(machine.mem(), aAddr, a);
    uploadFloats(machine.mem(), bAddr, b_vec);
    uploadFloats(machine.mem(), xAddr,
                 std::vector<float>(N, 0.0f));

    SpmdBuilder builder("jacobi_" + cfg.name, cfg, params);
    for (int it = 0; it < iterations; ++it) {
        MatvecSpec mv;
        mv.mat = aAddr;
        mv.vecIn = xAddr;
        mv.out = rAddr;
        mv.partials = partials;
        mv.rows = N;
        mv.cols = N;
        emitMatvecPhase(builder, mv);
        builder.mimdPhase([&](Assembler &as) {
            int W = builder.activeCores();
            as.la(x(5), aAddr);
            as.la(x(6), bAddr);
            as.la(x(7), xAddr);
            as.la(x(8), rAddr);
            as.mv(x(9), rCoreId);
            as.li(x(10), N);
            Loop l(as, x(9), x(10), W);
            {
                emitAffine(as, x(11), x(6), x(9), 4, x(12));
                as.flw(f(0), x(11), 0);                  // b[i]
                emitAffine(as, x(11), x(8), x(9), 4, x(12));
                as.flw(f(1), x(11), 0);                  // r[i]
                as.fsub(f(0), f(0), f(1));               // b - Ax
                emitAffine(as, x(11), x(5), x(9), (N + 1) * 4, x(12));
                as.flw(f(2), x(11), 0);                  // A[i][i]
                as.fdiv(f(0), f(0), f(2));
                emitAffine(as, x(11), x(7), x(9), 4, x(12));
                as.flw(f(1), x(11), 0);
                as.fadd(f(0), f(0), f(1));
                as.fsw(f(0), x(11), 0);                  // x'
            }
            l.end();
        });
    }
    machine.loadAll(std::make_shared<Program>(builder.finish()));
    if (cfg.isVector()) {
        int tpg = cfg.groupSize + 1;
        for (int g = 0; g < machine.numCores() / tpg; ++g) {
            GroupPlan plan;
            for (int i = 0; i < tpg; ++i)
                plan.chain.push_back(g * tpg + i);
            machine.planGroup(plan);
        }
    }
    Cycle cycles = machine.run();
    result = downloadFloats(machine.mem(), xAddr, N);
    return cycles;
}

} // namespace

int
main()
{
    std::vector<float> x_mimd, x_vec;
    Cycle mimd = solve(configByName("NV_PF"), x_mimd);
    Cycle vec = solve(configByName("V4"), x_vec);

    float worst = 0;
    for (int i = 0; i < N; ++i)
        worst = std::max(worst,
                         std::fabs(x_mimd[static_cast<size_t>(i)] -
                                   x_vec[static_cast<size_t>(i)]));

    std::cout << "Jacobi " << iterations << " sweeps over a " << N
              << "x" << N << " system\n";
    std::cout << "  NV_PF (manycore): " << mimd << " cycles\n";
    std::cout << "  V4 (vector groups): " << vec << " cycles ("
              << static_cast<double>(mimd) / static_cast<double>(vec)
              << "x)\n";
    std::cout << "  max |x_mimd - x_vec| = " << worst << "\n";
    return worst < 1e-3f ? 0 : 1;
}
