/**
 * @file
 * Quickstart: build a manycore machine, write a small SPMD program
 * with the assembler DSL, run it, and read back results and
 * statistics. Start here.
 */

#include <iostream>

#include "compiler/codegen.hh"
#include "machine/machine.hh"

using namespace rockcress;

int
main()
{
    // A 4x4 fabric with default Table 1a parameters.
    MachineParams params;
    params.cols = 4;
    params.rows = 4;
    Machine machine(params);

    // Put an array of 256 words in the DRAM-backed global heap.
    const int n = 256;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 4096;
    for (int i = 0; i < n; ++i)
        machine.mem().writeWord(in + 4 * static_cast<Addr>(i),
                                static_cast<Word>(i));

    // SPMD program: every core doubles its strided share of the
    // array. csrr exposes the core id; the Loop helper emits a
    // bottom-tested counted loop.
    Assembler as("double_array");
    as.csrr(x(5), Csr::CoreId);      // worker id
    as.la(x(6), in);
    as.la(x(7), out);
    as.li(x(8), n);
    {
        Loop loop(as, x(5), x(8), machine.numCores());
        emitAffine(as, x(9), x(6), x(5), 4, x(11));
        as.lw(x(10), x(9), 0);
        as.slli(x(10), x(10), 1);    // *2
        emitAffine(as, x(9), x(7), x(5), 4, x(11));
        as.sw(x(10), x(9), 0);
        loop.end();
    }
    as.barrier();
    as.halt();

    machine.loadAll(std::make_shared<Program>(as.finish()));
    Cycle cycles = machine.run();

    bool ok = true;
    for (int i = 0; i < n; ++i) {
        ok = ok && machine.mem().readWord(
                       out + 4 * static_cast<Addr>(i)) ==
                       static_cast<Word>(2 * i);
    }

    std::cout << "doubled " << n << " words on "
              << machine.numCores() << " cores in " << cycles
              << " cycles: " << (ok ? "OK" : "WRONG") << "\n";
    std::cout << "global loads issued: "
              << machine.stats().sumSuffix(".n_load_global") << "\n";
    std::cout << "NoC word-hops: "
              << machine.stats().get("noc.word_hops") << "\n";
    return ok ? 0 : 1;
}
