#!/usr/bin/env bash
# Run clang-tidy over the sources using the CMake compile database.
#
# Usage: scripts/lint.sh [build-dir] [extra clang-tidy args...]
#   build-dir defaults to ./build; it must have been configured (the
#   root CMakeLists.txt exports compile_commands.json automatically).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift 2>/dev/null || true

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
        tidy="$candidate"
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "lint.sh: clang-tidy not found on PATH; skipping lint." >&2
    echo "         Install clang-tidy (LLVM) to enable this check." >&2
    exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "lint.sh: no compile database at $db" >&2
    echo "         Configure first: cmake -B \"$build_dir\" -S \"$repo_root\"" >&2
    exit 1
fi

# Lint the project's own translation units (not tests' generated
# files); the .clang-tidy at the repo root supplies the check list.
# Only pass directories that exist so `find` cannot fail the pipe
# under pipefail on a partial checkout.
dirs=""
for d in src tests bench examples tools; do
    [ -d "$repo_root/$d" ] && dirs="$dirs $repo_root/$d"
done
# shellcheck disable=SC2086  # dirs is a space-separated list.
files=$(find $dirs -name '*.cc' | sort)
if [ -z "$files" ]; then
    echo "lint.sh: no source files found" >&2
    exit 1
fi

echo "lint.sh: running $tidy over $(echo "$files" | wc -l) files"
status=0
for f in $files; do
    "$tidy" -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status
