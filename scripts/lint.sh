#!/usr/bin/env bash
# Run clang-tidy over the sources using the CMake compile database.
#
# Usage: scripts/lint.sh [build-dir] [extra clang-tidy args...]
#   build-dir defaults to ./build; it must have been configured (the
#   root CMakeLists.txt exports compile_commands.json automatically).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift 2>/dev/null || true

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
        tidy="$candidate"
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "lint.sh: clang-tidy not found on PATH; skipping lint." >&2
    echo "         Install clang-tidy (LLVM) to enable this check." >&2
    exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "lint.sh: no compile database at $db" >&2
    echo "         Configure first: cmake -B \"$build_dir\" -S \"$repo_root\"" >&2
    exit 1
fi

# Lint the project's own translation units (not tests' generated
# files); the .clang-tidy at the repo root supplies the check list.
files=$(find "$repo_root/src" "$repo_root/tests" "$repo_root/bench" \
             "$repo_root/examples" "$repo_root/tools" \
             -name '*.cc' 2> /dev/null | sort)
if [ -z "$files" ]; then
    echo "lint.sh: no source files found" >&2
    exit 1
fi

echo "lint.sh: running $tidy over $(echo "$files" | wc -l) files"
status=0
for f in $files; do
    "$tidy" -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status
