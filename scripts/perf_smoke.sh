#!/usr/bin/env bash
# Wall-clock perf-regression smoke for the fast-tick simulation
# kernel: run rc_perf on the perf basket (the 15-bench NV column,
# where quiescent stretches are longest and the scheduler's win is
# robustly above host noise) and require the median speedup of
# fast-tick over the naive tick-everything oracle to clear the gate. rc_perf itself asserts that simulated cycle counts are
# identical between the kernels on every repetition, so the gate
# measures host time only and cannot be satisfied by changing
# simulated behaviour.
#
# The gate (default 1.5x) is deliberately far below the typical
# speedup so that a shared/loaded CI host does not flake; a genuine
# scheduling regression (fast-tick degenerating to naive) lands at
# ~1.0x and still fails crisply.
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: ./build)
# Env:   ROCKCRESS_PERF_GATE     speedup gate (default 1.5)
#        ROCKCRESS_PERF_REPS     repetitions per kernel (default 3)
#        ROCKCRESS_PERF_BASKET   perf|golden|fig10 (default perf)
#        ROCKCRESS_PERF_OUT      output JSON (default: temp file)
set -euo pipefail

build_dir="${1:-build}"
bin="$build_dir/tools/rc_perf"
if [[ ! -x "$bin" ]]; then
    echo "perf_smoke: $bin not built" >&2
    exit 1
fi

gate="${ROCKCRESS_PERF_GATE:-1.5}"
reps="${ROCKCRESS_PERF_REPS:-3}"
basket="${ROCKCRESS_PERF_BASKET:-perf}"

if [[ -n "${ROCKCRESS_PERF_OUT:-}" ]]; then
    out="$ROCKCRESS_PERF_OUT"
else
    workdir="$(mktemp -d "${TMPDIR:-/tmp}/rockcress_perf.XXXXXX")"
    trap 'rm -rf "$workdir"' EXIT
    out="$workdir/BENCH_perf.json"
fi

echo "perf_smoke: basket=$basket reps=$reps gate=${gate}x" >&2
"$bin" --basket "$basket" --reps "$reps" --out "$out" \
       --min-speedup "$gate"

# The artifact must be parseable JSON with a median_speedup field
# (CI archives it; a malformed file would poison the perf history).
grep -q '"median_speedup"' "$out" || {
    echo "perf_smoke: $out is missing median_speedup" >&2
    exit 1
}
echo "perf_smoke: ok ($out)" >&2
