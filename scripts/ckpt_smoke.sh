#!/usr/bin/env bash
# Checkpoint/resume smoke: the snapshot layer's three load-bearing
# guarantees, end to end.
#   1. Byte-equality: snapshots taken mid-run are byte-identical
#      between the fast-tick and naive kernels on golden benches, and
#      a file-based runner resume reproduces the straight run's
#      artifact exactly (the focused test_checkpoint subset).
#   2. Bisection: rc_bisect localizes a seeded register-corruption
#      fixture to a <=1024-cycle window from checkpoints alone; the
#      report is left at <build>/bisect_report.txt for CI to archive.
#   3. Fuzz: a short ref_fuzz --checkpoint campaign (chunked runs
#      through seeded snapshot/restore hops must match unchunked).
# If an ASan build (build-asan/, or $ROCKCRESS_ASAN_BUILD) has the
# ref_fuzz binary, the fuzz leg also runs under ASan, mirroring
# fuzz_smoke.sh's pattern.
#
# Usage: scripts/ckpt_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
gtest_bin="$build_dir/tests/test_checkpoint"
bisect_bin="$build_dir/tools/rc_bisect"
fuzz_bin="$build_dir/src/ref/ref_fuzz"
for bin in "$gtest_bin" "$bisect_bin" "$fuzz_bin"; do
    if [[ ! -x "$bin" ]]; then
        echo "ckpt_smoke: $bin not built" >&2
        exit 1
    fi
done

workdir="$(mktemp -d "${TMPDIR:-/tmp}/rockcress_ckpt.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

echo "ckpt_smoke: [1/3] snapshot byte-equality (golden subset)" >&2
TMPDIR="$workdir" "$gtest_bin" --gtest_brief=1 --gtest_filter=\
'*FastAndNaiveSnapshotsAreByteIdentical*:CheckpointFormat.*:CheckpointRunner.*' >&2

report="$build_dir/bisect_report.txt"
echo "ckpt_smoke: [2/3] rc_bisect seeded divergence fixture" >&2
"$bisect_bin" --bench atax --config V4 \
              --fault-cycle 40000 --fault-core 3 --fault-reg 2 \
              --fault-mask 0x4 --report "$report" >&2
grep -q 'divergence window' "$report" || {
    echo "ckpt_smoke: $report is missing the divergence window" >&2
    exit 1
}
echo "ckpt_smoke: bisect report at $report" >&2

seeds="${ROCKCRESS_CKPT_SEEDS:-25}"
echo "ckpt_smoke: [3/3] checkpoint fuzz ($seeds seeds)" >&2
"$fuzz_bin" --checkpoint --seeds "$seeds" >&2

asan_dir="${ROCKCRESS_ASAN_BUILD:-$(dirname "$build_dir")/build-asan}"
asan_bin="$asan_dir/src/ref/ref_fuzz"
if [[ -x "$asan_bin" ]]; then
    echo "ckpt_smoke: running 10 seeds under ASan" >&2
    "$asan_bin" --checkpoint --seeds 10 >&2
    echo "ckpt_smoke: ASan campaign OK" >&2
else
    echo "ckpt_smoke: no ASan build at $asan_dir (skipping;" \
         "configure with -DENABLE_SANITIZERS=address to enable)" >&2
fi
echo "ckpt_smoke: PASS" >&2
