#!/usr/bin/env bash
# Race-detection smoke: a seeded racy fixture must be rejected by the
# static race pass (two-sided witness) AND flagged by the frame
# sanitizer, while the golden bench x config suite runs clean with
# the sanitizer enabled. If an ASan build (build-asan/, or
# $ROCKCRESS_ASAN_BUILD) has the rc_racesmoke binary, the same smoke
# also runs under ASan, mirroring fuzz_smoke.sh's pattern.
#
# Usage: scripts/race_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
bin="$build_dir/tools/rc_racesmoke"
if [[ ! -x "$bin" ]]; then
    echo "race_smoke: $bin not built" >&2
    exit 1
fi

"$bin" >&2

asan_dir="${ROCKCRESS_ASAN_BUILD:-$(dirname "$build_dir")/build-asan}"
asan_bin="$asan_dir/tools/rc_racesmoke"
if [[ -x "$asan_bin" ]]; then
    echo "race_smoke: re-running under ASan" >&2
    "$asan_bin" >&2
    echo "race_smoke: ASan run OK" >&2
else
    echo "race_smoke: no ASan build at $asan_dir (skipping;" \
         "configure with -DENABLE_SANITIZERS=address to enable)" >&2
fi
echo "race_smoke: PASS" >&2
