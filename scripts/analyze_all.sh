#!/usr/bin/env bash
# Run the static analyzer + performance-bound lint (tools/rc_analyze)
# over every shipped benchmark x configuration pair and fail on any
# finding: the shipped kernels are the analyzer's zero-false-positive
# regression suite. JSON reports land in <build>/analysis/ so a
# failing run leaves the machine-readable evidence behind.
#
# Usage: scripts/analyze_all.sh [build-dir]
#   build-dir defaults to ./build and must contain tools/rc_analyze.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
analyze="$build_dir/tools/rc_analyze"

if [ ! -x "$analyze" ]; then
    echo "analyze_all.sh: $analyze not built" >&2
    echo "  Build first: cmake --build \"$build_dir\" --target rc_analyze" >&2
    exit 1
fi

out_dir="$build_dir/analysis"
mkdir -p "$out_dir"

"$analyze" --out "$out_dir"
status=$?
reports=$(ls "$out_dir"/*.json 2> /dev/null | wc -l)
if [ "$status" -ne 0 ]; then
    echo "analyze_all.sh: $status benchmark/config pair(s) with" \
         "findings (reports in $out_dir)" >&2
    exit 1
fi
echo "analyze_all.sh: $reports reports, zero findings ($out_dir)"
exit 0
