#!/usr/bin/env bash
# Run the static analyzer + performance-bound lint (tools/rc_analyze)
# over every shipped benchmark x configuration pair and fail on any
# finding: the shipped kernels are the analyzer's zero-false-positive
# regression suite. JSON reports land in <build>/analysis/ so a
# failing run leaves the machine-readable evidence behind.
#
# Usage: scripts/analyze_all.sh [build-dir]
#   build-dir defaults to ./build and must contain tools/rc_analyze.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
analyze="$build_dir/tools/rc_analyze"

if [ ! -x "$analyze" ]; then
    echo "analyze_all.sh: $analyze not built" >&2
    echo "  Build first: cmake --build \"$build_dir\" --target rc_analyze" >&2
    exit 1
fi

out_dir="$build_dir/analysis"
mkdir -p "$out_dir"

# Capture the exit status explicitly: under `set -e` a bare failing
# command would abort before the diagnostic below could print.
status=0
"$analyze" --out "$out_dir" || status=$?
reports=$(find "$out_dir" -maxdepth 1 -name '*.json' | wc -l)
if [ "$status" -ne 0 ]; then
    echo "analyze_all.sh: $status benchmark/config pair(s) with" \
         "findings (reports in $out_dir)" >&2
    exit 1
fi

# Zero findings alone could also mean the translation validator never
# engaged: every vector configuration (V4*/V16*) must report at least
# one manifest stream, all of them proved, with no witnesses. The one
# exemption is gramschm, whose column-major access pattern defeats
# wide loads on every configuration (Section 6.3), so it carries no
# DAE streams to validate.
equiv_bad=0
for report in "$out_dir"/*_V4*.json "$out_dir"/*_V16*.json; do
    [ -e "$report" ] || continue
    case "$(basename "$report")" in
        gramschm_*) continue ;;
    esac
    if ! grep -q \
        '"equiv":{"findings":\[\],"proved":\([1-9][0-9]*\),"streams":\1}' \
        "$report"; then
        echo "analyze_all.sh: equiv pass did not prove every stream" \
             "in $(basename "$report")" >&2
        equiv_bad=1
    fi
done
if [ "$equiv_bad" -ne 0 ]; then
    exit 1
fi

echo "analyze_all.sh: $reports reports, zero findings," \
     "all vector streams proved ($out_dir)"
exit 0
