#!/usr/bin/env bash
# Translation-validation smoke: each seeded miscompile kind (shifted
# fill lane, skewed stream stride, off-by-one trip count, flipped
# predicate polarity) must be rejected by the static equivalence pass
# with the expected finding kind AND diverge on the batch functional
# reference, while a golden bench x config sample proves clean through
# the RunOverrides::equiv plumbing. If an ASan build (build-asan/, or
# $ROCKCRESS_ASAN_BUILD) has the rc_equivsmoke binary, the same smoke
# also runs under ASan, mirroring race_smoke.sh's pattern.
#
# Usage: scripts/equiv_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
bin="$build_dir/tools/rc_equivsmoke"
if [[ ! -x "$bin" ]]; then
    echo "equiv_smoke: $bin not built" >&2
    exit 1
fi

"$bin" >&2

asan_dir="${ROCKCRESS_ASAN_BUILD:-$(dirname "$build_dir")/build-asan}"
asan_bin="$asan_dir/tools/rc_equivsmoke"
if [[ -x "$asan_bin" ]]; then
    echo "equiv_smoke: re-running under ASan" >&2
    "$asan_bin" >&2
    echo "equiv_smoke: ASan run OK" >&2
else
    echo "equiv_smoke: no ASan build at $asan_dir (skipping;" \
         "configure with -DENABLE_SANITIZERS=address to enable)" >&2
fi
echo "equiv_smoke: PASS" >&2
