#!/usr/bin/env bash
# Trace-subsystem smoke, the end-to-end gate for src/trace:
#
#   1. `rc_trace summarize` over the full golden suite must report
#      "cross-check vs flat counters: OK" for every pair — the
#      trace-rebuilt CPI stack equals the flat statistics exactly.
#   2. The summarize output must be byte-identical at ROCKCRESS_JOBS=1
#      and ROCKCRESS_JOBS=4 (deterministic parallel fan-out).
#   3. An exported trace must be valid JSON in the Chrome trace-event
#      shape Perfetto loads (non-empty traceEvents with ph records).
#
# Full-coverage traces of a golden pair hold ~10M 24-byte events, so
# the parallel-determinism and export passes bound the capture with
# --max; only the serial full-coverage pass traces everything.
#
# Usage: scripts/trace_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
rc="$build_dir/tools/rc_trace"
if [[ ! -x "$rc" ]]; then
    echo "trace_smoke: $rc not built" >&2
    exit 1
fi

tmp="$(mktemp -d "${TMPDIR:-/tmp}/rockcress_trace.XXXXXX")"
trap 'rm -rf "$tmp"' EXIT

echo "trace_smoke: full-coverage summarize of the golden suite" >&2
ROCKCRESS_JOBS=1 "$rc" summarize > "$tmp/full.txt"
ok_lines=$(grep -c "cross-check vs flat counters: OK" "$tmp/full.txt")
if [[ "$ok_lines" -ne 5 ]]; then
    echo "trace_smoke: expected 5 cross-check OK lines, got $ok_lines" >&2
    cat "$tmp/full.txt" >&2
    exit 1
fi

echo "trace_smoke: job-count determinism (bounded capture)" >&2
ROCKCRESS_JOBS=1 "$rc" summarize --max 1000000 > "$tmp/j1.txt"
ROCKCRESS_JOBS=4 "$rc" summarize --max 1000000 > "$tmp/j4.txt"
if ! cmp -s "$tmp/j1.txt" "$tmp/j4.txt"; then
    echo "trace_smoke: summarize output differs across job counts" >&2
    diff "$tmp/j1.txt" "$tmp/j4.txt" >&2 || true
    exit 1
fi

echo "trace_smoke: Perfetto export shape" >&2
"$rc" export --out "$tmp" --max 200000 atax/V4 >&2
json="$tmp/atax_V4.trace.json"
if [[ ! -s "$json" ]]; then
    echo "trace_smoke: $json missing or empty" >&2
    exit 1
fi
python3 - "$json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
phases = {e["ph"] for e in events}
assert "M" in phases, "no metadata records"
assert "X" in phases, "no duration spans"
assert all("ph" in e for e in events)
print(f"trace_smoke: {len(events)} trace events, phases {sorted(phases)}",
      file=sys.stderr)
EOF

echo "trace_smoke: PASS" >&2
