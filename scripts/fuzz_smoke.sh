#!/usr/bin/env bash
# Differential-fuzzing smoke: 200 seeded random vector-group programs
# cross-checked between the cycle-level machine and the functional
# reference (commit streams + final memory). If an ASan build
# (build-asan/, or $ROCKCRESS_ASAN_BUILD) has the ref_fuzz binary, a
# shorter campaign also runs under ASan, mirroring bench_smoke.sh's
# TSan pattern.
#
# Usage: scripts/fuzz_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
bin="$build_dir/src/ref/ref_fuzz"
if [[ ! -x "$bin" ]]; then
    echo "fuzz_smoke: $bin not built" >&2
    exit 1
fi

seeds="${ROCKCRESS_FUZZ_SEEDS:-200}"
echo "fuzz_smoke: $seeds seeds" >&2
"$bin" --seeds "$seeds" >&2

asan_dir="${ROCKCRESS_ASAN_BUILD:-$(dirname "$build_dir")/build-asan}"
asan_bin="$asan_dir/src/ref/ref_fuzz"
if [[ -x "$asan_bin" ]]; then
    echo "fuzz_smoke: running 50 seeds under ASan" >&2
    "$asan_bin" --seeds 50 >&2
    echo "fuzz_smoke: ASan campaign OK" >&2
else
    echo "fuzz_smoke: no ASan build at $asan_dir (skipping;" \
         "configure with -DENABLE_SANITIZERS=address to enable)" >&2
fi
echo "fuzz_smoke: PASS" >&2
