#!/usr/bin/env bash
# Smoke-test the parallel experiment engine end to end through a real
# figure binary: run fig16_vector_configs twice against a fresh cache
# (cold, then warm) with a small ROCKCRESS_BENCHES subset and 2 jobs,
# and assert that
#   - the cold run actually simulates (simulated > 0, hits == 0),
#   - the warm run is 100% cache hits (simulated == 0, hits == jobs),
#   - both runs print byte-identical report tables.
# If a TSan build (build-tsan/, or $ROCKCRESS_TSAN_BUILD) has the
# test_exp binary, the 8-thread determinism test also runs under TSan.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
bin="$build_dir/bench/fig16_vector_configs"
if [[ ! -x "$bin" ]]; then
    echo "bench_smoke: $bin not built" >&2
    exit 1
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/rockcress_bench.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

export ROCKCRESS_BENCHES="${ROCKCRESS_BENCHES:-atax}"
export ROCKCRESS_JOBS=2
export ROCKCRESS_CACHE_DIR="$workdir/cache"

# The engine prints one summary line per sweep:
#   [exp] sweep done: N jobs, D duplicates, H cache hits, S simulated, ...
sweep_field() { # <stderr-file> <field-name>
    grep '\[exp\] sweep done:' "$1" | sed -E \
        "s/.* ([0-9]+) $2.*/\1/"
}

echo "bench_smoke: cold run (cache at $ROCKCRESS_CACHE_DIR)" >&2
"$bin" > "$workdir/cold.out" 2> "$workdir/cold.err"
cold_jobs=$(sweep_field "$workdir/cold.err" "jobs,")
cold_hits=$(sweep_field "$workdir/cold.err" "cache hits,")
cold_sim=$(sweep_field "$workdir/cold.err" "simulated,")

echo "bench_smoke: warm run" >&2
"$bin" > "$workdir/warm.out" 2> "$workdir/warm.err"
warm_jobs=$(sweep_field "$workdir/warm.err" "jobs,")
warm_hits=$(sweep_field "$workdir/warm.err" "cache hits,")
warm_sim=$(sweep_field "$workdir/warm.err" "simulated,")

echo "bench_smoke: cold jobs=$cold_jobs hits=$cold_hits" \
     "simulated=$cold_sim; warm jobs=$warm_jobs hits=$warm_hits" \
     "simulated=$warm_sim" >&2

fail=0
if [[ "$cold_sim" -eq 0 || "$cold_hits" -ne 0 ]]; then
    echo "bench_smoke: FAIL: cold run should simulate everything" >&2
    fail=1
fi
if [[ "$warm_sim" -ne 0 ]]; then
    echo "bench_smoke: FAIL: warm run simulated $warm_sim jobs" >&2
    fail=1
fi
if [[ "$warm_hits" -ne "$warm_jobs" ]]; then
    echo "bench_smoke: FAIL: warm run hit $warm_hits of $warm_jobs" >&2
    fail=1
fi
if ! diff -u "$workdir/cold.out" "$workdir/warm.out" >&2; then
    echo "bench_smoke: FAIL: cold and warm stdout differ" >&2
    fail=1
fi
[[ "$fail" -eq 0 ]] || exit 1
echo "bench_smoke: engine OK (warm run: 100% cache hits)" >&2

# Optional: re-run the 8-thread determinism test under TSan if a
# thread-sanitized build exists next to this one.
tsan_dir="${ROCKCRESS_TSAN_BUILD:-$(dirname "$build_dir")/build-tsan}"
tsan_test="$tsan_dir/tests/test_exp"
if [[ -x "$tsan_test" ]]; then
    echo "bench_smoke: running determinism test under TSan" >&2
    "$tsan_test" \
        --gtest_filter='Engine.EightThreadSweepMatchesSerialBitIdentically:Pool.*' \
        >&2
    echo "bench_smoke: TSan determinism test OK" >&2
else
    echo "bench_smoke: no TSan build at $tsan_dir (skipping;" \
         "configure with -DENABLE_SANITIZERS=thread to enable)" >&2
fi
echo "bench_smoke: PASS" >&2
