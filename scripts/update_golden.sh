#!/usr/bin/env bash
# Regenerate the golden stats snapshots in tests/golden/ from the
# current simulator. Run after an intentional counter-moving change
# and commit the resulting diffs alongside it.
#
# Usage: scripts/update_golden.sh [build-dir]   (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
bin="$build_dir/tests/test_golden"
if [[ ! -x "$bin" ]]; then
    echo "update_golden: $bin not built" >&2
    exit 1
fi

ROCKCRESS_UPDATE_GOLDEN=1 "$bin" --gtest_brief=1
echo "update_golden: snapshots rewritten in tests/golden/" >&2
