/**
 * @file
 * The event-trace subsystem: sink windowing/capacity semantics,
 * aggregation over synthetic captures, the exact CPI-stack
 * reconciliation on real traced runs, zero perturbation of untraced
 * results, determinism of the export, and the Perfetto JSON shape.
 */

#include <gtest/gtest.h>

#include "exp/json.hh"
#include "harness/runner.hh"
#include "trace/aggregate.hh"
#include "trace/perfetto.hh"

using namespace rockcress;

namespace
{

TraceEvent
ev(TraceKind kind, Cycle cycle, int tile, int sub, std::uint32_t a,
   std::uint64_t b = 0, int pc = -1)
{
    TraceEvent e;
    e.cycle = static_cast<std::uint32_t>(cycle);
    e.tile = static_cast<std::uint16_t>(tile);
    e.kind = static_cast<std::uint8_t>(kind);
    e.sub = static_cast<std::uint8_t>(sub);
    e.a = a;
    e.b = b;
    e.pc = pc;
    return e;
}

TraceEvent
span(Cycle cycle, int tile, TraceCause cause, std::uint32_t len,
     int pc = -1)
{
    return ev(TraceKind::CoreSpan, cycle, tile,
              static_cast<int>(cause), len, 0, pc);
}

} // namespace

TEST(TraceSink, RecordsAndCounts)
{
    TraceSink sink;
    sink.record(span(0, 0, TraceCause::Busy, 10));
    sink.record(span(10, 1, TraceCause::Frame, 5));
    sink.record(ev(TraceKind::InetHop, 3, 0, 0, 1));
    EXPECT_EQ(sink.recorded(TraceKind::CoreSpan), 2u);
    EXPECT_EQ(sink.recorded(TraceKind::InetHop), 1u);
    EXPECT_EQ(sink.recordedTotal(), 3u);
    EXPECT_EQ(sink.droppedTotal(), 0u);
    EXPECT_TRUE(sink.fullCoverage());
}

TEST(TraceSink, StartCycleWindowSkipsSilently)
{
    TraceOptions opts;
    opts.startCycle = 100;
    TraceSink sink(opts);
    sink.record(span(99, 0, TraceCause::Busy, 1));
    sink.record(span(100, 0, TraceCause::Busy, 1));
    EXPECT_EQ(sink.recorded(TraceKind::CoreSpan), 1u);
    // Pre-window events are skipped by design, not "dropped".
    EXPECT_EQ(sink.droppedTotal(), 0u);
    // A windowed capture can never claim full coverage.
    EXPECT_FALSE(sink.fullCoverage());
}

TEST(TraceSink, CapacityBoundsEachCategory)
{
    TraceOptions opts;
    opts.maxEventsPerCategory = 4;
    TraceSink sink(opts);
    for (int i = 0; i < 10; ++i)
        sink.record(span(i, 0, TraceCause::Busy, 1));
    sink.record(ev(TraceKind::NocLink, 0, 0, 0, 1, 1));
    EXPECT_EQ(sink.recorded(TraceKind::CoreSpan), 4u);
    EXPECT_EQ(sink.dropped(TraceKind::CoreSpan), 6u);
    // Independent budgets: the NocLink category is unaffected.
    EXPECT_EQ(sink.recorded(TraceKind::NocLink), 1u);
    EXPECT_FALSE(sink.fullCoverage());
}

TEST(TraceSink, SortedEventsOrderedByCycle)
{
    TraceSink sink;
    sink.record(span(50, 1, TraceCause::Busy, 1));
    sink.record(ev(TraceKind::Frame, 20, 0,
                   static_cast<int>(FramePhase::Fill), 0, 7));
    sink.record(span(20, 0, TraceCause::Other, 3));
    auto all = sink.sortedEvents();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].cycle, 20u);
    // Equal cycle: CoreSpan (kind 0) sorts before Frame (kind 1).
    EXPECT_EQ(all[0].kind,
              static_cast<std::uint8_t>(TraceKind::CoreSpan));
    EXPECT_EQ(all[2].cycle, 50u);
}

TEST(TraceAggregate, FoldsSpansLinksAndFrames)
{
    TraceSink sink;
    sink.record(span(0, 0, TraceCause::Busy, 10));
    sink.record(span(10, 0, TraceCause::Frame, 4));
    sink.record(span(0, 1, TraceCause::Busy, 14));
    sink.record(ev(TraceKind::NocLink, 2, 5, 2 /*East*/, 3, 12));
    sink.record(ev(TraceKind::NocLink, 6, 5, 2 /*East*/, 1, 4));
    sink.record(ev(TraceKind::NocLink, 4, 3, 4 /*local*/, 2, 8));
    sink.record(ev(TraceKind::Frame, 5, 1,
                   static_cast<int>(FramePhase::Fill), 0, 0));
    sink.record(ev(TraceKind::Frame, 9, 1,
                   static_cast<int>(FramePhase::Free), 0, 0));

    TraceAggregate agg = aggregateTrace(sink);
    EXPECT_EQ(agg.cpi.busy, 24u);
    EXPECT_EQ(agg.cpi.frame, 4u);
    EXPECT_EQ(agg.cpi.total(), 28u);
    EXPECT_EQ(agg.perCore.at(0).busy, 10u);
    EXPECT_EQ(agg.perCore.at(0).frame, 4u);
    EXPECT_EQ(agg.perCore.at(1).busy, 14u);

    // Links merge per (node, dir) and come out sorted by (node, dir).
    ASSERT_EQ(agg.links.size(), 2u);
    EXPECT_EQ(agg.links[0].node, 3);
    EXPECT_EQ(agg.links[0].busyCycles, 2u);
    EXPECT_EQ(agg.links[1].node, 5);
    EXPECT_EQ(agg.links[1].busyCycles, 4u);
    EXPECT_EQ(agg.links[1].words, 16u);

    // One Free transition = one retired frame round.
    EXPECT_EQ(agg.framesPerCore.at(1), 1u);
    EXPECT_EQ(agg.firstCycle, 0u);
    EXPECT_EQ(agg.lastCycle, 14u);
}

TEST(TraceAggregate, CrossCheckDetectsMismatch)
{
    TraceSink sink;
    sink.record(span(0, 0, TraceCause::Busy, 10));
    sink.record(span(10, 0, TraceCause::Dae, 2));
    TraceAggregate agg = aggregateTrace(sink);

    CpiTotals want;
    want.issued = 10;
    want.stallDae = 2;
    want.cycles = 12;
    EXPECT_EQ(crossCheckCpi(agg, want), "");

    want.stallDae = 3;
    want.cycles = 13;
    EXPECT_NE(crossCheckCpi(agg, want), "");
}

TEST(TraceRun, UntracedResultIsUnperturbed)
{
    // Attaching the sink must not move a single counter: the traced
    // result equals the untraced one in every field but the summary.
    RunResult off = runManycore("atax", "NV_PF");
    ASSERT_TRUE(off.ok) << off.error;
    EXPECT_FALSE(off.trace.enabled);

    RunOverrides o;
    o.trace = true;
    RunResult on = runManycore("atax", "NV_PF", o);
    ASSERT_TRUE(on.ok) << on.error;
    EXPECT_TRUE(on.trace.enabled);
    EXPECT_TRUE(on.trace.fullCoverage);
    EXPECT_TRUE(on.trace.cpiCrossChecked);

    on.trace = TraceSummary{};
    EXPECT_EQ(off, on);
}

TEST(TraceRun, CpiIdentityHoldsOnGoldenSuite)
{
    // Every non-halted cycle lands in exactly one CPI-stack counter;
    // the fleet sums must therefore tile the core cycles exactly.
    // (runManycore additionally enforces this per core.)
    const char *const pairs[][2] = {
        {"atax", "NV_PF"}, {"atax", "V4"},   {"gemm", "V4_PCV"},
        {"mvt", "V16"},    {"bfs", "NV_PF"},
    };
    for (const auto &p : pairs) {
        RunResult r = runManycore(p[0], p[1]);
        ASSERT_TRUE(r.ok) << p[0] << "/" << p[1] << ": " << r.error;
        EXPECT_EQ(r.coreCycles, r.issued + r.stallFrame + r.stallInet +
                                    r.stallBackpressure + r.stallOther)
            << p[0] << "/" << p[1];
    }
}

TEST(TraceRun, FullCoverageCrossChecksExactly)
{
    RunOverrides o;
    o.trace = true;
    TraceCapture cap;
    RunResult r = runManycore("atax", "V4", o, &cap);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_NE(cap.sink, nullptr);
    EXPECT_TRUE(r.trace.fullCoverage);
    EXPECT_TRUE(r.trace.cpiCrossChecked);
    EXPECT_GT(r.trace.coreSpans, 0u);
    EXPECT_GT(r.trace.frameEvents, 0u);
    EXPECT_GT(r.trace.nocLinkEvents, 0u);
    EXPECT_GT(r.trace.inetHopEvents, 0u);
    EXPECT_GT(r.trace.llcEvents, 0u);
    EXPECT_EQ(r.trace.dropped, 0u);

    // The vector config actually exercises the DAE machinery.
    TraceAggregate agg = aggregateTrace(*cap.sink);
    EXPECT_GT(agg.cpi.dae, 0u);
    std::uint64_t frames = 0;
    for (const auto &[core, n] : agg.framesPerCore)
        frames += n;
    EXPECT_GT(frames, 0u);
}

TEST(TraceRun, CapacityCapDegradesToSampledPrefix)
{
    RunOverrides o;
    o.trace = true;
    o.traceMaxEvents = 1000;
    RunResult r = runManycore("atax", "V4", o);
    ASSERT_TRUE(r.ok) << r.error;  // Dropping must not fail the run.
    EXPECT_GT(r.trace.dropped, 0u);
    EXPECT_FALSE(r.trace.fullCoverage);
    EXPECT_FALSE(r.trace.cpiCrossChecked);
    EXPECT_LE(r.trace.coreSpans, 1000u);
}

TEST(TraceRun, StartCycleWindowsTheCapture)
{
    RunOverrides o;
    o.trace = true;
    o.traceStartCycle = 1000;
    TraceCapture cap;
    RunResult r = runManycore("atax", "NV_PF", o, &cap);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.trace.fullCoverage);
    ASSERT_NE(cap.sink, nullptr);
    for (const TraceEvent &e : cap.sink->events(TraceKind::CoreSpan))
        EXPECT_GE(e.cycle, 1000u);
}

TEST(TraceRun, ExportIsDeterministic)
{
    RunOverrides o;
    o.trace = true;
    o.traceMaxEvents = 20000;
    TraceCapture capA, capB;
    RunResult a = runManycore("atax", "NV_PF", o, &capA);
    RunResult b = runManycore("atax", "NV_PF", o, &capB);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a, b);
    EXPECT_EQ(perfettoJson(*capA.sink, "t"),
              perfettoJson(*capB.sink, "t"));
}

TEST(TracePerfetto, ExportParsesAndMatchesCapture)
{
    RunOverrides o;
    o.trace = true;
    o.traceMaxEvents = 20000;
    TraceCapture cap;
    RunResult r = runManycore("atax", "NV_PF", o, &cap);
    ASSERT_TRUE(r.ok) << r.error;

    std::string doc = perfettoJson(*cap.sink, "atax/NV_PF");
    Json j;
    ASSERT_TRUE(Json::parse(doc, j)) << "export is not valid JSON";
    ASSERT_TRUE(j.isObj());
    ASSERT_TRUE(j.has("traceEvents"));
    const Json &evs = j.at("traceEvents");
    ASSERT_TRUE(evs.isArr());
    ASSERT_GT(evs.size(), 0u);

    std::uint64_t coreSpans = 0, metadata = 0;
    for (std::size_t i = 0; i < evs.size(); ++i) {
        const Json &e = evs.at(i);
        ASSERT_TRUE(e.isObj());
        ASSERT_TRUE(e.has("ph"));
        const std::string &ph = e.at("ph").asStr();
        if (ph == "M")
            ++metadata;
        else if (ph == "X" && e.at("pid").asU64() == 0)
            ++coreSpans;
    }
    EXPECT_GT(metadata, 0u);
    // Every captured core span round-trips into a pid-0 "X" event.
    EXPECT_EQ(coreSpans, cap.sink->recorded(TraceKind::CoreSpan));
}
