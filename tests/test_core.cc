/**
 * @file
 * Core pipeline unit tests: hazards, latencies, the load queue,
 * branch handling, vector-mode role transitions, predication
 * semantics, CPI-stack accounting, and the scoreboard regression that
 * once let a completed ROB entry release a register re-acquired by a
 * younger in-flight load.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "kernels/emitters.hh"
#include "machine/machine.hh"

using namespace rockcress;

namespace
{

MachineParams
tiny()
{
    MachineParams p;
    p.cols = 2;
    p.rows = 2;
    return p;
}

/** Run a single-core program on a fresh machine; returns the machine. */
std::unique_ptr<Machine>
runOne(Assembler &as, Cycle max_cycles = 10'000'000)
{
    auto m = std::make_unique<Machine>(tiny());
    Assembler idle("idle");
    idle.halt();
    m->loadAll(std::make_shared<Program>(idle.finish()));
    m->loadProgram(0, std::make_shared<Program>(as.finish()));
    m->run(max_cycles);
    return m;
}

} // namespace

TEST(CorePipeline, RawHazardStallsButComputesCorrectly)
{
    Assembler as("raw");
    Addr out = AddrMap::globalBase;
    as.li(x(5), 5);
    as.li(x(6), 7);
    as.mul(x(7), x(5), x(6));    // 2-cycle latency
    as.add(x(8), x(7), x(7));    // RAW on x7
    as.la(x(9), out);
    as.sw(x(8), x(9), 0);
    as.halt();
    auto m = runOne(as);
    EXPECT_EQ(m->mem().readWord(out), 70u);
}

TEST(CorePipeline, DivLatencyDominates)
{
    // A chain of dependent divides must cost ~latency each.
    Assembler as("div");
    as.li(x(5), 1 << 20);
    as.li(x(6), 2);
    for (int i = 0; i < 10; ++i)
        as.div(x(5), x(5), x(6));
    as.halt();
    auto m = runOne(as);
    EXPECT_EQ(m->core(0).readIntReg(5), (1u << 20) >> 10);
    EXPECT_GT(m->cycles(), 10u * 20u);
}

TEST(CorePipeline, LoadQueueLimitsOutstandingLoads)
{
    // More loads than LQ entries still complete correctly.
    Machine m(tiny());
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 1024;
    for (int i = 0; i < 8; ++i)
        m.mem().writeWord(in + 4 * static_cast<Addr>(i),
                          static_cast<Word>(i + 1));
    Assembler as("lq");
    as.la(x(5), in);
    for (int i = 0; i < 8; ++i)
        as.lw(static_cast<RegIdx>(x(6 + i)), x(5), 4 * i);
    as.li(x(14), 0);
    for (int i = 0; i < 8; ++i)
        as.add(x(14), x(14), static_cast<RegIdx>(x(6 + i)));
    as.la(x(15), out);
    as.sw(x(14), x(15), 0);
    as.halt();
    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(1'000'000);
    EXPECT_EQ(m.mem().readWord(out), 36u);
}

TEST(CorePipeline, StaleRobEntryMustNotReleaseYoungerLoad)
{
    // Regression for the scoreboard bug found via fdtd-2d: an FP op
    // writing f2 completes but lingers in the ROB behind a slow load;
    // a younger load also targeting f2 must keep f2 busy until its
    // response. The fsub below must read the loaded value, not the
    // stale FP result.
    Machine m(tiny());
    Addr in = AddrMap::globalBase;
    m.mem().writeFloat(in, 100.0f);
    m.mem().writeFloat(in + 4, 40.0f);
    Addr out = AddrMap::globalBase + 512;

    Assembler as("stale");
    as.la(x(5), in);
    as.flw(f(1), x(5), 0);       // slow global load (blocks commit)
    emitFConst(as, f(2), 1.0f, x(6));
    as.fadd(f(2), f(2), f(2));   // f2 = 2.0, completes quickly
    as.flw(f(2), x(5), 4);       // younger load overwrites f2
    as.fsub(f(3), f(1), f(2));   // must be 100 - 40, not 100 - 2
    as.la(x(7), out);
    as.fsw(f(3), x(7), 0);
    as.halt();
    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(1'000'000);
    EXPECT_FLOAT_EQ(m.mem().readFloat(out), 60.0f);
}

TEST(CorePipeline, TakenAndNotTakenBranches)
{
    Assembler as("br");
    Addr out = AddrMap::globalBase;
    as.li(x(5), 0);
    Label skip = as.newLabel();
    as.beq(regZero, regZero, skip);   // taken
    as.addi(x(5), x(5), 100);         // skipped
    as.bind(skip);
    as.addi(x(5), x(5), 1);
    Label skip2 = as.newLabel();
    as.bne(regZero, regZero, skip2);  // not taken
    as.addi(x(5), x(5), 10);
    as.bind(skip2);
    as.la(x(6), out);
    as.sw(x(5), x(6), 0);
    as.halt();
    auto m = runOne(as);
    EXPECT_EQ(m->mem().readWord(out), 11u);
}

TEST(CorePipeline, JalAndJalrFunctionCall)
{
    Assembler as("call");
    Addr out = AddrMap::globalBase;
    Label fn = as.newLabel();
    as.jal(x(1), fn);             // call
    as.la(x(6), out);
    as.sw(x(5), x(6), 0);
    as.halt();
    as.bind(fn);
    as.li(x(5), 99);
    as.jalr(regZero, x(1), 0);    // return
    auto m = runOne(as);
    EXPECT_EQ(m->mem().readWord(out), 99u);
}

TEST(CorePipeline, SimdLaneSemantics)
{
    Machine m(tiny());
    Addr out = AddrMap::globalBase;
    Assembler as("simd");
    // Stage 4 floats into the scratchpad, then SIMD-square them.
    Addr spad = AddrMap{}.spadBase(0) + 256;
    as.la(x(5), spad);
    for (int i = 0; i < 4; ++i) {
        emitFConst(as, f(1), static_cast<float>(i + 1), x(6));
        as.fsw(f(1), x(5), 4 * i);
    }
    as.simdLw(v(0), x(5), 0);
    as.simdFmul(v(1), v(0), v(0));
    as.simdRedsum(f(2), v(1));    // 1 + 4 + 9 + 16 = 30
    as.la(x(7), out);
    as.fsw(f(2), x(7), 0);
    as.halt();
    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(1'000'000);
    EXPECT_FLOAT_EQ(m.mem().readFloat(out), 30.0f);
}

TEST(CorePipeline, CsrReads)
{
    Assembler as("csr");
    Addr out = AddrMap::globalBase;
    as.csrr(x(5), Csr::CoreId);
    as.csrr(x(6), Csr::NumCores);
    as.la(x(7), out);
    as.sw(x(5), x(7), 0);
    as.sw(x(6), x(7), 4);
    as.halt();
    auto m = runOne(as);
    EXPECT_EQ(m->mem().readWord(out), 0u);
    EXPECT_EQ(m->mem().readWord(out + 4), 4u);
}

TEST(CorePipeline, CpiStackAccountsEveryCycle)
{
    // issued + all stall categories must cover every counted cycle.
    Machine m(tiny());
    Addr in = AddrMap::globalBase;
    Assembler as("acct");
    as.la(x(5), in);
    as.li(x(7), 0);
    as.li(x(8), 50);
    {
        Loop l(as, x(7), x(8), 1);
        as.lw(x(6), x(5), 0);
        as.add(x(9), x(6), x(6));   // load-use stall every trip
        l.end();
    }
    as.halt();
    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(1'000'000);
    const StatRegistry &s = m.stats();
    std::uint64_t covered = s.get("core0.issued") +
                            s.get("core0.stall_frame") +
                            s.get("core0.stall_inet_input") +
                            s.get("core0.stall_backpressure") +
                            s.get("core0.stall_other") +
                            s.get("core0.stall_dae");
    EXPECT_EQ(covered, s.get("core0.cycles"));
    EXPECT_GT(s.get("core0.stall_frame"), 0u);  // load-use stalls
}

TEST(CorePipeline, WarHazardPanics)
{
    // A store to an address with an older same-address load still in
    // flight would break the at-issue store semantics; the core
    // detects it (real hardware orders these in the LSQ).
    Machine m(tiny());
    Addr in = AddrMap::globalBase;
    Assembler as("war");
    as.la(x(5), in);
    as.lw(x(6), x(5), 0);     // load in flight
    as.li(x(7), 1);
    as.sw(x(7), x(5), 0);     // same address, no dependence
    as.halt();
    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    EXPECT_THROW(m.run(1'000'000), PanicError);
}

TEST(VectorMode, RolesAssignedOnFormation)
{
    BenchConfig cfg;
    cfg.groupSize = 2;
    cfg.wideAccess = true;
    cfg.dae = true;
    MachineParams p = tiny();
    Machine m(p);

    SpmdBuilder b("roles", cfg, p);
    Label mt = b.declareMicrothread();
    b.defineMicrothread(mt, [&](Assembler &a) { a.nop(); });
    b.vectorPhase(4, 8, [&](Assembler &a) { a.vissue(mt); });
    m.loadAll(std::make_shared<Program>(b.finish()));
    GroupPlan plan;
    plan.chain = {0, 1, 2};
    m.planGroup(plan);
    m.run(1'000'000);

    // After disband everyone is independent and halted.
    for (CoreId c = 0; c < 3; ++c) {
        EXPECT_EQ(m.core(c).role(), Core::Role::Independent);
        EXPECT_TRUE(m.core(c).halted());
    }
    EXPECT_EQ(m.groupHop(1), 1);   // Expander is hop 1.
    EXPECT_EQ(m.groupHop(2), 2);
    EXPECT_EQ(m.groupHop(3), -1);  // Not in any group.
}

TEST(VectorMode, VectorCoresFetchNothing)
{
    BenchConfig cfg;
    cfg.groupSize = 2;
    cfg.wideAccess = true;
    cfg.dae = true;
    MachineParams p = tiny();
    Machine m(p);
    SpmdBuilder b("fetch", cfg, p);
    Label mt = b.declareMicrothread();
    b.defineMicrothread(mt, [&](Assembler &a) {
        for (int i = 0; i < 50; ++i)
            a.addi(x(5), x(5), 1);
    });
    b.vectorPhase(4, 8, [&](Assembler &a) {
        for (int i = 0; i < 10; ++i)
            a.vissue(mt);
    });
    m.loadAll(std::make_shared<Program>(b.finish()));
    GroupPlan plan;
    plan.chain = {0, 1, 2};
    m.planGroup(plan);
    m.run(1'000'000);

    // The trailing vector core executed ~500 microthread instructions
    // but its icache saw only the handful of MIMD prologue fetches.
    std::uint64_t exp_fetches = m.stats().get("core1.icache.accesses");
    std::uint64_t vec_fetches = m.stats().get("core2.icache.accesses");
    EXPECT_GT(exp_fetches, 500u);
    EXPECT_LT(vec_fetches, 30u);
    EXPECT_GE(m.stats().get("core2.inet_instrs"), 500u);
}

TEST(VectorMode, PredicationInsideMicrothreads)
{
    BenchConfig cfg;
    cfg.groupSize = 2;
    cfg.wideAccess = true;
    cfg.dae = true;
    MachineParams p = tiny();
    Machine m(p);
    Addr out = AddrMap::globalBase;

    SpmdBuilder b("pred", cfg, p);
    Label mt = b.declareMicrothread();
    b.defineMicrothread(mt, [&](Assembler &a) {
        // Only lane 1 stores (per-lane divergence via the mask).
        a.csrr(x(5), Csr::GroupTid);
        a.li(x(6), 1);
        a.predEq(x(5), x(6));
        a.li(x(7), 123);
        a.la(x(8), out);
        a.sw(x(7), x(8), 0);
        a.predEq(regZero, regZero);
    });
    b.vectorPhase(4, 8, [&](Assembler &a) { a.vissue(mt); });
    m.loadAll(std::make_shared<Program>(b.finish()));
    GroupPlan plan;
    plan.chain = {0, 1, 2};
    m.planGroup(plan);
    m.run(1'000'000);
    EXPECT_EQ(m.mem().readWord(out), 123u);
}

TEST(VectorMode, GroupsReformAcrossPhases)
{
    BenchConfig cfg;
    cfg.groupSize = 2;
    cfg.wideAccess = true;
    cfg.dae = true;
    MachineParams p = tiny();
    Machine m(p);
    Addr out = AddrMap::globalBase;

    SpmdBuilder b("reform", cfg, p);
    for (int phase = 0; phase < 3; ++phase) {
        Label mt = b.declareMicrothread();
        b.defineMicrothread(mt, [&, phase](Assembler &a) {
            a.csrr(x(5), Csr::GroupTid);
            a.li(x(6), 0);
            a.predEq(x(5), x(6));
            a.la(x(7), out + 4 * static_cast<Addr>(phase));
            a.li(x(8), phase + 1);
            a.sw(x(8), x(7), 0);
            a.predEq(regZero, regZero);
        });
        b.vectorPhase(4, 8, [&](Assembler &a) { a.vissue(mt); });
    }
    m.loadAll(std::make_shared<Program>(b.finish()));
    GroupPlan plan;
    plan.chain = {0, 1, 2};
    m.planGroup(plan);
    m.run(2'000'000);
    for (int phase = 0; phase < 3; ++phase)
        EXPECT_EQ(m.mem().readWord(out + 4 * static_cast<Addr>(phase)),
                  static_cast<Word>(phase + 1));
}
