/**
 * @file
 * Unit tests for the translation validator: term-pool hash-consing
 * and normalization, the symbolic region executor, the equivalence
 * pass over a seeded-miscompile fixture (every mutant kind caught
 * with the expected finding, clean twin proved), witness determinism,
 * and the RunResult equiv-summary JSON round trip.
 */

#include <gtest/gtest.h>

#include "analysis/equiv.hh"
#include "analysis/symexec.hh"
#include "analysis/verifier.hh"
#include "compiler/codegen.hh"
#include "exp/result_io.hh"
#include "harness/runner.hh"
#include "machine/machine.hh"

using namespace rockcress;

TEST(TermPool, InterningMakesPointerEquality)
{
    TermPool pool;
    EXPECT_EQ(pool.constant(7), pool.constant(7));
    EXPECT_NE(pool.constant(7), pool.constant(8));
    EXPECT_EQ(pool.sym("x5"), pool.sym("x5"));

    const Term *a = pool.sym("a");
    const Term *b = pool.sym("b");
    EXPECT_EQ(pool.app("add", {a, b}), pool.app("add", {a, b}));
}

TEST(TermPool, NormalizationAndFolding)
{
    TermPool pool;
    const Term *a = pool.sym("a");
    const Term *b = pool.sym("b");

    // Constant folding on 32-bit wrapping semantics.
    const Term *sum = pool.app("add", {pool.constant(3),
                                       pool.constant(4)});
    ASSERT_EQ(sum->kind, Term::Kind::Const);
    EXPECT_EQ(sum->value, 7);

    // Commutative canonicalization: both orders intern to one term.
    EXPECT_EQ(pool.app("add", {a, b}), pool.app("add", {b, a}));

    // Identities.
    EXPECT_EQ(pool.app("add", {a, pool.constant(0)}), a);
    const Term *c = pool.sym("c");
    EXPECT_EQ(pool.ite(c, a, a), a);
}

TEST(TermPool, IdsAreCreationOrderedAndDeterministic)
{
    // Two pools fed the same sequence render identical s-expressions
    // — the property the checker's witness text depends on.
    auto build = [](TermPool &pool) {
        const Term *x = pool.sym("x5");
        const Term *y = pool.sym("x6");
        return pool.app("add", {pool.app("mul", {y, x}),
                                pool.constant(12)})
            ->str();
    };
    TermPool p1, p2;
    EXPECT_EQ(build(p1), build(p2));
}

TEST(SymExec, StraightLineConstantPropagation)
{
    Assembler as("t");
    as.addi(x(5), x(0), 8);
    as.sw(x(6), x(5), 4);
    Program p = as.finish();

    TermPool pool;
    SymResult r = symExecRegion(pool, p.code, 0);
    ASSERT_TRUE(r.ok) << r.reason;
    ASSERT_EQ(r.effects.size(), 1u);
    const SymEffect &e = r.effects[0];
    EXPECT_EQ(e.kind, SymEffect::Kind::StoreWord);
    ASSERT_EQ(e.addr->kind, Term::Kind::Const);
    EXPECT_EQ(e.addr->value, 12);
    EXPECT_EQ(e.value, pool.sym(symRegName(x(6))));
    EXPECT_EQ(e.pred, nullptr);
}

TEST(SymExec, PredicationGuardsEffectsAndRegisters)
{
    Assembler as("t");
    as.predNeq(x(5), x(0));
    as.addi(x(6), x(6), 1);
    as.sw(x(6), x(7), 0);
    as.predEq(x(0), x(0));
    Program p = as.finish();

    TermPool pool;
    SymResult r = symExecRegion(pool, p.code, 0);
    ASSERT_TRUE(r.ok) << r.reason;
    ASSERT_EQ(r.effects.size(), 1u);
    ASSERT_NE(r.effects[0].pred, nullptr);
    EXPECT_NE(r.effects[0].pred->str().find("ne"), std::string::npos);
    // The register write folds into an ite on the same predicate.
    ASSERT_TRUE(r.regs.count(x(6)));
    EXPECT_NE(r.regs.at(x(6))->str().find("ite"), std::string::npos);
}

TEST(SymExec, BackwardBranchIsConservative)
{
    Assembler as("t");
    Label top = as.here();
    as.addi(x(5), x(5), -1);
    as.bne(x(5), x(0), top);
    Program p = as.finish();

    TermPool pool;
    SymResult r = symExecRegion(pool, p.code, 0);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.reason.empty());
}

namespace
{

/** The rc_equivsmoke fixture in miniature: one DAE stream whose body
 * stores a probe of frame word 0 plus one predicated store. */
std::shared_ptr<const Program>
buildFixture(const BenchConfig &cfg, const MachineParams &params,
             const MiscompileSpec *sab)
{
    SpmdBuilder b("equiv_test", cfg, params);
    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();

    b.defineMicrothread(init, [](Assembler &as) {
        as.la(x(9), AddrMap::globalBase + 4096);
        as.li(x(15), 1);
    });
    b.defineMicrothread(body, [](Assembler &as) {
        as.frameStart(x(13));
        as.flw(f(1), x(13), 0);
        as.fsw(f(1), x(9), 0);
        as.predNeq(x(15), x(0));
        as.fsw(f(1), x(9), 4);
        as.predEq(x(0), x(0));
        as.addi(x(9), x(9), 8);
        as.remem();
    });

    const int F = 4, numFrames = 8, iters = 3, w = 2;
    int gs = cfg.groupSize;
    b.vectorPhase(F, numFrames, [=](Assembler &as) {
        as.vissue(init);
        as.la(x(5), AddrMap::globalBase);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, F * 4, numFrames);
        rot.emitInit();
        DaeStreamSpec spec;
        spec.iters = iters;
        spec.frameBytes = F * 4;
        spec.numFrames = numFrames;
        spec.ahead = 1;
        spec.bodyMt = body;
        spec.fill = [=](Assembler &a, RegIdx off) {
            a.vload(x(5), off, 0, w, VloadVariant::Group);
            a.addi(x(13), x(5), w * gs * 4);
            a.addi(x(14), off, w * 4);
            a.vload(x(13), x(14), 0, w, VloadVariant::Group);
            a.addi(x(5), x(5), F * gs * 4);
        };
        emitScalarStream(as, spec, rot, regs);
    });

    if (sab)
        b.setSabotage(*sab);
    return std::make_shared<const Program>(b.finish());
}

VerifyReport
verifyFixture(const MiscompileSpec *sab)
{
    BenchConfig cfg = configByName("V4");
    cfg.dae = true;
    MachineParams params = machineFor(cfg, 4, 2);
    auto p = buildFixture(cfg, params, sab);
    return verifyProgram(*p, cfg, params);
}

} // namespace

TEST(Equiv, CleanFixtureProved)
{
    VerifyReport rep = verifyFixture(nullptr);
    EXPECT_TRUE(rep.ok());
    EXPECT_GE(rep.equivStreams, 1);
    EXPECT_EQ(rep.equivProved, rep.equivStreams);
    EXPECT_TRUE(rep.equiv.empty());
}

TEST(Equiv, EveryMiscompileKindCaught)
{
    const struct
    {
        MiscompileSpec::Kind kind;
        const char *expect;
    } kMutants[] = {
        {MiscompileSpec::Kind::DropLane, "lane-map"},
        {MiscompileSpec::Kind::WrongStride, "stride"},
        {MiscompileSpec::Kind::TripCount, "trip-count"},
        {MiscompileSpec::Kind::PredPolarity, "predication"},
    };
    for (const auto &mu : kMutants) {
        MiscompileSpec sab;
        sab.kind = mu.kind;
        VerifyReport rep = verifyFixture(&sab);
        EXPECT_TRUE(rep.has(Check::Equiv)) << mu.expect;
        bool kindSeen = false;
        for (const EquivFinding &f : rep.equiv) {
            if (f.kind == mu.expect)
                kindSeen = true;
            // Every finding carries a complete anchored witness.
            EXPECT_GE(f.pc, 0);
            EXPECT_GE(f.refPc, 0);
            EXPECT_FALSE(f.routine.empty());
            EXPECT_FALSE(f.message.empty());
        }
        EXPECT_TRUE(kindSeen)
            << mu.expect << ": "
            << (rep.equiv.empty() ? "no findings"
                                  : rep.equiv.front().message);
    }
}

TEST(Equiv, FindingsDeterministicAndSorted)
{
    MiscompileSpec sab;
    sab.kind = MiscompileSpec::Kind::DropLane;
    VerifyReport a = verifyFixture(&sab);
    VerifyReport b = verifyFixture(&sab);
    ASSERT_EQ(a.equiv.size(), b.equiv.size());
    for (size_t i = 0; i < a.equiv.size(); ++i)
        EXPECT_EQ(a.equiv[i].message, b.equiv[i].message);
    for (size_t i = 1; i < a.equiv.size(); ++i) {
        const EquivFinding &p = a.equiv[i - 1];
        const EquivFinding &q = a.equiv[i];
        EXPECT_LE(std::tie(p.routineEntry, p.pc, p.lane),
                  std::tie(q.routineEntry, q.pc, q.lane));
    }
}

TEST(Equiv, RunResultJsonRoundTrip)
{
    RunResult r;
    r.bench = "atax";
    r.config = "V4";
    r.ok = true;
    r.equiv.checked = true;
    r.equiv.streams = 2;
    r.equiv.proved = 1;
    r.equiv.witnesses = {"stream 0 fill [stride]: skewed"};

    RunResult back;
    ASSERT_TRUE(resultFromJson(resultToJson(r), back));
    EXPECT_EQ(back.equiv, r.equiv);

    // Unchecked runs must not grow an equiv key: old artifacts and
    // golden snapshots keep the pre-validator format byte for byte.
    RunResult plain;
    EXPECT_FALSE(resultToJson(plain).has("equiv"));
    RunResult plainBack;
    ASSERT_TRUE(resultFromJson(resultToJson(plain), plainBack));
    EXPECT_FALSE(plainBack.equiv.checked);

    RunOverrides ov;
    ov.equiv = true;
    EXPECT_TRUE(overridesToJson(ov).has("equiv"));
    EXPECT_TRUE(overridesToJson(ov).at("equiv").asBool());
}
