/**
 * @file
 * Unit tests for the memory substrate: cache tag behavior (hits,
 * pseudo-LRU eviction, write-back marking), the DRAM bandwidth model,
 * the scratchpad frame queue (Section 3.3 semantics), and the
 * address map.
 */

#include <gtest/gtest.h>

#include "mem/addrmap.hh"
#include "mem/cachetags.hh"
#include "mem/dram.hh"
#include "mem/mainmem.hh"
#include "mem/scratchpad.hh"
#include "sim/rng.hh"

using namespace rockcress;

namespace
{

StatRegistry g_reg;

StatScope
scope(const std::string &p)
{
    return StatScope(g_reg, p + ".");
}

} // namespace

TEST(AddrMap, SpadAndGlobalDecoding)
{
    AddrMap m;
    m.numCores = 64;
    m.lineBytes = 64;
    m.numBanks = 16;
    EXPECT_TRUE(m.isSpad(0));
    EXPECT_TRUE(m.isSpad(m.spadBase(63) + 4092));
    EXPECT_TRUE(m.isGlobal(AddrMap::globalBase));
    EXPECT_EQ(m.spadCore(m.spadBase(7) + 16), 7);
    EXPECT_EQ(m.spadOffset(m.spadBase(7) + 16), 16u);
    EXPECT_THROW(m.spadCore(m.spadBase(64)), FatalError);
}

TEST(AddrMap, LineStriping)
{
    AddrMap m;
    m.numCores = 64;
    m.lineBytes = 64;
    m.numBanks = 16;
    // Consecutive lines go to consecutive banks, wrapping at 16.
    for (int i = 0; i < 64; ++i) {
        Addr a = AddrMap::globalBase + static_cast<Addr>(i) * 64;
        EXPECT_EQ(m.bankOf(a), i % 16);
    }
    // All addresses within one line share a bank.
    EXPECT_EQ(m.bankOf(AddrMap::globalBase + 60),
              m.bankOf(AddrMap::globalBase));
}

TEST(MainMemory, ReadWriteAndBounds)
{
    MainMemory mem(4096);
    mem.writeWord(AddrMap::globalBase + 8, 77);
    EXPECT_EQ(mem.readWord(AddrMap::globalBase + 8), 77u);
    mem.writeFloat(AddrMap::globalBase, 1.25f);
    EXPECT_FLOAT_EQ(mem.readFloat(AddrMap::globalBase), 1.25f);
    EXPECT_THROW(mem.readWord(AddrMap::globalBase + 4096), FatalError);
    EXPECT_THROW(mem.readWord(AddrMap::globalBase + 2), FatalError);
    EXPECT_THROW(mem.readWord(0), FatalError);
}

TEST(CacheTags, HitAfterFill)
{
    CacheTags tags(1024, 2, 64, scope("tags1"));
    Addr a = AddrMap::globalBase;
    EXPECT_FALSE(tags.access(a, false).hit);
    EXPECT_TRUE(tags.access(a, false).hit);
    EXPECT_TRUE(tags.access(a + 60, false).hit);   // Same line.
    EXPECT_FALSE(tags.access(a + 64, false).hit);  // Next line.
}

TEST(CacheTags, WritebackOnDirtyEviction)
{
    // 2 ways x 64B lines, 128B capacity: a single set.
    CacheTags tags(128, 2, 64, scope("tags2"));
    Addr a = AddrMap::globalBase;
    tags.access(a, true);            // Dirty fill.
    tags.access(a + 128, false);     // Second way.
    TagAccess r = tags.access(a + 256, false);  // Evicts the LRU way.
    EXPECT_TRUE(r.victimValid);
    EXPECT_TRUE(r.victimDirty);
    EXPECT_EQ(r.victimAddr, a);
}

TEST(CacheTags, PlruPrefersRecentlyTouched)
{
    CacheTags tags(256, 4, 64, scope("tags3"));
    Addr a = AddrMap::globalBase;
    // Fill all four ways of the single set.
    for (int i = 0; i < 4; ++i)
        tags.access(a + static_cast<Addr>(i) * 64, false);
    // Touch line 0 again, then force one eviction.
    tags.access(a, false);
    tags.access(a + 4 * 64, false);
    // Line 0 must have survived.
    EXPECT_TRUE(tags.probe(a));
}

TEST(CacheTags, FlushInvalidatesEverything)
{
    CacheTags tags(1024, 2, 64, scope("tags4"));
    tags.access(AddrMap::globalBase, false);
    tags.flush();
    EXPECT_FALSE(tags.probe(AddrMap::globalBase));
}

TEST(Dram, BandwidthSerializesTransfers)
{
    Dram dram(1, 16.0, 60, scope("dram1"));
    // Two 64-byte transfers at 16 B/cycle: the second finishes 4
    // cycles after the first.
    Cycle t1 = dram.request(0, 64, 0);
    Cycle t2 = dram.request(0, 64, 0);
    EXPECT_EQ(t1, 64u);   // 4 cycles transfer + 60 latency.
    EXPECT_EQ(t2, 68u);
    EXPECT_FALSE(dram.idle(0));
    EXPECT_TRUE(dram.idle(100));
}

TEST(Dram, ChannelsAreIndependent)
{
    Dram dram(4, 16.0, 60, scope("dram2"));
    Cycle a = dram.request(0, 64, 0);
    Cycle b = dram.request(1, 64, 0);
    EXPECT_EQ(a, b);   // No cross-channel serialization.
    // But per-channel bandwidth is the aggregate divided by 4.
    Cycle c = dram.request(0, 64, 100);
    EXPECT_EQ(c, 100 + 16 + 60);
}

TEST(Scratchpad, PlainReadWrite)
{
    Scratchpad sp(0, 4096, 5, scope("sp1"));
    sp.writeWord(16, 99);
    EXPECT_EQ(sp.readWord(16), 99u);
    EXPECT_THROW(sp.readWord(4096), FatalError);
    EXPECT_THROW(sp.writeWord(2, 1), FatalError);
}

TEST(Scratchpad, FrameFillAndConsume)
{
    Scratchpad sp(0, 4096, 5, scope("sp2"));
    sp.configureFrames(4, 8);
    EXPECT_FALSE(sp.frameReady());
    // Words may arrive out of order within the frame.
    sp.networkWrite(12, 4);
    sp.networkWrite(0, 1);
    sp.networkWrite(8, 3);
    EXPECT_FALSE(sp.frameReady());
    sp.networkWrite(4, 2);
    EXPECT_TRUE(sp.frameReady());
    EXPECT_EQ(sp.headFrameByteOffset(), 0u);
    EXPECT_EQ(sp.readWord(0), 1u);
    sp.freeFrame();
    EXPECT_FALSE(sp.frameReady());
    EXPECT_EQ(sp.headFrameByteOffset(), 16u);
}

TEST(Scratchpad, CountersShiftOnFree)
{
    Scratchpad sp(0, 4096, 5, scope("sp3"));
    sp.configureFrames(2, 8);
    // Fill frames 0 and partially fill 1 and 2.
    sp.networkWrite(0, 1);
    sp.networkWrite(4, 2);
    sp.networkWrite(8, 3);    // Frame 1, one of two words.
    sp.networkWrite(20, 5);   // Frame 2, one of two words.
    EXPECT_TRUE(sp.frameReady());
    sp.freeFrame();
    EXPECT_FALSE(sp.frameReady());  // Frame 1 only half full.
    sp.networkWrite(12, 4);
    EXPECT_TRUE(sp.frameReady());
}

TEST(Scratchpad, GuardsRunawayWrites)
{
    Scratchpad sp(0, 4096, 5, scope("sp4"));
    sp.configureFrames(2, 8);
    // Writing 6 frames ahead exceeds the 5 hardware counters.
    EXPECT_FALSE(sp.canAcceptFrameWrite(2 * 4 * 6));
    EXPECT_TRUE(sp.canAcceptFrameWrite(2 * 4 * 4));
    EXPECT_THROW(sp.networkWrite(2 * 4 * 6, 1), FatalError);
}

TEST(Scratchpad, RememOfPartialFrameIsFatal)
{
    Scratchpad sp(0, 4096, 5, scope("sp5"));
    sp.configureFrames(2, 8);
    sp.networkWrite(0, 1);
    EXPECT_THROW(sp.freeFrame(), FatalError);
}

TEST(Scratchpad, ConfigValidation)
{
    Scratchpad sp(0, 4096, 5, scope("sp6"));
    EXPECT_THROW(sp.configureFrames(2, 3), FatalError);    // < counters.
    EXPECT_THROW(sp.configureFrames(1024, 8), FatalError); // Too big.
    EXPECT_THROW(sp.configureFrames(2000, 5), FatalError); // > 10 bits.
    sp.configureFrames(0, 0);   // Disable is legal.
}

TEST(Scratchpad, NonFrameRegionWritesDontCount)
{
    Scratchpad sp(0, 4096, 5, scope("sp7"));
    sp.configureFrames(4, 8);
    Addr outside = 4 * 8 * 4 + 64;
    sp.networkWrite(outside, 42);
    EXPECT_EQ(sp.readWord(outside), 42u);
    EXPECT_FALSE(sp.frameReady());
}

TEST(Scratchpad, FillWrapsAcrossRegionBoundary)
{
    Scratchpad sp(0, 4096, 5, scope("sp8"));
    sp.configureFrames(4, 8);   // 128-byte circular region.
    // Advance the head to the last frame of the region.
    for (Addr fr = 0; fr < 7; ++fr) {
        for (Addr w = 0; w < 4; ++w)
            sp.networkWrite(fr * 16 + w * 4, 1);
        ASSERT_TRUE(sp.frameReady());
        sp.freeFrame();
    }
    EXPECT_EQ(sp.headFrameByteOffset(), 112u);
    // The in-flight window now spans the circular boundary: frame 7
    // (head) and next round's frame 0 (head+1) fill concurrently,
    // words interleaved across the wrap.
    sp.networkWrite(0, 21);
    sp.networkWrite(4, 22);
    sp.networkWrite(112, 11);
    EXPECT_FALSE(sp.frameReady());
    sp.networkWrite(116, 12);
    sp.networkWrite(120, 13);
    sp.networkWrite(124, 14);
    EXPECT_TRUE(sp.frameReady());
    sp.freeFrame();
    EXPECT_EQ(sp.headFrameByteOffset(), 0u);   // Wrapped.
    EXPECT_FALSE(sp.frameReady());             // Frame 0 half full.
    sp.networkWrite(8, 23);
    sp.networkWrite(12, 24);
    EXPECT_TRUE(sp.frameReady());
    EXPECT_EQ(sp.readWord(0), 21u);
    EXPECT_EQ(sp.readWord(12), 24u);
}

TEST(Scratchpad, BackToBackReuseUnderAllCounters)
{
    Scratchpad sp(0, 4096, 5, scope("sp9"));
    sp.enableSanitizer();
    sp.configureFrames(2, 8);
    // Keep all five hardware counters occupied while streaming three
    // full rotations of the region: fill five frames ahead, then free
    // one / top up one per step. Every counter and every region slot
    // gets reused back to back.
    auto fill = [&sp](int fr) {
        sp.networkWrite(static_cast<Addr>(fr % 8) * 8, 100 + fr, 1,
                        fr);
        sp.networkWrite(static_cast<Addr>(fr % 8) * 8 + 4, 200 + fr, 1,
                        fr);
    };
    for (int fr = 0; fr < 5; ++fr)
        fill(fr);
    for (int fr = 0; fr < 24; ++fr) {
        ASSERT_TRUE(sp.frameReady());
        EXPECT_EQ(sp.headFrameByteOffset(),
                  static_cast<Addr>(fr % 8) * 8);
        sp.beginConsume(fr);
        EXPECT_EQ(sp.readWord(sp.headFrameByteOffset()),
                  static_cast<Word>(100 + fr));
        EXPECT_EQ(sp.readWord(sp.headFrameByteOffset() + 4),
                  static_cast<Word>(200 + fr));
        sp.freeFrame();
        if (fr + 5 < 24)
            fill(fr + 5);
    }
    EXPECT_FALSE(sp.frameReady());
    // A correctly paced fill/consume stream is sanitizer-clean.
    EXPECT_EQ(sp.sanViolationCount(), 0u);
}

TEST(Scratchpad, SanitizerFlagsDoubleFill)
{
    Scratchpad sp(0, 4096, 5, scope("sp10"));
    sp.enableSanitizer();
    sp.configureFrames(4, 8);
    sp.networkWrite(0, 1, 2, 10);
    sp.networkWrite(0, 2, 3, 11);   // Same word, still filling.
    EXPECT_EQ(sp.sanViolationCount(), 1u);
    ASSERT_EQ(sp.sanRecords().size(), 1u);
    const SpadSanRecord &r = sp.sanRecords().front();
    EXPECT_EQ(r.kind, "double-fill");
    EXPECT_EQ(r.prior, SpadWordState::Filling);
    EXPECT_EQ(r.priorCore, 2);
    EXPECT_EQ(r.priorPc, 10);
    EXPECT_EQ(r.accessCore, 3);
    EXPECT_EQ(r.accessPc, 11);
}

TEST(Scratchpad, SanitizerFlagsFillOnConsume)
{
    Scratchpad sp(0, 4096, 5, scope("sp11"));
    sp.enableSanitizer();
    sp.configureFrames(2, 8);
    sp.networkWrite(0, 1, 2, 10);
    sp.networkWrite(4, 2, 2, 11);
    ASSERT_TRUE(sp.frameReady());
    sp.beginConsume(20);
    // The sanitizer attributes the violation before the arrival trips
    // the hard overfill guard.
    EXPECT_THROW(sp.networkWrite(0, 9, 3, 12), FatalError);
    EXPECT_EQ(sp.sanViolationCount(), 1u);
    ASSERT_EQ(sp.sanRecords().size(), 1u);
    EXPECT_EQ(sp.sanRecords().front().kind, "fill-on-consume");
    EXPECT_EQ(sp.sanRecords().front().prior, SpadWordState::Consuming);
}

TEST(Scratchpad, SanitizerFlagsConsumeBeforeHandover)
{
    Scratchpad sp(0, 4096, 5, scope("sp12"));
    sp.enableSanitizer();
    sp.configureFrames(2, 8);
    sp.networkWrite(0, 1, 2, 10);
    sp.readWord(0, 30);             // Word still Filling.
    EXPECT_EQ(sp.sanViolationCount(), 1u);
    EXPECT_EQ(sp.sanRecords().front().kind, "consume-before-handover");
    sp.networkWrite(4, 2, 2, 11);   // Frame completes: words Armed.
    sp.writeWord(4, 7, 31);         // Pre-handover write also flags.
    EXPECT_EQ(sp.sanViolationCount(), 2u);
    EXPECT_EQ(sp.sanRecords().back().prior, SpadWordState::Armed);
    // After the frame_start handover, consumption is clean.
    sp.beginConsume(40);
    sp.readWord(0, 41);
    sp.writeWord(4, 8, 42);
    EXPECT_EQ(sp.sanViolationCount(), 2u);
}
