/**
 * @file
 * Tests for the parallel experiment engine (src/exp): JSON
 * round-trips of every RunResult field, cache hit/poisoning
 * behavior, work-stealing pool draining, sweep determinism between
 * serial and 8-thread execution, and intra-sweep deduplication.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/cache.hh"
#include "exp/engine.hh"
#include "exp/hash.hh"
#include "exp/json.hh"
#include "exp/pool.hh"
#include "exp/result_io.hh"

using namespace rockcress;
namespace fs = std::filesystem;

namespace
{

/** A RunResult with every field set to a distinct value. */
RunResult
fullResult()
{
    RunResult r;
    r.bench = "atax";
    r.config = "V4";
    r.ok = true;
    r.error = "with \"quotes\"\nand newline";
    r.cycles = (1ull << 60) + 12345;  // Beyond double's 2^53 window.
    r.energyPj = 123456.78901234567;
    r.energy.fetch = 1.125;
    r.energy.pipeline = 2.25;
    r.energy.functional = 3.0625;
    r.energy.memOps = 4.5;
    r.energy.spad = 5.75;
    r.energy.llc = 6.875;
    r.energy.inet = 0.1;  // Not exactly representable: needs %.17g.
    r.energy.noc = 8.0;
    r.icacheAccesses = 11;
    r.issued = 22;
    r.vloadBytes = 4096;
    r.nocWordHops = 2048;
    r.coreCycles = 33;
    r.stallFrame = 44;
    r.stallInet = 55;
    r.stallBackpressure = 66;
    r.stallOther = 77;
    r.expCycles = 88;
    r.expIssued = 99;
    r.expStallFrame = 110;
    r.expStallInet = 121;
    r.expStallOther = 132;
    r.llcMissRate = 0.34567890123456789;
    r.hopInetStalls = {{1, 10}, {2, 20}, {3, 30}};
    r.hopBackpressure = {{1, 40}, {7, 70}};
    r.hopCycles = {{1, 0}, {2, 0xffffffffffffffffull}};
    r.vectorCycles = 143;
    r.frameStallVector = 154;
    r.staticIpcBound = 0.875;
    r.measuredIpc = 0.5;
    return r;
}

/** Temp directory removed at scope exit. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("rc_exp_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    static int &
    counter()
    {
        static int c = 0;
        return c;
    }
};

} // namespace

TEST(Json, ScalarRoundTrip)
{
    Json j = Json::object();
    j["u"] = Json(std::uint64_t(0xffffffffffffffffull));
    j["d"] = Json(0.1);
    j["neg"] = Json(-1.5);
    j["b"] = Json(true);
    j["s"] = Json(std::string("a\"b\\c\nd\te"));
    j["whole"] = Json(4.0);  // Double that prints without a point.
    Json arr = Json::array();
    arr.push(Json(std::uint64_t(7)));
    arr.push(Json(false));
    j["arr"] = std::move(arr);

    Json back;
    ASSERT_TRUE(Json::parse(j.dump(), back));
    EXPECT_EQ(back.at("u").asU64(), 0xffffffffffffffffull);
    EXPECT_EQ(back.at("d").asDouble(), 0.1);
    EXPECT_EQ(back.at("neg").asDouble(), -1.5);
    EXPECT_EQ(back.at("b").asBool(), true);
    EXPECT_EQ(back.at("s").asStr(), "a\"b\\c\nd\te");
    EXPECT_EQ(back.at("whole").kind(), Json::Kind::Double);
    EXPECT_EQ(back.at("whole").asDouble(), 4.0);
    EXPECT_EQ(back.at("arr").at(std::size_t(0)).asU64(), 7u);
    EXPECT_EQ(back, j);
}

TEST(Json, RejectsMalformed)
{
    Json out;
    EXPECT_FALSE(Json::parse("", out));
    EXPECT_FALSE(Json::parse("{", out));
    EXPECT_FALSE(Json::parse("{\"a\":1", out));
    EXPECT_FALSE(Json::parse("[1,2", out));
    EXPECT_FALSE(Json::parse("{} trailing", out));
    EXPECT_FALSE(Json::parse("\"unterminated", out));
    EXPECT_FALSE(Json::parse("nul", out));
}

TEST(Sha256, KnownVectors)
{
    // FIPS 180-4 test vectors.
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    // Multi-block input (> 64 bytes).
    EXPECT_EQ(
        sha256Hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmgh"
                  "ijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnop"
                  "qrstnopqrstu"),
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9"
        "d1");
}

TEST(ResultIo, RoundTripsEveryField)
{
    RunResult r = fullResult();
    std::string text = resultToJson(r).dump();

    Json j;
    ASSERT_TRUE(Json::parse(text, j));
    RunResult back;
    ASSERT_TRUE(resultFromJson(j, back));
    EXPECT_TRUE(r == back);

    // Spot-check the trickiest fields individually for diagnosis.
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.energyPj, r.energyPj);
    EXPECT_EQ(back.energy.inet, r.energy.inet);
    EXPECT_EQ(back.llcMissRate, r.llcMissRate);
    EXPECT_EQ(back.hopInetStalls, r.hopInetStalls);
    EXPECT_EQ(back.hopBackpressure, r.hopBackpressure);
    EXPECT_EQ(back.hopCycles, r.hopCycles);
    EXPECT_EQ(back.error, r.error);
}

TEST(ResultIo, RejectsMissingField)
{
    Json j = resultToJson(fullResult());
    std::string text = j.dump();
    // Knock out one required field.
    Json broken;
    ASSERT_TRUE(Json::parse(text, broken));
    Json rebuilt = Json::object();
    for (const auto &[k, v] : broken.members())
        if (k != "stallFrame")
            rebuilt[k] = v;
    RunResult out;
    EXPECT_FALSE(resultFromJson(rebuilt, out));
}

TEST(Cache, StoreThenLoadHits)
{
    TempDir dir;
    ResultCache cache(dir.path.string());
    RunResult r = fullResult();
    std::string key = sha256Hex("some point");
    cache.store(key, r);

    RunResult back;
    ASSERT_TRUE(cache.load(key, back));
    EXPECT_TRUE(r == back);
}

TEST(Cache, DisabledCacheNeverHitsOrWrites)
{
    ResultCache cache("");
    EXPECT_FALSE(cache.enabled());
    cache.store(sha256Hex("x"), fullResult());
    RunResult back;
    EXPECT_FALSE(cache.load(sha256Hex("x"), back));
}

TEST(Cache, TruncatedEntryIsAMiss)
{
    TempDir dir;
    ResultCache cache(dir.path.string());
    std::string key = sha256Hex("point");
    cache.store(key, fullResult());

    // Truncate the entry to half its size.
    std::string path = cache.entryPath(key);
    std::ostringstream buf;
    buf << std::ifstream(path).rdbuf();
    std::string text = buf.str();
    {
        std::ofstream out(path, std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    RunResult back;
    EXPECT_FALSE(cache.load(key, back));
}

TEST(Cache, VersionMismatchIsAMiss)
{
    TempDir dir;
    ResultCache cache(dir.path.string());
    std::string key = sha256Hex("point");
    cache.store(key, fullResult());

    std::string path = cache.entryPath(key);
    std::ostringstream buf;
    buf << std::ifstream(path).rdbuf();
    Json j;
    ASSERT_TRUE(Json::parse(buf.str(), j));
    Json edited = j;
    edited["version"] = Json(ResultCache::version + 1);
    {
        std::ofstream out(path, std::ios::trunc);
        out << edited.dump();
    }
    RunResult back;
    EXPECT_FALSE(cache.load(key, back));
}

TEST(Cache, KeyMismatchIsAMiss)
{
    TempDir dir;
    ResultCache cache(dir.path.string());
    std::string key = sha256Hex("point");
    cache.store(key, fullResult());

    // A hand-copied entry under a different key must not be trusted:
    // its embedded key no longer matches its address.
    std::string other = sha256Hex("other point");
    fs::copy_file(cache.entryPath(key), cache.entryPath(other));
    RunResult back;
    EXPECT_FALSE(cache.load(other, back));
    EXPECT_TRUE(cache.load(key, back));  // Original still fine.
}

TEST(Cache, HandEditedResultFieldIsAMiss)
{
    TempDir dir;
    ResultCache cache(dir.path.string());
    std::string key = sha256Hex("point");
    cache.store(key, fullResult());

    std::string path = cache.entryPath(key);
    std::ostringstream buf;
    buf << std::ifstream(path).rdbuf();
    Json j;
    ASSERT_TRUE(Json::parse(buf.str(), j));
    // Corrupt the payload structurally: cycles becomes a string.
    Json edited = j;
    Json result = edited.at("result");
    result["cycles"] = Json(std::string("1e99"));
    edited["result"] = std::move(result);
    {
        std::ofstream out(path, std::ios::trunc);
        out << edited.dump();
    }
    RunResult back;
    EXPECT_FALSE(cache.load(key, back));
}

TEST(Pool, DrainsEveryJobAcrossWorkers)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 500);

    // A second batch reuses the same workers.
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 600);
}

namespace
{

/** A small, fast sweep: 2x2-core machines over two benchmarks. */
std::vector<RunPoint>
smallSweepPoints()
{
    RunOverrides tiny;
    tiny.cols = 2;
    tiny.rows = 2;
    std::vector<RunPoint> points;
    for (const char *bench : {"atax", "mvt"})
        for (const char *config : {"NV", "NV_PF"})
            points.push_back(RunPoint{bench, config, tiny});
    return points;
}

ExperimentEngine::Options
quietOptions(int jobs)
{
    ExperimentEngine::Options opts;
    opts.jobs = jobs;
    opts.cacheDir = "";
    opts.progress = false;
    opts.audit = 0;
    return opts;
}

} // namespace

/**
 * The determinism contract: the same (bench, config) point must
 * produce bit-identical cycles, energy, and CPI-stack counters
 * whether run serially on this thread or inside an 8-thread sweep.
 * Guards the paper's reproducibility claim against shared mutable
 * state sneaking into the simulator.
 */
TEST(Engine, EightThreadSweepMatchesSerialBitIdentically)
{
    std::vector<RunPoint> points = smallSweepPoints();

    ExperimentEngine parallel(quietOptions(8));
    std::vector<RunResult> pooled = parallel.sweep(points);
    ASSERT_EQ(pooled.size(), points.size());

    for (std::size_t i = 0; i < points.size(); ++i) {
        RunResult serial = ExperimentEngine::runPoint(points[i]);
        ASSERT_TRUE(serial.ok) << serial.error;
        ASSERT_TRUE(pooled[i].ok) << pooled[i].error;
        EXPECT_EQ(serial.cycles, pooled[i].cycles);
        EXPECT_EQ(serial.energyPj, pooled[i].energyPj);
        EXPECT_EQ(serial.issued, pooled[i].issued);
        EXPECT_EQ(serial.coreCycles, pooled[i].coreCycles);
        EXPECT_EQ(serial.stallFrame, pooled[i].stallFrame);
        EXPECT_EQ(serial.stallInet, pooled[i].stallInet);
        EXPECT_EQ(serial.stallBackpressure,
                  pooled[i].stallBackpressure);
        EXPECT_EQ(serial.stallOther, pooled[i].stallOther);
        // And everything else, field for field.
        EXPECT_TRUE(serial == pooled[i])
            << points[i].bench << "/" << points[i].config;
    }
}

TEST(Engine, DuplicatePointsCollapseOntoOneSimulation)
{
    RunOverrides tiny;
    tiny.cols = 2;
    tiny.rows = 2;
    std::vector<RunPoint> points = {
        RunPoint{"atax", "NV", tiny},
        RunPoint{"atax", "NV", tiny},
        RunPoint{"atax", "NV", tiny},
    };
    ExperimentEngine engine(quietOptions(2));
    std::vector<RunResult> results = engine.sweep(points);
    EXPECT_EQ(engine.lastSweep().jobs, 1);
    EXPECT_EQ(engine.lastSweep().duplicates, 2);
    EXPECT_TRUE(results[0] == results[1]);
    EXPECT_TRUE(results[0] == results[2]);
}

TEST(Engine, WarmCacheSweepSimulatesNothing)
{
    TempDir dir;
    ExperimentEngine::Options opts = quietOptions(2);
    opts.cacheDir = dir.path.string();

    std::vector<RunPoint> points = smallSweepPoints();

    ExperimentEngine cold(opts);
    std::vector<RunResult> first = cold.sweep(points);
    EXPECT_EQ(cold.lastSweep().cacheHits, 0);
    EXPECT_EQ(cold.lastSweep().simulated,
              static_cast<int>(points.size()));

    ExperimentEngine warm(opts);
    std::vector<RunResult> second = warm.sweep(points);
    EXPECT_EQ(warm.lastSweep().simulated, 0);
    EXPECT_EQ(warm.lastSweep().cacheHits,
              static_cast<int>(points.size()));
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_TRUE(first[i] == second[i]);
}

TEST(Engine, FailedRunsAreReportedNotCached)
{
    TempDir dir;
    ExperimentEngine::Options opts = quietOptions(2);
    opts.cacheDir = dir.path.string();

    // An unknown benchmark fails inside the job; the sweep must
    // return a !ok result (not throw) and must not cache it.
    std::vector<RunPoint> points = {
        RunPoint{"no_such_bench", "NV", {}}};
    ExperimentEngine engine(opts);
    std::vector<RunResult> results = engine.sweep(points);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_FALSE(results[0].error.empty());

    ExperimentEngine again(opts);
    again.sweep(points);
    EXPECT_EQ(again.lastSweep().cacheHits, 0);
}

TEST(Engine, CacheKeyDependsOnEveryCoordinate)
{
    RunOverrides tiny;
    tiny.cols = 2;
    tiny.rows = 2;
    RunPoint base{"atax", "NV", tiny};

    std::string k0 = ExperimentEngine::cacheKey(base);
    ASSERT_FALSE(k0.empty());
    EXPECT_EQ(k0, ExperimentEngine::cacheKey(base));  // Stable.

    RunPoint other_bench = base;
    other_bench.bench = "mvt";
    EXPECT_NE(k0, ExperimentEngine::cacheKey(other_bench));

    RunPoint other_config = base;
    other_config.config = "NV_PF";
    EXPECT_NE(k0, ExperimentEngine::cacheKey(other_config));

    RunPoint other_overrides = base;
    other_overrides.overrides.dramBytesPerCycle = 32.0;
    EXPECT_NE(k0, ExperimentEngine::cacheKey(other_overrides));

    RunPoint other_budget = base;
    other_budget.overrides.maxCycles = 123;
    EXPECT_NE(k0, ExperimentEngine::cacheKey(other_budget));
}

TEST(Engine, JobsFromEnvParsesStrictly)
{
    // jobsFromEnv() is the single job-count authority shared by the
    // engine, rc_analyze, and rc_trace; only a complete integer in
    // [1, 4096] overrides the hardware default.
    const char *saved = std::getenv("ROCKCRESS_JOBS");
    std::string savedVal = saved ? saved : "";

    setenv("ROCKCRESS_JOBS", "4", 1);
    EXPECT_EQ(jobsFromEnv(), 4);
    setenv("ROCKCRESS_JOBS", "1", 1);
    EXPECT_EQ(jobsFromEnv(), 1);

    unsetenv("ROCKCRESS_JOBS");
    int fallback = jobsFromEnv();
    EXPECT_GE(fallback, 1);

    // Trailing garbage, zero, negatives, and out-of-range values all
    // fall back instead of being half-parsed.
    for (const char *bad : {"4abc", "0", "-2", "", "99999"}) {
        setenv("ROCKCRESS_JOBS", bad, 1);
        EXPECT_EQ(jobsFromEnv(), fallback) << "input '" << bad << "'";
    }

    if (saved)
        setenv("ROCKCRESS_JOBS", savedVal.c_str(), 1);
    else
        unsetenv("ROCKCRESS_JOBS");
}
