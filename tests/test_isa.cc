/**
 * @file
 * Unit tests for the ISA layer: instruction properties, encode/decode
 * round trips, disassembly, and the assembler DSL (labels, fixups,
 * pseudo-expansion, immediate range enforcement).
 */

#include <gtest/gtest.h>

#include <limits>

#include "isa/assembler.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

using namespace rockcress;

TEST(Isa, OpcodeProperties)
{
    EXPECT_TRUE(isBranch(Opcode::BEQ));
    EXPECT_TRUE(isBranch(Opcode::JAL));
    EXPECT_FALSE(isCondBranch(Opcode::JAL));
    EXPECT_TRUE(isLoad(Opcode::LW));
    EXPECT_TRUE(isLoad(Opcode::FLW));
    EXPECT_FALSE(isLoad(Opcode::VLOAD));
    EXPECT_TRUE(isMem(Opcode::VLOAD));
    EXPECT_TRUE(isStore(Opcode::FSW));
    EXPECT_TRUE(isFloatOp(Opcode::FMADD));
    EXPECT_FALSE(isFloatOp(Opcode::FMV_XW));
    EXPECT_TRUE(isSimd(Opcode::SIMD_FMA));
    EXPECT_TRUE(isVectorCtl(Opcode::FRAME_START));
}

TEST(Isa, FuLatenciesMatchTable1a)
{
    EXPECT_EQ(fuLatency(Opcode::ADD), 1);
    EXPECT_EQ(fuLatency(Opcode::MUL), 2);
    EXPECT_EQ(fuLatency(Opcode::DIV), 20);
    EXPECT_EQ(fuLatency(Opcode::FADD), 3);
    EXPECT_EQ(fuLatency(Opcode::FMUL), 3);
    EXPECT_EQ(fuLatency(Opcode::SIMD_FADD), 3);
}

TEST(Isa, DestRegRules)
{
    Instruction add;
    add.op = Opcode::ADD;
    add.rd = x(5);
    EXPECT_EQ(destReg(add), x(5));
    add.rd = regZero;
    EXPECT_EQ(destReg(add), -1);   // x0 writes are discarded.

    Instruction store;
    store.op = Opcode::SW;
    store.rd = x(5);               // rd is meaningless for stores.
    EXPECT_EQ(destReg(store), -1);

    Instruction fs;
    fs.op = Opcode::FRAME_START;
    fs.rd = x(6);
    EXPECT_EQ(destReg(fs), x(6));
}

TEST(Isa, EncodeDecodeRoundTripRandomized)
{
    Rng rng(77);
    for (int trial = 0; trial < 2000; ++trial) {
        Instruction in;
        in.op = static_cast<Opcode>(
            rng.below(static_cast<int>(Opcode::NUM_OPCODES)));
        in.rd = static_cast<RegIdx>(rng.below(numArchRegs));
        in.rs1 = static_cast<RegIdx>(rng.below(numArchRegs));
        in.rs2 = static_cast<RegIdx>(rng.below(numArchRegs));
        in.rs3 = static_cast<RegIdx>(rng.below(numArchRegs));
        in.imm = static_cast<std::int32_t>(rng.next());
        in.imm2 = static_cast<std::int16_t>(rng.below(4096));
        in.sub = static_cast<std::uint8_t>(rng.below(4));
        Instruction out = decode(encode(in));
        EXPECT_EQ(in, out) << disassemble(in);
    }
}

TEST(Isa, EncodeDecodeRoundTripExhaustive)
{
    // Every opcode crossed with the boundary values of every operand
    // field (plus a full immediate product on VLOAD, the only opcode
    // that uses all three immediate-ish fields at once). Each case
    // checks decode(encode(x)) == x AND that re-encoding is
    // bit-stable, so encode and decode stay exact inverses over the
    // whole format — not just the values the assembler happens to
    // emit.
    const RegIdx regs[] = {0, 1, static_cast<RegIdx>(numArchRegs / 2),
                           static_cast<RegIdx>(numArchRegs - 1)};
    const std::int32_t imms[] = {
        std::numeric_limits<std::int32_t>::min(), -4096, -1, 0, 1,
        4096, std::numeric_limits<std::int32_t>::max()};
    const std::int32_t imm2s[] = {-32768, -1, 0, 1, 32767};
    const std::uint8_t subs[] = {0, 1, 3, 255};

    auto roundTrip = [](const Instruction &in) {
        Instruction out = decode(encode(in));
        ASSERT_EQ(in, out) << disassemble(in);
        ASSERT_EQ(encode(in), encode(out)) << disassemble(in);
    };

    for (int opi = 0; opi < static_cast<int>(Opcode::NUM_OPCODES);
         ++opi) {
        Instruction base;
        base.op = static_cast<Opcode>(opi);
        base.rd = 1;
        base.rs1 = 2;
        base.rs2 = 3;
        base.rs3 = 4;
        base.imm = 5;
        base.imm2 = 6;
        base.sub = 1;
        for (RegIdx r : regs) {
            Instruction i = base;
            i.rd = r;
            roundTrip(i);
            i = base;
            i.rs1 = r;
            roundTrip(i);
            i = base;
            i.rs2 = r;
            roundTrip(i);
            i = base;
            i.rs3 = r;
            roundTrip(i);
        }
        for (std::int32_t v : imms) {
            Instruction i = base;
            i.imm = v;
            roundTrip(i);
        }
        for (std::int32_t v : imm2s) {
            Instruction i = base;
            i.imm2 = v;
            roundTrip(i);
        }
        for (std::uint8_t v : subs) {
            Instruction i = base;
            i.sub = v;
            roundTrip(i);
        }
    }

    Instruction v;
    v.op = Opcode::VLOAD;
    v.rs1 = x(9);
    v.rs2 = x(26);
    for (std::int32_t im : imms)
        for (std::int32_t im2 : imm2s)
            for (std::uint8_t s : subs) {
                v.imm = im;
                v.imm2 = im2;
                v.sub = s;
                roundTrip(v);
            }
}

TEST(Isa, EncodeRejectsImm2OutsideField)
{
    // imm2 travels in a 16-bit field; silently truncating would make
    // encode lossy, so out-of-range values are a fatal error.
    Instruction i;
    i.op = Opcode::VLOAD;
    i.imm2 = 32768;
    EXPECT_THROW(encode(i), FatalError);
    i.imm2 = -32769;
    EXPECT_THROW(encode(i), FatalError);
    i.imm2 = 32767;
    EXPECT_EQ(decode(encode(i)), i);
}

TEST(Isa, DecodeRejectsIllegalOpcode)
{
    Encoded e;
    e.w0 = 0xffu << 24;
    EXPECT_THROW(decode(e), FatalError);
}

TEST(Isa, DisassembleSamples)
{
    Instruction i;
    i.op = Opcode::ADDI;
    i.rd = x(5);
    i.rs1 = x(6);
    i.imm = -3;
    EXPECT_EQ(disassemble(i), "addi x5, x6, -3");

    Instruction v;
    v.op = Opcode::VLOAD;
    v.rs1 = x(9);
    v.rs2 = x(26);
    v.imm = 2;
    v.imm2 = 8;
    v.sub = static_cast<std::uint8_t>(VloadVariant::Group);
    EXPECT_EQ(disassemble(v), "vload sp+x26, [x9], off=2, w=8, var=1");
}

TEST(Assembler, LabelsAndBranches)
{
    Assembler as("t");
    Label top = as.here();
    as.addi(x(5), x(5), 1);
    as.bne(x(5), x(6), top);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p.size(), 3);
    EXPECT_EQ(p.at(1).imm, 0);   // Branch targets the loop head.
}

TEST(Assembler, ForwardLabel)
{
    Assembler as("t");
    Label skip = as.newLabel();
    as.beq(x(5), x(6), skip);
    as.addi(x(7), x(7), 1);
    as.bind(skip);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p.at(0).imm, 2);
}

TEST(Assembler, UnboundLabelIsFatal)
{
    Assembler as("t");
    Label never = as.newLabel();
    as.j(never);
    EXPECT_THROW(as.finish(), FatalError);
}

TEST(Assembler, LiExpandsHonestly)
{
    Assembler small("s");
    small.li(x(5), 42);
    EXPECT_EQ(small.pc(), 1);   // Single addi.

    Assembler big("b");
    big.li(x(5), 0x12345678);
    EXPECT_EQ(big.pc(), 2);     // LUI + ADDI pair.
    Program p = big.finish();
    EXPECT_EQ(p.at(0).op, Opcode::LUI);

    // The pair must reconstruct the value.
    std::int32_t upper = p.at(0).imm;
    std::int32_t lower = p.at(1).imm;
    EXPECT_EQ((upper << 12) + lower, 0x12345678);
}

TEST(Assembler, AddiRangeEnforced)
{
    Assembler as("t");
    EXPECT_THROW(as.addi(x(5), x(5), 5000), FatalError);
    EXPECT_THROW(as.lw(x(5), x(6), -4000), FatalError);
}

TEST(Assembler, SymbolsResolve)
{
    Assembler as("t");
    as.nop();
    as.symbol("entry2");
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p.entry("entry2"), 1);
    EXPECT_THROW(p.entry("missing"), FatalError);
}

TEST(Assembler, VloadWidthValidated)
{
    Assembler as("t");
    EXPECT_THROW(as.vload(x(5), x(6), 0, 0, VloadVariant::Self),
                 FatalError);
    EXPECT_THROW(as.vload(x(5), x(6), 0, 100000, VloadVariant::Self),
                 FatalError);
}

TEST(Program, ListingContainsSymbolsAndPcs)
{
    Assembler as("t");
    as.symbol("main");
    as.nop();
    as.halt();
    Program p = as.finish();
    std::string listing = p.listing();
    EXPECT_NE(listing.find("main:"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(Program, OutOfRangePcIsFatal)
{
    Assembler as("t");
    as.halt();
    Program p = as.finish();
    EXPECT_THROW(p.at(5), FatalError);
    EXPECT_THROW(p.at(-1), FatalError);
}

TEST(Assembler, DuplicateSymbolIsFatal)
{
    Assembler as("t");
    as.symbol("entry");
    as.nop();
    try {
        as.symbol("entry");
        FAIL() << "duplicate symbol accepted";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        // The diagnostic names the symbol and both definition sites.
        EXPECT_NE(msg.find("duplicate symbol 'entry'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("first defined at pc 0"), std::string::npos)
            << msg;
    }
}

TEST(Assembler, UnresolvedLinkPatchIsFatal)
{
    Assembler as("t");
    Label never = as.newLabel();
    as.beq(x(5), x(6), never);   // Referenced but never bound.
    as.halt();
    try {
        as.finish();
        FAIL() << "unbound label accepted";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        // The diagnostic carries the label id, the referencing
        // instruction's disassembly, and its pc.
        EXPECT_NE(msg.find("unresolved link patch"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("beq"), std::string::npos) << msg;
        EXPECT_NE(msg.find("at pc 0"), std::string::npos) << msg;
    }
}
