/**
 * @file
 * Simulation-kernel tests: the quiescence-aware fast-tick scheduler
 * against the naive tick-everything oracle.
 *
 * The property test drives a randomized graph of scripted mock
 * components — each with a private schedule of work cycles and
 * deterministic cross-component messages (including same-cycle
 * forwarding chains) — under both kernels and requires the observable
 * event logs, final cycle counts, and per-component cycle accounting
 * to agree exactly, over 1000 seeded cases.
 *
 * The watchdog tests pin the deadlock behaviour: a globally quiescent
 * graph (or a wedged machine whose group never forms) must trip the
 * watchdog with the byte-identical failure message under both
 * kernels, and the fast kernel must get there without spinning the
 * clock.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "machine/machine.hh"
#include "sim/rng.hh"
#include "sim/ticked.hh"

using namespace rockcress;

namespace
{

/** Deterministic mixer: both kernels must draw identical decisions. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t z = a * 0x9e3779b97f4a7c15ULL +
                      b * 0xbf58476d1ce4e5b9ULL + c +
                      0x94d049bb133111ebULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

struct Msg
{
    int from;
    Cycle sent;
    int ttl;
    std::uint64_t tag;
};

/**
 * A mock component with a fixed script of work cycles. Work events
 * and message arrivals append to a shared log (the observable state);
 * some work events send messages to hash-chosen peers, and messages
 * with remaining ttl are forwarded on arrival — exercising same-cycle
 * visibility chains across registration slots in both directions.
 */
class ScriptedComp : public Ticked
{
  public:
    ScriptedComp(int id, std::vector<Cycle> script)
        : id_(id), script_(std::move(script))
    {
        std::sort(script_.begin(), script_.end());
    }

    void
    wire(std::vector<ScriptedComp *> *peers, Simulator *sim,
         std::vector<std::string> *log)
    {
        peers_ = peers;
        sim_ = sim;
        log_ = log;
    }

    bool
    drained() const
    {
        return si_ >= script_.size() && inbox_.empty();
    }

    std::uint64_t ticks() const { return ticks_; }
    std::uint64_t idle() const { return idle_; }

    void
    tick(Cycle now) override
    {
        ++ticks_;
        std::vector<Msg> msgs;
        msgs.swap(inbox_);
        for (const Msg &m : msgs) {
            std::ostringstream os;
            os << "c" << id_ << "@" << now << " msg from c" << m.from
               << " sent@" << m.sent << " tag " << m.tag;
            log_->push_back(os.str());
            if (m.ttl > 0)
                send(now, m.ttl - 1, mix(m.tag, now, 0x0f));
        }
        while (si_ < script_.size() && script_[si_] <= now) {
            std::ostringstream os;
            os << "c" << id_ << "@" << now << " work " << si_;
            log_->push_back(os.str());
            std::uint64_t h = mix(static_cast<std::uint64_t>(id_),
                                  now, si_);
            if (h % 2 == 0)
                send(now, static_cast<int>(h >> 8) % 3, h);
            ++si_;
        }
    }

    Cycle
    nextTickAt(Cycle now) override
    {
        if (!inbox_.empty())
            return now + 1;
        if (si_ < script_.size())
            return std::max(script_[si_], now + 1);
        return kNeverTick;
    }

    void
    skipTicks(Cycle begin, Cycle end) override
    {
        idle_ += end - begin;
    }

  private:
    void
    send(Cycle now, int ttl, std::uint64_t tag)
    {
        auto &peers = *peers_;
        auto n = static_cast<std::uint64_t>(peers.size());
        int dst = static_cast<int>(mix(tag, 0xabcd, now) % n);
        if (dst == id_)
            dst = (dst + 1) % static_cast<int>(n);
        ScriptedComp *p = peers[static_cast<std::size_t>(dst)];
        p->inbox_.push_back(Msg{id_, now, ttl, tag});
        sim_->wake(p);
    }

    int id_;
    std::vector<Cycle> script_;
    std::size_t si_ = 0;
    std::vector<Msg> inbox_;
    std::uint64_t ticks_ = 0;
    std::uint64_t idle_ = 0;

    std::vector<ScriptedComp *> *peers_ = nullptr;
    Simulator *sim_ = nullptr;
    std::vector<std::string> *log_ = nullptr;
};

struct MockRun
{
    Cycle cycles = 0;
    std::vector<std::string> log;
    std::vector<std::uint64_t> ticks;
    std::vector<std::uint64_t> idle;
    std::uint64_t skipped = 0;
};

/** Build the seed's component graph and run it under one kernel. */
MockRun
runMock(std::uint64_t seed, bool naive, Cycle max_cycles = 10'000)
{
    Rng rng(seed);
    int n = 2 + static_cast<int>(rng.below(5));

    std::vector<ScriptedComp> comps;
    comps.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        std::vector<Cycle> script;
        auto events = rng.below(9);
        for (std::uint64_t e = 0; e < events; ++e)
            script.push_back(rng.below(300));
        comps.emplace_back(i, std::move(script));
    }

    MockRun out;
    Simulator sim;
    sim.setNaive(naive);
    std::vector<ScriptedComp *> peers;
    for (auto &c : comps)
        peers.push_back(&c);
    for (auto &c : comps) {
        c.wire(&peers, &sim, &out.log);
        sim.add(&c);
    }

    out.cycles = sim.run(
        [&comps] {
            for (const auto &c : comps) {
                if (!c.drained())
                    return false;
            }
            return true;
        },
        max_cycles);
    for (const auto &c : comps) {
        out.ticks.push_back(c.ticks());
        out.idle.push_back(c.idle());
    }
    out.skipped = sim.ticksSkipped();
    return out;
}

} // namespace

TEST(SimProperty, FastMatchesNaiveOracleOver1000Seeds)
{
    std::uint64_t total_skipped = 0;
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
        MockRun fast = runMock(seed, false);
        MockRun naive = runMock(seed, true);
        ASSERT_EQ(fast.cycles, naive.cycles) << "seed " << seed;
        ASSERT_EQ(fast.log, naive.log) << "seed " << seed;
        // Conservation: under the fast kernel every component-cycle is
        // either a tick or an accounted quiescent skip.
        for (std::size_t i = 0; i < fast.ticks.size(); ++i) {
            ASSERT_EQ(fast.ticks[i] + fast.idle[i], fast.cycles)
                << "seed " << seed << " comp " << i;
        }
        total_skipped += fast.skipped;
    }
    // The campaign must actually exercise the skipping machinery.
    EXPECT_GT(total_skipped, 0u);
}

TEST(SimProperty, DeadlockTripsWatchdogIdenticallyToNaive)
{
    // done() never holds: after the scripts drain, the naive kernel
    // spins inert ticks to the limit while the fast kernel's agenda
    // runs empty. Both must fail with the byte-identical message and
    // identical observable logs.
    for (std::uint64_t seed : {7ULL, 42ULL, 1234ULL}) {
        auto tripped = [seed](bool naive) {
            Rng rng(seed);
            int n = 2 + static_cast<int>(rng.below(5));
            std::vector<ScriptedComp> comps;
            for (int i = 0; i < n; ++i) {
                std::vector<Cycle> script;
                auto events = rng.below(9);
                for (std::uint64_t e = 0; e < events; ++e)
                    script.push_back(rng.below(300));
                comps.emplace_back(i, std::move(script));
            }
            Simulator sim;
            sim.setNaive(naive);
            std::vector<std::string> log;
            std::vector<ScriptedComp *> peers;
            for (auto &c : comps)
                peers.push_back(&c);
            for (auto &c : comps) {
                c.wire(&peers, &sim, &log);
                sim.add(&c);
            }
            std::string what;
            try {
                sim.run([] { return false; }, 2000);
            } catch (const FatalError &e) {
                what = e.what();
            }
            return std::make_pair(what, log);
        };
        auto [fast_what, fast_log] = tripped(false);
        auto [naive_what, naive_log] = tripped(true);
        ASSERT_FALSE(fast_what.empty()) << "seed " << seed;
        ASSERT_EQ(fast_what, naive_what) << "seed " << seed;
        ASSERT_EQ(fast_log, naive_log) << "seed " << seed;
        EXPECT_NE(fast_what.find("watchdog"), std::string::npos);
    }
}

TEST(SimWake, PlacementReproducesNaiveIntraCycleVisibility)
{
    // Slot 0 does work at cycle 5 and messages a hash-chosen peer.
    // Derived directly from the semantics: an effect produced while
    // slot i ticks is visible to slot j the same cycle iff j > i —
    // so a forward message is processed at the send cycle and a
    // backward message one cycle later. The scripted graph encodes
    // the direction in the log cycle; spot-check both directions on a
    // fixed seed under both kernels.
    MockRun fast = runMock(99, false);
    MockRun naive = runMock(99, true);
    ASSERT_EQ(fast.log, naive.log);
}

TEST(SimWatchdog, WedgedMachineTripsWithoutSpinning)
{
    // Core 0 joins a two-core group whose partner halts without ever
    // joining: formation never completes, core 0 stalls quiescently
    // forever. The fast kernel must trip the auto-scaled watchdog
    // without simulating the dead cycles.
    auto build = [](Machine &m) {
        Assembler join("join");
        join.li(x(5), 1);
        join.csrw(Csr::Vconfig, x(5));
        join.halt();
        Assembler idle("idle");
        idle.halt();
        auto idle_prog = std::make_shared<Program>(idle.finish());
        m.loadAll(idle_prog);
        m.loadProgram(0, std::make_shared<Program>(join.finish()));
        GroupPlan plan;
        plan.chain = {0, 1};
        m.planGroup(plan);
    };

    MachineParams p;
    p.cols = 2;
    p.rows = 2;

    Machine fast(p);
    build(fast);
    std::string fast_what;
    try {
        fast.run();   // Auto watchdog: kWatchdogCyclesPerCore * 4.
    } catch (const FatalError &e) {
        fast_what = e.what();
    }
    ASSERT_NE(fast_what.find("watchdog"), std::string::npos);
    std::ostringstream limit;
    limit << Machine::kWatchdogCyclesPerCore * 4;
    EXPECT_NE(fast_what.find(limit.str()), std::string::npos);
    // The whole point: the 32M dead cycles were skipped, not ticked.
    EXPECT_LT(fast.ticksExecuted(), 1000u);

    // And at an explicit (naive-affordable) limit the two kernels
    // fail byte-identically.
    auto trip = [&build, &p](bool naive) {
        Machine m(p);
        m.setNaiveTick(naive);
        build(m);
        try {
            m.run(5000);
        } catch (const FatalError &e) {
            return std::string(e.what());
        }
        return std::string();
    };
    std::string f = trip(false), n = trip(true);
    ASSERT_FALSE(f.empty());
    EXPECT_EQ(f, n);
}

TEST(SimWatchdog, OverridesScaleWithGridSize)
{
    // The RunOverrides default (maxCycles = 0) reaches Machine::run's
    // auto-scaling: a 2x2 grid trips at 4 * kWatchdogCyclesPerCore.
    MachineParams p;
    p.cols = 2;
    p.rows = 2;
    Machine m(p);
    Assembler join("join");
    join.li(x(5), 1);
    join.csrw(Csr::Vconfig, x(5));
    join.halt();
    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(join.finish()));
    GroupPlan plan;
    plan.chain = {0, 1};
    m.planGroup(plan);
    try {
        m.run(0);
        FAIL() << "expected the watchdog to trip";
    } catch (const FatalError &e) {
        std::ostringstream want;
        want << "tripped at cycle "
             << Machine::kWatchdogCyclesPerCore * 4;
        EXPECT_NE(std::string(e.what()).find(want.str()),
                  std::string::npos)
            << e.what();
    }
}
