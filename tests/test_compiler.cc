/**
 * @file
 * Unit tests for the codegen layer: configuration lookup (Table 3),
 * the implicit-synchronization bound math (Section 4.2), the loop
 * and address-math emitters (validated by executing the emitted code
 * on a machine), and the frame rotator.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "compiler/sync.hh"
#include "machine/machine.hh"

using namespace rockcress;

TEST(Configs, Table3Features)
{
    BenchConfig nv = configByName("NV");
    EXPECT_FALSE(nv.isVector());
    EXPECT_FALSE(nv.dae);

    BenchConfig pf = configByName("NV_PF");
    EXPECT_TRUE(pf.wideAccess);
    EXPECT_TRUE(pf.dae);
    EXPECT_EQ(pf.groupSize, 1);

    BenchConfig v16 = configByName("V16_LL_PCV");
    EXPECT_EQ(v16.groupSize, 16);
    EXPECT_EQ(v16.simdWords, 4);
    EXPECT_TRUE(v16.longLines);

    EXPECT_THROW(configByName("bogus"), FatalError);
    EXPECT_EQ(allConfigNames().size(), 10u);
}

TEST(Configs, MachineForLongLines)
{
    MachineParams std_p = machineFor(configByName("V4"));
    EXPECT_EQ(std_p.lineBytes, 64u);
    MachineParams ll = machineFor(configByName("V16_LL"));
    EXPECT_EQ(ll.lineBytes, 1024u);
}

TEST(Sync, DelayBoundFormula)
{
    // n = hops * q_inet + sum(buf) + ROB (Section 4.2).
    SyncParams p;
    p.qInet = 2;
    p.pipelineBufs = 4;
    p.robEntries = 8;
    // A 4x4 group: longest path 2m-2 = 6.
    EXPECT_EQ(instructionDelayBound(p, 6), 6 * 2 + 4 + 8);
    EXPECT_EQ(instructionDelayBound(p, 0), 12);
    EXPECT_THROW(instructionDelayBound(p, -1), FatalError);
}

TEST(Sync, ActiveFramesAndAheadOffset)
{
    EXPECT_EQ(numActiveFrames(24, 10), 3);   // ceil(24/10)
    EXPECT_EQ(numActiveFrames(20, 10), 2);
    EXPECT_THROW(numActiveFrames(10, 0), FatalError);

    // ahead = max_frames - (active + q_inet); can go negative for
    // very short microthreads (the hardware guard then paces).
    EXPECT_EQ(aheadOffset(8, 3, 2), 3);
    EXPECT_LT(aheadOffset(5, 5, 2), 0);
}

TEST(Sync, FromMachineParams)
{
    MachineParams mp;
    SyncParams sp = syncParams(mp);
    EXPECT_EQ(sp.qInet, mp.inetQueueEntries);
    EXPECT_EQ(sp.robEntries, mp.core.robEntries);
}

namespace
{

/** Run a single-core program and return the word at `out`. */
Word
runProgram(Assembler &as, Addr out)
{
    MachineParams p;
    p.cols = 2;
    p.rows = 2;
    Machine m(p);
    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(10'000'000);
    return m.mem().readWord(out);
}

} // namespace

TEST(Codegen, LoopExecutesExactTripCount)
{
    for (int trips : {0, 1, 7, 33}) {
        Assembler as("loop");
        Addr out = AddrMap::globalBase;
        as.li(x(5), 0);
        as.li(x(6), trips);
        as.li(x(7), 0);
        {
            Loop l(as, x(5), x(6), 1);
            as.addi(x(7), x(7), 1);
            l.end();
        }
        as.la(x(8), out);
        as.sw(x(7), x(8), 0);
        as.halt();
        EXPECT_EQ(runProgram(as, out), static_cast<Word>(trips));
    }
}

TEST(Codegen, LoopWithStride)
{
    Assembler as("loop");
    Addr out = AddrMap::globalBase;
    as.li(x(5), 3);     // start
    as.li(x(6), 40);    // bound
    as.li(x(7), 0);
    {
        Loop l(as, x(5), x(6), 7);   // 3, 10, 17, 24, 31, 38 -> 6 trips
        as.addi(x(7), x(7), 1);
        l.end();
    }
    as.la(x(8), out);
    as.sw(x(7), x(8), 0);
    as.halt();
    EXPECT_EQ(runProgram(as, out), 6u);
}

TEST(Codegen, AffineAddressing)
{
    for (int stride : {4, 12, 256, 1000}) {
        Assembler as("affine");
        Addr out = AddrMap::globalBase;
        as.li(x(5), 1000);
        as.li(x(6), 13);
        emitAffine(as, x(7), x(5), x(6), stride, x(8));
        as.la(x(9), out);
        as.sw(x(7), x(9), 0);
        as.halt();
        EXPECT_EQ(runProgram(as, out),
                  static_cast<Word>(1000 + 13 * stride));
    }
}

TEST(Codegen, AddImmLargeValues)
{
    Assembler as("addimm");
    Addr out = AddrMap::globalBase;
    as.li(x(5), 5);
    emitAddImm(as, x(6), x(5), 100000, x(7));
    as.la(x(9), out);
    as.sw(x(6), x(9), 0);
    as.halt();
    EXPECT_EQ(runProgram(as, out), 100005u);
}

TEST(Codegen, FrameRotatorPow2Wrap)
{
    // 4 frames x 64 bytes: offsets cycle 0, 64, 128, 192, 0, ...
    Assembler as("rot");
    Addr out = AddrMap::globalBase;
    FrameRotator rot(as, x(5), 64, 4);
    rot.emitInit();
    for (int i = 0; i < 5; ++i)
        rot.emitAdvance();
    as.la(x(9), out);
    as.sw(x(5), x(9), 0);
    as.halt();
    EXPECT_EQ(runProgram(as, out), 64u);
}

TEST(Codegen, FrameRotatorNonPow2Wrap)
{
    // 5 frames x 20 bytes = 100B region (not a power of two).
    Assembler as("rot");
    Addr out = AddrMap::globalBase;
    FrameRotator rot(as, x(5), 20, 5, x(6));
    rot.emitInit();
    for (int i = 0; i < 7; ++i)
        rot.emitAdvance();
    as.la(x(9), out);
    as.sw(x(5), x(9), 0);
    as.halt();
    EXPECT_EQ(runProgram(as, out), 40u);   // 7 mod 5 = 2 frames in.
}

TEST(Codegen, NonPow2RotatorNeedsRegion)
{
    Assembler as("rot");
    EXPECT_THROW(FrameRotator(as, x(5), 20, 5), FatalError);
}

TEST(Codegen, SpmdBuilderTopology)
{
    MachineParams p;   // 8x8
    SpmdBuilder v4("t", configByName("V4"), p);
    EXPECT_EQ(v4.tilesPerGroup(), 5);
    EXPECT_EQ(v4.numGroups(), 12);
    EXPECT_EQ(v4.numWorkers(), 48);
    EXPECT_EQ(v4.activeCores(), 60);

    SpmdBuilder v16("t", configByName("V16"), p);
    EXPECT_EQ(v16.numGroups(), 3);
    EXPECT_EQ(v16.numWorkers(), 48);
    EXPECT_EQ(v16.activeCores(), 51);

    SpmdBuilder nv("t", configByName("NV"), p);
    EXPECT_EQ(nv.numWorkers(), 64);
    EXPECT_EQ(nv.activeCores(), 64);
}
