/**
 * @file
 * Static-verifier tests: every in-tree kernel emitter must pass the
 * verifier under every Table 3 configuration, and hand-built
 * malformed programs must each be rejected with the right check and
 * a witness path. Also covers the structured Program::entry()/at()
 * diagnostics the verifier reports build on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/perfbound.hh"
#include "analysis/verifier.hh"
#include "harness/runner.hh"
#include "isa/assembler.hh"
#include "kernels/common.hh"
#include "sim/log.hh"

namespace rockcress
{
namespace
{

// --- Every emitter, every configuration --------------------------------------

struct SweepCase
{
    std::string bench;
    std::string config;
};

std::vector<SweepCase>
allSweepCases()
{
    std::vector<SweepCase> cases;
    std::vector<std::string> benches = suiteNames();
    if (std::find(benches.begin(), benches.end(), "bfs") ==
        benches.end()) {
        benches.push_back("bfs");
    }
    for (const std::string &b : benches)
        for (const std::string &c : allConfigNames())
            cases.push_back({b, c});
    return cases;
}

class VerifierAccepts : public ::testing::TestWithParam<SweepCase>
{};

TEST_P(VerifierAccepts, EmitterPassesAllChecks)
{
    const SweepCase &sc = GetParam();
    BenchConfig cfg = configByName(sc.config);
    MachineParams params = machineFor(cfg);
    Machine machine(params);
    auto bench = makeBenchmark(sc.bench);
    auto program = bench->prepare(machine, cfg);
    VerifyReport report = verifyProgram(*program, cfg, params);
    EXPECT_TRUE(report.ok()) << report.text(*program);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, VerifierAccepts, ::testing::ValuesIn(allSweepCases()),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        std::string n = info.param.bench + "_" + info.param.config;
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

// --- Malformed fixtures ------------------------------------------------------

/** An assembled fixture plus its verification report. */
struct Fixture
{
    Program p;
    VerifyReport rep;
};

/** Finish and verify a fixture under a canonical vector config. */
Fixture
verifyFixture(Assembler &as, const std::string &config = "V4")
{
    Fixture f;
    f.p = as.finish();
    BenchConfig cfg = configByName(config);
    f.rep = verifyProgram(f.p, cfg, machineFor(cfg));
    return f;
}

/** First diagnostic of a given check, or nullptr. */
const Diagnostic *
findDiag(const VerifyReport &rep, Check c)
{
    for (const Diagnostic &d : rep.diagnostics)
        if (d.check == c)
            return &d;
    return nullptr;
}

TEST(VerifierRejects, DanglingVissueMicrothreadEndsInHalt)
{
    Assembler as("dangling_vissue");
    Label resume = as.newLabel();
    Label mt = as.newLabel();
    as.li(x(5), 1);
    as.csrw(Csr::Vconfig, x(5));
    as.vissue(mt);
    as.devec(resume);
    as.bind(resume);
    as.halt();
    as.bind(mt);
    as.addi(x(6), x(0), 7);
    as.halt();  // Should be vend: the microthread never terminates.

    Fixture f = verifyFixture(as);
    ASSERT_FALSE(f.rep.ok());
    const Diagnostic *d = findDiag(f.rep, Check::VectorRegion);
    ASSERT_NE(d, nullptr) << f.rep.text(f.p);
    EXPECT_EQ(d->pc, 6);  // li csrw vissue devec halt addi | halt.
    EXPECT_NE(d->message.find("halt"), std::string::npos);
    EXPECT_NE(d->message.find("microthread"), std::string::npos);
    EXPECT_FALSE(d->path.empty());
    EXPECT_EQ(d->path.back(), d->pc);
}

TEST(VerifierRejects, VissueOutsideVectorRegion)
{
    Assembler as("vissue_outside");
    Label mt = as.newLabel();
    as.vissue(mt);
    as.halt();
    as.bind(mt);
    as.vend();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::VectorRegion);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->pc, 0);
    EXPECT_NE(d->message.find("vissue outside a vector region"),
              std::string::npos);
}

TEST(VerifierRejects, HaltInsideVectorRegion)
{
    Assembler as("halt_in_region");
    as.li(x(5), 1);
    as.csrw(Csr::Vconfig, x(5));
    as.halt();  // No devec on this path: dangling region.

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::VectorRegion);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("dangling"), std::string::npos);
    // The witness path walks entry -> csrw -> halt.
    ASSERT_GE(d->path.size(), 3u);
    EXPECT_EQ(d->path.front(), 0);
}

TEST(VerifierRejects, NestedVectorRegion)
{
    Assembler as("nested_region");
    Label resume = as.newLabel();
    as.li(x(5), 1);
    as.csrw(Csr::Vconfig, x(5));
    as.csrw(Csr::Vconfig, x(5));  // Nested entry.
    as.devec(resume);
    as.bind(resume);
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::VectorRegion);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("nested"), std::string::npos);
}

TEST(VerifierRejects, OverDeepRemem)
{
    Assembler as("over_deep_remem");
    as.li(x(5), 64 | (5 << 16));
    as.csrw(Csr::FrameCfg, x(5));
    as.frameStart(x(6));
    as.remem();
    as.remem();  // Frees a frame that was never consumed.
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::FrameBalance);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("remem without a matching frame_start"),
              std::string::npos);
    // The diagnostic lands on the second remem, not the first.
    EXPECT_EQ(f.p.code[static_cast<size_t>(d->pc)].op, Opcode::REMEM);
    EXPECT_EQ(f.p.code[static_cast<size_t>(d->pc) - 1].op,
              Opcode::REMEM);
}

TEST(VerifierRejects, OpenFrameAtHalt)
{
    Assembler as("open_frame");
    as.li(x(5), 64 | (5 << 16));
    as.csrw(Csr::FrameCfg, x(5));
    as.frameStart(x(6));
    as.halt();  // Missing remem.

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::FrameBalance);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("open frame"), std::string::npos);
}

TEST(VerifierRejects, IllegalFrameConfig)
{
    Assembler as("bad_framecfg");
    as.li(x(5), 2000 | (5 << 16));  // 2000 words overflows a counter.
    as.csrw(Csr::FrameCfg, x(5));
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::FrameBalance);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("10-bit counter"), std::string::npos);
}

TEST(VerifierRejects, MisalignedVload)
{
    Assembler as("misaligned_vload");
    as.li(x(5), 6);  // Not word-aligned.
    as.li(x(6), 0);
    as.vload(x(5), x(6), 0, 4, VloadVariant::Self);
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::Vload);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("misaligned vload address 6"),
              std::string::npos);
}

TEST(VerifierRejects, VloadWiderThanLine)
{
    Assembler as("wide_vload");
    as.li(x(5), 64);
    as.li(x(6), 0);
    as.vload(x(5), x(6), 0, 32, VloadVariant::Self);  // 128 bytes.
    as.halt();

    Fixture f = verifyFixture(as);  // V4: 64-byte lines.
    const Diagnostic *d = findDiag(f.rep, Check::Vload);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("exceeds the 64-byte cache line"),
              std::string::npos);
}

TEST(VerifierAcceptsFixture, LongLinesAllowWideVload)
{
    Assembler as("ll_vload");
    as.li(x(5), 64);
    as.li(x(6), 0);
    as.vload(x(5), x(6), 0, 32, VloadVariant::Self);
    as.halt();

    Fixture f = verifyFixture(as, "V16_LL");
    EXPECT_EQ(findDiag(f.rep, Check::Vload), nullptr)
        << f.rep.text(f.p);
}

TEST(VerifierRejects, VloadUnderPlainNV)
{
    Assembler as("nv_vload");
    as.li(x(5), 64);
    as.li(x(6), 0);
    as.vload(x(5), x(6), 0, 4, VloadVariant::Self);
    as.halt();

    Fixture f = verifyFixture(as, "NV");
    const Diagnostic *d = findDiag(f.rep, Check::Vload);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("no wide-access support"),
              std::string::npos);
}

TEST(VerifierRejects, BranchUnderPredicate)
{
    Assembler as("pred_branch");
    Label t = as.newLabel();
    as.li(x(5), 1);
    as.li(x(6), 2);
    as.predEq(x(5), x(6));
    as.beq(x(5), x(6), t);  // Squashed branch deadlocks the frontend.
    as.bind(t);
    as.predEq(x(0), x(0));
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::Predication);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("deadlocks the frontend"),
              std::string::npos);
}

TEST(VerifierRejects, PredNeqOfRegisterWithItself)
{
    Assembler as("pred_neq_self");
    as.predNeq(x(5), x(5));
    as.predEq(x(0), x(0));
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::Predication);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("permanently false"), std::string::npos);
}

TEST(VerifierRejects, UseBeforeDefOnOnePath)
{
    Assembler as("use_before_def");
    Label skip = as.newLabel();
    Label join = as.newLabel();
    as.li(x(7), 3);
    as.beq(x(7), x(0), skip);
    as.li(x(5), 1);
    as.j(join);
    as.bind(skip);
    as.nop();
    as.bind(join);
    as.add(x(6), x(5), x(0));  // x5 undefined via the skip path.
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::UseBeforeDef);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("x5"), std::string::npos);
    // The witness path must avoid the defining li and go via skip.
    ASSERT_FALSE(d->path.empty());
    for (int pc : d->path) {
        const Instruction &inst = f.p.code[static_cast<size_t>(pc)];
        EXPECT_NE(destReg(inst), static_cast<int>(x(5)))
            << "witness path passes through the definition at " << pc;
    }
}

TEST(VerifierRejects, FallsOffTheEnd)
{
    Assembler as("falls_off");
    as.li(x(5), 1);  // No halt.

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::Cfg);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("falls off the end"), std::string::npos);
}

TEST(VerifierRejects, CapsDiagnosticsAtConfiguredMaximum)
{
    Assembler as("many_errors");
    for (int k = 0; k < 50; ++k)
        as.remem();  // 50 unmatched remems (plus no-FrameCfg finding).
    as.halt();

    Program p = as.finish();
    BenchConfig cfg = configByName("V4");
    VerifierOptions opts;
    opts.maxDiagnostics = 5;
    VerifyReport rep = verifyProgram(p, cfg, machineFor(cfg), opts);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.diagnostics.size(), 5u);
}

TEST(VerifierAcceptsFixture, WellFormedVectorFixture)
{
    // A hand-built program in the SpmdBuilder shape: configure
    // frames, enter the region, issue a frame-consuming microthread,
    // disband, halt; the microthread pairs frame_start with remem.
    Assembler as("well_formed");
    Label resume = as.newLabel();
    Label mt = as.newLabel();
    as.li(x(5), 4 | (5 << 16));
    as.csrw(Csr::FrameCfg, x(5));
    as.li(x(5), 1);
    as.csrw(Csr::Vconfig, x(5));
    as.li(x(6), 1024);
    as.li(x(7), 0);
    as.vload(x(6), x(7), 0, 4, VloadVariant::Group);
    as.vissue(mt);
    as.devec(resume);
    as.bind(resume);
    as.halt();
    as.bind(mt);
    as.frameStart(x(8));
    as.lw(x(9), x(8), 0);
    as.remem();
    as.vend();

    Fixture f = verifyFixture(as);
    EXPECT_TRUE(f.rep.ok()) << f.rep.text(f.p);
}

TEST(VerifierRejects, SeededDeadlockFixture)
{
    // The well-formed fixture with a 16-word frame but only a 4-word
    // fill: every frame_start waits for words no vload ever delivers,
    // so the group wedges. The token-flow pass must reject it with a
    // witness path to the offending frame_start.
    Assembler as("seeded_deadlock");
    Label resume = as.newLabel();
    Label mt = as.newLabel();
    as.li(x(5), 16 | (5 << 16));
    as.csrw(Csr::FrameCfg, x(5));
    as.li(x(5), 1);
    as.csrw(Csr::Vconfig, x(5));
    as.li(x(6), 1024);
    as.li(x(7), 0);
    as.vload(x(6), x(7), 0, 4, VloadVariant::Group);
    as.vissue(mt);
    as.devec(resume);
    as.bind(resume);
    as.halt();
    as.bind(mt);
    as.frameStart(x(8));
    as.lw(x(9), x(8), 0);
    as.remem();
    as.vend();

    Fixture f = verifyFixture(as);
    ASSERT_FALSE(f.rep.ok());
    const Diagnostic *d = findDiag(f.rep, Check::Deadlock);
    ASSERT_NE(d, nullptr) << f.rep.text(f.p);
    EXPECT_NE(d->message.find("frame_start"), std::string::npos);
    EXPECT_FALSE(d->path.empty());
    EXPECT_EQ(d->path.back(), d->pc);
}

TEST(VerifierRejects, VloadCrossingAFrameBoundary)
{
    // A 4-word fill at scratchpad offset 8 under 4-word (16-byte)
    // frames covers bytes [8, 24): it straddles frames 0 and 1, which
    // desynchronizes the per-frame fill counters.
    Assembler as("frame_overflow");
    Label resume = as.newLabel();
    Label mt = as.newLabel();
    as.li(x(5), 4 | (5 << 16));
    as.csrw(Csr::FrameCfg, x(5));
    as.li(x(5), 1);
    as.csrw(Csr::Vconfig, x(5));
    as.li(x(6), 1024);
    as.li(x(7), 8);
    as.vload(x(6), x(7), 0, 4, VloadVariant::Group);
    as.vissue(mt);
    as.devec(resume);
    as.bind(resume);
    as.halt();
    as.bind(mt);
    as.frameStart(x(8));
    as.lw(x(9), x(8), 0);
    as.remem();
    as.vend();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::Vload);
    ASSERT_NE(d, nullptr) << f.rep.text(f.p);
    EXPECT_NE(d->message.find("overruns the 4-word (16B) frame"),
              std::string::npos);
    EXPECT_FALSE(d->path.empty());
}

TEST(VerifierRejects, VloadPastTheScratchpad)
{
    Assembler as("spad_overflow");
    as.li(x(5), 64);
    as.li(x(6), 8192);  // Past the 4096-byte scratchpad.
    as.vload(x(5), x(6), 0, 4, VloadVariant::Self);
    as.halt();

    Fixture f = verifyFixture(as);
    const Diagnostic *d = findDiag(f.rep, Check::Vload);
    ASSERT_NE(d, nullptr) << f.rep.text(f.p);
    EXPECT_NE(d->message.find("overruns the 4096B scratchpad"),
              std::string::npos);
}

// --- Deterministic diagnostics -----------------------------------------------

TEST(Diagnostics, SortedByRoutineThenInstruction)
{
    // One malformed vload in the main body, one in a microthread; the
    // report must order them main-body first (routine entry 0) and
    // name the routine each diagnostic belongs to.
    Assembler as("two_routines");
    Label resume = as.newLabel();
    Label mt = as.newLabel();
    as.li(x(9), 6);
    as.li(x(10), 0);
    as.vload(x(9), x(10), 0, 4, VloadVariant::Self);  // Misaligned.
    as.li(x(5), 4 | (5 << 16));
    as.csrw(Csr::FrameCfg, x(5));
    as.li(x(5), 1);
    as.csrw(Csr::Vconfig, x(5));
    as.li(x(6), 1024);
    as.li(x(7), 0);
    as.vload(x(6), x(7), 0, 4, VloadVariant::Group);
    as.vissue(mt);
    as.devec(resume);
    as.bind(resume);
    as.halt();
    as.bind(mt);
    as.frameStart(x(8));
    as.li(x(11), 10);
    as.li(x(12), 0);
    as.vload(x(11), x(12), 0, 4, VloadVariant::Self);  // Misaligned.
    as.remem();
    as.vend();

    Fixture f = verifyFixture(as);
    ASSERT_GE(f.rep.diagnostics.size(), 2u) << f.rep.text(f.p);
    const Diagnostic &first = f.rep.diagnostics.front();
    const Diagnostic &last = f.rep.diagnostics.back();
    EXPECT_EQ(first.routine, "main body");
    EXPECT_EQ(first.routineEntry, 0);
    EXPECT_NE(last.routine.find("microthread at"), std::string::npos);
    EXPECT_GT(last.routineEntry, 0);
    for (std::size_t i = 1; i < f.rep.diagnostics.size(); ++i) {
        const Diagnostic &a = f.rep.diagnostics[i - 1];
        const Diagnostic &b = f.rep.diagnostics[i];
        EXPECT_LE(std::tie(a.routineEntry, a.pc),
                  std::tie(b.routineEntry, b.pc));
    }
}

// --- JALR static resolution --------------------------------------------------

TEST(CfgJalr, UniquelyLinkedReturnGetsAStaticEdge)
{
    Assembler as("jalr_ret");
    Label sub = as.newLabel();
    as.li(x(5), 1);          // 0
    as.jal(x(1), sub);       // 1: link value is 2.
    as.halt();               // 2
    as.bind(sub);
    as.addi(x(6), x(5), 1);  // 3
    as.jalr(x(0), x(1), 0);  // 4: must resolve to 2.

    Program p = as.finish();
    Cfg cfg = buildCfg(p);
    EXPECT_TRUE(cfg.indirectJumps.empty());
    ASSERT_EQ(cfg.succs[4].size(), 1u);
    EXPECT_EQ(cfg.succs[4][0], 2);

    // And the verifier accepts the whole program.
    BenchConfig bc = configByName("V4");
    VerifyReport rep = verifyProgram(p, bc, machineFor(bc));
    EXPECT_TRUE(rep.ok()) << rep.text(p);
}

TEST(CfgJalr, MultiplyDefinedLinkRegisterStaysIndirect)
{
    Assembler as("jalr_multi");
    as.li(x(1), 3);          // 0
    as.li(x(1), 5);          // 1: second definition of x1.
    as.jalr(x(0), x(1), 0);  // 2: cannot be pinned statically.
    as.halt();               // 3

    Program p = as.finish();
    Cfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.indirectJumps.size(), 1u);
    EXPECT_EQ(cfg.indirectJumps[0], 2);
    EXPECT_TRUE(cfg.succs[2].empty());

    BenchConfig bc = configByName("V4");
    VerifyReport rep = verifyProgram(p, bc, machineFor(bc));
    EXPECT_NE(findDiag(rep, Check::Cfg), nullptr) << rep.text(p);
}

// --- Dataflow solver corner cases --------------------------------------------

/**
 * Toy domain with an (almost) infinite ascending chain: the state
 * counts transfer applications, saturating at kSat. Without widening
 * a self-loop would take ~kSat iterations to stabilize; the widening
 * hook jumps straight to the saturation point.
 */
struct CounterDomain
{
    static constexpr long kSat = 1'000'000'000;
    struct State
    {
        long v = -1;  ///< -1 = bottom.
    };
    State bottom() const { return {}; }
    State transfer(int, const State &in) const
    {
        if (in.v < 0 || in.v >= kSat)
            return in;
        return {in.v + 1};
    }
    bool join(State &into, const State &from) const
    {
        if (from.v > into.v) {
            into.v = from.v;
            return true;
        }
        return false;
    }
    void widen(State &cur, const State &prev) const
    {
        if (cur.v > prev.v)
            cur.v = kSat;
    }
};

TEST(DataflowSolver, UnreachableNodesStayBottom)
{
    Assembler as("dead_code");
    Label skip = as.newLabel();
    as.j(skip);      // 0
    as.li(x(5), 7);  // 1: dead.
    as.bind(skip);
    as.halt();       // 2

    Program p = as.finish();
    Cfg cfg = buildCfg(p);
    CounterDomain dom;
    auto sol = solveDataflow(cfg, dom, {{0, CounterDomain::State{0}}});
    EXPECT_TRUE(sol.reached[0]);
    EXPECT_FALSE(sol.reached[1]);
    EXPECT_TRUE(sol.reached[2]);
    EXPECT_EQ(sol.in[1].v, -1);  // Still bottom.
}

TEST(DataflowSolver, WideningTerminatesAnAscendingLoop)
{
    Assembler as("tight_loop");
    Label l = as.newLabel();
    as.bind(l);
    as.addi(x(5), x(5), 1);  // 0
    as.j(l);                 // 1

    Program p = as.finish();
    Cfg cfg = buildCfg(p);
    CounterDomain dom;
    // Would take ~1e9 joins without the widening hook.
    auto sol = solveDataflow(cfg, dom, {{0, CounterDomain::State{0}}});
    EXPECT_TRUE(sol.reached[0]);
    EXPECT_TRUE(sol.reached[1]);
    EXPECT_EQ(sol.in[0].v, CounterDomain::kSat);
}

/** Backward may-reach-terminator domain (finite powerset lattice). */
struct ExitSetDomain
{
    const Cfg *cfg = nullptr;
    using State = std::set<int>;
    State bottom() const { return {}; }
    State transfer(int pc, const State &in) const
    {
        State out = in;
        if (cfg->succs[static_cast<size_t>(pc)].empty())
            out.insert(pc);
        return out;
    }
    bool join(State &into, const State &from) const
    {
        bool changed = false;
        for (int v : from)
            changed |= into.insert(v).second;
        return changed;
    }
};

TEST(DataflowSolver, BackwardSolveConvergesAroundALoop)
{
    Assembler as("backward_loop");
    Label l = as.newLabel();
    as.li(x(5), 0);           // 0
    as.li(x(6), 3);           // 1
    as.bind(l);
    as.addi(x(5), x(5), 1);   // 2
    as.blt(x(5), x(6), l);    // 3
    as.halt();                // 4

    Program p = as.finish();
    Cfg cfg = buildCfg(p);
    ExitSetDomain dom{&cfg};
    SolveOptions opts;
    opts.backward = true;
    auto sol = solveDataflow(cfg, dom, {{4, ExitSetDomain::State{}}},
                             nullptr, opts);
    for (int pc = 0; pc < cfg.size(); ++pc)
        EXPECT_TRUE(sol.reached[static_cast<size_t>(pc)]) << pc;
    EXPECT_EQ(sol.in[0], (std::set<int>{4}));
    EXPECT_EQ(sol.in[2], (std::set<int>{4}));
}

// --- Static performance bound ------------------------------------------------

TEST(PerfBound, StraightLineProgramBoundedByColdFrontend)
{
    Assembler as("straight");
    as.li(x(5), 1);
    as.li(x(6), 2);
    as.li(x(7), 3);
    as.halt();

    Program p = as.finish();
    BenchConfig cfg = configByName("NV");
    PerfBoundReport r = computePerfBound(p, cfg, machineFor(cfg));
    EXPECT_FALSE(r.vectorCeiling);
    EXPECT_FALSE(r.unboundedRun);
    EXPECT_EQ(r.runToBranch, -1);
    EXPECT_EQ(r.runToEnd, 4);
    // Le / (Le + frontendDelay + 1) with frontendDelay = 2.
    EXPECT_DOUBLE_EQ(r.ipcBound, 4.0 / 7.0);
}

TEST(PerfBound, LoopBoundReflectsTheBranchBubble)
{
    Assembler as("loop");
    Label l = as.newLabel();
    as.li(x(5), 0);          // 0
    as.li(x(6), 3);          // 1
    as.bind(l);
    as.addi(x(5), x(5), 1);  // 2
    as.blt(x(5), x(6), l);   // 3
    as.halt();               // 4

    Program p = as.finish();
    BenchConfig cfg = configByName("NV");
    PerfBoundReport r = computePerfBound(p, cfg, machineFor(cfg));
    EXPECT_EQ(r.runToBranch, 4);  // li li addi blt.
    EXPECT_DOUBLE_EQ(r.ipcBound, 4.0 / 6.0);
    ASSERT_EQ(r.loops.size(), 1u);
    EXPECT_EQ(r.loops[0].head, 2);
    EXPECT_EQ(r.loops[0].len, 2);
    EXPECT_DOUBLE_EQ(r.loops[0].ipcFrontend, 0.5);
    EXPECT_FALSE(r.blocks.empty());
}

TEST(PerfBound, VectorConfigsCertifyOnlySingleIssue)
{
    Assembler as("vec");
    as.li(x(5), 1);
    as.halt();

    Program p = as.finish();
    BenchConfig cfg = configByName("V4");
    PerfBoundReport r = computePerfBound(p, cfg, machineFor(cfg));
    EXPECT_TRUE(r.vectorCeiling);
    EXPECT_DOUBLE_EQ(r.ipcBound, 1.0);
}

// --- Report plumbing ---------------------------------------------------------

TEST(VerifyReportText, NamesTheCheckAndDisassemblesTheInstruction)
{
    Assembler as("report_text");
    Label mt = as.newLabel();
    as.vissue(mt);
    as.halt();
    as.bind(mt);
    as.vend();

    Fixture f = verifyFixture(as);
    ASSERT_FALSE(f.rep.ok());
    std::string text = f.rep.text(f.p);
    EXPECT_NE(text.find("report_text"), std::string::npos);
    EXPECT_NE(text.find("[vector-region]"), std::string::npos);
    EXPECT_NE(text.find("vissue"), std::string::npos);
    EXPECT_EQ(std::string(checkName(Check::UseBeforeDef)),
              "use-before-def");
}

TEST(RunnerGate, AcceptsAHealthyRun)
{
    // The on-by-default runner gate must not reject a healthy run.
    RunOverrides ov;
    ASSERT_TRUE(ov.verify);
    RunResult r = runManycore("mvt", "V4", ov);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(RunnerGate, SimulatedIpcNeverExceedsTheStaticBound)
{
    RunOverrides ov;
    ov.perfLint = true;
    RunResult r = runManycore("mvt", "V4", ov);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.staticIpcBound, 0.0);
    EXPECT_GT(r.measuredIpc, 0.0);
    EXPECT_LE(r.measuredIpc, r.staticIpcBound + 1e-9);
}

TEST(RunnerGate, PerfLintFlagsRunsFarBelowTheBound)
{
    // With an (unrealistically) strict utilization floor the same
    // healthy run must be flagged: no real schedule reaches 99.9% of
    // the certified ceiling.
    RunOverrides ov;
    ov.perfLint = true;
    ov.perfLintMinFraction = 0.999;
    RunResult r = runManycore("mvt", "V4", ov);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("perf-lint"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("below"), std::string::npos) << r.error;
}

// --- Program lookup diagnostics ----------------------------------------------

TEST(ProgramDiagnostics, EntrySuggestsNearestSymbols)
{
    Program p;
    p.name = "prog";
    p.code.resize(4);
    p.symbols = {{"alpha", 0}, {"beta", 2}};
    try {
        p.entry("alpa");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no symbol 'alpa'"), std::string::npos);
        EXPECT_NE(msg.find("'alpha'"), std::string::npos);
    }
}

TEST(ProgramDiagnostics, AtNamesTheNearestPrecedingSymbol)
{
    Program p;
    p.name = "prog";
    p.code.resize(4);
    p.symbols = {{"alpha", 0}, {"beta", 2}};
    try {
        p.at(17);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("PC 17 out of range"), std::string::npos);
        EXPECT_NE(msg.find("nearest preceding symbol 'beta'"),
                  std::string::npos);
        EXPECT_NE(msg.find("last instruction 3"), std::string::npos);
    }
}

} // namespace
} // namespace rockcress
