/**
 * @file
 * End-to-end smoke tests for the assembled machine: MIMD programs,
 * global loads/stores, barriers, and a minimal vector group running
 * a DAE-streamed microthread.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "machine/machine.hh"

using namespace rockcress;

namespace
{

MachineParams
tinyParams()
{
    MachineParams p;
    p.cols = 2;
    p.rows = 2;
    return p;
}

} // namespace

TEST(MachineBasic, SingleCoreArithmeticAndStore)
{
    MachineParams p = tinyParams();
    Machine m(p);

    Addr out = AddrMap::globalBase;
    Assembler as("arith");
    as.li(x(5), 21);
    as.slli(x(6), x(5), 1);     // 42
    as.la(x(7), out);
    as.sw(x(6), x(7), 0);
    as.li(x(8), 7);
    as.li(x(9), 3);
    as.mul(x(10), x(8), x(9));  // 21
    as.sw(x(10), x(7), 4);
    as.halt();
    auto prog = std::make_shared<Program>(as.finish());

    // Only core 0 does work; others halt immediately.
    Assembler idle("idle");
    idle.halt();
    auto idle_prog = std::make_shared<Program>(idle.finish());
    m.loadAll(idle_prog);
    m.loadProgram(0, prog);

    Cycle cycles = m.run(100000);
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(m.mem().readWord(out), 42u);
    EXPECT_EQ(m.mem().readWord(out + 4), 21u);
}

TEST(MachineBasic, GlobalLoadRoundTrip)
{
    Machine m(tinyParams());
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 256;
    m.mem().writeWord(in, 1234);

    Assembler as("load");
    as.la(x(5), in);
    as.lw(x(6), x(5), 0);
    as.addi(x(6), x(6), 1);
    as.la(x(7), out);
    as.sw(x(6), x(7), 0);
    as.halt();
    auto prog = std::make_shared<Program>(as.finish());

    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, prog);
    m.run(100000);
    EXPECT_EQ(m.mem().readWord(out), 1235u);
}

TEST(MachineBasic, SpmdAllCoresStoreTheirId)
{
    Machine m(tinyParams());
    Addr out = AddrMap::globalBase;

    Assembler as("spmd");
    as.csrr(x(5), Csr::CoreId);
    as.la(x(6), out);
    emitAffine(as, x(7), x(6), x(5), 4, x(8));
    as.sw(x(5), x(7), 0);
    as.barrier();
    as.halt();
    m.loadAll(std::make_shared<Program>(as.finish()));
    m.run(100000);
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(m.mem().readWord(out + 4 * static_cast<Addr>(c)),
                  static_cast<Word>(c));
}

TEST(MachineBasic, LoopSumsArray)
{
    Machine m(tinyParams());
    Addr in = AddrMap::globalBase;
    const int n = 20;
    Word expect = 0;
    for (int i = 0; i < n; ++i) {
        m.mem().writeWord(in + 4 * static_cast<Addr>(i),
                          static_cast<Word>(i * 3));
        expect += static_cast<Word>(i * 3);
    }
    Addr out = AddrMap::globalBase + 4096;

    Assembler as("sum");
    as.la(x(5), in);       // pointer
    as.li(x(6), 0);        // i
    as.li(x(7), n);        // bound
    as.li(x(8), 0);        // acc
    {
        Loop loop(as, x(6), x(7), 1);
        as.lw(x(9), x(5), 0);
        as.add(x(8), x(8), x(9));
        as.addi(x(5), x(5), 4);
        loop.end();
    }
    as.la(x(10), out);
    as.sw(x(8), x(10), 0);
    as.halt();

    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(1000000);
    EXPECT_EQ(m.mem().readWord(out), expect);
}

TEST(MachineBasic, FloatArithmetic)
{
    Machine m(tinyParams());
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 64;
    m.mem().writeFloat(in, 1.5f);
    m.mem().writeFloat(in + 4, 2.25f);

    Assembler as("fp");
    as.la(x(5), in);
    as.flw(f(0), x(5), 0);
    as.flw(f(1), x(5), 4);
    as.fadd(f(2), f(0), f(1));     // 3.75
    as.fmul(f(3), f(2), f(1));     // 8.4375
    as.fmadd(f(4), f(0), f(1), f(3));  // 1.5*2.25 + 8.4375 = 11.8125
    as.la(x(6), out);
    as.fsw(f(4), x(6), 0);
    as.halt();

    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(100000);
    EXPECT_FLOAT_EQ(m.mem().readFloat(out), 11.8125f);
}

TEST(MachineBasic, NvPfSelfLoadStream)
{
    // NV_PF style: stage chunks of a global array through the frame
    // queue with vload.self, then consume from the scratchpad.
    Machine m(tinyParams());
    const int chunk_words = 8;
    const int chunks = 6;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 8192;
    Word expect = 0;
    for (int i = 0; i < chunk_words * chunks; ++i) {
        m.mem().writeWord(in + 4 * static_cast<Addr>(i),
                          static_cast<Word>(i + 1));
        expect += static_cast<Word>(i + 1);
    }

    Assembler as("nvpf");
    const int frame_bytes = chunk_words * 4;
    as.li(x(5), chunk_words | (8 << 16));
    as.csrw(Csr::FrameCfg, x(5));
    as.la(x(9), in);   // stream pointer

    DaeStreamSpec spec;
    spec.iters = chunks;
    spec.frameBytes = frame_bytes;
    spec.numFrames = 8;
    spec.fill = [&](Assembler &a, RegIdx off) {
        a.vload(x(9), off, 0, chunk_words, VloadVariant::Self);
        a.addi(x(9), x(9), frame_bytes);
    };
    spec.consume = [&](Assembler &a, RegIdx fb) {
        for (int w = 0; w < chunk_words; ++w) {
            a.lw(x(10), fb, 4 * w);
            a.add(x(11), x(11), x(10));
        }
    };
    as.li(x(11), 0);
    DaeStreamRegs regs;
    FrameRotator rot(as, regs.off, spec.frameBytes, spec.numFrames);
    rot.emitInit();
    emitMimdStream(as, spec, rot, regs);
    as.la(x(12), out);
    as.sw(x(11), x(12), 0);
    as.halt();

    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(1000000);
    EXPECT_EQ(m.mem().readWord(out), expect);
}

TEST(MachineBasic, VectorGroupStreamsAndComputes)
{
    // One group: scalar core 0, expander 1, vector core 2 on a 2x2
    // fabric. The scalar core group-loads chunks; each vector core
    // adds its received words into an accumulator; a final
    // microthread stores per-core sums to global memory.
    BenchConfig cfg = configByName("V4");
    cfg.groupSize = 2;  // 2 vector cores + 1 scalar = 3 tiles of 4.
    MachineParams p = tinyParams();
    Machine m(p);

    const int w = 4;           // words per core per chunk
    const int chunks = 5;
    const int vlen = 2;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 8192;
    for (int i = 0; i < w * vlen * chunks; ++i)
        m.mem().writeWord(in + 4 * static_cast<Addr>(i),
                          static_cast<Word>(i + 1));
    // Expected per-lane sums.
    Word expect[2] = {0, 0};
    for (int c = 0; c < chunks; ++c) {
        for (int lane = 0; lane < vlen; ++lane) {
            for (int k = 0; k < w; ++k)
                expect[lane] += static_cast<Word>(
                    c * w * vlen + lane * w + k + 1);
        }
    }

    SpmdBuilder b("vgroup", cfg, p);
    Label init_mt = b.declareMicrothread();
    Label body_mt = b.declareMicrothread();
    Label fini_mt = b.declareMicrothread();

    b.defineMicrothread(init_mt, [&](Assembler &a) {
        a.li(x(11), 0);                 // accumulator
        a.csrr(x(12), Csr::GroupTid);   // lane id
    });
    b.defineMicrothread(body_mt, [&](Assembler &a) {
        a.frameStart(x(13));
        for (int k = 0; k < w; ++k) {
            a.lw(x(10), x(13), 4 * k);
            a.add(x(11), x(11), x(10));
        }
        a.remem();
    });
    b.defineMicrothread(fini_mt, [&](Assembler &a) {
        a.la(x(14), out);
        emitAffine(a, x(14), x(14), x(12), 4, x(15));
        a.sw(x(11), x(14), 0);
    });

    b.vectorPhase(w, 8, [&](Assembler &a) {
        a.vissue(init_mt);
        a.la(x(9), in);
        DaeStreamSpec spec;
        spec.iters = chunks;
        spec.frameBytes = w * 4;
        spec.numFrames = 8;
        spec.bodyMt = body_mt;
        spec.fill = [&](Assembler &aa, RegIdx off) {
            aa.vload(x(9), off, 0, w, VloadVariant::Group);
            aa.addi(x(9), x(9), w * 4 * vlen);
        };
        DaeStreamRegs regs;
        FrameRotator rot(a, regs.off, spec.frameBytes, spec.numFrames);
        rot.emitInit();
        emitScalarStream(a, spec, rot, regs);
        a.vissue(fini_mt);
    });

    auto prog = std::make_shared<Program>(b.finish());
    m.loadAll(prog);
    GroupPlan plan;
    plan.chain = {0, 1, 2};
    m.planGroup(plan);
    m.run(1000000);

    EXPECT_EQ(m.mem().readWord(out), expect[0]);
    EXPECT_EQ(m.mem().readWord(out + 4), expect[1]);

    // Vector cores must not have touched their I-caches while in
    // vector mode; only cores 0 (scalar) and 1 (expander) fetch.
    EXPECT_GT(m.stats().get("core1.icache.accesses"), 0u);
}

TEST(MachineBasic, PredicationSquashesToNops)
{
    Machine m(tinyParams());
    Addr out = AddrMap::globalBase;

    Assembler as("pred");
    as.li(x(5), 1);
    as.li(x(6), 2);
    as.li(x(7), 100);
    as.predEq(x(5), x(6));     // false: following ops are nops
    as.addi(x(7), x(7), 23);
    as.predEq(regZero, regZero);  // true again
    as.addi(x(7), x(7), 1);    // 101
    as.la(x(8), out);
    as.sw(x(7), x(8), 0);
    as.halt();

    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as.finish()));
    m.run(100000);
    EXPECT_EQ(m.mem().readWord(out), 101u);
}

TEST(MachineBasic, RemoteScratchpadStore)
{
    Machine m(tinyParams());
    Addr out = AddrMap::globalBase;

    // Core 0 stores into core 1's scratchpad; core 1 polls its
    // scratchpad and publishes what it sees.
    Assembler as0("writer");
    as0.li(x(5), 77);
    as0.la(x(6), AddrMap{}.spadBase(1) + 128);
    as0.sw(x(5), x(6), 0);
    as0.halt();

    Assembler as1("reader");
    Addr spad_base = AddrMap{}.spadBase(1);
    as1.la(x(5), spad_base + 128);
    Label top = as1.here();
    as1.lw(x(6), x(5), 0);
    as1.beq(x(6), regZero, top);   // spin until the word arrives
    as1.la(x(7), out);
    as1.sw(x(6), x(7), 0);
    as1.halt();

    Assembler idle("idle");
    idle.halt();
    m.loadAll(std::make_shared<Program>(idle.finish()));
    m.loadProgram(0, std::make_shared<Program>(as0.finish()));
    m.loadProgram(1, std::make_shared<Program>(as1.finish()));
    m.run(100000);
    EXPECT_EQ(m.mem().readWord(out), 77u);
}
