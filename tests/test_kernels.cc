/**
 * @file
 * Parameterized correctness sweep: every benchmark under every
 * manycore configuration (and the GPU) must reproduce the host
 * reference. This is the property that makes performance claims
 * meaningful (Section 6.1: "We check correctness using a serial
 * version of each kernel").
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace rockcress;

namespace
{

struct Case
{
    std::string bench;
    std::string config;
};

std::ostream &
operator<<(std::ostream &os, const Case &c)
{
    return os << c.bench << "_" << c.config;
}

class KernelCorrectness : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(KernelCorrectness, MatchesHostReference)
{
    const Case &c = GetParam();
    RunResult r = c.config == "GPU" ? runGpu(c.bench)
                                    : runManycore(c.bench, c.config);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.cycles, 0u);
}

namespace
{

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    std::vector<std::string> benches = suiteNames();
    benches.push_back("bfs");
    for (const std::string &b : benches) {
        for (const std::string &cfg :
             {"NV", "NV_PF", "PCV_PF", "V4", "V16"}) {
            cases.push_back({b, cfg});
        }
        if (b != "bfs")
            cases.push_back({b, "GPU"});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string n = info.param.bench + "_" + info.param.config;
    for (char &c : n) {
        if (c == '-')
            c = '_';
    }
    return n;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Suite, KernelCorrectness,
                         ::testing::ValuesIn(allCases()), caseName);

// Long-line and PCV vector variants on a representative subset.
namespace
{

std::vector<Case>
variantCases()
{
    std::vector<Case> cases;
    for (const std::string &b : {"atax", "gemm", "2dconv", "gesummv"}) {
        for (const std::string &cfg :
             {"V4_PCV", "V16_PCV", "V16_LL", "V4_LL_PCV",
              "V16_LL_PCV"}) {
            cases.push_back({b, cfg});
        }
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Variants, KernelCorrectness,
                         ::testing::ValuesIn(variantCases()), caseName);
