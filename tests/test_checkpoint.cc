/**
 * @file
 * Checkpoint/resume differential over the golden suite. The hard
 * invariant (DESIGN.md S5k): snapshot-at-C then resume must be
 * invisible — a run chunked through any sequence of pause points
 * produces byte-identical final snapshots, run artifacts, and
 * Perfetto trace documents versus the straight run, under both tick
 * kernels. Plus the format's failure modes: every malformed or
 * mismatched input throws a structured CheckpointError, never UB.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "exp/engine.hh"
#include "exp/result_io.hh"
#include "harness/runner.hh"
#include "kernels/common.hh"
#include "machine/machine.hh"
#include "sim/checkpoint.hh"
#include "trace/perfetto.hh"

using namespace rockcress;

namespace
{

struct Case
{
    std::string bench;
    std::string config;
};

std::vector<Case>
ckptCases()
{
    return {
        {"atax", "NV_PF"},
        {"atax", "V4"},
        {"gemm", "V4_PCV"},
        {"mvt", "V16"},
        {"bfs", "NV_PF"},
    };
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return info.param.bench + "_" + info.param.config;
}

/** A prepared machine plus what keeps it alive. */
struct Sys
{
    std::unique_ptr<Benchmark> benchmark;
    std::unique_ptr<Machine> machine;
};

Sys
makeSys(const Case &c, bool naive)
{
    Sys s;
    BenchConfig cfg = configByName(c.config);
    s.machine = std::make_unique<Machine>(machineFor(cfg));
    s.benchmark = makeBenchmark(c.bench);
    s.benchmark->prepare(*s.machine, cfg);
    s.machine->setNaiveTick(naive);
    return s;
}

/** 16 distinct seeded pause cycles in (0, total). */
std::vector<Cycle>
pausePoints(const Case &c, bool naive, Cycle total)
{
    std::seed_seq seq{std::hash<std::string>{}(c.bench),
                      std::hash<std::string>{}(c.config),
                      static_cast<std::size_t>(naive)};
    std::mt19937_64 rng(seq);
    std::set<Cycle> stops;
    std::uniform_int_distribution<Cycle> dist(1, total - 1);
    while (stops.size() < 16 && stops.size() + 1 < total)
        stops.insert(dist(rng));
    return {stops.begin(), stops.end()};
}

class Checkpoint : public ::testing::TestWithParam<Case>
{
};

} // namespace

/**
 * The tentpole invariant, machine level: one straight run versus one
 * run chunked through 16 seeded pause points, each chunk resumed by
 * restoring the snapshot into a freshly prepared machine. The final
 * snapshots must be byte-identical, under both kernels.
 */
TEST_P(Checkpoint, ChainedResumeIsInvisible)
{
    const Case &c = GetParam();
    for (bool naive : {false, true}) {
        SCOPED_TRACE(naive ? "naive kernel" : "fast kernel");
        Sys straight = makeSys(c, naive);
        Cycle total = straight.machine->run();
        ASSERT_TRUE(straight.machine->finished());
        std::vector<std::uint8_t> want =
            saveCheckpoint(*straight.machine);

        Sys cur = makeSys(c, naive);
        bool verifiedRoundTrip = false;
        for (Cycle stop : pausePoints(c, naive, total)) {
            cur.machine->run(0, stop);
            ASSERT_EQ(cur.machine->cycles(), stop);
            ASSERT_FALSE(cur.machine->finished());
            std::vector<std::uint8_t> bytes =
                saveCheckpoint(*cur.machine);
            Sys next = makeSys(c, naive);
            restoreCheckpoint(*next.machine, bytes);
            if (!verifiedRoundTrip) {
                // Restore then re-save reproduces the exact snapshot.
                EXPECT_EQ(bytes, saveCheckpoint(*next.machine));
                verifiedRoundTrip = true;
            }
            cur = std::move(next);
        }
        EXPECT_EQ(cur.machine->run(), total);
        EXPECT_TRUE(cur.machine->finished());
        EXPECT_EQ(want, saveCheckpoint(*cur.machine));
    }
}

/**
 * Kernel transparency of the snapshot itself: pausing the fast-tick
 * and the naive machine at the same cycle yields byte-identical
 * snapshots — the checkpoint sees no trace of the scheduler. Also
 * covers cross-kernel resume: a fast-tick snapshot finished on the
 * naive kernel reaches the same final state.
 */
TEST_P(Checkpoint, FastAndNaiveSnapshotsAreByteIdentical)
{
    const Case &c = GetParam();
    Sys probe = makeSys(c, false);
    Cycle total = probe.machine->run();
    Cycle stop = total / 2;

    Sys fast = makeSys(c, false);
    Sys naive = makeSys(c, true);
    fast.machine->run(0, stop);
    naive.machine->run(0, stop);
    std::vector<std::uint8_t> fastSnap = saveCheckpoint(*fast.machine);
    EXPECT_EQ(fastSnap, saveCheckpoint(*naive.machine));

    // Cross-kernel resume: fast snapshot, naive finish.
    Sys cross = makeSys(c, true);
    restoreCheckpoint(*cross.machine, fastSnap);
    EXPECT_EQ(cross.machine->run(), total);
    EXPECT_EQ(saveCheckpoint(*cross.machine),
              saveCheckpoint(*probe.machine));
}

/**
 * Traced runs resume transparently in-process: a chunked run that
 * carries its TraceSink across restores into fresh machines exports
 * the byte-identical Perfetto document of the straight traced run
 * (open CPI spans live inside the cores and must survive the hop).
 */
TEST_P(Checkpoint, TracedResumeExportsIdenticalPerfetto)
{
    const Case &c = GetParam();
    Sys straight = makeSys(c, false);
    TraceSink straightSink{TraceOptions{}};
    straight.machine->attachTrace(&straightSink);
    Cycle total = straight.machine->run();
    straight.machine->flushTrace();
    std::string want = perfettoJson(straightSink, "ckpt");

    TraceSink chunkSink{TraceOptions{}};
    Sys cur = makeSys(c, false);
    cur.machine->attachTrace(&chunkSink);
    for (Cycle stop :
         {total / 5, total / 2, total - total / 4, total - 7}) {
        cur.machine->run(0, stop);
        std::vector<std::uint8_t> bytes = saveCheckpoint(*cur.machine);
        Sys next = makeSys(c, false);
        restoreCheckpoint(*next.machine, bytes);
        next.machine->attachTrace(&chunkSink);
        cur = std::move(next);
    }
    EXPECT_EQ(cur.machine->run(), total);
    cur.machine->flushTrace();
    EXPECT_EQ(want, perfettoJson(chunkSink, "ckpt"));
}

INSTANTIATE_TEST_SUITE_P(Suite, Checkpoint,
                         ::testing::ValuesIn(ckptCases()), caseName);

namespace
{

/** Straight-run artifact of a point, for byte comparisons. */
std::string
straightArtifact(const std::string &bench, const std::string &config)
{
    return resultToJson(runManycore(bench, config)).dump();
}

} // namespace

/**
 * Runner-level file-based resume: pause at a checkpoint boundary,
 * write the file, resume it in a "new process" (a second runManycore
 * call that shares nothing with the first) — the completing
 * segment's serialized artifact must be byte-identical to the
 * straight run's.
 */
TEST(CheckpointRunner, FileResumeArtifactIsByteIdentical)
{
    std::string dir = ::testing::TempDir();
    std::string want = straightArtifact("atax", "V4");

    RunOverrides seg1;
    seg1.stopAtCycle = 60000;
    seg1.checkpointEveryN = 60000;
    seg1.ckptDir = dir;
    seg1.ckptTag = "resume_test";
    RunResult first = runManycore("atax", "V4", seg1);
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_TRUE(first.partial);
    ASSERT_EQ(first.cycles, 60000u);
    ASSERT_EQ(first.checkpoints.size(), 1u);

    RunOverrides seg2;
    seg2.resumeFrom = first.checkpoints[0];
    RunResult second = runManycore("atax", "V4", seg2);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_FALSE(second.partial);
    EXPECT_EQ(want, resultToJson(second).dump());
    std::remove(first.checkpoints[0].c_str());
}

/** resumeFrom with process-local observers is a structured error. */
TEST(CheckpointRunner, ResumeRejectsCosimAndTrace)
{
    for (bool cosim : {true, false}) {
        RunOverrides ov;
        ov.resumeFrom = "/nonexistent.rkcp";
        ov.cosim = cosim;
        ov.trace = !cosim;
        RunResult r = runManycore("atax", "V4", ov);
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("checkpoint:"), std::string::npos)
            << r.error;
    }
}

/**
 * Sharded sweep segments: ExperimentEngine::runSegmented chunks the
 * run through content-addressed segment checkpoints, and the final
 * result is byte-identical to the unsegmented run. A second call
 * reuses the on-disk segments only if valid; stale files from a
 * different program must be discarded, not trusted.
 */
TEST(CheckpointRunner, SegmentedSweepMatchesStraightRun)
{
    std::string dir = ::testing::TempDir();
    setenv("ROCKCRESS_CKPT_DIR", dir.c_str(), 1);
    std::string want = straightArtifact("atax", "V4");

    ExperimentEngine::Options opts;
    opts.progress = false;
    opts.audit = 0;
    ExperimentEngine engine(opts);
    RunPoint point;
    point.bench = "atax";
    point.config = "V4";
    RunResult r = engine.runSegmented(point, 50000);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.partial);
    EXPECT_EQ(want, resultToJson(r).dump());
    unsetenv("ROCKCRESS_CKPT_DIR");
}

namespace
{

/** A small paused machine's framed snapshot, for format tests. */
std::vector<std::uint8_t>
sampleSnapshot()
{
    Sys s = makeSys({"atax", "V4"}, false);
    s.machine->run(0, 5000);
    return saveCheckpoint(*s.machine);
}

} // namespace

/**
 * Version-skew and corruption fixtures: every malformed input fails
 * loudly with a structured CheckpointError — wrong magic, a stale
 * format version, truncation at any point, a flipped payload byte
 * (checksum), and a snapshot from a different program or geometry.
 * None of them may reach the body deserializer.
 */
TEST(CheckpointFormat, MalformedInputsThrowStructuredErrors)
{
    std::vector<std::uint8_t> good = sampleSnapshot();

    {
        // Round-trip sanity: the unmodified frame restores.
        Sys s = makeSys({"atax", "V4"}, false);
        restoreCheckpoint(*s.machine, good);
        EXPECT_EQ(s.machine->cycles(), 5000u);
    }
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] = 'X';
        EXPECT_THROW(peekCheckpoint(bad), CheckpointError);
    }
    {
        // Version skew: a bumped format version is refused with a
        // diagnostic naming both versions, before any payload parse.
        std::vector<std::uint8_t> bad = good;
        bad[4] = static_cast<std::uint8_t>(kCheckpointVersion + 1);
        try {
            peekCheckpoint(bad);
            FAIL() << "stale version accepted";
        } catch (const CheckpointError &e) {
            EXPECT_NE(std::string(e.what()).find("version"),
                      std::string::npos)
                << e.what();
        }
    }
    {
        std::vector<std::uint8_t> bad(good.begin(),
                                      good.begin() + 16);
        EXPECT_THROW(peekCheckpoint(bad), CheckpointError);
    }
    {
        std::vector<std::uint8_t> bad = good;
        bad.resize(bad.size() - 1);
        EXPECT_THROW(peekCheckpoint(bad), CheckpointError);
    }
    {
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() / 2] ^= 0x40;
        EXPECT_THROW(peekCheckpoint(bad), CheckpointError);
    }
    {
        // Same frame, wrong software: the program digest check.
        Sys other = makeSys({"gemm", "V4_PCV"}, false);
        try {
            restoreCheckpoint(*other.machine, good);
            FAIL() << "foreign program accepted";
        } catch (const CheckpointError &e) {
            EXPECT_NE(std::string(e.what()).find("digest"),
                      std::string::npos)
                << e.what();
        }
    }
    {
        // Wrong geometry: refused before the digest comparison.
        BenchConfig cfg = configByName("V4");
        Machine small(machineFor(cfg, 4, 4));
        try {
            restoreCheckpoint(small, good);
            FAIL() << "foreign geometry accepted";
        } catch (const CheckpointError &e) {
            EXPECT_NE(std::string(e.what()).find("geometry"),
                      std::string::npos)
                << e.what();
        }
    }
}
