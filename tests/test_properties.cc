/**
 * @file
 * Property-style parameterized sweeps over the architectural
 * invariants: the frame queue under randomized arrival orders and
 * geometries, vector groups of every supported shape computing the
 * same result, and the DAE guard pacing arbitrary microthread
 * lengths without deadlock or corruption.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "kernels/common.hh"
#include "machine/machine.hh"
#include "sim/rng.hh"

using namespace rockcress;

// ---------------------------------------------------------------------------
// Frame queue invariants under random arrival order.
// ---------------------------------------------------------------------------

namespace
{

struct FrameGeom
{
    int frameWords;
    int numFrames;
    std::uint64_t seed;
};

std::ostream &
operator<<(std::ostream &os, const FrameGeom &g)
{
    return os << "f" << g.frameWords << "x" << g.numFrames << "s"
              << g.seed;
}

class FrameQueueProperty : public ::testing::TestWithParam<FrameGeom>
{
};

} // namespace

TEST_P(FrameQueueProperty, InOrderConsumptionUnderRandomArrival)
{
    const FrameGeom &g = GetParam();
    StatRegistry reg;
    Scratchpad sp(0, 4096, 5, StatScope(reg, "sp."));
    sp.configureFrames(g.frameWords, g.numFrames);
    Rng rng(g.seed);

    const int total_frames = 40;
    int filled = 0;    // Frames fully written.
    int freed = 0;
    std::vector<Addr> pending;  // Offsets not yet written.

    auto refill_pending = [&](int frame) {
        for (int w = 0; w < g.frameWords; ++w)
            pending.push_back(
                static_cast<Addr>((frame % g.numFrames) * g.frameWords +
                                  w) *
                4);
    };
    refill_pending(0);

    while (freed < total_frames) {
        bool can_fill = filled < total_frames &&
                        filled - freed < sp.numCounters();
        bool do_fill = can_fill && !pending.empty() &&
                       (freed == filled || rng.below(2) == 0);
        if (do_fill) {
            // Write a random outstanding word of the filling frame.
            size_t pick = rng.below(pending.size());
            Addr off = pending[pick];
            pending.erase(pending.begin() + static_cast<long>(pick));
            sp.networkWrite(off, static_cast<Word>(filled + 1));
            if (pending.empty()) {
                ++filled;
                if (filled < total_frames &&
                    filled - freed < sp.numCounters()) {
                    refill_pending(filled);
                }
            }
            continue;
        }
        // Consume: the head frame must be ready iff fully written.
        if (freed < filled) {
            ASSERT_TRUE(sp.frameReady());
            // Every word of the head frame holds its fill tag.
            Addr base = sp.headFrameByteOffset();
            for (int w = 0; w < g.frameWords; ++w) {
                EXPECT_EQ(sp.readWord(base + static_cast<Addr>(w) * 4),
                          static_cast<Word>(freed + 1));
            }
            sp.freeFrame();
            ++freed;
            if (pending.empty() && filled < total_frames)
                refill_pending(filled);
        } else {
            EXPECT_FALSE(sp.frameReady());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FrameQueueProperty,
    ::testing::Values(FrameGeom{4, 8, 1}, FrameGeom{4, 8, 2},
                      FrameGeom{16, 8, 3}, FrameGeom{1, 5, 4},
                      FrameGeom{7, 5, 5}, FrameGeom{32, 6, 6},
                      FrameGeom{3, 16, 7}, FrameGeom{8, 5, 8}),
    [](const ::testing::TestParamInfo<FrameGeom> &info) {
        return "f" + std::to_string(info.param.frameWords) + "x" +
               std::to_string(info.param.numFrames) + "s" +
               std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Vector groups of every shape produce identical results.
// ---------------------------------------------------------------------------

namespace
{

struct GroupShape
{
    int vlen;
    int chunkWords;
    int chunks;
};

class GroupShapeProperty : public ::testing::TestWithParam<GroupShape>
{
};

/** Stream-sum with one group of the given shape; returns lane sums. */
std::vector<Word>
runGroupSum(const GroupShape &shape)
{
    BenchConfig cfg;
    cfg.name = "prop";
    cfg.groupSize = shape.vlen;
    cfg.wideAccess = true;
    cfg.dae = true;
    MachineParams p;
    p.cols = 8;
    p.rows = 8;
    Machine m(p);

    int vlen = shape.vlen;
    int w = shape.chunkWords;
    int chunks = shape.chunks;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 1 << 20;
    out = AddrMap::globalBase + (1u << 20);
    for (int i = 0; i < w * vlen * chunks; ++i)
        m.mem().writeWord(in + 4 * static_cast<Addr>(i),
                          static_cast<Word>(i * 3 + 1));

    SpmdBuilder b("prop", cfg, p);
    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();
    Label fini = b.declareMicrothread();
    b.defineMicrothread(init, [&](Assembler &a) {
        a.li(x(11), 0);
        a.csrr(x(12), Csr::GroupTid);
    });
    b.defineMicrothread(body, [&](Assembler &a) {
        a.frameStart(x(13));
        for (int k = 0; k < w; ++k) {
            a.lw(x(10), x(13), 4 * k);
            a.add(x(11), x(11), x(10));
        }
        a.remem();
    });
    b.defineMicrothread(fini, [&](Assembler &a) {
        a.la(x(14), out);
        emitAffine(a, x(14), x(14), x(12), 4, x(15));
        a.sw(x(11), x(14), 0);
    });
    b.vectorPhase(w, 8, [&](Assembler &a) {
        a.vissue(init);
        a.la(x(9), in);
        DaeStreamSpec spec;
        spec.iters = chunks;
        spec.frameBytes = w * 4;
        spec.numFrames = 8;
        spec.bodyMt = body;
        spec.fill = [&](Assembler &aa, RegIdx off) {
            aa.vload(x(9), off, 0, w, VloadVariant::Group);
            aa.addi(x(9), x(9), w * 4 * vlen);
        };
        DaeStreamRegs regs;
        FrameRotator rot(a, regs.off, spec.frameBytes, spec.numFrames);
        rot.emitInit();
        emitScalarStream(a, spec, rot, regs);
        a.vissue(fini);
    });
    // Only the first group does work; others' scalars run the same
    // stream against the same data (idempotent writes).
    m.loadAll(std::make_shared<Program>(b.finish()));
    int tpg = vlen + 1;
    for (int g = 0; g < 64 / tpg; ++g) {
        GroupPlan plan;
        for (int i = 0; i < tpg; ++i)
            plan.chain.push_back(g * tpg + i);
        m.planGroup(plan);
    }
    m.run(50'000'000);
    return downloadWords(m.mem(), out, static_cast<size_t>(vlen));
}

} // namespace

TEST_P(GroupShapeProperty, LaneSumsMatchHost)
{
    const GroupShape &s = GetParam();
    std::vector<Word> got = runGroupSum(s);
    for (int lane = 0; lane < s.vlen; ++lane) {
        Word expect = 0;
        for (int c = 0; c < s.chunks; ++c)
            for (int k = 0; k < s.chunkWords; ++k)
                expect += static_cast<Word>(
                    (c * s.chunkWords * s.vlen + lane * s.chunkWords +
                     k) *
                        3 +
                    1);
        EXPECT_EQ(got[static_cast<size_t>(lane)], expect)
            << "lane " << lane;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GroupShapeProperty,
    ::testing::Values(GroupShape{8, 2, 6}, GroupShape{2, 4, 5},
                      GroupShape{3, 4, 9}, GroupShape{4, 4, 12},
                      GroupShape{7, 2, 8}, GroupShape{15, 1, 10}),
    [](const ::testing::TestParamInfo<GroupShape> &info) {
        return "v" + std::to_string(info.param.vlen) + "w" +
               std::to_string(info.param.chunkWords) + "c" +
               std::to_string(info.param.chunks);
    });

// ---------------------------------------------------------------------------
// The sync/guard machinery paces arbitrary microthread lengths.
// ---------------------------------------------------------------------------

namespace
{

class MicrothreadLengthProperty : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(MicrothreadLengthProperty, GuardPacesWithoutDeadlock)
{
    // Very short microthreads make the scalar core outrun the frame
    // counters; the hardware guard must throttle it (visible as DAE
    // stalls) and the result must still be exact.
    int work = GetParam();
    BenchConfig cfg;
    cfg.groupSize = 2;
    cfg.wideAccess = true;
    cfg.dae = true;
    MachineParams p;
    p.cols = 2;
    p.rows = 2;
    Machine m(p);

    const int chunks = 30;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + (1u << 16);
    for (int i = 0; i < 2 * chunks; ++i)
        m.mem().writeWord(in + 4 * static_cast<Addr>(i),
                          static_cast<Word>(i));

    SpmdBuilder b("pace", cfg, p);
    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();
    Label fini = b.declareMicrothread();
    b.defineMicrothread(init, [&](Assembler &a) {
        a.li(x(11), 0);
        a.csrr(x(12), Csr::GroupTid);
    });
    b.defineMicrothread(body, [&](Assembler &a) {
        a.frameStart(x(13));
        a.lw(x(10), x(13), 0);
        a.add(x(11), x(11), x(10));
        for (int i = 0; i < work; ++i)
            a.nop();   // Vary the microthread length.
        a.remem();
    });
    b.defineMicrothread(fini, [&](Assembler &a) {
        a.la(x(14), out);
        emitAffine(a, x(14), x(14), x(12), 4, x(15));
        a.sw(x(11), x(14), 0);
    });
    b.vectorPhase(1, 8, [&](Assembler &a) {
        a.vissue(init);
        a.la(x(9), in);
        DaeStreamSpec spec;
        spec.iters = chunks;
        spec.frameBytes = 4;
        spec.numFrames = 8;
        spec.bodyMt = body;
        spec.fill = [&](Assembler &aa, RegIdx off) {
            aa.vload(x(9), off, 0, 1, VloadVariant::Group);
            aa.addi(x(9), x(9), 8);
        };
        DaeStreamRegs regs;
        FrameRotator rot(a, regs.off, spec.frameBytes, spec.numFrames);
        rot.emitInit();
        emitScalarStream(a, spec, rot, regs);
        a.vissue(fini);
    });
    m.loadAll(std::make_shared<Program>(b.finish()));
    GroupPlan plan;
    plan.chain = {0, 1, 2};
    m.planGroup(plan);
    m.run(20'000'000);

    for (int lane = 0; lane < 2; ++lane) {
        Word expect = 0;
        for (int c = 0; c < chunks; ++c)
            expect += static_cast<Word>(2 * c + lane);
        EXPECT_EQ(m.mem().readWord(out + 4 * static_cast<Addr>(lane)),
                  expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, MicrothreadLengthProperty,
                         ::testing::Values(0, 1, 3, 8, 20, 50));
