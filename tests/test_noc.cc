/**
 * @file
 * Unit tests for the interconnects: mesh delivery/routing/bandwidth
 * and the inet's bounded queues, chain forwarding, and backpressure
 * (the property Section 4.2's synchronization bound relies on).
 */

#include <gtest/gtest.h>

#include "noc/inet.hh"
#include "noc/mesh.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

using namespace rockcress;

namespace
{

StatRegistry g_reg;

StatScope
scope(const std::string &p)
{
    return StatScope(g_reg, p + ".");
}

} // namespace

TEST(Mesh, DeliversToDestination)
{
    Mesh mesh(4, 4, 4, scope("m1"));
    int delivered = -1;
    mesh.setSink(15, [&](const Packet &p) { delivered = p.srcNode; });
    Packet p;
    p.srcNode = 0;
    p.dstNode = 15;
    mesh.send(p);
    Cycle t = 0;
    while (!mesh.idle() && t < 100)
        mesh.tick(t++);
    EXPECT_EQ(delivered, 0);
    // XY route: 3 east + 3 south + local, store-and-forward.
    EXPECT_GE(t, 6u);
}

TEST(Mesh, SelfDelivery)
{
    Mesh mesh(2, 2, 1, scope("m2"));
    int count = 0;
    mesh.setSink(0, [&](const Packet &) { ++count; });
    Packet p;
    p.srcNode = 0;
    p.dstNode = 0;
    mesh.send(p);
    Cycle t = 0;
    while (!mesh.idle() && t < 10)
        mesh.tick(t++);
    EXPECT_EQ(count, 1);
}

TEST(Mesh, WidePacketsOccupyLinksLonger)
{
    // A 4-word packet on a 1-word-wide link takes 4 cycles per hop.
    Mesh narrow(2, 1, 1, scope("m3"));
    Cycle t_narrow = 0;
    bool done = false;
    narrow.setSink(1, [&](const Packet &) { done = true; });
    Packet p;
    p.srcNode = 0;
    p.dstNode = 1;
    p.words = 4;
    narrow.send(p);
    while (!done && t_narrow < 100)
        narrow.tick(t_narrow++);

    Mesh wide(2, 1, 4, scope("m4"));
    Cycle t_wide = 0;
    done = false;
    wide.setSink(1, [&](const Packet &) { done = true; });
    wide.send(p);
    while (!done && t_wide < 100)
        wide.tick(t_wide++);

    EXPECT_GT(t_narrow, t_wide);
}

TEST(Mesh, RandomTrafficAllDelivered)
{
    Mesh mesh(8, 10, 4, scope("m5"));
    int delivered = 0;
    for (int n = 0; n < 80; ++n)
        mesh.setSink(n, [&](const Packet &) { ++delivered; });
    Rng rng(5);
    const int packets = 500;
    Cycle t = 0;
    for (int i = 0; i < packets; ++i) {
        Packet p;
        p.srcNode = static_cast<int>(rng.below(80));
        p.dstNode = static_cast<int>(rng.below(80));
        p.words = 1 + static_cast<int>(rng.below(4));
        mesh.send(p);
        mesh.tick(t++);
    }
    while (!mesh.idle() && t < 100000)
        mesh.tick(t++);
    EXPECT_EQ(delivered, packets);
    EXPECT_TRUE(mesh.idle());
}

TEST(Inet, ChainForwardingDelivers)
{
    Inet inet(4, 2, scope("i1"));
    inet.configureChain({0, 1, 2, 3});
    EXPECT_TRUE(inet.hasDownstream(0));
    EXPECT_TRUE(inet.hasDownstream(2));
    EXPECT_FALSE(inet.hasDownstream(3));

    InetMsg msg;
    msg.kind = InetMsg::Kind::Vissue;
    msg.pc = 42;
    ASSERT_TRUE(inet.canSend(0));
    inet.send(0, msg);
    inet.tick(0);
    ASSERT_TRUE(inet.hasMsg(1));
    EXPECT_EQ(inet.front(1).pc, 42);
    inet.pop(1);
    EXPECT_TRUE(inet.idle());
}

TEST(Inet, QueueCapacityBackpressures)
{
    Inet inet(2, 2, scope("i2"));
    inet.configureChain({0, 1});
    InetMsg msg;
    // Fill the downstream queue: capacity 2 plus 1 in flight.
    ASSERT_TRUE(inet.canSend(0));
    inet.send(0, msg);
    inet.tick(0);
    ASSERT_TRUE(inet.canSend(0));
    inet.send(0, msg);
    inet.tick(1);
    EXPECT_EQ(inet.queueSize(1), 2);
    EXPECT_FALSE(inet.canSend(0));  // Queue full: backpressure.
    inet.pop(1);
    EXPECT_TRUE(inet.canSend(0));
}

TEST(Inet, LinkBusyUntilTick)
{
    Inet inet(2, 2, scope("i3"));
    inet.configureChain({0, 1});
    InetMsg msg;
    inet.send(0, msg);
    // One register transfer per link per cycle.
    EXPECT_FALSE(inet.canSend(0));
    inet.tick(0);
    EXPECT_TRUE(inet.canSend(0));
}

TEST(Inet, ClearCoreTearsDownChain)
{
    Inet inet(3, 2, scope("i4"));
    inet.configureChain({0, 1, 2});
    InetMsg msg;
    inet.send(0, msg);
    inet.tick(0);
    inet.clearCore(0);
    inet.clearCore(1);
    inet.clearCore(2);
    EXPECT_FALSE(inet.hasDownstream(0));
    EXPECT_TRUE(inet.idle());
    // The chain can be re-formed (groups reform at the next kernel).
    inet.configureChain({0, 1, 2});
    EXPECT_TRUE(inet.canSend(0));
}

TEST(Inet, DoubleChainMembershipIsFatal)
{
    Inet inet(4, 2, scope("i5"));
    inet.configureChain({0, 1});
    EXPECT_THROW(inet.configureChain({0, 2}), FatalError);
}

TEST(Inet, BoundedQueueProperty)
{
    // The inet forms a bounded queue: with nobody consuming, a
    // producer can inject at most capacity + 1 messages (Section 4.2).
    Inet inet(2, 2, scope("i6"));
    inet.configureChain({0, 1});
    InetMsg msg;
    int sent = 0;
    Cycle t = 0;
    while (inet.canSend(0) && sent < 100) {
        inet.send(0, msg);
        ++sent;
        inet.tick(t++);
    }
    EXPECT_EQ(sent, 2);   // q_inet entries; link drains into them.
}
