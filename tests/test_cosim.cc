/**
 * @file
 * Differential co-simulation tests: the functional reference model
 * (src/ref) against the cycle-level machine. Covers the clean suite
 * (zero divergences across benchmarks and configurations), the
 * divergence-injection self-test (a corrupted writeback must be
 * caught with a structured report), determinism of RunResult with
 * and without the checker attached, batch-mode reference execution,
 * and a quick fuzz sweep.
 */

#include <gtest/gtest.h>

#include <memory>

#include "compiler/codegen.hh"
#include "harness/runner.hh"
#include "isa/assembler.hh"
#include "kernels/common.hh"
#include "machine/machine.hh"
#include "ref/cosim.hh"
#include "ref/fuzz.hh"

using namespace rockcress;

namespace
{

RunOverrides
cosimOverrides(bool strict)
{
    RunOverrides o;
    o.cosim = true;
    o.cosimStrictLoads = strict;
    return o;
}

struct Case
{
    std::string bench;
    std::string config;
};

std::ostream &
operator<<(std::ostream &os, const Case &c)
{
    return os << c.bench << "_" << c.config;
}

class CosimClean : public ::testing::TestWithParam<Case>
{
};

std::vector<Case>
cosimCases()
{
    std::vector<Case> cases;
    std::vector<std::string> benches = suiteNames();
    benches.push_back("bfs");
    for (const std::string &b : benches)
        for (const std::string &cfg : {"NV_PF", "V4"})
            cases.push_back({b, cfg});
    // PCV + long-line variants on a representative subset.
    for (const std::string &b : {"atax", "gemm"})
        for (const std::string &cfg : {"V4_PCV", "V16", "V16_LL_PCV"})
            cases.push_back({b, cfg});
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string n = info.param.bench + "_" + info.param.config;
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

// The tentpole property: every committed instruction of every
// benchmark matches the reference model, and the final memory images
// agree. bfs has benign load-store races (frontier updates), so only
// load addresses are checked there and values are adopted.
TEST_P(CosimClean, ZeroDivergences)
{
    const Case &c = GetParam();
    RunResult r =
        runManycore(c.bench, c.config, cosimOverrides(c.bench != "bfs"));
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Suite, CosimClean,
                         ::testing::ValuesIn(cosimCases()), caseName);

// The checker is a pure observer: a run with co-simulation enabled
// must produce the bit-identical RunResult of a plain run, and two
// plain runs must agree with each other (standing determinism
// regression).
TEST(CosimDeterminism, CheckerDoesNotPerturbTheRun)
{
    RunOverrides plain;
    RunResult a = runManycore("atax", "V4", plain);
    RunResult b = runManycore("atax", "V4", plain);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_TRUE(a == b) << "plain reruns diverged";

    RunResult c = runManycore("atax", "V4", cosimOverrides(true));
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_TRUE(a == c) << "cosim perturbed the run";
}

// Divergence-injection self-test: corrupt one writeback on one core
// through the debug-only fault hook and assert the checker fires
// with the right anchor and a structured report. This is the test
// that proves the whole apparatus can actually fail.
TEST(CosimInjection, CorruptedWritebackIsCaught)
{
    BenchConfig cfg = configByName("V4");
    MachineParams params = machineFor(cfg, 8, 8);
    Machine machine(params);
    auto bench = makeBenchmark("atax");
    auto prog = bench->prepare(machine, cfg);
    ASSERT_TRUE(prog != nullptr);

    CosimChecker checker(machine);
    machine.attachCosim(&checker);
    // Flip the low bit of core 5's 100th register writeback.
    machine.core(5).injectCosimFault(100, 0x1);

    bool caught = false;
    try {
        machine.run(100'000'000);
    } catch (const CosimDivergence &d) {
        caught = true;
        EXPECT_EQ(d.core, 5);
        EXPECT_GT(d.cycle, 0u);
        std::string report = d.what();
        EXPECT_NE(report.find("cosim divergence: core 5"),
                  std::string::npos)
            << report;
        EXPECT_NE(report.find("inst: "), std::string::npos) << report;
        EXPECT_NE(report.find(disassemble(d.inst)), std::string::npos)
            << report;
        EXPECT_NE(report.find("expected"), std::string::npos) << report;
    }
    EXPECT_TRUE(caught) << "injected fault was not detected";
    EXPECT_GT(checker.checked(), 0u);
}

// The same injection through the harness: the runner surfaces the
// divergence as a failed RunResult prefixed "cosim:". (The runner
// has no injection knob — this drives the machine directly and only
// checks the report formatting contract the runner relies on.)
TEST(CosimInjection, ReportCarriesExpectedVsActual)
{
    BenchConfig cfg = configByName("NV_PF");
    MachineParams params = machineFor(cfg, 4, 4);
    Machine machine(params);
    auto bench = makeBenchmark("atax");
    bench->prepare(machine, cfg);

    CosimChecker checker(machine);
    machine.attachCosim(&checker);
    machine.core(0).injectCosimFault(1, 0xdead0000);

    try {
        machine.run(100'000'000);
        FAIL() << "injected fault was not detected";
    } catch (const CosimDivergence &d) {
        EXPECT_EQ(d.core, 0);
        std::string report = d.what();
        // The structured report names both sides of the mismatch.
        EXPECT_NE(report.find("expected"), std::string::npos) << report;
        EXPECT_NE(report.find("actual"), std::string::npos) << report;
    }
}

// Batch mode on a hand-written MIMD program: every core stores a
// distinct word, and the reference memory image shows all of them.
TEST(RefBatch, SimpleMimdProgram)
{
    MachineParams params;
    params.cols = 2;
    params.rows = 2;
    Machine machine(params);

    Assembler as("mini");
    as.csrr(x(5), Csr::CoreId);
    as.li(x(6), 3);
    as.mul(x(6), x(5), x(6));
    as.addi(x(6), x(6), 7);   // value = 3 * coreid + 7
    as.la(x(7), AddrMap::globalBase);
    as.slli(x(8), x(5), 2);
    as.add(x(7), x(7), x(8));
    as.sw(x(6), x(7), 0);
    as.barrier();
    as.halt();
    auto prog = std::make_shared<const Program>(as.finish());
    machine.loadAll(prog);

    RefMachine ref(machine);
    auto br = ref.runBatch();
    ASSERT_TRUE(br.ok) << br.error;
    ASSERT_EQ(br.streams.size(), 4u);
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(ref.mem().readWord(AddrMap::globalBase +
                                     static_cast<Addr>(c) * 4),
                  static_cast<Word>(3 * c + 7));
        EXPECT_FALSE(br.streams[static_cast<size_t>(c)].empty());
    }

    // The timing machine agrees with the reference image.
    machine.run(1'000'000);
    std::string md = ref.finish(machine.mem());
    EXPECT_TRUE(md.empty()) << md;
}

// A quick fuzz sweep rides along in the unit suite; the 200-seed
// campaign runs as the separate ref_fuzz ctest.
TEST(Fuzz, TwentySeeds)
{
    FuzzOptions opts;
    opts.seeds = 20;
    opts.baseSeed = 7;
    FuzzSummary sum = runFuzz(opts);
    EXPECT_EQ(sum.failed, 0)
        << (sum.failures.empty() ? "" : sum.failures.front());
    EXPECT_GE(sum.geometries.size(), 3u);
}
