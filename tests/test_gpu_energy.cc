/**
 * @file
 * Unit tests for the GPU model (wavefront lockstep, predication
 * masking, coalescing-sensitive timing) and the first-order energy
 * model (per-event accounting, vector-mode fetch exemption).
 */

#include <gtest/gtest.h>

#include "energy/energy.hh"
#include "gpu/gpu.hh"
#include "harness/runner.hh"

using namespace rockcress;

TEST(Gpu, ElementwiseKernel)
{
    GpuMachine gpu;
    const int n = 256;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 4096;
    for (int i = 0; i < n; ++i)
        gpu.mem().writeFloat(in + 4 * static_cast<Addr>(i),
                             static_cast<float>(i));

    GpuProgram p;
    p.dispatches.push_back({n, [&](Assembler &as) {
        as.la(x(5), in);
        emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
        as.flw(f(0), x(6), 0);
        as.fadd(f(0), f(0), f(0));
        as.la(x(5), out);
        emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
        as.fsw(f(0), x(6), 0);
    }});
    Cycle cycles = gpu.run(p);
    EXPECT_GT(cycles, 0u);
    for (int i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(gpu.mem().readFloat(
                            out + 4 * static_cast<Addr>(i)),
                        2.0f * static_cast<float>(i));
}

TEST(Gpu, PredicationMasksLanes)
{
    GpuMachine gpu;
    Addr out = AddrMap::globalBase;
    const int n = 64;
    for (int i = 0; i < n; ++i)
        gpu.mem().writeWord(out + 4 * static_cast<Addr>(i), 7);

    GpuProgram p;
    p.dispatches.push_back({n, [&](Assembler &as) {
        // Only even lanes store.
        as.andi(x(5), gpuTidReg, 1);
        as.predEq(x(5), regZero);
        as.la(x(6), out);
        emitAffine(as, x(7), x(6), gpuTidReg, 4, x(8));
        as.li(x(9), 1);
        as.sw(x(9), x(7), 0);
        as.predEq(regZero, regZero);
    }});
    gpu.run(p);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(gpu.mem().readWord(out + 4 * static_cast<Addr>(i)),
                  i % 2 == 0 ? 1u : 7u);
}

TEST(Gpu, DivergentBranchIsFatal)
{
    GpuMachine gpu;
    GpuProgram p;
    p.dispatches.push_back({64, [&](Assembler &as) {
        Label skip = as.newLabel();
        as.andi(x(5), gpuTidReg, 1);
        as.beq(x(5), regZero, skip);   // Diverges across lanes.
        as.nop();
        as.bind(skip);
    }});
    EXPECT_THROW(gpu.run(p), FatalError);
}

TEST(Gpu, CoalescedBeatsScattered)
{
    // 64 lanes loading consecutive words (4 lines) must be faster
    // than 64 lanes striding one line apart (64 lines).
    auto run = [](int stride_words) {
        GpuMachine gpu;
        Addr in = AddrMap::globalBase;
        GpuProgram p;
        p.dispatches.push_back({64, [&](Assembler &as) {
            as.la(x(5), in);
            emitAffine(as, x(6), x(5), gpuTidReg, stride_words * 4,
                       x(7));
            for (int k = 0; k < 16; ++k) {
                as.flw(f(0), x(6), 0);
                emitAddImm(as, x(6), x(6), 64 * stride_words * 4,
                           x(7));
            }
        }});
        gpu.run(p);
        return gpu.cycles();
    };
    Cycle coalesced = run(1);
    Cycle scattered = run(16);
    EXPECT_LT(coalesced * 2, scattered);
}

TEST(Energy, CountsEvents)
{
    StatRegistry reg;
    *reg.counter("core0.icache.accesses") = 100;
    *reg.counter("core0.issued") = 100;
    *reg.counter("core0.n_int_alu") = 60;
    *reg.counter("core0.n_fp") = 20;
    *reg.counter("core0.spad.reads") = 10;
    *reg.counter("inet.sends") = 50;
    EnergyCosts costs;
    EnergyBreakdown e = computeEnergy(reg, 4, costs);
    EXPECT_DOUBLE_EQ(e.fetch,
                     100 * (costs.icacheAccess + costs.fetchPipe));
    EXPECT_DOUBLE_EQ(e.pipeline, 100 * costs.basePipe);
    EXPECT_DOUBLE_EQ(e.functional,
                     60 * costs.intAlu + 20 * costs.fpAlu);
    EXPECT_DOUBLE_EQ(e.spad, 10 * costs.spadAccess);
    EXPECT_DOUBLE_EQ(e.inet, 50 * costs.inetHop);
    EXPECT_GT(e.total(), 0.0);
}

TEST(Energy, SimdScalesWithWidth)
{
    StatRegistry reg;
    *reg.counter("core0.n_simd") = 10;
    EnergyBreakdown w4 = computeEnergy(reg, 4);
    EnergyBreakdown w1 = computeEnergy(reg, 1);
    EXPECT_DOUBLE_EQ(w4.functional, 4 * w1.functional);
}

TEST(Energy, VectorModeSavesFetchEnergy)
{
    // The same benchmark under V4 must spend less fetch+I-cache
    // energy than under NV_PF, because most frontends are off.
    RunResult pf = runManycore("gesummv", "NV_PF");
    RunResult v4 = runManycore("gesummv", "V4");
    ASSERT_TRUE(pf.ok) << pf.error;
    ASSERT_TRUE(v4.ok) << v4.error;
    EXPECT_LT(v4.energy.fetch, 0.6 * pf.energy.fetch);
    // And the inet component only exists in vector mode.
    EXPECT_GT(v4.energy.inet, 0.0);
}
