/**
 * @file
 * Unit tests for the GPU model (wavefront lockstep, predication
 * masking, coalescing-sensitive timing) and the first-order energy
 * model (per-event accounting, vector-mode fetch exemption).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "energy/energy.hh"
#include "gpu/gpu.hh"
#include "harness/runner.hh"

using namespace rockcress;

TEST(Gpu, ElementwiseKernel)
{
    GpuMachine gpu;
    const int n = 256;
    Addr in = AddrMap::globalBase;
    Addr out = AddrMap::globalBase + 4096;
    for (int i = 0; i < n; ++i)
        gpu.mem().writeFloat(in + 4 * static_cast<Addr>(i),
                             static_cast<float>(i));

    GpuProgram p;
    p.dispatches.push_back({n, [&](Assembler &as) {
        as.la(x(5), in);
        emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
        as.flw(f(0), x(6), 0);
        as.fadd(f(0), f(0), f(0));
        as.la(x(5), out);
        emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
        as.fsw(f(0), x(6), 0);
    }});
    Cycle cycles = gpu.run(p);
    EXPECT_GT(cycles, 0u);
    for (int i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(gpu.mem().readFloat(
                            out + 4 * static_cast<Addr>(i)),
                        2.0f * static_cast<float>(i));
}

TEST(Gpu, PredicationMasksLanes)
{
    GpuMachine gpu;
    Addr out = AddrMap::globalBase;
    const int n = 64;
    for (int i = 0; i < n; ++i)
        gpu.mem().writeWord(out + 4 * static_cast<Addr>(i), 7);

    GpuProgram p;
    p.dispatches.push_back({n, [&](Assembler &as) {
        // Only even lanes store.
        as.andi(x(5), gpuTidReg, 1);
        as.predEq(x(5), regZero);
        as.la(x(6), out);
        emitAffine(as, x(7), x(6), gpuTidReg, 4, x(8));
        as.li(x(9), 1);
        as.sw(x(9), x(7), 0);
        as.predEq(regZero, regZero);
    }});
    gpu.run(p);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(gpu.mem().readWord(out + 4 * static_cast<Addr>(i)),
                  i % 2 == 0 ? 1u : 7u);
}

TEST(Gpu, DivergentBranchIsFatal)
{
    GpuMachine gpu;
    GpuProgram p;
    p.dispatches.push_back({64, [&](Assembler &as) {
        Label skip = as.newLabel();
        as.andi(x(5), gpuTidReg, 1);
        as.beq(x(5), regZero, skip);   // Diverges across lanes.
        as.nop();
        as.bind(skip);
    }});
    EXPECT_THROW(gpu.run(p), FatalError);
}

TEST(Gpu, CoalescedBeatsScattered)
{
    // 64 lanes loading consecutive words (4 lines) must be faster
    // than 64 lanes striding one line apart (64 lines).
    auto run = [](int stride_words) {
        GpuMachine gpu;
        Addr in = AddrMap::globalBase;
        GpuProgram p;
        p.dispatches.push_back({64, [&](Assembler &as) {
            as.la(x(5), in);
            emitAffine(as, x(6), x(5), gpuTidReg, stride_words * 4,
                       x(7));
            for (int k = 0; k < 16; ++k) {
                as.flw(f(0), x(6), 0);
                emitAddImm(as, x(6), x(6), 64 * stride_words * 4,
                           x(7));
            }
        }});
        gpu.run(p);
        return gpu.cycles();
    };
    Cycle coalesced = run(1);
    Cycle scattered = run(16);
    EXPECT_LT(coalesced * 2, scattered);
}

TEST(Gpu, SweepCyclesAndTrafficMonotone)
{
    // Problem-size sweep over the elementwise kernel: a bigger
    // dispatch must never be cheaper. Instructions grow strictly
    // (more wavefronts execute the same lane program), cycles and
    // DRAM traffic grow monotonically (more work, more cold lines).
    std::vector<Cycle> cycles;
    std::vector<std::uint64_t> instructions;
    std::vector<std::uint64_t> dramBytes;
    for (int n : {64, 128, 256, 512}) {
        GpuMachine gpu;
        Addr in = AddrMap::globalBase;
        Addr out = AddrMap::globalBase + 64 * 1024;
        for (int i = 0; i < n; ++i)
            gpu.mem().writeFloat(in + 4 * static_cast<Addr>(i),
                                 static_cast<float>(i));
        GpuProgram p;
        p.dispatches.push_back({n, [&](Assembler &as) {
            as.la(x(5), in);
            emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
            as.flw(f(0), x(6), 0);
            as.fadd(f(0), f(0), f(0));
            as.la(x(5), out);
            emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
            as.fsw(f(0), x(6), 0);
        }});
        gpu.run(p);
        cycles.push_back(gpu.cycles());
        instructions.push_back(gpu.stats().get("gpu.instructions"));
        dramBytes.push_back(gpu.stats().get("gpu.dram.bytes"));
    }
    for (size_t i = 1; i < cycles.size(); ++i) {
        EXPECT_LT(instructions[i - 1], instructions[i]) << i;
        EXPECT_LE(cycles[i - 1], cycles[i]) << i;
        EXPECT_LE(dramBytes[i - 1], dramBytes[i]) << i;
    }
    // The sweep actually exercised the DRAM path (cold misses).
    EXPECT_GT(dramBytes.front(), 0u);
    EXPECT_LT(dramBytes.front(), dramBytes.back());
}

namespace
{

/** A registry with every counter class the energy model reads. */
void
fillEnergyCounters(StatRegistry &reg, std::uint64_t k)
{
    *reg.counter("core0.icache.accesses") = 1000 * k;
    *reg.counter("core0.issued") = 1200 * k;
    *reg.counter("core1.issued") = 800 * k;
    *reg.counter("core0.n_int_alu") = 500 * k;
    *reg.counter("core0.n_mul") = 100 * k;
    *reg.counter("core0.n_div") = 10 * k;
    *reg.counter("core0.n_fp") = 300 * k;
    *reg.counter("core0.n_simd") = 50 * k;
    *reg.counter("core0.n_load_global") = 200 * k;
    *reg.counter("core0.n_load_spad") = 100 * k;
    *reg.counter("core0.n_store_global") = 50 * k;
    *reg.counter("core0.n_store_spad") = 25 * k;
    *reg.counter("core0.n_store_remote") = 10 * k;
    *reg.counter("core0.n_vload") = 15 * k;
    *reg.counter("core0.spad.reads") = 60 * k;
    *reg.counter("core0.spad.writes") = 30 * k;
    *reg.counter("core0.spad.network_writes") = 10 * k;
    *reg.counter("llc0.wide_accesses") = 40 * k;
    *reg.counter("llc0.word_reads") = 20 * k;
    *reg.counter("llc0.word_writes") = 10 * k;
    *reg.counter("llc0.response_words") = 160 * k;
    *reg.counter("inet.sends") = 400 * k;
    *reg.counter("noc.word_hops") = 250 * k;
}

} // namespace

TEST(Energy, GoldenPinnedBreakdown)
{
    // Golden regression: every component of the default-cost model
    // pinned to its hand-computed value. A change to any cost
    // constant or to the counter-to-bucket wiring must show up here.
    StatRegistry reg;
    fillEnergyCounters(reg, 1);
    EnergyBreakdown e = computeEnergy(reg, 4);
    EXPECT_DOUBLE_EQ(e.fetch, 28000.0);    // 1000 * (20 + 8)
    EXPECT_DOUBLE_EQ(e.pipeline, 30000.0); // 2000 * 15
    // 500*6 + 100*24 + 10*120 + 300*12 + 50*10*4
    EXPECT_DOUBLE_EQ(e.functional, 12200.0);
    EXPECT_DOUBLE_EQ(e.memOps, 4000.0);    // 400 * 10
    EXPECT_DOUBLE_EQ(e.spad, 1200.0);      // 100 * 12
    // reqs 70 * 15 + words (160 + 10) * 25
    EXPECT_DOUBLE_EQ(e.llc, 5300.0);
    EXPECT_DOUBLE_EQ(e.inet, 600.0);       // 400 * 1.5
    EXPECT_DOUBLE_EQ(e.noc, 1000.0);       // 250 * 4
    EXPECT_DOUBLE_EQ(e.total(), 82300.0);
}

TEST(Energy, LinearInCounters)
{
    // The model is a fixed linear form over the counters: scaling
    // every counter by k scales every component by exactly k (exact
    // in doubles for these integer products).
    StatRegistry base;
    fillEnergyCounters(base, 1);
    EnergyBreakdown e1 = computeEnergy(base, 4);
    for (std::uint64_t k : {2u, 4u, 8u}) {
        StatRegistry reg;
        fillEnergyCounters(reg, k);
        EnergyBreakdown ek = computeEnergy(reg, 4);
        double kd = static_cast<double>(k);
        EXPECT_DOUBLE_EQ(ek.fetch, kd * e1.fetch);
        EXPECT_DOUBLE_EQ(ek.pipeline, kd * e1.pipeline);
        EXPECT_DOUBLE_EQ(ek.functional, kd * e1.functional);
        EXPECT_DOUBLE_EQ(ek.memOps, kd * e1.memOps);
        EXPECT_DOUBLE_EQ(ek.spad, kd * e1.spad);
        EXPECT_DOUBLE_EQ(ek.llc, kd * e1.llc);
        EXPECT_DOUBLE_EQ(ek.inet, kd * e1.inet);
        EXPECT_DOUBLE_EQ(ek.noc, kd * e1.noc);
        EXPECT_DOUBLE_EQ(ek.total(), kd * e1.total());
    }
}

TEST(Energy, MonotoneInCyclesAndTraffic)
{
    // Holding traffic fixed and adding issued work must raise energy;
    // holding issued work fixed and adding traffic (LLC words, NoC
    // hops, DRAM-feeding requests) must raise energy. Together:
    // energy is monotone in cycles and in traffic, never the inverse.
    StatRegistry base;
    fillEnergyCounters(base, 2);
    double e0 = computeEnergy(base, 4).total();

    StatRegistry busier;
    fillEnergyCounters(busier, 2);
    *busier.counter("core0.issued") += 500;
    *busier.counter("core0.icache.accesses") += 500;
    *busier.counter("core0.n_int_alu") += 500;
    double eBusy = computeEnergy(busier, 4).total();
    EXPECT_GT(eBusy, e0);

    StatRegistry heavier;
    fillEnergyCounters(heavier, 2);
    *heavier.counter("llc0.word_reads") += 300;
    *heavier.counter("llc0.response_words") += 300;
    *heavier.counter("noc.word_hops") += 1200;
    *heavier.counter("inet.sends") += 100;
    double eHeavy = computeEnergy(heavier, 4).total();
    EXPECT_GT(eHeavy, e0);

    // And both at once dominates either alone.
    StatRegistry both;
    fillEnergyCounters(both, 2);
    *both.counter("core0.issued") += 500;
    *both.counter("core0.icache.accesses") += 500;
    *both.counter("core0.n_int_alu") += 500;
    *both.counter("llc0.word_reads") += 300;
    *both.counter("llc0.response_words") += 300;
    *both.counter("noc.word_hops") += 1200;
    *both.counter("inet.sends") += 100;
    double eBoth = computeEnergy(both, 4).total();
    EXPECT_GT(eBoth, eBusy);
    EXPECT_GT(eBoth, eHeavy);
}

TEST(Energy, CountsEvents)
{
    StatRegistry reg;
    *reg.counter("core0.icache.accesses") = 100;
    *reg.counter("core0.issued") = 100;
    *reg.counter("core0.n_int_alu") = 60;
    *reg.counter("core0.n_fp") = 20;
    *reg.counter("core0.spad.reads") = 10;
    *reg.counter("inet.sends") = 50;
    EnergyCosts costs;
    EnergyBreakdown e = computeEnergy(reg, 4, costs);
    EXPECT_DOUBLE_EQ(e.fetch,
                     100 * (costs.icacheAccess + costs.fetchPipe));
    EXPECT_DOUBLE_EQ(e.pipeline, 100 * costs.basePipe);
    EXPECT_DOUBLE_EQ(e.functional,
                     60 * costs.intAlu + 20 * costs.fpAlu);
    EXPECT_DOUBLE_EQ(e.spad, 10 * costs.spadAccess);
    EXPECT_DOUBLE_EQ(e.inet, 50 * costs.inetHop);
    EXPECT_GT(e.total(), 0.0);
}

TEST(Energy, SimdScalesWithWidth)
{
    StatRegistry reg;
    *reg.counter("core0.n_simd") = 10;
    EnergyBreakdown w4 = computeEnergy(reg, 4);
    EnergyBreakdown w1 = computeEnergy(reg, 1);
    EXPECT_DOUBLE_EQ(w4.functional, 4 * w1.functional);
}

TEST(Energy, VectorModeSavesFetchEnergy)
{
    // The same benchmark under V4 must spend less fetch+I-cache
    // energy than under NV_PF, because most frontends are off.
    RunResult pf = runManycore("gesummv", "NV_PF");
    RunResult v4 = runManycore("gesummv", "V4");
    ASSERT_TRUE(pf.ok) << pf.error;
    ASSERT_TRUE(v4.ok) << v4.error;
    EXPECT_LT(v4.energy.fetch, 0.6 * pf.energy.fetch);
    // And the inet component only exists in vector mode.
    EXPECT_GT(v4.energy.inet, 0.0);
}
