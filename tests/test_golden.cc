/**
 * @file
 * Golden stats snapshots: per-benchmark counters (cycles, vload
 * bytes, NoC word-hops, energy, issued instructions) for small
 * configurations are locked into tests/golden/*.json through the
 * src/exp serializer. Any simulator change that moves a counter
 * shows up as a diff here; regenerate intentionally with
 * scripts/update_golden.sh (ROCKCRESS_UPDATE_GOLDEN=1).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/json.hh"
#include "exp/result_io.hh"
#include "harness/runner.hh"

using namespace rockcress;

#ifndef ROCKCRESS_GOLDEN_DIR
#error "ROCKCRESS_GOLDEN_DIR must be defined by the build"
#endif

namespace
{

struct Case
{
    std::string bench;
    std::string config;
};

std::ostream &
operator<<(std::ostream &os, const Case &c)
{
    return os << c.bench << "_" << c.config;
}

/** Small, fast tier-1 points covering MIMD, vector, and PCV modes. */
std::vector<Case>
goldenCases()
{
    return {
        {"atax", "NV_PF"},
        {"atax", "V4"},
        {"gemm", "V4_PCV"},
        {"mvt", "V16"},
        {"bfs", "NV_PF"},
    };
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return info.param.bench + "_" + info.param.config;
}

std::string
goldenPath(const Case &c)
{
    return std::string(ROCKCRESS_GOLDEN_DIR) + "/" + c.bench + "_" +
           c.config + ".json";
}

class GoldenStats : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(GoldenStats, CountersMatchSnapshot)
{
    const Case &c = GetParam();
    RunResult r = runManycore(c.bench, c.config);
    ASSERT_TRUE(r.ok) << r.error;

    std::string path = goldenPath(c);
    if (std::getenv("ROCKCRESS_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << resultToJson(r).dump() << "\n";
        SUCCEED() << "updated " << path;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing; run scripts/update_golden.sh";
    std::ostringstream buf;
    buf << in.rdbuf();
    Json j;
    ASSERT_TRUE(Json::parse(buf.str(), j)) << "unparsable " << path;
    RunResult want;
    ASSERT_TRUE(resultFromJson(j, want))
        << path << " is stale (schema changed); run "
        << "scripts/update_golden.sh";

    // The locked counters. Energy is a pure function of the counters,
    // so exact double equality is the right check.
    EXPECT_EQ(r.cycles, want.cycles);
    EXPECT_EQ(r.vloadBytes, want.vloadBytes);
    EXPECT_EQ(r.nocWordHops, want.nocWordHops);
    EXPECT_EQ(r.issued, want.issued);
    EXPECT_EQ(r.icacheAccesses, want.icacheAccesses);
    EXPECT_EQ(r.energyPj, want.energyPj);
    EXPECT_EQ(r.llcMissRate, want.llcMissRate);
}

INSTANTIATE_TEST_SUITE_P(Suite, GoldenStats,
                         ::testing::ValuesIn(goldenCases()), caseName);
