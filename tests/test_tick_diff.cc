/**
 * @file
 * Tick-kernel differential over the golden suite: every tier-1
 * (bench, config) point is run under the fast-tick scheduler and
 * under the naive tick-everything oracle, with co-simulation and
 * full event tracing on, and the complete serialized run artifact —
 * every RunResult field through the src/exp serializer — plus the
 * exported Perfetto document must be byte-identical. This is the
 * "invisible by construction" contract of the quiescence-aware
 * kernel: no counter, no trace span, no cycle may move.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/result_io.hh"
#include "harness/runner.hh"
#include "trace/perfetto.hh"

using namespace rockcress;

namespace
{

struct Case
{
    std::string bench;
    std::string config;
};

std::vector<Case>
diffCases()
{
    return {
        {"atax", "NV_PF"},
        {"atax", "V4"},
        {"gemm", "V4_PCV"},
        {"mvt", "V16"},
        {"bfs", "NV_PF"},
    };
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return info.param.bench + "_" + info.param.config;
}

class TickDiff : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(TickDiff, ArtifactsAreByteIdentical)
{
    const Case &c = GetParam();

    RunOverrides ov;
    ov.cosim = true;
    // bfs races benignly on the frontier; only load addresses are
    // checkable there (see RunOverrides::cosimStrictLoads).
    ov.cosimStrictLoads = c.bench != "bfs";
    ov.trace = true;

    ov.naiveTick = false;
    TraceCapture fast_cap;
    RunResult fast = runManycore(c.bench, c.config, ov, &fast_cap);
    ASSERT_TRUE(fast.ok) << "fast-tick: " << fast.error;

    ov.naiveTick = true;
    TraceCapture naive_cap;
    RunResult naive = runManycore(c.bench, c.config, ov, &naive_cap);
    ASSERT_TRUE(naive.ok) << "naive-tick: " << naive.error;

    // The full serialized artifact: cycles, CPI stacks, energy,
    // per-hop maps, trace summary — every field, byte for byte.
    EXPECT_EQ(resultToJson(fast).dump(), resultToJson(naive).dump());

    // And the exported trace document (events carry cycle stamps, so
    // this pins every span boundary, not just the totals).
    ASSERT_TRUE(fast_cap.sink != nullptr);
    ASSERT_TRUE(naive_cap.sink != nullptr);
    EXPECT_EQ(perfettoJson(*fast_cap.sink, "tickdiff"),
              perfettoJson(*naive_cap.sink, "tickdiff"));
}

INSTANTIATE_TEST_SUITE_P(Suite, TickDiff,
                         ::testing::ValuesIn(diffCases()), caseName);
