/**
 * @file
 * rc_perf: wall-clock performance harness for the simulation kernel.
 *
 * Times a fixed benchmark basket under the fast-tick scheduler and
 * under the naive tick-everything oracle, over N repetitions each,
 * and reports the best-rep simulated-cycles-per-host-second (Mcps)
 * for both kernels plus the per-pair and basket-median speedups.
 * Best-of-reps is the standard wall-clock methodology: host
 * interference only ever inflates a rep's time, so the minimum is
 * the least-noisy estimate of each kernel's true cost. Only the time
 * spent inside Machine::run() counts: program assembly, machine
 * construction, and result checking are identical under both kernels
 * and would just dilute the comparison. Writes the results as JSON
 * (default BENCH_perf.json) so CI can archive the numbers and the
 * perf-regression gate can compare them.
 *
 * Baskets:
 *   perf    The 15-bench NV column — the config with the longest
 *           quiescent stretches (no prefetch, frequent full-tile
 *           memory stalls), where the scheduler's win is largest and
 *           robustly above host noise. The CI regression gate runs
 *           here.
 *   golden  The five mixed-profile golden pairs — a quick local
 *           sanity basket spanning high- and low-skip behaviour.
 *   fig10   The full bench x {NV, NV_PF, V4, V16} matrix — the
 *           complete wall-clock picture across the evaluation space.
 *
 *   rc_perf [--basket perf|golden|fig10] [--reps N] [--out FILE]
 *           [--min-speedup X]
 *
 * With --min-speedup, exits nonzero when the basket's median speedup
 * falls below X — the wall-clock regression gate for the fast-tick
 * kernel (simulated cycles are asserted identical between kernels on
 * every rep, so the gate cannot pass by changing simulated time).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "harness/runner.hh"
#include "kernels/common.hh"

using namespace rockcress;

namespace
{

struct PairSpec
{
    std::string bench;
    std::string config;
};

std::vector<PairSpec>
basketPairs(const std::string &basket)
{
    if (basket == "golden") {
        return {{"atax", "NV_PF"},
                {"atax", "V4"},
                {"gemm", "V4_PCV"},
                {"mvt", "V16"},
                {"bfs", "NV_PF"}};
    }
    if (basket == "perf") {
        std::vector<PairSpec> pairs;
        for (const std::string &bench : suiteNames())
            pairs.push_back({bench, "NV"});
        return pairs;
    }
    if (basket == "fig10") {
        std::vector<PairSpec> pairs;
        for (const std::string &bench : suiteNames()) {
            for (const char *cfg : {"NV", "NV_PF", "V4", "V16"})
                pairs.push_back({bench, cfg});
        }
        return pairs;
    }
    std::fprintf(stderr, "rc_perf: unknown basket '%s'\n",
                 basket.c_str());
    std::exit(2);
}

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/** One timed simulation; exits on a failed run. */
double
timedRun(const PairSpec &p, bool naive, Cycle &cycles_out,
         double *skip_frac = nullptr)
{
    RunOverrides ov;
    ov.naiveTick = naive;
    RunResult r = runManycore(p.bench, p.config, ov);
    if (!r.ok) {
        std::fprintf(stderr, "rc_perf: %s/%s (%s) failed: %s\n",
                     p.bench.c_str(), p.config.c_str(),
                     naive ? "naive" : "fast", r.error.c_str());
        std::exit(1);
    }
    cycles_out = r.cycles;
    if (skip_frac) {
        std::uint64_t total = r.diag.simTicks + r.diag.simSkips;
        *skip_frac =
            total ? static_cast<double>(r.diag.simSkips) /
                        static_cast<double>(total)
                  : 0.0;
    }
    // The kernel's own wall-clock: program assembly, machine
    // construction, and result checking are identical for both
    // kernels and are not what this harness regresses.
    return r.diag.runSeconds;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string basket = "golden";
    std::string out_path = "BENCH_perf.json";
    int reps = 3;
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--basket") && i + 1 < argc) {
            basket = argv[++i];
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--min-speedup") &&
                   i + 1 < argc) {
            min_speedup = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--basket perf|golden|fig10] [--reps N]"
                         " [--out FILE] [--min-speedup X]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    std::vector<PairSpec> pairs = basketPairs(basket);
    Json jpairs = Json::array();
    std::vector<double> speedups;
    double total_fast = 0, total_naive = 0;
    std::uint64_t total_cycles = 0;

    for (const PairSpec &p : pairs) {
        std::vector<double> fast_s, naive_s;
        Cycle cycles = 0;
        double skip_frac = 0;
        for (int rep = 0; rep < reps; ++rep) {
            Cycle cf = 0, cn = 0;
            fast_s.push_back(timedRun(p, false, cf, &skip_frac));
            naive_s.push_back(timedRun(p, true, cn));
            if (cf != cn) {
                std::fprintf(stderr,
                             "rc_perf: %s/%s cycle divergence: fast "
                             "%llu vs naive %llu\n",
                             p.bench.c_str(), p.config.c_str(),
                             static_cast<unsigned long long>(cf),
                             static_cast<unsigned long long>(cn));
                return 1;
            }
            cycles = cf;
        }
        double fm = *std::min_element(fast_s.begin(), fast_s.end());
        double nm = *std::min_element(naive_s.begin(), naive_s.end());
        double fast_mcps = static_cast<double>(cycles) / fm / 1e6;
        double naive_mcps = static_cast<double>(cycles) / nm / 1e6;
        double speedup = nm / fm;
        speedups.push_back(speedup);
        total_fast += fm;
        total_naive += nm;
        total_cycles += cycles;

        Json jp = Json::object();
        jp["bench"] = Json(p.bench);
        jp["config"] = Json(p.config);
        jp["cycles"] = Json(static_cast<std::uint64_t>(cycles));
        jp["fast_sec_best"] = Json(fm);
        jp["naive_sec_best"] = Json(nm);
        jp["fast_mcps"] = Json(fast_mcps);
        jp["naive_mcps"] = Json(naive_mcps);
        jp["speedup"] = Json(speedup);
        jp["skip_frac"] = Json(skip_frac);
        jpairs.push(std::move(jp));

        std::printf("%-10s %-8s %12llu cyc  fast %7.2f Mcps  naive "
                    "%7.2f Mcps  skip %4.1f%%  speedup %5.2fx\n",
                    p.bench.c_str(), p.config.c_str(),
                    static_cast<unsigned long long>(cycles),
                    fast_mcps, naive_mcps, 100.0 * skip_frac,
                    speedup);
        std::fflush(stdout);
    }

    double median_speedup = medianOf(speedups);
    Json j = Json::object();
    j["basket"] = Json(basket);
    j["reps"] = Json(static_cast<std::uint64_t>(reps));
    j["pairs"] = std::move(jpairs);
    j["median_speedup"] = Json(median_speedup);
    j["total_fast_sec"] = Json(total_fast);
    j["total_naive_sec"] = Json(total_naive);
    j["total_cycles"] = Json(total_cycles);
    j["aggregate_fast_mcps"] =
        Json(static_cast<double>(total_cycles) / total_fast / 1e6);
    j["aggregate_naive_mcps"] =
        Json(static_cast<double>(total_cycles) / total_naive / 1e6);

    std::ofstream out(out_path, std::ios::trunc);
    if (!out.good()) {
        std::fprintf(stderr, "rc_perf: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    out << j.dump() << "\n";

    std::printf("rc_perf: basket %s, median speedup %.2fx, aggregate "
                "%.2f -> %.2f Mcps, wrote %s\n",
                basket.c_str(), median_speedup,
                static_cast<double>(total_cycles) / total_naive / 1e6,
                static_cast<double>(total_cycles) / total_fast / 1e6,
                out_path.c_str());

    if (min_speedup > 0 && median_speedup < min_speedup) {
        std::fprintf(stderr,
                     "rc_perf: median speedup %.2fx below the %.2fx "
                     "gate\n",
                     median_speedup, min_speedup);
        return 1;
    }
    return 0;
}
