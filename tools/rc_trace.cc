/**
 * @file
 * rc_trace: capture, export, and summarize event traces.
 *
 *   rc_trace export --out DIR [PAIR]...   Perfetto JSON per pair
 *   rc_trace summarize [PAIR]...          CPI stack + NoC heatmap
 *   rc_trace diff PAIR PAIR               CPI stacks side by side
 *
 * A PAIR is "bench/config" (e.g. atax/V4); with no pairs, the golden
 * suite (tests/golden/) is traced. Every run is executed with
 * tracing on and full coverage, and the trace-rebuilt CPI stack is
 * cross-checked exactly against the flat statistics counters — a
 * mismatch fails the pair. The exit status is the number of failed
 * pairs (clamped to 125).
 *
 * Pairs are simulated in parallel on a thread pool sized by
 * ROCKCRESS_JOBS, but all output is buffered per pair and emitted in
 * pair order after the pool drains, so -j1 and -jN are
 * byte-identical.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/engine.hh"
#include "exp/json.hh"
#include "exp/pool.hh"
#include "harness/runner.hh"
#include "trace/aggregate.hh"
#include "trace/perfetto.hh"

namespace
{

using namespace rockcress;

/** The five pairs pinned by the golden snapshots (tests/golden/). */
const char *const kGoldenPairs[] = {
    "atax/NV_PF", "atax/V4", "gemm/V4_PCV", "mvt/V16", "bfs/NV_PF",
};

struct PairJob
{
    std::string bench;
    std::string config;
    RunResult result;
    TraceCapture cap;
    std::string text;    ///< Buffered stdout, emitted in pair order.
    bool failed = false;
};

const char *kDirNames[] = {"N", "S", "E", "W", "local"};

std::string
percent(std::uint64_t part, std::uint64_t whole)
{
    char buf[32];
    double p = whole == 0 ? 0.0
                          : 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole);
    std::snprintf(buf, sizeof buf, "%5.1f%%", p);
    return buf;
}

void
appendCpiStack(std::ostringstream &os, const CpiStack &cpi)
{
    struct Row
    {
        const char *name;
        std::uint64_t v;
    };
    const Row rows[] = {
        {"busy", cpi.busy},
        {"stall_frame", cpi.frame},
        {"stall_inet_input", cpi.inetInput},
        {"stall_backpressure", cpi.backpressure},
        {"stall_other", cpi.other},
        {"stall_dae", cpi.dae},
    };
    std::uint64_t total = cpi.total();
    for (const Row &r : rows) {
        char line[96];
        std::snprintf(line, sizeof line, "    %-20s %12llu  %s\n",
                      r.name, static_cast<unsigned long long>(r.v),
                      percent(r.v, total).c_str());
        os << line;
    }
    os << "    total attributed cycles: " << total << "\n";
}

/**
 * The link-utilization heatmap: per router, the busy cycles of its
 * five output links summed, laid out on the mesh grid (row-major,
 * `cols` wide) and normalized to the capture window.
 */
void
appendNocHeatmap(std::ostringstream &os, const TraceAggregate &agg,
                 int cols)
{
    if (agg.links.empty()) {
        os << "  noc: no link activity captured\n";
        return;
    }
    int max_node = 0;
    std::map<int, std::uint64_t> perNode;
    for (const LinkUse &l : agg.links) {
        perNode[l.node] += l.busyCycles;
        if (l.node > max_node)
            max_node = l.node;
    }
    Cycle window = agg.lastCycle > agg.firstCycle
                       ? agg.lastCycle - agg.firstCycle
                       : 1;
    int rows = max_node / cols + 1;
    os << "  noc link occupancy per router (% of " << window
       << "-cycle window, links summed):\n";
    for (int y = 0; y < rows; ++y) {
        os << "   ";
        for (int x = 0; x < cols; ++x) {
            auto it = perNode.find(y * cols + x);
            std::uint64_t busy = it == perNode.end() ? 0 : it->second;
            char cell[16];
            std::snprintf(cell, sizeof cell, " %6.1f",
                          100.0 * static_cast<double>(busy) /
                              static_cast<double>(window));
            os << cell;
        }
        os << "\n";
    }
    // The hottest individual links, for attribution.
    std::vector<LinkUse> top = agg.links;
    std::stable_sort(top.begin(), top.end(),
                     [](const LinkUse &a, const LinkUse &b) {
                         return a.busyCycles > b.busyCycles;
                     });
    size_t n = std::min<size_t>(5, top.size());
    os << "  hottest links:";
    for (size_t i = 0; i < n; ++i) {
        const LinkUse &l = top[i];
        os << " r" << l.node << "." << kDirNames[l.dir] << "="
           << l.busyCycles << "c/" << l.words << "w";
    }
    os << "\n";
}

/** Run one pair with tracing on; false when it cannot be reported. */
bool
runTraced(PairJob &job, Cycle start_cycle, std::uint64_t max_events)
{
    RunOverrides o;
    o.trace = true;
    o.traceStartCycle = start_cycle;
    o.traceMaxEvents = max_events;
    job.result = runManycore(job.bench, job.config, o, &job.cap);
    if (!job.result.ok) {
        job.failed = true;
        job.text = "rc_trace: " + job.bench + "/" + job.config +
                   " failed: " + job.result.error + "\n";
        return false;
    }
    if (job.cap.sink == nullptr) {
        job.failed = true;
        job.text = "rc_trace: " + job.bench + "/" + job.config +
                   " returned no capture\n";
        return false;
    }
    return true;
}

void
summarizeOne(PairJob &job, Cycle start_cycle, std::uint64_t max_events)
{
    if (!runTraced(job, start_cycle, max_events))
        return;
    const TraceSink &sink = *job.cap.sink;
    TraceAggregate agg = aggregateTrace(sink);
    std::ostringstream os;
    os << "== " << job.bench << "/" << job.config << " ==\n";
    os << "  " << job.result.cycles << " cycles, " << agg.events
       << " events (" << agg.dropped << " dropped), window ["
       << agg.firstCycle << ", " << agg.lastCycle << "]"
       << (agg.fullCoverage ? ", full coverage" : "") << "\n";
    os << "  events: " << sink.recorded(TraceKind::CoreSpan)
       << " core spans, " << sink.recorded(TraceKind::Frame)
       << " frame, " << sink.recorded(TraceKind::NocLink)
       << " noc link, " << sink.recorded(TraceKind::InetHop)
       << " inet hop, " << sink.recorded(TraceKind::LlcReq) << "+"
       << sink.recorded(TraceKind::LlcResp) << " llc req+resp\n";
    os << "  cpi stack (all cores, from trace):\n";
    appendCpiStack(os, agg.cpi);
    os << "  cross-check vs flat counters: "
       << (agg.fullCoverage
               ? (job.result.trace.cpiCrossChecked ? "OK" : "FAIL")
               : "skipped (partial coverage)")
       << "\n";
    if (agg.fullCoverage && !job.result.trace.cpiCrossChecked)
        job.failed = true;
    std::uint64_t frames = 0;
    for (const auto &[core, n] : agg.framesPerCore)
        frames += n;
    if (frames > 0)
        os << "  frames retired: " << frames << " across "
           << agg.framesPerCore.size() << " cores\n";
    appendNocHeatmap(os, agg, RunOverrides{}.cols);
    job.text = os.str();
}

void
exportOne(PairJob &job, const std::string &out_dir, Cycle start_cycle,
          std::uint64_t max_events)
{
    if (!runTraced(job, start_cycle, max_events))
        return;
    std::string doc =
        perfettoJson(*job.cap.sink, job.bench + "/" + job.config);
    Json parsed;
    if (!Json::parse(doc, parsed)) {
        job.failed = true;
        job.text = "rc_trace: " + job.bench + "/" + job.config +
                   " produced invalid JSON\n";
        return;
    }
    std::string path =
        out_dir + "/" + job.bench + "_" + job.config + ".trace.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(doc.data(), 1, doc.size(), f) != doc.size()) {
        if (f != nullptr)
            std::fclose(f);
        job.failed = true;
        job.text = "rc_trace: cannot write " + path + "\n";
        return;
    }
    std::fclose(f);
    std::ostringstream os;
    os << "exported " << path << " ("
       << job.cap.sink->recordedTotal() << " events, "
       << doc.size() << " bytes)\n";
    job.text = os.str();
}

int
usage()
{
    std::printf(
        "usage: rc_trace <command> [options] [BENCH/CONFIG]...\n"
        "  export --out DIR   write Perfetto trace JSON per pair\n"
        "  summarize          CPI stack, cross-check, NoC heatmap\n"
        "  diff A/B C/D       compare two pairs' CPI stacks\n"
        "options: --start CYCLE (trace window start)\n"
        "         --max N (events per category before dropping)\n"
        "default pairs: the golden suite\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd != "export" && cmd != "summarize" && cmd != "diff")
        return usage();

    std::string outDir;
    Cycle startCycle = 0;
    std::uint64_t maxEvents = TraceOptions{}.maxEventsPerCategory;
    std::vector<PairJob> jobs;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outDir = argv[++i];
        } else if (arg == "--start" && i + 1 < argc) {
            startCycle = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--max" && i + 1 < argc) {
            maxEvents = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            size_t slash = arg.find('/');
            if (slash == std::string::npos) {
                std::fprintf(stderr,
                             "rc_trace: '%s' is not BENCH/CONFIG\n",
                             arg.c_str());
                return 2;
            }
            PairJob j;
            j.bench = arg.substr(0, slash);
            j.config = arg.substr(slash + 1);
            jobs.push_back(std::move(j));
        }
    }
    if (cmd == "export" && outDir.empty()) {
        std::fprintf(stderr, "rc_trace: export needs --out DIR\n");
        return 2;
    }
    if (cmd == "diff" && jobs.size() != 2) {
        std::fprintf(stderr, "rc_trace: diff needs exactly two "
                             "BENCH/CONFIG pairs\n");
        return 2;
    }
    if (jobs.empty()) {
        for (const char *pair : kGoldenPairs) {
            PairJob j;
            std::string s = pair;
            size_t slash = s.find('/');
            j.bench = s.substr(0, slash);
            j.config = s.substr(slash + 1);
            jobs.push_back(std::move(j));
        }
    }

    // Fan out, but buffer each pair's output and emit it in pair
    // order after the pool drains: -j1 and -jN byte-identical.
    {
        ThreadPool pool(jobsFromEnv());
        for (PairJob &job : jobs) {
            pool.submit([&job, &cmd, &outDir, startCycle, maxEvents] {
                if (cmd == "export")
                    exportOne(job, outDir, startCycle, maxEvents);
                else
                    summarizeOne(job, startCycle, maxEvents);
            });
        }
        pool.wait();
    }

    if (cmd == "diff") {
        PairJob &a = jobs[0], &b = jobs[1];
        if (!a.failed && !b.failed) {
            TraceAggregate aa = aggregateTrace(*a.cap.sink);
            TraceAggregate bb = aggregateTrace(*b.cap.sink);
            std::ostringstream os;
            os << "cpi stack, " << a.bench << "/" << a.config
               << " vs " << b.bench << "/" << b.config << ":\n";
            const TraceCause causes[] = {
                TraceCause::Busy,         TraceCause::Frame,
                TraceCause::InetInput,    TraceCause::Backpressure,
                TraceCause::Other,        TraceCause::Dae,
            };
            for (TraceCause c : causes) {
                std::uint64_t va = aa.cpi.of(c), vb = bb.cpi.of(c);
                char line[128];
                std::snprintf(
                    line, sizeof line,
                    "  %-20s %12llu %12llu  %+lld\n",
                    traceCauseName(c),
                    static_cast<unsigned long long>(va),
                    static_cast<unsigned long long>(vb),
                    static_cast<long long>(vb) -
                        static_cast<long long>(va));
                os << line;
            }
            os << "  cycles: " << a.result.cycles << " vs "
               << b.result.cycles << "\n";
            std::printf("%s", os.str().c_str());
        }
        for (PairJob &job : jobs)
            if (job.failed)
                std::fputs(job.text.c_str(), stderr);
        return (a.failed ? 1 : 0) + (b.failed ? 1 : 0);
    }

    int failures = 0;
    for (PairJob &job : jobs) {
        if (job.failed) {
            ++failures;
            std::fputs(job.text.c_str(), stderr);
        } else {
            std::fputs(job.text.c_str(), stdout);
        }
    }
    return failures > 125 ? 125 : failures;
}
