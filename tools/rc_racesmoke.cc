/**
 * @file
 * rc_racesmoke: end-to-end race-detection smoke.
 *
 *  1. A hand-built racy fixture — a vector-group DAE stream whose
 *     fill duplicates one slice and drops another, so per-frame
 *     arrival totals stay balanced and the program completes — must
 *     be rejected by the static race pass with a two-sided witness
 *     AND flagged by the frame sanitizer when run with verification
 *     disabled.
 *  2. The golden benchmark x configuration suite must run clean with
 *     the sanitizer enabled: zero violations, results ok.
 *
 * Exits 0 when both legs hold.
 */

#include <cstdio>
#include <memory>

#include "analysis/verifier.hh"
#include "compiler/codegen.hh"
#include "harness/runner.hh"
#include "machine/machine.hh"

namespace
{

using namespace rockcress;

constexpr int kF = 4;         ///< Frame words.
constexpr int kNumFrames = 8;
constexpr int kIters = 3;

std::shared_ptr<const Program>
buildRacyFixture(const BenchConfig &cfg, const MachineParams &params)
{
    SpmdBuilder b("race_fixture", cfg, params);
    Label body = b.declareMicrothread();
    b.defineMicrothread(body, [](Assembler &as) {
        as.frameStart(x(13));
        as.flw(f(1), x(13), 0);
        as.remem();
    });
    int gs = cfg.groupSize;
    b.vectorPhase(kF, kNumFrames, [=](Assembler &as) {
        as.la(x(5), AddrMap::globalBase);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, kF * 4, kNumFrames);
        rot.emitInit();
        DaeStreamSpec spec;
        spec.iters = kIters;
        spec.frameBytes = kF * 4;
        spec.numFrames = kNumFrames;
        spec.bodyMt = body;
        spec.fill = [=](Assembler &a, RegIdx off) {
            // Two 2-word slices per 4-word frame: slice 0 emitted
            // twice (the race), slice 1 dropped (the balance).
            a.vload(x(5), off, 0, 2, VloadVariant::Group);
            a.vload(x(5), off, 0, 2, VloadVariant::Group);
            a.addi(x(5), x(5), kF * gs * 4);
        };
        emitScalarStream(as, spec, rot, regs);
    });
    return std::make_shared<const Program>(b.finish());
}

int
checkRacyFixture()
{
    BenchConfig cfg = configByName("V4");
    MachineParams params = machineFor(cfg, 4, 2);

    Machine machine(params);
    auto prog = buildRacyFixture(cfg, params);

    // Static leg: Check::Race with a two-sided witness.
    VerifyReport rep = verifyProgram(*prog, cfg, params);
    if (!rep.has(Check::Race)) {
        std::fprintf(stderr,
                     "race_smoke: static pass MISSED the seeded racy "
                     "fixture\n%s",
                     rep.text(*prog).c_str());
        return 1;
    }
    bool witnessed = false;
    for (const RaceFinding &f : rep.races) {
        if (!f.producerPath.empty() && !f.consumerPath.empty() &&
            f.byteLo < f.byteHi) {
            witnessed = true;
            std::fprintf(stderr, "race_smoke: static: %s\n",
                         f.message.c_str());
            break;
        }
    }
    if (!witnessed) {
        std::fprintf(stderr,
                     "race_smoke: race finding lacks a two-sided "
                     "witness\n");
        return 1;
    }

    // Dynamic leg: run it anyway (verification off) under the
    // sanitizer; the duplicated fills must be flagged.
    machine.loadAll(prog);
    GroupPlan plan;
    for (int i = 0; i < cfg.groupSize + 1; ++i)
        plan.chain.push_back(i);
    machine.planGroup(plan);
    for (CoreId c = 0; c < machine.numCores(); ++c)
        machine.spadOf(c).enableSanitizer();
    machine.run(20'000'000);
    std::uint64_t violations = 0;
    std::string first;
    for (CoreId c = 0; c < machine.numCores(); ++c) {
        const Scratchpad &sp = machine.spadOf(c);
        violations += sp.sanViolationCount();
        if (first.empty() && !sp.sanRecords().empty())
            first = sp.sanRecords().front().str();
    }
    if (violations == 0) {
        std::fprintf(stderr,
                     "race_smoke: sanitizer MISSED the seeded racy "
                     "fixture\n");
        return 1;
    }
    std::fprintf(stderr,
                 "race_smoke: sanitizer flagged %llu violation(s); "
                 "first: %s\n",
                 static_cast<unsigned long long>(violations),
                 first.c_str());
    return 0;
}

int
checkCleanSuite()
{
    const struct
    {
        const char *bench;
        const char *config;
    } kPairs[] = {
        {"atax", "NV_PF"}, {"atax", "V4"},  {"gemm", "V4_PCV"},
        {"mvt", "V16"},    {"bfs", "NV_PF"},
    };
    RunOverrides ov;
    ov.spSan = true;
    int rc = 0;
    for (const auto &p : kPairs) {
        RunResult r = runManycore(p.bench, p.config, ov);
        if (!r.ok || r.spSanViolations != 0) {
            std::fprintf(stderr,
                         "race_smoke: %s/%s with sanitizer: ok=%d "
                         "violations=%llu\n%s\n",
                         p.bench, p.config, r.ok ? 1 : 0,
                         static_cast<unsigned long long>(
                             r.spSanViolations),
                         r.error.c_str());
            rc = 1;
        } else {
            std::fprintf(stderr, "race_smoke: %s/%s clean under "
                                 "sanitizer\n",
                         p.bench, p.config);
        }
    }
    return rc;
}

} // namespace

int
main()
{
    int rc = checkRacyFixture();
    rc |= checkCleanSuite();
    if (rc == 0)
        std::fprintf(stderr, "rc_racesmoke: PASS\n");
    return rc;
}
