/**
 * @file
 * Command-line front end for the static analysis framework: runs the
 * program verifier (analysis/verifier.hh) and the performance-bound
 * lint (analysis/perfbound.hh) over benchmark x configuration pairs
 * and emits one machine-readable JSON report per pair.
 *
 * Usage:
 *   rc_analyze [--out DIR] [--config NAME]... [BENCH]...
 *
 * With no benchmarks named, the full suite (Table 2 plus bfs) is
 * analyzed; with no --config, every Table 3 configuration. Reports go
 * to DIR/<bench>_<config>.json when --out is given, otherwise a
 * single JSON array is printed to stdout. The exit status is the
 * number of (bench, config) pairs with at least one diagnostic
 * (clamped to 125), so "no findings" is exit 0 — the property
 * scripts/analyze_all.sh gates on.
 *
 * Pairs are analyzed in parallel on a thread pool sized by
 * ROCKCRESS_JOBS (default: hardware concurrency), but every byte of
 * output — stderr finding lines, per-pair files, the stdout array —
 * is emitted in pair order after the pool drains, so -j1 and -j8
 * runs are byte-identical.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analysis/perfbound.hh"
#include "analysis/verifier.hh"
#include "exp/engine.hh"
#include "exp/json.hh"
#include "exp/pool.hh"
#include "kernels/common.hh"
#include "machine/machine.hh"

namespace
{

using namespace rockcress;

Json
diagnosticToJson(const Diagnostic &d, const Program &p)
{
    Json j = Json::object();
    j["check"] = Json(checkName(d.check));
    j["pc"] = Json(static_cast<double>(d.pc));
    j["routine"] = Json(d.routine);
    j["message"] = Json(d.message);
    Json path = Json::array();
    for (int pc : d.path)
        path.push(Json(static_cast<std::uint64_t>(pc)));
    j["path"] = std::move(path);
    j["render"] = Json(d.render(p));
    return j;
}

Json
perfToJson(const PerfBoundReport &r)
{
    Json j = Json::object();
    j["ipcBound"] = Json(r.ipcBound);
    j["runToBranch"] = Json(static_cast<double>(r.runToBranch));
    j["runToEnd"] = Json(static_cast<double>(r.runToEnd));
    j["vectorCeiling"] = Json(r.vectorCeiling);
    j["unboundedRun"] = Json(r.unboundedRun);

    Json blocks = Json::array();
    for (const BlockBound &b : r.blocks) {
        Json o = Json::object();
        o["first"] = Json(static_cast<std::uint64_t>(b.first));
        o["last"] = Json(static_cast<std::uint64_t>(b.last));
        o["count"] = Json(static_cast<std::uint64_t>(b.count));
        o["endsInBranch"] = Json(b.endsInBranch);
        o["intOps"] = Json(static_cast<std::uint64_t>(b.intOps));
        o["fpOps"] = Json(static_cast<std::uint64_t>(b.fpOps));
        o["memOps"] = Json(static_cast<std::uint64_t>(b.memOps));
        o["simdOps"] = Json(static_cast<std::uint64_t>(b.simdOps));
        o["vloadWords"] =
            Json(static_cast<std::uint64_t>(b.vloadWords));
        o["minCycles"] = Json(b.minCycles);
        blocks.push(std::move(o));
    }
    j["blocks"] = std::move(blocks);

    Json loops = Json::array();
    for (const LoopBound &l : r.loops) {
        Json o = Json::object();
        o["head"] = Json(static_cast<std::uint64_t>(l.head));
        o["len"] = Json(static_cast<std::uint64_t>(l.len));
        o["branches"] = Json(static_cast<std::uint64_t>(l.branches));
        o["vloadWords"] =
            Json(static_cast<std::uint64_t>(l.vloadWords));
        o["ipcFrontend"] = Json(l.ipcFrontend);
        o["ipcRoofline"] = Json(l.ipcRoofline);
        loops.push(std::move(o));
    }
    j["loops"] = std::move(loops);
    return j;
}

Json
raceToJson(const RaceFinding &f)
{
    Json j = Json::object();
    j["producerPc"] = Json(static_cast<std::uint64_t>(f.producerPc));
    j["consumerPc"] = Json(static_cast<std::uint64_t>(f.consumerPc));
    j["byteLo"] = Json(static_cast<std::uint64_t>(f.byteLo));
    j["byteHi"] = Json(static_cast<std::uint64_t>(f.byteHi));
    j["absoluteRange"] = Json(f.absoluteRange);
    j["slotFirst"] = Json(static_cast<std::uint64_t>(f.slotFirst));
    j["slotLast"] = Json(static_cast<std::uint64_t>(f.slotLast));
    j["routine"] = Json(f.routine);
    j["message"] = Json(f.message);
    Json pp = Json::array();
    for (int pc : f.producerPath)
        pp.push(Json(static_cast<std::uint64_t>(pc)));
    j["producerPath"] = std::move(pp);
    Json cp = Json::array();
    for (int pc : f.consumerPath)
        cp.push(Json(static_cast<std::uint64_t>(pc)));
    j["consumerPath"] = std::move(cp);
    return j;
}

Json
equivFindingToJson(const EquivFinding &f)
{
    Json j = Json::object();
    j["stream"] = Json(static_cast<std::uint64_t>(f.streamIdx));
    j["region"] = Json(f.region);
    j["kind"] = Json(f.kind);
    j["pc"] = Json(static_cast<double>(f.pc));
    j["refPc"] = Json(static_cast<double>(f.refPc));
    j["lane"] = Json(static_cast<double>(f.lane));
    j["routine"] = Json(f.routine);
    j["message"] = Json(f.message);
    return j;
}

/** Analyze one pair; returns the report and whether it was clean. */
Json
analyzeOne(const std::string &bench, const std::string &config,
           bool &clean)
{
    Json j = Json::object();
    j["bench"] = Json(bench);
    j["config"] = Json(config);

    BenchConfig cfg = configByName(config);
    MachineParams params = machineFor(cfg);
    Machine machine(params);
    auto benchmark = makeBenchmark(bench);
    std::shared_ptr<const Program> program;
    try {
        program = benchmark->prepare(machine, cfg);
    } catch (const std::exception &e) {
        clean = false;
        j["ok"] = Json(false);
        j["error"] = Json(std::string("prepare: ") + e.what());
        return j;
    }

    VerifyReport report = verifyProgram(*program, cfg, params);
    Json diags = Json::array();
    for (const Diagnostic &d : report.diagnostics)
        diags.push(diagnosticToJson(d, *program));
    j["diagnostics"] = std::move(diags);
    Json races = Json::array();
    for (const RaceFinding &f : report.races)
        races.push(raceToJson(f));
    j["races"] = std::move(races);
    Json equiv = Json::object();
    equiv["streams"] =
        Json(static_cast<std::uint64_t>(report.equivStreams));
    equiv["proved"] =
        Json(static_cast<std::uint64_t>(report.equivProved));
    Json findings = Json::array();
    for (const EquivFinding &f : report.equiv)
        findings.push(equivFindingToJson(f));
    equiv["findings"] = std::move(findings);
    j["equiv"] = std::move(equiv);
    j["ok"] = Json(report.ok());
    j["perf"] = perfToJson(computePerfBound(*program, cfg, params));
    clean = report.ok();
    return j;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
              text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rockcress;

    std::string outDir;
    std::vector<std::string> configs;
    std::vector<std::string> benches;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outDir = argv[++i];
        } else if (arg == "--config" && i + 1 < argc) {
            configs.push_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: rc_analyze [--out DIR] "
                        "[--config NAME]... [BENCH]...\n");
            return 0;
        } else {
            benches.push_back(arg);
        }
    }
    if (benches.empty()) {
        benches = suiteNames();
        benches.push_back("bfs");
    }
    if (configs.empty())
        configs = allConfigNames();

    struct Pair
    {
        std::string bench;
        std::string config;
        Json report;
        bool clean = true;
    };
    std::vector<Pair> pairs;
    for (const std::string &bench : benches)
        for (const std::string &config : configs)
            pairs.push_back({bench, config, Json(), true});

    // Fan the pairs out, but buffer every result in its slot and emit
    // all output in pair order afterwards: -j1 and -jN byte-identical.
    {
        ThreadPool pool(jobsFromEnv());
        for (Pair &pr : pairs)
            pool.submit([&pr] {
                pr.report = analyzeOne(pr.bench, pr.config, pr.clean);
            });
        pool.wait();
    }

    int failures = 0;
    Json all = Json::array();
    for (Pair &pr : pairs) {
        if (!pr.clean) {
            ++failures;
            std::fprintf(stderr, "rc_analyze: findings in %s/%s\n",
                         pr.bench.c_str(), pr.config.c_str());
        }
        if (outDir.empty()) {
            all.push(std::move(pr.report));
        } else {
            std::string path =
                outDir + "/" + pr.bench + "_" + pr.config + ".json";
            if (!writeFile(path, pr.report.dump() + "\n")) {
                std::fprintf(stderr, "rc_analyze: cannot write %s\n",
                             path.c_str());
                return 126;
            }
        }
    }
    if (outDir.empty())
        std::printf("%s\n", all.dump().c_str());
    return failures > 125 ? 125 : failures;
}
