/**
 * @file
 * Checkpoint-driven divergence bisection. Runs a (bench, config)
 * point twice — a clean baseline and a perturbed twin (by default a
 * timed register-corruption fixture, Core::injectTimedFault) — and
 * localizes the first cycle window where their machine states
 * diverge, using snapshots (sim/checkpoint.hh) so refinement only
 * ever re-simulates window-sized spans: after the two initial
 * full-length runs, no probe costs more than one coarse segment.
 *
 * The search compares canonical state digests: each probe snapshot is
 * restored into a scratch machine whose timed-fault fixture is
 * cleared, so an armed-but-not-yet-fired fixture on the perturbed
 * side does not register as divergence — only architectural state
 * does. The final report replays the localized window on both sides
 * with commit-stream recording and event tracing attached, and dumps
 * the first differing commit plus the surrounding streams.
 *
 * Exit codes: 0 divergence localized, 2 no divergence, 1 error.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "kernels/common.hh"
#include "machine/machine.hh"
#include "sim/checkpoint.hh"
#include "trace/trace.hh"

using namespace rockcress;

namespace
{

struct Options
{
    std::string bench = "atax";
    std::string config = "V4";
    bool naive = false;
    Cycle faultCycle = 0;   ///< 0: no fixture (compare clean twins).
    CoreId faultCore = 0;
    RegIdx faultReg = 1;
    Word faultMask = 1;
    Cycle window = 1024;    ///< Stop refining at this width.
    int coarse = 32;        ///< Initial lockstep segments.
    std::string report = "bisect_report.txt";
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: rc_bisect [--bench B] [--config C] [--naive]\n"
        "                 [--fault-cycle N] [--fault-core I]\n"
        "                 [--fault-reg R] [--fault-mask M]\n"
        "                 [--window W] [--coarse K] [--report PATH]\n"
        "Localizes the first divergent cycle window between a clean\n"
        "run and one with a timed register corruption at cycle N\n"
        "(N = 0 compares two clean runs). Exits 0 when a divergence\n"
        "is localized, 2 when the runs are identical.\n");
}

/** One prepared side: the machine plus what keeps it alive. */
struct Side
{
    std::unique_ptr<Benchmark> benchmark;
    std::unique_ptr<Machine> machine;
};

Side
makeSide(const Options &opt)
{
    Side s;
    BenchConfig cfg = configByName(opt.config);
    MachineParams params = machineFor(cfg);
    s.machine = std::make_unique<Machine>(params);
    s.benchmark = makeBenchmark(opt.bench);
    s.benchmark->prepare(*s.machine, cfg);
    s.machine->setNaiveTick(opt.naive);
    return s;
}

/**
 * Digest of architectural state only: restore the snapshot into a
 * scratch machine, clear the fault fixture, digest that.
 */
std::uint64_t
canonicalDigest(const Options &opt, Machine &m)
{
    std::vector<std::uint8_t> bytes = saveCheckpoint(m);
    Side scratch = makeSide(opt);
    restoreCheckpoint(*scratch.machine, bytes);
    for (CoreId c = 0; c < scratch.machine->numCores(); ++c)
        scratch.machine->core(c).clearTimedFault();
    return machineStateDigest(*scratch.machine);
}

/** Commit-stream recorder for the final window replay. */
struct CommitRecorder : CommitSink
{
    struct Rec
    {
        CoreId core;
        Cycle now;
        CommitRecord rec;
    };
    std::vector<Rec> recs;

    void
    onCommit(CoreId core, Cycle now, const CommitRecord &rec) override
    {
        recs.push_back({core, now, rec});
    }
};

std::string
renderRec(const CommitRecorder::Rec &r)
{
    std::ostringstream os;
    os << "cycle " << r.now << " core " << r.core << " pc " << r.rec.pc
       << "  " << disassemble(r.rec.inst);
    if (r.rec.wrote) {
        os << "  -> r" << static_cast<int>(r.rec.rd) << " =";
        for (Word w : r.rec.value)
            os << " 0x" << std::hex << w << std::dec;
    }
    if (r.rec.mem) {
        os << (r.rec.isStore ? "  store" : "  load") << " @0x"
           << std::hex << r.rec.addr << std::dec;
        for (Word w : r.rec.data)
            os << " 0x" << std::hex << w << std::dec;
    }
    return os.str();
}

bool
parseU64(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s, &end, 0);
    return errno == 0 && end != s && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        std::uint64_t v = 0;
        if (a == "--bench") {
            opt.bench = next();
        } else if (a == "--config") {
            opt.config = next();
        } else if (a == "--naive") {
            opt.naive = true;
        } else if (a == "--fault-cycle" && parseU64(next(), v)) {
            opt.faultCycle = v;
        } else if (a == "--fault-core" && parseU64(next(), v)) {
            opt.faultCore = static_cast<CoreId>(v);
        } else if (a == "--fault-reg" && parseU64(next(), v)) {
            opt.faultReg = static_cast<RegIdx>(v);
        } else if (a == "--fault-mask" && parseU64(next(), v)) {
            opt.faultMask = v;
        } else if (a == "--window" && parseU64(next(), v)) {
            opt.window = v;
        } else if (a == "--coarse" && parseU64(next(), v)) {
            opt.coarse = static_cast<int>(v);
        } else if (a == "--report") {
            opt.report = next();
        } else {
            usage();
            return 1;
        }
    }
    if (opt.window == 0 || opt.coarse <= 0) {
        usage();
        return 1;
    }

    try {
        // The one full-length run: the clean baseline, for the total
        // cycle count that scales the coarse segments.
        Side probe = makeSide(opt);
        Cycle total = probe.machine->run();
        std::printf("[bisect] baseline %s/%s: %" PRIu64 " cycles\n",
                    opt.bench.c_str(), opt.config.c_str(), total);

        Cycle step = total / static_cast<Cycle>(opt.coarse);
        if (step == 0)
            step = 1;

        // Lockstep coarse sweep: advance both sides segment by
        // segment, keeping only the last boundary where the canonical
        // digests agreed (its snapshots seed the refinement).
        Side a = makeSide(opt);
        Side b = makeSide(opt);
        if (opt.faultCycle != 0) {
            b.machine->core(opt.faultCore)
                .injectTimedFault(opt.faultCycle, opt.faultReg,
                                  opt.faultMask);
        }
        Cycle lo = 0;
        std::vector<std::uint8_t> aLo = saveCheckpoint(*a.machine);
        std::vector<std::uint8_t> bLo = saveCheckpoint(*b.machine);
        Cycle hi = 0;
        bool diverged = false;
        for (Cycle at = step;; at += step) {
            a.machine->run(0, at);
            b.machine->run(0, at);
            std::uint64_t da = canonicalDigest(opt, *a.machine);
            std::uint64_t db = canonicalDigest(opt, *b.machine);
            if (da != db) {
                hi = at;
                diverged = true;
                break;
            }
            lo = at;
            aLo = saveCheckpoint(*a.machine);
            bLo = saveCheckpoint(*b.machine);
            if (a.machine->finished() && b.machine->finished())
                break;
        }
        if (!diverged) {
            std::printf("[bisect] no divergence: runs are "
                        "state-identical through halt\n");
            return 2;
        }
        std::printf("[bisect] coarse: diverged in (%" PRIu64
                    ", %" PRIu64 "]\n",
                    lo, hi);

        // Refine: restore both sides at lo, probe the midpoint. Every
        // probe costs at most (hi - lo) simulated cycles.
        while (hi - lo > opt.window) {
            Cycle mid = lo + (hi - lo) / 2;
            Side ra = makeSide(opt);
            Side rb = makeSide(opt);
            restoreCheckpoint(*ra.machine, aLo);
            restoreCheckpoint(*rb.machine, bLo);
            ra.machine->run(0, mid);
            rb.machine->run(0, mid);
            std::uint64_t da = canonicalDigest(opt, *ra.machine);
            std::uint64_t db = canonicalDigest(opt, *rb.machine);
            if (da != db) {
                hi = mid;
            } else {
                lo = mid;
                aLo = saveCheckpoint(*ra.machine);
                bLo = saveCheckpoint(*rb.machine);
            }
        }
        std::printf("[bisect] localized: first divergence in (%" PRIu64
                    ", %" PRIu64 "] (width %" PRIu64 ")\n",
                    lo, hi, hi - lo);

        // Replay the window with commit streams and tracing attached.
        Side ra = makeSide(opt);
        Side rb = makeSide(opt);
        restoreCheckpoint(*ra.machine, aLo);
        restoreCheckpoint(*rb.machine, bLo);
        CommitRecorder ca, cb;
        ra.machine->attachCosim(&ca);
        rb.machine->attachCosim(&cb);
        TraceSink ta{TraceOptions{}}, tb{TraceOptions{}};
        ra.machine->attachTrace(&ta);
        rb.machine->attachTrace(&tb);
        ra.machine->run(0, hi);
        rb.machine->run(0, hi);
        ra.machine->flushTrace();
        rb.machine->flushTrace();

        std::ofstream rep(opt.report);
        rep << "rc_bisect report\n"
            << "bench " << opt.bench << " config " << opt.config
            << (opt.naive ? " (naive kernel)\n" : " (fast kernel)\n")
            << "baseline cycles " << total << "\n";
        if (opt.faultCycle != 0) {
            rep << "fixture: core " << opt.faultCore << " reg "
                << static_cast<int>(opt.faultReg) << " mask 0x"
                << std::hex << opt.faultMask << std::dec
                << " at cycle " << opt.faultCycle << "\n";
        }
        rep << "divergence window (" << lo << ", " << hi
            << "] width " << hi - lo << "\n\n";
        rep << "trace events in window: baseline "
            << ta.recordedTotal() << ", perturbed "
            << tb.recordedTotal() << "\n\n";

        std::size_t n =
            std::min(ca.recs.size(), cb.recs.size());
        std::size_t firstDiff = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (renderRec(ca.recs[i]) != renderRec(cb.recs[i])) {
                firstDiff = i;
                break;
            }
        }
        if (firstDiff == n && ca.recs.size() == cb.recs.size()) {
            rep << "commit streams identical in the window (state "
                   "diverges without a commit-visible effect here; "
                   "see the digests)\n";
        } else {
            rep << "first differing commit at index " << firstDiff
                << " of " << ca.recs.size() << " / " << cb.recs.size()
                << "\n\n";
            std::size_t from =
                firstDiff >= 4 ? firstDiff - 4 : 0;
            std::size_t to = std::min(firstDiff + 8,
                                      std::max(ca.recs.size(),
                                               cb.recs.size()));
            for (std::size_t i = from; i < to; ++i) {
                rep << (i == firstDiff ? ">" : " ") << " baseline  ";
                if (i < ca.recs.size())
                    rep << renderRec(ca.recs[i]);
                else
                    rep << "(end of stream)";
                rep << "\n";
                rep << (i == firstDiff ? ">" : " ") << " perturbed ";
                if (i < cb.recs.size())
                    rep << renderRec(cb.recs[i]);
                else
                    rep << "(end of stream)";
                rep << "\n";
            }
        }
        rep.close();
        std::printf("[bisect] report written to %s\n",
                    opt.report.c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rc_bisect: %s\n", e.what());
        return 1;
    }
}
