/**
 * @file
 * rc_equivsmoke: end-to-end translation-validation smoke.
 *
 *  1. A hand-built vector-group DAE fixture is compiled twice: once
 *     clean (the validator must prove every stream against the
 *     vectorization manifest) and once per seeded miscompile kind —
 *     a shifted fill lane, a skewed stream stride, an off-by-one trip
 *     count, a flipped predicate polarity — injected AFTER the
 *     manifest snapshot. Each mutant must be rejected by the static
 *     equivalence pass with the expected finding kind AND diverge
 *     from the clean program on the batch functional reference.
 *  2. A golden benchmark x configuration sample must prove clean
 *     through the RunOverrides::equiv plumbing: every stream proved,
 *     zero witnesses — the zero-false-positive gate.
 *
 * Exits 0 when both legs hold.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/verifier.hh"
#include "compiler/codegen.hh"
#include "harness/runner.hh"
#include "machine/machine.hh"
#include "ref/cosim.hh"

namespace
{

using namespace rockcress;

constexpr int kF = 4;          ///< Frame words.
constexpr int kNumFrames = 8;
constexpr int kIters = 3;      ///< Two steady fills: strides visible.
constexpr int kW = 2;          ///< Words per core per vload slice.
constexpr int kS = 3;          ///< Output words per worker per iter.

/**
 * The fixture mirrors the equivalence-fuzzer's shaped programs in
 * miniature: the body loads frame word 0 into a probe register the
 * rest of the body never overwrites and stores it raw (any change to
 * the frame contents is architecturally visible), plus one predicated
 * store guarded by the only pred pair in the program (the
 * PredPolarity target, never constant-foldable since x15 is set once
 * in init).
 */
std::shared_ptr<const Program>
buildFixture(const BenchConfig &cfg, const MachineParams &params,
             const MiscompileSpec *sab)
{
    SpmdBuilder b("equiv_fixture", cfg, params);
    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();

    int gs = cfg.groupSize;
    int tpg = gs + 1;

    b.defineMicrothread(init, [=](Assembler &as) {
        as.csrr(x(5), Csr::GroupTid);
        as.csrr(x(6), Csr::CoreId);
        as.li(x(7), tpg);
        as.div(x(6), x(6), x(7));          // group id
        as.li(x(7), gs);
        as.mul(x(6), x(6), x(7));
        as.add(x(5), x(5), x(6));          // worker id
        as.li(x(7), kIters * kS * 4);
        as.mul(x(7), x(5), x(7));
        as.la(x(9), AddrMap::globalBase + 4096);
        as.add(x(9), x(9), x(7));          // per-worker output cursor
        as.li(x(15), 1);                   // probe predicate, taken
    });

    b.defineMicrothread(body, [](Assembler &as) {
        as.frameStart(x(13));
        as.flw(f(1), x(13), 0);            // the probe word
        as.flw(f(2), x(13), 4);
        as.fmul(f(3), f(1), f(2));
        as.fsw(f(1), x(9), 0);
        as.fsw(f(3), x(9), 4);
        as.predNeq(x(15), x(0));
        as.fsw(f(1), x(9), 8);
        as.predEq(x(0), x(0));
        as.addi(x(9), x(9), kS * 4);
        as.remem();
    });

    b.vectorPhase(kF, kNumFrames, [=](Assembler &as) {
        as.vissue(init);
        as.la(x(5), AddrMap::globalBase);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, kF * 4, kNumFrames);
        rot.emitInit();
        DaeStreamSpec spec;
        spec.iters = kIters;
        spec.frameBytes = kF * 4;
        spec.numFrames = kNumFrames;
        spec.ahead = 1;                    // two steady fills
        spec.bodyMt = body;
        spec.fill = [=](Assembler &a, RegIdx off) {
            a.vload(x(5), off, 0, kW, VloadVariant::Group);
            a.addi(x(13), x(5), kW * gs * 4);
            a.addi(x(14), off, kW * 4);
            a.vload(x(13), x(14), 0, kW, VloadVariant::Group);
            a.addi(x(5), x(5), kF * gs * 4);
        };
        emitScalarStream(as, spec, rot, regs);
    });

    if (sab)
        b.setSabotage(*sab);
    return std::make_shared<const Program>(b.finish());
}

/** Run the fixture on the batch reference; false = run failed. */
bool
runBatchRef(const std::shared_ptr<const Program> &prog,
            const MachineParams &params, const BenchConfig &cfg,
            std::vector<Word> &heap)
{
    Machine m(params);
    int inWords = kIters * kF * cfg.groupSize;
    for (int i = 0; i < inWords; ++i)
        m.mem().writeFloat(AddrMap::globalBase +
                               static_cast<Addr>(i) * 4,
                           0.5f + 0.25f * static_cast<float>(i % 7));
    m.loadAll(prog);
    int tpg = cfg.groupSize + 1;
    int groups = m.numCores() / tpg;
    for (int g = 0; g < groups; ++g) {
        GroupPlan plan;
        for (int i = 0; i < tpg; ++i)
            plan.chain.push_back(g * tpg + i);
        m.planGroup(plan);
    }
    RefMachine batch(m);
    auto r = batch.runBatch();
    if (!r.ok) {
        heap.clear();
        return false;
    }
    heap.clear();
    for (Addr a = AddrMap::globalBase;
         a < AddrMap::globalBase + params.heapBytes; a += 4)
        heap.push_back(batch.mem().readWord(a));
    return true;
}

int
checkMiscompiles()
{
    BenchConfig cfg = configByName("V4");
    cfg.dae = true;
    MachineParams params = machineFor(cfg, 4, 2);
    params.heapBytes = 1u << 16;

    // Clean leg: proved outright, and a dynamic baseline to diff
    // the mutants against.
    auto clean = buildFixture(cfg, params, nullptr);
    VerifyReport rep = verifyProgram(*clean, cfg, params);
    if (!rep.ok()) {
        std::fprintf(stderr,
                     "equiv_smoke: verifier rejected the clean "
                     "fixture\n%s",
                     rep.text(*clean).c_str());
        return 1;
    }
    if (rep.equivStreams < 1 || rep.equivProved != rep.equivStreams) {
        std::fprintf(stderr,
                     "equiv_smoke: clean fixture not proved (%d/%d "
                     "streams)\n",
                     rep.equivProved, rep.equivStreams);
        return 1;
    }
    std::fprintf(stderr,
                 "equiv_smoke: clean fixture proved (%d/%d streams)\n",
                 rep.equivProved, rep.equivStreams);
    std::vector<Word> heapClean;
    if (!runBatchRef(clean, params, cfg, heapClean)) {
        std::fprintf(stderr,
                     "equiv_smoke: clean batch reference failed\n");
        return 1;
    }

    const struct
    {
        MiscompileSpec::Kind kind;
        const char *name;
        const char *expect;
    } kMutants[] = {
        {MiscompileSpec::Kind::DropLane, "drop-lane", "lane-map"},
        {MiscompileSpec::Kind::WrongStride, "stride", "stride"},
        {MiscompileSpec::Kind::TripCount, "trip-count", "trip-count"},
        {MiscompileSpec::Kind::PredPolarity, "pred-polarity",
         "predication"},
    };
    int rc = 0;
    for (const auto &mu : kMutants) {
        MiscompileSpec sab;
        sab.kind = mu.kind;
        auto evil = buildFixture(cfg, params, &sab);

        // Static leg: Check::Equiv with the expected finding kind and
        // a complete witness.
        VerifyReport mrep = verifyProgram(*evil, cfg, params);
        const EquivFinding *hit = nullptr;
        for (const EquivFinding &fnd : mrep.equiv)
            if (fnd.kind == mu.expect)
                hit = &fnd;
        if (!mrep.has(Check::Equiv) || !hit) {
            std::fprintf(stderr,
                         "equiv_smoke: static pass MISSED the seeded "
                         "%s miscompile (%zu findings)\n",
                         mu.name, mrep.equiv.size());
            rc = 1;
            continue;
        }
        if (hit->pc < 0 || hit->refPc < 0 || hit->routine.empty() ||
            hit->message.empty()) {
            std::fprintf(stderr,
                         "equiv_smoke: %s finding lacks a witness: "
                         "%s\n",
                         mu.name, hit->message.c_str());
            rc = 1;
            continue;
        }

        // Dynamic leg: the mutant must diverge from the clean heap.
        std::vector<Word> heapMut;
        bool ran = runBatchRef(evil, params, cfg, heapMut);
        if (ran && heapMut == heapClean) {
            std::fprintf(stderr,
                         "equiv_smoke: %s mutant is architecturally "
                         "invisible (heaps identical)\n",
                         mu.name);
            rc = 1;
            continue;
        }
        std::fprintf(stderr, "equiv_smoke: %s caught: %s\n", mu.name,
                     hit->message.c_str());
    }
    return rc;
}

int
checkCleanSuite()
{
    const struct
    {
        const char *bench;
        const char *config;
        bool vector;   ///< Must the config carry DAE streams?
    } kPairs[] = {
        {"atax", "V4", true},
        {"gemm", "V4_PCV", true},
        {"mvt", "V16", true},
        {"atax", "NV_PF", false},
    };
    RunOverrides ov;
    ov.verify = true;
    ov.equiv = true;
    int rc = 0;
    for (const auto &p : kPairs) {
        RunResult r = runManycore(p.bench, p.config, ov);
        bool proved = r.equiv.checked &&
                      r.equiv.proved == r.equiv.streams &&
                      r.equiv.witnesses.empty() &&
                      (!p.vector || r.equiv.streams > 0);
        if (!r.ok || !proved) {
            std::fprintf(stderr,
                         "equiv_smoke: %s/%s: ok=%d checked=%d "
                         "proved=%d/%d witnesses=%zu\n%s\n",
                         p.bench, p.config, r.ok ? 1 : 0,
                         r.equiv.checked ? 1 : 0, r.equiv.proved,
                         r.equiv.streams, r.equiv.witnesses.size(),
                         r.error.c_str());
            rc = 1;
        } else {
            std::fprintf(stderr,
                         "equiv_smoke: %s/%s proved (%d/%d streams)\n",
                         p.bench, p.config, r.equiv.proved,
                         r.equiv.streams);
        }
    }
    return rc;
}

} // namespace

int
main()
{
    int rc = checkMiscompiles();
    rc |= checkCleanSuite();
    if (rc == 0)
        std::fprintf(stderr, "rc_equivsmoke: PASS\n");
    return rc;
}
