/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and property tests (SplitMix64).
 */

#ifndef ROCKCRESS_SIM_RNG_HH
#define ROCKCRESS_SIM_RNG_HH

#include <cstdint>

namespace rockcress
{

/** SplitMix64: tiny, fast, deterministic, good enough for test data. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next() >> 40) /
               static_cast<float>(1ull << 24);
    }

  private:
    std::uint64_t state_;
};

} // namespace rockcress

#endif // ROCKCRESS_SIM_RNG_HH
