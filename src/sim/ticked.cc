#include "sim/ticked.hh"

#include <bit>

#include "sim/log.hh"

namespace rockcress
{

void
Simulator::step()
{
    for (Ticked *c : components_)
        c->tick(now_);
    ++now_;
}

void
Simulator::scheduleAt(int idx, Cycle at)
{
    auto slot = static_cast<std::size_t>(idx);
    if (at >= scheduledAt_[slot])
        return;   // An earlier live entry already covers this wake.
    scheduledAt_[slot] = at;
    if (processing_ && at == now_) {
        // Same-cycle wake: only a slot after the scan point can be
        // the target (wake() placement), so the due scan will still
        // reach this bit.
        dueBits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    } else if (at == now_ + 1) {
        nextBits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    } else {
        agenda_.emplace(at, idx);
    }
}

void
Simulator::flushSkips(Cycle end)
{
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (doneThrough_[i] < end) {
            components_[i]->skipTicks(doneThrough_[i], end);
            statSkipped_ += end - doneThrough_[i];
            doneThrough_[i] = end;
        }
    }
}

void
Simulator::tripWatchdog(Cycle max_cycles)
{
    // Every remaining cycle up to the limit is provably quiescent, so
    // charging the skips first leaves all per-cycle bookkeeping in
    // exactly the state the naive kernel reaches before it trips.
    now_ = max_cycles;
    flushSkips(max_cycles);
    running_ = false;
    fatal("simulation watchdog tripped at cycle ", now_,
          " (deadlock or runaway program?)");
}

Cycle
Simulator::runNaive(const std::function<bool()> &done, Cycle max_cycles,
                    Cycle stop_at)
{
    while (!done() && !(stop_at != 0 && now_ >= stop_at)) {
        if (now_ >= max_cycles) {
            fatal("simulation watchdog tripped at cycle ", now_,
                  " (deadlock or runaway program?)");
        }
        step();
    }
    return now_;
}

Cycle
Simulator::runFast(const std::function<bool()> &done, Cycle max_cycles,
                   Cycle stop_at)
{
    std::size_t n = components_.size();
    std::size_t words = (n + 63) / 64;
    scheduledAt_.assign(n, now_);
    doneThrough_.assign(n, now_);
    agenda_ = {};
    dueBits_.assign(words, 0);
    nextBits_.assign(words, 0);
    running_ = true;

    // Everything starts due: the first cycle matches the naive
    // kernel's unconditional tick of every component.
    for (std::size_t i = 0; i < n; ++i)
        dueBits_[i / 64] |= std::uint64_t{1} << (i % 64);

    while (!done() && !(stop_at != 0 && now_ >= stop_at)) {
        std::uint64_t any = 0;
        for (std::uint64_t w : dueBits_)
            any |= w;
        if (any == 0) {
            // Nothing due next cycle: jump to the earliest heap
            // deadline (discarding stale entries superseded by
            // earlier wakes that already ran).
            while (!agenda_.empty() &&
                   agenda_.top().first !=
                       scheduledAt_[static_cast<std::size_t>(
                           agenda_.top().second)]) {
                agenda_.pop();
            }
            if (agenda_.empty()) {
                // Global quiescence with done() false: no component
                // can ever change state again — a deadlock. The naive
                // kernel would spin inert ticks to the watchdog; trip
                // it now.
                tripWatchdog(max_cycles);
            }
            now_ = agenda_.top().first;
            if (stop_at != 0 && now_ >= stop_at) {
                // The idle jump would overshoot the stop point: clamp
                // and exit through the loop condition. The skipped
                // span is charged by the flushSkips below, exactly as
                // far as the naive kernel would have charged it.
                now_ = stop_at;
                continue;
            }
            while (!agenda_.empty() && agenda_.top().first == now_) {
                auto idx = static_cast<std::size_t>(agenda_.top().second);
                agenda_.pop();
                if (scheduledAt_[idx] == now_)
                    dueBits_[idx / 64] |= std::uint64_t{1} << (idx % 64);
            }
        }
        if (now_ >= max_cycles)
            tripWatchdog(max_cycles);

        // Scan due bits in ascending slot order — exactly the naive
        // kernel's registration-order sweep over the live subset. The
        // word is re-read after every tick because a same-cycle wake
        // may set a bit the scan has not passed yet (never one it
        // has: wake() places those at now+1).
        processing_ = true;
        for (std::size_t w = 0; w < words; ++w) {
            while (true) {
                std::uint64_t bits = dueBits_[w];
                if (bits == 0)
                    break;
                auto b = static_cast<unsigned>(std::countr_zero(bits));
                dueBits_[w] = bits & (bits - 1);
                auto slot = w * 64 + b;
                int idx = static_cast<int>(slot);
                if (scheduledAt_[slot] != now_)
                    continue;   // Stale (defensive; bits stay live).
                scheduledAt_[slot] = kNeverTick;
                currentIdx_ = idx;

                Ticked *c = components_[slot];
                if (doneThrough_[slot] < now_) {
                    c->skipTicks(doneThrough_[slot], now_);
                    statSkipped_ += now_ - doneThrough_[slot];
                }
                c->tick(now_);
                doneThrough_[slot] = now_ + 1;
                ++statTicks_;

                Cycle nxt = c->nextTickAt(now_);
                if (nxt <= now_)
                    nxt = now_ + 1;
                if (nxt != kNeverTick)
                    scheduleAt(idx, nxt);
            }
        }
        processing_ = false;
        currentIdx_ = -1;
        ++now_;

        // The now+1 wakes become due (the scan left dueBits_ zero),
        // plus any heap deadlines landing exactly at the new now.
        dueBits_.swap(nextBits_);
        while (!agenda_.empty()) {
            Entry top = agenda_.top();
            auto idx = static_cast<std::size_t>(top.second);
            if (top.first != scheduledAt_[idx]) {
                agenda_.pop();   // Stale.
                continue;
            }
            if (top.first != now_)
                break;
            agenda_.pop();
            dueBits_[idx / 64] |= std::uint64_t{1} << (idx % 64);
        }
    }

    // done() observed at now_: charge the still-sleeping components'
    // quiescent tails so every slot is accounted through now_.
    flushSkips(now_);
    running_ = false;
    return now_;
}

Cycle
Simulator::run(const std::function<bool()> &done, Cycle max_cycles,
               Cycle stop_at)
{
    if (naive_)
        return runNaive(done, max_cycles, stop_at);
    return runFast(done, max_cycles, stop_at);
}

} // namespace rockcress
