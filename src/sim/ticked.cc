#include "sim/ticked.hh"

#include "sim/log.hh"

namespace rockcress
{

void
Simulator::step()
{
    for (Ticked *c : components_)
        c->tick(now_);
    ++now_;
}

Cycle
Simulator::run(const std::function<bool()> &done, Cycle max_cycles)
{
    while (!done()) {
        if (now_ >= max_cycles) {
            fatal("simulation watchdog tripped at cycle ", now_,
                  " (deadlock or runaway program?)");
        }
        step();
    }
    return now_;
}

} // namespace rockcress
