/**
 * @file
 * Minimal logging and error-reporting helpers in the spirit of
 * gem5's base/logging.hh: fatal() for user errors, panic() for
 * simulator bugs, warn()/inform() for status messages.
 */

#ifndef ROCKCRESS_SIM_LOG_HH
#define ROCKCRESS_SIM_LOG_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rockcress
{

namespace detail
{

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/** Thrown by fatal(): the simulated program or configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Thrown by panic(): the simulator itself reached an impossible state. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

/**
 * Report an unrecoverable user-level error (bad program, bad config).
 * Throws FatalError so tests can assert on misconfiguration.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::concat("fatal: ", args...));
}

/**
 * Report a condition that should never happen regardless of input:
 * an actual simulator bug.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::concat("panic: ", args...));
}

/** Non-fatal notice that something may be modeled approximately. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << detail::concat(args...) << "\n";
}

/** Informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::cerr << "info: " << detail::concat(args...) << "\n";
}

} // namespace rockcress

#endif // ROCKCRESS_SIM_LOG_HH
