#include "sim/types.hh"

#include <cstring>

namespace rockcress
{

Word
floatToWord(float f)
{
    Word w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

float
wordToFloat(Word w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

} // namespace rockcress
