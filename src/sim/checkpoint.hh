/**
 * @file
 * Deterministic machine checkpoints (DESIGN.md S5k): a versioned,
 * self-describing binary snapshot of complete machine state that a
 * freshly constructed machine (same params, same programs, same group
 * plans) restores byte-identically, under either tick kernel.
 *
 * Two archive visitors — SnapshotWriter and SnapshotReader — share a
 * single `serializeFields` template per component, so save and
 * restore can never drift apart field-by-field. Field *coverage* is
 * enforced separately: src/machine/checkpoint.cc pins sizeof() of
 * every serialized class on the reference platform, so adding a
 * member without touching its serializeFields fails to compile there.
 *
 * The on-disk frame is:
 *
 *   "RCKP" | u32 version | u64 fnv1a(rest) | u64 len(rest) | rest
 *   rest = meta (tag, programDigest, cols, rows, cycle) ++ body
 *
 * Every malformed input — wrong magic, version skew, truncation,
 * checksum mismatch, or an over-long length prefix inside the body —
 * throws CheckpointError with a structured message; no input bytes
 * are ever trusted for allocation sizes beyond the bytes remaining.
 */

#ifndef ROCKCRESS_SIM_CHECKPOINT_HH
#define ROCKCRESS_SIM_CHECKPOINT_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace rockcress
{

/** Structured failure loading or validating a checkpoint. */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Checkpoint format version; bump on any layout change. */
constexpr std::uint32_t kCheckpointVersion = 1;

namespace detail
{

template <class T> struct IsVector : std::false_type {};
template <class T, class A>
struct IsVector<std::vector<T, A>> : std::true_type {};

template <class T> struct IsDeque : std::false_type {};
template <class T, class A>
struct IsDeque<std::deque<T, A>> : std::true_type {};

template <class T> struct IsArray : std::false_type {};
template <class T, std::size_t N>
struct IsArray<std::array<T, N>> : std::true_type {};

template <class T> struct IsMap : std::false_type {};
template <class K, class V, class C, class A>
struct IsMap<std::map<K, V, C, A>> : std::true_type {};

template <class T> struct IsPair : std::false_type {};
template <class A, class B>
struct IsPair<std::pair<A, B>> : std::true_type {};

template <class T> struct IsUniquePtr : std::false_type {};
template <class T, class D>
struct IsUniquePtr<std::unique_ptr<T, D>> : std::true_type {};

template <class> inline constexpr bool dependentFalse = false;

} // namespace detail

/** A type that serializes itself through either archive. */
template <class T, class Ar>
concept SnapshotClass = requires(T &t, Ar &ar) { t.serializeFields(ar); };

/**
 * Serializing archive: appends fields to a growing byte buffer.
 * Integrals are fixed-width little-endian two's complement, bool one
 * byte, floating point its IEEE bit pattern, containers a u64 count
 * followed by elements, strings a u32 length followed by bytes.
 */
class SnapshotWriter
{
  public:
    static constexpr bool isReader = false;

    template <class... Ts>
    void
    operator()(Ts &...fields)
    {
        (field(fields), ...);
    }

    template <class T>
    void
    field(T &v)
    {
        if constexpr (std::is_same_v<T, bool>) {
            putByte(v ? 1 : 0);
        } else if constexpr (std::is_enum_v<T>) {
            auto u = static_cast<std::underlying_type_t<T>>(v);
            field(u);
        } else if constexpr (std::is_integral_v<T>) {
            putUint(static_cast<std::make_unsigned_t<T>>(v));
        } else if constexpr (std::is_same_v<T, double>) {
            putUint(std::bit_cast<std::uint64_t>(v));
        } else if constexpr (std::is_same_v<T, float>) {
            putUint(std::bit_cast<std::uint32_t>(v));
        } else if constexpr (std::is_same_v<T, std::string>) {
            putUint(static_cast<std::uint32_t>(v.size()));
            buf_.insert(buf_.end(), v.begin(), v.end());
        } else if constexpr (detail::IsVector<T>::value ||
                             detail::IsDeque<T>::value) {
            putUint(static_cast<std::uint64_t>(v.size()));
            for (auto &e : v)
                field(e);
        } else if constexpr (detail::IsArray<T>::value) {
            for (auto &e : v)
                field(e);
        } else if constexpr (detail::IsMap<T>::value) {
            putUint(static_cast<std::uint64_t>(v.size()));
            for (auto &kv : v) {
                auto key = kv.first;   // Map keys are const in place.
                field(key);
                field(kv.second);
            }
        } else if constexpr (detail::IsPair<T>::value) {
            field(v.first);
            field(v.second);
        } else if constexpr (detail::IsUniquePtr<T>::value) {
            bool present = v != nullptr;
            field(present);
            if (present)
                field(*v);
        } else if constexpr (SnapshotClass<T, SnapshotWriter>) {
            v.serializeFields(*this);
        } else {
            static_assert(detail::dependentFalse<T>,
                          "no snapshot serialization for this type");
        }
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    void putByte(std::uint8_t b) { buf_.push_back(b); }

    template <class U>
    void
    putUint(U v)
    {
        static_assert(std::is_unsigned_v<U>);
        for (std::size_t i = 0; i < sizeof(U); ++i)
            putByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
};

/**
 * Deserializing archive: consumes the SnapshotWriter byte stream.
 * Every read is bounds-checked against the remaining bytes; container
 * counts are additionally bounded by the remaining byte budget before
 * any allocation, so a corrupt length prefix throws CheckpointError
 * instead of attempting a huge resize.
 */
class SnapshotReader
{
  public:
    static constexpr bool isReader = true;

    SnapshotReader(const std::uint8_t *data, std::size_t size)
        : p_(data), end_(data + size)
    {}

    explicit SnapshotReader(const std::vector<std::uint8_t> &bytes)
        : SnapshotReader(bytes.data(), bytes.size())
    {}

    template <class... Ts>
    void
    operator()(Ts &...fields)
    {
        (field(fields), ...);
    }

    template <class T>
    void
    field(T &v)
    {
        if constexpr (std::is_same_v<T, bool>) {
            v = getByte() != 0;
        } else if constexpr (std::is_enum_v<T>) {
            std::underlying_type_t<T> u{};
            field(u);
            v = static_cast<T>(u);
        } else if constexpr (std::is_integral_v<T>) {
            std::make_unsigned_t<T> u{};
            getUint(u);
            v = static_cast<T>(u);
        } else if constexpr (std::is_same_v<T, double>) {
            std::uint64_t u = 0;
            getUint(u);
            v = std::bit_cast<double>(u);
        } else if constexpr (std::is_same_v<T, float>) {
            std::uint32_t u = 0;
            getUint(u);
            v = std::bit_cast<float>(u);
        } else if constexpr (std::is_same_v<T, std::string>) {
            std::uint32_t n = 0;
            getUint(n);
            need(n);
            v.assign(reinterpret_cast<const char *>(p_), n);
            p_ += n;
        } else if constexpr (detail::IsVector<T>::value ||
                             detail::IsDeque<T>::value) {
            std::uint64_t n = boundedCount();
            v.clear();
            v.resize(static_cast<std::size_t>(n));
            for (auto &e : v)
                field(e);
        } else if constexpr (detail::IsArray<T>::value) {
            for (auto &e : v)
                field(e);
        } else if constexpr (detail::IsMap<T>::value) {
            std::uint64_t n = boundedCount();
            v.clear();
            for (std::uint64_t i = 0; i < n; ++i) {
                typename T::key_type key{};
                typename T::mapped_type val{};
                field(key);
                field(val);
                v.emplace(std::move(key), std::move(val));
            }
        } else if constexpr (detail::IsPair<T>::value) {
            field(v.first);
            field(v.second);
        } else if constexpr (detail::IsUniquePtr<T>::value) {
            bool present = false;
            field(present);
            if (present) {
                v = std::make_unique<typename T::element_type>();
                field(*v);
            } else {
                v.reset();
            }
        } else if constexpr (SnapshotClass<T, SnapshotReader>) {
            v.serializeFields(*this);
        } else {
            static_assert(detail::dependentFalse<T>,
                          "no snapshot serialization for this type");
        }
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }
    const std::uint8_t *cursor() const { return p_; }

  private:
    void
    need(std::size_t n) const
    {
        if (remaining() < n) {
            throw CheckpointError(
                "checkpoint: truncated snapshot (wanted " +
                std::to_string(n) + " bytes, " +
                std::to_string(remaining()) + " remain)");
        }
    }

    std::uint8_t
    getByte()
    {
        need(1);
        return *p_++;
    }

    template <class U>
    void
    getUint(U &v)
    {
        static_assert(std::is_unsigned_v<U>);
        need(sizeof(U));
        v = 0;
        for (std::size_t i = 0; i < sizeof(U); ++i)
            v |= static_cast<U>(p_[i]) << (8 * i);
        p_ += sizeof(U);
    }

    /** Container count, rejected before allocation when implausible. */
    std::uint64_t
    boundedCount()
    {
        std::uint64_t n = 0;
        getUint(n);
        // Every element occupies at least one byte in the stream.
        if (n > remaining()) {
            throw CheckpointError(
                "checkpoint: corrupt container count " +
                std::to_string(n) + " with " +
                std::to_string(remaining()) + " bytes remaining");
        }
        return n;
    }

    const std::uint8_t *p_;
    const std::uint8_t *end_;
};

/** Self-describing header carried by every checkpoint. */
struct CheckpointMeta
{
    std::string tag;                  ///< Free-form run label.
    std::uint64_t programDigest = 0;  ///< machineProgramDigest() value.
    std::uint32_t cols = 0;           ///< Grid geometry at save time.
    std::uint32_t rows = 0;
    Cycle cycle = 0;                  ///< Simulated cycle of the snapshot.

    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(tag, programDigest, cols, rows, cycle);
    }
};

/** @name Framing (magic, version, checksum). */
///@{
/** Wrap a serialized machine body into a framed checkpoint blob. */
std::vector<std::uint8_t> frameCheckpoint(
    const CheckpointMeta &meta, const std::vector<std::uint8_t> &body);
/**
 * Validate framing and return the header without touching the body.
 * @throws CheckpointError on any malformed input.
 */
CheckpointMeta peekCheckpoint(const std::vector<std::uint8_t> &bytes);
/**
 * Validate framing and return the machine body.
 * @throws CheckpointError on any malformed input.
 */
std::vector<std::uint8_t> checkpointBody(
    const std::vector<std::uint8_t> &bytes,
    CheckpointMeta *meta = nullptr);
///@}

/** @name File I/O (atomic write-then-rename). */
///@{
void writeCheckpointFile(const std::string &path,
                         const std::vector<std::uint8_t> &bytes);
/** @throws CheckpointError when the file cannot be read. */
std::vector<std::uint8_t> readCheckpointFile(const std::string &path);
///@}

/** FNV-1a over a byte range (checksums and state digests). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size,
                    std::uint64_t h = 0xcbf29ce484222325ULL);

/** @name Machine-level API (defined in src/machine/checkpoint.cc). */
///@{
class Machine;

/** Serialize the complete machine state into a framed checkpoint. */
std::vector<std::uint8_t> saveCheckpoint(Machine &m,
                                         const std::string &tag = {});
/**
 * Restore a checkpoint into a freshly prepared machine: same params,
 * same programs loaded, same groups planned. Validates geometry and
 * the program digest against the header.
 * @throws CheckpointError on any mismatch or malformed input.
 */
void restoreCheckpoint(Machine &m,
                       const std::vector<std::uint8_t> &bytes);
/** Digest of the loaded software (programs, entry pcs, group plans). */
std::uint64_t machineProgramDigest(const Machine &m);
/** Digest of the full serialized state (bisection probes). */
std::uint64_t machineStateDigest(Machine &m);
///@}

} // namespace rockcress

#endif // ROCKCRESS_SIM_CHECKPOINT_HH
