#include "sim/stats.hh"

#include <algorithm>

namespace rockcress
{

std::uint64_t *
StatRegistry::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<std::uint64_t>(0))
                 .first;
    }
    return it->second.get();
}

std::uint64_t
StatRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : *it->second;
}

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

std::uint64_t
StatRegistry::sumSuffix(const std::string &suffix) const
{
    std::uint64_t total = 0;
    for (const auto &[name, value] : counters_) {
        if (endsWith(name, suffix))
            total += *value;
    }
    return total;
}

std::uint64_t
StatRegistry::sumPrefix(const std::string &prefix) const
{
    std::uint64_t total = 0;
    for (const auto &[name, value] : counters_) {
        if (startsWith(name, prefix))
            total += *value;
    }
    return total;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::matchSuffix(const std::string &suffix) const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto &[name, value] : counters_) {
        if (endsWith(name, suffix))
            out.emplace_back(name, *value);
    }
    return out;
}

std::map<std::string, std::uint64_t>
StatRegistry::all() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, value] : counters_)
        out.emplace(name, *value);
    return out;
}

void
StatRegistry::reset()
{
    for (auto &[name, value] : counters_)
        *value = 0;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters_)
        os << name << " " << *value << "\n";
}

} // namespace rockcress
