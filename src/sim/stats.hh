/**
 * @file
 * A small statistics registry. Components allocate named counters once
 * at construction and bump them through raw pointers on the fast path;
 * the harness reads them back by name, prefix, or suffix after a run.
 */

#ifndef ROCKCRESS_SIM_STATS_HH
#define ROCKCRESS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace rockcress
{

/**
 * Registry of named 64-bit event counters.
 *
 * Names are hierarchical by convention: "core3.icache_accesses",
 * "llc5.misses". Aggregation helpers sum across the hierarchy.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /**
     * Allocate (or look up) a counter.
     * @param name Fully-qualified counter name.
     * @return Stable pointer valid for the registry's lifetime.
     */
    std::uint64_t *counter(const std::string &name);

    /** Read a counter by exact name; 0 if it was never allocated. */
    std::uint64_t get(const std::string &name) const;

    /** Sum all counters whose name ends with the given suffix. */
    std::uint64_t sumSuffix(const std::string &suffix) const;

    /** Sum all counters whose name starts with the given prefix. */
    std::uint64_t sumPrefix(const std::string &prefix) const;

    /** All counters whose name ends with the suffix, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>>
    matchSuffix(const std::string &suffix) const;

    /** Snapshot every counter. */
    std::map<std::string, std::uint64_t> all() const;

    /** Reset every counter to zero (e.g. between kernels). */
    void reset();

    /** Human-readable dump, one counter per line, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * Checkpoint field visitor (sim/checkpoint.hh). Restore assigns
     * through counter(), so component-held pointers stay valid; every
     * counter a component allocated at construction exists in the
     * snapshot map, so no value survives from before the restore.
     */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        std::map<std::string, std::uint64_t> snap;
        if constexpr (!Ar::isReader)
            snap = all();
        ar(snap);
        if constexpr (Ar::isReader) {
            for (const auto &[name, value] : snap)
                *counter(name) = value;
        }
    }

  private:
    std::map<std::string, std::unique_ptr<std::uint64_t>> counters_;
};

/**
 * Convenience wrapper binding a name prefix to a registry so components
 * can allocate relative counter names.
 */
class StatScope
{
  public:
    StatScope(StatRegistry &registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {}

    /** Allocate a counter named prefix + name. */
    std::uint64_t *
    counter(const std::string &name) const
    {
        return registry_.counter(prefix_ + name);
    }

    /** Derive a nested scope: prefix + inner + ".". */
    StatScope
    nested(const std::string &inner) const
    {
        return StatScope(registry_, prefix_ + inner + ".");
    }

    StatRegistry &registry() const { return registry_; }
    const std::string &prefix() const { return prefix_; }

  private:
    StatRegistry &registry_;
    std::string prefix_;
};

} // namespace rockcress

#endif // ROCKCRESS_SIM_STATS_HH
