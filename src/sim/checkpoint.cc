#include "sim/checkpoint.hh"

#include <cstdio>

namespace rockcress
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'R', 'C', 'K', 'P'};
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 8;

} // namespace

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size, std::uint64_t h)
{
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::vector<std::uint8_t>
frameCheckpoint(const CheckpointMeta &meta,
                const std::vector<std::uint8_t> &body)
{
    SnapshotWriter mw;
    CheckpointMeta m = meta;
    m.serializeFields(mw);
    std::vector<std::uint8_t> rest = mw.take();
    rest.insert(rest.end(), body.begin(), body.end());

    SnapshotWriter hw;
    std::uint32_t version = kCheckpointVersion;
    std::uint64_t checksum = fnv1a(rest.data(), rest.size());
    auto restSize = static_cast<std::uint64_t>(rest.size());
    hw(version, checksum, restSize);

    std::vector<std::uint8_t> out(kMagic, kMagic + 4);
    const auto &hb = hw.bytes();
    out.insert(out.end(), hb.begin(), hb.end());
    out.insert(out.end(), rest.begin(), rest.end());
    return out;
}

namespace
{

/** Validate framing; return a reader positioned at the meta block. */
SnapshotReader
openFrame(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < kFrameHeaderBytes) {
        throw CheckpointError(
            "checkpoint: file too short to hold a header (" +
            std::to_string(bytes.size()) + " bytes)");
    }
    if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
        throw CheckpointError(
            "checkpoint: bad magic (not a Rockcress checkpoint)");
    }
    SnapshotReader hr(bytes.data() + 4, bytes.size() - 4);
    std::uint32_t version = 0;
    std::uint64_t checksum = 0;
    std::uint64_t restSize = 0;
    hr(version, checksum, restSize);
    if (version != kCheckpointVersion) {
        throw CheckpointError(
            "checkpoint: format version " + std::to_string(version) +
            ", this build reads version " +
            std::to_string(kCheckpointVersion) +
            " (stale snapshot? re-create it)");
    }
    if (restSize != bytes.size() - kFrameHeaderBytes) {
        throw CheckpointError(
            "checkpoint: payload size " + std::to_string(restSize) +
            " does not match file size (truncated or padded file)");
    }
    if (fnv1a(bytes.data() + kFrameHeaderBytes,
              static_cast<std::size_t>(restSize)) != checksum) {
        throw CheckpointError(
            "checkpoint: checksum mismatch (corrupt snapshot)");
    }
    return {bytes.data() + kFrameHeaderBytes,
            static_cast<std::size_t>(restSize)};
}

} // namespace

CheckpointMeta
peekCheckpoint(const std::vector<std::uint8_t> &bytes)
{
    SnapshotReader r = openFrame(bytes);
    CheckpointMeta meta;
    meta.serializeFields(r);
    return meta;
}

std::vector<std::uint8_t>
checkpointBody(const std::vector<std::uint8_t> &bytes,
               CheckpointMeta *meta)
{
    SnapshotReader r = openFrame(bytes);
    CheckpointMeta m;
    m.serializeFields(r);
    if (meta != nullptr)
        *meta = m;
    return {r.cursor(), r.cursor() + r.remaining()};
}

void
writeCheckpointFile(const std::string &path,
                    const std::vector<std::uint8_t> &bytes)
{
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        throw CheckpointError("checkpoint: cannot open " + tmp +
                              " for writing");
    }
    std::size_t wrote =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = wrote == bytes.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        throw CheckpointError("checkpoint: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("checkpoint: cannot rename " + tmp +
                              " to " + path);
    }
}

std::vector<std::uint8_t>
readCheckpointFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw CheckpointError("checkpoint: cannot open " + path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw CheckpointError("checkpoint: read error on " + path);
    return bytes;
}

} // namespace rockcress
