/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef ROCKCRESS_SIM_TYPES_HH
#define ROCKCRESS_SIM_TYPES_HH

#include <cstdint>

namespace rockcress
{

/** Simulation time, in core clock cycles (1 GHz nominal). */
using Cycle = std::uint64_t;

/** Byte address in the 32-bit global address space. */
using Addr = std::uint32_t;

/** Machine word: 32 bits, also the flit payload unit on the NoC. */
using Word = std::uint32_t;

/** Architectural register index (x0..x31 / f0..f31 / v0..v31). */
using RegIdx = std::uint8_t;

/** Linear core identifier within the fabric. */
using CoreId = std::int32_t;

/** Bytes per machine word. */
constexpr Addr wordBytes = 4;

/** Reinterpret a float as its word-level bit pattern. */
Word floatToWord(float f);

/** Reinterpret a word-level bit pattern as a float. */
float wordToFloat(Word w);

/** Integer ceiling division for non-negative operands. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

} // namespace rockcress

#endif // ROCKCRESS_SIM_TYPES_HH
