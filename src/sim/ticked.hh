/**
 * @file
 * Cycle-ticked simulation kernel.
 *
 * The paper's artifact uses gem5's event-driven core; this reproduction
 * substitutes a deterministic fixed-order per-cycle tick, which is
 * sufficient because every modeled component does work every cycle
 * (pipelines, routers, cache response engines). See DESIGN.md S1.
 */

#ifndef ROCKCRESS_SIM_TICKED_HH
#define ROCKCRESS_SIM_TICKED_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace rockcress
{

/** Interface for a component that does work once per clock cycle. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /** Advance the component by one cycle. */
    virtual void tick(Cycle now) = 0;
};

/**
 * Drives a set of Ticked components in registration order until a
 * completion predicate holds or a watchdog limit trips.
 */
class Simulator
{
  public:
    /** Register a component. Order of registration is tick order. */
    void add(Ticked *component) { components_.push_back(component); }

    /**
     * Run until done() returns true.
     *
     * @param done Completion predicate, checked once per cycle.
     * @param max_cycles Watchdog: exceeding this aborts via fatal().
     * @return The cycle count at completion.
     */
    Cycle run(const std::function<bool()> &done, Cycle max_cycles);

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /**
     * Stable pointer to the cycle counter, for observers (the trace
     * sink) that need a timestamp in paths where `now` is not passed.
     */
    const Cycle *nowPtr() const { return &now_; }

    /** Advance exactly one cycle (for fine-grained tests). */
    void step();

  private:
    std::vector<Ticked *> components_;
    Cycle now_ = 0;
};

} // namespace rockcress

#endif // ROCKCRESS_SIM_TICKED_HH
