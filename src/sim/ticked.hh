/**
 * @file
 * Cycle-ticked simulation kernel with quiescence-aware scheduling.
 *
 * The paper's artifact uses gem5's event-driven core; this
 * reproduction keeps a deterministic fixed-order per-cycle tick as
 * the semantic model, but lets each component report when it can
 * next change state (`nextTickAt`) so the scheduler skips the cycles
 * where a tick would provably be a no-op. Cross-component effects
 * re-arm sleepers through `Simulator::wake`. The naive
 * tick-everything loop survives behind `setNaive(true)` as the
 * differential oracle; both kernels must produce byte-identical
 * machine state, statistics, and traces (DESIGN.md S5i).
 */

#ifndef ROCKCRESS_SIM_TICKED_HH
#define ROCKCRESS_SIM_TICKED_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace rockcress
{

/** Sentinel wake time: the component needs no tick until woken. */
constexpr Cycle kNeverTick = ~Cycle{0};

/** Interface for a component that does work once per clock cycle. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /** Advance the component by one cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest future cycle at which tick() could change any
     * observable state (its own, a peer's, or a statistic), given
     * that no external event intervenes. Called right after tick(now)
     * returns; must be > now, or kNeverTick to sleep until woken.
     * Conservatively early answers are always safe — a tick replayed
     * on a quiescent component must be a no-op — but a late answer
     * breaks cycle accuracy. The default keeps legacy components
     * ticking every cycle.
     */
    virtual Cycle nextTickAt(Cycle now) { return now + 1; }

    /**
     * Account for the skipped quiescent cycles [begin, end): the
     * scheduler proved tick() would have been inert for each of them,
     * but per-cycle bookkeeping (stat counters, open trace spans)
     * still owes `end - begin` increments. Called before the tick at
     * `end` (or at end of run).
     */
    virtual void skipTicks(Cycle begin, Cycle end)
    {
        (void)begin;
        (void)end;
    }

  private:
    friend class Simulator;
    int simIndex_ = -1;   ///< Registration slot, set by Simulator::add.
};

/**
 * Drives a set of Ticked components in registration order until a
 * completion predicate holds or a watchdog limit trips.
 *
 * Two equivalent kernels:
 *  - naive (setNaive(true)): every component ticks every cycle in
 *    registration order — the oracle.
 *  - fast (default): only due components tick, still in registration
 *    order within a cycle, and whole quiescent stretches are handed
 *    to skipTicks(). wake() placement reproduces the naive kernel's
 *    intra-cycle visibility exactly: an effect produced while slot i
 *    ticks is visible to slot j the same cycle iff j > i.
 *
 * The fast agenda is two-level, because the dominant schedule is
 * "again next cycle": wakes for now+1 append to a plain vector that
 * becomes the next cycle's (sorted, deduplicated-by-liveness) due
 * list, and only far-future deadlines (LLC fills, FU completions,
 * fetch latency) go through a lazy-deletion min-heap. A busy machine
 * therefore pays near the naive loop's cost per active component,
 * while idle stretches collapse to one heap pop.
 */
class Simulator
{
  public:
    /** Register a component. Order of registration is tick order. */
    void
    add(Ticked *component)
    {
        component->simIndex_ = static_cast<int>(components_.size());
        components_.push_back(component);
    }

    /** Select the naive every-cycle oracle kernel (default: fast). */
    void setNaive(bool naive) { naive_ = naive; }

    /**
     * Re-arm a sleeping component after an external event. Safe to
     * call at any time, including for already-scheduled components
     * and from inside tick(). In the fast kernel the wake lands at
     * the earliest cycle the naive kernel could observe the effect:
     * the current cycle when the target ticks after the caller this
     * cycle, the next cycle otherwise.
     */
    void
    wake(Ticked *component)
    {
        if (!running_ || naive_)
            return;
        int idx = component->simIndex_;
        Cycle at = (processing_ && idx > currentIdx_) ? now_ : now_ + 1;
        scheduleAt(idx, at);
    }

    /**
     * Run until done() returns true.
     *
     * @param done Completion predicate, checked once per cycle.
     * @param max_cycles Watchdog: exceeding this aborts via fatal().
     * @param stop_at Pause before executing any tick scheduled at
     *        this cycle (0: never). Stopping is transparent: all
     *        per-cycle bookkeeping is charged through stop_at - 1,
     *        and a later run() resumes exactly where the uninterrupted
     *        run would be, because run() re-derives all scheduling
     *        state on entry (a spurious tick on a quiescent component
     *        is a no-op by the Ticked contract).
     * @return The cycle count at completion.
     */
    Cycle run(const std::function<bool()> &done, Cycle max_cycles,
              Cycle stop_at = 0);

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /**
     * Restore the clock from a checkpoint. Only valid outside run();
     * all scheduling state is re-derived at the next run() entry.
     */
    void restoreNow(Cycle now) { now_ = now; }

    /**
     * Stable pointer to the cycle counter, for observers (the trace
     * sink) that need a timestamp in paths where `now` is not passed.
     */
    const Cycle *nowPtr() const { return &now_; }

    /** Advance exactly one cycle, naive-style (fine-grained tests). */
    void step();

    /** Ticks executed by the fast kernel (diagnostics only). */
    std::uint64_t ticksExecuted() const { return statTicks_; }

    /** Component-cycles skipped as quiescent (diagnostics only). */
    std::uint64_t ticksSkipped() const { return statSkipped_; }

  private:
    using Entry = std::pair<Cycle, int>;

    void scheduleAt(int idx, Cycle at);
    Cycle runNaive(const std::function<bool()> &done, Cycle max_cycles,
                   Cycle stop_at);
    Cycle runFast(const std::function<bool()> &done, Cycle max_cycles,
                  Cycle stop_at);
    /** Charge every component's outstanding quiescent span up to `end`. */
    void flushSkips(Cycle end);
    [[noreturn]] void tripWatchdog(Cycle max_cycles);

    std::vector<Ticked *> components_;
    Cycle now_ = 0;

    bool naive_ = false;
    bool running_ = false;      ///< Inside run(): wake() is live.
    bool processing_ = false;   ///< Inside the current cycle's ticks.
    int currentIdx_ = -1;       ///< Slot being ticked right now.

    /** Far-future wakes (> now+1); stale entries skipped on pop. */
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        agenda_;
    /**
     * Slots due at now_, one bit per slot. Scanning set bits in
     * ascending order IS the registration-order sweep, so no sorting
     * or deduplication is ever needed; same-cycle wakes (always for a
     * slot after the scan point) just set a bit the scan has not
     * reached yet.
     */
    std::vector<std::uint64_t> dueBits_;
    /** Slots scheduled for now_+1; becomes dueBits_ at cycle end. */
    std::vector<std::uint64_t> nextBits_;
    /** Earliest live agenda entry per slot (kNeverTick: none). */
    std::vector<Cycle> scheduledAt_;
    /** First cycle not yet charged to the slot (tick or skip). */
    std::vector<Cycle> doneThrough_;

    std::uint64_t statTicks_ = 0;
    std::uint64_t statSkipped_ = 0;
};

} // namespace rockcress

#endif // ROCKCRESS_SIM_TICKED_HH
