/**
 * @file
 * One shared LLC bank (Sections 3.1, 3.4). Banks stripe the global
 * address space by cache line. Each bank is write-back with tree
 * pseudo-LRU replacement and owns a DRAM channel.
 *
 * Wide accesses are served by a response counter: for response count
 * Cnt the word at (Addr + Cnt) goes to core (BC + Cnt/RPC) at
 * scratchpad offset (BO + Cnt%RPC), one word per cycle per CPU-side
 * port, exactly the serial response generation of Section 3.4.
 */

#ifndef ROCKCRESS_MEM_LLC_HH
#define ROCKCRESS_MEM_LLC_HH

#include <deque>
#include <map>
#include <vector>

#include "mem/addrmap.hh"
#include "mem/cachetags.hh"
#include "mem/dram.hh"
#include "mem/mainmem.hh"
#include "mem/msg.hh"
#include "noc/mesh.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "trace/trace.hh"

namespace rockcress
{

/** Geometry and timing of an LLC bank. */
struct LlcParams
{
    Addr capacityBytes = 16 * 1024;  ///< Per-bank (256 kB / 16 banks).
    int ways = 4;
    Addr lineBytes = 64;
    Cycle hitLatency = 1;
};

/** A single LLC bank attached to a mesh node and a DRAM channel. */
class LlcBank : public Ticked
{
  public:
    /**
     * @param bank Bank index (also the DRAM channel).
     * @param node This bank's mesh node id.
     * @param coreNodeOf Maps a CoreId to its mesh node id.
     */
    LlcBank(int bank, int node, const LlcParams &params, Mesh &mesh,
            Dram &dram, MainMemory &mem, const AddrMap &map,
            std::vector<int> coreNodeOf, const StatScope &stats);

    /** Mesh sink: accept a request packet. */
    void receive(const Packet &pkt);

    void tick(Cycle now) override;
    Cycle nextTickAt(Cycle now) override;

    /** True when no requests, fills, or responses are outstanding. */
    bool idle() const;

    /**
     * Attach (null: detach) the trace sink. While attached, accepted
     * requests record LlcReq events (hit/miss per op) and response
     * streams record LlcResp events.
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }

    const CacheTags &tags() const { return tags_; }

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(reqQueue_, mshrs_, mshrMinReady_, respQueue_,
           respPortFreeAt_, tags_);
    }

  private:
    struct Mshr
    {
        Cycle ready = 0;
        std::vector<MemReq> waiting;

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(ready, waiting);
        }
    };

    /** An accepted read generating serial word responses. */
    struct ActiveResp
    {
        MemReq req;
        int cnt = 0;        ///< Next response index in [wordLo, wordHi).
        int wordInCore = 0; ///< cnt % respPerCore, carried incrementally.
        int coreIdx = 0;    ///< cnt / respPerCore, carried incrementally.
        std::vector<Word> snap;

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(req, cnt, wordInCore, coreIdx, snap);
        }
    };

    void startRequest(const MemReq &req, Cycle now);
    void enqueueResponses(const MemReq &req);
    /** Record a request acceptance (LlcReq) or response (LlcResp). */
    void traceReq(const MemReq &req, Cycle now, bool hit) const;
    void emitOneWord(Cycle now);
    CoreId responseDest(const MemReq &req, int cnt) const;

    int bank_;
    int node_;
    LlcParams params_;
    Mesh &mesh_;
    Dram &dram_;
    MainMemory &mem_;
    const AddrMap &map_;
    std::vector<int> coreNodeOf_;
    CacheTags tags_;

    TraceSink *trace_ = nullptr;

    std::deque<MemReq> reqQueue_;
    std::map<Addr, Mshr> mshrs_;
    /**
     * Earliest mshrs_ fill completion (kNeverTick when none): lets
     * tick() skip the retirement sweep on the (dominant) cycles where
     * no fill is due, and makes nextTickAt O(1).
     */
    Cycle mshrMinReady_ = kNeverTick;
    std::deque<ActiveResp> respQueue_;
    Cycle respPortFreeAt_ = 0;

    std::uint64_t *statWideAccesses_;
    std::uint64_t *statWordReads_;
    std::uint64_t *statWordWrites_;
    std::uint64_t *statRespWords_;
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_LLC_HH
