#include "mem/dram.hh"

#include <algorithm>

#include "sim/log.hh"

namespace rockcress
{

Dram::Dram(int channels, double total_bytes_per_cycle,
           Cycle latency_cycles, const StatScope &stats)
    : freeAt_(static_cast<size_t>(channels), 0.0),
      cyclesPerByte_(static_cast<double>(channels) /
                     total_bytes_per_cycle),
      latency_(latency_cycles)
{
    if (channels <= 0 || total_bytes_per_cycle <= 0)
        fatal("dram: invalid parameters");
    statReads_ = stats.counter("transfers");
    statBytes_ = stats.counter("bytes");
}

Cycle
Dram::request(int channel, Addr bytes, Cycle now)
{
    double &free = freeAt_.at(static_cast<size_t>(channel));
    double start = std::max(static_cast<double>(now), free);
    free = start + static_cast<double>(bytes) * cyclesPerByte_;
    *statReads_ += 1;
    *statBytes_ += bytes;
    return static_cast<Cycle>(free) + latency_;
}

bool
Dram::idle(Cycle now) const
{
    for (double f : freeAt_) {
        if (f > static_cast<double>(now))
            return false;
    }
    return true;
}

} // namespace rockcress
