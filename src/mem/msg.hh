/**
 * @file
 * Message types exchanged between tiles, LLC banks, and DRAM over the
 * data NoC, plus the vector-group layout descriptor that wide-access
 * packets carry (Section 3.4: "this layout must be provided by a wide
 * access packet").
 */

#ifndef ROCKCRESS_MEM_MSG_HH
#define ROCKCRESS_MEM_MSG_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instr.hh"
#include "sim/types.hh"

namespace rockcress
{

/**
 * The shape of a vector group as seen by the memory system: the
 * ordered list of vector cores that receive consecutive chunks of a
 * wide response. Owned by the machine; requests carry a shared_ptr so
 * in-flight packets stay valid across group reconfiguration.
 */
struct GroupLayout
{
    CoreId scalar = -1;                ///< The group's scalar core.
    std::vector<CoreId> vectorCores;   ///< Expander first, chain order.

    int size() const { return static_cast<int>(vectorCores.size()); }
};

using GroupLayoutPtr = std::shared_ptr<const GroupLayout>;

/** Operation carried by a request packet. */
enum class MemOp : std::uint8_t
{
    ReadWord,   ///< Scalar word load into a register.
    WriteWord,  ///< Non-blocking word store.
    ReadWide,   ///< vload: line-sized read, chunked responses.
};

/** A request from a tile to an LLC bank. */
struct MemReq
{
    MemOp op = MemOp::ReadWord;
    Addr addr = 0;             ///< Global byte address.
    Word data = 0;             ///< Store data (WriteWord).
    CoreId src = -1;           ///< Requesting core.
    int srcPc = -1;            ///< Issuing pc (frame-sanitizer attribution).
    std::uint32_t reqId = 0;   ///< Matches ReadWord responses to LQ slots.
    RegIdx destReg = 0;        ///< Register target for ReadWord.
    int sizeWords = 1;         ///< Payload words (store data width).

    // Wide access fields (ReadWide). The request describes a whole
    // block starting at addr; this packet covers words
    // [wordLo, wordHi) of the block, all within one cache line. An
    // unaligned block is issued as a suffix/prefix request pair
    // (Section 2.3.2's unaligned load variants).
    VloadVariant variant = VloadVariant::Self;
    int baseCoreOff = 0;       ///< BC: first responding core's group index.
    Word spadOffset = 0;       ///< BO: destination scratchpad byte offset.
    int respPerCore = 1;       ///< RPC: words per responding core.
    int wordLo = 0;            ///< First block word covered here.
    int wordHi = 1;            ///< One past the last block word.
    GroupLayoutPtr group;      ///< Layout for Group/Single routing.

    /**
     * Checkpoint field visitor (sim/checkpoint.hh). The layout is
     * serialized by value and rebuilt as a fresh shared_ptr on
     * restore: nothing in the machine observes layout pointer
     * identity, only the scalar/vectorCores contents.
     */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(op, addr, data, src, srcPc, reqId, destReg, sizeWords,
           variant, baseCoreOff, spadOffset, respPerCore, wordLo,
           wordHi);
        bool present = group != nullptr;
        ar(present);
        if constexpr (Ar::isReader) {
            if (present) {
                auto g = std::make_shared<GroupLayout>();
                ar(g->scalar, g->vectorCores);
                group = std::move(g);
            } else {
                group = nullptr;
            }
        } else {
            if (present) {
                CoreId scalar = group->scalar;
                std::vector<CoreId> vcs = group->vectorCores;
                ar(scalar, vcs);
            }
        }
    }
};

/** A single-word response from an LLC bank to a tile. */
struct MemResp
{
    CoreId dst = -1;
    Addr addr = 0;             ///< Source global address (debugging).
    Word data = 0;
    bool toSpad = false;       ///< Deliver into scratchpad vs. register.
    Word spadOffset = 0;       ///< Byte offset within the scratchpad.
    std::uint32_t reqId = 0;
    RegIdx destReg = 0;
    CoreId srcCore = -1;       ///< Requesting core (sanitizer attribution).
    int srcPc = -1;            ///< Its issuing pc.

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(dst, addr, data, toSpad, spadOffset, reqId, destReg,
           srcCore, srcPc);
    }
};

/** Remote scratchpad store (shuffles, Section 2.4). */
struct SpadWrite
{
    CoreId dst = -1;
    Word spadOffset = 0;       ///< Byte offset within the scratchpad.
    Word data = 0;
    CoreId src = -1;           ///< Storing core (sanitizer attribution).
    int srcPc = -1;            ///< Its issuing pc.

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(dst, spadOffset, data, src, srcPc);
    }
};

/** What a NoC packet carries. */
enum class PacketKind : std::uint8_t
{
    MemReqKind,
    MemRespKind,
    SpadWriteKind,
};

/** A packet on the data NoC. Payload size drives link bandwidth use. */
struct Packet
{
    int srcNode = -1;
    int dstNode = -1;
    int words = 1;             ///< Payload words (>= 1, header folded in).
    PacketKind kind = PacketKind::MemReqKind;
    MemReq req;
    MemResp resp;
    SpadWrite spadWrite;

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(srcNode, dstNode, words, kind, req, resp, spadWrite);
    }
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_MSG_HH
