/**
 * @file
 * A tile's explicitly managed data scratchpad (4 kB, 2-cycle hit)
 * augmented with the frame bookkeeping of Section 3.3: a small set of
 * counters (five 10-bit counters in Rockcress) tracks how many words
 * have arrived in each open frame, allowing out-of-order arrival
 * within a frame while enforcing in-order consumption of frames.
 *
 * The scratchpad also hosts the optional *frame sanitizer*: a shadow
 * state per frame-region word (free / filling / armed / consuming)
 * that tracks the DAE handover protocol at word granularity and flags
 * cross-core interleavings the static race detector
 * (analysis/racecheck.hh) is supposed to reject — remote fills
 * landing on words already filled or being consumed, and local
 * accesses to words still owned by the producer. Violations are
 * counted in the "san_violations" stat and the first few are kept as
 * attributed records (writer core + pc, prior owner + pc).
 */

#ifndef ROCKCRESS_MEM_SCRATCHPAD_HH
#define ROCKCRESS_MEM_SCRATCHPAD_HH

#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace rockcress
{

/** Frame-sanitizer shadow state of one frame-region word. */
enum class SpadWordState : std::uint8_t
{
    Free,       ///< Not part of any in-flight frame round.
    Filling,    ///< A remote fill has landed; frame not yet complete.
    Armed,      ///< Frame counter full; awaiting frame_start handover.
    Consuming,  ///< Handed to the consumer; owned until remem.
};

const char *spadWordStateName(SpadWordState s);

/** One attributed frame-sanitizer violation. */
struct SpadSanRecord
{
    std::string kind;       ///< double-fill | fill-on-consume |
                            ///< consume-before-handover.
    CoreId owner = -1;      ///< Scratchpad whose word was raced.
    Addr offset = 0;        ///< Byte offset of the raced word.
    SpadWordState prior = SpadWordState::Free;
    CoreId accessCore = -1; ///< Core performing the offending access.
    int accessPc = -1;      ///< Its instruction pc (-1 when unknown).
    CoreId priorCore = -1;  ///< Core that drove the word into `prior`.
    int priorPc = -1;

    std::string str() const;

    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(kind, owner, offset, prior, accessCore, accessPc, priorCore,
           priorPc);
    }
};

/** One core's scratchpad: functional storage plus DAE frame queue. */
class Scratchpad
{
  public:
    /**
     * @param owner Owning core (for diagnostics).
     * @param size_bytes Capacity (Table 1a: 4 kB).
     * @param num_counters Hardware frame counters (Rockcress: 5).
     */
    Scratchpad(CoreId owner, Addr size_bytes, int num_counters,
               const StatScope &stats);

    /**
     * @name Functional access (local loads/stores, 2-cycle hit).
     * @param pc Issuing instruction pc (sanitizer attribution only).
     */
    ///@{
    Word readWord(Addr offset, int pc = -1) const;
    void writeWord(Addr offset, Word data, int pc = -1);
    ///@}

    /**
     * Configure the frame queue (CSR write before forming a group).
     * Allocates frame_size * num_frames words at offset 0; the rest
     * of the scratchpad remains free for program data and stack.
     * Passing 0, 0 disables frames.
     */
    void configureFrames(int frame_size_words, int num_frames);

    /**
     * A word arriving from the data network. Bumps the counter of the
     * frame containing the destination address when it lands in the
     * frame region. src_core/src_pc attribute the originating store
     * (sanitizer only; -1 when unknown).
     *
     * @return True when this word completed the HEAD frame — the only
     * arrival that can unblock the owning core's tick (frameReady()
     * edge). Everything else the core reads from the scratchpad
     * (canAcceptFrameWrite, data words) is unaffected by arrivals or
     * is only sampled while the core is demonstrably awake, so the
     * fast-tick sink wrappers use this to suppress spurious wakes.
     */
    bool networkWrite(Addr offset, Word data, CoreId src_core = -1,
                      int src_pc = -1);

    /** @name DAE consumption (frame_start / remem). */
    ///@{
    /** Is the frame at the head of the queue completely filled? */
    bool frameReady() const;
    /** Byte offset of the head frame (frame_start writeback value). */
    Addr headFrameByteOffset() const;
    /**
     * A frame_start just handed the head frame to the consumer at pc.
     * Marks its words Consuming (sanitizer) and emits a Consume trace
     * event. No-op when frames are disabled.
     */
    void beginConsume(int pc);
    /**
     * Free the head frame: shift counters left (remem). pc attributes
     * the remem in the trace (-1 when unknown).
     */
    void freeFrame(int pc = -1);
    ///@}

    /**
     * Scalar-side guard: may a network write to this offset be
     * initiated now, i.e. does its frame fall within the counter
     * window? (With correctly paced codegen this is always true; the
     * guard converts pacing bugs into visible stalls.)
     */
    bool canAcceptFrameWrite(Addr offset) const;

    /** @name Frame sanitizer (RunOverrides::spSan). */
    ///@{
    /** Turn on shadow-state tracking (off by default: zero cost). */
    void enableSanitizer();
    bool sanitizerEnabled() const { return sanEnabled_; }
    /** Total violations flagged on this scratchpad. */
    std::uint64_t sanViolationCount() const { return sanCount_; }
    /** The first few violations, in flag order, with attribution. */
    const std::vector<SpadSanRecord> &sanRecords() const
    {
        return sanRecords_;
    }
    ///@}

    /**
     * Attach (null: detach) the trace sink. While attached, frame
     * lifecycle transitions (Fill/Armed/Consume/Free) are recorded.
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }

    /** Words per frame (0 when frames are disabled). */
    int frameSizeWords() const { return frameSize_; }
    int numFrames() const { return numFrames_; }
    int numCounters() const { return numCounters_; }

    Addr sizeBytes() const { return size_; }

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(words_, frameSize_, numFrames_, head_, counters_,
           sanEnabled_, shadow_, sanCount_, sanRecords_);
    }

  private:
    /** Shadow word: state plus who drove it into that state. */
    struct Shadow
    {
        SpadWordState st = SpadWordState::Free;
        CoreId core = -1;
        int pc = -1;

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(st, core, pc);
        }
    };

    /** Frame-queue slot delta of an offset relative to the head. */
    int frameDelta(Addr offset) const;
    bool inFrameRegion(Addr offset) const;
    /** Record one violation (mutable: reads may flag too). */
    void sanFlag(const char *kind, Addr offset, const Shadow &prior,
                 CoreId access_core, int access_pc) const;
    /** Counter for slot just filled: Filling words become Armed. */
    void armSlot(int slot);
    /** Record one frame lifecycle event (abs_frame: head_-relative). */
    void traceFrame(FramePhase phase, long abs_frame, Addr offset,
                    int pc) const;

    CoreId owner_;
    Addr size_;
    int numCounters_;
    std::vector<Word> words_;

    int frameSize_ = 0;    ///< Words per frame; 0 = disabled.
    int numFrames_ = 0;
    long head_ = 0;        ///< Absolute index of the head frame.
    std::vector<int> counters_;

    TraceSink *trace_ = nullptr;

    bool sanEnabled_ = false;
    std::vector<Shadow> shadow_;   ///< One per frame-region word.
    mutable std::uint64_t sanCount_ = 0;
    mutable std::vector<SpadSanRecord> sanRecords_;

    std::uint64_t *statReads_;
    std::uint64_t *statWrites_;
    std::uint64_t *statNetworkWrites_;
    std::uint64_t *statSanViolations_;
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_SCRATCHPAD_HH
