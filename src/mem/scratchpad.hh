/**
 * @file
 * A tile's explicitly managed data scratchpad (4 kB, 2-cycle hit)
 * augmented with the frame bookkeeping of Section 3.3: a small set of
 * counters (five 10-bit counters in Rockcress) tracks how many words
 * have arrived in each open frame, allowing out-of-order arrival
 * within a frame while enforcing in-order consumption of frames.
 */

#ifndef ROCKCRESS_MEM_SCRATCHPAD_HH
#define ROCKCRESS_MEM_SCRATCHPAD_HH

#include <deque>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace rockcress
{

/** One core's scratchpad: functional storage plus DAE frame queue. */
class Scratchpad
{
  public:
    /**
     * @param owner Owning core (for diagnostics).
     * @param size_bytes Capacity (Table 1a: 4 kB).
     * @param num_counters Hardware frame counters (Rockcress: 5).
     */
    Scratchpad(CoreId owner, Addr size_bytes, int num_counters,
               const StatScope &stats);

    /** @name Functional access (local loads/stores, 2-cycle hit). */
    ///@{
    Word readWord(Addr offset) const;
    void writeWord(Addr offset, Word data);
    ///@}

    /**
     * Configure the frame queue (CSR write before forming a group).
     * Allocates frame_size * num_frames words at offset 0; the rest
     * of the scratchpad remains free for program data and stack.
     * Passing 0, 0 disables frames.
     */
    void configureFrames(int frame_size_words, int num_frames);

    /**
     * A word arriving from the data network. Bumps the counter of the
     * frame containing the destination address when it lands in the
     * frame region.
     */
    void networkWrite(Addr offset, Word data);

    /** @name DAE consumption (frame_start / remem). */
    ///@{
    /** Is the frame at the head of the queue completely filled? */
    bool frameReady() const;
    /** Byte offset of the head frame (frame_start writeback value). */
    Addr headFrameByteOffset() const;
    /** Free the head frame: shift counters left (remem). */
    void freeFrame();
    ///@}

    /**
     * Scalar-side guard: may a network write to this offset be
     * initiated now, i.e. does its frame fall within the counter
     * window? (With correctly paced codegen this is always true; the
     * guard converts pacing bugs into visible stalls.)
     */
    bool canAcceptFrameWrite(Addr offset) const;

    /** Words per frame (0 when frames are disabled). */
    int frameSizeWords() const { return frameSize_; }
    int numFrames() const { return numFrames_; }
    int numCounters() const { return numCounters_; }

    Addr sizeBytes() const { return size_; }

  private:
    /** Frame-queue slot delta of an offset relative to the head. */
    int frameDelta(Addr offset) const;
    bool inFrameRegion(Addr offset) const;

    CoreId owner_;
    Addr size_;
    int numCounters_;
    std::vector<Word> words_;

    int frameSize_ = 0;    ///< Words per frame; 0 = disabled.
    int numFrames_ = 0;
    long head_ = 0;        ///< Absolute index of the head frame.
    std::vector<int> counters_;

    std::uint64_t *statReads_;
    std::uint64_t *statWrites_;
    std::uint64_t *statNetworkWrites_;
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_SCRATCHPAD_HH
