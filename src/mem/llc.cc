#include "mem/llc.hh"

#include <algorithm>

#include "sim/log.hh"

namespace rockcress
{

LlcBank::LlcBank(int bank, int node, const LlcParams &params, Mesh &mesh,
                 Dram &dram, MainMemory &mem, const AddrMap &map,
                 std::vector<int> coreNodeOf, const StatScope &stats)
    : bank_(bank), node_(node), params_(params), mesh_(mesh), dram_(dram),
      mem_(mem), map_(map), coreNodeOf_(std::move(coreNodeOf)),
      tags_(params.capacityBytes, params.ways, params.lineBytes, stats)
{
    statWideAccesses_ = stats.counter("wide_accesses");
    statWordReads_ = stats.counter("word_reads");
    statWordWrites_ = stats.counter("word_writes");
    statRespWords_ = stats.counter("response_words");
}

void
LlcBank::receive(const Packet &pkt)
{
    if (pkt.kind != PacketKind::MemReqKind)
        panic("llc bank ", bank_, ": unexpected packet kind");
    reqQueue_.push_back(pkt.req);
}

CoreId
LlcBank::responseDest(const MemReq &req, int cnt) const
{
    switch (req.variant) {
      case VloadVariant::Self:
        return req.src;
      case VloadVariant::Single:
        return req.group->vectorCores.at(
            static_cast<size_t>(req.baseCoreOff));
      case VloadVariant::Group:
        return req.group->vectorCores.at(static_cast<size_t>(
            req.baseCoreOff + cnt / req.respPerCore));
    }
    panic("llc: bad vload variant");
}

void
LlcBank::traceReq(const MemReq &req, Cycle now, bool hit) const
{
    TraceEvent ev;
    ev.cycle = static_cast<std::uint32_t>(now);
    ev.tile = static_cast<std::uint16_t>(bank_);
    ev.kind = static_cast<std::uint8_t>(TraceKind::LlcReq);
    ev.sub = static_cast<std::uint8_t>(static_cast<int>(req.op) * 2 +
                                       (hit ? 1 : 0));
    ev.pc = req.srcPc;
    ev.a = static_cast<std::uint32_t>(req.addr);
    ev.b = static_cast<std::uint64_t>(req.src);
    trace_->record(ev);
}

void
LlcBank::enqueueResponses(const MemReq &req)
{
    if (trace_ != nullptr) {
        TraceEvent ev;
        ev.cycle = static_cast<std::uint32_t>(trace_->now());
        ev.tile = static_cast<std::uint16_t>(bank_);
        ev.kind = static_cast<std::uint8_t>(TraceKind::LlcResp);
        ev.sub = 0;
        ev.pc = req.srcPc;
        ev.a = static_cast<std::uint32_t>(req.addr);
        ev.b = static_cast<std::uint64_t>(req.wordHi - req.wordLo);
        trace_->record(ev);
    }
    ActiveResp &ar = respQueue_.emplace_back();
    ar.req = req;
    ar.cnt = req.wordLo;
    // One division at stream start; emitOneWord then carries the
    // per-core word index and core index incrementally (the modulo
    // and divide were measurable at one response word per cycle).
    ar.wordInCore = req.wordLo % req.respPerCore;
    ar.coreIdx = req.wordLo / req.respPerCore;
    // Data is read functionally when the line becomes available (hit
    // or fill completion); the serial response engine then streams
    // the captured words one per cycle.
    ar.snap.reserve(static_cast<size_t>(req.wordHi - req.wordLo));
    for (int c = req.wordLo; c < req.wordHi; ++c)
        ar.snap.push_back(
            mem_.readWord(req.addr + static_cast<Addr>(c) * wordBytes));
}

void
LlcBank::startRequest(const MemReq &req, Cycle now)
{
    Addr line = map_.lineOf(req.addr +
                            static_cast<Addr>(req.wordLo) * wordBytes);
    bool is_write = req.op == MemOp::WriteWord;

    switch (req.op) {
      case MemOp::ReadWide: *statWideAccesses_ += 1; break;
      case MemOp::ReadWord: *statWordReads_ += 1; break;
      case MemOp::WriteWord: *statWordWrites_ += 1; break;
    }

    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        // Coalesced under an outstanding fill: a miss for attribution.
        if (trace_ != nullptr)
            traceReq(req, now, false);
        it->second.waiting.push_back(req);
        return;
    }

    TagAccess result = tags_.access(line, is_write);
    if (trace_ != nullptr)
        traceReq(req, now, result.hit);
    if (result.hit) {
        if (!is_write)
            enqueueResponses(req);
        return;
    }

    // Miss: fill from DRAM; a dirty victim costs write-back bandwidth.
    Addr bytes = params_.lineBytes +
                 (result.victimDirty ? params_.lineBytes : 0);
    Mshr mshr;
    mshr.ready = dram_.request(bank_, bytes, now);
    if (!is_write)
        mshr.waiting.push_back(req);
    mshrMinReady_ = std::min(mshrMinReady_, mshr.ready);
    mshrs_.emplace(line, std::move(mshr));
}

void
LlcBank::emitOneWord(Cycle)
{
    if (respQueue_.empty())
        return;
    ActiveResp &ar = respQueue_.front();
    const MemReq &req = ar.req;

    MemResp resp;
    resp.dst = req.variant == VloadVariant::Group
                   ? req.group->vectorCores.at(static_cast<size_t>(
                         req.baseCoreOff + ar.coreIdx))
                   : responseDest(req, ar.cnt);
    resp.addr = req.addr + static_cast<Addr>(ar.cnt) * wordBytes;
    resp.data = ar.snap[static_cast<size_t>(ar.cnt - ar.req.wordLo)];
    resp.toSpad = req.op == MemOp::ReadWide;
    resp.spadOffset =
        req.spadOffset +
        static_cast<Word>(ar.wordInCore) * wordBytes;
    resp.reqId = req.reqId;
    resp.destReg = req.destReg;
    resp.srcCore = req.src;
    resp.srcPc = req.srcPc;

    Packet pkt;
    pkt.srcNode = node_;
    pkt.dstNode = coreNodeOf_.at(static_cast<size_t>(resp.dst));
    pkt.words = 1;
    pkt.kind = PacketKind::MemRespKind;
    pkt.resp = resp;
    mesh_.send(std::move(pkt));
    *statRespWords_ += 1;

    ++ar.cnt;
    if (++ar.wordInCore == req.respPerCore) {
        ar.wordInCore = 0;
        ++ar.coreIdx;
    }
    if (ar.cnt >= req.wordHi)
        respQueue_.pop_front();
}

void
LlcBank::tick(Cycle now)
{
    // Retire completed fills (skip the sweep while none is due).
    if (mshrMinReady_ <= now) {
        Cycle next_ready = kNeverTick;
        for (auto it = mshrs_.begin(); it != mshrs_.end();) {
            if (it->second.ready <= now) {
                for (const MemReq &req : it->second.waiting) {
                    if (req.op != MemOp::WriteWord)
                        enqueueResponses(req);
                }
                it = mshrs_.erase(it);
            } else {
                next_ready = std::min(next_ready, it->second.ready);
                ++it;
            }
        }
        mshrMinReady_ = next_ready;
    }

    // Accept one request per cycle (tag port).
    if (!reqQueue_.empty()) {
        MemReq req = reqQueue_.front();
        reqQueue_.pop_front();
        startRequest(req, now);
    }

    // One response word per cycle per CPU-side port.
    emitOneWord(now);
}

Cycle
LlcBank::nextTickAt(Cycle now)
{
    // Queued requests and active response streams advance every
    // cycle; otherwise the only future work is a fill completing.
    // The machine's sink wrapper wakes us on request arrival.
    if (!reqQueue_.empty() || !respQueue_.empty())
        return now + 1;
    if (mshrMinReady_ == kNeverTick)
        return kNeverTick;
    return std::max(mshrMinReady_, now + 1);
}

bool
LlcBank::idle() const
{
    return reqQueue_.empty() && mshrs_.empty() && respQueue_.empty();
}

} // namespace rockcress
