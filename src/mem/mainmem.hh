/**
 * @file
 * Functional backing store for the global heap. Timing is modeled by
 * the LLC/DRAM components; data lives here so the cache hierarchy can
 * stay tag-only (the address spaces are disjoint and non-coherent,
 * Section 3.1, so a single functional image is exact).
 */

#ifndef ROCKCRESS_MEM_MAINMEM_HH
#define ROCKCRESS_MEM_MAINMEM_HH

#include <vector>

#include "mem/addrmap.hh"
#include "sim/types.hh"

namespace rockcress
{

/** Word-addressable functional memory for the global heap. */
class MainMemory
{
  public:
    /** @param bytes Heap capacity starting at AddrMap::globalBase. */
    explicit MainMemory(Addr bytes)
        : words_(bytes / wordBytes, 0), bytes_(bytes)
    {}

    Word readWord(Addr a) const;
    void writeWord(Addr a, Word w);

    float readFloat(Addr a) const { return wordToFloat(readWord(a)); }
    void writeFloat(Addr a, float f) { writeWord(a, floatToWord(f)); }

    Addr capacity() const { return bytes_; }

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(words_);
    }

  private:
    Addr index(Addr a) const;

    std::vector<Word> words_;
    Addr bytes_;
};

inline Addr
MainMemory::index(Addr a) const
{
    if (a < AddrMap::globalBase || a >= AddrMap::globalBase + bytes_)
        fatal("mainmem: address ", a, " outside the global heap");
    if (a % wordBytes != 0)
        fatal("mainmem: unaligned word access at ", a);
    return (a - AddrMap::globalBase) / wordBytes;
}

inline Word
MainMemory::readWord(Addr a) const
{
    return words_[index(a)];
}

inline void
MainMemory::writeWord(Addr a, Word w)
{
    words_[index(a)] = w;
}

} // namespace rockcress

#endif // ROCKCRESS_MEM_MAINMEM_HH
