/**
 * @file
 * Fixed-latency, fixed-bandwidth DRAM model (Table 1a: 60 ns latency,
 * 16 GB/s aggregate). Each LLC slice owns one channel; per-channel
 * bandwidth is the aggregate divided by the number of channels.
 */

#ifndef ROCKCRESS_MEM_DRAM_HH
#define ROCKCRESS_MEM_DRAM_HH

#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace rockcress
{

/** All DRAM channels of the machine. */
class Dram
{
  public:
    /**
     * @param channels Number of channels (one per LLC bank).
     * @param total_bytes_per_cycle Aggregate bandwidth at 1 GHz
     *        (16 GB/s -> 16 bytes per cycle).
     * @param latency_cycles Access latency (60 ns -> 60 cycles).
     * @param stats Stat scope ("dram.").
     */
    Dram(int channels, double total_bytes_per_cycle, Cycle latency_cycles,
         const StatScope &stats);

    /**
     * Schedule a transfer of `bytes` on a channel.
     * @return The cycle at which the data is available.
     */
    Cycle request(int channel, Addr bytes, Cycle now);

    /** True when every channel has drained its queue. */
    bool idle(Cycle now) const;

    Cycle latency() const { return latency_; }

    /** Checkpoint field visitor (sim/checkpoint.hh). The bandwidth
     * horizons are the channels' only run-varying state; rate and
     * latency are construction parameters. */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(freeAt_);
    }

  private:
    std::vector<double> freeAt_;   ///< Per-channel bandwidth horizon.
    double cyclesPerByte_;
    Cycle latency_;
    std::uint64_t *statReads_;
    std::uint64_t *statBytes_;
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_DRAM_HH
