/**
 * @file
 * A tile's private instruction cache (Table 1a: 4 kB, 2-way, 1-cycle
 * hit). Vector cores power it down entirely and fetch from the inet;
 * the energy model charges one I-cache access per fetched instruction
 * on frontend-enabled cores only (Section 5.2).
 *
 * Misses refill with a flat latency rather than traversing the data
 * NoC: the paper's kernels are small and icache misses are cold-only,
 * so the simplification has no steady-state effect (see DESIGN.md).
 */

#ifndef ROCKCRESS_MEM_ICACHE_HH
#define ROCKCRESS_MEM_ICACHE_HH

#include "mem/cachetags.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rockcress
{

/** Tag-only I-cache model; instruction bits come from the program. */
class ICache
{
  public:
    struct Params
    {
        Addr capacityBytes = 4 * 1024;
        int ways = 2;
        Addr lineBytes = 64;
        Cycle hitLatency = 1;
        Cycle missLatency = 30;
    };

    ICache(const Params &params, const StatScope &stats)
        : params_(params),
          tags_(params.capacityBytes, params.ways, params.lineBytes,
                stats)
    {}

    /**
     * Fetch the instruction at the given PC (instruction index).
     * @return Cycle at which the instruction is available.
     */
    Cycle
    fetch(int pc, Cycle now)
    {
        Addr addr = static_cast<Addr>(pc) * wordBytes;
        TagAccess r = tags_.access(addr, false);
        return now + (r.hit ? params_.hitLatency : params_.missLatency);
    }

    void flush() { tags_.flush(); }

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(tags_);
    }

  private:
    Params params_;
    CacheTags tags_;
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_ICACHE_HH
