/**
 * @file
 * A generic set-associative tag array with tree pseudo-LRU
 * replacement and write-back dirty tracking. Used by the LLC banks
 * (Section 5.1: write-back, pseudo-LRU, 64-byte lines) and by the
 * GPU's TCP/TCC caches.
 */

#ifndef ROCKCRESS_MEM_CACHETAGS_HH
#define ROCKCRESS_MEM_CACHETAGS_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace rockcress
{

/** Result of a tag lookup-and-update. */
struct TagAccess
{
    bool hit = false;
    bool victimValid = false;   ///< A line was evicted.
    bool victimDirty = false;   ///< The evicted line needs write-back.
    Addr victimAddr = 0;        ///< Line address of the victim.
};

/** Set-associative tag array; data lives in the functional memory. */
class CacheTags
{
  public:
    /**
     * @param capacity_bytes Total capacity.
     * @param ways Associativity.
     * @param line_bytes Line size.
     * @param stats Stat scope for accesses/hits/misses/writebacks.
     */
    CacheTags(Addr capacity_bytes, int ways, Addr line_bytes,
              const StatScope &stats);

    /**
     * Probe without allocating or touching replacement state.
     * @return True on hit.
     */
    bool probe(Addr addr) const;

    /**
     * Access a line: on miss, allocate (evicting the pseudo-LRU way).
     * @param addr Any address within the line.
     * @param is_write Marks the line dirty.
     */
    TagAccess access(Addr addr, bool is_write);

    /** Invalidate everything (between kernels in some experiments). */
    void flush();

    Addr lineBytes() const { return lineBytes_; }
    int numSets() const { return numSets_; }
    int ways() const { return ways_; }

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(lines_, plru_);
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(valid, dirty, tag);
        }
    };

    Addr setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    int plruVictim(int set) const;
    void plruTouch(int set, int way);

    Addr lineBytes_;
    int ways_;
    int numSets_;
    std::vector<Line> lines_;       ///< set-major [set*ways + way].
    std::vector<std::uint64_t> plru_;  ///< One tree bitmask per set.

    std::uint64_t *statAccesses_;
    std::uint64_t *statHits_;
    std::uint64_t *statMisses_;
    std::uint64_t *statWritebacks_;
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_CACHETAGS_HH
