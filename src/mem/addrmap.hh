/**
 * @file
 * The global address map. Scratchpads occupy a low window (one
 * 64 KiB stride per core); the DRAM-backed global heap, striped
 * across LLC banks by cache line, starts at globalBase.
 */

#ifndef ROCKCRESS_MEM_ADDRMAP_HH
#define ROCKCRESS_MEM_ADDRMAP_HH

#include "sim/log.hh"
#include "sim/types.hh"

namespace rockcress
{

/** Static layout of the 32-bit physical address space. */
struct AddrMap
{
    /** Address stride between consecutive cores' scratchpad windows. */
    static constexpr Addr spadStride = 0x10000;

    /** Base of the DRAM-backed global heap. */
    static constexpr Addr globalBase = 0x40000000;

    int numCores = 0;
    Addr lineBytes = 64;
    int numBanks = 16;

    bool isSpad(Addr a) const { return a < globalBase; }
    bool isGlobal(Addr a) const { return a >= globalBase; }

    CoreId
    spadCore(Addr a) const
    {
        CoreId c = static_cast<CoreId>(a / spadStride);
        if (c >= numCores)
            fatal("addrmap: scratchpad address ", a,
                  " beyond core count ", numCores);
        return c;
    }

    Addr spadOffset(Addr a) const { return a % spadStride; }

    Addr
    spadBase(CoreId c) const
    {
        return static_cast<Addr>(c) * spadStride;
    }

    /** LLC banks partition the heap by striping cache lines. */
    int
    bankOf(Addr a) const
    {
        return static_cast<int>(((a - globalBase) / lineBytes) %
                                static_cast<Addr>(numBanks));
    }

    /** Align an address down to its containing line. */
    Addr lineOf(Addr a) const { return a - (a % lineBytes); }
};

} // namespace rockcress

#endif // ROCKCRESS_MEM_ADDRMAP_HH
