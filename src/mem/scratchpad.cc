#include "mem/scratchpad.hh"

#include <sstream>

#include "sim/log.hh"

namespace rockcress
{

namespace
{

/** Cap on retained violation records per scratchpad. */
constexpr size_t kMaxSanRecords = 16;

} // namespace

const char *
spadWordStateName(SpadWordState s)
{
    switch (s) {
    case SpadWordState::Free:
        return "free";
    case SpadWordState::Filling:
        return "filling";
    case SpadWordState::Armed:
        return "armed";
    case SpadWordState::Consuming:
        return "consuming";
    }
    return "?";
}

std::string
SpadSanRecord::str() const
{
    std::ostringstream os;
    os << "spad " << owner << " +" << offset << ": " << kind
       << " by core " << accessCore << " pc " << accessPc
       << " (word " << spadWordStateName(prior) << " since core "
       << priorCore << " pc " << priorPc << ")";
    return os.str();
}

Scratchpad::Scratchpad(CoreId owner, Addr size_bytes, int num_counters,
                       const StatScope &stats)
    : owner_(owner), size_(size_bytes), numCounters_(num_counters),
      words_(size_bytes / wordBytes, 0)
{
    statReads_ = stats.counter("reads");
    statWrites_ = stats.counter("writes");
    statNetworkWrites_ = stats.counter("network_writes");
    statSanViolations_ = stats.counter("san_violations");
}

void
Scratchpad::enableSanitizer()
{
    sanEnabled_ = true;
    shadow_.assign(
        static_cast<size_t>(frameSize_) * static_cast<size_t>(numFrames_),
        Shadow{});
}

void
Scratchpad::sanFlag(const char *kind, Addr offset, const Shadow &prior,
                    CoreId access_core, int access_pc) const
{
    *statSanViolations_ += 1;
    ++sanCount_;
    if (sanRecords_.size() >= kMaxSanRecords)
        return;
    SpadSanRecord r;
    r.kind = kind;
    r.owner = owner_;
    r.offset = offset;
    r.prior = prior.st;
    r.accessCore = access_core;
    r.accessPc = access_pc;
    r.priorCore = prior.core;
    r.priorPc = prior.pc;
    sanRecords_.push_back(std::move(r));
}

Word
Scratchpad::readWord(Addr offset, int pc) const
{
    if (offset % wordBytes != 0 || offset >= size_)
        fatal("spad ", owner_, ": bad read offset ", offset);
    *statReads_ += 1;
    if (sanEnabled_ && inFrameRegion(offset)) {
        const Shadow &w = shadow_[offset / wordBytes];
        // Reading a word the producer still owns (pre-handover).
        if (w.st == SpadWordState::Filling ||
            w.st == SpadWordState::Armed)
            sanFlag("consume-before-handover", offset, w, owner_, pc);
    }
    return words_[offset / wordBytes];
}

void
Scratchpad::writeWord(Addr offset, Word data, int pc)
{
    if (offset % wordBytes != 0 || offset >= size_)
        fatal("spad ", owner_, ": bad write offset ", offset);
    *statWrites_ += 1;
    if (sanEnabled_ && inFrameRegion(offset)) {
        const Shadow &w = shadow_[offset / wordBytes];
        if (w.st == SpadWordState::Filling ||
            w.st == SpadWordState::Armed)
            sanFlag("consume-before-handover", offset, w, owner_, pc);
    }
    words_[offset / wordBytes] = data;
}

void
Scratchpad::configureFrames(int frame_size_words, int num_frames)
{
    if (frame_size_words == 0 && num_frames == 0) {
        frameSize_ = 0;
        numFrames_ = 0;
        counters_.clear();
        head_ = 0;
        shadow_.clear();
        return;
    }
    if (frame_size_words <= 0 || num_frames <= 0)
        fatal("spad ", owner_, ": bad frame config");
    if (num_frames < numCounters_)
        fatal("spad ", owner_, ": fewer frames (", num_frames,
              ") than hardware counters (", numCounters_, ")");
    Addr region = static_cast<Addr>(frame_size_words) *
                  static_cast<Addr>(num_frames) * wordBytes;
    if (region > size_)
        fatal("spad ", owner_, ": frame region ", region,
              "B exceeds scratchpad size ", size_, "B");
    if (frame_size_words >= 1024)
        fatal("spad ", owner_, ": frame size exceeds a 10-bit counter");
    frameSize_ = frame_size_words;
    numFrames_ = num_frames;
    head_ = 0;
    counters_.assign(static_cast<size_t>(numCounters_), 0);
    if (sanEnabled_)
        shadow_.assign(static_cast<size_t>(frameSize_) *
                           static_cast<size_t>(numFrames_),
                       Shadow{});
}

bool
Scratchpad::inFrameRegion(Addr offset) const
{
    return frameSize_ > 0 &&
           offset < static_cast<Addr>(frameSize_) *
                        static_cast<Addr>(numFrames_) * wordBytes;
}

int
Scratchpad::frameDelta(Addr offset) const
{
    int slot = static_cast<int>(offset / wordBytes) / frameSize_;
    int head_slot = static_cast<int>(head_ % numFrames_);
    return (slot - head_slot + numFrames_) % numFrames_;
}

void
Scratchpad::traceFrame(FramePhase phase, long abs_frame, Addr offset,
                       int pc) const
{
    TraceEvent ev;
    ev.cycle = static_cast<std::uint32_t>(trace_->now());
    ev.tile = static_cast<std::uint16_t>(owner_);
    ev.kind = static_cast<std::uint8_t>(TraceKind::Frame);
    ev.sub = static_cast<std::uint8_t>(phase);
    ev.pc = pc;
    ev.a = static_cast<std::uint32_t>(offset);
    ev.b = static_cast<std::uint64_t>(abs_frame);
    trace_->record(ev);
}

void
Scratchpad::armSlot(int slot)
{
    size_t lo = static_cast<size_t>(slot) *
                static_cast<size_t>(frameSize_);
    for (size_t i = lo; i < lo + static_cast<size_t>(frameSize_); ++i)
        if (shadow_[i].st == SpadWordState::Filling)
            shadow_[i].st = SpadWordState::Armed;
}

bool
Scratchpad::networkWrite(Addr offset, Word data, CoreId src_core,
                         int src_pc)
{
    if (offset % wordBytes != 0 || offset >= size_)
        fatal("spad ", owner_, ": bad network write offset ", offset);
    *statNetworkWrites_ += 1;
    words_[offset / wordBytes] = data;
    if (!inFrameRegion(offset))
        return false;
    // The sanitizer sees every arrival first, so protocol violations
    // are attributed even when the fill also trips a hard guard
    // (overfill / mis-paced run-ahead) below.
    if (sanEnabled_) {
        Shadow &w = shadow_[offset / wordBytes];
        switch (w.st) {
        case SpadWordState::Free:
            w = Shadow{SpadWordState::Filling, src_core, src_pc};
            break;
        case SpadWordState::Filling:
        case SpadWordState::Armed:
            sanFlag("double-fill", offset, w, src_core, src_pc);
            break;
        case SpadWordState::Consuming:
            sanFlag("fill-on-consume", offset, w, src_core, src_pc);
            break;
        }
    }
    int delta = frameDelta(offset);
    if (delta >= numCounters_)
        fatal("spad ", owner_, ": arrival for frame +", delta,
              " beyond the ", numCounters_,
              " hardware counters (mis-paced run-ahead)");
    int &cnt = counters_[static_cast<size_t>(delta)];
    if (++cnt > frameSize_)
        fatal("spad ", owner_, ": frame overfilled");
    if (trace_ != nullptr) {
        if (cnt == 1)
            traceFrame(FramePhase::Fill, head_ + delta, offset, src_pc);
        if (cnt == frameSize_)
            traceFrame(FramePhase::Armed, head_ + delta, offset,
                       src_pc);
    }
    if (sanEnabled_ && cnt == frameSize_)
        armSlot(static_cast<int>((head_ + delta) % numFrames_));
    return delta == 0 && cnt == frameSize_;
}

bool
Scratchpad::frameReady() const
{
    if (frameSize_ == 0)
        fatal("spad ", owner_, ": frame_start with frames unconfigured");
    return counters_[0] == frameSize_;
}

Addr
Scratchpad::headFrameByteOffset() const
{
    return static_cast<Addr>(head_ % numFrames_) *
           static_cast<Addr>(frameSize_) * wordBytes;
}

void
Scratchpad::beginConsume(int pc)
{
    if (frameSize_ == 0)
        return;
    if (trace_ != nullptr)
        traceFrame(FramePhase::Consume, head_, headFrameByteOffset(),
                   pc);
    if (!sanEnabled_)
        return;
    size_t lo = headFrameByteOffset() / wordBytes;
    for (size_t i = lo; i < lo + static_cast<size_t>(frameSize_); ++i)
        shadow_[i] = Shadow{SpadWordState::Consuming, owner_, pc};
}

void
Scratchpad::freeFrame(int pc)
{
    if (frameSize_ == 0)
        fatal("spad ", owner_, ": remem with frames unconfigured");
    if (counters_[0] != frameSize_)
        fatal("spad ", owner_, ": remem of a non-full frame");
    if (trace_ != nullptr)
        traceFrame(FramePhase::Free, head_, headFrameByteOffset(), pc);
    if (sanEnabled_) {
        size_t lo = headFrameByteOffset() / wordBytes;
        for (size_t i = lo; i < lo + static_cast<size_t>(frameSize_);
             ++i)
            shadow_[i] = Shadow{};
    }
    // Shift counters left; the rightmost count becomes zero.
    for (size_t i = 0; i + 1 < counters_.size(); ++i)
        counters_[i] = counters_[i + 1];
    counters_.back() = 0;
    ++head_;
}

bool
Scratchpad::canAcceptFrameWrite(Addr offset) const
{
    if (!inFrameRegion(offset))
        return true;
    return frameDelta(offset) < numCounters_;
}

} // namespace rockcress
