#include "mem/scratchpad.hh"

#include "sim/log.hh"

namespace rockcress
{

Scratchpad::Scratchpad(CoreId owner, Addr size_bytes, int num_counters,
                       const StatScope &stats)
    : owner_(owner), size_(size_bytes), numCounters_(num_counters),
      words_(size_bytes / wordBytes, 0)
{
    statReads_ = stats.counter("reads");
    statWrites_ = stats.counter("writes");
    statNetworkWrites_ = stats.counter("network_writes");
}

Word
Scratchpad::readWord(Addr offset) const
{
    if (offset % wordBytes != 0 || offset >= size_)
        fatal("spad ", owner_, ": bad read offset ", offset);
    *statReads_ += 1;
    return words_[offset / wordBytes];
}

void
Scratchpad::writeWord(Addr offset, Word data)
{
    if (offset % wordBytes != 0 || offset >= size_)
        fatal("spad ", owner_, ": bad write offset ", offset);
    *statWrites_ += 1;
    words_[offset / wordBytes] = data;
}

void
Scratchpad::configureFrames(int frame_size_words, int num_frames)
{
    if (frame_size_words == 0 && num_frames == 0) {
        frameSize_ = 0;
        numFrames_ = 0;
        counters_.clear();
        head_ = 0;
        return;
    }
    if (frame_size_words <= 0 || num_frames <= 0)
        fatal("spad ", owner_, ": bad frame config");
    if (num_frames < numCounters_)
        fatal("spad ", owner_, ": fewer frames (", num_frames,
              ") than hardware counters (", numCounters_, ")");
    Addr region = static_cast<Addr>(frame_size_words) *
                  static_cast<Addr>(num_frames) * wordBytes;
    if (region > size_)
        fatal("spad ", owner_, ": frame region ", region,
              "B exceeds scratchpad size ", size_, "B");
    if (frame_size_words >= 1024)
        fatal("spad ", owner_, ": frame size exceeds a 10-bit counter");
    frameSize_ = frame_size_words;
    numFrames_ = num_frames;
    head_ = 0;
    counters_.assign(static_cast<size_t>(numCounters_), 0);
}

bool
Scratchpad::inFrameRegion(Addr offset) const
{
    return frameSize_ > 0 &&
           offset < static_cast<Addr>(frameSize_) *
                        static_cast<Addr>(numFrames_) * wordBytes;
}

int
Scratchpad::frameDelta(Addr offset) const
{
    int slot = static_cast<int>(offset / wordBytes) / frameSize_;
    int head_slot = static_cast<int>(head_ % numFrames_);
    return (slot - head_slot + numFrames_) % numFrames_;
}

void
Scratchpad::networkWrite(Addr offset, Word data)
{
    if (offset % wordBytes != 0 || offset >= size_)
        fatal("spad ", owner_, ": bad network write offset ", offset);
    *statNetworkWrites_ += 1;
    words_[offset / wordBytes] = data;
    if (!inFrameRegion(offset))
        return;
    int delta = frameDelta(offset);
    if (delta >= numCounters_)
        fatal("spad ", owner_, ": arrival for frame +", delta,
              " beyond the ", numCounters_,
              " hardware counters (mis-paced run-ahead)");
    int &cnt = counters_[static_cast<size_t>(delta)];
    if (++cnt > frameSize_)
        fatal("spad ", owner_, ": frame overfilled");
}

bool
Scratchpad::frameReady() const
{
    if (frameSize_ == 0)
        fatal("spad ", owner_, ": frame_start with frames unconfigured");
    return counters_[0] == frameSize_;
}

Addr
Scratchpad::headFrameByteOffset() const
{
    return static_cast<Addr>(head_ % numFrames_) *
           static_cast<Addr>(frameSize_) * wordBytes;
}

void
Scratchpad::freeFrame()
{
    if (frameSize_ == 0)
        fatal("spad ", owner_, ": remem with frames unconfigured");
    if (counters_[0] != frameSize_)
        fatal("spad ", owner_, ": remem of a non-full frame");
    // Shift counters left; the rightmost count becomes zero.
    for (size_t i = 0; i + 1 < counters_.size(); ++i)
        counters_[i] = counters_[i + 1];
    counters_.back() = 0;
    ++head_;
}

bool
Scratchpad::canAcceptFrameWrite(Addr offset) const
{
    if (!inFrameRegion(offset))
        return true;
    return frameDelta(offset) < numCounters_;
}

} // namespace rockcress
