#include "mem/cachetags.hh"

#include "sim/log.hh"

namespace rockcress
{

namespace
{

bool
isPow2(Addr v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheTags::CacheTags(Addr capacity_bytes, int ways, Addr line_bytes,
                     const StatScope &stats)
    : lineBytes_(line_bytes), ways_(ways)
{
    if (!isPow2(line_bytes) || ways <= 0 || capacity_bytes == 0)
        fatal("cachetags: bad geometry");
    Addr lines = capacity_bytes / line_bytes;
    if (lines % static_cast<Addr>(ways) != 0)
        fatal("cachetags: capacity not divisible by ways*line");
    numSets_ = static_cast<int>(lines / static_cast<Addr>(ways));
    if (!isPow2(static_cast<Addr>(numSets_)))
        fatal("cachetags: number of sets must be a power of two");
    lines_.resize(lines);
    plru_.resize(static_cast<size_t>(numSets_), 0);

    statAccesses_ = stats.counter("accesses");
    statHits_ = stats.counter("hits");
    statMisses_ = stats.counter("misses");
    statWritebacks_ = stats.counter("writebacks");
}

Addr
CacheTags::setIndex(Addr addr) const
{
    return (addr / lineBytes_) & static_cast<Addr>(numSets_ - 1);
}

Addr
CacheTags::tagOf(Addr addr) const
{
    return addr / lineBytes_ / static_cast<Addr>(numSets_);
}

bool
CacheTags::probe(Addr addr) const
{
    Addr set = setIndex(addr);
    Addr tag = tagOf(addr);
    for (int w = 0; w < ways_; ++w) {
        const Line &l = lines_[set * static_cast<Addr>(ways_) +
                               static_cast<Addr>(w)];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

int
CacheTags::plruVictim(int set) const
{
    // Tree pseudo-LRU: walk internal nodes; bit 0 means "go left".
    std::uint64_t bits = plru_[static_cast<size_t>(set)];
    int node = 0;
    int way = 0;
    int levels = 0;
    for (int w = ways_; w > 1; w >>= 1)
        ++levels;
    for (int lvl = 0; lvl < levels; ++lvl) {
        int bit = static_cast<int>((bits >> node) & 1);
        way = (way << 1) | bit;
        node = 2 * node + 1 + bit;
    }
    return way;
}

void
CacheTags::plruTouch(int set, int way)
{
    // Flip bits along the path so the victim walk avoids this way.
    std::uint64_t &bits = plru_[static_cast<size_t>(set)];
    int levels = 0;
    for (int w = ways_; w > 1; w >>= 1)
        ++levels;
    int node = 0;
    for (int lvl = levels - 1; lvl >= 0; --lvl) {
        int bit = (way >> lvl) & 1;
        if (bit)
            bits &= ~(1ull << node);
        else
            bits |= (1ull << node);
        node = 2 * node + 1 + bit;
    }
}

TagAccess
CacheTags::access(Addr addr, bool is_write)
{
    *statAccesses_ += 1;
    TagAccess result;
    Addr set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *lines = &lines_[set * static_cast<Addr>(ways_)];

    for (int w = 0; w < ways_; ++w) {
        if (lines[w].valid && lines[w].tag == tag) {
            result.hit = true;
            if (is_write)
                lines[w].dirty = true;
            plruTouch(static_cast<int>(set), w);
            *statHits_ += 1;
            return result;
        }
    }

    *statMisses_ += 1;

    // Prefer an invalid way before evicting.
    int victim = -1;
    for (int w = 0; w < ways_; ++w) {
        if (!lines[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim < 0) {
        victim = plruVictim(static_cast<int>(set));
        result.victimValid = true;
        result.victimDirty = lines[victim].dirty;
        result.victimAddr = (lines[victim].tag *
                                 static_cast<Addr>(numSets_) +
                             set) *
                            lineBytes_;
        if (result.victimDirty)
            *statWritebacks_ += 1;
    }

    lines[victim].valid = true;
    lines[victim].dirty = is_write;
    lines[victim].tag = tag;
    plruTouch(static_cast<int>(set), victim);
    return result;
}

void
CacheTags::flush()
{
    for (Line &l : lines_)
        l = Line{};
    for (auto &b : plru_)
        b = 0;
}

} // namespace rockcress
