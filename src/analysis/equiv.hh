/**
 * @file
 * Translation validation for the software-defined vectorizer: prove
 * that the instructions the compiler *emitted* for each strip-mined
 * DAE stream are equivalent to the reference transcript its
 * VectorizationManifest recorded — per region (run-ahead prologue,
 * loop preheader, steady-state fill, vector body), up to the
 * documented lane remapping of group vloads.
 *
 * The proof strategy is standard translation validation:
 *  1. Structural fast path: a region whose emitted instructions are
 *     byte-identical to the manifest's reference copy is proved
 *     outright (this is the steady state for every shipped kernel —
 *     the manifest is captured from the same emission).
 *  2. Symbolic differential: a differing region is executed
 *     symbolically on both legs from a shared entry environment
 *     (analysis/symexec.hh) and proved equivalent iff the committed
 *     effect lists match — group vloads expanded through the lane
 *     distribution formula of the reference model — and every
 *     written register ends with the same term. The trip-count seat
 *     is additionally checked against the manifest's iteration count.
 *  3. Anything the engine cannot execute is rejected with a
 *     "structure" finding: cannot prove means not proved.
 *
 * Findings carry a counterexample witness — the (emitted pc,
 * reference pc) pair, the diverging lane for lane-map findings, and
 * the two diverging terms rendered into the message — and are sorted
 * by (routine, pc, lane).
 */

#ifndef ROCKCRESS_ANALYSIS_EQUIV_HH
#define ROCKCRESS_ANALYSIS_EQUIV_HH

#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "isa/program.hh"
#include "machine/params.hh"

namespace rockcress
{

/** One equivalence counterexample (or failure to prove). */
struct EquivFinding
{
    int streamIdx = 0;        ///< Manifest stream index.
    std::string region;       ///< prologue/preheader/fill/body.
    /** Finding class: "trip-count", "lane-map", "stride", "effect",
     * "register", "predication", "structure". */
    std::string kind;
    int pc = -1;              ///< Diverging pc in the emitted code.
    int refPc = -1;           ///< Matching reference-transcript pc.
    int lane = -1;            ///< Diverging lane (lane-map), else -1.
    int routineEntry = -1;
    std::string routine;      ///< "main body" / "microthread at N".
    std::string message;      ///< Includes the diverging terms.
};

/** Verdict over every manifest stream of one program. */
struct EquivReport
{
    int streams = 0;   ///< Streams examined.
    int proved = 0;    ///< Streams proved equivalent.
    /** Sorted by (routineEntry, pc, lane). */
    std::vector<EquivFinding> findings;

    bool ok() const { return findings.empty(); }
};

/**
 * Validate every manifest stream of `p`. Programs with no manifest
 * (hand-assembled tests, MIMD configurations) report zero streams
 * and trivially pass.
 */
EquivReport checkEquivalence(const Program &p, const BenchConfig &cfg,
                             const MachineParams &params);

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_EQUIV_HH
