#include "analysis/perfbound.hh"

#include <algorithm>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "isa/instr.hh"

namespace rockcress
{

namespace
{

/** Crude FU class of an opcode for the advisory block profile. */
enum class FuClass
{
    Other,
    Int,
    Fp,
    Mem,
    Simd,
};

FuClass
fuClass(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::MUL: case Opcode::MULH:
      case Opcode::DIV: case Opcode::REM: case Opcode::ADDI:
      case Opcode::ANDI: case Opcode::ORI: case Opcode::XORI:
      case Opcode::SLLI: case Opcode::SRLI: case Opcode::SRAI:
      case Opcode::SLTI: case Opcode::LUI:
        return FuClass::Int;
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FSQRT: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FMADD: case Opcode::FEQ:
      case Opcode::FLT: case Opcode::FLE: case Opcode::FCVT_WS:
      case Opcode::FCVT_SW: case Opcode::FMV_XW: case Opcode::FMV_WX:
      case Opcode::FSGNJ: case Opcode::FABS:
        return FuClass::Fp;
      case Opcode::LW: case Opcode::SW: case Opcode::FLW:
      case Opcode::FSW:
        return FuClass::Mem;
      case Opcode::SIMD_LW: case Opcode::SIMD_SW:
      case Opcode::SIMD_ADD: case Opcode::SIMD_SUB:
      case Opcode::SIMD_MUL: case Opcode::SIMD_FADD:
      case Opcode::SIMD_FSUB: case Opcode::SIMD_FMUL:
      case Opcode::SIMD_FMA: case Opcode::SIMD_BCAST:
      case Opcode::SIMD_REDSUM:
        return FuClass::Simd;
      default:
        return FuClass::Other;
    }
}

/**
 * Longest branch-free instruction runs from every node of one
 * routine: `toBranch[pc]` counts instructions from pc up to and
 * including the first branch along the worst path (-1 when no branch
 * is branch-free-reachable), `toEnd[pc]` the same to a stream
 * terminator. A branch-free cycle makes both unbounded.
 */
struct RunLengths
{
    std::vector<int> toBranch;
    std::vector<int> toEnd;
    bool unbounded = false;
};

RunLengths
longestRuns(const Program &p, const Cfg &cfg,
            const std::vector<bool> &reach)
{
    const int n = cfg.size();
    RunLengths rl;
    rl.toBranch.assign(static_cast<size_t>(n), -1);
    rl.toEnd.assign(static_cast<size_t>(n), -1);
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<char> color(static_cast<size_t>(n), 0);

    // Iterative DFS with an explicit post-order so deep programs do
    // not overflow the host stack.
    for (int root = 0; root < n; ++root) {
        if (!reach[static_cast<size_t>(root)] ||
            color[static_cast<size_t>(root)] != 0) {
            continue;
        }
        std::vector<std::pair<int, size_t>> stack{{root, 0}};
        color[static_cast<size_t>(root)] = 1;
        while (!stack.empty()) {
            auto &[pc, next] = stack.back();
            const Instruction &i = p.code[static_cast<size_t>(pc)];
            if (isBranch(i.op)) {
                // A branch ends the run at itself.
                rl.toBranch[static_cast<size_t>(pc)] = 1;
                color[static_cast<size_t>(pc)] = 2;
                stack.pop_back();
                continue;
            }
            const auto &succs = cfg.succs[static_cast<size_t>(pc)];
            if (next < succs.size()) {
                int s = succs[next++];
                if (!reach[static_cast<size_t>(s)])
                    continue;
                char c = color[static_cast<size_t>(s)];
                if (c == 1) {
                    rl.unbounded = true;  // Branch-free cycle.
                    continue;
                }
                if (c == 0) {
                    color[static_cast<size_t>(s)] = 1;
                    stack.push_back({s, 0});
                }
                continue;
            }
            // Post-order: combine successors.
            int tb = -1, te = -1;
            bool terminator = true;
            for (int s : succs) {
                if (!reach[static_cast<size_t>(s)])
                    continue;
                terminator = false;
                tb = std::max(tb, rl.toBranch[static_cast<size_t>(s)]);
                te = std::max(te, rl.toEnd[static_cast<size_t>(s)]);
            }
            if (terminator) {
                rl.toEnd[static_cast<size_t>(pc)] = 1;
            } else {
                if (tb >= 0)
                    rl.toBranch[static_cast<size_t>(pc)] = tb + 1;
                if (te >= 0)
                    rl.toEnd[static_cast<size_t>(pc)] = te + 1;
            }
            color[static_cast<size_t>(pc)] = 2;
            stack.pop_back();
        }
    }
    return rl;
}

/** Is `pc` the first instruction of a basic block? */
std::vector<bool>
blockLeaders(const Cfg &cfg, const std::vector<bool> &reach)
{
    const int n = cfg.size();
    std::vector<bool> leader(static_cast<size_t>(n), false);
    std::vector<int> preds(static_cast<size_t>(n), 0);
    for (int pc = 0; pc < n; ++pc) {
        if (!reach[static_cast<size_t>(pc)])
            continue;
        for (int s : cfg.succs[static_cast<size_t>(pc)])
            preds[static_cast<size_t>(s)] += 1;
    }
    for (int pc = 0; pc < n; ++pc) {
        if (!reach[static_cast<size_t>(pc)])
            continue;
        const auto &succs = cfg.succs[static_cast<size_t>(pc)];
        bool split = succs.size() != 1 ||
                     isBranch(cfg.prog->code[static_cast<size_t>(pc)].op);
        for (int s : succs) {
            if (split || preds[static_cast<size_t>(s)] > 1 ||
                s != pc + 1) {
                leader[static_cast<size_t>(s)] = true;
            }
        }
    }
    leader[0] = reach[0];
    return leader;
}

} // namespace

PerfBoundReport
computePerfBound(const Program &p, const BenchConfig &cfg,
                 const MachineParams &params)
{
    PerfBoundReport rep;
    Cfg graph = buildCfg(p);
    const int n = graph.size();
    if (n == 0)
        return rep;
    std::vector<Routine> routines = partitionRoutines(graph);
    const std::vector<bool> &mainReach = routines[0].reach;
    const double fd = static_cast<double>(params.core.frontendDelay);

    // --- Certified per-core ceiling -------------------------------------
    if (cfg.isVector()) {
        // Receiver cores take forwarded instructions without branch
        // bubbles: only the single-issue limit is certified.
        rep.vectorCeiling = true;
        rep.ipcBound = 1.0;
    } else {
        RunLengths rl = longestRuns(p, graph, mainReach);
        if (rl.unbounded) {
            rep.unboundedRun = true;
            rep.ipcBound = 1.0;
        } else {
            for (int pc = 0; pc < n; ++pc) {
                if (!mainReach[static_cast<size_t>(pc)])
                    continue;
                rep.runToBranch = std::max(
                    rep.runToBranch,
                    rl.toBranch[static_cast<size_t>(pc)]);
                rep.runToEnd = std::max(
                    rep.runToEnd, rl.toEnd[static_cast<size_t>(pc)]);
            }
            double bound = 0.0;
            if (rep.runToBranch > 0) {
                double lb = rep.runToBranch;
                bound = std::max(bound, lb / (lb + fd));
            }
            if (rep.runToEnd > 0) {
                double le = rep.runToEnd;
                bound = std::max(bound, le / (le + fd + 1.0));
            }
            rep.ipcBound = bound > 0.0 ? bound : 1.0;
        }
    }

    // --- Advisory per-block resource profile ----------------------------
    std::vector<bool> anyReach(static_cast<size_t>(n), false);
    for (const Routine &r : routines) {
        for (int pc = 0; pc < n; ++pc) {
            if (r.reach[static_cast<size_t>(pc)])
                anyReach[static_cast<size_t>(pc)] = true;
        }
    }
    std::vector<bool> leader = blockLeaders(graph, anyReach);
    for (int pc = 0; pc < n; ++pc) {
        if (!anyReach[static_cast<size_t>(pc)] ||
            !leader[static_cast<size_t>(pc)]) {
            continue;
        }
        BlockBound b;
        b.first = pc;
        int q = pc;
        while (true) {
            const Instruction &i = p.code[static_cast<size_t>(q)];
            b.count += 1;
            b.last = q;
            switch (fuClass(i.op)) {
              case FuClass::Int: b.intOps += 1; break;
              case FuClass::Fp: b.fpOps += 1; break;
              case FuClass::Mem: b.memOps += 1; break;
              case FuClass::Simd: b.simdOps += 1; break;
              default: break;
            }
            if (i.op == Opcode::VLOAD && i.imm2 > 0)
                b.vloadWords += i.imm2;
            b.endsInBranch = isBranch(i.op);
            const auto &succs = graph.succs[static_cast<size_t>(q)];
            bool fallthrough =
                !b.endsInBranch && succs.size() == 1 &&
                succs[0] == q + 1 && q + 1 < n &&
                anyReach[static_cast<size_t>(q + 1)] &&
                !leader[static_cast<size_t>(q + 1)];
            if (!fallthrough)
                break;
            q += 1;
        }
        b.minCycles =
            static_cast<double>(b.count) + (b.endsInBranch ? fd : 0.0);
        rep.blocks.push_back(b);
    }

    // --- Advisory loop estimates (retreating edges) ---------------------
    for (int pc = 0; pc < n; ++pc) {
        if (!anyReach[static_cast<size_t>(pc)])
            continue;
        for (int s : graph.succs[static_cast<size_t>(pc)]) {
            if (s > pc)
                continue;
            LoopBound lb;
            lb.head = s;
            lb.len = pc - s + 1;
            for (int q = s; q <= pc; ++q) {
                const Instruction &i = p.code[static_cast<size_t>(q)];
                if (isBranch(i.op))
                    lb.branches += 1;
                if (i.op == Opcode::VLOAD && i.imm2 > 0)
                    lb.vloadWords += i.imm2;
            }
            double cycFrontend =
                static_cast<double>(lb.len) + fd * lb.branches;
            lb.ipcFrontend = lb.len / cycFrontend;
            // Roofline: with every core streaming, each iteration's
            // vload bytes must fit the per-core DRAM share.
            double bytes = static_cast<double>(lb.vloadWords) *
                           static_cast<double>(wordBytes);
            double cycDram =
                params.dramBytesPerCycle > 0
                    ? bytes * params.numCores() / params.dramBytesPerCycle
                    : 0.0;
            lb.ipcRoofline = lb.len / std::max(cycFrontend, cycDram);
            rep.loops.push_back(lb);
        }
    }
    return rep;
}

} // namespace rockcress
