#include "analysis/racecheck.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "isa/instr.hh"

namespace rockcress
{

namespace
{

/**
 * Version numbering. A version names the dynamic value a register
 * held at one program event; two offsets with equal versions denote
 * the same runtime value (plus their respective byte deltas).
 *
 *  - kVerConst: the literal base 0 — the delta IS the absolute
 *    scratchpad offset (constant-folded through the interval domain);
 *  - entryVer(r): the value register r held at routine entry;
 *  - defVer(pc): the value produced by the (opaque) definition at pc;
 *  - phiVer(pc, r): the value r holds when it is first *used* at pc
 *    after a join lost track of it. Re-materializing the same phi on
 *    a later visit kills fills keyed to it first, because the value
 *    may have changed in between (see useReg).
 */
constexpr std::int64_t kVerUnknown = -1;
constexpr std::int64_t kVerConst = 0;

std::int64_t
entryVer(int r)
{
    return 1 + r;
}

std::int64_t
defVer(int pc)
{
    return 64 + pc;
}

std::int64_t
phiVer(int pc, int r)
{
    return std::int64_t{1} << 32 | (std::int64_t{pc} * 32 + r);
}

/** (version, byte delta): the symbolic value of one register. */
struct SymVal
{
    std::int64_t ver = kVerUnknown;
    std::int64_t delta = 0;

    bool operator==(const SymVal &) const = default;
};

/** One tracked in-flight remote fill window. */
struct FillRec
{
    int pc = -1;               ///< The vload.
    std::int64_t ver = kVerUnknown;
    std::int64_t lo = 0;       ///< Byte range [lo, hi) from the base.
    std::int64_t hi = 0;
    int slotFirst = 0;         ///< Destination slot range (self slot
    int slotLast = 0;          ///< == groupSlots for self routing).

    bool operator==(const FillRec &) const = default;
    auto
    key() const
    {
        return std::tie(pc, ver, lo, hi, slotFirst, slotLast);
    }
    bool operator<(const FillRec &o) const { return key() < o.key(); }
};

/** Bound on tracked fills; oldest are dropped (sound: drops only
 * lose detection, never invent overlap). */
constexpr size_t kMaxFills = 16;

struct RaceState
{
    bool bottom = true;
    std::array<SymVal, 32> reg{};
    std::vector<FillRec> fills;  ///< Kept sorted (canonical form).

    bool operator==(const RaceState &) const = default;
};

struct RaceDomain
{
    using State = RaceState;

    const Program &p;
    const IntervalAnalysis &vals;
    /** May the microthread at this entry pc consume frames? */
    const std::map<int, bool> &mtConsumes;
    int groupSlots;

    int selfSlot() const { return groupSlots; }

    State bottom() const { return State{}; }
    bool isBottom(const State &s) const { return s.bottom; }

    State
    transfer(int pc, const State &in) const
    {
        if (in.bottom)
            return in;
        State s = in;
        apply(pc, s, nullptr, nullptr);
        return s;
    }

    bool
    join(State &into, const State &from) const
    {
        if (from.bottom)
            return false;
        if (into.bottom) {
            into = from;
            return true;
        }
        bool changed = false;
        for (size_t r = 0; r < into.reg.size(); ++r) {
            if (into.reg[r].ver != kVerUnknown &&
                !(into.reg[r] == from.reg[r])) {
                into.reg[r] = SymVal{};
                changed = true;
            }
        }
        // Fills are a must-set: keep only windows open on every path.
        std::vector<FillRec> kept;
        for (const FillRec &f : into.fills) {
            if (std::find(from.fills.begin(), from.fills.end(), f) !=
                from.fills.end())
                kept.push_back(f);
        }
        if (kept.size() != into.fills.size()) {
            into.fills = std::move(kept);
            changed = true;
        }
        return changed;
    }

    void
    widen(State &cur, const State &prev) const
    {
        if (cur.bottom || prev.bottom)
            return;
        for (size_t r = 0; r < cur.reg.size(); ++r) {
            if (!(cur.reg[r] == prev.reg[r]))
                cur.reg[r] = SymVal{};
        }
        std::vector<FillRec> kept;
        for (const FillRec &f : cur.fills) {
            if (std::find(prev.fills.begin(), prev.fills.end(), f) !=
                prev.fills.end())
                kept.push_back(f);
        }
        cur.fills = std::move(kept);
    }

    /**
     * Value of rs at pc. An unknown register is materialized as the
     * phi version keyed to this use site — after killing any fill
     * still keyed to that phi, since reaching the same use again with
     * the register untracked means its value may have changed (the
     * rotating-cursor wrap-around case).
     */
    SymVal
    useReg(int pc, RegIdx r, State &s) const
    {
        if (r == regZero)
            return {kVerConst, 0};
        std::int32_t c = 0;
        if (vals.constAt(pc, r, c))
            return {kVerConst, c};
        if (r >= 32)
            return SymVal{};
        SymVal &v = s.reg[static_cast<size_t>(r)];
        if (v.ver == kVerUnknown) {
            std::int64_t phi = phiVer(pc, r);
            std::erase_if(s.fills, [phi](const FillRec &f) {
                return f.ver == phi;
            });
            v = {phi, 0};
        }
        return v;
    }

    void
    defReg(RegIdx rd, SymVal v, State &s) const
    {
        if (rd > regZero && rd < 32)
            s.reg[static_cast<size_t>(rd)] = v;
    }

    void
    killSlots(State &s, int first, int last) const
    {
        std::erase_if(s.fills, [first, last](const FillRec &f) {
            return f.slotLast >= first && last >= f.slotFirst;
        });
    }

    /**
     * The shared transfer: mutates `s`; with `findings` non-null the
     * overlap reports fire too (the post-fixpoint report pass, with
     * `seen` deduplicating (producer, consumer) pc pairs).
     */
    void apply(int pc, State &s, std::vector<RaceFinding> *findings,
               std::set<std::pair<int, int>> *seen) const;
};

std::string
slotDesc(int first, int last, int group_slots)
{
    if (first == group_slots)
        return "the issuing core's own frame queue";
    if (first == last)
        return "group slot " + std::to_string(first);
    return "group slots [" + std::to_string(first) + ", " +
           std::to_string(last) + "]";
}

void
RaceDomain::apply(int pc, State &s, std::vector<RaceFinding> *findings,
                  std::set<std::pair<int, int>> *seen) const
{
    const Instruction &i = p.code[static_cast<size_t>(pc)];
    switch (i.op) {
      case Opcode::ADDI: {
        SymVal v = useReg(pc, i.rs1, s);
        if (v.ver != kVerUnknown)
            v.delta += i.imm;
        defReg(i.rd, v, s);
        return;
      }

      case Opcode::ADD: {
        // A move through x0 preserves the value; anything else is a
        // new (opaque) definition.
        if (i.rs2 == regZero)
            defReg(i.rd, useReg(pc, i.rs1, s), s);
        else if (i.rs1 == regZero)
            defReg(i.rd, useReg(pc, i.rs2, s), s);
        else
            defReg(i.rd, {defVer(pc), 0}, s);
        return;
      }

      case Opcode::VLOAD: {
        int w = i.imm2;
        if (w <= 0)
            return;
        auto variant = static_cast<VloadVariant>(i.sub);
        bool self = variant == VloadVariant::Self;
        CfgBind cfg = self ? vals.selfCfgAt(pc) : vals.regionCfgAt(pc);

        // Participate only when the whole footprint provably lands
        // in the bound frame region (the same proof token-flow
        // counting uses): everything else is untracked, never raced.
        if (!cfg.isKnown() || cfg.nf <= 0)
            return;
        std::int64_t region = std::int64_t{cfg.fw} * cfg.nf * 4;
        AbsVal off = vals.valueAt(pc, i.rs2);
        if (off.frameFw != 0 || off.effLo() < 0 ||
            off.effHi() + std::int64_t{w} * 4 > region)
            return;

        int first = 0, last = -1;
        if (variant == VloadVariant::Group) {
            first = std::max(0, i.imm);
            last = groupSlots - 1;
        } else if (variant == VloadVariant::Single) {
            if (i.imm < 0 || i.imm >= groupSlots)
                return;
            first = last = i.imm;
        } else {
            first = last = selfSlot();
        }
        if (first > last)
            return;

        SymVal base = useReg(pc, i.rs2, s);
        if (base.ver == kVerUnknown)
            return;
        FillRec rec{pc, base.ver, base.delta,
                    base.delta + std::int64_t{w} * 4, first, last};

        for (const FillRec &f : s.fills) {
            if (f.ver != rec.ver)
                continue;
            if (f.slotLast < first || last < f.slotFirst)
                continue;
            std::int64_t lo = std::max(f.lo, rec.lo);
            std::int64_t hi = std::min(f.hi, rec.hi);
            if (lo >= hi)
                continue;
            if (!findings || !seen->insert({f.pc, pc}).second)
                continue;
            RaceFinding rf;
            rf.producerPc = f.pc;
            rf.consumerPc = pc;
            rf.byteLo = lo;
            rf.byteHi = hi;
            rf.absoluteRange = rec.ver == kVerConst;
            rf.slotFirst = std::max(f.slotFirst, first);
            rf.slotLast = std::min(f.slotLast, last);
            std::ostringstream os;
            os << "remote frame fills race: the vloads at pc " << f.pc
               << " and pc " << pc << " both fill bytes [" << lo
               << ", " << hi << ") "
               << (rf.absoluteRange
                       ? "of the scratchpad frame region"
                       : "past the same dynamic fill cursor")
               << " on " << slotDesc(rf.slotFirst, rf.slotLast,
                                     groupSlots)
               << " with no frame handover in between: the second "
                  "arrival lands on a word still filling or armed "
                  "(double-fill)";
            rf.message = os.str();
            findings->push_back(std::move(rf));
        }

        if (s.fills.size() >= kMaxFills)
            s.fills.erase(s.fills.begin());
        if (std::find(s.fills.begin(), s.fills.end(), rec) ==
            s.fills.end()) {
            s.fills.push_back(rec);
            std::sort(s.fills.begin(), s.fills.end());
        }
        return;
      }

      case Opcode::FRAME_START:
        // Inline (self-routed) handover: the head self frame may now
        // be consumed and freed, closing self fill windows.
        killSlots(s, selfSlot(), selfSlot());
        defReg(i.rd, {defVer(pc), 0}, s);
        return;

      case Opcode::REMEM:
        killSlots(s, selfSlot(), selfSlot());
        return;

      case Opcode::VISSUE: {
        // A microthread that provably performs no frame_start/remem
        // cannot retire frames; group fill windows survive it.
        auto it = mtConsumes.find(i.imm);
        if (it == mtConsumes.end() || it->second)
            killSlots(s, 0, groupSlots - 1);
        return;
      }

      case Opcode::CSRW:
        // FrameCfg rewrites reset the counters; Vconfig transitions
        // reshape the group. Both end every tracked window.
        s.fills.clear();
        return;

      case Opcode::DEVEC:
      case Opcode::BARRIER:
        s.fills.clear();
        return;

      default: {
        int rd = destReg(i);
        if (rd > regZero && rd < 32)
            defReg(static_cast<RegIdx>(rd), {defVer(pc), 0}, s);
        return;
      }
    }
}

} // namespace

std::vector<RaceFinding>
checkScratchpadRaces(const Program &p, const Cfg &cfg,
                     const BenchConfig &bench,
                     const MachineParams &params,
                     const IntervalAnalysis &values)
{
    (void)params;
    std::vector<RaceFinding> findings;
    const int n = cfg.size();
    if (n == 0)
        return findings;
    const std::vector<Routine> &routines = values.routines();

    // Which microthreads may consume frames? A frame_start or remem
    // anywhere in the routine's reach means "may".
    std::map<int, bool> mtConsumes;
    for (size_t k = 1; k < routines.size(); ++k) {
        bool consumes = false;
        for (int pc : routines[k].reach) {
            Opcode op = p.code[static_cast<size_t>(pc)].op;
            if (op == Opcode::FRAME_START || op == Opcode::REMEM) {
                consumes = true;
                break;
            }
        }
        mtConsumes[routines[k].entry] = consumes;
    }

    int groupSlots = std::max(1, bench.groupSize);
    RaceDomain dom{p, values, mtConsumes, groupSlots};
    RaceState entry;
    entry.bottom = false;
    for (size_t r = 0; r < entry.reg.size(); ++r)
        entry.reg[r] = {entryVer(static_cast<int>(r)), 0};
    auto sol =
        solveDataflow(cfg, dom, {{0, entry}}, &routines[0].reach);

    std::set<std::pair<int, int>> seen;
    for (int pc = 0; pc < n; ++pc) {
        if (!sol.reached[static_cast<size_t>(pc)])
            continue;
        RaceState s = sol.in[static_cast<size_t>(pc)];
        if (s.bottom)
            continue;
        dom.apply(pc, s, &findings, &seen);
    }

    std::sort(findings.begin(), findings.end(),
              [](const RaceFinding &a, const RaceFinding &b) {
                  return std::tie(a.consumerPc, a.byteLo, a.byteHi,
                                  a.producerPc) <
                         std::tie(b.consumerPc, b.byteLo, b.byteHi,
                                  b.producerPc);
              });
    return findings;
}

} // namespace rockcress
