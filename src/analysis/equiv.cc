#include "analysis/equiv.hh"

#include <algorithm>
#include <set>
#include <tuple>

#include "analysis/symexec.hh"

namespace rockcress
{

namespace
{

/** One word of a lane-expanded wide load. */
struct LaneWord
{
    int lane = 0;               ///< -1 = the requesting scalar core.
    const Term *spOff = nullptr;
    const Term *addr = nullptr;
    const Term *pred = nullptr;
};

/**
 * Expand a vload effect into per-lane word placements, mirroring the
 * reference model's response distribution (ref/refmodel.cc): Group
 * sends `width`-word chunks to consecutive lanes starting at
 * coreOff; Single sends every word to lane coreOff; Self sends every
 * word back to the requester.
 */
std::vector<LaneWord>
expandVload(TermPool &pool, const SymEffect &e, int groupSize)
{
    std::vector<LaneWord> out;
    auto variant = static_cast<VloadVariant>(e.variant);
    int w = std::max(e.width, 0);
    auto at = [&](int lane, int word, int spWord) {
        LaneWord lw;
        lw.lane = lane;
        lw.spOff = pool.app(
            "add", {e.spOff,
                    pool.constant(spWord * static_cast<int>(wordBytes))});
        lw.addr = pool.app(
            "add", {e.addr,
                    pool.constant(word * static_cast<int>(wordBytes))});
        lw.pred = e.pred;
        out.push_back(lw);
    };
    switch (variant) {
      case VloadVariant::Group: {
        int total = w * std::max(groupSize - e.coreOff, 0);
        for (int word = 0; word < total; ++word)
            at(e.coreOff + word / w, word, word % w);
        break;
      }
      case VloadVariant::Single:
        for (int word = 0; word < w; ++word)
            at(e.coreOff, word, word);
        break;
      case VloadVariant::Self:
        for (int word = 0; word < w; ++word)
            at(-1, word, word);
        break;
    }
    return out;
}

const char *
effectKindName(SymEffect::Kind k)
{
    switch (k) {
      case SymEffect::Kind::StoreWord: return "store";
      case SymEffect::Kind::StoreSimd: return "simd store";
      case SymEffect::Kind::Vload: return "vload";
      case SymEffect::Kind::FrameStart: return "frame_start";
      case SymEffect::Kind::Remem: return "remem";
      case SymEffect::Kind::Vissue: return "vissue";
    }
    return "?";
}

std::string
termStr(const Term *t)
{
    return t ? t->str() : "true";
}

class EquivChecker
{
  public:
    EquivChecker(const Program &p, const BenchConfig &cfg)
        : p_(p), cfg_(cfg)
    {
    }

    EquivReport
    run()
    {
        EquivReport rep;
        rep.streams =
            static_cast<int>(p_.manifest.streams.size());
        for (int si = 0; si < rep.streams; ++si) {
            size_t before = findings_.size();
            checkStream(si);
            if (findings_.size() == before)
                ++rep.proved;
        }
        std::sort(findings_.begin(), findings_.end(),
                  [](const EquivFinding &a, const EquivFinding &b) {
                      return std::tie(a.routineEntry, a.pc, a.lane,
                                      a.kind) <
                             std::tie(b.routineEntry, b.pc, b.lane,
                                      b.kind);
                  });
        rep.findings = std::move(findings_);
        return rep;
    }

  private:
    struct RegionCtx
    {
        const char *name;
        int lo = -1, hi = -1;
        const std::vector<Instruction> *ref = nullptr;
    };

    void
    checkStream(int si)
    {
        const ManifestStream &ms =
            p_.manifest.streams[static_cast<size_t>(si)];
        checkRegion(si, ms,
                    {"prologue", ms.prologueLo, ms.prologueHi,
                     &ms.refPrologue});
        checkRegion(si, ms,
                    {"preheader", ms.preheaderLo, ms.preheaderHi,
                     &ms.refPreheader});
        checkRegion(si, ms, {"fill", ms.fillLo, ms.fillHi, &ms.refFill});
        checkRegion(si, ms, {"body", ms.bodyLo, ms.bodyHi, &ms.refBody});
    }

    void
    checkRegion(int si, const ManifestStream &ms, const RegionCtx &rc)
    {
        if (rc.lo < 0 || rc.hi < rc.lo || rc.hi > p_.size()) {
            finding(si, ms, rc, "structure", rc.lo, rc.lo, -1,
                    "manifest records an invalid region range");
            return;
        }
        // Structural fast path: identical instructions are proved
        // outright. This is the steady state for every real kernel;
        // only post-capture mutation can reach the symbolic leg.
        int len = rc.hi - rc.lo;
        int refLen = static_cast<int>(rc.ref->size());
        int firstDiff = -1;
        for (int k = 0; k < std::min(len, refLen); ++k) {
            if (!(p_.code[static_cast<size_t>(rc.lo + k)] ==
                  (*rc.ref)[static_cast<size_t>(k)])) {
                firstDiff = k;
                break;
            }
        }
        if (firstDiff < 0) {
            if (len == refLen)
                return;  // Proved.
            firstDiff = std::min(len, refLen);
        }
        semanticCheck(si, ms, rc, firstDiff);
    }

    /** The symbolic differential over one region pair. */
    void
    semanticCheck(int si, const ManifestStream &ms,
                  const RegionCtx &rc, int firstDiff)
    {
        std::vector<Instruction> actual(
            p_.code.begin() + rc.lo, p_.code.begin() + rc.hi);
        // A shared pool: identical symbols (register entry values,
        // frame bases) intern to identical term pointers across legs.
        TermPool pool;
        SymResult got = symExecRegion(pool, actual, rc.lo);
        SymResult want = symExecRegion(pool, *rc.ref, rc.lo);
        int pc = rc.lo + firstDiff;
        if (!got.ok || !want.ok) {
            finding(si, ms, rc, "structure", pc, pc, -1,
                    "cannot prove the region equivalent: " +
                        (!got.ok ? got.reason : want.reason));
            return;
        }
        if (compareEffects(si, ms, rc, pool, got, want))
            return;
        compareRegs(si, ms, rc, pc, pool, got, want);
    }

    /** Returns true when a finding was reported. */
    bool
    compareEffects(int si, const ManifestStream &ms,
                   const RegionCtx &rc, TermPool &pool,
                   const SymResult &got, const SymResult &want)
    {
        size_t m = std::min(got.effects.size(), want.effects.size());
        for (size_t j = 0; j < m; ++j) {
            const SymEffect &ea = got.effects[j];
            const SymEffect &er = want.effects[j];
            if (ea.kind == SymEffect::Kind::Vload &&
                er.kind == SymEffect::Kind::Vload) {
                if (compareVloads(si, ms, rc, pool, ea, er))
                    return true;
                continue;
            }
            if (ea.sameAs(er))
                continue;
            std::string kind = "effect";
            std::string msg;
            if (ea.kind == er.kind && ea.pred != er.pred) {
                kind = "predication";
                msg = std::string(effectKindName(ea.kind)) +
                      " commits under predicate " + termStr(ea.pred) +
                      " (manifest: " + termStr(er.pred) + ")";
            } else if (ea.kind != er.kind) {
                msg = std::string("commits a ") +
                      effectKindName(ea.kind) + " where the manifest "
                      "commits a " + effectKindName(er.kind);
            } else {
                msg = std::string(effectKindName(ea.kind)) +
                      " diverges: address " + termStr(ea.addr) +
                      " value " + termStr(ea.value) + " (manifest: " +
                      termStr(er.addr) + " / " + termStr(er.value) +
                      ")";
            }
            finding(si, ms, rc, kind, rc.lo + ea.pc, rc.lo + er.pc,
                    -1, msg);
            return true;
        }
        if (got.effects.size() != want.effects.size()) {
            size_t j = m;
            int pcA = got.effects.size() > j
                          ? rc.lo + got.effects[j].pc
                          : rc.hi;
            int pcR = want.effects.size() > j
                          ? rc.lo + want.effects[j].pc
                          : rc.hi;
            finding(si, ms, rc, "effect", pcA, pcR, -1,
                    "commits " + std::to_string(got.effects.size()) +
                        " side effects where the manifest commits " +
                        std::to_string(want.effects.size()));
            return true;
        }
        return false;
    }

    /** Lane-expanded vload comparison; true when a finding fired. */
    bool
    compareVloads(int si, const ManifestStream &ms,
                  const RegionCtx &rc, TermPool &pool,
                  const SymEffect &ea, const SymEffect &er)
    {
        auto la = expandVload(pool, ea, cfg_.groupSize);
        auto lr = expandVload(pool, er, cfg_.groupSize);
        size_t m = std::min(la.size(), lr.size());
        for (size_t w = 0; w < m; ++w) {
            const LaneWord &a = la[w];
            const LaneWord &r = lr[w];
            if (a.lane == r.lane && a.spOff == r.spOff &&
                a.addr == r.addr && a.pred == r.pred) {
                continue;
            }
            finding(si, ms, rc, "lane-map", rc.lo + ea.pc,
                    rc.lo + er.pc, r.lane,
                    "word " + std::to_string(w) + " of the vload "
                    "lands on lane " + std::to_string(a.lane) +
                        " at scratchpad offset " + termStr(a.spOff) +
                        " from " + termStr(a.addr) +
                        " (manifest: lane " + std::to_string(r.lane) +
                        " at " + termStr(r.spOff) + " from " +
                        termStr(r.addr) + ")");
            return true;
        }
        if (la.size() != lr.size()) {
            int lane = lr.size() > la.size()
                           ? lr[la.size()].lane
                           : la[lr.size()].lane;
            finding(si, ms, rc, "lane-map", rc.lo + ea.pc,
                    rc.lo + er.pc, lane,
                    "vload delivers " + std::to_string(la.size()) +
                        " words where the manifest delivers " +
                        std::to_string(lr.size()) +
                        " (a lane is starved)");
            return true;
        }
        return false;
    }

    void
    compareRegs(int si, const ManifestStream &ms, const RegionCtx &rc,
                int pc, TermPool &pool, const SymResult &got,
                const SymResult &want)
    {
        std::set<RegIdx> keys;
        for (const auto &[r, t] : got.regs)
            keys.insert(r);
        for (const auto &[r, t] : want.regs)
            keys.insert(r);
        for (RegIdx r : keys) {
            auto valOf = [&](const SymResult &res) -> const Term * {
                auto it = res.regs.find(r);
                return it != res.regs.end() ? it->second
                                            : pool.sym(symRegName(r));
            };
            const Term *va = valOf(got);
            const Term *vr = valOf(want);
            if (va == vr)
                continue;
            bool isBound = std::string(rc.name) == "preheader" &&
                           r == ms.boundReg;
            std::string kind =
                isBound ? "trip-count"
                        : (std::string(rc.name) == "body"
                               ? "register"
                               : "stride");
            std::string msg =
                isBound ? "trip count seats " + termStr(va) +
                              " iterations (manifest intends " +
                              std::to_string(ms.iters) + ")"
                        : "register " + symRegName(r) + " ends as " +
                              termStr(va) + " (manifest: " +
                              termStr(vr) + ")";
            finding(si, ms, rc, kind, pc, pc, -1, msg);
            return;  // One diverging register is witness enough.
        }
    }

    void
    finding(int si, const ManifestStream &ms, const RegionCtx &rc,
            const std::string &kind, int pc, int refPc, int lane,
            const std::string &msg)
    {
        EquivFinding f;
        f.streamIdx = si;
        f.region = rc.name;
        f.kind = kind;
        f.pc = pc;
        f.refPc = refPc;
        f.lane = lane;
        bool body = std::string(rc.name) == "body";
        f.routineEntry = body ? ms.bodyLo : 0;
        f.routine = body && ms.bodyLo >= 0
                        ? "microthread at " + std::to_string(ms.bodyLo)
                        : "main body";
        f.message = "stream " + std::to_string(si) + " " + f.region +
                    " [" + kind + "]: " + msg;
        findings_.push_back(std::move(f));
    }

    const Program &p_;
    const BenchConfig &cfg_;
    std::vector<EquivFinding> findings_;
};

} // namespace

EquivReport
checkEquivalence(const Program &p, const BenchConfig &cfg,
                 const MachineParams &)
{
    return EquivChecker(p, cfg).run();
}

} // namespace rockcress
