/**
 * @file
 * Static verifier for assembled vector-group programs — the analysis
 * half of the paper's toolchain guarantee (Section 4.1): before a
 * program reaches the fabric, check that its vector-group scaffolding
 * is well-formed so that malformed kernels are rejected with a
 * readable diagnostic instead of deadlocking or corrupting statistics
 * deep inside the simulator.
 *
 * Checks, each an instance of the generic dataflow solver
 * (analysis/dataflow.hh) or a structural pass over the CFG:
 *  - vector-region: every vissue happens inside a vconfig/devec
 *    region on all paths, regions never nest or dangle, barriers and
 *    halts never fire mid-region;
 *  - frame-balance: frame_start/remem pair on every path, remem never
 *    frees an unopened frame, no path leaves a frame open at a
 *    routine exit (the deadlock the DAE pacing of Section 2.3.1
 *    avoids), and FrameCfg writes satisfy the hardware limits;
 *  - vload: width against the cache line, core offsets against the
 *    group size, and — on the interval + congruence abstract domain
 *    (analysis/interval.hh) — word alignment, scratchpad bounds and
 *    per-frame byte footprint against the bound FrameCfg, proved for
 *    unbounded (streaming) operands, not just constant-pinned ones;
 *    frame-relative loads and stores through frame_start pointers are
 *    checked against the frame footprint the same way;
 *  - deadlock: the token-flow pass (analysis/tokenflow.hh) counts
 *    frame fill words against frame consumption along every scalar
 *    path and rejects schedules that wedge the group: a frame_start
 *    no fill can satisfy, or pacing beyond the hardware's frame
 *    counters;
 *  - predication: no branch, frame, vissue, barrier, halt, or CSR
 *    write is reachable while the pred_eq/pred_neq flag may be off
 *    (the pipeline squashes them, which desynchronizes the group or
 *    deadlocks the frontend), and microthreads re-enable the flag
 *    before vend;
 *  - use-before-def: no register is read on a path that never defined
 *    it, with microthread entry states chained through the scalar
 *    core's vissue order;
 *  - race: the MHP pass (analysis/racecheck.hh) proves remote frame
 *    fills disjoint in time or address from every other access to the
 *    same scratchpad words, and rejects programs where two fills
 *    provably overlap — reported with a two-sided witness (producer
 *    path, consumer path, overlapping byte range) and mirrored at run
 *    time by the frame sanitizer (mem/scratchpad.hh).
 *  - equiv: translation validation (analysis/equiv.hh) — every
 *    strip-mined stream recorded in the program's
 *    VectorizationManifest is proved equivalent to the reference
 *    transcript the compiler captured, region by region, up to the
 *    documented lane remapping of group vloads; anything the
 *    symbolic engine cannot prove is reported, never assumed.
 *
 * Diagnostics carry the instruction index, its disassembly, the
 * routine it belongs to, and a shortest witness path through the CFG.
 * They are reported in a deterministic order: sorted by (routine,
 * instruction index, check).
 */

#ifndef ROCKCRESS_ANALYSIS_VERIFIER_HH
#define ROCKCRESS_ANALYSIS_VERIFIER_HH

#include <string>
#include <vector>

#include "analysis/equiv.hh"
#include "analysis/racecheck.hh"
#include "compiler/codegen.hh"
#include "isa/program.hh"
#include "machine/params.hh"

namespace rockcress
{

/** Identifies the pass that produced a diagnostic. */
enum class Check
{
    Cfg,           ///< Structural: falls off the end, indirect jumps.
    VectorRegion,  ///< vissue/vend/devec region well-formedness.
    FrameBalance,  ///< frame_start/remem pairing and FrameCfg limits.
    Vload,         ///< vload width/alignment/bounds legality.
    Predication,   ///< pred_eq/pred_neq region well-formedness.
    UseBeforeDef,  ///< Register read with no reaching definition.
    Deadlock,      ///< Token-flow: schedule wedges the frame queue.
    Race,          ///< MHP: overlapping remote fills of live words.
    Equiv,         ///< Translation validation vs the manifest.
};

/** Short kebab-case name of a check ("vector-region", ...). */
const char *checkName(Check c);

/** One verifier finding, anchored to an instruction. */
struct Diagnostic
{
    Check check = Check::Cfg;
    int pc = -1;               ///< Offending instruction index.
    std::string message;
    std::vector<int> path;     ///< Witness CFG path ending at pc.
    int routineEntry = -1;     ///< Entry pc of the enclosing routine.
    std::string routine;       ///< "main body" / "microthread at N".

    /** "[check] pc N (routine): <disasm>: message" plus the path. */
    std::string render(const Program &p) const;
};

/** Knobs for the verifier (mostly diagnostic shaping). */
struct VerifierOptions
{
    int maxDiagnostics = 32;   ///< Stop after this many findings.
    int maxPathLines = 12;     ///< Witness-path lines per diagnostic.
    bool checkUseBeforeDef = true;
};

/** Everything the verifier found in one program. */
struct VerifyReport
{
    std::vector<Diagnostic> diagnostics;
    /** Structured race findings (each also appears as a Check::Race
     * diagnostic), sorted by (routine, pc, byte range). */
    std::vector<RaceFinding> races;
    /** Structured translation-validation findings (each also appears
     * as a Check::Equiv diagnostic), sorted by (routine, pc, lane). */
    std::vector<EquivFinding> equiv;
    int equivStreams = 0;  ///< Manifest streams examined.
    int equivProved = 0;   ///< Streams proved equivalent.

    bool ok() const { return diagnostics.empty(); }

    /** Full human-readable report (empty string when ok). */
    std::string text(const Program &p) const;

    /** True if some diagnostic belongs to `c`. */
    bool has(Check c) const;
};

/**
 * Statically verify an assembled program against the configuration
 * and machine it will run on. Never throws on malformed input — all
 * findings are returned as diagnostics.
 */
VerifyReport verifyProgram(const Program &p, const BenchConfig &cfg,
                           const MachineParams &params,
                           const VerifierOptions &opts = {});

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_VERIFIER_HH
