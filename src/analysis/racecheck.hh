/**
 * @file
 * Static scratchpad race detection (the MHP pass): a forward dataflow
 * over the scalar-core instruction stream that proves, per (producer
 * core, consumer slot, frame) triple, that remote frame fills are
 * disjoint in time or address from every other access to the same
 * scratchpad words — and rejects programs where two fills provably
 * overlap with a two-sided witness (producer path, consumer path, and
 * the overlapping byte range).
 *
 * The pass composes the verifier's existing machinery:
 *  - the interval + congruence domain (analysis/interval.hh) proves
 *    each fill's byte footprint inside the bound FrameCfg's frame
 *    region — only proven frame traffic participates;
 *  - the token-flow consumption structure (analysis/tokenflow.hh)
 *    informs the kill set: a vissue of a microthread that provably
 *    performs no frame_start/remem cannot retire frames, so active
 *    fills survive it; consuming vissues, inline frame_start/remem,
 *    FrameCfg rewrites and region boundaries retire the open fill
 *    window;
 *  - on top rides a light relational value numbering: each register
 *    is (version, byte delta), where a version names a definition
 *    site, a routine-entry value, or a join (phi) point. Two fills
 *    whose scratchpad offsets share a version with overlapping
 *    [delta, delta + words*4) ranges and intersecting destination
 *    slots target the *same dynamic frame words* with no possible
 *    handover in between: on the machine, the second arrival lands on
 *    a word still in the Filling/Armed shadow state — exactly what
 *    the frame sanitizer (mem/scratchpad.hh) flags as double-fill or
 *    fill-on-consume.
 *
 * Soundness is rejection-only, mirroring the other passes: offsets
 * the value numbering cannot relate, fills outside a provable frame
 * region, and windows interrupted by any possibly-consuming event are
 * dropped from tracking, never reported. Phi versions are killed on
 * re-materialization so a value that may change across a loop
 * iteration can never alias its previous self (the legal wrap-around
 * refill of a rotating fill cursor is therefore silent).
 */

#ifndef ROCKCRESS_ANALYSIS_RACECHECK_HH
#define ROCKCRESS_ANALYSIS_RACECHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/interval.hh"

namespace rockcress
{

/** One proven fill/fill race, with its two-sided witness anchors. */
struct RaceFinding
{
    int producerPc = -1;  ///< First fill of the raced words.
    int consumerPc = -1;  ///< Second access hitting the same words.
    /** Overlapping byte range [byteLo, byteHi): absolute scratchpad
     * offsets when the shared base is a constant, else deltas from
     * the common (dynamic) fill base. */
    std::int64_t byteLo = 0;
    std::int64_t byteHi = 0;
    bool absoluteRange = false;
    /** Raced destination slots: group slot indices, or the self slot
     * (== group size) for self-routed fills. */
    int slotFirst = 0;
    int slotLast = 0;
    std::string message;
    /** Witness paths, filled by the verifier: routine entry to the
     * producer, then producer to the conflicting access. */
    std::vector<int> producerPath;
    std::vector<int> consumerPath;
    int routineEntry = -1;
    std::string routine;
};

/**
 * Run the race analysis over the main routine. `values` must already
 * be solved. Findings come back sorted by (consumerPc, byte range,
 * producerPc); witness paths and routine attribution are left to the
 * caller (the verifier).
 */
std::vector<RaceFinding>
checkScratchpadRaces(const Program &p, const Cfg &cfg,
                     const BenchConfig &bench,
                     const MachineParams &params,
                     const IntervalAnalysis &values);

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_RACECHECK_HH
