/**
 * @file
 * Static performance bound for one (program, configuration) pair —
 * the lint half of the analysis framework: an IPC ceiling the cycle
 * model must never exceed, plus advisory per-block and per-loop
 * resource estimates for the machine-readable report.
 *
 * The certified bound exploits one microarchitectural invariant of
 * the tile frontend (src/core): every taken-or-not branch (including
 * jal/jalr) pauses fetch until the branch issues, inserting at least
 * `frontendDelay` issue bubbles, and the pipeline issues at most one
 * instruction per cycle. A fetching core's issue stream therefore
 * decomposes into branch-free runs, each followed by a mandatory
 * bubble, and its IPC is at most
 *
 *     max( Lb / (Lb + frontendDelay),
 *          Le / (Le + frontendDelay + 1) )
 *
 * where Lb is the longest branch-free instruction run ending at a
 * branch and Le the longest branch-free run ending at a stream
 * terminator (the one unpenalized tail, which also pays the cold
 * frontend fill). Vector-group receiver cores execute instructions
 * forwarded by their expander and are not throttled by the branch
 * bubble, so under a vector configuration the certified per-core
 * ceiling degrades to the single-issue limit of 1.0 — still a true
 * bound, with the advisory sections carrying the sharper estimates.
 *
 * Everything else in the report (per-block FU mix, loop IPC
 * estimates, DRAM roofline) is advisory: useful for the JSON report
 * and regression triage, not certified.
 */

#ifndef ROCKCRESS_ANALYSIS_PERFBOUND_HH
#define ROCKCRESS_ANALYSIS_PERFBOUND_HH

#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "isa/program.hh"
#include "machine/params.hh"

namespace rockcress
{

/** One basic block's advisory resource profile. */
struct BlockBound
{
    int first = 0;          ///< First instruction index.
    int last = 0;           ///< Last instruction index (inclusive).
    int count = 0;          ///< Instructions in the block.
    bool endsInBranch = false;
    int intOps = 0;
    int fpOps = 0;
    int memOps = 0;         ///< Scalar loads/stores.
    int simdOps = 0;
    int vloadWords = 0;     ///< Words moved by vloads in the block.
    /** Issue-limited minimum cycles to traverse the block once. */
    double minCycles = 0;
};

/** One (retreating-edge) loop's advisory IPC estimate. */
struct LoopBound
{
    int head = 0;           ///< Loop header instruction index.
    int len = 0;            ///< Instructions in [head, backEdge].
    int branches = 0;       ///< Branch instructions in the body.
    int vloadWords = 0;     ///< Words vloaded per iteration.
    /** Frontend-bubble-limited IPC for steady-state iterations. */
    double ipcFrontend = 0;
    /**
     * DRAM-roofline IPC: body length over the larger of the frontend
     * cycles and the cycles DRAM needs to stream the body's vload
     * bytes with every core active.
     */
    double ipcRoofline = 0;
};

/** The full static performance report for one (bench, config). */
struct PerfBoundReport
{
    /** Certified per-core IPC ceiling (see file comment). */
    double ipcBound = 1.0;
    /** Longest branch-free run ending at a branch (-1: none). */
    int runToBranch = -1;
    /** Longest branch-free run ending at a terminator (-1: none). */
    int runToEnd = -1;
    /** True when the 1.0 receiver-core ceiling applied. */
    bool vectorCeiling = false;
    /** True when a branch-free cycle forced the trivial 1.0 bound. */
    bool unboundedRun = false;

    std::vector<BlockBound> blocks;
    std::vector<LoopBound> loops;
};

/** Compute the static performance bound for an assembled program. */
PerfBoundReport computePerfBound(const Program &p,
                                 const BenchConfig &cfg,
                                 const MachineParams &params);

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_PERFBOUND_HH
