/**
 * @file
 * A small symbolic-execution engine over the Rockcress ISA, built for
 * the translation validator (analysis/equiv.hh). Values are terms in
 * a hash-consed DAG: 32-bit constants, free symbols (a register's
 * entry value, a CSR, a frame base), and applications (integer ALU
 * ops with constant folding and canonicalization; floating-point and
 * SIMD ops as uninterpreted functions; loads as `load`/`simd.load`
 * applications over the pre-region memory). Committed architectural
 * side effects — global stores, vloads, frame_start/remem, vissue —
 * come out as an ordered effect list, each carrying the predicate
 * term it executes under (pred_eq/pred_neq fold register writes into
 * ite-terms). Bounded forward-branch forking handles the diamond
 * shapes the emitters produce (the non-power-of-two frame-rotator
 * wrap); paths re-merge at region exit with ite-joined registers.
 *
 * Deliberate incompletenesses (documented in DESIGN.md §5j): loads
 * always read the pre-region memory (no store-to-load forwarding),
 * backward branches are rejected, and a region whose paths commit
 * different effect lists is rejected — all of which fail *conservative*
 * (cannot prove), never unsound.
 */

#ifndef ROCKCRESS_ANALYSIS_SYMEXEC_HH
#define ROCKCRESS_ANALYSIS_SYMEXEC_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace rockcress
{

/** One node of the hash-consed term DAG. Never compare by content —
 * pool interning makes pointer equality the semantic equality. */
struct Term
{
    enum class Kind : std::uint8_t
    {
        Const,
        Sym,
        App,
    };

    Kind kind = Kind::Const;
    std::int32_t value = 0;           ///< Const payload.
    std::string op;                   ///< Sym name / App operator.
    std::vector<const Term *> args;   ///< App operands.
    /** Monotonic creation index — the canonical commutative-argument
     * order, deterministic across runs (unlike pointer order). */
    int id = 0;

    /** Render as an s-expression ("(add x5 12)"). */
    std::string str() const;
};

/**
 * Interning pool. app() normalizes before interning: constant
 * folding on 32-bit wrapping semantics matching the reference model,
 * const-last canonical order for commutative operators (then by term
 * id), add-of-const reassociation, shifts-by-constant lowered to
 * multiplies, and the usual identities (x+0, x*1, x^x, ite(c,a,a),
 * eq(x,x), ...).
 */
class TermPool
{
  public:
    const Term *constant(std::int32_t v);
    const Term *sym(const std::string &name);
    const Term *app(const std::string &op,
                    std::vector<const Term *> args);

    /** ite(cond, a, b); cond is a 0/1 term. */
    const Term *ite(const Term *c, const Term *a, const Term *b);
    /** Logical negation of a 0/1 term. */
    const Term *notOf(const Term *c);
    /** Conjunction of 0/1 terms (nullptr = true). */
    const Term *conj(const Term *a, const Term *b);

    size_t size() const { return terms_.size(); }

  private:
    const Term *intern(Term t);

    std::map<std::string, const Term *> table_;
    std::vector<std::unique_ptr<Term>> terms_;
};

/** One committed architectural side effect, in program order. */
struct SymEffect
{
    enum class Kind : std::uint8_t
    {
        StoreWord,   ///< SW/FSW: one word at addr.
        StoreSimd,   ///< SIMD_SW: simdWidth words at addr.
        Vload,       ///< Wide load: addr -> scratchpad spOff.
        FrameStart,
        Remem,
        Vissue,      ///< Launches the microthread at `target`.
    };

    Kind kind = Kind::StoreWord;
    const Term *addr = nullptr;
    const Term *value = nullptr;
    const Term *spOff = nullptr;
    /** Predicate term the effect commits under; nullptr = always. */
    const Term *pred = nullptr;
    int coreOff = 0;     ///< Vload base core offset.
    int width = 0;       ///< Vload words per core.
    int variant = 0;     ///< VloadVariant.
    int target = -1;     ///< Vissue target (absolute pc).
    int pc = -1;         ///< Local index within the region.

    /** Field equality ignoring pc (terms compare by pointer). */
    bool sameAs(const SymEffect &o) const;
};

/** Outcome of executing one region. */
struct SymResult
{
    bool ok = false;
    std::string reason;              ///< Failure cause when !ok.
    std::vector<SymEffect> effects;  ///< In commit order.
    /** Final value of every register the region wrote. Registers it
     * only read keep their entry symbol and are not listed. */
    std::map<RegIdx, const Term *> regs;
    int paths = 0;                   ///< Paths merged at exit.
};

struct SymExecOptions
{
    int maxPaths = 8;     ///< Fork budget (then: cannot prove).
    int maxSteps = 8192;  ///< Total instruction budget, all paths.
};

/** Name a flat register index ("x5", "f1", "v2"). */
std::string symRegName(RegIdx r);

/**
 * Symbolically execute `code` as one region entered at its first
 * instruction with every register holding its entry symbol.
 * `baseIndex` is the absolute program index of code[0]; branch and
 * jump targets (absolute) are mapped into the region with it, and a
 * target exactly one past the region is the normal exit.
 */
SymResult symExecRegion(TermPool &pool,
                        const std::vector<Instruction> &code,
                        int baseIndex,
                        const SymExecOptions &opts = {});

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_SYMEXEC_HH
