/**
 * @file
 * Group deadlock-freedom analysis (the "token flow" pass): a forward
 * dataflow over the scalar-core instruction stream that counts frame
 * fill tokens (vload words destined for the scratchpad frame region)
 * against frame consumption (inline frame_start, and frame_starts
 * executed by issued microthreads) for every vector-core slot in the
 * group plus the core's own self slot.
 *
 * Two definite-wedge conditions are reported:
 *  - starvation: a frame_start (inline, or the minimum number a
 *    vissued microthread performs) needs more frame words than every
 *    preceding fill path can have delivered; frameReady() then never
 *    becomes true and the consumer spins forever;
 *  - over-pacing: a fill's guaranteed backlog exceeds what the
 *    hardware's frame counters can account (numCounters frames of
 *    the bound FrameCfg size), so the scalar core stalls forever on
 *    canAcceptFrameWrite with nothing left to drain the window.
 *
 * Both are evaluated on sound word-backlog intervals: fills with an
 * offset interval provably inside the frame region add to both
 * bounds, provably-outside fills are ignored, and unprovable fills
 * only raise the upper bound — so neither check can fire on a
 * correctly paced program (rejection-only soundness). Backlog grown
 * along loops is widened; a loop that may skip a fill therefore
 * disables the over-pacing check on that path rather than
 * misreporting it. Iteration-dependent overfill (a loop whose
 * backlog provably grows every trip) is a documented miss of this
 * under-approximation, not a false positive.
 */

#ifndef ROCKCRESS_ANALYSIS_TOKENFLOW_HH
#define ROCKCRESS_ANALYSIS_TOKENFLOW_HH

#include <string>
#include <vector>

#include "analysis/interval.hh"

namespace rockcress
{

/** One definite-wedge finding, anchored at an instruction. */
struct TokenDiag
{
    int pc = 0;
    std::string message;
};

/**
 * Run the token-flow deadlock analysis over the main routine.
 * `values` must already be solved; diagnostics come back in
 * instruction order.
 */
std::vector<TokenDiag>
checkFrameTokenFlow(const Program &p, const Cfg &cfg,
                    const BenchConfig &bench,
                    const MachineParams &params,
                    const IntervalAnalysis &values);

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_TOKENFLOW_HH
