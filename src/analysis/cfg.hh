/**
 * @file
 * Control-flow graph over an assembled Program. Instruction indices
 * are the nodes; edges follow the semantics of the tile pipeline
 * (src/core): conditional branches fall through or jump, JAL jumps,
 * HALT and VEND terminate a stream, DEVEC continues at both the next
 * instruction (scalar core) and the resume target (vector cores).
 *
 * A program is partitioned into routines: the main SPMD body entered
 * at instruction 0, plus one routine per microthread entry point
 * (the target of each VISSUE). The launching core does not branch at
 * a VISSUE — the microthread runs on the group's vector cores — so
 * VISSUE contributes a routine entry, not an edge.
 */

#ifndef ROCKCRESS_ANALYSIS_CFG_HH
#define ROCKCRESS_ANALYSIS_CFG_HH

#include <vector>

#include "isa/program.hh"

namespace rockcress
{

/** The flow graph of one assembled program. */
struct Cfg
{
    const Program *prog = nullptr;

    /**
     * Per-instruction successor indices (empty for HALT/VEND and for
     * unresolved JALR).
     */
    std::vector<std::vector<int>> succs;

    /** Distinct VISSUE targets in first-reference order. */
    std::vector<int> microthreadEntries;

    /** Instruction indices whose successor would fall off the end. */
    std::vector<int> fallsOffEnd;

    /**
     * Indices of JALR instructions that could not be resolved
     * statically. A jalr whose link register has a unique defining
     * instruction of known value (the matching jal, or a constant
     * addi from x0) gets a normal edge to its one possible target
     * instead of an entry here.
     */
    std::vector<int> indirectJumps;

    int size() const { return static_cast<int>(succs.size()); }
};

/** Build the CFG for a program. */
Cfg buildCfg(const Program &p);

/**
 * Instructions reachable from `entry` following CFG edges only
 * (VISSUE does not enter its microthread). Returned as a bitmap
 * indexed by instruction.
 */
std::vector<bool> reachableFrom(const Cfg &cfg, int entry);

/**
 * Shortest CFG path from `entry` to `target`, optionally skipping
 * nodes for which `blocked` returns true (the target itself is never
 * blocked). Empty when unreachable. Used to attach a witness path to
 * a diagnostic, e.g. the path along which a register stays undefined.
 */
std::vector<int> shortestPath(const Cfg &cfg, int entry, int target,
                              const std::vector<bool> *blocked = nullptr);

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_CFG_HH
