/**
 * @file
 * Generic worklist dataflow / abstract-interpretation solver over the
 * instruction-level Cfg (Section 4.1 toolchain support). Every
 * verifier pass and the interval/token-flow/performance analyses are
 * instances of one engine:
 *
 *  - a Domain supplies the lattice (bottom(), join()) and the
 *    transfer function; optional hooks add edge-sensitive refinement
 *    (branch conditions), widening for loops, and bottom detection so
 *    infeasible edges are not propagated;
 *  - solveDataflow() runs the chaotic iteration from a set of seeded
 *    entry states, forward or backward, with widening after a
 *    configurable number of joins per node followed by a bounded
 *    narrowing phase that recovers loop-head precision lost to
 *    widening (two descending passes, standard interval practice);
 *  - partitionRoutines() names the analysis units: the main SPMD body
 *    entered at instruction 0 plus one routine per microthread entry,
 *    so diagnostics can be keyed and sorted by (routine, pc);
 *  - vissueTokenFlow() computes, for every main-routine point, which
 *    vector-side code ran last (the region entry or a previously
 *    vissued microthread) — the interprocedural glue that chains
 *    microthread entry states through the scalar core's issue order.
 *
 * The solver is deterministic: FIFO worklist, successors in CFG
 * order, so diagnostics and reports are byte-stable.
 */

#ifndef ROCKCRESS_ANALYSIS_DATAFLOW_HH
#define ROCKCRESS_ANALYSIS_DATAFLOW_HH

#include <deque>
#include <functional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/cfg.hh"

namespace rockcress
{

/** One analysis unit: the main body or a microthread. */
struct Routine
{
    int entry = 0;          ///< Entry instruction index.
    std::string name;       ///< "main body" or "microthread at N".
    std::vector<bool> reach;  ///< Instructions reachable from entry.
};

/**
 * The routines of a program: index 0 is always the main body (entry
 * 0), followed by one routine per microthread entry in first-vissue
 * order. Out-of-range microthread entries get an empty reach set.
 */
std::vector<Routine> partitionRoutines(const Cfg &cfg);

/** Per-instruction predecessor lists (reverse of cfg.succs). */
std::vector<std::vector<int>> predecessors(const Cfg &cfg);

/**
 * What ran last on the vector side: the region entry itself (every
 * core's state when the group formed) or a previously issued
 * microthread.
 */
struct VissueToken
{
    bool isRegion = false;
    int pc = -1;  ///< Region-entry (vconfig) pc or microthread entry.

    bool
    operator<(const VissueToken &o) const
    {
        return std::tie(isRegion, pc) < std::tie(o.isRegion, o.pc);
    }
};

/**
 * Forward token dataflow over the main routine: for each reachable
 * instruction, the set of possible "last vector-side events".
 * `entersVectorRegion(pc)` must say whether the CSRW at `pc` is a
 * region-entering (nonzero) Vconfig write.
 */
std::vector<std::set<VissueToken>>
vissueTokenFlow(const Cfg &cfg,
                const std::function<bool(int)> &entersVectorRegion);

/** Solver knobs. */
struct SolveOptions
{
    bool backward = false;
    /** Joins into one node before widening kicks in. */
    int wideningThreshold = 4;
    /** Descending (narrowing) passes after the ascending phase. */
    int narrowingPasses = 2;
};

/** Result of one solve: per-instruction states. */
template <typename State>
struct Solution
{
    /**
     * Forward: the state before each instruction executes.
     * Backward: the state after it (facts that hold downstream).
     */
    std::vector<State> in;
    std::vector<bool> reached;  ///< Node received any state at all.
};

/**
 * Run one dataflow problem to fixpoint.
 *
 * Domain requirements:
 *   using State;
 *   State bottom() const;
 *   State transfer(int pc, const State &in) const;
 *   bool join(State &into, const State &from) const; // true: changed
 * Optional hooks, detected at compile time:
 *   State refineEdge(int from, int to, const State &out) const;
 *   bool isBottom(const State &s) const;   // skip dead edges
 *   void widen(State &cur, const State &prev) const;
 *
 * `seeds` are (node, entry state) pairs; `restrict` (when non-null)
 * confines propagation to one routine's reachable set. Unreachable
 * nodes keep bottom() and reached=false.
 */
template <typename Domain>
Solution<typename Domain::State>
solveDataflow(const Cfg &cfg, const Domain &dom,
              const std::vector<std::pair<int, typename Domain::State>>
                  &seeds,
              const std::vector<bool> *restrictTo = nullptr,
              SolveOptions opts = {})
{
    using State = typename Domain::State;
    const int n = cfg.size();
    Solution<State> sol;
    sol.in.assign(static_cast<size_t>(n), dom.bottom());
    sol.reached.assign(static_cast<size_t>(n), false);
    if (n == 0)
        return sol;

    std::vector<std::vector<int>> preds;
    if (opts.backward)
        preds = predecessors(cfg);
    auto flowTargets = [&](int pc) -> const std::vector<int> & {
        return opts.backward ? preds[static_cast<size_t>(pc)]
                             : cfg.succs[static_cast<size_t>(pc)];
    };
    auto inScope = [&](int pc) {
        return !restrictTo || (*restrictTo)[static_cast<size_t>(pc)];
    };
    auto stateIsBottom = [&](const State &s) {
        if constexpr (requires { dom.isBottom(s); })
            return dom.isBottom(s);
        else
            return false;
    };
    auto edgeState = [&](int from, int to, const State &out) {
        if constexpr (requires { dom.refineEdge(from, to, out); }) {
            if (!opts.backward)
                return dom.refineEdge(from, to, out);
        }
        (void)to;
        return out;
    };

    std::vector<int> joins(static_cast<size_t>(n), 0);
    std::vector<bool> queued(static_cast<size_t>(n), false);
    std::deque<int> work;
    auto enqueue = [&](int pc) {
        if (!queued[static_cast<size_t>(pc)]) {
            queued[static_cast<size_t>(pc)] = true;
            work.push_back(pc);
        }
    };

    for (const auto &[pc, st] : seeds) {
        if (pc < 0 || pc >= n || !inScope(pc))
            continue;
        dom.join(sol.in[static_cast<size_t>(pc)], st);
        sol.reached[static_cast<size_t>(pc)] = true;
        enqueue(pc);
    }

    // Ascending phase with widening.
    while (!work.empty()) {
        int pc = work.front();
        work.pop_front();
        queued[static_cast<size_t>(pc)] = false;
        State out = dom.transfer(pc, sol.in[static_cast<size_t>(pc)]);
        if (stateIsBottom(out))
            continue;
        for (int s : flowTargets(pc)) {
            if (!inScope(s))
                continue;
            State e = edgeState(pc, s, out);
            if (stateIsBottom(e))
                continue;
            State &dst = sol.in[static_cast<size_t>(s)];
            bool first = !sol.reached[static_cast<size_t>(s)];
            State prev = dst;
            bool changed = dom.join(dst, e);
            if (first) {
                sol.reached[static_cast<size_t>(s)] = true;
                enqueue(s);
                continue;
            }
            if (!changed)
                continue;
            if (++joins[static_cast<size_t>(s)] >=
                opts.wideningThreshold) {
                if constexpr (requires { dom.widen(dst, prev); })
                    dom.widen(dst, prev);
            }
            enqueue(s);
        }
    }

    // Descending (narrowing) phase: recompute each reached node's
    // state fresh from its incoming edges. Sound for monotone
    // transfers starting from a post-fixpoint; bounded pass count
    // guarantees termination without a narrowing operator.
    if (!opts.backward && opts.narrowingPasses > 0) {
        std::vector<std::vector<int>> fpreds = predecessors(cfg);
        std::vector<char> isSeed(static_cast<size_t>(n), 0);
        std::vector<State> seedState(static_cast<size_t>(n),
                                     dom.bottom());
        for (const auto &[pc, st] : seeds) {
            if (pc < 0 || pc >= n || !inScope(pc))
                continue;
            isSeed[static_cast<size_t>(pc)] = 1;
            dom.join(seedState[static_cast<size_t>(pc)], st);
        }
        for (int pass = 0; pass < opts.narrowingPasses; ++pass) {
            for (int s = 0; s < n; ++s) {
                if (!sol.reached[static_cast<size_t>(s)] || !inScope(s))
                    continue;
                State acc = dom.bottom();
                bool any = false;
                if (isSeed[static_cast<size_t>(s)]) {
                    dom.join(acc, seedState[static_cast<size_t>(s)]);
                    any = true;
                }
                for (int p : fpreds[static_cast<size_t>(s)]) {
                    if (!inScope(p) ||
                        !sol.reached[static_cast<size_t>(p)]) {
                        continue;
                    }
                    State out = dom.transfer(
                        p, sol.in[static_cast<size_t>(p)]);
                    if (stateIsBottom(out))
                        continue;
                    State e = edgeState(p, s, out);
                    if (stateIsBottom(e))
                        continue;
                    dom.join(acc, e);
                    any = true;
                }
                if (any)
                    sol.in[static_cast<size_t>(s)] = std::move(acc);
            }
        }
    }
    return sol;
}

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_DATAFLOW_HH
