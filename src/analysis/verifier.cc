#include "analysis/verifier.hh"

#include <algorithm>
#include <array>
#include <bitset>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "analysis/cfg.hh"

namespace rockcress
{

namespace
{

// --- Instruction read sets ---------------------------------------------------

/** Flat register indices an instruction reads (x0 reads included). */
void
readRegs(const Instruction &i, std::vector<RegIdx> &out)
{
    out.clear();
    switch (i.op) {
      case Opcode::NOP: case Opcode::LUI: case Opcode::JAL:
      case Opcode::HALT: case Opcode::BARRIER: case Opcode::CSRR:
      case Opcode::VISSUE: case Opcode::VEND: case Opcode::DEVEC:
      case Opcode::REMEM: case Opcode::FRAME_START:
        return;
      case Opcode::CSRW: case Opcode::JALR:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::LW: case Opcode::FLW: case Opcode::SIMD_LW:
      case Opcode::FSQRT: case Opcode::FABS: case Opcode::FCVT_WS:
      case Opcode::FCVT_SW: case Opcode::FMV_XW: case Opcode::FMV_WX:
      case Opcode::SIMD_BCAST: case Opcode::SIMD_REDSUM:
        out.push_back(i.rs1);
        return;
      case Opcode::FMADD: case Opcode::SIMD_FMA:
        out.push_back(i.rs1);
        out.push_back(i.rs2);
        out.push_back(i.rs3);
        return;
      default:
        // Register-register ALU/FP/SIMD ops, branches, stores, vload,
        // predication: rs1 and rs2 (unused slots hold x0).
        out.push_back(i.rs1);
        out.push_back(i.rs2);
        return;
    }
}

// --- Constant propagation ----------------------------------------------------

/** Integer-register constant state (x0..x31 only). */
struct ConstState
{
    std::uint32_t known = 0;             ///< Bit n: x(n) has value v[n].
    std::array<std::int32_t, 32> v{};

    bool
    get(RegIdx r, std::int32_t &out) const
    {
        if (r == regZero) {
            out = 0;
            return true;
        }
        if (r >= 32 || !(known & (1u << r)))
            return false;
        out = v[r];
        return true;
    }

    void
    set(RegIdx r, std::int32_t value)
    {
        if (r == regZero || r >= 32)
            return;
        known |= 1u << r;
        v[r] = value;
    }

    void
    clobber(RegIdx r)
    {
        if (r < 32)
            known &= ~(1u << r);
    }

    /** Lattice meet: keep only registers equal on both sides. */
    bool
    meet(const ConstState &other)
    {
        std::uint32_t k = known & other.known;
        for (int r = 1; r < 32; ++r) {
            if ((k & (1u << r)) && v[static_cast<size_t>(r)] !=
                                       other.v[static_cast<size_t>(r)]) {
                k &= ~(1u << r);
            }
        }
        bool changed = k != known;
        known = k;
        return changed;
    }
};

/** Apply one instruction to a constant state. */
void
constTransfer(const Instruction &i, ConstState &s)
{
    int rd = destReg(i);
    if (rd < 0)
        return;
    if (rd >= 32) {
        return;  // FP/SIMD destinations are not tracked.
    }
    auto bin = [&](auto f) {
        std::int32_t a, b;
        if (s.get(i.rs1, a) && s.get(i.rs2, b))
            s.set(static_cast<RegIdx>(rd), f(a, b));
        else
            s.clobber(static_cast<RegIdx>(rd));
    };
    auto uni = [&](auto f) {
        std::int32_t a;
        if (s.get(i.rs1, a))
            s.set(static_cast<RegIdx>(rd), f(a));
        else
            s.clobber(static_cast<RegIdx>(rd));
    };
    auto u32 = [](std::int32_t x) { return static_cast<std::uint32_t>(x); };
    std::int32_t imm = i.imm;
    switch (i.op) {
      case Opcode::ADD: bin([](auto a, auto b) { return a + b; }); return;
      case Opcode::SUB: bin([](auto a, auto b) { return a - b; }); return;
      case Opcode::AND: bin([](auto a, auto b) { return a & b; }); return;
      case Opcode::OR:  bin([](auto a, auto b) { return a | b; }); return;
      case Opcode::XOR: bin([](auto a, auto b) { return a ^ b; }); return;
      case Opcode::SLL:
        bin([&](auto a, auto b) {
            return static_cast<std::int32_t>(u32(a) << (u32(b) & 31));
        });
        return;
      case Opcode::SRL:
        bin([&](auto a, auto b) {
            return static_cast<std::int32_t>(u32(a) >> (u32(b) & 31));
        });
        return;
      case Opcode::SRA:
        bin([&](auto a, auto b) { return a >> (u32(b) & 31); });
        return;
      case Opcode::SLT:
        bin([](auto a, auto b) { return a < b ? 1 : 0; });
        return;
      case Opcode::SLTU:
        bin([&](auto a, auto b) { return u32(a) < u32(b) ? 1 : 0; });
        return;
      case Opcode::MUL:
        bin([](auto a, auto b) {
            return static_cast<std::int32_t>(
                static_cast<std::int64_t>(a) * b);
        });
        return;
      case Opcode::DIV:
        bin([](auto a, auto b) { return b == 0 ? -1 : a / b; });
        return;
      case Opcode::REM:
        bin([](auto a, auto b) { return b == 0 ? a : a % b; });
        return;
      case Opcode::ADDI: uni([&](auto a) { return a + imm; }); return;
      case Opcode::ANDI: uni([&](auto a) { return a & imm; }); return;
      case Opcode::ORI:  uni([&](auto a) { return a | imm; }); return;
      case Opcode::XORI: uni([&](auto a) { return a ^ imm; }); return;
      case Opcode::SLLI:
        uni([&](auto a) {
            return static_cast<std::int32_t>(u32(a) << (u32(imm) & 31));
        });
        return;
      case Opcode::SRLI:
        uni([&](auto a) {
            return static_cast<std::int32_t>(u32(a) >> (u32(imm) & 31));
        });
        return;
      case Opcode::SRAI:
        uni([&](auto a) { return a >> (u32(imm) & 31); });
        return;
      case Opcode::SLTI:
        uni([&](auto a) { return a < imm ? 1 : 0; });
        return;
      case Opcode::LUI:
        s.set(static_cast<RegIdx>(rd),
              static_cast<std::int32_t>(u32(imm) << 12));
        return;
      default:
        // Loads, CSR reads, frame_start, FP moves: value unknown.
        s.clobber(static_cast<RegIdx>(rd));
        return;
    }
}

// --- The verifier ------------------------------------------------------------

using DefSet = std::bitset<numArchRegs>;

class Verifier
{
  public:
    Verifier(const Program &p, const BenchConfig &cfg,
             const MachineParams &params, const VerifierOptions &opts)
        : p_(p), cfg_(cfg), params_(params), opts_(opts),
          graph_(buildCfg(p))
    {}

    VerifyReport
    run()
    {
        mainReach_ = reachableFrom(graph_, 0);
        for (int e : graph_.microthreadEntries)
            mtReach_[e] = reachableFrom(graph_, e);

        checkStructure();
        runConstProp();
        checkVectorRegions();
        checkMicrothreadBodies();
        checkFrameBalance();
        checkFrameConfigs();
        checkVloads();
        checkPredication();
        if (opts_.checkUseBeforeDef)
            checkUseBeforeDef();

        VerifyReport rep;
        rep.diagnostics = std::move(diags_);
        return rep;
    }

  private:
    // --- Diagnostics ---------------------------------------------------------

    void
    diag(Check c, int pc, const std::string &msg,
         std::vector<int> path = {})
    {
        if (static_cast<int>(diags_.size()) >= opts_.maxDiagnostics)
            return;
        if (!reported_.insert({static_cast<int>(c), pc}).second)
            return;
        Diagnostic d;
        d.check = c;
        d.pc = pc;
        d.message = msg;
        d.path = std::move(path);
        diags_.push_back(std::move(d));
    }

    /** Witness path from `entry` to `pc` (plain shortest path). */
    std::vector<int>
    witness(int entry, int pc) const
    {
        return shortestPath(graph_, entry, pc);
    }

    /** Routine entry whose reach covers `pc` (main preferred). */
    int
    routineEntryOf(int pc) const
    {
        if (pc >= 0 && pc < graph_.size() &&
            mainReach_[static_cast<size_t>(pc)]) {
            return 0;
        }
        for (const auto &[entry, reach] : mtReach_) {
            if (pc >= 0 && pc < graph_.size() &&
                reach[static_cast<size_t>(pc)]) {
                return entry;
            }
        }
        return -1;
    }

    // --- Structural checks ---------------------------------------------------

    void
    checkStructure()
    {
        for (int pc : graph_.fallsOffEnd) {
            diag(Check::Cfg, pc,
                 "control flow falls off the end of the program",
                 witness(std::max(0, routineEntryOf(pc)), pc));
        }
        for (int pc : graph_.indirectJumps) {
            diag(Check::Cfg, pc,
                 "indirect jump (jalr) is not statically analyzable; "
                 "the verifier cannot prove this program well-formed");
        }
        for (int e : graph_.microthreadEntries) {
            if (e < 0 || e >= graph_.size()) {
                diag(Check::Cfg, e,
                     "vissue targets instruction " + std::to_string(e) +
                         ", outside the program");
            }
        }
        // VEND reachable from the main entry means either a vend in
        // plain SPMD code or main code flowing into a microthread.
        for (int pc = 0; pc < graph_.size(); ++pc) {
            if (mainReach_[static_cast<size_t>(pc)] &&
                p_.code[static_cast<size_t>(pc)].op == Opcode::VEND) {
                diag(Check::VectorRegion, pc,
                     "vend reached from the main instruction stream "
                     "(microthread code must only be entered by vissue)",
                     witness(0, pc));
            }
        }
        // A microthread that can flow into another microthread's entry
        // is missing its vend (a dangling vissue region).
        for (const auto &[entry, reach] : mtReach_) {
            for (int other : graph_.microthreadEntries) {
                if (other != entry && reach[static_cast<size_t>(other)]) {
                    diag(Check::VectorRegion, other,
                         "microthread at " + std::to_string(entry) +
                             " falls through into the microthread at " +
                             std::to_string(other) +
                             " (missing vend)",
                         shortestPath(graph_, entry, other));
                }
            }
        }
    }

    // --- Constant propagation ------------------------------------------------

    void
    runConstProp()
    {
        int n = graph_.size();
        constIn_.assign(static_cast<size_t>(n), ConstState{});
        std::vector<bool> seeded(static_cast<size_t>(n), false);
        std::deque<int> work;
        auto seed = [&](int entry) {
            if (entry < 0 || entry >= n ||
                seeded[static_cast<size_t>(entry)]) {
                return;
            }
            seeded[static_cast<size_t>(entry)] = true;
            visited_.insert(entry);
            work.push_back(entry);
        };
        seed(0);
        for (int e : graph_.microthreadEntries)
            seed(e);

        // Entry states start with nothing known (x0 is implicit), so
        // the meet with any propagated state only narrows.
        std::vector<bool> inWork(static_cast<size_t>(n), false);
        for (int pc : work)
            inWork[static_cast<size_t>(pc)] = true;
        while (!work.empty()) {
            int pc = work.front();
            work.pop_front();
            inWork[static_cast<size_t>(pc)] = false;
            ConstState out = constIn_[static_cast<size_t>(pc)];
            constTransfer(p_.code[static_cast<size_t>(pc)], out);
            for (int s : graph_.succs[static_cast<size_t>(pc)]) {
                ConstState &in = constIn_[static_cast<size_t>(s)];
                bool changed;
                if (!visited_.count(s)) {
                    visited_.insert(s);
                    in = out;
                    changed = true;
                } else {
                    changed = in.meet(out);
                }
                if (changed && !inWork[static_cast<size_t>(s)]) {
                    inWork[static_cast<size_t>(s)] = true;
                    work.push_back(s);
                }
            }
        }
    }

    /** Constant value of an integer register at a program point. */
    bool
    constAt(int pc, RegIdx r, std::int32_t &out) const
    {
        return constIn_[static_cast<size_t>(pc)].get(r, out);
    }

    /** Is this CSRW-to-Vconfig a region entry (nonzero write)? */
    bool
    entersVectorMode(int pc, const Instruction &i) const
    {
        std::int32_t v;
        if (constAt(pc, i.rs1, v))
            return v != 0;
        return true;  // Unknown value: assume it enters.
    }

    // --- Vector regions ------------------------------------------------------

    enum RegionState : std::uint8_t
    {
        rsUnreached = 0,
        rsOutside,
        rsInside,
        rsConflict,
    };

    void
    checkVectorRegions()
    {
        int n = graph_.size();
        region_.assign(static_cast<size_t>(n), rsUnreached);
        if (n == 0)
            return;
        region_[0] = rsOutside;
        std::deque<int> work{0};
        while (!work.empty()) {
            int pc = work.front();
            work.pop_front();
            RegionState in = region_[static_cast<size_t>(pc)];
            if (in == rsConflict)
                continue;
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            RegionState out = in;
            bool inside = in == rsInside;
            switch (i.op) {
              case Opcode::CSRW:
                if (static_cast<Csr>(i.sub) == Csr::Vconfig &&
                    entersVectorMode(pc, i)) {
                    if (!cfg_.isVector()) {
                        diag(Check::VectorRegion, pc,
                             "vector region entered under the "
                             "non-vector configuration '" + cfg_.name +
                                 "' (group size 1)",
                             witness(0, pc));
                    }
                    if (inside) {
                        diag(Check::VectorRegion, pc,
                             "nested vector region: vconfig written "
                             "while already in a vector region",
                             witness(0, pc));
                    }
                    out = rsInside;
                }
                break;
              case Opcode::DEVEC:
                if (!inside) {
                    diag(Check::VectorRegion, pc,
                         "devec outside a vector region",
                         witness(0, pc));
                }
                out = rsOutside;
                break;
              case Opcode::VISSUE:
                if (!inside) {
                    diag(Check::VectorRegion, pc,
                         "vissue outside a vector region (no vconfig "
                         "write dominates it)",
                         witness(0, pc));
                }
                break;
              case Opcode::VLOAD: {
                auto variant = static_cast<VloadVariant>(i.sub);
                if (variant != VloadVariant::Self && !inside) {
                    diag(Check::VectorRegion, pc,
                         "group-routed vload outside a vector region",
                         witness(0, pc));
                }
                break;
              }
              case Opcode::BARRIER:
                if (inside) {
                    diag(Check::VectorRegion, pc,
                         "barrier inside a vector region (devec must "
                         "disband the group first)",
                         witness(0, pc));
                }
                break;
              case Opcode::HALT:
                if (inside) {
                    diag(Check::VectorRegion, pc,
                         "halt inside a vector region (dangling "
                         "region: no devec on this path)",
                         witness(0, pc));
                }
                break;
              default:
                break;
            }
            for (int s : graph_.succs[static_cast<size_t>(pc)]) {
                RegionState &dst = region_[static_cast<size_t>(s)];
                RegionState merged;
                if (dst == rsUnreached) {
                    merged = out;
                } else if (dst == out || dst == rsConflict) {
                    continue;
                } else {
                    merged = rsConflict;
                    diag(Check::VectorRegion, s,
                         "inconsistent vector-region state at join: "
                         "in a region on one incoming path, outside "
                         "on another",
                         witness(0, s));
                }
                dst = merged;
                work.push_back(s);
            }
        }
    }

    /** Region state at a main-routine pc (valid after the pass). */
    bool
    insideRegion(int pc) const
    {
        return region_[static_cast<size_t>(pc)] == rsInside;
    }

    // --- Microthread body legality ------------------------------------------

    void
    checkMicrothreadBodies()
    {
        for (const auto &[entry, reach] : mtReach_) {
            for (int pc = 0; pc < graph_.size(); ++pc) {
                if (!reach[static_cast<size_t>(pc)])
                    continue;
                const Instruction &i = p_.code[static_cast<size_t>(pc)];
                const char *what = nullptr;
                switch (i.op) {
                  case Opcode::VISSUE: what = "vissue"; break;
                  case Opcode::DEVEC: what = "devec"; break;
                  case Opcode::BARRIER: what = "barrier"; break;
                  case Opcode::HALT: what = "halt"; break;
                  case Opcode::CSRW:
                    what = "CSR write";
                    break;
                  default: break;
                }
                if (what) {
                    diag(Check::VectorRegion, pc,
                         std::string(what) +
                             " inside the microthread entered at " +
                             std::to_string(entry) +
                             " (microthreads must end in vend)",
                         shortestPath(graph_, entry, pc));
                }
            }
        }
    }

    // --- Frame balance -------------------------------------------------------

    void
    checkFrameBalance()
    {
        checkFrameBalanceRoutine(0, mainReach_, "main body");
        for (const auto &[entry, reach] : mtReach_) {
            checkFrameBalanceRoutine(
                entry, reach,
                "microthread at " + std::to_string(entry));
        }
    }

    void
    checkFrameBalanceRoutine(int entry, const std::vector<bool> &reach,
                             const std::string &where)
    {
        int n = graph_.size();
        if (entry < 0 || entry >= n)
            return;
        // Per-pc open-frame count; -1 unreached, -2 conflict.
        std::vector<int> open(static_cast<size_t>(n), -1);
        open[static_cast<size_t>(entry)] = 0;
        std::deque<int> work{entry};
        while (!work.empty()) {
            int pc = work.front();
            work.pop_front();
            int in = open[static_cast<size_t>(pc)];
            if (in == -2)
                continue;
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            int out = in;
            switch (i.op) {
              case Opcode::FRAME_START:
                if (in >= 1) {
                    diag(Check::FrameBalance, pc,
                         "frame_start while a frame is already open in "
                         "the " + where + " (missing remem)",
                         shortestPath(graph_, entry, pc));
                }
                out = std::min(in + 1, 4);
                break;
              case Opcode::REMEM:
                if (in == 0) {
                    diag(Check::FrameBalance, pc,
                         "remem without a matching frame_start in the " +
                             where +
                             " (would free a frame that was never "
                             "consumed)",
                         shortestPath(graph_, entry, pc));
                    out = 0;
                } else {
                    out = in - 1;
                }
                break;
              case Opcode::HALT:
              case Opcode::VEND:
                if (in > 0) {
                    diag(Check::FrameBalance, pc,
                         "path through the " + where +
                             " ends with " + std::to_string(in) +
                             " open frame(s): frame_start without "
                             "remem deadlocks the frame queue",
                         shortestPath(graph_, entry, pc));
                }
                break;
              case Opcode::DEVEC:
                if (in > 0) {
                    diag(Check::FrameBalance, pc,
                         "devec with " + std::to_string(in) +
                             " open frame(s) in the " + where,
                         shortestPath(graph_, entry, pc));
                }
                break;
              default:
                break;
            }
            for (int s : graph_.succs[static_cast<size_t>(pc)]) {
                if (!reach[static_cast<size_t>(s)])
                    continue;
                int &dst = open[static_cast<size_t>(s)];
                if (dst == -1) {
                    dst = out;
                    work.push_back(s);
                } else if (dst != out && dst != -2) {
                    diag(Check::FrameBalance, s,
                         "inconsistent frame_start/remem balance at "
                         "join in the " + where + " (" +
                             std::to_string(dst) + " vs " +
                             std::to_string(out) +
                             " open frames depending on path)",
                         shortestPath(graph_, entry, s));
                    dst = -2;
                }
            }
        }
    }

    // --- FrameCfg legality ---------------------------------------------------

    void
    checkFrameConfigs()
    {
        bool haveFrameOps = false;
        bool haveFrameCfg = false;
        for (int pc = 0; pc < graph_.size(); ++pc) {
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            if (i.op == Opcode::FRAME_START || i.op == Opcode::REMEM)
                haveFrameOps = true;
            if (i.op != Opcode::CSRW ||
                static_cast<Csr>(i.sub) != Csr::FrameCfg) {
                continue;
            }
            haveFrameCfg = true;
            if (routineEntryOf(pc) < 0)
                continue;  // Unreachable: no point checking values.
            std::int32_t v;
            if (!constAt(pc, i.rs1, v))
                continue;
            int fw = v & 0xffff;
            int nf = (v >> 16) & 0xffff;
            if (fw == 0 && nf == 0)
                continue;  // Disables frames; always legal.
            std::string prefix =
                "frame config " + std::to_string(fw) + " words x " +
                std::to_string(nf) + " frames: ";
            if (fw <= 0 || nf <= 0) {
                diag(Check::FrameBalance, pc,
                     prefix + "both fields must be positive",
                     witness(0, pc));
            } else {
                if (nf < params_.frameCounters) {
                    diag(Check::FrameBalance, pc,
                         prefix + "fewer frames than the " +
                             std::to_string(params_.frameCounters) +
                             " hardware frame counters",
                         witness(0, pc));
                }
                if (fw >= 1024) {
                    diag(Check::FrameBalance, pc,
                         prefix +
                             "frame size exceeds a 10-bit counter",
                         witness(0, pc));
                }
                Addr region = static_cast<Addr>(fw) *
                              static_cast<Addr>(nf) * wordBytes;
                if (region > params_.spadBytes) {
                    diag(Check::FrameBalance, pc,
                         prefix + "frame region (" +
                             std::to_string(region) +
                             "B) exceeds the " +
                             std::to_string(params_.spadBytes) +
                             "B scratchpad",
                         witness(0, pc));
                }
            }
        }
        if (haveFrameOps && !haveFrameCfg) {
            for (int pc = 0; pc < graph_.size(); ++pc) {
                Opcode op = p_.code[static_cast<size_t>(pc)].op;
                if (op == Opcode::FRAME_START || op == Opcode::REMEM) {
                    diag(Check::FrameBalance, pc,
                         "frame_start/remem with no FrameCfg write "
                         "anywhere in the program",
                         witness(std::max(0, routineEntryOf(pc)), pc));
                    break;
                }
            }
        }
    }

    // --- vload legality ------------------------------------------------------

    void
    checkVloads()
    {
        Addr line = cfg_.longLines ? 1024 : params_.lineBytes;
        for (int pc = 0; pc < graph_.size(); ++pc) {
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            if (i.op != Opcode::VLOAD)
                continue;
            int entry = routineEntryOf(pc);
            if (entry < 0)
                continue;  // Unreachable.
            auto path = [&] { return witness(entry, pc); };
            auto variant = static_cast<VloadVariant>(i.sub);
            int w = i.imm2;
            int coreOff = i.imm;
            if (!cfg_.wideAccess) {
                diag(Check::Vload, pc,
                     "vload under configuration '" + cfg_.name +
                         "', which has no wide-access support",
                     path());
                continue;
            }
            if (w <= 0) {
                diag(Check::Vload, pc,
                     "vload width must be positive (got " +
                         std::to_string(w) + ")",
                     path());
                continue;
            }
            int total = w;
            if (variant != VloadVariant::Self) {
                if (!cfg_.isVector()) {
                    diag(Check::Vload, pc,
                         "group-routed vload under the non-vector "
                         "configuration '" + cfg_.name + "'",
                         path());
                    continue;
                }
                if (coreOff < 0 || coreOff >= cfg_.groupSize) {
                    diag(Check::Vload, pc,
                         "vload core offset " + std::to_string(coreOff) +
                             " outside the group [0, " +
                             std::to_string(cfg_.groupSize) + ")",
                         path());
                    continue;
                }
                if (variant == VloadVariant::Group)
                    total = w * (cfg_.groupSize - coreOff);
            }
            if (static_cast<Addr>(total) * wordBytes > line) {
                diag(Check::Vload, pc,
                     "vload of " + std::to_string(total) +
                         " words exceeds the " + std::to_string(line) +
                         "-byte cache line",
                     path());
            }
            std::int32_t addr;
            if (constAt(pc, i.rs1, addr) && addr % 4 != 0) {
                diag(Check::Vload, pc,
                     "misaligned vload address " + std::to_string(addr) +
                         " (must be word-aligned; the prefix/suffix "
                         "variants only handle line-boundary splits)",
                     path());
            }
            std::int32_t spOff;
            if (constAt(pc, i.rs2, spOff)) {
                if (spOff % 4 != 0) {
                    diag(Check::Vload, pc,
                         "misaligned vload scratchpad offset " +
                             std::to_string(spOff),
                         path());
                } else if (spOff < 0 ||
                           static_cast<Addr>(spOff) +
                                   static_cast<Addr>(w) * wordBytes >
                               params_.spadBytes) {
                    diag(Check::Vload, pc,
                         "vload of " + std::to_string(w) +
                             " words at scratchpad offset " +
                             std::to_string(spOff) + " overruns the " +
                             std::to_string(params_.spadBytes) +
                             "B scratchpad",
                         path());
                }
            }
        }
    }

    // --- Predication ---------------------------------------------------------

    enum PredState : std::uint8_t
    {
        psUnreached = 0,
        psTrue,
        psMaybeFalse,
    };

    void
    checkPredication()
    {
        checkPredicationRoutine(0, mainReach_, false);
        for (const auto &[entry, reach] : mtReach_)
            checkPredicationRoutine(entry, reach, true);
    }

    bool
    predDefinitelyTrue(int pc, const Instruction &i) const
    {
        std::int32_t a = 0, b = 0;
        bool ka = constAt(pc, i.rs1, a);
        bool kb = constAt(pc, i.rs2, b);
        if (i.op == Opcode::PRED_EQ) {
            if (i.rs1 == i.rs2)
                return true;
            return ka && kb && a == b;
        }
        return ka && kb && a != b;  // PRED_NEQ.
    }

    void
    checkPredicationRoutine(int entry, const std::vector<bool> &reach,
                            bool isMicrothread)
    {
        int n = graph_.size();
        if (entry < 0 || entry >= n)
            return;
        std::vector<PredState> st(static_cast<size_t>(n), psUnreached);
        st[static_cast<size_t>(entry)] = psTrue;
        std::deque<int> work{entry};
        while (!work.empty()) {
            int pc = work.front();
            work.pop_front();
            PredState in = st[static_cast<size_t>(pc)];
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            PredState out = in;
            if (i.op == Opcode::PRED_EQ || i.op == Opcode::PRED_NEQ) {
                if (i.op == Opcode::PRED_NEQ && i.rs1 == i.rs2) {
                    diag(Check::Predication, pc,
                         "pred_neq of a register with itself leaves "
                         "the predicate permanently false",
                         shortestPath(graph_, entry, pc));
                }
                out = predDefinitelyTrue(pc, i) ? psTrue : psMaybeFalse;
            } else if (in == psMaybeFalse) {
                const char *why = nullptr;
                switch (i.op) {
                  case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
                  case Opcode::BGE: case Opcode::BLTU:
                  case Opcode::BGEU: case Opcode::JAL:
                  case Opcode::JALR:
                    why = "a squashed branch never resolves and "
                          "deadlocks the frontend";
                    break;
                  case Opcode::FRAME_START:
                  case Opcode::REMEM:
                    why = "squashing it unbalances the frame queue";
                    break;
                  case Opcode::VISSUE:
                    why = "squashing it desynchronizes the vector "
                          "group";
                    break;
                  case Opcode::BARRIER:
                    why = "a squashed barrier arrival hangs the "
                          "machine";
                    break;
                  case Opcode::HALT:
                    why = "a squashed halt never terminates the core";
                    break;
                  case Opcode::CSRW:
                    why = "a squashed CSR write corrupts the "
                          "vector-mode handshake";
                    break;
                  case Opcode::VEND:
                    if (isMicrothread) {
                        diag(Check::Predication, pc,
                             "microthread may end with the predicate "
                             "off; reset it (pred_eq x0, x0) before "
                             "vend so the next microthread is not "
                             "squashed",
                             shortestPath(graph_, entry, pc));
                    }
                    break;
                  default:
                    break;
                }
                if (why) {
                    diag(Check::Predication, pc,
                         std::string(opcodeName(i.op)) +
                             " while the predicate may be off: " + why,
                         shortestPath(graph_, entry, pc));
                }
            }
            for (int s : graph_.succs[static_cast<size_t>(pc)]) {
                if (!reach[static_cast<size_t>(s)])
                    continue;
                PredState &dst = st[static_cast<size_t>(s)];
                PredState merged =
                    dst == psUnreached
                        ? out
                        : (dst == out ? dst : psMaybeFalse);
                if (merged != dst) {
                    dst = merged;
                    work.push_back(s);
                }
            }
        }
    }

    // --- Use before def ------------------------------------------------------

    void
    checkUseBeforeDef()
    {
        int n = graph_.size();
        if (n == 0)
            return;

        // Pass 1: definitely-defined sets over the main routine.
        std::vector<DefSet> mainIn = defDataflow(0, mainReach_, seedSet());

        // Pass 2: chain microthread entry states through the scalar
        // core's vissue order. A token is either a region entry pc
        // (the defs every core holds when the group forms) or a
        // previously issued microthread (defs at its vend).
        struct Token
        {
            bool isRegion;
            int pc;  ///< Region-entry pc or microthread entry pc.
            bool operator<(const Token &o) const
            {
                return std::tie(isRegion, pc) <
                       std::tie(o.isRegion, o.pc);
            }
        };
        std::vector<std::set<Token>> lastRun(static_cast<size_t>(n));
        std::vector<bool> tokSeen(static_cast<size_t>(n), false);
        {
            std::deque<int> work{0};
            tokSeen[0] = true;
            // Before any region entry nothing vector-side has run.
            while (!work.empty()) {
                int pc = work.front();
                work.pop_front();
                const Instruction &i = p_.code[static_cast<size_t>(pc)];
                std::set<Token> out = lastRun[static_cast<size_t>(pc)];
                if (i.op == Opcode::CSRW &&
                    static_cast<Csr>(i.sub) == Csr::Vconfig &&
                    entersVectorMode(pc, i)) {
                    out = {Token{true, pc}};
                } else if (i.op == Opcode::VISSUE) {
                    out = {Token{false, i.imm}};
                }
                for (int s : graph_.succs[static_cast<size_t>(pc)]) {
                    auto &dst = lastRun[static_cast<size_t>(s)];
                    size_t before = dst.size();
                    dst.insert(out.begin(), out.end());
                    if (!tokSeen[static_cast<size_t>(s)] ||
                        dst.size() != before) {
                        tokSeen[static_cast<size_t>(s)] = true;
                        work.push_back(s);
                    }
                }
            }
        }

        // Fixpoint over microthread entry/exit def sets.
        std::map<int, DefSet> mtIn, mtOut;
        for (int e : graph_.microthreadEntries) {
            mtIn[e].set();   // Start at top; iteration only narrows.
            mtOut[e].set();
        }
        std::map<int, std::vector<DefSet>> mtStates;
        bool changed = true;
        while (changed) {
            changed = false;
            // Recompute each entry state from the vissue sites.
            for (int e : graph_.microthreadEntries) {
                DefSet in;
                in.set();
                bool any = false;
                for (int pc = 0; pc < n; ++pc) {
                    if (!mainReach_[static_cast<size_t>(pc)])
                        continue;
                    const Instruction &i =
                        p_.code[static_cast<size_t>(pc)];
                    if (i.op != Opcode::VISSUE || i.imm != e)
                        continue;
                    for (const Token &t :
                         lastRun[static_cast<size_t>(pc)]) {
                        any = true;
                        if (t.isRegion)
                            in &= mainIn[static_cast<size_t>(t.pc)];
                        else
                            in &= mtOut[t.pc];
                    }
                }
                if (!any)
                    in = seedSet();  // Unreached or outside a region.
                in |= seedSet();
                if (in != mtIn[e]) {
                    mtIn[e] = in;
                    changed = true;
                }
            }
            // Re-run each microthread's dataflow with its entry state.
            for (int e : graph_.microthreadEntries) {
                if (e < 0 || e >= n)
                    continue;
                auto states = defDataflow(e, mtReach_.at(e), mtIn[e]);
                DefSet out;
                out.set();
                bool sawEnd = false;
                for (int pc = 0; pc < n; ++pc) {
                    if (!mtReach_.at(e)[static_cast<size_t>(pc)])
                        continue;
                    if (p_.code[static_cast<size_t>(pc)].op ==
                        Opcode::VEND) {
                        out &= states[static_cast<size_t>(pc)];
                        sawEnd = true;
                    }
                }
                if (!sawEnd)
                    out = mtIn[e];
                if (out != mtOut[e]) {
                    mtOut[e] = out;
                    changed = true;
                }
                mtStates[e] = std::move(states);
            }
        }

        flagUndefinedReads(0, mainReach_, mainIn, "main body");
        for (int e : graph_.microthreadEntries) {
            if (e < 0 || e >= n || !mtStates.count(e))
                continue;
            flagUndefinedReads(e, mtReach_.at(e), mtStates[e],
                               "microthread at " + std::to_string(e));
        }
    }

    /** Registers treated as always defined (x0 and reserved regs). */
    static DefSet
    seedSet()
    {
        DefSet s;
        s.set(regZero);
        return s;
    }

    /** Definitely-defined-register dataflow over one routine. */
    std::vector<DefSet>
    defDataflow(int entry, const std::vector<bool> &reach,
                const DefSet &entryState) const
    {
        int n = graph_.size();
        std::vector<DefSet> in(static_cast<size_t>(n));
        std::vector<bool> seen(static_cast<size_t>(n), false);
        for (auto &s : in)
            s.set();  // Top for unreached; meets only narrow.
        in[static_cast<size_t>(entry)] = entryState;
        seen[static_cast<size_t>(entry)] = true;
        std::deque<int> work{entry};
        while (!work.empty()) {
            int pc = work.front();
            work.pop_front();
            DefSet out = in[static_cast<size_t>(pc)];
            int rd = destReg(p_.code[static_cast<size_t>(pc)]);
            if (rd >= 0)
                out.set(static_cast<size_t>(rd));
            for (int s : graph_.succs[static_cast<size_t>(pc)]) {
                if (!reach[static_cast<size_t>(s)])
                    continue;
                DefSet merged = in[static_cast<size_t>(s)] & out;
                if (!seen[static_cast<size_t>(s)]) {
                    seen[static_cast<size_t>(s)] = true;
                    in[static_cast<size_t>(s)] = out;
                    work.push_back(s);
                } else if (merged != in[static_cast<size_t>(s)]) {
                    in[static_cast<size_t>(s)] = merged;
                    work.push_back(s);
                }
            }
        }
        return in;
    }

    /** Name a flat register index ("x5", "f0", "v2"). */
    static std::string
    regName(RegIdx r)
    {
        if (r < fpRegBase)
            return "x" + std::to_string(r);
        if (r < simdRegBase)
            return "f" + std::to_string(r - fpRegBase);
        return "v" + std::to_string(r - simdRegBase);
    }

    void
    flagUndefinedReads(int entry, const std::vector<bool> &reach,
                       const std::vector<DefSet> &in,
                       const std::string &where)
    {
        std::vector<RegIdx> reads;
        for (int pc = 0; pc < graph_.size(); ++pc) {
            if (!reach[static_cast<size_t>(pc)])
                continue;
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            readRegs(i, reads);
            for (RegIdx r : reads) {
                if (r == regZero || in[static_cast<size_t>(pc)][r])
                    continue;
                // Witness: a path from the routine entry that never
                // defines r.
                std::vector<bool> defines(
                    static_cast<size_t>(graph_.size()), false);
                for (int q = 0; q < graph_.size(); ++q) {
                    if (destReg(p_.code[static_cast<size_t>(q)]) ==
                        static_cast<int>(r)) {
                        defines[static_cast<size_t>(q)] = true;
                    }
                }
                auto path = shortestPath(graph_, entry, pc, &defines);
                if (path.empty())
                    path = witness(entry, pc);
                diag(Check::UseBeforeDef, pc,
                     "register " + regName(r) + " read in the " +
                         where +
                         " but never defined on this path",
                     std::move(path));
                break;  // One finding per instruction is enough.
            }
        }
    }

    // --- Members -------------------------------------------------------------

    const Program &p_;
    const BenchConfig &cfg_;
    const MachineParams &params_;
    const VerifierOptions &opts_;
    Cfg graph_;

    std::vector<bool> mainReach_;
    std::map<int, std::vector<bool>> mtReach_;
    std::vector<ConstState> constIn_;
    std::set<int> visited_;  ///< Const-prop: pcs with initialized IN.
    std::vector<RegionState> region_;

    std::vector<Diagnostic> diags_;
    std::set<std::pair<int, int>> reported_;
};

} // namespace

// --- Public API --------------------------------------------------------------

const char *
checkName(Check c)
{
    switch (c) {
      case Check::Cfg: return "cfg";
      case Check::VectorRegion: return "vector-region";
      case Check::FrameBalance: return "frame-balance";
      case Check::Vload: return "vload";
      case Check::Predication: return "predication";
      case Check::UseBeforeDef: return "use-before-def";
    }
    return "unknown";
}

std::string
Diagnostic::render(const Program &p) const
{
    std::ostringstream os;
    os << "[" << checkName(check) << "] pc " << pc;
    if (pc >= 0 && pc < p.size())
        os << ": " << disassemble(p.code[static_cast<size_t>(pc)]);
    os << "\n    " << message;
    if (!path.empty()) {
        os << "\n    path:";
        // Elide the middle of long paths.
        constexpr size_t kHead = 4, kTail = 4;
        for (size_t k = 0; k < path.size(); ++k) {
            if (path.size() > kHead + kTail + 1 && k == kHead) {
                os << "\n      ... (" << path.size() - kHead - kTail
                   << " instructions elided)";
                k = path.size() - kTail - 1;
                continue;
            }
            int q = path[k];
            os << "\n      " << q << ": ";
            if (q >= 0 && q < p.size())
                os << disassemble(p.code[static_cast<size_t>(q)]);
        }
    }
    return os.str();
}

bool
VerifyReport::has(Check c) const
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic &d) { return d.check == c; });
}

std::string
VerifyReport::text(const Program &p) const
{
    if (ok())
        return "";
    std::ostringstream os;
    os << "verifier: program '" << p.name << "' failed "
       << diagnostics.size() << " static check(s):\n";
    for (const Diagnostic &d : diagnostics)
        os << "  " << d.render(p) << "\n";
    return os.str();
}

VerifyReport
verifyProgram(const Program &p, const BenchConfig &cfg,
              const MachineParams &params, const VerifierOptions &opts)
{
    return Verifier(p, cfg, params, opts).run();
}

} // namespace rockcress
