#include "analysis/verifier.hh"

#include <algorithm>
#include <bitset>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/equiv.hh"
#include "analysis/interval.hh"
#include "analysis/racecheck.hh"
#include "analysis/tokenflow.hh"
#include "isa/instr.hh"

namespace rockcress
{

namespace
{

using DefSet = std::bitset<numArchRegs>;

// --- Vector-region domain ----------------------------------------------------

/**
 * Inside/outside-a-vector-region state. Conflict (inside on one
 * incoming path, outside on another) is reported at the join node and
 * then treated as bottom so it never propagates: code only reachable
 * through an inconsistent join gets no further region findings, the
 * same containment the hand-rolled pass had.
 */
enum RegionVal : std::uint8_t
{
    rvBottom = 0,
    rvOutside,
    rvInside,
    rvConflict,
};

struct RegionDomain
{
    using State = RegionVal;

    const Program &p;
    const IntervalAnalysis &vals;

    State bottom() const { return rvBottom; }
    bool
    isBottom(const State &s) const
    {
        return s == rvBottom || s == rvConflict;
    }

    State
    transfer(int pc, const State &in) const
    {
        if (in == rvBottom || in == rvConflict)
            return rvBottom;
        const Instruction &i = p.code[static_cast<size_t>(pc)];
        switch (i.op) {
          case Opcode::CSRW:
            if (static_cast<Csr>(i.sub) == Csr::Vconfig &&
                vals.entersVectorMode(pc)) {
                return rvInside;
            }
            return in;
          case Opcode::DEVEC:
            return rvOutside;
          default:
            return in;
        }
    }

    bool
    join(State &into, const State &from) const
    {
        if (from == rvBottom)
            return false;
        if (into == rvBottom) {
            into = from;
            return true;
        }
        if (into == from || into == rvConflict)
            return false;
        into = rvConflict;
        return true;
    }
};

// --- Frame-balance domain ----------------------------------------------------

/**
 * Open-frame count per program point: -1 bottom, -2 join conflict,
 * otherwise the count (clamped at the 4 the hardware queue holds).
 * Conflicts are reported in the post-pass and not propagated.
 */
struct FrameDomain
{
    using State = int;

    const Program &p;

    State bottom() const { return -1; }
    bool isBottom(const State &s) const { return s < 0; }

    State
    transfer(int pc, const State &in) const
    {
        if (in < 0)
            return -1;
        switch (p.code[static_cast<size_t>(pc)].op) {
          case Opcode::FRAME_START:
            return std::min(in + 1, 4);
          case Opcode::REMEM:
            return in == 0 ? 0 : in - 1;
          default:
            return in;
        }
    }

    bool
    join(State &into, const State &from) const
    {
        if (from < 0)
            return false;
        if (into == -1) {
            into = from;
            return true;
        }
        if (into == from || into == -2)
            return false;
        into = -2;
        return true;
    }
};

// --- Predication domain ------------------------------------------------------

enum PredVal : std::uint8_t
{
    pvBottom = 0,
    pvTrue,
    pvMaybeFalse,
};

/** Does this pred_eq/pred_neq certainly leave the flag on? */
bool
predDefinitelyTrue(const IntervalAnalysis &vals, int pc,
                   const Instruction &i)
{
    std::int32_t a = 0, b = 0;
    bool ka = vals.constAt(pc, i.rs1, a);
    bool kb = vals.constAt(pc, i.rs2, b);
    if (i.op == Opcode::PRED_EQ) {
        if (i.rs1 == i.rs2)
            return true;
        return ka && kb && a == b;
    }
    return ka && kb && a != b;  // PRED_NEQ.
}

struct PredDomain
{
    using State = PredVal;

    const Program &p;
    const IntervalAnalysis &vals;

    State bottom() const { return pvBottom; }
    bool isBottom(const State &s) const { return s == pvBottom; }

    State
    transfer(int pc, const State &in) const
    {
        if (in == pvBottom)
            return in;
        const Instruction &i = p.code[static_cast<size_t>(pc)];
        if (i.op == Opcode::PRED_EQ || i.op == Opcode::PRED_NEQ)
            return predDefinitelyTrue(vals, pc, i) ? pvTrue
                                                   : pvMaybeFalse;
        return in;
    }

    bool
    join(State &into, const State &from) const
    {
        if (from == pvBottom)
            return false;
        if (into == pvBottom) {
            into = from;
            return true;
        }
        if (into == from || into == pvMaybeFalse)
            return false;
        into = pvMaybeFalse;
        return true;
    }
};

// --- Definitely-defined-register domain --------------------------------------

struct DefState
{
    bool bottom = true;
    DefSet defs;

    bool operator==(const DefState &) const = default;
};

struct DefDomain
{
    using State = DefState;

    const Program &p;

    State bottom() const { return {}; }
    bool isBottom(const State &s) const { return s.bottom; }

    State
    transfer(int pc, const State &in) const
    {
        if (in.bottom)
            return in;
        State s = in;
        int rd = destReg(p.code[static_cast<size_t>(pc)]);
        if (rd >= 0)
            s.defs.set(static_cast<size_t>(rd));
        return s;
    }

    bool
    join(State &into, const State &from) const
    {
        if (from.bottom)
            return false;
        if (into.bottom) {
            into = from;
            return true;
        }
        DefSet m = into.defs & from.defs;  // Must-analysis: intersect.
        if (m == into.defs)
            return false;
        into.defs = m;
        return true;
    }
};

// --- The verifier ------------------------------------------------------------

class Verifier
{
  public:
    Verifier(const Program &p, const BenchConfig &cfg,
             const MachineParams &params, const VerifierOptions &opts)
        : p_(p), cfg_(cfg), params_(params), opts_(opts),
          graph_(buildCfg(p)), routines_(partitionRoutines(graph_)),
          vals_(p, graph_, cfg, params)
    {
        for (size_t k = 1; k < routines_.size(); ++k)
            mtOrder_.push_back(k);
        std::sort(mtOrder_.begin(), mtOrder_.end(),
                  [&](size_t a, size_t b) {
                      return routines_[a].entry < routines_[b].entry;
                  });
    }

    VerifyReport
    run()
    {
        vals_.solve();

        checkStructure();
        checkVectorRegions();
        checkMicrothreadBodies();
        checkFrameBalance();
        checkFrameConfigs();
        checkVloads();
        checkPredication();
        if (opts_.checkUseBeforeDef)
            checkUseBeforeDef();
        checkDeadlock();
        checkRaces();
        checkEquiv();

        // Deterministic report order regardless of pass order.
        std::sort(diags_.begin(), diags_.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      return std::make_tuple(a.routineEntry, a.pc,
                                             static_cast<int>(a.check)) <
                             std::make_tuple(b.routineEntry, b.pc,
                                             static_cast<int>(b.check));
                  });
        if (static_cast<int>(diags_.size()) > opts_.maxDiagnostics)
            diags_.resize(static_cast<size_t>(opts_.maxDiagnostics));

        VerifyReport rep;
        rep.diagnostics = std::move(diags_);
        rep.races = std::move(races_);
        rep.equiv = std::move(equiv_);
        rep.equivStreams = equivStreams_;
        rep.equivProved = equivProved_;
        return rep;
    }

  private:
    // --- Diagnostics ---------------------------------------------------------

    void
    diag(Check c, int pc, const std::string &msg,
         std::vector<int> path = {})
    {
        if (!reported_.insert({static_cast<int>(c), pc}).second)
            return;
        Diagnostic d;
        d.check = c;
        d.pc = pc;
        d.message = msg;
        d.path = std::move(path);
        d.routineEntry = routineEntryOf(pc);
        d.routine = routineName(d.routineEntry);
        diags_.push_back(std::move(d));
    }

    /** Witness path from `entry` to `pc` (plain shortest path). */
    std::vector<int>
    witness(int entry, int pc) const
    {
        return shortestPath(graph_, entry, pc);
    }

    /** Routine entry whose reach covers `pc` (main preferred). */
    int
    routineEntryOf(int pc) const
    {
        if (pc < 0 || pc >= graph_.size())
            return -1;
        if (routines_[0].reach[static_cast<size_t>(pc)])
            return 0;
        for (size_t k : mtOrder_) {
            if (routines_[k].reach[static_cast<size_t>(pc)])
                return routines_[k].entry;
        }
        return -1;
    }

    std::string
    routineName(int entry) const
    {
        for (const Routine &r : routines_) {
            if (r.entry == entry)
                return r.name;
        }
        return "";
    }

    const std::vector<bool> &mainReach() const { return routines_[0].reach; }

    // --- Structural checks ---------------------------------------------------

    void
    checkStructure()
    {
        for (int pc : graph_.fallsOffEnd) {
            diag(Check::Cfg, pc,
                 "control flow falls off the end of the program",
                 witness(std::max(0, routineEntryOf(pc)), pc));
        }
        for (int pc : graph_.indirectJumps) {
            diag(Check::Cfg, pc,
                 "indirect jump (jalr) is not statically analyzable; "
                 "the verifier cannot prove this program well-formed");
        }
        for (int e : graph_.microthreadEntries) {
            if (e < 0 || e >= graph_.size()) {
                diag(Check::Cfg, e,
                     "vissue targets instruction " + std::to_string(e) +
                         ", outside the program");
            }
        }
        // VEND reachable from the main entry means either a vend in
        // plain SPMD code or main code flowing into a microthread.
        for (int pc = 0; pc < graph_.size(); ++pc) {
            if (mainReach()[static_cast<size_t>(pc)] &&
                p_.code[static_cast<size_t>(pc)].op == Opcode::VEND) {
                diag(Check::VectorRegion, pc,
                     "vend reached from the main instruction stream "
                     "(microthread code must only be entered by vissue)",
                     witness(0, pc));
            }
        }
        // A microthread that can flow into another microthread's entry
        // is missing its vend (a dangling vissue region).
        for (size_t k : mtOrder_) {
            const Routine &r = routines_[k];
            for (int other : graph_.microthreadEntries) {
                if (other == r.entry || other < 0 ||
                    other >= graph_.size()) {
                    continue;
                }
                if (r.reach[static_cast<size_t>(other)]) {
                    diag(Check::VectorRegion, other,
                         "microthread at " + std::to_string(r.entry) +
                             " falls through into the microthread at " +
                             std::to_string(other) +
                             " (missing vend)",
                         shortestPath(graph_, r.entry, other));
                }
            }
        }
    }

    // --- Vector regions ------------------------------------------------------

    void
    checkVectorRegions()
    {
        if (graph_.size() == 0)
            return;
        RegionDomain dom{p_, vals_};
        auto sol = solveDataflow(graph_, dom, {{0, rvOutside}},
                                 &routines_[0].reach);
        for (int pc = 0; pc < graph_.size(); ++pc) {
            if (!sol.reached[static_cast<size_t>(pc)])
                continue;
            RegionVal in = sol.in[static_cast<size_t>(pc)];
            if (in == rvConflict) {
                diag(Check::VectorRegion, pc,
                     "inconsistent vector-region state at join: "
                     "in a region on one incoming path, outside "
                     "on another",
                     witness(0, pc));
                continue;
            }
            if (in == rvBottom)
                continue;
            bool inside = in == rvInside;
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            switch (i.op) {
              case Opcode::CSRW:
                if (static_cast<Csr>(i.sub) == Csr::Vconfig &&
                    vals_.entersVectorMode(pc)) {
                    if (!cfg_.isVector()) {
                        diag(Check::VectorRegion, pc,
                             "vector region entered under the "
                             "non-vector configuration '" + cfg_.name +
                                 "' (group size 1)",
                             witness(0, pc));
                    }
                    if (inside) {
                        diag(Check::VectorRegion, pc,
                             "nested vector region: vconfig written "
                             "while already in a vector region",
                             witness(0, pc));
                    }
                }
                break;
              case Opcode::DEVEC:
                if (!inside) {
                    diag(Check::VectorRegion, pc,
                         "devec outside a vector region",
                         witness(0, pc));
                }
                break;
              case Opcode::VISSUE:
                if (!inside) {
                    diag(Check::VectorRegion, pc,
                         "vissue outside a vector region (no vconfig "
                         "write dominates it)",
                         witness(0, pc));
                }
                break;
              case Opcode::VLOAD: {
                auto variant = static_cast<VloadVariant>(i.sub);
                if (variant != VloadVariant::Self && !inside) {
                    diag(Check::VectorRegion, pc,
                         "group-routed vload outside a vector region",
                         witness(0, pc));
                }
                break;
              }
              case Opcode::BARRIER:
                if (inside) {
                    diag(Check::VectorRegion, pc,
                         "barrier inside a vector region (devec must "
                         "disband the group first)",
                         witness(0, pc));
                }
                break;
              case Opcode::HALT:
                if (inside) {
                    diag(Check::VectorRegion, pc,
                         "halt inside a vector region (dangling "
                         "region: no devec on this path)",
                         witness(0, pc));
                }
                break;
              default:
                break;
            }
        }
    }

    // --- Microthread body legality ------------------------------------------

    void
    checkMicrothreadBodies()
    {
        for (size_t k : mtOrder_) {
            const Routine &r = routines_[k];
            for (int pc = 0; pc < graph_.size(); ++pc) {
                if (!r.reach[static_cast<size_t>(pc)])
                    continue;
                const Instruction &i = p_.code[static_cast<size_t>(pc)];
                const char *what = nullptr;
                switch (i.op) {
                  case Opcode::VISSUE: what = "vissue"; break;
                  case Opcode::DEVEC: what = "devec"; break;
                  case Opcode::BARRIER: what = "barrier"; break;
                  case Opcode::HALT: what = "halt"; break;
                  case Opcode::CSRW:
                    what = "CSR write";
                    break;
                  default: break;
                }
                if (what) {
                    diag(Check::VectorRegion, pc,
                         std::string(what) +
                             " inside the microthread entered at " +
                             std::to_string(r.entry) +
                             " (microthreads must end in vend)",
                         shortestPath(graph_, r.entry, pc));
                }
            }
        }
    }

    // --- Frame balance -------------------------------------------------------

    void
    checkFrameBalance()
    {
        checkFrameBalanceRoutine(routines_[0]);
        for (size_t k : mtOrder_)
            checkFrameBalanceRoutine(routines_[k]);
    }

    void
    checkFrameBalanceRoutine(const Routine &r)
    {
        int n = graph_.size();
        if (r.entry < 0 || r.entry >= n)
            return;
        const std::string &where = r.name;
        FrameDomain dom{p_};
        auto sol = solveDataflow(graph_, dom, {{r.entry, 0}}, &r.reach);
        std::vector<std::vector<int>> preds = predecessors(graph_);
        for (int pc = 0; pc < n; ++pc) {
            if (!sol.reached[static_cast<size_t>(pc)])
                continue;
            int in = sol.in[static_cast<size_t>(pc)];
            if (in == -2) {
                // Reconstruct two of the disagreeing incoming counts.
                std::vector<int> seen;
                for (int q : preds[static_cast<size_t>(pc)]) {
                    if (!r.reach[static_cast<size_t>(q)] ||
                        !sol.reached[static_cast<size_t>(q)]) {
                        continue;
                    }
                    int v = dom.transfer(
                        q, sol.in[static_cast<size_t>(q)]);
                    if (v >= 0 && std::find(seen.begin(), seen.end(),
                                            v) == seen.end()) {
                        seen.push_back(v);
                    }
                }
                int a = seen.empty() ? 0 : seen[0];
                int b = seen.size() > 1 ? seen[1] : a;
                diag(Check::FrameBalance, pc,
                     "inconsistent frame_start/remem balance at "
                     "join in the " + where + " (" +
                         std::to_string(a) + " vs " +
                         std::to_string(b) +
                         " open frames depending on path)",
                     shortestPath(graph_, r.entry, pc));
                continue;
            }
            if (in < 0)
                continue;
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            switch (i.op) {
              case Opcode::FRAME_START:
                if (in >= 1) {
                    diag(Check::FrameBalance, pc,
                         "frame_start while a frame is already open in "
                         "the " + where + " (missing remem)",
                         shortestPath(graph_, r.entry, pc));
                }
                break;
              case Opcode::REMEM:
                if (in == 0) {
                    diag(Check::FrameBalance, pc,
                         "remem without a matching frame_start in the " +
                             where +
                             " (would free a frame that was never "
                             "consumed)",
                         shortestPath(graph_, r.entry, pc));
                }
                break;
              case Opcode::HALT:
              case Opcode::VEND:
                if (in > 0) {
                    diag(Check::FrameBalance, pc,
                         "path through the " + where +
                             " ends with " + std::to_string(in) +
                             " open frame(s): frame_start without "
                             "remem deadlocks the frame queue",
                         shortestPath(graph_, r.entry, pc));
                }
                break;
              case Opcode::DEVEC:
                if (in > 0) {
                    diag(Check::FrameBalance, pc,
                         "devec with " + std::to_string(in) +
                             " open frame(s) in the " + where,
                         shortestPath(graph_, r.entry, pc));
                }
                break;
              default:
                break;
            }
        }
    }

    // --- FrameCfg legality ---------------------------------------------------

    void
    checkFrameConfigs()
    {
        bool haveFrameOps = false;
        bool haveFrameCfg = false;
        for (int pc = 0; pc < graph_.size(); ++pc) {
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            if (i.op == Opcode::FRAME_START || i.op == Opcode::REMEM)
                haveFrameOps = true;
            if (i.op != Opcode::CSRW ||
                static_cast<Csr>(i.sub) != Csr::FrameCfg) {
                continue;
            }
            haveFrameCfg = true;
            if (routineEntryOf(pc) < 0)
                continue;  // Unreachable: no point checking values.
            std::int32_t v;
            if (!vals_.constAt(pc, i.rs1, v))
                continue;
            int fw = v & 0xffff;
            int nf = (v >> 16) & 0xffff;
            if (fw == 0 && nf == 0)
                continue;  // Disables frames; always legal.
            std::string prefix =
                "frame config " + std::to_string(fw) + " words x " +
                std::to_string(nf) + " frames: ";
            if (fw <= 0 || nf <= 0) {
                diag(Check::FrameBalance, pc,
                     prefix + "both fields must be positive",
                     witness(0, pc));
            } else {
                if (nf < params_.frameCounters) {
                    diag(Check::FrameBalance, pc,
                         prefix + "fewer frames than the " +
                             std::to_string(params_.frameCounters) +
                             " hardware frame counters",
                         witness(0, pc));
                }
                if (fw >= 1024) {
                    diag(Check::FrameBalance, pc,
                         prefix +
                             "frame size exceeds a 10-bit counter",
                         witness(0, pc));
                }
                Addr region = static_cast<Addr>(fw) *
                              static_cast<Addr>(nf) * wordBytes;
                if (region > params_.spadBytes) {
                    diag(Check::FrameBalance, pc,
                         prefix + "frame region (" +
                             std::to_string(region) +
                             "B) exceeds the " +
                             std::to_string(params_.spadBytes) +
                             "B scratchpad",
                         witness(0, pc));
                }
            }
        }
        if (haveFrameOps && !haveFrameCfg) {
            for (int pc = 0; pc < graph_.size(); ++pc) {
                Opcode op = p_.code[static_cast<size_t>(pc)].op;
                if (op == Opcode::FRAME_START || op == Opcode::REMEM) {
                    diag(Check::FrameBalance, pc,
                         "frame_start/remem with no FrameCfg write "
                         "anywhere in the program",
                         witness(std::max(0, routineEntryOf(pc)), pc));
                    break;
                }
            }
        }
    }

    // --- vload legality ------------------------------------------------------

    void
    checkVloads()
    {
        Addr line = cfg_.longLines ? 1024 : params_.lineBytes;
        for (int pc = 0; pc < graph_.size(); ++pc) {
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            if (i.op == Opcode::VLOAD)
                checkOneVload(pc, i, line);
            else
                checkFrameRelativeAccess(pc, i);
        }
    }

    void
    checkOneVload(int pc, const Instruction &i, Addr line)
    {
        int entry = routineEntryOf(pc);
        if (entry < 0 || !vals_.reached(pc))
            return;  // Unreachable (possibly only semantically so).
        auto path = [&] { return witness(entry, pc); };
        auto variant = static_cast<VloadVariant>(i.sub);
        int w = i.imm2;
        int coreOff = i.imm;
        if (!cfg_.wideAccess) {
            diag(Check::Vload, pc,
                 "vload under configuration '" + cfg_.name +
                     "', which has no wide-access support",
                 path());
            return;
        }
        if (w <= 0) {
            diag(Check::Vload, pc,
                 "vload width must be positive (got " +
                     std::to_string(w) + ")",
                 path());
            return;
        }
        int total = w;
        if (variant != VloadVariant::Self) {
            if (!cfg_.isVector()) {
                diag(Check::Vload, pc,
                     "group-routed vload under the non-vector "
                     "configuration '" + cfg_.name + "'",
                     path());
                return;
            }
            if (coreOff < 0 || coreOff >= cfg_.groupSize) {
                diag(Check::Vload, pc,
                     "vload core offset " + std::to_string(coreOff) +
                         " outside the group [0, " +
                         std::to_string(cfg_.groupSize) + ")",
                     path());
                return;
            }
            if (variant == VloadVariant::Group)
                total = w * (cfg_.groupSize - coreOff);
        }
        if (static_cast<Addr>(total) * wordBytes > line) {
            diag(Check::Vload, pc,
                 "vload of " + std::to_string(total) +
                     " words exceeds the " + std::to_string(line) +
                     "-byte cache line",
                 path());
        }

        // DRAM address: exact values keep the classic message;
        // everything else must be *proved* word-aligned on the
        // interval + congruence domain (streaming pointers included).
        std::int32_t addr;
        AbsVal av = vals_.valueAt(pc, i.rs1);
        if (vals_.constAt(pc, i.rs1, addr)) {
            if (addr % 4 != 0) {
                diag(Check::Vload, pc,
                     "misaligned vload address " + std::to_string(addr) +
                         " (must be word-aligned; the prefix/suffix "
                         "variants only handle line-boundary splits)",
                     path());
            }
        } else if (av.frameFw != 0 || !av.divisibleBy(4)) {
            diag(Check::Vload, pc,
                 "cannot prove the vload address word-aligned: "
                 "value " + av.str(),
                 path());
        }

        // Scratchpad offset: alignment and bounds, proved the same way.
        std::int32_t spOff;
        AbsVal off = vals_.valueAt(pc, i.rs2);
        if (vals_.constAt(pc, i.rs2, spOff)) {
            if (spOff % 4 != 0) {
                diag(Check::Vload, pc,
                     "misaligned vload scratchpad offset " +
                         std::to_string(spOff),
                     path());
            } else if (spOff < 0 ||
                       static_cast<Addr>(spOff) +
                               static_cast<Addr>(w) * wordBytes >
                           params_.spadBytes) {
                diag(Check::Vload, pc,
                     "vload of " + std::to_string(w) +
                         " words at scratchpad offset " +
                         std::to_string(spOff) + " overruns the " +
                         std::to_string(params_.spadBytes) +
                         "B scratchpad",
                     path());
            }
        } else if (off.frameFw != 0) {
            diag(Check::Vload, pc,
                 "cannot prove the vload scratchpad offset in bounds: "
                 "frame-relative offset " + off.str(),
                 path());
        } else if (!off.divisibleBy(4)) {
            diag(Check::Vload, pc,
                 "cannot prove the vload scratchpad offset "
                 "word-aligned: offset " + off.str(),
                 path());
        } else if (off.effLo() < 0 ||
                   off.effHi() + std::int64_t{w} * wordBytes >
                       static_cast<std::int64_t>(params_.spadBytes)) {
            diag(Check::Vload, pc,
                 "cannot prove the vload of " + std::to_string(w) +
                     " words inside the " +
                     std::to_string(params_.spadBytes) +
                     "B scratchpad: offset " + off.str(),
                 path());
        }

        // Per-frame footprint: a fill that lands in the frame region
        // of the governing FrameCfg must stay within one frame, or
        // the scratchpad's per-frame counters drift and the schedule
        // wedges (the deadlock pass then has nothing sound to count).
        CfgBind fcfg = variant == VloadVariant::Self
                           ? vals_.selfCfgAt(pc)
                           : vals_.regionCfgAt(pc);
        if (fcfg.isKnown() && fcfg.nf > 0 && off.frameFw == 0) {
            std::int64_t fB = std::int64_t{fcfg.fw} * wordBytes;
            std::int64_t region = fB * fcfg.nf;
            if (off.effLo() >= 0 &&
                off.effHi() + std::int64_t{w} * wordBytes <= region) {
                std::int64_t rem = 0;
                if (!off.residueMod(fB, rem)) {
                    diag(Check::Vload, pc,
                         "cannot prove the vload of " +
                             std::to_string(w) +
                             " words stays within one " +
                             std::to_string(fcfg.fw) +
                             "-word frame: scratchpad offset " +
                             off.str(),
                         path());
                } else if (rem + std::int64_t{w} * wordBytes > fB) {
                    diag(Check::Vload, pc,
                         "vload of " + std::to_string(w) +
                             " words at frame offset " +
                             std::to_string(rem) + "B overruns the " +
                             std::to_string(fcfg.fw) + "-word (" +
                             std::to_string(fB) + "B) frame",
                         path());
                }
            }
        }
    }

    /**
     * Loads/stores through a frame_start pointer: the byte delta from
     * the frame base must stay inside the governing frame's footprint
     * and be word-aligned. Plain (untagged) addresses are not frame
     * traffic and are not checked here.
     */
    void
    checkFrameRelativeAccess(int pc, const Instruction &i)
    {
        int accessWords;
        switch (i.op) {
          case Opcode::LW: case Opcode::SW:
          case Opcode::FLW: case Opcode::FSW:
            accessWords = 1;
            break;
          case Opcode::SIMD_LW: case Opcode::SIMD_SW:
            accessWords = params_.core.simdWidth;
            break;
          default:
            return;
        }
        int entry = routineEntryOf(pc);
        if (entry < 0 || !vals_.reached(pc))
            return;
        AbsVal base = vals_.valueAt(pc, i.rs1);
        if (base.frameFw <= 0)
            return;
        std::int64_t fB = std::int64_t{base.frameFw} * wordBytes;
        std::int64_t lo = base.effLo() + i.imm;
        std::int64_t hi =
            base.effHi() + i.imm + std::int64_t{accessWords} * wordBytes;
        std::string where =
            "offset " + base.str() + " + " + std::to_string(i.imm) + "B";
        if (lo < 0) {
            diag(Check::Vload, pc,
                 "frame-relative " + std::string(opcodeName(i.op)) +
                     " may access below the frame base (" + where + ")",
                 witness(entry, pc));
            return;
        }
        if (hi > fB) {
            diag(Check::Vload, pc,
                 "frame-relative " + std::string(opcodeName(i.op)) +
                     " overruns the " +
                     std::to_string(base.frameFw) + "-word (" +
                     std::to_string(fB) + "B) frame (" + where + ")",
                 witness(entry, pc));
            return;
        }
        std::int64_t res = ((base.r + i.imm) % 4 + 4) % 4;
        bool aligned = res == 0 && (base.m == 0 || base.m % 4 == 0);
        if (!aligned) {
            diag(Check::Vload, pc,
                 "cannot prove the frame-relative " +
                     std::string(opcodeName(i.op)) +
                     " word-aligned (" + where + ")",
                 witness(entry, pc));
        }
    }

    // --- Predication ---------------------------------------------------------

    void
    checkPredication()
    {
        checkPredicationRoutine(routines_[0], false);
        for (size_t k : mtOrder_)
            checkPredicationRoutine(routines_[k], true);
    }

    void
    checkPredicationRoutine(const Routine &r, bool isMicrothread)
    {
        int n = graph_.size();
        if (r.entry < 0 || r.entry >= n)
            return;
        PredDomain dom{p_, vals_};
        auto sol =
            solveDataflow(graph_, dom, {{r.entry, pvTrue}}, &r.reach);
        for (int pc = 0; pc < n; ++pc) {
            if (!sol.reached[static_cast<size_t>(pc)])
                continue;
            PredVal in = sol.in[static_cast<size_t>(pc)];
            if (in == pvBottom)
                continue;
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            if (i.op == Opcode::PRED_EQ || i.op == Opcode::PRED_NEQ) {
                if (i.op == Opcode::PRED_NEQ && i.rs1 == i.rs2) {
                    diag(Check::Predication, pc,
                         "pred_neq of a register with itself leaves "
                         "the predicate permanently false",
                         shortestPath(graph_, r.entry, pc));
                }
                continue;
            }
            if (in != pvMaybeFalse)
                continue;
            const char *why = nullptr;
            switch (i.op) {
              case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
              case Opcode::BGE: case Opcode::BLTU:
              case Opcode::BGEU: case Opcode::JAL:
              case Opcode::JALR:
                why = "a squashed branch never resolves and "
                      "deadlocks the frontend";
                break;
              case Opcode::FRAME_START:
              case Opcode::REMEM:
                why = "squashing it unbalances the frame queue";
                break;
              case Opcode::VISSUE:
                why = "squashing it desynchronizes the vector "
                      "group";
                break;
              case Opcode::BARRIER:
                why = "a squashed barrier arrival hangs the "
                      "machine";
                break;
              case Opcode::HALT:
                why = "a squashed halt never terminates the core";
                break;
              case Opcode::CSRW:
                why = "a squashed CSR write corrupts the "
                      "vector-mode handshake";
                break;
              case Opcode::VEND:
                if (isMicrothread) {
                    diag(Check::Predication, pc,
                         "microthread may end with the predicate "
                         "off; reset it (pred_eq x0, x0) before "
                         "vend so the next microthread is not "
                         "squashed",
                         shortestPath(graph_, r.entry, pc));
                }
                break;
              default:
                break;
            }
            if (why) {
                diag(Check::Predication, pc,
                     std::string(opcodeName(i.op)) +
                         " while the predicate may be off: " + why,
                     shortestPath(graph_, r.entry, pc));
            }
        }
    }

    // --- Use before def ------------------------------------------------------

    void
    checkUseBeforeDef()
    {
        int n = graph_.size();
        if (n == 0)
            return;
        DefDomain dom{p_};

        // One must-be-defined solve over a routine; unreached points
        // come back as top so they are never flagged.
        auto defStates = [&](int entry, const std::vector<bool> &reach,
                             const DefSet &entryState) {
            DefState seed;
            seed.bottom = false;
            seed.defs = entryState;
            auto sol =
                solveDataflow(graph_, dom, {{entry, seed}}, &reach);
            std::vector<DefSet> in(static_cast<size_t>(n));
            for (int pc = 0; pc < n; ++pc) {
                if (sol.reached[static_cast<size_t>(pc)] &&
                    !sol.in[static_cast<size_t>(pc)].bottom) {
                    in[static_cast<size_t>(pc)] =
                        sol.in[static_cast<size_t>(pc)].defs;
                } else {
                    in[static_cast<size_t>(pc)].set();
                }
            }
            return in;
        };

        // Pass 1: definitely-defined sets over the main routine.
        std::vector<DefSet> mainIn =
            defStates(0, mainReach(), seedSet());

        // Pass 2: chain microthread entry states through the scalar
        // core's vissue order (dataflow.hh's token analysis).
        auto lastRun = vissueTokenFlow(
            graph_, [&](int pc) { return vals_.entersVectorMode(pc); });

        // Fixpoint over microthread entry/exit def sets.
        std::map<int, DefSet> mtIn, mtOut;
        for (int e : graph_.microthreadEntries) {
            mtIn[e].set();   // Start at top; iteration only narrows.
            mtOut[e].set();
        }
        std::map<int, std::vector<DefSet>> mtStates;
        bool changed = true;
        while (changed) {
            changed = false;
            // Recompute each entry state from the vissue sites.
            for (int e : graph_.microthreadEntries) {
                DefSet in;
                in.set();
                bool any = false;
                for (int pc = 0; pc < n; ++pc) {
                    if (!mainReach()[static_cast<size_t>(pc)])
                        continue;
                    const Instruction &i =
                        p_.code[static_cast<size_t>(pc)];
                    if (i.op != Opcode::VISSUE || i.imm != e)
                        continue;
                    for (const VissueToken &t :
                         lastRun[static_cast<size_t>(pc)]) {
                        any = true;
                        if (t.isRegion)
                            in &= mainIn[static_cast<size_t>(t.pc)];
                        else
                            in &= mtOut[t.pc];
                    }
                }
                if (!any)
                    in = seedSet();  // Unreached or outside a region.
                in |= seedSet();
                if (in != mtIn[e]) {
                    mtIn[e] = in;
                    changed = true;
                }
            }
            // Re-run each microthread's dataflow with its entry state.
            for (size_t k : mtOrder_) {
                const Routine &r = routines_[k];
                int e = r.entry;
                if (e < 0 || e >= n)
                    continue;
                auto states = defStates(e, r.reach, mtIn[e]);
                DefSet out;
                out.set();
                bool sawEnd = false;
                for (int pc = 0; pc < n; ++pc) {
                    if (!r.reach[static_cast<size_t>(pc)])
                        continue;
                    if (p_.code[static_cast<size_t>(pc)].op ==
                        Opcode::VEND) {
                        out &= states[static_cast<size_t>(pc)];
                        sawEnd = true;
                    }
                }
                if (!sawEnd)
                    out = mtIn[e];
                if (out != mtOut[e]) {
                    mtOut[e] = out;
                    changed = true;
                }
                mtStates[e] = std::move(states);
            }
        }

        flagUndefinedReads(0, mainReach(), mainIn, "main body");
        for (size_t k : mtOrder_) {
            const Routine &r = routines_[k];
            if (r.entry < 0 || r.entry >= n || !mtStates.count(r.entry))
                continue;
            flagUndefinedReads(r.entry, r.reach, mtStates[r.entry],
                               r.name);
        }
    }

    /** Registers treated as always defined (x0). */
    static DefSet
    seedSet()
    {
        DefSet s;
        s.set(regZero);
        return s;
    }

    /** Name a flat register index ("x5", "f0", "v2"). */
    static std::string
    regName(RegIdx r)
    {
        if (r < fpRegBase)
            return "x" + std::to_string(r);
        if (r < simdRegBase)
            return "f" + std::to_string(r - fpRegBase);
        return "v" + std::to_string(r - simdRegBase);
    }

    void
    flagUndefinedReads(int entry, const std::vector<bool> &reach,
                       const std::vector<DefSet> &in,
                       const std::string &where)
    {
        std::vector<RegIdx> reads;
        for (int pc = 0; pc < graph_.size(); ++pc) {
            if (!reach[static_cast<size_t>(pc)])
                continue;
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            readRegs(i, reads);
            for (RegIdx r : reads) {
                if (r == regZero || in[static_cast<size_t>(pc)][r])
                    continue;
                // Witness: a path from the routine entry that never
                // defines r.
                std::vector<bool> defines(
                    static_cast<size_t>(graph_.size()), false);
                for (int q = 0; q < graph_.size(); ++q) {
                    if (destReg(p_.code[static_cast<size_t>(q)]) ==
                        static_cast<int>(r)) {
                        defines[static_cast<size_t>(q)] = true;
                    }
                }
                auto path = shortestPath(graph_, entry, pc, &defines);
                if (path.empty())
                    path = witness(entry, pc);
                diag(Check::UseBeforeDef, pc,
                     "register " + regName(r) + " read in the " +
                         where +
                         " but never defined on this path",
                     std::move(path));
                break;  // One finding per instruction is enough.
            }
        }
    }

    // --- Deadlock freedom ----------------------------------------------------

    void
    checkDeadlock()
    {
        for (const TokenDiag &d :
             checkFrameTokenFlow(p_, graph_, cfg_, params_, vals_)) {
            diag(Check::Deadlock, d.pc, d.message, witness(0, d.pc));
        }
    }

    // --- Scratchpad races ----------------------------------------------------

    void
    checkRaces()
    {
        for (RaceFinding f :
             checkScratchpadRaces(p_, graph_, cfg_, params_, vals_)) {
            // The two-sided witness: how the first fill is reached,
            // then how execution carries the conflict forward.
            f.producerPath = witness(0, f.producerPc);
            f.consumerPath =
                shortestPath(graph_, f.producerPc, f.consumerPc);
            f.routineEntry = routineEntryOf(f.consumerPc);
            f.routine = routineName(f.routineEntry);
            diag(Check::Race, f.consumerPc, f.message, f.consumerPath);
            races_.push_back(std::move(f));
        }
        std::sort(races_.begin(), races_.end(),
                  [](const RaceFinding &a, const RaceFinding &b) {
                      return std::tie(a.routineEntry, a.consumerPc,
                                      a.byteLo, a.byteHi,
                                      a.producerPc) <
                             std::tie(b.routineEntry, b.consumerPc,
                                      b.byteLo, b.byteHi,
                                      b.producerPc);
                  });
    }

    // --- Translation validation ----------------------------------------------

    void
    checkEquiv()
    {
        EquivReport er = checkEquivalence(p_, cfg_, params_);
        equivStreams_ = er.streams;
        equivProved_ = er.proved;
        // Findings arrive sorted by (routineEntry, pc, lane); mirror
        // each as a Check::Equiv diagnostic with a CFG witness path.
        for (EquivFinding &f : er.findings) {
            std::vector<int> path;
            if (f.pc >= 0 && f.pc < graph_.size())
                path = witness(std::max(0, routineEntryOf(f.pc)), f.pc);
            diag(Check::Equiv, f.pc, f.message, std::move(path));
            equiv_.push_back(std::move(f));
        }
    }

    // --- Members -------------------------------------------------------------

    const Program &p_;
    const BenchConfig &cfg_;
    const MachineParams &params_;
    const VerifierOptions &opts_;
    Cfg graph_;
    std::vector<Routine> routines_;
    IntervalAnalysis vals_;
    /** Microthread routine indices sorted by entry pc. */
    std::vector<size_t> mtOrder_;

    std::vector<Diagnostic> diags_;
    std::vector<RaceFinding> races_;
    std::vector<EquivFinding> equiv_;
    int equivStreams_ = 0;
    int equivProved_ = 0;
    std::set<std::pair<int, int>> reported_;
};

} // namespace

// --- Public API --------------------------------------------------------------

const char *
checkName(Check c)
{
    switch (c) {
      case Check::Cfg: return "cfg";
      case Check::VectorRegion: return "vector-region";
      case Check::FrameBalance: return "frame-balance";
      case Check::Vload: return "vload";
      case Check::Predication: return "predication";
      case Check::UseBeforeDef: return "use-before-def";
      case Check::Deadlock: return "deadlock";
      case Check::Race: return "race";
      case Check::Equiv: return "equiv";
    }
    return "unknown";
}

std::string
Diagnostic::render(const Program &p) const
{
    std::ostringstream os;
    os << "[" << checkName(check) << "] pc " << pc;
    if (!routine.empty())
        os << " (" << routine << ")";
    if (pc >= 0 && pc < p.size())
        os << ": " << disassemble(p.code[static_cast<size_t>(pc)]);
    os << "\n    " << message;
    if (!path.empty()) {
        os << "\n    path:";
        // Elide the middle of long paths.
        constexpr size_t kHead = 4, kTail = 4;
        for (size_t k = 0; k < path.size(); ++k) {
            if (path.size() > kHead + kTail + 1 && k == kHead) {
                os << "\n      ... (" << path.size() - kHead - kTail
                   << " instructions elided)";
                k = path.size() - kTail - 1;
                continue;
            }
            int q = path[k];
            os << "\n      " << q << ": ";
            if (q >= 0 && q < p.size())
                os << disassemble(p.code[static_cast<size_t>(q)]);
        }
    }
    return os.str();
}

bool
VerifyReport::has(Check c) const
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic &d) { return d.check == c; });
}

std::string
VerifyReport::text(const Program &p) const
{
    if (ok())
        return "";
    std::ostringstream os;
    os << "verifier: program '" << p.name << "' failed "
       << diagnostics.size() << " static check(s):\n";
    for (const Diagnostic &d : diagnostics)
        os << "  " << d.render(p) << "\n";
    return os.str();
}

VerifyReport
verifyProgram(const Program &p, const BenchConfig &cfg,
              const MachineParams &params, const VerifierOptions &opts)
{
    return Verifier(p, cfg, params, opts).run();
}

} // namespace rockcress
