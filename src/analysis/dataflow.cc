#include "analysis/dataflow.hh"

#include "isa/instr.hh"

namespace rockcress
{

std::vector<Routine>
partitionRoutines(const Cfg &cfg)
{
    std::vector<Routine> rs;
    Routine main;
    main.entry = 0;
    main.name = "main body";
    main.reach = reachableFrom(cfg, 0);
    rs.push_back(std::move(main));
    for (int e : cfg.microthreadEntries) {
        Routine r;
        r.entry = e;
        r.name = "microthread at " + std::to_string(e);
        r.reach = reachableFrom(cfg, e);
        rs.push_back(std::move(r));
    }
    return rs;
}

std::vector<std::vector<int>>
predecessors(const Cfg &cfg)
{
    std::vector<std::vector<int>> preds(
        static_cast<size_t>(cfg.size()));
    for (int pc = 0; pc < cfg.size(); ++pc)
        for (int s : cfg.succs[static_cast<size_t>(pc)])
            preds[static_cast<size_t>(s)].push_back(pc);
    return preds;
}

std::vector<std::set<VissueToken>>
vissueTokenFlow(const Cfg &cfg,
                const std::function<bool(int)> &entersVectorRegion)
{
    const Program &p = *cfg.prog;
    int n = cfg.size();
    std::vector<std::set<VissueToken>> lastRun(static_cast<size_t>(n));
    std::vector<bool> seen(static_cast<size_t>(n), false);
    if (n == 0)
        return lastRun;
    std::deque<int> work{0};
    seen[0] = true;
    // Before any region entry nothing vector-side has run.
    while (!work.empty()) {
        int pc = work.front();
        work.pop_front();
        const Instruction &i = p.code[static_cast<size_t>(pc)];
        std::set<VissueToken> out = lastRun[static_cast<size_t>(pc)];
        if (i.op == Opcode::CSRW &&
            static_cast<Csr>(i.sub) == Csr::Vconfig &&
            entersVectorRegion(pc)) {
            out = {VissueToken{true, pc}};
        } else if (i.op == Opcode::VISSUE) {
            out = {VissueToken{false, i.imm}};
        }
        for (int s : cfg.succs[static_cast<size_t>(pc)]) {
            auto &dst = lastRun[static_cast<size_t>(s)];
            size_t before = dst.size();
            dst.insert(out.begin(), out.end());
            if (!seen[static_cast<size_t>(s)] ||
                dst.size() != before) {
                seen[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }
    return lastRun;
}

} // namespace rockcress
