/**
 * @file
 * Interval + congruence abstract domain over the integer register
 * file, with frame-pointer tracking and FrameCfg binding — the value
 * analysis behind the verifier's alignment, scratchpad-bounds and
 * frame-footprint proofs (and the constant queries the structural
 * passes need). Subsumes plain constant propagation: a singleton
 * interval is a constant.
 *
 * Abstract value: v in [lo, hi] and v == r (mod m), where m == 0
 * means exactly r, m == 1 means no congruence information. The
 * congruence component survives widening, which is what lets the
 * analysis prove word alignment of addresses that grow without a
 * static bound (e.g. streaming pointers bumped by 4*k each
 * iteration). Values produced by FRAME_START carry a frame tag: the
 * interval then describes the byte delta from the (dynamic) frame
 * base, and the tag records the governing frame size so loads and
 * stores through the pointer can be checked against the frame's
 * byte footprint.
 *
 * Two FrameCfg bindings ride along in each state:
 *  - cfgRegion governs group-routed fills and microthread frame ops;
 *    it is killed at barriers so that a stale configuration from a
 *    previous phase never merges into the next one (the scalar-core
 *    path around a vector phase's FrameCfg write would otherwise
 *    conflict at the phase-entry join);
 *  - cfgSelf governs self-routed fills and inline frame_start/remem
 *    (the MIMD prefetch configurations) and persists across barriers.
 * A binding in conflict (or absent) makes the dependent checks
 * inapplicable rather than wrong: the analysis only rejects what it
 * can prove unsafe or cannot prove safe at an actual obligation.
 *
 * Microthread entry states are chained interprocedurally through the
 * scalar core's vissue order (dataflow.hh vissueTokenFlow): a
 * microthread inherits the join over the register states its group
 * held when the region formed and the exit states of previously
 * issued microthreads, iterated to fixpoint.
 */

#ifndef ROCKCRESS_ANALYSIS_INTERVAL_HH
#define ROCKCRESS_ANALYSIS_INTERVAL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataflow.hh"
#include "compiler/codegen.hh"
#include "isa/program.hh"
#include "machine/params.hh"

namespace rockcress
{

/** One abstract register value (see file comment). */
struct AbsVal
{
    std::int64_t lo = INT32_MIN;
    std::int64_t hi = INT32_MAX;
    std::int64_t m = 1;   ///< Congruence modulus; 0 = exact value r.
    std::int64_t r = 0;   ///< Residue (value when m == 0).
    /** 0: plain value; >0: frame pointer, fw words per frame. */
    std::int32_t frameFw = 0;

    bool operator==(const AbsVal &) const = default;

    static AbsVal top() { return {}; }
    static AbsVal
    exact(std::int64_t v)
    {
        return {v, v, 0, v, 0};
    }
    static AbsVal range(std::int64_t lo, std::int64_t hi);

    bool isExact() const { return m == 0; }
    bool
    isTop() const
    {
        return frameFw == 0 && lo == INT32_MIN && hi == INT32_MAX &&
               m == 1;
    }

    /** Largest/smallest representable member of the set. */
    std::int64_t effHi() const;
    std::int64_t effLo() const;

    /** Is every member divisible by d (d > 0)? */
    bool divisibleBy(std::int64_t d) const;
    /** Is `v mod d` the same for every member? (out = residue) */
    bool residueMod(std::int64_t d, std::int64_t &out) const;

    /** "[lo, hi] = r (mod m)" rendering for diagnostics. */
    std::string str() const;
};

/** Join (least upper bound) of two abstract values. */
AbsVal joinVal(const AbsVal &a, const AbsVal &b);

/** FrameCfg binding lattice. */
struct CfgBind
{
    enum Kind : std::uint8_t { Bottom, None, Known, Conflict };
    Kind kind = Bottom;
    int fw = 0;  ///< Frame size in words (valid when Known).
    int nf = 0;  ///< Number of frames (valid when Known).

    bool operator==(const CfgBind &) const = default;

    bool isKnown() const { return kind == Known && fw > 0; }

    static CfgBind none() { return {None, 0, 0}; }
    static CfgBind known(int fw, int nf) { return {Known, fw, nf}; }
    static CfgBind conflict() { return {Conflict, 0, 0}; }
};

/** Per-program-point abstract state (x0..x31 plus the bindings). */
struct IntervalState
{
    bool bottom = true;
    std::array<AbsVal, 32> reg{};
    CfgBind cfgRegion;
    CfgBind cfgSelf;

    bool operator==(const IntervalState &) const = default;

    /** Value of a register (x0 is always exactly 0). */
    const AbsVal &get(RegIdx r) const;
    void set(RegIdx r, const AbsVal &v);
};

/**
 * The whole-program interval analysis: per-instruction entry states
 * for the main body and every microthread, chained through vissue.
 */
class IntervalAnalysis
{
  public:
    IntervalAnalysis(const Program &p, const Cfg &cfg,
                     const BenchConfig &bench,
                     const MachineParams &params);

    /** Run to fixpoint. Must be called before any query. */
    void solve();

    /** Abstract value of integer register `r` just before `pc`. */
    AbsVal valueAt(int pc, RegIdx r) const;

    /** Constant (singleton) value of a register before `pc`. */
    bool constAt(int pc, RegIdx r, std::int32_t &out) const;

    /** FrameCfg governing group/microthread frame traffic at `pc`. */
    CfgBind regionCfgAt(int pc) const;
    /** FrameCfg governing self-routed frame traffic at `pc`. */
    CfgBind selfCfgAt(int pc) const;

    /** Did any routine's solve reach `pc`? */
    bool reached(int pc) const;

    /** Is the CSRW-to-Vconfig at `pc` a region entry (nonzero)? */
    bool entersVectorMode(int pc) const;

    const std::vector<Routine> &routines() const { return routines_; }

  private:
    const Program &p_;
    const Cfg &cfg_;
    const BenchConfig &bench_;
    const MachineParams &params_;
    std::vector<Routine> routines_;
    std::vector<IntervalState> in_;
    std::vector<bool> reached_;
};

} // namespace rockcress

#endif // ROCKCRESS_ANALYSIS_INTERVAL_HH
