#include "analysis/symexec.hh"

#include <algorithm>
#include <set>
#include <utility>

namespace rockcress
{

// --- Terms -------------------------------------------------------------------

std::string
Term::str() const
{
    switch (kind) {
      case Kind::Const:
        return std::to_string(value);
      case Kind::Sym:
        return op;
      case Kind::App: {
        std::string s = "(" + op;
        for (const Term *a : args)
            s += " " + a->str();
        return s + ")";
      }
    }
    return "?";
}

// --- TermPool ----------------------------------------------------------------

const Term *
TermPool::intern(Term t)
{
    std::string key;
    switch (t.kind) {
      case Term::Kind::Const:
        key = "C:" + std::to_string(t.value);
        break;
      case Term::Kind::Sym:
        key = "S:" + t.op;
        break;
      case Term::Kind::App:
        key = "A:" + t.op;
        for (const Term *a : t.args)
            key += ":" + std::to_string(a->id);
        break;
    }
    auto it = table_.find(key);
    if (it != table_.end())
        return it->second;
    t.id = static_cast<int>(terms_.size());
    terms_.push_back(std::make_unique<Term>(std::move(t)));
    const Term *p = terms_.back().get();
    table_.emplace(std::move(key), p);
    return p;
}

const Term *
TermPool::constant(std::int32_t v)
{
    Term t;
    t.kind = Term::Kind::Const;
    t.value = v;
    return intern(std::move(t));
}

const Term *
TermPool::sym(const std::string &name)
{
    Term t;
    t.kind = Term::Kind::Sym;
    t.op = name;
    return intern(std::move(t));
}

namespace
{

bool
isCommutative(const std::string &op)
{
    return op == "add" || op == "mul" || op == "and" || op == "or" ||
           op == "xor" || op == "eq" || op == "ne";
}

std::int32_t
wrap(std::uint32_t v)
{
    return static_cast<std::int32_t>(v);
}

/** 32-bit wrapping fold matching the reference model's integer ALU. */
bool
foldBinary(const std::string &op, std::int32_t a, std::int32_t b,
           std::int32_t &out)
{
    auto ua = static_cast<std::uint32_t>(a);
    auto ub = static_cast<std::uint32_t>(b);
    if (op == "add") {
        out = wrap(ua + ub);
    } else if (op == "sub") {
        out = wrap(ua - ub);
    } else if (op == "mul") {
        out = wrap(ua * ub);
    } else if (op == "mulh") {
        out = static_cast<std::int32_t>(
            (static_cast<std::int64_t>(a) * b) >> 32);
    } else if (op == "and") {
        out = wrap(ua & ub);
    } else if (op == "or") {
        out = wrap(ua | ub);
    } else if (op == "xor") {
        out = wrap(ua ^ ub);
    } else if (op == "sll") {
        out = wrap(ua << (ub & 31u));
    } else if (op == "srl") {
        out = wrap(ua >> (ub & 31u));
    } else if (op == "sra") {
        out = a >> (ub & 31u);
    } else if (op == "slt") {
        out = a < b ? 1 : 0;
    } else if (op == "sltu") {
        out = ua < ub ? 1 : 0;
    } else if (op == "div") {
        out = b == 0 ? -1
                     : (a == INT32_MIN && b == -1 ? a : a / b);
    } else if (op == "rem") {
        out = b == 0 ? a : (a == INT32_MIN && b == -1 ? 0 : a % b);
    } else if (op == "eq") {
        out = a == b ? 1 : 0;
    } else if (op == "ne") {
        out = a != b ? 1 : 0;
    } else {
        return false;
    }
    return true;
}

} // namespace

const Term *
TermPool::app(const std::string &op, std::vector<const Term *> args)
{
    auto isConst = [](const Term *t) {
        return t->kind == Term::Kind::Const;
    };

    if (args.size() == 2) {
        const Term *a = args[0];
        const Term *b = args[1];
        // Rewrites that re-enter app() for further normalization.
        if (op == "sll" && isConst(b) && b->value >= 0 &&
            b->value < 31) {
            return app("mul", {a, constant(1 << b->value)});
        }
        if (op == "sub" && isConst(b))
            return app("add", {a, constant(wrap(0u - static_cast<std::uint32_t>(b->value)))});

        // Canonical commutative order: const last, then by term id.
        if (isCommutative(op)) {
            bool swap = isConst(a) != isConst(b)
                            ? isConst(a)
                            : a->id > b->id;
            if (swap) {
                std::swap(args[0], args[1]);
                a = args[0];
                b = args[1];
            }
        }

        std::int32_t folded;
        if (isConst(a) && isConst(b) &&
            foldBinary(op, a->value, b->value, folded)) {
            return constant(folded);
        }

        // Identities.
        if ((op == "add" || op == "xor" || op == "or" || op == "srl" ||
             op == "sra") &&
            isConst(b) && b->value == 0) {
            return a;
        }
        if (op == "sub" && a == b)
            return constant(0);
        if (op == "mul" && isConst(b)) {
            if (b->value == 1)
                return a;
            if (b->value == 0)
                return constant(0);
        }
        if (op == "xor" && a == b)
            return constant(0);
        if ((op == "and" || op == "or") && a == b)
            return a;
        if (op == "and" && isConst(b)) {
            if (b->value == 0)
                return constant(0);
            if (b->value == -1)
                return a;
        }
        if (op == "eq" && a == b)
            return constant(1);
        if (op == "ne" && a == b)
            return constant(0);
        // (add (add x c1) c2) -> (add x (c1+c2)).
        if (op == "add" && isConst(b) && a->kind == Term::Kind::App &&
            a->op == "add" && a->args.size() == 2 &&
            isConst(a->args[1])) {
            std::int32_t c = wrap(
                static_cast<std::uint32_t>(a->args[1]->value) +
                static_cast<std::uint32_t>(b->value));
            return app("add", {a->args[0], constant(c)});
        }
    }
    if (op == "ite" && args.size() == 3) {
        if (args[1] == args[2])
            return args[1];
        if (isConst(args[0]))
            return args[0]->value != 0 ? args[1] : args[2];
    }

    Term t;
    t.kind = Term::Kind::App;
    t.op = op;
    t.args = std::move(args);
    return intern(std::move(t));
}

const Term *
TermPool::ite(const Term *c, const Term *a, const Term *b)
{
    if (!c)
        return a;
    return app("ite", {c, a, b});
}

const Term *
TermPool::notOf(const Term *c)
{
    return app("xor", {c, constant(1)});
}

const Term *
TermPool::conj(const Term *a, const Term *b)
{
    if (!a)
        return b;
    if (!b)
        return a;
    return app("and", {a, b});
}

// --- Effects -----------------------------------------------------------------

bool
SymEffect::sameAs(const SymEffect &o) const
{
    return kind == o.kind && addr == o.addr && value == o.value &&
           spOff == o.spOff && pred == o.pred && coreOff == o.coreOff &&
           width == o.width && variant == o.variant &&
           target == o.target;
}

// --- Region execution --------------------------------------------------------

std::string
symRegName(RegIdx r)
{
    if (r < fpRegBase)
        return "x" + std::to_string(r);
    if (r < simdRegBase)
        return "f" + std::to_string(r - fpRegBase);
    return "v" + std::to_string(r - simdRegBase);
}

namespace
{

struct PathState
{
    int pc = 0;
    std::map<RegIdx, const Term *> regs;
    const Term *pred = nullptr;   ///< Predicate flag term.
    const Term *cond = nullptr;   ///< Path condition (branch picks).
    std::vector<SymEffect> effects;
    int frames = 0;               ///< frame_start symbols handed out.
};

bool
isConstVal(const Term *t, std::int32_t v)
{
    return t && t->kind == Term::Kind::Const && t->value == v;
}

} // namespace

SymResult
symExecRegion(TermPool &pool, const std::vector<Instruction> &code,
              int baseIndex, const SymExecOptions &opts)
{
    SymResult res;
    int n = static_cast<int>(code.size());
    std::vector<PathState> done;
    std::vector<PathState> work;
    work.emplace_back();
    int steps = 0;

    auto fail = [&](std::string why) {
        res.ok = false;
        res.reason = std::move(why);
        return res;
    };
    auto get = [&](PathState &st, RegIdx r) -> const Term * {
        if (r == regZero)
            return pool.constant(0);
        auto it = st.regs.find(r);
        return it != st.regs.end() ? it->second
                                   : pool.sym(symRegName(r));
    };

    while (!work.empty()) {
        PathState st = std::move(work.back());
        work.pop_back();

        auto setReg = [&](RegIdx rd, const Term *v) {
            if (rd == regZero)
                return;
            if (st.pred)
                v = pool.ite(st.pred, v, get(st, rd));
            st.regs[rd] = v;
        };
        auto effect = [&](SymEffect e) {
            if (isConstVal(st.pred, 0))
                return;  // Statically squashed.
            e.pred = st.pred;
            e.pc = st.pc;
            st.effects.push_back(e);
        };
        auto binApp = [&](const char *op, const Instruction &i) {
            setReg(i.rd,
                   pool.app(op, {get(st, i.rs1), get(st, i.rs2)}));
        };
        auto immApp = [&](const char *op, const Instruction &i) {
            setReg(i.rd, pool.app(op, {get(st, i.rs1),
                                       pool.constant(i.imm)}));
        };
        auto ufApp = [&](const Instruction &i, int nsrc) {
            std::vector<const Term *> a{get(st, i.rs1)};
            if (nsrc >= 2)
                a.push_back(get(st, i.rs2));
            if (nsrc >= 3)
                a.push_back(get(st, i.rs3));
            setReg(i.rd, pool.app(opcodeName(i.op), std::move(a)));
        };

        bool ended = false;
        while (st.pc < n && !ended) {
            if (++steps > opts.maxSteps)
                return fail("step budget exhausted");
            const Instruction &i = code[static_cast<size_t>(st.pc)];
            switch (i.op) {
              case Opcode::NOP:
                break;
              case Opcode::ADD: binApp("add", i); break;
              case Opcode::SUB: binApp("sub", i); break;
              case Opcode::AND: binApp("and", i); break;
              case Opcode::OR: binApp("or", i); break;
              case Opcode::XOR: binApp("xor", i); break;
              case Opcode::SLL: binApp("sll", i); break;
              case Opcode::SRL: binApp("srl", i); break;
              case Opcode::SRA: binApp("sra", i); break;
              case Opcode::SLT: binApp("slt", i); break;
              case Opcode::SLTU: binApp("sltu", i); break;
              case Opcode::MUL: binApp("mul", i); break;
              case Opcode::MULH: binApp("mulh", i); break;
              case Opcode::DIV: binApp("div", i); break;
              case Opcode::REM: binApp("rem", i); break;
              case Opcode::ADDI: immApp("add", i); break;
              case Opcode::ANDI: immApp("and", i); break;
              case Opcode::ORI: immApp("or", i); break;
              case Opcode::XORI: immApp("xor", i); break;
              case Opcode::SLLI: immApp("sll", i); break;
              case Opcode::SRLI: immApp("srl", i); break;
              case Opcode::SRAI: immApp("sra", i); break;
              case Opcode::SLTI: immApp("slt", i); break;
              case Opcode::LUI:
                setReg(i.rd,
                       pool.constant(wrap(
                           static_cast<std::uint32_t>(i.imm) << 12)));
                break;

              case Opcode::LW:
              case Opcode::FLW:
                setReg(i.rd,
                       pool.app("load", {pool.app("add",
                                                  {get(st, i.rs1),
                                                   pool.constant(i.imm)})}));
                break;
              case Opcode::SIMD_LW:
                setReg(i.rd,
                       pool.app("simd.load",
                                {pool.app("add", {get(st, i.rs1),
                                                  pool.constant(i.imm)})}));
                break;
              case Opcode::SW:
              case Opcode::FSW: {
                SymEffect e;
                e.kind = SymEffect::Kind::StoreWord;
                e.addr = pool.app("add", {get(st, i.rs1),
                                          pool.constant(i.imm)});
                e.value = get(st, i.rs2);
                effect(e);
                break;
              }
              case Opcode::SIMD_SW: {
                SymEffect e;
                e.kind = SymEffect::Kind::StoreSimd;
                e.addr = pool.app("add", {get(st, i.rs1),
                                          pool.constant(i.imm)});
                e.value = get(st, i.rs2);
                effect(e);
                break;
              }

              case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
              case Opcode::FDIV: case Opcode::FMIN: case Opcode::FMAX:
              case Opcode::FSGNJ: case Opcode::FEQ: case Opcode::FLT:
              case Opcode::FLE:
              case Opcode::SIMD_ADD: case Opcode::SIMD_SUB:
              case Opcode::SIMD_MUL: case Opcode::SIMD_FADD:
              case Opcode::SIMD_FSUB: case Opcode::SIMD_FMUL:
                ufApp(i, 2);
                break;
              case Opcode::FSQRT: case Opcode::FABS:
              case Opcode::FCVT_WS: case Opcode::FCVT_SW:
              case Opcode::SIMD_BCAST: case Opcode::SIMD_REDSUM:
                ufApp(i, 1);
                break;
              case Opcode::FMADD: case Opcode::SIMD_FMA:
                ufApp(i, 3);
                break;
              case Opcode::FMV_XW:
              case Opcode::FMV_WX:
                // Bit-identical register moves.
                setReg(i.rd, get(st, i.rs1));
                break;

              case Opcode::CSRR:
                setReg(i.rd,
                       pool.sym("csr" + std::to_string(i.sub)));
                break;

              case Opcode::VLOAD: {
                SymEffect e;
                e.kind = SymEffect::Kind::Vload;
                e.addr = get(st, i.rs1);
                e.spOff = get(st, i.rs2);
                e.coreOff = i.imm;
                e.width = i.imm2;
                e.variant = i.sub;
                effect(e);
                break;
              }
              case Opcode::FRAME_START: {
                SymEffect e;
                e.kind = SymEffect::Kind::FrameStart;
                effect(e);
                setReg(i.rd, pool.sym(
                    "frame#" + std::to_string(st.frames++)));
                break;
              }
              case Opcode::REMEM: {
                SymEffect e;
                e.kind = SymEffect::Kind::Remem;
                effect(e);
                break;
              }
              case Opcode::VISSUE: {
                SymEffect e;
                e.kind = SymEffect::Kind::Vissue;
                e.target = i.imm;
                effect(e);
                break;
              }
              case Opcode::VEND:
                // Microthread terminator: the path is complete.
                ended = true;
                break;
              case Opcode::PRED_EQ:
              case Opcode::PRED_NEQ: {
                const char *op =
                    i.op == Opcode::PRED_EQ ? "eq" : "ne";
                const Term *c = pool.app(
                    op, {get(st, i.rs1), get(st, i.rs2)});
                st.pred = isConstVal(c, 1) ? nullptr : c;
                break;
              }

              case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
              case Opcode::BGE: case Opcode::BLTU:
              case Opcode::BGEU: case Opcode::JAL: {
                const Term *taken = nullptr;  // null = unconditional.
                switch (i.op) {
                  case Opcode::BEQ:
                    taken = pool.app("eq", {get(st, i.rs1),
                                            get(st, i.rs2)});
                    break;
                  case Opcode::BNE:
                    taken = pool.app("ne", {get(st, i.rs1),
                                            get(st, i.rs2)});
                    break;
                  case Opcode::BLT:
                    taken = pool.app("slt", {get(st, i.rs1),
                                             get(st, i.rs2)});
                    break;
                  case Opcode::BGE:
                    taken = pool.notOf(pool.app(
                        "slt", {get(st, i.rs1), get(st, i.rs2)}));
                    break;
                  case Opcode::BLTU:
                    taken = pool.app("sltu", {get(st, i.rs1),
                                              get(st, i.rs2)});
                    break;
                  case Opcode::BGEU:
                    taken = pool.notOf(pool.app(
                        "sltu", {get(st, i.rs1), get(st, i.rs2)}));
                    break;
                  default:
                    if (i.rd != regZero)
                        return fail("linking jal in region");
                    break;
                }
                if (st.pred)
                    return fail("branch under a symbolic predicate");
                int t = i.imm - baseIndex;
                bool jump;
                if (!taken || taken->kind == Term::Kind::Const) {
                    jump = !taken || taken->value != 0;
                } else {
                    // Symbolic condition: fork.
                    if (static_cast<int>(done.size() + work.size()) +
                            2 > opts.maxPaths) {
                        return fail("fork budget exhausted");
                    }
                    if (t <= st.pc || t > n)
                        return fail("branch target outside the "
                                    "region or backward");
                    PathState other = st;
                    other.pc = t;
                    other.cond = pool.conj(st.cond, taken);
                    work.push_back(std::move(other));
                    st.cond = pool.conj(st.cond, pool.notOf(taken));
                    jump = false;
                }
                if (jump) {
                    if (t <= st.pc || t > n)
                        return fail("branch target outside the "
                                    "region or backward");
                    st.pc = t;
                    continue;
                }
                break;
              }

              case Opcode::JALR:
              case Opcode::HALT:
              case Opcode::BARRIER:
              case Opcode::CSRW:
              case Opcode::DEVEC:
              default:
                return fail(std::string(opcodeName(i.op)) +
                            " is not modeled inside a region");
            }
            ++st.pc;
        }
        done.push_back(std::move(st));
        if (static_cast<int>(done.size() + work.size()) >
            opts.maxPaths) {
            return fail("fork budget exhausted");
        }
    }

    // Merge the completed paths: effect lists must agree exactly;
    // registers join through ite-chains over the path conditions.
    res.paths = static_cast<int>(done.size());
    for (size_t k = 1; k < done.size(); ++k) {
        if (done[k].effects.size() != done[0].effects.size())
            return fail("paths commit different effect lists");
        for (size_t j = 0; j < done[0].effects.size(); ++j) {
            if (!done[k].effects[j].sameAs(done[0].effects[j]))
                return fail("paths commit different effect lists");
        }
    }
    res.effects = done[0].effects;
    std::set<RegIdx> written;
    for (const PathState &p : done) {
        for (const auto &[r, t] : p.regs)
            written.insert(r);
    }
    for (RegIdx r : written) {
        auto valOf = [&](const PathState &p) -> const Term * {
            auto it = p.regs.find(r);
            return it != p.regs.end() ? it->second
                                      : pool.sym(symRegName(r));
        };
        const Term *v = valOf(done[0]);
        for (size_t k = 1; k < done.size(); ++k)
            v = pool.ite(done[k].cond, valOf(done[k]), v);
        res.regs[r] = v;
    }
    res.ok = true;
    return res;
}

} // namespace rockcress
