#include "analysis/cfg.hh"

#include <algorithm>
#include <deque>

#include "isa/instr.hh"

namespace rockcress
{

namespace
{

/**
 * Static resolution of a jalr target: when the link register has
 * exactly one defining instruction in the whole program and that
 * definition pins its value (the jal that made the call, or a
 * constant li), the indirect jump has exactly one possible target.
 * Returns false when the register's value cannot be pinned.
 */
bool
resolveJalr(const Program &p, const Instruction &inst, int &target)
{
    if (inst.rs1 == regZero) {
        target = inst.imm;
        return true;
    }
    int defPc = -1;
    for (int q = 0; q < p.size(); ++q) {
        if (destReg(p.code[static_cast<size_t>(q)]) ==
            static_cast<int>(inst.rs1)) {
            if (defPc >= 0)
                return false;  // Multiple definitions.
            defPc = q;
        }
    }
    if (defPc < 0)
        return false;
    const Instruction &d = p.code[static_cast<size_t>(defPc)];
    if (d.op == Opcode::JAL) {
        target = defPc + 1 + inst.imm;  // Link value is defPc + 1.
        return true;
    }
    if (d.op == Opcode::ADDI && d.rs1 == regZero) {
        target = d.imm + inst.imm;
        return true;
    }
    return false;
}

} // namespace

Cfg
buildCfg(const Program &p)
{
    Cfg cfg;
    cfg.prog = &p;
    int n = p.size();
    cfg.succs.resize(static_cast<size_t>(n));

    auto addSucc = [&](int pc, int to) {
        if (to < 0 || to >= n) {
            cfg.fallsOffEnd.push_back(pc);
            return;
        }
        auto &s = cfg.succs[static_cast<size_t>(pc)];
        if (std::find(s.begin(), s.end(), to) == s.end())
            s.push_back(to);
    };

    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = p.code[static_cast<size_t>(pc)];
        switch (inst.op) {
          case Opcode::HALT:
          case Opcode::VEND:
            break;  // Terminates the stream.
          case Opcode::JALR: {
            int target = 0;
            if (resolveJalr(p, inst, target))
                addSucc(pc, target);
            else
                cfg.indirectJumps.push_back(pc);
            break;
          }
          case Opcode::JAL:
            addSucc(pc, inst.imm);
            break;
          case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
          case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
            addSucc(pc, inst.imm);
            addSucc(pc, pc + 1);
            break;
          case Opcode::DEVEC:
            // Scalar core continues in sequence; vector cores resume
            // at the target. Both are program points of this routine.
            addSucc(pc, inst.imm);
            addSucc(pc, pc + 1);
            break;
          case Opcode::VISSUE:
            if (std::find(cfg.microthreadEntries.begin(),
                          cfg.microthreadEntries.end(),
                          inst.imm) == cfg.microthreadEntries.end()) {
                cfg.microthreadEntries.push_back(inst.imm);
            }
            addSucc(pc, pc + 1);
            break;
          default:
            addSucc(pc, pc + 1);
            break;
        }
    }
    return cfg;
}

std::vector<bool>
reachableFrom(const Cfg &cfg, int entry)
{
    std::vector<bool> seen(static_cast<size_t>(cfg.size()), false);
    if (entry < 0 || entry >= cfg.size())
        return seen;
    std::deque<int> work{entry};
    seen[static_cast<size_t>(entry)] = true;
    while (!work.empty()) {
        int pc = work.front();
        work.pop_front();
        for (int s : cfg.succs[static_cast<size_t>(pc)]) {
            if (!seen[static_cast<size_t>(s)]) {
                seen[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }
    return seen;
}

std::vector<int>
shortestPath(const Cfg &cfg, int entry, int target,
             const std::vector<bool> *blocked)
{
    int n = cfg.size();
    if (entry < 0 || entry >= n || target < 0 || target >= n)
        return {};
    auto isBlocked = [&](int pc) {
        return pc != target && blocked &&
               (*blocked)[static_cast<size_t>(pc)];
    };
    if (isBlocked(entry))
        return {};

    std::vector<int> from(static_cast<size_t>(n), -2);  // -2 = unseen.
    from[static_cast<size_t>(entry)] = -1;
    std::deque<int> work{entry};
    while (!work.empty()) {
        int pc = work.front();
        work.pop_front();
        if (pc == target)
            break;
        for (int s : cfg.succs[static_cast<size_t>(pc)]) {
            if (from[static_cast<size_t>(s)] != -2 || isBlocked(s))
                continue;
            from[static_cast<size_t>(s)] = pc;
            work.push_back(s);
        }
    }
    if (from[static_cast<size_t>(target)] == -2)
        return {};
    std::vector<int> path;
    for (int pc = target; pc != -1; pc = from[static_cast<size_t>(pc)])
        path.push_back(pc);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace rockcress
