#include "analysis/interval.hh"

#include <algorithm>
#include <map>
#include <numeric>

#include "isa/instr.hh"

namespace rockcress
{

namespace
{

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    return std::gcd(a < 0 ? -a : a, b < 0 ? -b : b);
}

std::int64_t
posMod(std::int64_t v, std::int64_t m)
{
    return ((v % m) + m) % m;
}

std::int32_t
wrap32(std::int64_t v)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
}

/**
 * Restore the invariants: interval clamped to 32-bit (a clamp means
 * the computation may have wrapped, so the congruence is folded to
 * gcd(m, 2^32), which preserves power-of-two alignment facts),
 * residue in [0, m), endpoints snapped onto the congruence class,
 * singletons represented exactly. Returns false if the set is empty
 * (only possible after edge refinement).
 */
bool
normalizeVal(AbsVal &v)
{
    if (v.m < 0)
        v.m = -v.m;
    if (v.lo > v.hi)
        return false;
    if (v.lo < INT32_MIN || v.hi > INT32_MAX) {
        v.lo = INT32_MIN;
        v.hi = INT32_MAX;
        v.m = gcd64(v.m == 0 ? (std::int64_t{1} << 32) : v.m,
                    std::int64_t{1} << 32);
    }
    if (v.m > 1) {
        v.r = posMod(v.r, v.m);
        std::int64_t lo2 = v.lo + posMod(v.r - v.lo, v.m);
        std::int64_t hi2 = v.hi - posMod(v.hi - v.r, v.m);
        if (lo2 > hi2)
            return false;
        v.lo = lo2;
        v.hi = hi2;
    } else if (v.m == 0) {
        if (v.r < v.lo || v.r > v.hi)
            return false;
        v.lo = v.hi = v.r;
    }
    if (v.lo == v.hi) {
        v.m = 0;
        v.r = v.lo;
    } else if (v.m == 0) {
        v.m = 1;
        v.r = 0;
    }
    return true;
}

AbsVal
norm(AbsVal v)
{
    if (!normalizeVal(v))
        return AbsVal::top();
    return v;
}

AbsVal
absAdd(const AbsVal &a, const AbsVal &b)
{
    if (a.frameFw != 0 && b.frameFw != 0)
        return AbsVal::top();
    AbsVal v;
    v.frameFw = a.frameFw != 0 ? a.frameFw : b.frameFw;
    v.lo = a.lo + b.lo;
    v.hi = a.hi + b.hi;
    v.m = gcd64(a.m, b.m);
    v.r = a.r + b.r;
    return norm(v);
}

AbsVal
absSub(const AbsVal &a, const AbsVal &b)
{
    if (b.frameFw != 0)
        return AbsVal::top();
    AbsVal v;
    v.frameFw = a.frameFw;
    v.lo = a.lo - b.hi;
    v.hi = a.hi - b.lo;
    v.m = gcd64(a.m, b.m);
    v.r = a.r - b.r;
    return norm(v);
}

AbsVal
absMulConst(const AbsVal &a, std::int64_t c)
{
    if (a.frameFw != 0)
        return AbsVal::top();
    if (c == 0)
        return AbsVal::exact(0);
    if (a.isExact())
        return norm({a.r * c, a.r * c, 0, a.r * c, 0});
    AbsVal v;
    std::int64_t p1 = a.lo * c, p2 = a.hi * c;
    v.lo = std::min(p1, p2);
    v.hi = std::max(p1, p2);
    std::int64_t ac = c < 0 ? -c : c;
    if (a.m <= (std::int64_t{1} << 40) / ac) {
        v.m = a.m * ac;
        v.r = a.r * c;
    }
    return norm(v);
}

AbsVal
absMul(const AbsVal &a, const AbsVal &b)
{
    if (a.frameFw != 0 || b.frameFw != 0)
        return AbsVal::top();
    if (a.isExact())
        return absMulConst(b, a.r);
    if (b.isExact())
        return absMulConst(a, b.r);
    AbsVal v;
    std::int64_t p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                         a.hi * b.hi};
    v.lo = *std::min_element(p, p + 4);
    v.hi = *std::max_element(p, p + 4);
    constexpr std::int64_t cap = std::int64_t{1} << 20;
    if (a.m < cap && b.m < cap) {
        // (r1 + j*m1)(r2 + k*m2) = r1*r2 (mod gcd(m1m2, m1r2, m2r1)).
        v.m = gcd64(a.m * b.m, gcd64(a.m * b.r, b.m * a.r));
        v.r = a.r * b.r;
        if (v.m == 0)
            v.m = 1;
    }
    return norm(v);
}

AbsVal
absShiftRight(const AbsVal &a, int k, bool arithmetic)
{
    if (a.frameFw != 0)
        return AbsVal::top();
    if (!arithmetic && a.lo < 0)
        return AbsVal::top();
    AbsVal v;
    v.lo = a.lo >> k;
    v.hi = a.hi >> k;
    std::int64_t pk = std::int64_t{1} << k;
    if (a.m > 0 && a.m % pk == 0 && a.r % pk == 0) {
        v.m = a.m >> k;
        v.r = a.r >> k;
    } else if (a.isExact()) {
        v.m = 0;
        v.r = a.r >> k;
    }
    return norm(v);
}

AbsVal
absAndMask(const AbsVal &a, std::int32_t mask)
{
    if (mask < 0 || a.frameFw != 0)
        return AbsVal::top();
    AbsVal v;
    v.lo = 0;
    v.hi = mask;
    if (a.lo >= 0)
        v.hi = std::min(v.hi, a.hi);
    std::int64_t width = std::int64_t{mask} + 1;
    if ((width & mask) == 0) {  // mask = 2^k - 1
        v.m = gcd64(a.m == 0 ? width : a.m, width);
        v.r = a.r;
    }
    return norm(v);
}

AbsVal
absDivConst(const AbsVal &a, std::int64_t c)
{
    if (c <= 0 || a.lo < 0 || a.frameFw != 0)
        return AbsVal::top();
    AbsVal v;
    v.lo = a.lo / c;
    v.hi = a.hi / c;
    if (a.m > 0 && a.m % c == 0 && a.r % c == 0) {
        v.m = a.m / c;
        v.r = a.r / c;
    } else if (a.isExact()) {
        v.m = 0;
        v.r = a.r / c;
    }
    return norm(v);
}

AbsVal
absRemConst(const AbsVal &a, std::int64_t c)
{
    if (c <= 0 || a.lo < 0 || a.frameFw != 0)
        return AbsVal::top();
    AbsVal v;
    v.lo = 0;
    v.hi = std::min(c - 1, a.hi);
    std::int64_t g = gcd64(a.m == 0 ? c : a.m, c);
    if (g > 0) {
        v.m = g;
        v.r = posMod(a.r, g);
    }
    return norm(v);
}

AbsVal
absLess(const AbsVal &a, const AbsVal &b, bool isUnsigned)
{
    if (a.frameFw != 0 || b.frameFw != 0)
        return norm({0, 1, 1, 0, 0});
    if (!isUnsigned || (a.lo >= 0 && b.lo >= 0)) {
        if (a.hi < b.lo)
            return AbsVal::exact(1);
        if (a.lo >= b.hi)
            return AbsVal::exact(0);
    }
    return norm({0, 1, 1, 0, 0});
}

/**
 * Concrete 32-bit evaluation for singleton operands, replicating the
 * machine's wrap-around integer semantics so singleton diagnostics
 * (e.g. "misaligned vload address 6") print the value the hardware
 * would compute.
 */
bool
concreteEval(const Instruction &i, std::int32_t a, std::int32_t b,
             std::int32_t &out)
{
    auto u32 = [](std::int32_t x) {
        return static_cast<std::uint32_t>(x);
    };
    std::int32_t imm = i.imm;
    switch (i.op) {
      case Opcode::ADD: out = wrap32(std::int64_t{a} + b); return true;
      case Opcode::SUB: out = wrap32(std::int64_t{a} - b); return true;
      case Opcode::AND: out = a & b; return true;
      case Opcode::OR: out = a | b; return true;
      case Opcode::XOR: out = a ^ b; return true;
      case Opcode::SLL:
        out = static_cast<std::int32_t>(u32(a) << (u32(b) & 31));
        return true;
      case Opcode::SRL:
        out = static_cast<std::int32_t>(u32(a) >> (u32(b) & 31));
        return true;
      case Opcode::SRA: out = a >> (u32(b) & 31); return true;
      case Opcode::SLT: out = a < b ? 1 : 0; return true;
      case Opcode::SLTU: out = u32(a) < u32(b) ? 1 : 0; return true;
      case Opcode::MUL:
        out = wrap32(static_cast<std::int64_t>(a) * b);
        return true;
      case Opcode::DIV:
        out = b == 0                       ? -1
              : (a == INT32_MIN && b == -1) ? INT32_MIN
                                            : a / b;
        return true;
      case Opcode::REM:
        out = b == 0                       ? a
              : (a == INT32_MIN && b == -1) ? 0
                                            : a % b;
        return true;
      case Opcode::ADDI: out = wrap32(std::int64_t{a} + imm); return true;
      case Opcode::ANDI: out = a & imm; return true;
      case Opcode::ORI: out = a | imm; return true;
      case Opcode::XORI: out = a ^ imm; return true;
      case Opcode::SLLI:
        out = static_cast<std::int32_t>(u32(a) << (u32(imm) & 31));
        return true;
      case Opcode::SRLI:
        out = static_cast<std::int32_t>(u32(a) >> (u32(imm) & 31));
        return true;
      case Opcode::SRAI: out = a >> (u32(imm) & 31); return true;
      case Opcode::SLTI: out = a < imm ? 1 : 0; return true;
      case Opcode::LUI:
        out = static_cast<std::int32_t>(u32(imm) << 12);
        return true;
      default:
        return false;
    }
}

CfgBind
joinCfg(const CfgBind &a, const CfgBind &b)
{
    if (a == b)
        return a;
    if (a.kind == CfgBind::Bottom)
        return b;
    if (b.kind == CfgBind::Bottom)
        return a;
    if (a.kind == CfgBind::Conflict || b.kind == CfgBind::Conflict)
        return CfgBind::conflict();
    // None joins with Known to Known: the path that skipped the
    // FrameCfg write (the scalar side of a vector phase) has no
    // binding of its own and defers to the path that wrote it.
    if (a.kind == CfgBind::None)
        return b;
    if (b.kind == CfgBind::None)
        return a;
    return CfgBind::conflict();  // Known vs a different Known.
}

/** The interval domain plugged into solveDataflow (see interval.hh). */
struct IntervalDomain
{
    using State = IntervalState;

    const Program &p;
    const BenchConfig &bench;
    const MachineParams &params;
    bool inMicrothread = false;

    State bottom() const { return State{}; }
    bool isBottom(const State &s) const { return s.bottom; }

    bool
    join(State &into, const State &from) const
    {
        if (from.bottom)
            return false;
        if (into.bottom) {
            into = from;
            return true;
        }
        bool changed = false;
        for (int r = 1; r < 32; ++r) {
            auto ri = static_cast<size_t>(r);
            AbsVal j = joinVal(into.reg[ri], from.reg[ri]);
            if (!(j == into.reg[ri])) {
                into.reg[ri] = j;
                changed = true;
            }
        }
        CfgBind cr = joinCfg(into.cfgRegion, from.cfgRegion);
        CfgBind cs = joinCfg(into.cfgSelf, from.cfgSelf);
        if (!(cr == into.cfgRegion) || !(cs == into.cfgSelf)) {
            into.cfgRegion = cr;
            into.cfgSelf = cs;
            changed = true;
        }
        return changed;
    }

    /**
     * Widening with thresholds: an unstable bound jumps to the next
     * landmark on a short ladder (0, +-1024, ... +-2^26) instead of
     * straight to +-infinity. Loop variables that are in fact bounded
     * (a rotating frame offset masked to the frame region, a trip
     * counter) settle on a landmark just past their true range even
     * when another register's churn has already burned the node's
     * widening budget; narrowing could not recover them afterwards
     * because they circulate unchanged around the loop. Each bound
     * descends the finite ladder monotonically, so termination is
     * preserved.
     */
    static std::int64_t
    widenDown(std::int64_t v)
    {
        static constexpr std::int64_t lad[] = {
            0, -1024, -4096, -65536, -(std::int64_t{1} << 20),
            -(std::int64_t{1} << 26)};
        for (std::int64_t t : lad)
            if (t <= v)
                return t;
        return INT32_MIN;
    }

    static std::int64_t
    widenUp(std::int64_t v)
    {
        static constexpr std::int64_t lad[] = {
            0, 1024, 4096, 65536, std::int64_t{1} << 20,
            std::int64_t{1} << 26};
        for (std::int64_t t : lad)
            if (t >= v)
                return t;
        return INT32_MAX;
    }

    void
    widen(State &cur, const State &prev) const
    {
        if (cur.bottom || prev.bottom)
            return;
        for (int r = 1; r < 32; ++r) {
            auto ri = static_cast<size_t>(r);
            AbsVal &c = cur.reg[ri];
            const AbsVal &pv = prev.reg[ri];
            if (c.frameFw != pv.frameFw)
                continue;  // joinVal already widened the tag away.
            if (c.lo < pv.lo)
                c.lo = widenDown(c.lo);
            if (c.hi > pv.hi)
                c.hi = widenUp(c.hi);
            if (c.m == 0 && c.lo != c.hi) {
                c.m = 1;
                c.r = 0;
            }
        }
    }

    AbsVal evalDest(int pc, const Instruction &i, const State &s) const;
    State transfer(int pc, const State &in) const;
    State refineEdge(int from, int to, const State &out) const;
};

AbsVal
IntervalDomain::evalDest(int pc, const Instruction &i,
                         const State &s) const
{
    switch (i.op) {
      case Opcode::JAL:
      case Opcode::JALR:
        return AbsVal::exact(pc + 1);
      case Opcode::LUI:
        return AbsVal::exact(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(i.imm) << 12));
      case Opcode::CSRR:
        switch (static_cast<Csr>(i.sub)) {
          case Csr::CoreId:
            return AbsVal::range(0, params.numCores() - 1);
          case Csr::NumCores:
            return AbsVal::exact(params.numCores());
          case Csr::GroupTid:
            return AbsVal::range(0, bench.groupSize);
          case Csr::GroupLen:
            return AbsVal::range(0, bench.groupSize + 1);
          default:
            return AbsVal::top();
        }
      case Opcode::FRAME_START: {
        const CfgBind &g = inMicrothread ? s.cfgRegion : s.cfgSelf;
        if (g.isKnown())
            return AbsVal{0, 0, 0, 0, g.fw};
        return AbsVal::top();
      }
      default:
        break;
    }

    const AbsVal &a = s.get(i.rs1);
    const AbsVal &b = s.get(i.rs2);
    bool immOp = i.op == Opcode::ADDI || i.op == Opcode::ANDI ||
                 i.op == Opcode::ORI || i.op == Opcode::XORI ||
                 i.op == Opcode::SLLI || i.op == Opcode::SRLI ||
                 i.op == Opcode::SRAI || i.op == Opcode::SLTI;
    if (a.isExact() && a.frameFw == 0 &&
        (immOp || (b.isExact() && b.frameFw == 0))) {
        std::int32_t out = 0;
        if (concreteEval(i, static_cast<std::int32_t>(a.r),
                         static_cast<std::int32_t>(b.r), out))
            return AbsVal::exact(out);
    }

    switch (i.op) {
      case Opcode::ADD: return absAdd(a, b);
      case Opcode::SUB: return absSub(a, b);
      case Opcode::MUL: return absMul(a, b);
      case Opcode::DIV:
        return b.isExact() ? absDivConst(a, b.r) : AbsVal::top();
      case Opcode::REM:
        return b.isExact() ? absRemConst(a, b.r) : AbsVal::top();
      case Opcode::ADDI: return absAdd(a, AbsVal::exact(i.imm));
      case Opcode::ANDI: return absAndMask(a, i.imm);
      case Opcode::SLLI: {
        int k = static_cast<int>(static_cast<std::uint32_t>(i.imm) & 31);
        return k <= 30 ? absMulConst(a, std::int64_t{1} << k)
                       : AbsVal::top();
      }
      case Opcode::SRLI:
        return absShiftRight(
            a, static_cast<int>(static_cast<std::uint32_t>(i.imm) & 31),
            false);
      case Opcode::SRAI:
        return absShiftRight(
            a, static_cast<int>(static_cast<std::uint32_t>(i.imm) & 31),
            true);
      case Opcode::SLL:
        if (b.isExact()) {
            int k = static_cast<int>(static_cast<std::uint32_t>(b.r) &
                                     31);
            return k <= 30 ? absMulConst(a, std::int64_t{1} << k)
                           : AbsVal::top();
        }
        return AbsVal::top();
      case Opcode::SRL:
        if (b.isExact())
            return absShiftRight(
                a,
                static_cast<int>(static_cast<std::uint32_t>(b.r) & 31),
                false);
        return AbsVal::top();
      case Opcode::SRA:
        if (b.isExact())
            return absShiftRight(
                a,
                static_cast<int>(static_cast<std::uint32_t>(b.r) & 31),
                true);
        return AbsVal::top();
      case Opcode::SLT: return absLess(a, b, false);
      case Opcode::SLTU: return absLess(a, b, true);
      case Opcode::SLTI: return absLess(a, AbsVal::exact(i.imm), false);
      default:
        return AbsVal::top();  // Loads, FP moves: value unknown.
    }
}

IntervalState
IntervalDomain::transfer(int pc, const State &in) const
{
    if (in.bottom)
        return in;
    State s = in;
    const Instruction &i = p.code[static_cast<size_t>(pc)];
    if (i.op == Opcode::BARRIER) {
        s.cfgRegion = CfgBind::none();
        return s;
    }
    if (i.op == Opcode::CSRW) {
        if (static_cast<Csr>(i.sub) == Csr::FrameCfg) {
            const AbsVal &v = s.get(i.rs1);
            CfgBind b = CfgBind::conflict();
            if (v.isExact() && v.frameFw == 0) {
                auto raw = static_cast<std::uint32_t>(v.r);
                b = CfgBind::known(static_cast<int>(raw & 0xffffu),
                                   static_cast<int>(raw >> 16));
            }
            s.cfgRegion = b;
            s.cfgSelf = b;
        }
        return s;
    }
    int rd = destReg(i);
    if (rd < 0 || rd >= 32)
        return s;
    s.set(static_cast<RegIdx>(rd), evalDest(pc, i, in));
    return s;
}

IntervalState
IntervalDomain::refineEdge(int from, int to, const State &out) const
{
    if (out.bottom)
        return out;
    const Instruction &i = p.code[static_cast<size_t>(from)];
    if (!isCondBranch(i.op))
        return out;
    bool takenEdge = to == i.imm;
    bool fallEdge = to == from + 1;
    if (takenEdge == fallEdge)
        return out;  // Degenerate branch (both edges coincide).
    AbsVal a = out.get(i.rs1);
    AbsVal b = out.get(i.rs2);
    if (a.frameFw != 0 || b.frameFw != 0)
        return out;
    bool isUnsigned = i.op == Opcode::BLTU || i.op == Opcode::BGEU;
    if (isUnsigned && (a.lo < 0 || b.lo < 0))
        return out;

    auto lt = [](AbsVal &x, AbsVal &y) {  // Constrain x < y.
        x.hi = std::min(x.hi, y.hi - 1);
        y.lo = std::max(y.lo, x.lo + 1);
    };
    auto ge = [](AbsVal &x, AbsVal &y) {  // Constrain x >= y.
        x.lo = std::max(x.lo, y.lo);
        y.hi = std::min(y.hi, x.hi);
    };
    auto eq = [](AbsVal &x, AbsVal &y) {
        x.lo = y.lo = std::max(x.lo, y.lo);
        x.hi = y.hi = std::min(x.hi, y.hi);
    };
    auto ne = [](AbsVal &x, const AbsVal &y) {
        if (!y.isExact())
            return;
        if (x.lo == y.r)
            x.lo += 1;
        if (x.hi == y.r)
            x.hi -= 1;
    };

    switch (i.op) {
      case Opcode::BLT:
      case Opcode::BLTU:
        takenEdge ? lt(a, b) : ge(a, b);
        break;
      case Opcode::BGE:
      case Opcode::BGEU:
        takenEdge ? ge(a, b) : lt(a, b);
        break;
      case Opcode::BEQ:
        if (takenEdge) {
            eq(a, b);
        } else {
            ne(a, b);
            ne(b, a);
        }
        break;
      case Opcode::BNE:
        if (takenEdge) {
            ne(a, b);
            ne(b, a);
        } else {
            eq(a, b);
        }
        break;
      default:
        return out;
    }
    if (!normalizeVal(a) || !normalizeVal(b))
        return bottom();  // Edge is infeasible.
    State res = out;
    res.set(i.rs1, a);
    res.set(i.rs2, b);
    return res;
}

} // namespace

// --- AbsVal / IntervalState --------------------------------------------------

AbsVal
AbsVal::range(std::int64_t lo, std::int64_t hi)
{
    return norm({lo, hi, 1, 0, 0});
}

std::int64_t
AbsVal::effHi() const
{
    if (m == 0)
        return r;
    if (m == 1)
        return hi;
    return hi - posMod(hi - r, m);
}

std::int64_t
AbsVal::effLo() const
{
    if (m == 0)
        return r;
    if (m == 1)
        return lo;
    return lo + posMod(r - lo, m);
}

bool
AbsVal::divisibleBy(std::int64_t d) const
{
    if (d <= 0)
        return false;
    if (m == 0)
        return posMod(r, d) == 0;
    return m % d == 0 && posMod(r, d) == 0;
}

bool
AbsVal::residueMod(std::int64_t d, std::int64_t &out) const
{
    if (d <= 0)
        return false;
    if (m == 0 || m % d == 0) {
        out = posMod(r, d);
        return true;
    }
    return false;
}

std::string
AbsVal::str() const
{
    if (m == 0)
        return std::to_string(r);
    std::string s =
        "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
    if (m > 1)
        s += " = " + std::to_string(r) + " (mod " + std::to_string(m) +
             ")";
    return s;
}

AbsVal
joinVal(const AbsVal &a, const AbsVal &b)
{
    if (a.frameFw != b.frameFw)
        return AbsVal::top();
    AbsVal v;
    v.frameFw = a.frameFw;
    v.lo = std::min(a.lo, b.lo);
    v.hi = std::max(a.hi, b.hi);
    std::int64_t mm = gcd64(gcd64(a.m, b.m), a.r - b.r);
    if (mm == 0) {
        v.m = 0;  // Both exact with the same value.
        v.r = a.r;
    } else {
        v.m = mm;
        v.r = posMod(a.r, mm);
    }
    return norm(v);
}

const AbsVal &
IntervalState::get(RegIdx r) const
{
    static const AbsVal zero = AbsVal::exact(0);
    static const AbsVal anything = AbsVal::top();
    if (r == regZero)
        return zero;
    if (r >= 32)
        return anything;
    return reg[static_cast<size_t>(r)];
}

void
IntervalState::set(RegIdx r, const AbsVal &v)
{
    if (r == regZero || r >= 32)
        return;
    reg[static_cast<size_t>(r)] = v;
}

// --- IntervalAnalysis --------------------------------------------------------

IntervalAnalysis::IntervalAnalysis(const Program &p, const Cfg &cfg,
                                   const BenchConfig &bench,
                                   const MachineParams &params)
    : p_(p), cfg_(cfg), bench_(bench), params_(params)
{}

void
IntervalAnalysis::solve()
{
    routines_ = partitionRoutines(cfg_);
    const int n = cfg_.size();
    in_.assign(static_cast<size_t>(n), IntervalState{});
    reached_.assign(static_cast<size_t>(n), false);
    if (n == 0)
        return;

    IntervalDomain mainDom{p_, bench_, params_, false};
    IntervalState entry;
    entry.bottom = false;
    entry.cfgRegion = CfgBind::none();
    entry.cfgSelf = CfgBind::none();
    auto mainSol = solveDataflow(cfg_, mainDom, {{0, entry}},
                                 &routines_[0].reach);

    auto enters = [&](int pc) {
        const Instruction &i = p_.code[static_cast<size_t>(pc)];
        if (!mainSol.reached[static_cast<size_t>(pc)])
            return true;
        const IntervalState &st = mainSol.in[static_cast<size_t>(pc)];
        if (st.bottom)
            return true;
        const AbsVal &v = st.get(i.rs1);
        if (v.isExact() && v.frameFw == 0)
            return v.r != 0;
        return true;
    };
    auto tokens = vissueTokenFlow(cfg_, enters);

    // Microthread entry states, chained through the scalar core's
    // vissue order and iterated to fixpoint (microthreads issued in a
    // loop feed their exit state back into the next launch).
    const size_t nmt = routines_.size() - 1;
    IntervalDomain mtDom{p_, bench_, params_, true};
    std::vector<IntervalState> mtEntry(nmt);
    std::vector<IntervalState> mtExit(nmt);
    std::vector<Solution<IntervalState>> mtSol(nmt);
    std::map<int, size_t> mtIndex;
    for (size_t k = 0; k < nmt; ++k)
        mtIndex[routines_[k + 1].entry] = k;

    auto computeEntry = [&](size_t k) {
        IntervalState e;  // bottom
        int epc = routines_[k + 1].entry;
        for (int pc = 0; pc < n; ++pc) {
            const Instruction &i = p_.code[static_cast<size_t>(pc)];
            if (i.op != Opcode::VISSUE || i.imm != epc ||
                !mainSol.reached[static_cast<size_t>(pc)]) {
                continue;
            }
            for (const VissueToken &t :
                 tokens[static_cast<size_t>(pc)]) {
                if (t.isRegion) {
                    if (t.pc >= 0 && t.pc < n &&
                        mainSol.reached[static_cast<size_t>(t.pc)]) {
                        mtDom.join(e,
                                   mainSol.in[static_cast<size_t>(t.pc)]);
                    }
                } else {
                    auto it = mtIndex.find(t.pc);
                    if (it != mtIndex.end())
                        mtDom.join(e, mtExit[it->second]);
                }
            }
        }
        return e;
    };
    auto solveMt = [&](size_t k) {
        mtSol[k] = solveDataflow(
            cfg_, mtDom, {{routines_[k + 1].entry, mtEntry[k]}},
            &routines_[k + 1].reach);
        IntervalState ex;  // bottom
        for (int pc = 0; pc < n; ++pc) {
            if (p_.code[static_cast<size_t>(pc)].op == Opcode::VEND &&
                mtSol[k].reached[static_cast<size_t>(pc)]) {
                mtDom.join(ex, mtSol[k].in[static_cast<size_t>(pc)]);
            }
        }
        bool changed = !(ex == mtExit[k]);
        mtExit[k] = std::move(ex);
        return changed;
    };

    constexpr int maxRounds = 10;
    bool converged = nmt == 0;
    for (int round = 0; round < maxRounds && !converged; ++round) {
        bool entriesChanged = false;
        for (size_t k = 0; k < nmt; ++k) {
            IntervalState e = computeEntry(k);
            if (!(e == mtEntry[k])) {
                mtEntry[k] = std::move(e);
                entriesChanged = true;
            }
        }
        if (!entriesChanged && round > 0) {
            converged = true;
            break;
        }
        bool exitsChanged = false;
        for (size_t k = 0; k < nmt; ++k) {
            if (mtEntry[k].bottom)
                continue;
            exitsChanged |= solveMt(k);
        }
        if (!exitsChanged)
            converged = true;
    }
    if (!converged) {
        // Give up on precision, not soundness: launch every reachable
        // microthread from an unconstrained state.
        for (size_t k = 0; k < nmt; ++k) {
            if (mtEntry[k].bottom)
                continue;
            IntervalState top;
            top.bottom = false;
            top.cfgRegion = CfgBind::conflict();
            top.cfgSelf = CfgBind::conflict();
            mtEntry[k] = top;
            solveMt(k);
        }
    }

    for (int pc = 0; pc < n; ++pc) {
        if (mainSol.reached[static_cast<size_t>(pc)]) {
            in_[static_cast<size_t>(pc)] =
                mainSol.in[static_cast<size_t>(pc)];
            reached_[static_cast<size_t>(pc)] = true;
        }
    }
    for (size_t k = 0; k < nmt; ++k) {
        if (mtSol[k].in.empty())
            continue;
        for (int pc = 0; pc < n; ++pc) {
            if (!mtSol[k].reached[static_cast<size_t>(pc)])
                continue;
            if (reached_[static_cast<size_t>(pc)]) {
                mtDom.join(in_[static_cast<size_t>(pc)],
                           mtSol[k].in[static_cast<size_t>(pc)]);
            } else {
                in_[static_cast<size_t>(pc)] =
                    mtSol[k].in[static_cast<size_t>(pc)];
                reached_[static_cast<size_t>(pc)] = true;
            }
        }
    }
}

AbsVal
IntervalAnalysis::valueAt(int pc, RegIdx r) const
{
    if (pc < 0 || pc >= static_cast<int>(in_.size()) ||
        !reached_[static_cast<size_t>(pc)] ||
        in_[static_cast<size_t>(pc)].bottom) {
        return AbsVal::top();
    }
    return in_[static_cast<size_t>(pc)].get(r);
}

bool
IntervalAnalysis::constAt(int pc, RegIdx r, std::int32_t &out) const
{
    if (pc < 0 || pc >= static_cast<int>(in_.size()) ||
        !reached_[static_cast<size_t>(pc)]) {
        return false;
    }
    AbsVal v = valueAt(pc, r);
    if (v.isExact() && v.frameFw == 0) {
        out = static_cast<std::int32_t>(v.r);
        return true;
    }
    return false;
}

CfgBind
IntervalAnalysis::regionCfgAt(int pc) const
{
    if (pc < 0 || pc >= static_cast<int>(in_.size()) ||
        !reached_[static_cast<size_t>(pc)]) {
        return {};
    }
    return in_[static_cast<size_t>(pc)].cfgRegion;
}

CfgBind
IntervalAnalysis::selfCfgAt(int pc) const
{
    if (pc < 0 || pc >= static_cast<int>(in_.size()) ||
        !reached_[static_cast<size_t>(pc)]) {
        return {};
    }
    return in_[static_cast<size_t>(pc)].cfgSelf;
}

bool
IntervalAnalysis::reached(int pc) const
{
    return pc >= 0 && pc < static_cast<int>(reached_.size()) &&
           reached_[static_cast<size_t>(pc)];
}

bool
IntervalAnalysis::entersVectorMode(int pc) const
{
    if (pc < 0 || pc >= static_cast<int>(in_.size()))
        return true;
    const Instruction &i = p_.code[static_cast<size_t>(pc)];
    std::int32_t v = 0;
    if (constAt(pc, i.rs1, v))
        return v != 0;
    return true;
}

} // namespace rockcress
