#include "analysis/tokenflow.hh"

#include <algorithm>
#include <map>

#include "isa/instr.hh"

namespace rockcress
{

namespace
{

constexpr std::int64_t kInf = std::int64_t{1} << 60;

std::int64_t
satAdd(std::int64_t a, std::int64_t b)
{
    std::int64_t s = a + b;
    return std::clamp(s, -kInf, kInf);
}

std::int64_t
satMul(std::int64_t a, std::int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > (kInf / b))
        return kInf;
    return std::clamp(a * b, -kInf, kInf);
}

/** [lo, hi] backlog of frame-region words for one scratchpad. */
struct SlotRange
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    bool operator==(const SlotRange &) const = default;

    static SlotRange top() { return {-kInf, kInf}; }
};

/** How many frame_starts one microthread performs per run. */
struct CountState
{
    bool bottom = true;
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    bool operator==(const CountState &) const = default;
};

struct CountDomain
{
    using State = CountState;
    const Program &p;

    State bottom() const { return State{}; }
    bool isBottom(const State &s) const { return s.bottom; }

    State
    transfer(int pc, const State &in) const
    {
        if (in.bottom)
            return in;
        State s = in;
        if (p.code[static_cast<size_t>(pc)].op == Opcode::FRAME_START) {
            s.lo = satAdd(s.lo, 1);
            s.hi = satAdd(s.hi, 1);
        }
        return s;
    }

    bool
    join(State &into, const State &from) const
    {
        if (from.bottom)
            return false;
        if (into.bottom) {
            into = from;
            return true;
        }
        std::int64_t lo = std::min(into.lo, from.lo);
        std::int64_t hi = std::max(into.hi, from.hi);
        bool changed = lo != into.lo || hi != into.hi;
        into.lo = lo;
        into.hi = hi;
        return changed;
    }

    void
    widen(State &cur, const State &prev) const
    {
        if (cur.bottom || prev.bottom)
            return;
        if (cur.lo < prev.lo)
            cur.lo = 0;  // Counts never go below zero.
        if (cur.hi > prev.hi)
            cur.hi = kInf;
    }
};

/** Per-slot word backlog across the group (+ one self slot). */
struct TokenState
{
    bool bottom = true;
    std::vector<SlotRange> w;

    bool operator==(const TokenState &) const = default;
};

struct TokenDomain
{
    using State = TokenState;

    const Program &p;
    const MachineParams &params;
    const IntervalAnalysis &vals;
    /** frame_start count interval per microthread entry pc. */
    const std::map<int, CountState> &mtCounts;
    int groupSlots;

    int selfSlot() const { return groupSlots; }

    State
    bottom() const
    {
        return State{};
    }
    bool isBottom(const State &s) const { return s.bottom; }

    State
    transfer(int pc, const State &in) const
    {
        if (in.bottom)
            return in;
        State s = in;
        apply(pc, s, nullptr);
        return s;
    }

    bool
    join(State &into, const State &from) const
    {
        if (from.bottom)
            return false;
        if (into.bottom) {
            into = from;
            return true;
        }
        bool changed = false;
        for (size_t i = 0; i < into.w.size(); ++i) {
            std::int64_t lo = std::min(into.w[i].lo, from.w[i].lo);
            std::int64_t hi = std::max(into.w[i].hi, from.w[i].hi);
            if (lo != into.w[i].lo || hi != into.w[i].hi) {
                into.w[i] = {lo, hi};
                changed = true;
            }
        }
        return changed;
    }

    void
    widen(State &cur, const State &prev) const
    {
        if (cur.bottom || prev.bottom)
            return;
        for (size_t i = 0; i < cur.w.size(); ++i) {
            if (cur.w[i].lo < prev.w[i].lo)
                cur.w[i].lo = -kInf;
            if (cur.w[i].hi > prev.w[i].hi)
                cur.w[i].hi = kInf;
        }
    }

    /**
     * The shared transfer: mutates `s`; when `diags` is non-null the
     * definite-wedge checks run too (the post-fixpoint report pass).
     */
    void apply(int pc, State &s, std::vector<TokenDiag> *diags) const;
};

void
TokenDomain::apply(int pc, State &s, std::vector<TokenDiag> *diags) const
{
    const Instruction &i = p.code[static_cast<size_t>(pc)];
    switch (i.op) {
      case Opcode::CSRW:
        if (static_cast<Csr>(i.sub) == Csr::FrameCfg) {
            // Reconfiguration resets every frame counter.
            for (SlotRange &sr : s.w)
                sr = {0, 0};
        }
        return;

      case Opcode::VLOAD: {
        int w = i.imm2;
        if (w <= 0)
            return;
        auto variant = static_cast<VloadVariant>(i.sub);
        bool self = variant == VloadVariant::Self;
        CfgBind cfg =
            self ? vals.selfCfgAt(pc) : vals.regionCfgAt(pc);

        // Where in the scratchpad does this fill land relative to
        // the frame region? Only frame-region words bump counters.
        bool inside = false, outside = false;
        if (cfg.isKnown() && cfg.nf > 0) {
            std::int64_t region =
                std::int64_t{cfg.fw} * cfg.nf * 4;
            AbsVal off = vals.valueAt(pc, i.rs2);
            if (off.frameFw == 0) {
                if (off.effLo() >= region)
                    outside = true;
                else if (off.effLo() >= 0 &&
                         off.effHi() + std::int64_t{w} * 4 <= region)
                    inside = true;
            }
        }
        if (outside)
            return;

        int first = 0, last = -1;  // Affected group slots.
        if (variant == VloadVariant::Group) {
            first = std::max(0, i.imm);
            last = groupSlots - 1;
        } else if (variant == VloadVariant::Single) {
            if (i.imm >= 0 && i.imm < groupSlots)
                first = last = i.imm;
        } else {
            first = last = selfSlot();
        }
        std::int64_t limit =
            cfg.isKnown()
                ? std::int64_t{cfg.fw} * params.frameCounters
                : kInf;
        for (int sl = first; sl <= last; ++sl) {
            SlotRange &sr = s.w[static_cast<size_t>(sl)];
            if (inside) {
                if (diags && sr.lo + w > limit) {
                    diags->push_back(
                        {pc,
                         "vload paces " +
                             std::to_string(sr.lo + w) +
                             " words of frame data into a "
                             "scratchpad whose " +
                             std::to_string(params.frameCounters) +
                             " frame counters track at most " +
                             std::to_string(limit) +
                             " words: the fill stalls forever with "
                             "nothing left to drain the window"});
                    sr = SlotRange::top();
                    continue;
                }
                sr.lo = satAdd(sr.lo, w);
                sr.hi = satAdd(sr.hi, w);
            } else {
                // Unknown destination: may or may not be counted.
                sr.hi = satAdd(sr.hi, w);
            }
        }
        return;
      }

      case Opcode::FRAME_START: {
        // Restricted to the main routine, so this is an inline
        // (self-routed) frame_start.
        SlotRange &sr = s.w[static_cast<size_t>(selfSlot())];
        CfgBind cfg = vals.selfCfgAt(pc);
        if (!cfg.isKnown()) {
            sr = SlotRange::top();
            return;
        }
        if (diags && sr.hi < cfg.fw) {
            diags->push_back(
                {pc, "frame_start waits for a " +
                         std::to_string(cfg.fw) +
                         "-word frame but the preceding self vloads "
                         "deliver at most " +
                         std::to_string(std::max<std::int64_t>(
                             sr.hi, 0)) +
                         " words: the frame never becomes ready"});
            sr = SlotRange::top();
            return;
        }
        sr.lo = satAdd(sr.lo, -cfg.fw);
        sr.hi = satAdd(sr.hi, -cfg.fw);
        return;
      }

      case Opcode::VISSUE: {
        CfgBind cfg = vals.regionCfgAt(pc);
        auto it = mtCounts.find(i.imm);
        if (!cfg.isKnown() || it == mtCounts.end() ||
            it->second.bottom) {
            for (int sl = 0; sl < groupSlots; ++sl)
                s.w[static_cast<size_t>(sl)] = SlotRange::top();
            return;
        }
        std::int64_t cl = it->second.lo, ch = it->second.hi;
        std::int64_t need = satMul(cl, cfg.fw);
        for (int sl = 0; sl < groupSlots; ++sl) {
            SlotRange &sr = s.w[static_cast<size_t>(sl)];
            if (diags && sr.hi < need) {
                diags->push_back(
                    {pc,
                     "vissued microthread performs at least " +
                         std::to_string(cl) +
                         " frame_start(s) of " +
                         std::to_string(cfg.fw) +
                         " words each but the preceding vloads "
                         "deliver at most " +
                         std::to_string(
                             std::max<std::int64_t>(sr.hi, 0)) +
                         " words to a group core: the frame never "
                         "becomes ready"});
                sr = SlotRange::top();
                continue;
            }
            sr.lo = satAdd(sr.lo, -satMul(ch, cfg.fw));
            sr.hi = satAdd(sr.hi, -need);
        }
        return;
      }

      default:
        return;
    }
}

} // namespace

std::vector<TokenDiag>
checkFrameTokenFlow(const Program &p, const Cfg &cfg,
                    const BenchConfig &bench,
                    const MachineParams &params,
                    const IntervalAnalysis &values)
{
    std::vector<TokenDiag> diags;
    const int n = cfg.size();
    if (n == 0)
        return diags;
    const std::vector<Routine> &routines = values.routines();

    // Per-microthread frame_start execution counts.
    std::map<int, CountState> mtCounts;
    CountDomain cd{p};
    for (size_t k = 1; k < routines.size(); ++k) {
        CountState entry;
        entry.bottom = false;
        auto sol = solveDataflow(cfg, cd,
                                 {{routines[k].entry, entry}},
                                 &routines[k].reach);
        CountState exit;  // bottom
        for (int pc = 0; pc < n; ++pc) {
            if (p.code[static_cast<size_t>(pc)].op == Opcode::VEND &&
                sol.reached[static_cast<size_t>(pc)]) {
                cd.join(exit, sol.in[static_cast<size_t>(pc)]);
            }
        }
        if (exit.bottom) {
            // No vend reached (structurally malformed): any count.
            exit.bottom = false;
            exit.lo = 0;
            exit.hi = kInf;
        }
        mtCounts[routines[k].entry] = exit;
    }

    int groupSlots = std::max(1, bench.groupSize);
    TokenDomain dom{p, params, values, mtCounts, groupSlots};
    TokenState entry;
    entry.bottom = false;
    entry.w.assign(static_cast<size_t>(groupSlots) + 1, SlotRange{});
    auto sol =
        solveDataflow(cfg, dom, {{0, entry}}, &routines[0].reach);

    for (int pc = 0; pc < n; ++pc) {
        if (!sol.reached[static_cast<size_t>(pc)])
            continue;
        TokenState s = sol.in[static_cast<size_t>(pc)];
        if (s.bottom)
            continue;
        dom.apply(pc, s, &diags);
    }
    return diags;
}

} // namespace rockcress
