/**
 * @file
 * Vector-program fuzzer: generates seeded, verifier-clean random
 * vector-group programs (frame streaming, predication, PCV SIMD,
 * global stores, optional MIMD epilogue) and runs each one twice —
 * on the cycle-level machine under the co-simulation checker and on
 * the functional reference in batch mode — then cross-checks the
 * per-core commit streams and the final memory images.
 */

#ifndef ROCKCRESS_REF_FUZZ_HH
#define ROCKCRESS_REF_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rockcress
{

/** Fuzzer knobs (mirrors ref_fuzz's command line). */
struct FuzzOptions
{
    std::uint64_t baseSeed = 0x5eed;
    int seeds = 50;
    bool verbose = false;
};

/** Outcome of one fuzzed program. */
struct FuzzCaseResult
{
    bool ok = false;
    std::string shape;   ///< One-line geometry/program description.
    std::string error;   ///< First failure (empty when ok).
};

/** Generate and check a single seed. */
FuzzCaseResult runFuzzCase(std::uint64_t seed, bool verbose = false);

/** Aggregate over a seed range. */
struct FuzzSummary
{
    int passed = 0;
    int failed = 0;
    /** One entry per failed seed: "seed N: <error>". */
    std::vector<std::string> failures;
    /** Distinct vector-group geometries exercised, e.g. "4x2/g3". */
    std::vector<std::string> geometries;

    bool ok() const { return failed == 0; }
};

/** Run the full campaign. */
FuzzSummary runFuzz(const FuzzOptions &opts);

/**
 * Race-differential mode: generate programs under a race-prone
 * schedule (shallow run-ahead, tight frame rings, overlapping
 * producer offsets) and mutate half of them with a balanced
 * duplicate-fill/dropped-fill pair, then require the static race
 * verdict (analysis/racecheck.hh) and the frame sanitizer's dynamic
 * verdict (mem/scratchpad.hh) to agree on every program: mutated
 * programs must be caught by BOTH layers, clean ones by NEITHER.
 */
FuzzCaseResult runRaceFuzzCase(std::uint64_t seed, bool verbose = false);

/** Run the full race-differential campaign. */
FuzzSummary runRaceFuzz(const FuzzOptions &opts);

/**
 * Translation-validation differential mode: build each seeded program
 * twice from identical draws — once clean, once (on half the seeds)
 * with a seeded miscompile injected into the emitter AFTER the
 * vectorization manifest is captured (a dropped lane, a skewed stream
 * stride, an off-by-one trip count, a swapped predicate polarity) —
 * then require the static equivalence verdict (analysis/equiv.hh)
 * and the batch-reference dynamic verdict (differing final heaps) to
 * agree on every seed: mutants flagged by BOTH layers with the
 * expected finding kind, clean programs proved by the validator and
 * flagged by NEITHER.
 */
FuzzCaseResult runEquivFuzzCase(std::uint64_t seed, bool verbose = false);

/** Run the full translation-validation campaign. */
FuzzSummary runEquivFuzz(const FuzzOptions &opts);

/**
 * Tick-kernel differential mode: run the same seeded program on THREE
 * implementations — the fast-tick machine, the naive tick-everything
 * machine, and the batch functional reference — and require exact
 * agreement: identical cycle counts, identical per-core commit
 * streams, an identical statistics registry (every counter), and
 * identical final memory images. Any divergence is a quiescence bug
 * in the fast-tick scheduler (or, symmetrically, a naive-kernel
 * regression).
 */
FuzzCaseResult runTickDiffCase(std::uint64_t seed, bool verbose = false);

/** Run the full tick-differential campaign. */
FuzzSummary runTickDiffFuzz(const FuzzOptions &opts);

/**
 * Checkpoint differential mode: run each seeded program twice — once
 * straight, once chunked through seeded mid-run snapshot/restore hops
 * (each chunk resumed into a freshly prepared machine on an
 * alternating tick kernel, with the same co-simulation checker
 * carried across the hops) — and require exact agreement: identical
 * cosim verdicts, cycle counts, per-core commit streams, statistics
 * registries, and final memory images. Any divergence means a state
 * field the snapshot misses or restores wrong.
 */
FuzzCaseResult runCheckpointFuzzCase(std::uint64_t seed,
                                     bool verbose = false);

/** Run the full checkpoint-differential campaign. */
FuzzSummary runCheckpointFuzz(const FuzzOptions &opts);

} // namespace rockcress

#endif // ROCKCRESS_REF_FUZZ_HH
