/**
 * @file
 * The co-simulation checker: a CommitSink that drives the functional
 * reference model in lockstep with the cycle-level machine's commit
 * streams. Attach with Machine::attachCosim before run(); call
 * Machine::drainCosim then finish() after.
 */

#ifndef ROCKCRESS_REF_COSIM_HH
#define ROCKCRESS_REF_COSIM_HH

#include <string>
#include <vector>

#include "ref/refmodel.hh"

namespace rockcress
{

/** Checks every committed instruction against the reference model. */
class CosimChecker : public CommitSink
{
  public:
    /** Snapshot the (prepared, not-yet-run) machine. */
    explicit CosimChecker(const Machine &m, const RefOptions &opts = {})
        : ref_(m, opts)
    {}

    /** @throws CosimDivergence on the first mismatch. */
    void onCommit(CoreId c, Cycle now, const CommitRecord &rec) override
    {
        if (recordStreams_)
            streams_[static_cast<size_t>(c)].push_back(rec);
        ref_.step(c, now, rec);
        ++checked_;
    }

    /**
     * End-of-run checks (walkers at halt, final memory image).
     * @return Empty string when clean, else a report.
     */
    std::string finish(const MainMemory &timing_mem) const
    {
        return ref_.finish(timing_mem);
    }

    /** Total instructions checked (vacuousness guard for tests). */
    std::uint64_t checked() const { return checked_; }

    /** Also record the timing commit streams (fuzzer cross-check). */
    void recordStreams(int num_cores)
    {
        recordStreams_ = true;
        streams_.assign(static_cast<size_t>(num_cores), {});
    }
    const std::vector<std::vector<CommitRecord>> &streams() const
    {
        return streams_;
    }

  private:
    RefMachine ref_;
    std::uint64_t checked_ = 0;
    bool recordStreams_ = false;
    std::vector<std::vector<CommitRecord>> streams_;
};

} // namespace rockcress

#endif // ROCKCRESS_REF_COSIM_HH
