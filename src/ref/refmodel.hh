/**
 * @file
 * The golden functional reference model: an ISA-level interpreter for
 * the full Rockcress ISA (scalar ops, PCV SIMD, vconfig/vissue/vend/
 * devec, frame-based vload, frame_start/remem, predication) that
 * executes a loaded machine's programs to an architectural commit
 * stream per core, with forwarded instructions replayed in issue
 * order.
 *
 * Two modes share one executor:
 *  - DRIVEN (co-simulation): the cycle-level core's commit stream
 *    drives per-core walkers one architectural instruction per
 *    commit; any mismatch in opcode, operands, register writeback,
 *    memory effect, or resolved control flow throws CosimDivergence
 *    with a structured report.
 *  - BATCH (fuzzing / standalone): a round-robin scheduler with
 *    blocking semantics (group formation, barriers, frame readiness,
 *    vload pacing) runs the program to completion without the timing
 *    model, producing the commit streams and the final memory image.
 *
 * Deliberate timing/function differences are documented in DESIGN.md
 * section 5e (frame refill ordering, the uniform-control-flow
 * contract for trailing cores, racy-load adoption).
 */

#ifndef ROCKCRESS_REF_REFMODEL_HH
#define ROCKCRESS_REF_REFMODEL_HH

#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/commit.hh"
#include "machine/machine.hh"
#include "mem/mainmem.hh"

namespace rockcress
{

/** Knobs for the reference model. */
struct RefOptions
{
    /**
     * Compare global-load values against reference memory. Disable
     * for racy kernels (bfs): the reference then adopts the timing
     * model's loaded value, checking only the address, so that
     * benign load-store races don't report false divergences.
     */
    bool strictLoads = true;
    /** Bound on silently replayed instructions (trailing-core branch
     * resolution) per committed instruction — runaway-loop backstop. */
    std::uint64_t maxSilentSteps = 1'000'000;
};

/** Thrown on any reference/timing mismatch; carries the anchor. */
class CosimDivergence : public std::runtime_error
{
  public:
    CosimDivergence(CoreId core, Cycle cycle, int pc,
                    const Instruction &inst, const std::string &report)
        : std::runtime_error(report), core(core), cycle(cycle), pc(pc),
          inst(inst)
    {}

    CoreId core;       ///< Core whose commit diverged.
    Cycle cycle;       ///< Commit cycle.
    int pc;            ///< Reference pc (-1 for inet-delivered).
    Instruction inst;  ///< The diverging instruction.
};

/** The functional reference machine. */
class RefMachine
{
  public:
    /**
     * Snapshot a configured machine (programs loaded, groups planned,
     * memory initialized — i.e. after Benchmark::prepare) into a
     * purely functional model. The timing machine is not referenced
     * afterwards.
     */
    explicit RefMachine(const Machine &m, const RefOptions &opts = {});

    /**
     * DRIVEN mode: advance core `c` by one architectural instruction
     * and check it against the committed record. Trailing vector
     * cores silently replay expander-stream branches and vends to
     * reach the next forwarded instruction.
     * @throws CosimDivergence on any mismatch.
     */
    void step(CoreId c, Cycle now, const CommitRecord &rec);

    /**
     * After the timing run and commit drain: verify every walker
     * rests at its halt and the final global memory matches.
     * @return Empty string when clean, else a report.
     */
    std::string finish(const MainMemory &timing_mem) const;

    /** Outcome of a BATCH run. */
    struct BatchResult
    {
        bool ok = false;
        std::string error;           ///< Deadlock/overrun diagnostics.
        /** Per-core architectural commit streams. */
        std::vector<std::vector<CommitRecord>> streams;
    };

    /** BATCH mode: run all cores functionally to completion. */
    BatchResult runBatch(std::uint64_t max_steps = 50'000'000);

    /** The reference memory image (final after a run). */
    const MainMemory &mem() const { return mem_; }

  private:
    enum class Role
    {
        Independent,
        Scalar,
        Expander,
        Vector,
    };

    /** Functional frame-queue state. Unlike the hardware counters the
     * reference tracks all numFrames slots, so commit-order refill
     * run-ahead never overflows the window (DESIGN.md 5e). */
    struct Frames
    {
        int frameSize = 0;   ///< Words; 0 = unconfigured.
        int numFrames = 0;
        std::uint64_t head = 0;
        std::vector<int> fill;   ///< Per physical slot.

        bool configured() const { return frameSize > 0; }
        bool inRegion(Addr off) const;
        bool ready() const;
        Addr headByteOffset() const;
    };

    struct RefCore
    {
        std::shared_ptr<const Program> program;
        std::array<Word, numArchRegs> regs{};
        std::vector<std::array<Word, 32>> simd;  ///< [lane][vreg].
        bool pred = true;
        int pc = 0;
        Role role = Role::Independent;
        bool inMt = false;       ///< Expander/Vector: inside a mt.
        int group = -1;          ///< Planned group id (-1 = none).
        int tid = 0;             ///< GroupTid CSR value.
        std::size_t eventIdx = 0;
        bool halted = false;     ///< BATCH mode only.
        std::vector<Word> spad;
        Frames frames;
        // BATCH scheduling state.
        bool joinCounted = false;
        bool barrierWaiting = false;
        std::string blocked;     ///< Last block reason (diagnostics).
    };

    /** Group-wide stream of launch/disband points, in scalar commit
     * order; every non-scalar member consumes it with its own cursor. */
    struct Group
    {
        std::vector<CoreId> chain;
        struct Event
        {
            bool isDevec = false;
            int pc = 0;
        };
        std::vector<Event> events;
        // BATCH formation bookkeeping.
        int joined = 0;
        int left = 0;
    };

    RefCore &core(CoreId c) { return cores_[static_cast<size_t>(c)]; }

    /** @name Scratchpad access (bounds-checked, frame-aware). */
    ///@{
    Word spadRead(CoreId c, Addr off, Cycle now);
    void spadWrite(CoreId c, Addr off, Word data, Cycle now);
    /** Arrival-path write: also fills the destination frame. */
    void networkWrite(CoreId c, Addr off, Word data, Cycle now);
    ///@}

    /** Distribute one vload functionally (Section 2.3.2 formula). */
    void applyVload(CoreId c, const Instruction &inst, Cycle now);

    /** Tolerant run-ahead window check for one destination offset. */
    static bool frameWindowOk(const Frames &fr, Addr off);

    /** Group-disband bookkeeping shared by every devec path. */
    void leaveGroup(Group &g);

    /** Resolve a never-forwarded branch with the core's own registers
     * (trailing-core silent replay; link registers are NOT written). */
    static void resolveSilentBranch(RefCore &rc, const Instruction &inst);

    /**
     * Execute one architectural instruction on core `c`, mutating
     * reference state and returning its commit record. `timing` is
     * the matching timing-side record in DRIVEN mode (load adoption),
     * null in BATCH mode. `rec_pc` follows the timing convention
     * (own-stream pc, or -1 for inet-delivered instructions).
     */
    CommitRecord apply(CoreId c, const Instruction &inst, int rec_pc,
                       const CommitRecord *timing, Cycle now);

    /** Throw a structured divergence report. */
    [[noreturn]] void diverge(CoreId c, Cycle now, int pc,
                              const Instruction &inst,
                              const std::string &what) const;

    /** Field-wise record comparison; throws on mismatch. */
    void compareRecords(CoreId c, Cycle now, int ref_pc,
                        const CommitRecord &exp,
                        const CommitRecord &got) const;

    /** BATCH: try to advance one core; false when blocked. */
    bool stepBatchOne(CoreId c, std::vector<std::vector<CommitRecord>> &streams);

    MachineParams params_;
    AddrMap map_;
    RefOptions opts_;
    MainMemory mem_;
    std::vector<RefCore> cores_;
    std::vector<Group> groups_;
    mutable std::uint64_t silentBudget_ = 0;
};

} // namespace rockcress

#endif // ROCKCRESS_REF_REFMODEL_HH
