#include "ref/refmodel.hh"

#include <cmath>
#include <sstream>

#include "sim/log.hh"

namespace rockcress
{

namespace
{

/** Render one commit record for divergence reports. */
std::string
renderRecord(const CommitRecord &r)
{
    std::ostringstream os;
    os << disassemble(r.inst) << " | pc=" << r.pc;
    if (r.wrote) {
        os << " rd=" << static_cast<int>(r.rd) << " value=[";
        for (size_t i = 0; i < r.value.size(); ++i)
            os << (i ? "," : "") << r.value[i];
        os << "]";
    }
    if (r.mem) {
        os << (r.isStore ? " store" : " load") << " addr=" << r.addr;
        if (!r.data.empty()) {
            os << " data=[";
            for (size_t i = 0; i < r.data.size(); ++i)
                os << (i ? "," : "") << r.data[i];
            os << "]";
        }
    }
    if (!r.aux.empty()) {
        os << " aux=[";
        for (size_t i = 0; i < r.aux.size(); ++i)
            os << (i ? "," : "") << r.aux[i];
        os << "]";
    }
    return os.str();
}

} // namespace

// --- Construction -------------------------------------------------------------

RefMachine::RefMachine(const Machine &m, const RefOptions &opts)
    : params_(m.params()), map_(m.addrMap()), opts_(opts), mem_(m.mem())
{
    int n = params_.numCores();
    cores_.resize(static_cast<size_t>(n));
    for (CoreId c = 0; c < n; ++c) {
        RefCore &rc = core(c);
        rc.program = m.programOf(c);
        rc.pc = m.entryOf(c);
        rc.simd.resize(static_cast<size_t>(params_.core.simdWidth));
        rc.spad.assign(params_.spadBytes / wordBytes, 0);
    }
    for (const GroupPlan &plan : m.groupPlans()) {
        Group g;
        g.chain = plan.chain;
        int gid = static_cast<int>(groups_.size());
        for (size_t i = 0; i < plan.chain.size(); ++i) {
            RefCore &rc = core(plan.chain[i]);
            rc.group = gid;
            // GroupTid: position among the vector cores; scalar = 0.
            rc.tid = i >= 1 ? static_cast<int>(i) - 1 : 0;
        }
        groups_.push_back(std::move(g));
    }
}

// --- Frames -------------------------------------------------------------------

bool
RefMachine::Frames::inRegion(Addr off) const
{
    return frameSize > 0 &&
           off < static_cast<Addr>(frameSize) *
                     static_cast<Addr>(numFrames) * wordBytes;
}

bool
RefMachine::Frames::ready() const
{
    return fill[head % static_cast<std::uint64_t>(numFrames)] ==
           frameSize;
}

Addr
RefMachine::Frames::headByteOffset() const
{
    return static_cast<Addr>(head % static_cast<std::uint64_t>(numFrames)) *
           static_cast<Addr>(frameSize) * wordBytes;
}

// --- Scratchpad ---------------------------------------------------------------

Word
RefMachine::spadRead(CoreId c, Addr off, Cycle)
{
    if (off % wordBytes != 0 || off >= params_.spadBytes)
        fatal("ref spad ", c, ": bad read offset ", off);
    return core(c).spad[off / wordBytes];
}

void
RefMachine::spadWrite(CoreId c, Addr off, Word data, Cycle)
{
    if (off % wordBytes != 0 || off >= params_.spadBytes)
        fatal("ref spad ", c, ": bad write offset ", off);
    core(c).spad[off / wordBytes] = data;
}

void
RefMachine::networkWrite(CoreId c, Addr off, Word data, Cycle now)
{
    spadWrite(c, off, data, now);
    Frames &fr = core(c).frames;
    if (!fr.configured() || !fr.inRegion(off))
        return;
    auto slot = static_cast<size_t>(off / wordBytes) /
                static_cast<size_t>(fr.frameSize);
    if (fr.fill[slot] >= fr.frameSize)
        fatal("ref spad ", c, ": frame ", slot, " overfilled");
    ++fr.fill[slot];
}

// --- vload --------------------------------------------------------------------

void
RefMachine::applyVload(CoreId c, const Instruction &inst, Cycle now)
{
    RefCore &rc = core(c);
    Addr addr = rc.regs[inst.rs1];
    Word spad_off = rc.regs[inst.rs2];
    int width = inst.imm2;
    int core_off = inst.imm;
    auto variant = static_cast<VloadVariant>(inst.sub);

    const std::vector<CoreId> *vec_cores = nullptr;
    if (variant != VloadVariant::Self) {
        if (rc.group < 0)
            fatal("ref core ", c, ": group vload outside a vector group");
        vec_cores = &groups_[static_cast<size_t>(rc.group)].chain;
    }
    // chain[0] is the scalar; vector cores start at chain[1].
    auto dest_of = [&](int idx) {
        return vec_cores->at(static_cast<size_t>(idx) + 1);
    };

    int total_words = width;
    int resp_per_core = width;
    if (variant == VloadVariant::Group) {
        int n = static_cast<int>(vec_cores->size()) - 1 - core_off;
        total_words = width * n;
    }

    if (static_cast<Addr>(total_words) * wordBytes > map_.lineBytes)
        fatal("ref core ", c, ": vload exceeds the cache line");
    if (addr % wordBytes != 0 || !map_.isGlobal(addr))
        fatal("ref core ", c, ": bad vload source address ", addr);

    for (int w = 0; w < total_words; ++w) {
        CoreId dst = c;
        switch (variant) {
          case VloadVariant::Self: dst = c; break;
          case VloadVariant::Single: dst = dest_of(core_off); break;
          case VloadVariant::Group:
            dst = dest_of(core_off + w / resp_per_core);
            break;
        }
        Addr off = spad_off +
                   static_cast<Addr>(w % resp_per_core) * wordBytes;
        networkWrite(dst, off,
                     mem_.readWord(addr + static_cast<Addr>(w) * wordBytes),
                     now);
    }
}

/** Tolerant run-ahead window check for a vload (BATCH pacing): every
 * destination frame slot must be within numFrames of the head. The
 * hardware window is the counter count; commit-order refill can
 * legally run ahead of it (DESIGN.md 5e). */
bool
RefMachine::frameWindowOk(const Frames &fr, Addr off)
{
    if (!fr.configured() || !fr.inRegion(off))
        return true;
    // All numFrames slots are tracked, so only overfill can reject; a
    // full not-yet-freed slot means the producer must wait.
    auto slot = static_cast<size_t>(off / wordBytes) /
                static_cast<size_t>(fr.frameSize);
    return fr.fill[slot] < fr.frameSize;
}

// --- Divergence reporting ------------------------------------------------------

void
RefMachine::diverge(CoreId c, Cycle now, int pc, const Instruction &inst,
                    const std::string &what) const
{
    std::ostringstream os;
    os << "cosim divergence: core " << c << " cycle " << now << " pc "
       << pc << "\n  inst: " << disassemble(inst) << "\n  " << what;
    throw CosimDivergence(c, now, pc, inst, os.str());
}

void
RefMachine::compareRecords(CoreId c, Cycle now, int ref_pc,
                           const CommitRecord &exp,
                           const CommitRecord &got) const
{
    auto fail = [&](const char *field) {
        std::ostringstream os;
        os << field << " mismatch\n  expected: " << renderRecord(exp)
           << "\n  actual:   " << renderRecord(got);
        diverge(c, now, ref_pc, got.inst, os.str());
    };
    if (exp.pc >= 0 && got.pc >= 0 && exp.pc != got.pc)
        fail("pc");
    if (exp.wrote != got.wrote)
        fail("writeback presence");
    if (exp.wrote && (exp.rd != got.rd || exp.value != got.value))
        fail("register writeback");
    if (exp.mem != got.mem || exp.isStore != got.isStore)
        fail("memory-effect kind");
    if (exp.mem && exp.addr != got.addr)
        fail("memory address");
    if (exp.data != got.data)
        fail("store data");
    if (exp.aux != got.aux)
        fail("auxiliary state");
}

// --- The functional executor ---------------------------------------------------

CommitRecord
RefMachine::apply(CoreId c, const Instruction &inst, int rec_pc,
                  const CommitRecord *timing, Cycle now)
{
    RefCore &rc = core(c);
    CommitRecord r;
    r.inst = inst;
    r.pc = rec_pc;
    Opcode op = inst.op;

    // Predication: a clear flag squashes everything except the
    // predicate/region-exit ops; the squashed op still commits a bare
    // record and the stream advances.
    if (!rc.pred && op != Opcode::PRED_EQ && op != Opcode::PRED_NEQ &&
        op != Opcode::DEVEC && op != Opcode::VEND) {
        rc.pc += 1;
        return r;
    }

    auto &regs = rc.regs;
    auto si = [&](RegIdx reg) {
        return static_cast<std::int32_t>(regs[reg]);
    };
    auto fp = [&](RegIdx reg) { return wordToFloat(regs[reg]); };
    auto set_int = [&](RegIdx reg, Word v) {
        if (reg != regZero)
            regs[reg] = v;
    };
    auto set_fp = [&](RegIdx reg, float v) { regs[reg] = floatToWord(v); };
    int simd_width = params_.core.simdWidth;

    /** Capture the flat/SIMD writeback of a plain functional op. */
    auto capture_dest = [&]() {
        int rd = destReg(inst);
        if (rd < 0)
            return;
        r.wrote = true;
        r.rd = static_cast<RegIdx>(rd);
        if (rd >= simdRegBase) {
            for (int l = 0; l < simd_width; ++l)
                r.value.push_back(rc.simd[static_cast<size_t>(l)]
                                         [rd - simdRegBase]);
        } else {
            r.value = {regs[static_cast<size_t>(rd)]};
        }
    };

    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU: {
        bool taken = false;
        switch (op) {
          case Opcode::BEQ: taken = si(inst.rs1) == si(inst.rs2); break;
          case Opcode::BNE: taken = si(inst.rs1) != si(inst.rs2); break;
          case Opcode::BLT: taken = si(inst.rs1) < si(inst.rs2); break;
          case Opcode::BGE: taken = si(inst.rs1) >= si(inst.rs2); break;
          case Opcode::BLTU: taken = regs[inst.rs1] < regs[inst.rs2];
                             break;
          case Opcode::BGEU: taken = regs[inst.rs1] >= regs[inst.rs2];
                             break;
          default: break;
        }
        rc.pc = taken ? inst.imm : rc.pc + 1;
        r.aux = {static_cast<Word>(rc.pc)};
        return r;
      }
      case Opcode::JAL: {
        Word link = static_cast<Word>(rc.pc + 1);
        set_int(inst.rd, link);
        rc.pc = inst.imm;
        if (destReg(inst) >= 0) {
            r.wrote = true;
            r.rd = inst.rd;
            r.value = {link};
        }
        r.aux = {static_cast<Word>(rc.pc)};
        return r;
      }
      case Opcode::JALR: {
        Word target = regs[inst.rs1] + static_cast<Word>(inst.imm);
        Word link = static_cast<Word>(rc.pc + 1);
        set_int(inst.rd, link);
        rc.pc = static_cast<int>(target);
        if (destReg(inst) >= 0) {
            r.wrote = true;
            r.rd = inst.rd;
            r.value = {link};
        }
        r.aux = {static_cast<Word>(rc.pc)};
        return r;
      }

      case Opcode::LW: case Opcode::FLW: {
        Addr addr = regs[inst.rs1] + static_cast<Addr>(inst.imm);
        Word data;
        if (map_.isGlobal(addr)) {
            // Racy-load adoption: with strict checking off, take the
            // timing model's loaded value (address still checked) so
            // benign data races don't report false divergences.
            if (timing && !opts_.strictLoads && timing->mem &&
                !timing->isStore && timing->value.size() == 1) {
                data = timing->value[0];
            } else {
                data = mem_.readWord(addr);
            }
        } else {
            if (map_.spadCore(addr) != c)
                fatal("ref core ", c, ": load from a remote scratchpad");
            data = spadRead(c, map_.spadOffset(addr), now);
        }
        set_int(inst.rd, data);
        r.wrote = true;
        r.rd = inst.rd;
        r.value = {data};
        r.mem = true;
        r.addr = addr;
        rc.pc += 1;
        return r;
      }

      case Opcode::SIMD_LW: {
        Addr addr = regs[inst.rs1] + static_cast<Addr>(inst.imm);
        if (!map_.isSpad(addr) || map_.spadCore(addr) != c)
            fatal("ref core ", c,
                  ": simd load must target own scratchpad");
        Addr off = map_.spadOffset(addr);
        int rd = inst.rd - simdRegBase;
        r.wrote = true;
        r.rd = inst.rd;
        for (int l = 0; l < simd_width; ++l) {
            Word w = spadRead(c, off + static_cast<Addr>(l) * wordBytes,
                              now);
            rc.simd[static_cast<size_t>(l)][rd] = w;
            r.value.push_back(w);
        }
        r.mem = true;
        r.addr = addr;
        rc.pc += 1;
        return r;
      }

      case Opcode::SW: case Opcode::FSW: {
        Addr addr = regs[inst.rs1] + static_cast<Addr>(inst.imm);
        Word data = regs[inst.rs2];
        if (map_.isGlobal(addr)) {
            mem_.writeWord(addr, data);
        } else if (map_.spadCore(addr) == c) {
            spadWrite(c, map_.spadOffset(addr), data, now);
        } else {
            // Remote scratchpad store: the arrival path counts toward
            // the destination's frame fill, like the timing model.
            networkWrite(map_.spadCore(addr), map_.spadOffset(addr),
                         data, now);
        }
        r.mem = true;
        r.isStore = true;
        r.addr = addr;
        r.data = {data};
        rc.pc += 1;
        return r;
      }

      case Opcode::SIMD_SW: {
        Addr addr = regs[inst.rs1] + static_cast<Addr>(inst.imm);
        r.mem = true;
        r.isStore = true;
        r.addr = addr;
        bool own_spad = map_.isSpad(addr) && map_.spadCore(addr) == c;
        if (!own_spad && !map_.isGlobal(addr))
            fatal("ref core ", c, ": simd store to a remote scratchpad");
        for (int l = 0; l < simd_width; ++l) {
            Word w = rc.simd[static_cast<size_t>(l)]
                            [inst.rs2 - simdRegBase];
            Addr a = addr + static_cast<Addr>(l) * wordBytes;
            if (own_spad)
                spadWrite(c, map_.spadOffset(a), w, now);
            else
                mem_.writeWord(a, w);
            r.data.push_back(w);
        }
        rc.pc += 1;
        return r;
      }

      case Opcode::VLOAD:
        r.aux = {regs[inst.rs1], regs[inst.rs2]};
        applyVload(c, inst, now);
        rc.pc += 1;
        return r;

      case Opcode::VISSUE:
        if (rc.group >= 0) {
            groups_[static_cast<size_t>(rc.group)].events.push_back(
                {false, inst.imm});
        }
        rc.pc += 1;
        return r;

      case Opcode::VEND:
        rc.inMt = false;
        rc.pc += 1;
        return r;

      case Opcode::DEVEC:
        if (rc.role == Role::Scalar) {
            // The disband message fans out; the scalar itself keeps
            // running in its own stream (pred flag untouched).
            Group &g = groups_[static_cast<size_t>(rc.group)];
            g.events.push_back({true, inst.imm});
            rc.role = Role::Independent;
            rc.pc += 1;
            leaveGroup(g);
        } else if (rc.role == Role::Expander ||
                   rc.role == Role::Vector) {
            rc.role = Role::Independent;
            rc.inMt = false;
            rc.pred = true;
            rc.pc = inst.imm;
            leaveGroup(groups_[static_cast<size_t>(rc.group)]);
        } else {
            rc.pc += 1;
        }
        return r;

      case Opcode::FRAME_START: {
        Frames &fr = rc.frames;
        if (!fr.configured())
            fatal("ref core ", c, ": frame_start with frames "
                  "unconfigured");
        if (!fr.ready())
            diverge(c, now, rec_pc, inst,
                    "frame_start committed with the head frame not "
                    "full in the reference (refill ordering)");
        Word base = map_.spadBase(c) + fr.headByteOffset();
        set_int(inst.rd, base);
        r.wrote = true;
        r.rd = inst.rd;
        r.value = {base};
        rc.pc += 1;
        return r;
      }

      case Opcode::REMEM: {
        Frames &fr = rc.frames;
        if (!fr.configured())
            fatal("ref core ", c, ": remem with frames unconfigured");
        if (!fr.ready())
            diverge(c, now, rec_pc, inst,
                    "remem of a non-full frame in the reference");
        fr.fill[fr.head % static_cast<std::uint64_t>(fr.numFrames)] = 0;
        ++fr.head;
        rc.pc += 1;
        return r;
      }

      case Opcode::PRED_EQ:
        rc.pred = regs[inst.rs1] == regs[inst.rs2];
        r.aux = {rc.pred ? Word(1) : Word(0)};
        rc.pc += 1;
        return r;
      case Opcode::PRED_NEQ:
        rc.pred = regs[inst.rs1] != regs[inst.rs2];
        r.aux = {rc.pred ? Word(1) : Word(0)};
        rc.pc += 1;
        return r;

      case Opcode::CSRW: {
        Csr csr = static_cast<Csr>(inst.sub);
        Word value = regs[inst.rs1];
        r.aux = {value};
        if (csr == Csr::Vconfig) {
            if (value != 0 && rc.group >= 0) {
                const Group &g = groups_[static_cast<size_t>(rc.group)];
                if (g.chain[0] == c)
                    rc.role = Role::Scalar;
                else if (g.chain[1] == c)
                    rc.role = Role::Expander;
                else
                    rc.role = Role::Vector;
                rc.inMt = false;
            }
            rc.pc += 1;
            return r;
        }
        if (csr == Csr::FrameCfg) {
            Frames &fr = rc.frames;
            auto frame_words = static_cast<int>(value & 0xffff);
            auto num_frames = static_cast<int>(value >> 16);
            if (frame_words == 0 && num_frames == 0) {
                fr = Frames{};
            } else {
                if (frame_words <= 0 || num_frames <= 0 ||
                    frame_words >= 1024 ||
                    static_cast<Addr>(frame_words) *
                            static_cast<Addr>(num_frames) * wordBytes >
                        params_.spadBytes) {
                    fatal("ref core ", c, ": bad frame config ", value);
                }
                fr.frameSize = frame_words;
                fr.numFrames = num_frames;
                fr.head = 0;
                fr.fill.assign(static_cast<size_t>(num_frames), 0);
            }
            rc.pc += 1;
            return r;
        }
        fatal("ref core ", c, ": write to read-only CSR");
      }

      case Opcode::CSRR: {
        Csr csr = static_cast<Csr>(inst.sub);
        Word value = 0;
        switch (csr) {
          case Csr::CoreId: value = static_cast<Word>(c); break;
          case Csr::NumCores:
            value = static_cast<Word>(params_.numCores());
            break;
          case Csr::GroupTid: value = static_cast<Word>(rc.tid); break;
          case Csr::GroupLen:
            // Formed iff this core currently holds a vector-mode role
            // (reads are only meaningful inside the region).
            if (rc.role != Role::Independent && rc.group >= 0) {
                value = static_cast<Word>(
                    groups_[static_cast<size_t>(rc.group)].chain.size() -
                    1);
            }
            break;
          default:
            fatal("ref core ", c, ": read of unknown CSR");
        }
        set_int(inst.rd, value);
        if (destReg(inst) >= 0) {
            r.wrote = true;
            r.rd = inst.rd;
            r.value = {value};
        }
        rc.pc += 1;
        return r;
      }

      case Opcode::BARRIER:
        rc.pc += 1;
        return r;

      case Opcode::HALT:
        // Never commits in the timing model; BATCH handles it before
        // calling apply.
        fatal("ref core ", c, ": halt reached the executor");

      case Opcode::NOP:
        rc.pc += 1;
        return r;

      default:
        break;
    }

    // Plain functional instruction: mirror Core::execute exactly
    // (including FP expression shapes, for bit-identical results).
    switch (op) {
      case Opcode::ADD: set_int(inst.rd, regs[inst.rs1] + regs[inst.rs2]); break;
      case Opcode::SUB: set_int(inst.rd, regs[inst.rs1] - regs[inst.rs2]); break;
      case Opcode::AND: set_int(inst.rd, regs[inst.rs1] & regs[inst.rs2]); break;
      case Opcode::OR:  set_int(inst.rd, regs[inst.rs1] | regs[inst.rs2]); break;
      case Opcode::XOR: set_int(inst.rd, regs[inst.rs1] ^ regs[inst.rs2]); break;
      case Opcode::SLL:
        set_int(inst.rd, regs[inst.rs1] << (regs[inst.rs2] & 31));
        break;
      case Opcode::SRL:
        set_int(inst.rd, regs[inst.rs1] >> (regs[inst.rs2] & 31));
        break;
      case Opcode::SRA:
        set_int(inst.rd, static_cast<Word>(si(inst.rs1) >>
                                           (regs[inst.rs2] & 31)));
        break;
      case Opcode::SLT:
        set_int(inst.rd, si(inst.rs1) < si(inst.rs2) ? 1 : 0);
        break;
      case Opcode::SLTU:
        set_int(inst.rd, regs[inst.rs1] < regs[inst.rs2] ? 1 : 0);
        break;
      case Opcode::MUL:
        // Unsigned wrap-around product, matching Core::execute.
        set_int(inst.rd, regs[inst.rs1] * regs[inst.rs2]);
        break;
      case Opcode::MULH:
        set_int(inst.rd, static_cast<Word>(
            (static_cast<std::int64_t>(si(inst.rs1)) *
             static_cast<std::int64_t>(si(inst.rs2))) >> 32));
        break;
      case Opcode::DIV:
        set_int(inst.rd,
                regs[inst.rs2] == 0
                    ? static_cast<Word>(-1)
                    : static_cast<Word>(si(inst.rs1) / si(inst.rs2)));
        break;
      case Opcode::REM:
        set_int(inst.rd,
                regs[inst.rs2] == 0
                    ? regs[inst.rs1]
                    : static_cast<Word>(si(inst.rs1) % si(inst.rs2)));
        break;
      case Opcode::ADDI:
        set_int(inst.rd, regs[inst.rs1] + static_cast<Word>(inst.imm));
        break;
      case Opcode::ANDI:
        set_int(inst.rd, regs[inst.rs1] & static_cast<Word>(inst.imm));
        break;
      case Opcode::ORI:
        set_int(inst.rd, regs[inst.rs1] | static_cast<Word>(inst.imm));
        break;
      case Opcode::XORI:
        set_int(inst.rd, regs[inst.rs1] ^ static_cast<Word>(inst.imm));
        break;
      case Opcode::SLLI: set_int(inst.rd, regs[inst.rs1] << inst.imm); break;
      case Opcode::SRLI: set_int(inst.rd, regs[inst.rs1] >> inst.imm); break;
      case Opcode::SRAI:
        set_int(inst.rd, static_cast<Word>(si(inst.rs1) >> inst.imm));
        break;
      case Opcode::SLTI:
        set_int(inst.rd, si(inst.rs1) < inst.imm ? 1 : 0);
        break;
      case Opcode::LUI:
        set_int(inst.rd, static_cast<Word>(inst.imm) << 12);
        break;

      case Opcode::FADD: set_fp(inst.rd, fp(inst.rs1) + fp(inst.rs2)); break;
      case Opcode::FSUB: set_fp(inst.rd, fp(inst.rs1) - fp(inst.rs2)); break;
      case Opcode::FMUL: set_fp(inst.rd, fp(inst.rs1) * fp(inst.rs2)); break;
      case Opcode::FDIV: set_fp(inst.rd, fp(inst.rs1) / fp(inst.rs2)); break;
      case Opcode::FSQRT: set_fp(inst.rd, std::sqrt(fp(inst.rs1))); break;
      case Opcode::FMIN:
        set_fp(inst.rd, std::fmin(fp(inst.rs1), fp(inst.rs2)));
        break;
      case Opcode::FMAX:
        set_fp(inst.rd, std::fmax(fp(inst.rs1), fp(inst.rs2)));
        break;
      case Opcode::FMADD:
        set_fp(inst.rd, fp(inst.rs1) * fp(inst.rs2) + fp(inst.rs3));
        break;
      case Opcode::FABS: set_fp(inst.rd, std::fabs(fp(inst.rs1))); break;
      case Opcode::FSGNJ:
        set_fp(inst.rd, std::copysign(fp(inst.rs1), fp(inst.rs2)));
        break;
      case Opcode::FEQ:
        set_int(inst.rd, fp(inst.rs1) == fp(inst.rs2) ? 1 : 0);
        break;
      case Opcode::FLT:
        set_int(inst.rd, fp(inst.rs1) < fp(inst.rs2) ? 1 : 0);
        break;
      case Opcode::FLE:
        set_int(inst.rd, fp(inst.rs1) <= fp(inst.rs2) ? 1 : 0);
        break;
      case Opcode::FCVT_WS:
        set_int(inst.rd, static_cast<Word>(
            static_cast<std::int32_t>(fp(inst.rs1))));
        break;
      case Opcode::FCVT_SW:
        set_fp(inst.rd, static_cast<float>(si(inst.rs1)));
        break;
      case Opcode::FMV_XW: set_int(inst.rd, regs[inst.rs1]); break;
      case Opcode::FMV_WX: regs[inst.rd] = regs[inst.rs1]; break;

      case Opcode::SIMD_ADD: case Opcode::SIMD_SUB:
      case Opcode::SIMD_MUL: case Opcode::SIMD_FADD:
      case Opcode::SIMD_FSUB: case Opcode::SIMD_FMUL:
      case Opcode::SIMD_FMA: {
        int rd = inst.rd - simdRegBase;
        int a = inst.rs1 - simdRegBase;
        int b = inst.rs2 - simdRegBase;
        int cc = inst.rs3 - simdRegBase;
        for (int l = 0; l < simd_width; ++l) {
            auto &lane = rc.simd[static_cast<size_t>(l)];
            switch (op) {
              case Opcode::SIMD_ADD: lane[rd] = lane[a] + lane[b]; break;
              case Opcode::SIMD_SUB: lane[rd] = lane[a] - lane[b]; break;
              case Opcode::SIMD_MUL:
                lane[rd] = lane[a] * lane[b];
                break;
              case Opcode::SIMD_FADD:
                lane[rd] = floatToWord(wordToFloat(lane[a]) +
                                       wordToFloat(lane[b]));
                break;
              case Opcode::SIMD_FSUB:
                lane[rd] = floatToWord(wordToFloat(lane[a]) -
                                       wordToFloat(lane[b]));
                break;
              case Opcode::SIMD_FMUL:
                lane[rd] = floatToWord(wordToFloat(lane[a]) *
                                       wordToFloat(lane[b]));
                break;
              case Opcode::SIMD_FMA:
                lane[rd] = floatToWord(wordToFloat(lane[a]) *
                                           wordToFloat(lane[b]) +
                                       wordToFloat(lane[cc]));
                break;
              default: break;
            }
        }
        break;
      }
      case Opcode::SIMD_BCAST: {
        int rd = inst.rd - simdRegBase;
        for (int l = 0; l < simd_width; ++l)
            rc.simd[static_cast<size_t>(l)][rd] = regs[inst.rs1];
        break;
      }
      case Opcode::SIMD_REDSUM: {
        int a = inst.rs1 - simdRegBase;
        float sum = 0.0f;
        for (int l = 0; l < simd_width; ++l)
            sum += wordToFloat(rc.simd[static_cast<size_t>(l)][a]);
        set_fp(inst.rd, sum);
        break;
      }

      default:
        fatal("ref core ", c, ": executor got unexpected op ",
              opcodeName(op));
    }

    capture_dest();
    rc.pc += 1;
    return r;
}

void
RefMachine::leaveGroup(Group &g)
{
    ++g.left;
    if (g.left == static_cast<int>(g.chain.size())) {
        // Fully disbanded: allow re-formation at the next kernel.
        g.joined = 0;
        g.left = 0;
        for (CoreId m : g.chain)
            core(m).joinCounted = false;
    }
}

// --- DRIVEN mode ---------------------------------------------------------------

void
RefMachine::step(CoreId c, Cycle now, const CommitRecord &rec)
{
    RefCore &rc = core(c);
    Instruction inst;
    int ref_pc = -1;

    auto consume_event = [&](bool &handled_devec) -> bool {
        Group &g = groups_[static_cast<size_t>(rc.group)];
        if (rc.eventIdx >= g.events.size())
            diverge(c, now, -1, rec.inst,
                    "vector-mode commit with no pending vissue/devec "
                    "event from the scalar core");
        Group::Event ev = g.events[rc.eventIdx++];
        if (ev.isDevec) {
            Instruction devec;
            devec.op = Opcode::DEVEC;
            devec.imm = ev.pc;
            if (!(devec == rec.inst))
                diverge(c, now, -1, rec.inst,
                        "expected the group's devec, got " +
                            disassemble(rec.inst));
            CommitRecord exp = apply(c, devec, -1, &rec, now);
            compareRecords(c, now, -1, exp, rec);
            handled_devec = true;
            return true;
        }
        rc.inMt = true;
        rc.pc = ev.pc;
        return false;
    };

    switch (rc.role) {
      case Role::Independent:
      case Role::Scalar:
        inst = rc.program->at(rc.pc);
        ref_pc = rc.pc;
        break;

      case Role::Expander: {
        if (!rc.inMt) {
            bool done = false;
            if (consume_event(done), done)
                return;
        }
        inst = rc.program->at(rc.pc);
        ref_pc = rc.pc;
        break;
      }

      case Role::Vector: {
        // Replay the expander's stream: branches and vends are never
        // forwarded, so resolve them silently with this core's own
        // registers (the uniform-control-flow contract, DESIGN.md 5e).
        std::uint64_t budget = opts_.maxSilentSteps;
        for (;;) {
            if (!rc.inMt) {
                bool done = false;
                if (consume_event(done), done)
                    return;
                continue;
            }
            inst = rc.program->at(rc.pc);
            if (isBranch(inst.op)) {
                resolveSilentBranch(rc, inst);
            } else if (inst.op == Opcode::VEND) {
                rc.inMt = false;
            } else {
                break;
            }
            if (budget-- == 0)
                diverge(c, now, rc.pc, inst,
                        "silent replay budget exhausted (runaway "
                        "microthread loop?)");
        }
        ref_pc = -1;
        break;
      }
    }

    if (!(inst == rec.inst)) {
        diverge(c, now, ref_pc, rec.inst,
                "instruction mismatch\n  expected: " + disassemble(inst) +
                    "\n  actual:   " + disassemble(rec.inst));
    }
    CommitRecord exp = apply(c, inst, ref_pc, &rec, now);
    compareRecords(c, now, ref_pc, exp, rec);
}

void
RefMachine::resolveSilentBranch(RefCore &rc, const Instruction &inst)
{
    auto si = [&](RegIdx reg) {
        return static_cast<std::int32_t>(rc.regs[reg]);
    };
    bool taken = false;
    switch (inst.op) {
      case Opcode::BEQ: taken = si(inst.rs1) == si(inst.rs2); break;
      case Opcode::BNE: taken = si(inst.rs1) != si(inst.rs2); break;
      case Opcode::BLT: taken = si(inst.rs1) < si(inst.rs2); break;
      case Opcode::BGE: taken = si(inst.rs1) >= si(inst.rs2); break;
      case Opcode::BLTU: taken = rc.regs[inst.rs1] < rc.regs[inst.rs2];
                         break;
      case Opcode::BGEU: taken = rc.regs[inst.rs1] >= rc.regs[inst.rs2];
                         break;
      // Jumps: the link register is NOT written (the expander keeps
      // it; trailing cores never see the instruction).
      case Opcode::JAL: rc.pc = inst.imm; return;
      case Opcode::JALR:
        rc.pc = static_cast<int>(rc.regs[inst.rs1] +
                                 static_cast<Word>(inst.imm));
        return;
      default:
        fatal("ref: resolveSilentBranch on non-branch");
    }
    rc.pc = taken ? inst.imm : rc.pc + 1;
}

std::string
RefMachine::finish(const MainMemory &timing_mem) const
{
    std::ostringstream os;
    for (size_t c = 0; c < cores_.size(); ++c) {
        const RefCore &rc = cores_[c];
        if (rc.halted)
            continue;  // BATCH mode marks halts explicitly.
        if (rc.role != Role::Independent) {
            os << "core " << c << ": walker still in vector mode (pc "
               << rc.pc << ")\n";
            continue;
        }
        const Instruction &inst = rc.program->at(rc.pc);
        if (inst.op != Opcode::HALT) {
            os << "core " << c << ": walker rests at pc " << rc.pc
               << " (" << disassemble(inst) << "), not a halt\n";
        }
    }

    Addr bytes = std::min(mem_.capacity(), timing_mem.capacity());
    std::uint64_t bad = 0;
    for (Addr off = 0; off < bytes; off += wordBytes) {
        Addr a = AddrMap::globalBase + off;
        Word want = mem_.readWord(a);
        Word got = timing_mem.readWord(a);
        if (want != got) {
            if (bad < 8) {
                os << "memory mismatch at " << a << ": expected " << want
                   << ", actual " << got << "\n";
            }
            ++bad;
        }
    }
    if (bad >= 8)
        os << "(" << bad << " mismatching words total)\n";
    return os.str();
}

// --- BATCH mode ----------------------------------------------------------------

bool
RefMachine::stepBatchOne(CoreId c,
                         std::vector<std::vector<CommitRecord>> &streams)
{
    RefCore &rc = core(c);
    rc.blocked.clear();
    Instruction inst;
    int ref_pc = -1;

    auto consume_event = [&](bool &emitted) -> bool {
        Group &g = groups_[static_cast<size_t>(rc.group)];
        if (rc.eventIdx >= g.events.size()) {
            rc.blocked = "awaiting vissue/devec";
            return false;
        }
        Group::Event ev = g.events[rc.eventIdx++];
        if (ev.isDevec) {
            Instruction devec;
            devec.op = Opcode::DEVEC;
            devec.imm = ev.pc;
            streams[static_cast<size_t>(c)].push_back(
                apply(c, devec, -1, nullptr, 0));
            emitted = true;
            return true;
        }
        rc.inMt = true;
        rc.pc = ev.pc;
        return true;
    };

    switch (rc.role) {
      case Role::Independent:
      case Role::Scalar:
        inst = rc.program->at(rc.pc);
        ref_pc = rc.pc;
        break;

      case Role::Expander: {
        if (!rc.inMt) {
            bool emitted = false;
            if (!consume_event(emitted))
                return false;
            if (emitted || !rc.inMt)
                return true;
        }
        inst = rc.program->at(rc.pc);
        ref_pc = rc.pc;
        break;
      }

      case Role::Vector: {
        std::uint64_t budget = opts_.maxSilentSteps;
        for (;;) {
            if (!rc.inMt) {
                bool emitted = false;
                if (!consume_event(emitted))
                    return false;
                if (emitted)
                    return true;
                continue;
            }
            inst = rc.program->at(rc.pc);
            if (isBranch(inst.op)) {
                resolveSilentBranch(rc, inst);
            } else if (inst.op == Opcode::VEND) {
                rc.inMt = false;
            } else {
                break;
            }
            if (budget-- == 0)
                fatal("ref core ", c, ": silent replay budget "
                      "exhausted (runaway microthread loop?)");
        }
        ref_pc = -1;
        break;
      }
    }

    // Blocking semantics (squashed instructions never block).
    if (rc.pred) {
        switch (inst.op) {
          case Opcode::HALT:
            rc.halted = true;
            return true;
          case Opcode::BARRIER:
            rc.barrierWaiting = true;
            rc.blocked = "barrier";
            return false;
          case Opcode::CSRW:
            if (static_cast<Csr>(inst.sub) == Csr::Vconfig &&
                rc.regs[inst.rs1] != 0) {
                if (rc.group < 0)
                    fatal("ref core ", c,
                          ": vconfig write without a group plan");
                Group &g = groups_[static_cast<size_t>(rc.group)];
                if (!rc.joinCounted) {
                    rc.joinCounted = true;
                    ++g.joined;
                }
                if (g.joined < static_cast<int>(g.chain.size())) {
                    rc.blocked = "vconfig join";
                    return false;
                }
            }
            break;
          case Opcode::FRAME_START:
            if (!rc.frames.configured())
                fatal("ref core ", c,
                      ": frame_start with frames unconfigured");
            if (!rc.frames.ready()) {
                rc.blocked = "frame_start (head frame not full)";
                return false;
            }
            break;
          case Opcode::VLOAD: {
            // DAE pacing: block while any destination frame slot is
            // still full from an earlier, not-yet-freed iteration.
            Addr spad_off = rc.regs[inst.rs2];
            Addr last = spad_off +
                        static_cast<Addr>(inst.imm2 > 0 ? inst.imm2 - 1
                                                        : 0) *
                            wordBytes;
            std::vector<CoreId> dests;
            auto variant = static_cast<VloadVariant>(inst.sub);
            if (variant == VloadVariant::Self) {
                dests.push_back(c);
            } else {
                if (rc.group < 0)
                    fatal("ref core ", c,
                          ": group vload outside a vector group");
                const Group &g = groups_[static_cast<size_t>(rc.group)];
                int first = inst.imm;
                int count =
                    variant == VloadVariant::Single
                        ? 1
                        : static_cast<int>(g.chain.size()) - 1 - first;
                for (int i = 0; i < count; ++i)
                    dests.push_back(
                        g.chain.at(static_cast<size_t>(first + i) + 1));
            }
            for (CoreId dst : dests) {
                const Frames &fr = core(dst).frames;
                if (!frameWindowOk(fr, spad_off) ||
                    !frameWindowOk(fr, last)) {
                    rc.blocked = "vload (destination frame window)";
                    return false;
                }
            }
            break;
          }
          default:
            break;
        }
    } else if (inst.op == Opcode::HALT) {
        // A squashed halt still flows through as a nop (the timing
        // model would deadlock afterwards; the verifier bans it).
        streams[static_cast<size_t>(c)].push_back(
            apply(c, inst, ref_pc, nullptr, 0));
        return true;
    }

    streams[static_cast<size_t>(c)].push_back(
        apply(c, inst, ref_pc, nullptr, 0));
    return true;
}

RefMachine::BatchResult
RefMachine::runBatch(std::uint64_t max_steps)
{
    BatchResult res;
    res.streams.assign(cores_.size(), {});
    std::uint64_t steps = 0;

    for (;;) {
        bool any_alive = false;
        bool progress = false;
        for (CoreId c = 0; c < static_cast<CoreId>(cores_.size()); ++c) {
            if (core(c).halted)
                continue;
            any_alive = true;
            if (stepBatchOne(c, res.streams))
                progress = true;
            if (++steps > max_steps) {
                res.error = "reference run exceeded the step budget";
                return res;
            }
        }
        if (!any_alive) {
            res.ok = true;
            return res;
        }

        // Barrier release: every live core waiting (functional model
        // has no in-flight memory, so release is immediate).
        int alive = 0;
        int waiting = 0;
        for (const RefCore &rc : cores_) {
            if (!rc.halted) {
                ++alive;
                if (rc.barrierWaiting)
                    ++waiting;
            }
        }
        if (alive > 0 && waiting == alive) {
            for (CoreId c = 0; c < static_cast<CoreId>(cores_.size());
                 ++c) {
                RefCore &rc = core(c);
                if (rc.halted)
                    continue;
                rc.barrierWaiting = false;
                rc.blocked.clear();
                res.streams[static_cast<size_t>(c)].push_back(
                    apply(c, rc.program->at(rc.pc), rc.pc, nullptr, 0));
            }
            progress = true;
        }

        if (!progress) {
            std::ostringstream os;
            os << "reference deadlock after " << steps << " steps:\n";
            for (size_t c = 0; c < cores_.size(); ++c) {
                const RefCore &rc = cores_[c];
                if (rc.halted)
                    continue;
                static const char *role_names[] = {"independent",
                                                   "scalar", "expander",
                                                   "vector"};
                os << "  core " << c << ": role="
                   << role_names[static_cast<int>(rc.role)] << " pc="
                   << rc.pc << " blocked="
                   << (rc.blocked.empty() ? "(no)" : rc.blocked) << "\n";
            }
            res.error = os.str();
            return res;
        }
    }
}

} // namespace rockcress
