/**
 * @file
 * ref_fuzz: differential fuzzing driver. Generates seeded random
 * vector-group programs and cross-checks the cycle-level machine
 * against the functional reference (commit streams + final memory).
 *
 *   ref_fuzz [--seeds N] [--base B]
 *            [--race | --equiv | --tick-diff | --checkpoint]
 *            [--verbose]
 *
 * With --race, runs the race-differential campaign instead: mutated
 * and clean programs where the static race verdict must match the
 * frame sanitizer's dynamic verdict on every seed.
 *
 * With --equiv, runs the translation-validation campaign: half the
 * seeds get a seeded miscompile injected after the vectorization
 * manifest is captured, and the static equivalence verdict must match
 * the batch reference's dynamic verdict on every seed.
 *
 * With --tick-diff, runs each seed on three implementations — the
 * fast-tick machine, the naive tick-everything machine, and the batch
 * functional reference — and requires exact agreement on cycles,
 * commit streams, every statistics counter, and final memory.
 *
 * With --checkpoint, runs each seed straight and chunked through
 * seeded mid-run snapshot/restore hops (alternating tick kernels, one
 * cosim checker carried across) and requires exact agreement on the
 * verdicts, cycles, commit streams, stats, and final memory.
 *
 * Exits nonzero on the first summary with failures.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ref/fuzz.hh"

namespace
{

enum class Mode { Cosim, Race, Equiv, TickDiff, Checkpoint };

} // namespace

int
main(int argc, char **argv)
{
    rockcress::FuzzOptions opts;
    Mode mode = Mode::Cosim;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
            opts.seeds = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
            opts.baseSeed =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (!std::strcmp(argv[i], "--race")) {
            mode = Mode::Race;
        } else if (!std::strcmp(argv[i], "--equiv")) {
            mode = Mode::Equiv;
        } else if (!std::strcmp(argv[i], "--tick-diff")) {
            mode = Mode::TickDiff;
        } else if (!std::strcmp(argv[i], "--checkpoint")) {
            mode = Mode::Checkpoint;
        } else if (!std::strcmp(argv[i], "--verbose")) {
            opts.verbose = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--seeds N] [--base B] "
                "[--race | --equiv | --tick-diff | --checkpoint] "
                "[--verbose]\n",
                argv[0]);
            return 2;
        }
    }

    auto runCase = [mode](std::uint64_t seed, bool verbose) {
        switch (mode) {
          case Mode::Race:
            return rockcress::runRaceFuzzCase(seed, verbose);
          case Mode::Equiv:
            return rockcress::runEquivFuzzCase(seed, verbose);
          case Mode::TickDiff:
            return rockcress::runTickDiffCase(seed, verbose);
          case Mode::Checkpoint:
            return rockcress::runCheckpointFuzzCase(seed, verbose);
          case Mode::Cosim:
            break;
        }
        return rockcress::runFuzzCase(seed, verbose);
    };

    if (opts.verbose) {
        for (int i = 0; i < opts.seeds; ++i) {
            std::uint64_t seed =
                opts.baseSeed + static_cast<std::uint64_t>(i);
            rockcress::FuzzCaseResult r = runCase(seed, true);
            std::printf("seed %llu: %s [%s]\n",
                        static_cast<unsigned long long>(seed),
                        r.ok ? "ok" : "FAIL", r.shape.c_str());
            if (!r.ok)
                std::printf("%s\n", r.error.c_str());
            if (!r.ok)
                return 1;
        }
        std::printf("ref_fuzz: %d seeds passed\n", opts.seeds);
        return 0;
    }

    rockcress::FuzzSummary sum;
    switch (mode) {
      case Mode::Race:
        sum = rockcress::runRaceFuzz(opts);
        break;
      case Mode::Equiv:
        sum = rockcress::runEquivFuzz(opts);
        break;
      case Mode::TickDiff:
        sum = rockcress::runTickDiffFuzz(opts);
        break;
      case Mode::Checkpoint:
        sum = rockcress::runCheckpointFuzz(opts);
        break;
      case Mode::Cosim:
        sum = rockcress::runFuzz(opts);
        break;
    }
    std::printf("ref_fuzz: %d passed, %d failed; geometries:",
                sum.passed, sum.failed);
    for (const auto &g : sum.geometries)
        std::printf(" %s", g.c_str());
    std::printf("\n");
    for (const auto &f : sum.failures)
        std::printf("FAIL %s\n", f.c_str());
    return sum.ok() ? 0 : 1;
}
