#include "ref/fuzz.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include <set>

#include "analysis/verifier.hh"
#include "compiler/codegen.hh"
#include "machine/machine.hh"
#include "ref/cosim.hh"
#include "sim/checkpoint.hh"
#include "sim/rng.hh"

namespace rockcress
{

namespace
{

struct Geometry
{
    int cols;
    int rows;
    int gs;
};

/** Four vector-group geometries: two group sizes on two meshes. */
const Geometry kGeometries[] = {
    {4, 2, 3},
    {4, 4, 3},
    {4, 2, 7},
    {4, 4, 7},
};

std::string
geometryName(const Geometry &g)
{
    return std::to_string(g.cols) + "x" + std::to_string(g.rows) +
           "/g" + std::to_string(g.gs);
}

Addr
roundUp(Addr v, Addr align)
{
    return (v + align - 1) / align * align;
}

std::string
describeRecord(const CommitRecord &r)
{
    std::ostringstream os;
    os << disassemble(r.inst) << " pc=" << r.pc;
    if (r.wrote) {
        os << " rd=" << static_cast<int>(r.rd) << " value=[";
        for (size_t i = 0; i < r.value.size(); ++i)
            os << (i ? "," : "") << r.value[i];
        os << "]";
    }
    if (r.mem) {
        os << (r.isStore ? " store" : " load") << " addr=" << r.addr;
        if (!r.data.empty()) {
            os << " data=[";
            for (size_t i = 0; i < r.data.size(); ++i)
                os << (i ? "," : "") << r.data[i];
            os << "]";
        }
    }
    if (!r.aux.empty()) {
        os << " aux=[";
        for (size_t i = 0; i < r.aux.size(); ++i)
            os << (i ? "," : "") << r.aux[i];
        os << "]";
    }
    return os.str();
}

bool
recordsEqual(const CommitRecord &a, const CommitRecord &b)
{
    return a.inst == b.inst && a.pc == b.pc && a.wrote == b.wrote &&
           a.rd == b.rd && a.value == b.value && a.mem == b.mem &&
           a.isStore == b.isStore && a.addr == b.addr &&
           a.data == b.data && a.aux == b.aux;
}

/** Everything one generated case needs to build and check itself. */
struct CaseSpec
{
    Geometry geo;
    int tpg = 0;
    int groups = 0;
    bool simd = false;
    int F = 0;          ///< Frame size, words.
    int numFrames = 8;
    int w = 0;          ///< Words per core per vload.
    int iters = 0;
    int nLoads = 0;     ///< Frame words loaded into f1..f(nLoads).
    int nFsw = 0;       ///< Scalar stores per iteration.
    bool simdStore = false;
    bool predRegion = false;
    bool mimdEpilogue = false;
    int nOps = 0;       ///< Random ALU ops in the body.
    int S = 0;          ///< Words stored per worker per iteration.
    /**
     * Equivalence-mode body shaping: load frame word 0 into a probe
     * register the random ALU tail never touches and store it raw as
     * the first output word, so any change to what lands in the frame
     * (a dropped lane, a skewed stream pointer, a different trip
     * count) is always architecturally visible to the batch oracle.
     */
    bool equivShape = false;
    /** Additionally commit one predicated store of the probe —
     * exactly one pred_neq/pred_eq pair, the PredPolarity target. */
    bool predStore = false;

    Addr in = 0;
    Addr out = 0;
    Addr sig = 0;
    std::uint64_t seed = 0;

    std::string
    describe() const
    {
        std::ostringstream os;
        os << geometryName(geo) << " F=" << F << " w=" << w
           << " iters=" << iters << " S=" << S
           << (simd ? " simd" : "") << (predRegion ? " pred" : "")
           << (mimdEpilogue ? " mimd" : "");
        return os.str();
    }
};

/**
 * (Re)place the input/output/signature heap regions. The layout
 * depends on iters and S, so callers that reshape a drawn case
 * (equivalence-mode shaping) must call this again afterwards.
 */
void
placeHeap(CaseSpec &c)
{
    c.in = AddrMap::globalBase;
    Addr inBytes = static_cast<Addr>(c.iters) * c.F * c.geo.gs * 4;
    c.out = c.in + roundUp(inBytes, 64);
    int workers = c.groups * c.geo.gs;
    Addr outBytes = static_cast<Addr>(workers) * c.iters * c.S * 4;
    c.sig = c.out + roundUp(outBytes, 64);
}

CaseSpec
drawCase(Rng &rng, std::uint64_t seed)
{
    CaseSpec c;
    c.seed = seed;
    c.geo = kGeometries[rng.below(4)];
    c.tpg = c.geo.gs + 1;
    c.groups = c.geo.cols * c.geo.rows / c.tpg;
    c.simd = rng.below(2) == 0;

    const int fChoices[] = {4, 8, 16};
    c.F = fChoices[rng.below(3)];

    // Response width: w | F and w * groupSize within one cache line.
    const int lineWords = 16;
    std::vector<int> ws;
    for (int w = 1; w <= c.F; ++w)
        if (c.F % w == 0 && w * c.geo.gs <= lineWords)
            ws.push_back(w);
    c.w = ws[rng.below(ws.size())];

    c.iters = 2 + static_cast<int>(rng.below(4));
    c.nLoads = 2 + static_cast<int>(rng.below(3));
    c.nFsw = 1 + static_cast<int>(rng.below(3));
    c.simdStore = c.simd && rng.below(2) == 0;
    c.predRegion = rng.below(2) == 0;
    c.mimdEpilogue = rng.below(2) == 0;
    c.nOps = 3 + static_cast<int>(rng.below(6));
    c.S = c.nFsw + (c.simdStore ? 4 : 0);

    placeHeap(c);
    return c;
}

/** Emit a random, defined-before-use ALU tail into the body mt. */
void
emitRandomOps(Assembler &as, Rng &rng, const CaseSpec &c)
{
    // Integer pool x10..x12 seeded from loaded data so every source
    // is defined; fp pool is f1..f(nLoads).
    as.fmvXW(x(10), f(1));
    as.fmvXW(x(11), f(2));
    as.li(x(12), static_cast<std::int32_t>(rng.below(4096)));

    auto fsrc = [&] { return f(1 + static_cast<int>(rng.below(c.nLoads))); };
    auto isrc = [&] { return x(10 + static_cast<int>(rng.below(3))); };

    int predOpen = -1;
    if (c.predRegion)
        predOpen = static_cast<int>(rng.below(c.nOps));

    for (int i = 0; i < c.nOps; ++i) {
        if (i == predOpen)
            as.predNeq(x(10), x(0));
        switch (rng.below(8)) {
          case 0: as.fadd(fsrc(), fsrc(), fsrc()); break;
          case 1: as.fsub(fsrc(), fsrc(), fsrc()); break;
          case 2: as.fmul(fsrc(), fsrc(), fsrc()); break;
          case 3: as.fmadd(fsrc(), fsrc(), fsrc(), fsrc()); break;
          case 4: as.add(isrc(), isrc(), isrc()); break;
          case 5: as.xor_(isrc(), isrc(), isrc()); break;
          case 6: as.mul(isrc(), isrc(), isrc()); break;
          default:
            as.srli(isrc(), isrc(),
                    static_cast<std::int32_t>(1 + rng.below(8)));
            break;
        }
    }
    if (c.predRegion)
        as.predEq(x(0), x(0));
}

/**
 * Race-mode program shaping: schedule knobs that squeeze the fill
 * window (shallow run-ahead issues the consumer early; a 5-frame ring
 * keeps the rotator wrapping hot) plus the balanced mutation — one
 * fill slice emitted twice at the same offset register while another
 * is dropped, so per-frame arrival totals still equal the frame size
 * and the program completes; only the duplicated words land on a
 * still-filling shadow state.
 */
struct RaceMut
{
    bool racy = false;
    int dupSlice = 0;
    int dropSlice = 0;
    int ahead = 4;
};

std::shared_ptr<const Program>
buildProgram(const CaseSpec &c, Rng &rng, const BenchConfig &cfg,
             const MachineParams &params, const RaceMut *mut = nullptr,
             const MiscompileSpec *sab = nullptr)
{
    SpmdBuilder b("fuzz_" + std::to_string(c.seed), cfg, params);
    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();

    int gs = c.geo.gs;
    int tpg = c.tpg;
    int itersBytes = c.iters * c.S * 4;
    Addr out = c.out;
    bool simd = c.simd;
    bool predStore = c.predStore;

    b.defineMicrothread(init, [=](Assembler &as) {
        as.csrr(x(5), Csr::GroupTid);
        as.csrr(x(6), Csr::CoreId);
        as.li(x(7), tpg);
        as.div(x(6), x(6), x(7));          // group id
        as.li(x(7), gs);
        as.mul(x(6), x(6), x(7));
        as.add(x(5), x(5), x(6));          // worker id
        as.li(x(7), itersBytes);
        as.mul(x(7), x(5), x(7));
        as.la(x(9), out);
        as.add(x(9), x(9), x(7));          // per-worker output cursor
        as.li(x(11), 0);
        as.fmvWX(f(0), x(11));
        if (simd)
            as.simdBcast(v(2), f(0));
        if (predStore)
            as.li(x(15), 1);  // The probe predicate, always taken.
    });

    // The Rng is consumed inside the deferred body lambda exactly
    // once (defineMicrothread emits at finish()), keeping the draw
    // order deterministic per seed.
    auto *prng = &rng;
    CaseSpec cc = c;
    b.defineMicrothread(body, [=](Assembler &as) {
        Rng &r = *prng;
        as.frameStart(x(13));
        if (cc.equivShape)
            as.flw(f(cc.nLoads + 1), x(13), 0);  // The probe word.
        for (int i = 0; i < cc.nLoads; ++i)
            as.flw(f(1 + i), x(13),
                   static_cast<std::int32_t>(r.below(cc.F)) * 4);
        emitRandomOps(as, r, cc);
        if (cc.simd) {
            int off = static_cast<int>(r.below(cc.F - 3));
            as.simdLw(v(1), x(13), off * 4);
            as.simdFma(v(2), v(1), v(1), v(2));
        }
        int slot = 0;
        if (cc.equivShape)
            as.fsw(f(cc.nLoads + 1), x(9), (slot++) * 4);
        for (int i = 0; i < cc.nFsw; ++i)
            as.fsw(f(1 + static_cast<int>(r.below(cc.nLoads))),
                   x(9), (slot++) * 4);
        if (cc.simdStore) {
            as.simdSw(v(2), x(9), slot * 4);
            slot += 4;
        }
        if (cc.predStore) {
            // x15 is set once in init and never touched by the random
            // ALU tail (pool x10..x12), so the symbolic pred cannot
            // constant-fold: a flipped polarity always compares as a
            // predication difference, never as a squashed store.
            as.predNeq(x(15), x(0));
            as.fsw(f(cc.nLoads + 1), x(9), slot * 4);
            as.predEq(x(0), x(0));
            ++slot;
        }
        as.addi(x(9), x(9), cc.S * 4);
        as.remem();
    });

    int F = c.F;
    int w = c.w;
    Addr in = c.in;
    int iters = c.iters;
    RaceMut m = mut ? *mut : RaceMut{};
    b.vectorPhase(F, c.numFrames, [=](Assembler &as) {
        as.vissue(init);
        as.la(x(5), in);
        DaeStreamRegs regs;
        int regionBytes = F * 4 * cc.numFrames;
        bool pow2 = (regionBytes & (regionBytes - 1)) == 0;
        FrameRotator rot(as, regs.off, F * 4, cc.numFrames,
                         pow2 ? regZero : x(20));
        rot.emitInit();
        DaeStreamSpec spec;
        spec.iters = iters;
        spec.frameBytes = F * 4;
        spec.numFrames = cc.numFrames;
        spec.ahead = mut ? m.ahead : spec.ahead;
        spec.bodyMt = body;
        int vps = F / w;
        spec.fill = [=](Assembler &a, RegIdx off) {
            for (int si = 0; si < vps; ++si) {
                if (m.racy && si == m.dropSlice)
                    continue;
                RegIdx areg = x(5);
                RegIdx oreg = off;
                if (si > 0) {
                    a.addi(x(13), x(5), si * w * gs * 4);
                    areg = x(13);
                    a.addi(x(14), off, si * w * 4);
                    oreg = x(14);
                }
                a.vload(areg, oreg, 0, w, VloadVariant::Group);
                if (m.racy && si == m.dupSlice)
                    a.vload(areg, oreg, 0, w, VloadVariant::Group);
            }
            a.addi(x(5), x(5), F * gs * 4);
        };
        emitScalarStream(as, spec, rot, regs);
    });

    if (c.mimdEpilogue) {
        Addr sig = c.sig;
        std::int32_t salt =
            static_cast<std::int32_t>(c.seed & 0xffff) + 17;
        b.mimdPhase([=](Assembler &as) {
            as.la(x(5), sig);
            as.slli(x(6), rCoreId, 2);
            as.add(x(5), x(5), x(6));
            as.li(x(7), salt);
            as.add(x(7), x(7), rCoreId);
            as.sw(x(7), x(5), 0);
        });
    }
    if (sab)
        b.setSabotage(*sab);
    return std::make_shared<const Program>(b.finish());
}

} // namespace

FuzzCaseResult
runFuzzCase(std::uint64_t seed, bool verbose)
{
    FuzzCaseResult res;
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
    CaseSpec c = drawCase(rng, seed);
    res.shape = c.describe();

    BenchConfig cfg;
    cfg.name = "FUZZ";
    cfg.groupSize = c.geo.gs;
    cfg.simdWords = c.simd ? 4 : 1;
    cfg.wideAccess = true;
    cfg.dae = true;

    MachineParams params = machineFor(cfg, c.geo.cols, c.geo.rows);
    params.heapBytes = 1u << 20;   // Keep memory compares cheap.

    try {
        Machine machine(params);

        // Input stream: nonzero random floats.
        Addr inWords =
            static_cast<Addr>(c.iters) * c.F * c.geo.gs;
        for (Addr i = 0; i < inWords; ++i) {
            float f = 0.25f +
                      0.75f * static_cast<float>(rng.uniform());
            machine.mem().writeWord(c.in + i * 4, floatToWord(f));
        }

        auto prog = buildProgram(c, rng, cfg, params);
        machine.loadAll(prog);
        for (int g = 0; g < c.groups; ++g) {
            GroupPlan plan;
            for (int i = 0; i < c.tpg; ++i)
                plan.chain.push_back(g * c.tpg + i);
            machine.planGroup(plan);
        }

        // The static verifier is the well-formedness oracle: any
        // finding on a generated program is a fuzzer bug.
        VerifyReport rep = verifyProgram(*prog, cfg, params);
        if (!rep.ok()) {
            res.error = "verifier rejected generated program:\n" +
                        rep.text(*prog);
            return res;
        }

        // Snapshot both checkers BEFORE the run mutates memory.
        RefMachine batch(machine);
        CosimChecker checker(machine);
        checker.recordStreams(machine.numCores());
        machine.attachCosim(&checker);

        machine.run(20'000'000);
        machine.drainCosim();
        std::string div = checker.finish(machine.mem());
        if (!div.empty()) {
            res.error = "cosim: " + div;
            return res;
        }

        auto br = batch.runBatch();
        if (!br.ok) {
            res.error = "batch reference failed: " + br.error;
            return res;
        }

        // Cross-check per-core commit streams, timing vs batch.
        const auto &ts = checker.streams();
        for (size_t core = 0; core < ts.size(); ++core) {
            const auto &a = ts[core];
            const auto &b = br.streams[core];
            size_t n = std::min(a.size(), b.size());
            for (size_t i = 0; i < n; ++i) {
                if (recordsEqual(a[i], b[i]))
                    continue;
                std::ostringstream os;
                os << "stream mismatch core " << core << " record "
                   << i << ":\n  timing: " << describeRecord(a[i])
                   << "\n  batch:  " << describeRecord(b[i]);
                res.error = os.str();
                return res;
            }
            if (a.size() != b.size()) {
                std::ostringstream os;
                os << "stream length mismatch core " << core
                   << ": timing " << a.size() << " vs batch "
                   << b.size();
                res.error = os.str();
                return res;
            }
        }

        std::string md = batch.finish(machine.mem());
        if (!md.empty()) {
            res.error = "batch memory mismatch: " + md;
            return res;
        }
        res.ok = true;
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    (void)verbose;
    return res;
}

FuzzCaseResult
runRaceFuzzCase(std::uint64_t seed, bool verbose)
{
    FuzzCaseResult res;
    // A distinct stream constant keeps race-mode draws independent of
    // the co-simulation campaign at the same seed.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xace5ULL);
    CaseSpec c = drawCase(rng, seed);

    // Race-prone schedule: tight or standard frame ring, shallow to
    // full run-ahead (shallow issues the consumer early, maximizing
    // fill/consume overlap for the sanitizer's clean leg).
    c.numFrames = rng.below(2) == 0 ? 5 : 8;
    RaceMut mut;
    mut.ahead = 1 + static_cast<int>(rng.below(4));
    mut.racy = rng.below(2) == 0;
    if (mut.racy) {
        if (c.w == c.F)
            c.w = c.F / 2;  // Need >= 2 slices: duplicate one, drop one.
        int vps = c.F / c.w;
        mut.dupSlice = static_cast<int>(rng.below(vps));
        mut.dropSlice = (mut.dupSlice + 1 +
                         static_cast<int>(rng.below(vps - 1))) % vps;
    }
    res.shape = c.describe() + " nf=" + std::to_string(c.numFrames) +
                " ahead=" + std::to_string(mut.ahead) +
                (mut.racy ? " RACY" : " clean");

    BenchConfig cfg;
    cfg.name = "FUZZ";
    cfg.groupSize = c.geo.gs;
    cfg.simdWords = c.simd ? 4 : 1;
    cfg.wideAccess = true;
    cfg.dae = true;

    MachineParams params = machineFor(cfg, c.geo.cols, c.geo.rows);
    params.heapBytes = 1u << 20;

    try {
        Machine machine(params);
        Addr inWords = static_cast<Addr>(c.iters) * c.F * c.geo.gs;
        for (Addr i = 0; i < inWords; ++i) {
            float f =
                0.25f + 0.75f * static_cast<float>(rng.uniform());
            machine.mem().writeWord(c.in + i * 4, floatToWord(f));
        }

        auto prog = buildProgram(c, rng, cfg, params, &mut);
        machine.loadAll(prog);
        for (int g = 0; g < c.groups; ++g) {
            GroupPlan plan;
            for (int i = 0; i < c.tpg; ++i)
                plan.chain.push_back(g * c.tpg + i);
            machine.planGroup(plan);
        }

        // Static leg. The mutation must never trip any other pass —
        // a non-race finding means the generator (not the program)
        // is broken.
        VerifyReport rep = verifyProgram(*prog, cfg, params);
        for (const Diagnostic &d : rep.diagnostics) {
            if (d.check != Check::Race) {
                res.error = "non-race finding on generated program:\n" +
                            rep.text(*prog);
                return res;
            }
        }
        bool staticRace = rep.has(Check::Race);
        if (staticRace) {
            if (rep.races.empty()) {
                res.error = "race diagnostic without a structured "
                            "race finding";
                return res;
            }
            const RaceFinding &f = rep.races.front();
            if (f.producerPath.empty() || f.consumerPath.empty() ||
                f.producerPc < 0 || f.consumerPc < 0 ||
                f.byteLo >= f.byteHi) {
                res.error =
                    "race finding lacks a two-sided witness: " +
                    f.message;
                return res;
            }
        }

        // Dynamic leg: sanitizer on, verifier verdict ignored — the
        // machine is the ground truth.
        for (CoreId core = 0; core < machine.numCores(); ++core)
            machine.spadOf(core).enableSanitizer();
        machine.run(20'000'000);
        std::uint64_t violations = 0;
        std::string firstRec;
        for (CoreId core = 0; core < machine.numCores(); ++core) {
            const Scratchpad &sp = machine.spadOf(core);
            violations += sp.sanViolationCount();
            if (firstRec.empty() && !sp.sanRecords().empty())
                firstRec = sp.sanRecords().front().str();
        }

        // The differential: the two layers must agree, and mutated
        // programs must be caught by both.
        bool dynRace = violations > 0;
        if (staticRace != dynRace || staticRace != mut.racy) {
            std::ostringstream os;
            os << "race differential mismatch: mutated=" << mut.racy
               << " static=" << staticRace << " sanitizer="
               << violations << " violation(s)";
            if (staticRace)
                os << "\n  static: " << rep.races.front().message;
            if (!firstRec.empty())
                os << "\n  dynamic: " << firstRec;
            res.error = os.str();
            return res;
        }
        res.ok = true;
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    (void)verbose;
    return res;
}

FuzzSummary
runRaceFuzz(const FuzzOptions &opts)
{
    FuzzSummary sum;
    std::vector<std::string> geoms;
    for (int i = 0; i < opts.seeds; ++i) {
        std::uint64_t seed =
            opts.baseSeed + static_cast<std::uint64_t>(i);
        FuzzCaseResult r = runRaceFuzzCase(seed, opts.verbose);
        std::string geo = r.shape.substr(0, r.shape.find(' '));
        if (std::find(geoms.begin(), geoms.end(), geo) == geoms.end())
            geoms.push_back(geo);
        if (r.ok) {
            ++sum.passed;
        } else {
            ++sum.failed;
            sum.failures.push_back("seed " + std::to_string(seed) +
                                   " (" + r.shape + "): " + r.error);
        }
    }
    std::sort(geoms.begin(), geoms.end());
    sum.geometries = geoms;
    return sum;
}

FuzzCaseResult
runEquivFuzzCase(std::uint64_t seed, bool verbose)
{
    FuzzCaseResult res;
    // A third stream constant keeps equivalence-mode draws
    // independent of the cosim (0x5eed) and race (0xace5) campaigns
    // at the same seed.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xe9f1ULL);
    CaseSpec c = drawCase(rng, seed);
    c.equivShape = true;
    c.mimdEpilogue = false;

    // Half the seeds are armed with one of the four seeded
    // miscompiles. Sabotage lands AFTER the manifest snapshot
    // (SpmdBuilder::finish), so the manifest keeps the intended code
    // and the validator must notice the divergence.
    MiscompileSpec sab;
    bool mutated = rng.below(2) == 0;
    const char *expectKind = "";
    const char *mutName = "";
    if (mutated) {
        switch (rng.below(4)) {
          case 0:
            sab.kind = MiscompileSpec::Kind::DropLane;
            expectKind = "lane-map";
            mutName = " MUT:drop-lane";
            break;
          case 1:
            sab.kind = MiscompileSpec::Kind::WrongStride;
            sab.delta = rng.below(2) == 0 ? 1 : -1;
            expectKind = "stride";
            mutName = " MUT:stride";
            break;
          case 2:
            sab.kind = MiscompileSpec::Kind::TripCount;
            expectKind = "trip-count";
            mutName = " MUT:trip-count";
            break;
          default:
            sab.kind = MiscompileSpec::Kind::PredPolarity;
            expectKind = "predication";
            mutName = " MUT:pred-polarity";
            break;
        }
    }
    if (mutated && sab.kind == MiscompileSpec::Kind::PredPolarity) {
        c.predRegion = false;  // The probe wrapper is the only pair.
        c.predStore = true;
    }
    // A skewed stream advance is only consumed by the NEXT steady
    // fill, and with ahead=1 the steady loop runs iters-1 times — so
    // a stride mutant needs at least two steady fills to become
    // architecturally visible to the batch oracle.
    if (mutated && sab.kind == MiscompileSpec::Kind::WrongStride &&
        c.iters < 3) {
        c.iters = 3;
    }
    c.S = 1 + c.nFsw + (c.simdStore ? 4 : 0) + (c.predStore ? 1 : 0);
    placeHeap(c);  // iters and S changed after drawCase laid out heap.
    res.shape = c.describe() + (mutated ? mutName : " clean");

    BenchConfig cfg;
    cfg.name = "FUZZ";
    cfg.groupSize = c.geo.gs;
    cfg.simdWords = c.simd ? 4 : 1;
    cfg.wideAccess = true;
    cfg.dae = true;

    MachineParams params = machineFor(cfg, c.geo.cols, c.geo.rows);
    params.heapBytes = 1u << 20;

    try {
        // Shallow run-ahead so the steady-state fill (where DropLane
        // and WrongStride land) executes on every seed (iters >= 2).
        RaceMut shallow;
        shallow.ahead = 1;

        // Two identically seeded draw streams build byte-identical
        // programs; only the armed sabotage differs.
        Rng rngMut = rng;
        auto clean = buildProgram(c, rng, cfg, params, &shallow);
        std::shared_ptr<const Program> evil;
        if (mutated)
            evil = buildProgram(c, rngMut, cfg, params, &shallow, &sab);
        else
            evil = clean;

        // Static leg, clean program: the validator must prove every
        // stream — any finding is a false positive, any other
        // diagnostic a generator bug.
        VerifyReport repClean = verifyProgram(*clean, cfg, params);
        if (!repClean.ok()) {
            res.error = "verifier rejected the clean program:\n" +
                        repClean.text(*clean);
            return res;
        }
        if (repClean.equivStreams < 1 ||
            repClean.equivProved != repClean.equivStreams) {
            res.error =
                "clean program not proved equivalent (" +
                std::to_string(repClean.equivProved) + "/" +
                std::to_string(repClean.equivStreams) + " streams)";
            return res;
        }

        // Static leg, mutated program.
        bool staticFlag = false;
        std::string staticWitness;
        if (mutated) {
            VerifyReport repMut = verifyProgram(*evil, cfg, params);
            staticFlag = !repMut.equiv.empty();
            if (staticFlag != repMut.has(Check::Equiv)) {
                res.error = "equiv diagnostics and structured "
                            "findings disagree";
                return res;
            }
            if (staticFlag) {
                bool kindSeen = false;
                for (const EquivFinding &fnd : repMut.equiv) {
                    if (fnd.pc < 0 || fnd.refPc < 0 ||
                        fnd.routine.empty() || fnd.message.empty()) {
                        res.error = "equiv finding lacks a witness: " +
                                    fnd.message;
                        return res;
                    }
                    if (fnd.kind == expectKind)
                        kindSeen = true;
                }
                if (!kindSeen) {
                    res.error =
                        std::string("expected a '") + expectKind +
                        "' finding, got: " +
                        repMut.equiv.front().message;
                    return res;
                }
                staticWitness = repMut.equiv.front().message;
            }
        }

        // Dynamic leg: the batch functional reference run on both
        // programs from identical inputs; divergence = a failed run
        // or any differing heap word.
        Addr inWords = static_cast<Addr>(c.iters) * c.F * c.geo.gs;
        std::vector<Word> input(inWords);
        for (Addr i = 0; i < inWords; ++i) {
            float fv =
                0.25f + 0.75f * static_cast<float>(rng.uniform());
            input[static_cast<size_t>(i)] = floatToWord(fv);
        }
        auto setup = [&](Machine &m,
                         const std::shared_ptr<const Program> &p) {
            for (Addr i = 0; i < inWords; ++i)
                m.mem().writeWord(c.in + i * 4,
                                  input[static_cast<size_t>(i)]);
            m.loadAll(p);
            for (int g = 0; g < c.groups; ++g) {
                GroupPlan plan;
                for (int i = 0; i < c.tpg; ++i)
                    plan.chain.push_back(g * c.tpg + i);
                m.planGroup(plan);
            }
        };

        Machine mClean(params);
        setup(mClean, clean);
        RefMachine batchClean(mClean);
        auto ra = batchClean.runBatch();
        if (!ra.ok) {
            res.error = "clean batch reference failed: " + ra.error;
            return res;
        }

        bool dynDiverged = false;
        std::string dynWhy;
        if (mutated) {
            Machine mMut(params);
            setup(mMut, evil);
            RefMachine batchMut(mMut);
            auto rb = batchMut.runBatch();
            if (!rb.ok) {
                dynDiverged = true;
                dynWhy = "mutant run failed: " + rb.error;
            } else {
                for (Addr a = AddrMap::globalBase;
                     a < AddrMap::globalBase + params.heapBytes;
                     a += 4) {
                    if (batchClean.mem().readWord(a) !=
                        batchMut.mem().readWord(a)) {
                        dynDiverged = true;
                        dynWhy = "heap diverges at " +
                                 std::to_string(a);
                        break;
                    }
                }
            }
        }

        // The differential: static verdict == dynamic verdict ==
        // mutated, on every seed.
        if (staticFlag != mutated || dynDiverged != mutated) {
            std::ostringstream os;
            os << "equiv differential mismatch: mutated=" << mutated
               << " static=" << staticFlag << " dynamic="
               << dynDiverged;
            if (!staticWitness.empty())
                os << "\n  static: " << staticWitness;
            if (!dynWhy.empty())
                os << "\n  dynamic: " << dynWhy;
            res.error = os.str();
            return res;
        }
        res.ok = true;
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    (void)verbose;
    return res;
}

FuzzSummary
runEquivFuzz(const FuzzOptions &opts)
{
    FuzzSummary sum;
    std::vector<std::string> geoms;
    for (int i = 0; i < opts.seeds; ++i) {
        std::uint64_t seed =
            opts.baseSeed + static_cast<std::uint64_t>(i);
        FuzzCaseResult r = runEquivFuzzCase(seed, opts.verbose);
        std::string geo = r.shape.substr(0, r.shape.find(' '));
        if (std::find(geoms.begin(), geoms.end(), geo) == geoms.end())
            geoms.push_back(geo);
        if (r.ok) {
            ++sum.passed;
        } else {
            ++sum.failed;
            sum.failures.push_back("seed " + std::to_string(seed) +
                                   " (" + r.shape + "): " + r.error);
        }
    }
    std::sort(geoms.begin(), geoms.end());
    sum.geometries = geoms;
    return sum;
}

FuzzCaseResult
runTickDiffCase(std::uint64_t seed, bool verbose)
{
    FuzzCaseResult res;
    // Same draw stream as the co-simulation campaign: every seed's
    // program is identical across both campaigns, so a tick-diff
    // failure reproduces directly under --verbose there.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
    CaseSpec c = drawCase(rng, seed);
    res.shape = c.describe();

    BenchConfig cfg;
    cfg.name = "FUZZ";
    cfg.groupSize = c.geo.gs;
    cfg.simdWords = c.simd ? 4 : 1;
    cfg.wideAccess = true;
    cfg.dae = true;

    MachineParams params = machineFor(cfg, c.geo.cols, c.geo.rows);
    params.heapBytes = 1u << 20;

    try {
        Machine fast(params);
        Machine naive(params);
        naive.setNaiveTick(true);

        Addr inWords =
            static_cast<Addr>(c.iters) * c.F * c.geo.gs;
        for (Addr i = 0; i < inWords; ++i) {
            float f = 0.25f +
                      0.75f * static_cast<float>(rng.uniform());
            Word wv = floatToWord(f);
            fast.mem().writeWord(c.in + i * 4, wv);
            naive.mem().writeWord(c.in + i * 4, wv);
        }

        auto prog = buildProgram(c, rng, cfg, params);
        for (Machine *m : {&fast, &naive}) {
            m->loadAll(prog);
            for (int g = 0; g < c.groups; ++g) {
                GroupPlan plan;
                for (int i = 0; i < c.tpg; ++i)
                    plan.chain.push_back(g * c.tpg + i);
                m->planGroup(plan);
            }
        }

        VerifyReport rep = verifyProgram(*prog, cfg, params);
        if (!rep.ok()) {
            res.error = "verifier rejected generated program:\n" +
                        rep.text(*prog);
            return res;
        }

        // Third implementation: the functional reference, snapshotted
        // before the timing runs mutate memory.
        RefMachine batch(fast);
        CosimChecker fastCheck(fast);
        fastCheck.recordStreams(fast.numCores());
        fast.attachCosim(&fastCheck);
        CosimChecker naiveCheck(naive);
        naiveCheck.recordStreams(naive.numCores());
        naive.attachCosim(&naiveCheck);

        Cycle fastCycles = fast.run(20'000'000);
        Cycle naiveCycles = naive.run(20'000'000);
        fast.drainCosim();
        naive.drainCosim();
        std::string div = fastCheck.finish(fast.mem());
        if (!div.empty()) {
            res.error = "fast-tick cosim: " + div;
            return res;
        }
        div = naiveCheck.finish(naive.mem());
        if (!div.empty()) {
            res.error = "naive-tick cosim: " + div;
            return res;
        }

        if (fastCycles != naiveCycles) {
            res.error = "cycle count diverges: fast-tick " +
                        std::to_string(fastCycles) + " vs naive " +
                        std::to_string(naiveCycles);
            return res;
        }

        // Per-core commit streams, instruction by instruction.
        const auto &fs = fastCheck.streams();
        const auto &ns = naiveCheck.streams();
        for (size_t core = 0; core < fs.size(); ++core) {
            const auto &a = fs[core];
            const auto &b = ns[core];
            size_t n = std::min(a.size(), b.size());
            for (size_t i = 0; i < n; ++i) {
                if (recordsEqual(a[i], b[i]))
                    continue;
                std::ostringstream os;
                os << "commit stream diverges, core " << core
                   << " record " << i
                   << ":\n  fast:  " << describeRecord(a[i])
                   << "\n  naive: " << describeRecord(b[i]);
                res.error = os.str();
                return res;
            }
            if (a.size() != b.size()) {
                std::ostringstream os;
                os << "commit stream length diverges, core " << core
                   << ": fast " << a.size() << " vs naive "
                   << b.size();
                res.error = os.str();
                return res;
            }
        }

        // Every statistics counter (CPI stacks, cache, NoC, energy
        // inputs): the schedulers must be observationally identical.
        auto fstats = fast.stats().all();
        auto nstats = naive.stats().all();
        if (fstats != nstats) {
            std::ostringstream os;
            os << "stat registries diverge:";
            for (const auto &[name, v] : fstats) {
                auto it = nstats.find(name);
                std::uint64_t nv = it == nstats.end() ? 0 : it->second;
                if (nv != v)
                    os << "\n  " << name << ": fast " << v
                       << " vs naive " << nv;
            }
            for (const auto &[name, v] : nstats) {
                if (fstats.find(name) == fstats.end())
                    os << "\n  " << name << ": fast 0 vs naive " << v;
            }
            res.error = os.str();
            return res;
        }

        // Final memory images, word by word over the global heap.
        for (Addr a = AddrMap::globalBase;
             a < AddrMap::globalBase + params.heapBytes; a += 4) {
            if (fast.mem().readWord(a) != naive.mem().readWord(a)) {
                std::ostringstream os;
                os << "memory diverges at " << a << ": fast "
                   << fast.mem().readWord(a) << " vs naive "
                   << naive.mem().readWord(a);
                res.error = os.str();
                return res;
            }
        }

        // And both must match the functional reference.
        auto br = batch.runBatch();
        if (!br.ok) {
            res.error = "batch reference failed: " + br.error;
            return res;
        }
        std::string md = batch.finish(fast.mem());
        if (!md.empty()) {
            res.error = "batch memory mismatch: " + md;
            return res;
        }

        std::uint64_t done = fast.ticksExecuted();
        std::uint64_t skipped = fast.ticksSkipped();
        std::ostringstream os;
        os << " skip=" << (100 * skipped / std::max<std::uint64_t>(
                                               1, done + skipped))
           << "%";
        res.shape += os.str();
        res.ok = true;
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    (void)verbose;
    return res;
}

FuzzSummary
runTickDiffFuzz(const FuzzOptions &opts)
{
    FuzzSummary sum;
    std::vector<std::string> geoms;
    for (int i = 0; i < opts.seeds; ++i) {
        std::uint64_t seed =
            opts.baseSeed + static_cast<std::uint64_t>(i);
        FuzzCaseResult r = runTickDiffCase(seed, opts.verbose);
        std::string geo = r.shape.substr(0, r.shape.find(' '));
        if (std::find(geoms.begin(), geoms.end(), geo) == geoms.end())
            geoms.push_back(geo);
        if (r.ok) {
            ++sum.passed;
        } else {
            ++sum.failed;
            sum.failures.push_back("seed " + std::to_string(seed) +
                                   " (" + r.shape + "): " + r.error);
        }
    }
    std::sort(geoms.begin(), geoms.end());
    sum.geometries = geoms;
    return sum;
}

FuzzCaseResult
runCheckpointFuzzCase(std::uint64_t seed, bool verbose)
{
    FuzzCaseResult res;
    // Same draw stream as the co-simulation and tick-diff campaigns:
    // every seed's program is identical across all three, so a
    // checkpoint failure reproduces directly under --verbose there.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
    CaseSpec c = drawCase(rng, seed);
    res.shape = c.describe();

    BenchConfig cfg;
    cfg.name = "FUZZ";
    cfg.groupSize = c.geo.gs;
    cfg.simdWords = c.simd ? 4 : 1;
    cfg.wideAccess = true;
    cfg.dae = true;

    MachineParams params = machineFor(cfg, c.geo.cols, c.geo.rows);
    params.heapBytes = 1u << 20;

    try {
        Addr inWords =
            static_cast<Addr>(c.iters) * c.F * c.geo.gs;
        std::vector<Word> input;
        input.reserve(inWords);
        for (Addr i = 0; i < inWords; ++i) {
            float f = 0.25f +
                      0.75f * static_cast<float>(rng.uniform());
            input.push_back(floatToWord(f));
        }
        auto prog = buildProgram(c, rng, cfg, params);

        // Identical preparation for the straight machine and every
        // resume hop: restoreCheckpoint expects the restored machine
        // to be software-configured exactly like the saved one.
        auto prepare = [&](Machine &m) {
            for (Addr i = 0; i < inWords; ++i)
                m.mem().writeWord(c.in + i * 4, input[i]);
            m.loadAll(prog);
            for (int g = 0; g < c.groups; ++g) {
                GroupPlan plan;
                for (int i = 0; i < c.tpg; ++i)
                    plan.chain.push_back(g * c.tpg + i);
                m.planGroup(plan);
            }
        };

        VerifyReport rep = verifyProgram(*prog, cfg, params);
        if (!rep.ok()) {
            res.error = "verifier rejected generated program:\n" +
                        rep.text(*prog);
            return res;
        }

        // The unchunked reference run.
        auto straight = std::make_unique<Machine>(params);
        prepare(*straight);
        CosimChecker straightCheck(*straight);
        straightCheck.recordStreams(straight->numCores());
        straight->attachCosim(&straightCheck);
        Cycle total = straight->run(20'000'000);
        straight->drainCosim();
        std::string straightDiv = straightCheck.finish(straight->mem());

        // The chunked run: snapshot/restore at seeded mid-run cycles
        // into freshly prepared machines, alternating the tick kernel
        // every hop, one checker carried across all of them.
        std::set<Cycle> splits;
        while (splits.size() < 3 && total > 4) {
            splits.insert(1 + static_cast<Cycle>(
                                  rng.uniform() *
                                  static_cast<float>(total - 2)));
        }
        auto chunked = std::make_unique<Machine>(params);
        prepare(*chunked);
        CosimChecker chunkCheck(*chunked);
        chunkCheck.recordStreams(chunked->numCores());
        chunked->attachCosim(&chunkCheck);
        bool naive = false;
        for (Cycle stop : splits) {
            chunked->run(20'000'000, stop);
            std::vector<std::uint8_t> bytes = saveCheckpoint(*chunked);
            auto next = std::make_unique<Machine>(params);
            prepare(*next);
            restoreCheckpoint(*next, bytes);
            naive = !naive;
            next->setNaiveTick(naive);
            next->attachCosim(&chunkCheck);
            chunked = std::move(next);
        }
        Cycle chunkCycles = chunked->run(20'000'000);
        chunked->drainCosim();
        std::string chunkDiv = chunkCheck.finish(chunked->mem());

        // Verdict equality with the unchunked run, then the full
        // observational cross-check (the tick-diff battery).
        if (straightDiv != chunkDiv) {
            res.error = "cosim verdict diverges:\n  straight: " +
                        (straightDiv.empty() ? "clean" : straightDiv) +
                        "\n  chunked:  " +
                        (chunkDiv.empty() ? "clean" : chunkDiv);
            return res;
        }
        if (!straightDiv.empty()) {
            res.error = "cosim (both runs): " + straightDiv;
            return res;
        }
        if (total != chunkCycles) {
            res.error = "cycle count diverges: straight " +
                        std::to_string(total) + " vs chunked " +
                        std::to_string(chunkCycles);
            return res;
        }
        const auto &ss = straightCheck.streams();
        const auto &cs = chunkCheck.streams();
        for (size_t core = 0; core < ss.size(); ++core) {
            const auto &a = ss[core];
            const auto &b = cs[core];
            size_t n = std::min(a.size(), b.size());
            for (size_t i = 0; i < n; ++i) {
                if (recordsEqual(a[i], b[i]))
                    continue;
                std::ostringstream os;
                os << "commit stream diverges, core " << core
                   << " record " << i
                   << ":\n  straight: " << describeRecord(a[i])
                   << "\n  chunked:  " << describeRecord(b[i]);
                res.error = os.str();
                return res;
            }
            if (a.size() != b.size()) {
                std::ostringstream os;
                os << "commit stream length diverges, core " << core
                   << ": straight " << a.size() << " vs chunked "
                   << b.size();
                res.error = os.str();
                return res;
            }
        }
        auto sstats = straight->stats().all();
        auto cstats = chunked->stats().all();
        if (sstats != cstats) {
            std::ostringstream os;
            os << "stat registries diverge:";
            for (const auto &[name, v] : sstats) {
                auto it = cstats.find(name);
                std::uint64_t cv = it == cstats.end() ? 0 : it->second;
                if (cv != v)
                    os << "\n  " << name << ": straight " << v
                       << " vs chunked " << cv;
            }
            for (const auto &[name, v] : cstats) {
                if (sstats.find(name) == sstats.end())
                    os << "\n  " << name << ": straight 0 vs chunked "
                       << v;
            }
            res.error = os.str();
            return res;
        }
        for (Addr a = AddrMap::globalBase;
             a < AddrMap::globalBase + params.heapBytes; a += 4) {
            if (straight->mem().readWord(a) !=
                chunked->mem().readWord(a)) {
                std::ostringstream os;
                os << "memory diverges at " << a << ": straight "
                   << straight->mem().readWord(a) << " vs chunked "
                   << chunked->mem().readWord(a);
                res.error = os.str();
                return res;
            }
        }
        res.ok = true;
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    (void)verbose;
    return res;
}

FuzzSummary
runCheckpointFuzz(const FuzzOptions &opts)
{
    FuzzSummary sum;
    std::vector<std::string> geoms;
    for (int i = 0; i < opts.seeds; ++i) {
        std::uint64_t seed =
            opts.baseSeed + static_cast<std::uint64_t>(i);
        FuzzCaseResult r = runCheckpointFuzzCase(seed, opts.verbose);
        std::string geo = r.shape.substr(0, r.shape.find(' '));
        if (std::find(geoms.begin(), geoms.end(), geo) == geoms.end())
            geoms.push_back(geo);
        if (r.ok) {
            ++sum.passed;
        } else {
            ++sum.failed;
            sum.failures.push_back("seed " + std::to_string(seed) +
                                   " (" + r.shape + "): " + r.error);
        }
    }
    std::sort(geoms.begin(), geoms.end());
    sum.geometries = geoms;
    return sum;
}

FuzzSummary
runFuzz(const FuzzOptions &opts)
{
    FuzzSummary sum;
    std::vector<std::string> geoms;
    for (int i = 0; i < opts.seeds; ++i) {
        std::uint64_t seed = opts.baseSeed + static_cast<std::uint64_t>(i);
        FuzzCaseResult r = runFuzzCase(seed, opts.verbose);
        std::string geo = r.shape.substr(0, r.shape.find(' '));
        if (std::find(geoms.begin(), geoms.end(), geo) == geoms.end())
            geoms.push_back(geo);
        if (r.ok) {
            ++sum.passed;
        } else {
            ++sum.failed;
            sum.failures.push_back("seed " + std::to_string(seed) +
                                   " (" + r.shape + "): " + r.error);
        }
    }
    std::sort(geoms.begin(), geoms.end());
    sum.geometries = geoms;
    return sum;
}

} // namespace rockcress
