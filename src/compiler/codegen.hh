/**
 * @file
 * The code-generation layer standing in for the paper's toolchain
 * (Section 4.1): benchmark kernels are written against these
 * emitters, which perform the scalar/microthread split, strip-mining,
 * frame-queue pacing, and vector-group scaffolding that the paper's
 * GCC + assembly post-processing pass performs.
 */

#ifndef ROCKCRESS_COMPILER_CODEGEN_HH
#define ROCKCRESS_COMPILER_CODEGEN_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "machine/params.hh"

namespace rockcress
{

/**
 * A software configuration from Table 3. GPU runs are handled by the
 * separate GPU model (src/gpu).
 */
struct BenchConfig
{
    std::string name = "NV";
    int groupSize = 1;       ///< Vector cores per group; 1 = MIMD.
    int simdWords = 1;       ///< Per-core SIMD width used by the code.
    bool wideAccess = false; ///< vload available.
    bool dae = false;        ///< Frame queue used.
    bool longLines = false;  ///< 1024-byte cache lines.

    bool isVector() const { return groupSize > 1; }
};

/** Look up a canonical configuration by its Table 3 name. */
BenchConfig configByName(const std::string &name);

/** All manycore configuration names in Table 3 order. */
std::vector<std::string> allConfigNames();

/** Derive machine parameters for a configuration. */
MachineParams machineFor(const BenchConfig &cfg, int cols = 8,
                         int rows = 8);

/** @name Reserved register conventions. */
///@{
constexpr RegIdx rCoreId = x(28);
constexpr RegIdx rGroupId = x(29);
constexpr RegIdx rPos = x(30);      ///< Position in group (0 = scalar).
constexpr RegIdx rScratch = x(31);  ///< Builder-internal temporary.
///@}

/**
 * Emits a bottom-tested counted loop:
 *   for (i = i; i < bound; i += step) { ... }
 * The caller pre-loads the induction register; `bound` is a register.
 */
class Loop
{
  public:
    Loop(Assembler &as, RegIdx i, RegIdx bound, int step);
    /** Close the loop (emits increment + back-branch). */
    void end();

  private:
    Assembler &as_;
    RegIdx i_;
    RegIdx bound_;
    int step_;
    Label top_;
    Label exit_;
    bool ended_ = false;
};

/** dst = base + idx * stride_bytes (shift+add when stride is 2^k). */
void emitAffine(Assembler &as, RegIdx dst, RegIdx base, RegIdx idx,
                int stride_bytes, RegIdx tmp);

/** dst = src + imm, expanding through tmp when imm exceeds 12 bits. */
void emitAddImm(Assembler &as, RegIdx dst, RegIdx src, int imm,
                RegIdx tmp);

/** dst = value * mult (shift when power of two, else mul via tmp). */
void emitScale(Assembler &as, RegIdx dst, RegIdx src, int mult,
               RegIdx tmp);

/**
 * Maintains a scalar-side rotating frame byte offset. When the frame
 * region (frame_bytes * num_frames) is a power of two the wrap is a
 * single ANDI; otherwise the caller must donate a register to hold
 * the region size and the wrap is a compare-and-reset.
 */
class FrameRotator
{
  public:
    FrameRotator(Assembler &as, RegIdx off_reg, int frame_bytes,
                 int num_frames, RegIdx region_reg = regZero);
    void emitInit();
    void emitAdvance();
    RegIdx reg() const { return off_; }

  private:
    Assembler &as_;
    RegIdx off_;
    RegIdx regionReg_;
    int frameBytes_;
    int regionBytes_;
    int regionMask_;
    bool pow2_;
};

/**
 * The canonical DAE streaming pattern (Section 2.3.1): a prologue
 * fills `ahead` frames, then each iteration tops up one future frame
 * and consumes the head frame. Used directly by NV_PF (self-loads)
 * and split across scalar core + microthread for vector groups.
 */
struct DaeStreamSpec
{
    int iters = 0;          ///< Frames to stream (compile-time).
    int frameBytes = 0;
    int numFrames = 0;
    int ahead = 4;          ///< Run-ahead depth (<= counters - 1).
    /** Emit the vloads filling one frame at scratch offset off_reg.
     * The callback owns and advances its stream pointer registers. */
    std::function<void(Assembler &, RegIdx off_reg)> fill;
    /** MIMD: consume the head frame at global address frame_base. */
    std::function<void(Assembler &, RegIdx frame_base)> consume;
    /** Vector: the body microthread label (frame_start/.../remem/vend). */
    Label bodyMt;
};

/** Registers the stream emitters clobber. */
struct DaeStreamRegs
{
    RegIdx off = x(26);
    RegIdx it = x(25);
    RegIdx bound = x(24);
    RegIdx tmp = x(23);
    RegIdx frameBase = x(22);
};

/**
 * Emit the full fill+consume loop inline (NV_PF / PCV_PF style).
 * The rotator must be initialized once per phase and is shared across
 * calls so the software frame pointer stays aligned with the
 * hardware frame-queue head.
 */
void emitMimdStream(Assembler &as, const DaeStreamSpec &spec,
                    FrameRotator &rot, const DaeStreamRegs &regs = {});

/** Emit the scalar-side fill+vissue loop (vector-group style). */
void emitScalarStream(Assembler &as, const DaeStreamSpec &spec,
                      FrameRotator &rot, const DaeStreamRegs &regs = {});

/**
 * A seeded miscompile, injected into the emitted program *after* the
 * vectorization manifest has captured the reference instruction
 * stream — so the manifest still records what the emitter intended
 * and the translation validator (analysis/equiv.hh) must catch the
 * divergence. Used by ref_fuzz --equiv and the equiv smoke fixture;
 * production callers never set one.
 */
struct MiscompileSpec
{
    enum class Kind
    {
        None,
        DropLane,      ///< Bump a fill vload's core offset: lane starved.
        WrongStride,   ///< Skew the fill's stream-pointer increment.
        TripCount,     ///< Off-by-one on the steady loop's bound seat.
        PredPolarity,  ///< Swap a body pred_eq <-> pred_neq.
    };

    Kind kind = Kind::None;
    int streamIdx = 0;    ///< Which manifest stream to corrupt.
    int occurrence = 0;   ///< n-th candidate site within the region.
    int delta = 1;        ///< Stride skew (words) / trip-count delta.
};

/**
 * Apply `spec` to an already-finished program, mutating Program::code
 * in place (the manifest's reference copies are left untouched).
 * Returns the mutated pc, or -1 when no matching site exists.
 */
int applyMiscompile(Program &p, const MiscompileSpec &spec);

/**
 * Builds one SPMD program shared by every core of a configuration:
 * entry dispatch (core id, group id, position), per-phase vector
 * group formation/disband, the global barrier between kernels, and
 * deferred microthread emission after the halt.
 */
class SpmdBuilder
{
  public:
    SpmdBuilder(const std::string &name, const BenchConfig &cfg,
                const MachineParams &params);

    Assembler &as() { return as_; }
    const BenchConfig &config() const { return cfg_; }

    /** @name Worker topology. */
    ///@{
    int tilesPerGroup() const;
    int numGroups() const;
    /** MIMD: core count; vector: groups * groupSize. */
    int numWorkers() const;
    /** Cores that do not halt at entry (MIMD: all; vector: groups *
     * tilesPerGroup) — the worker count for mimdPhase bodies. */
    int activeCores() const;
    int vlen() const { return cfg_.groupSize; }
    /** Words per cache line of the target machine. */
    int lineWords() const;
    ///@}

    /**
     * A MIMD phase: body runs on every active core with rCoreId as
     * the worker id; a global barrier follows.
     */
    void mimdPhase(const std::function<void(Assembler &)> &body);

    /**
     * A vector phase: vector cores configure frames and join the
     * group; the scalar core runs scalar_body (vloads + vissues) and
     * disbands; everyone meets at a barrier.
     */
    void vectorPhase(int frame_words, int num_frames,
                     const std::function<void(Assembler &)> &scalar_body);

    /** Forward-declare a microthread for vissue references. */
    Label declareMicrothread();
    /** Provide its body (vend is appended automatically). */
    void defineMicrothread(Label l,
                           const std::function<void(Assembler &)> &body);

    /**
     * Emit code (microthread context) computing the global worker id:
     * wid = groupId * VLEN + GroupTid.
     */
    void emitWorkerId(Assembler &as, RegIdx wid, RegIdx tmp);

    /**
     * Arm a seeded miscompile: finish() applies it to the emitted
     * code after the manifest has captured the reference stream.
     * Fatal at finish() if the spec matches no site (a broken test).
     */
    void setSabotage(const MiscompileSpec &spec) { sabotage_ = spec; }

    /** Finish: emits halt + deferred microthreads; returns program. */
    Program finish();

  private:
    void emitEntry();

    BenchConfig cfg_;
    MachineParams params_;
    Assembler as_;
    std::vector<std::pair<Label, std::function<void(Assembler &)>>>
        microthreads_;
    MiscompileSpec sabotage_;
    bool finished_ = false;
};

} // namespace rockcress

#endif // ROCKCRESS_COMPILER_CODEGEN_HH
