#include "compiler/codegen.hh"

#include <algorithm>

#include "sim/log.hh"

namespace rockcress
{

BenchConfig
configByName(const std::string &name)
{
    BenchConfig c;
    c.name = name;
    if (name == "NV") {
        // Basic MIMD baseline.
    } else if (name == "NV_PF") {
        c.wideAccess = true;
        c.dae = true;  // Self-loads staged through the frame queue.
    } else if (name == "PCV_PF") {
        c.wideAccess = true;
        c.dae = true;
        c.simdWords = 4;
    } else if (name == "V4") {
        c.groupSize = 4;
        c.wideAccess = true;
        c.dae = true;
    } else if (name == "V16") {
        c.groupSize = 16;
        c.wideAccess = true;
        c.dae = true;
    } else if (name == "V4_PCV") {
        c.groupSize = 4;
        c.wideAccess = true;
        c.dae = true;
        c.simdWords = 4;
    } else if (name == "V16_PCV") {
        c.groupSize = 16;
        c.wideAccess = true;
        c.dae = true;
        c.simdWords = 4;
    } else if (name == "V4_LL_PCV") {
        c.groupSize = 4;
        c.wideAccess = true;
        c.dae = true;
        c.simdWords = 4;
        c.longLines = true;
    } else if (name == "V16_LL") {
        c.groupSize = 16;
        c.wideAccess = true;
        c.dae = true;
        c.longLines = true;
    } else if (name == "V16_LL_PCV") {
        c.groupSize = 16;
        c.wideAccess = true;
        c.dae = true;
        c.simdWords = 4;
        c.longLines = true;
    } else {
        fatal("codegen: unknown configuration '", name, "'");
    }
    return c;
}

std::vector<std::string>
allConfigNames()
{
    return {"NV", "NV_PF", "PCV_PF", "V4", "V16", "V4_PCV", "V16_PCV",
            "V4_LL_PCV", "V16_LL", "V16_LL_PCV"};
}

MachineParams
machineFor(const BenchConfig &cfg, int cols, int rows)
{
    MachineParams p;
    p.cols = cols;
    p.rows = rows;
    if (cfg.longLines)
        p.lineBytes = 1024;
    return p;
}

// --- Loop ----------------------------------------------------------------

Loop::Loop(Assembler &as, RegIdx i, RegIdx bound, int step)
    : as_(as), i_(i), bound_(bound), step_(step)
{
    exit_ = as_.newLabel();
    as_.bge(i_, bound_, exit_);
    top_ = as_.here();
}

void
Loop::end()
{
    if (ended_)
        fatal("codegen: loop closed twice");
    as_.addi(i_, i_, step_);
    as_.blt(i_, bound_, top_);
    as_.bind(exit_);
    ended_ = true;
}

// --- Address math ----------------------------------------------------------

namespace
{

int
log2Exact(int v)
{
    int l = 0;
    while ((1 << l) < v)
        ++l;
    return (1 << l) == v ? l : -1;
}

} // namespace

void
emitScale(Assembler &as, RegIdx dst, RegIdx src, int mult, RegIdx tmp)
{
    if (mult == 1) {
        if (dst != src)
            as.mv(dst, src);
        return;
    }
    int l = log2Exact(mult);
    if (l >= 0) {
        as.slli(dst, src, l);
        return;
    }
    as.li(tmp, mult);
    as.mul(dst, src, tmp);
}

void
emitAffine(Assembler &as, RegIdx dst, RegIdx base, RegIdx idx,
           int stride_bytes, RegIdx tmp)
{
    emitScale(as, tmp, idx, stride_bytes, tmp);
    as.add(dst, base, tmp);
}

void
emitAddImm(Assembler &as, RegIdx dst, RegIdx src, int imm, RegIdx tmp)
{
    if (imm >= -2048 && imm <= 2047) {
        as.addi(dst, src, imm);
        return;
    }
    as.li(tmp, imm);
    as.add(dst, src, tmp);
}

// --- FrameRotator ------------------------------------------------------------

FrameRotator::FrameRotator(Assembler &as, RegIdx off_reg, int frame_bytes,
                           int num_frames, RegIdx region_reg)
    : as_(as), off_(off_reg), regionReg_(region_reg),
      frameBytes_(frame_bytes), regionBytes_(frame_bytes * num_frames),
      regionMask_(frame_bytes * num_frames - 1),
      pow2_((regionBytes_ & (regionBytes_ - 1)) == 0)
{
    if (!pow2_ && regionReg_ == regZero)
        fatal("codegen: non-power-of-two frame region (", regionBytes_,
              "B) needs a donated region register");
}

void
FrameRotator::emitInit()
{
    as_.li(off_, 0);
    if (!pow2_)
        as_.li(regionReg_, regionBytes_);
}

void
FrameRotator::emitAdvance()
{
    as_.addi(off_, off_, frameBytes_);
    if (pow2_) {
        as_.andi(off_, off_, regionMask_);
    } else {
        Label skip = as_.newLabel();
        as_.blt(off_, regionReg_, skip);
        as_.li(off_, 0);
        as_.bind(skip);
    }
}

// --- DAE streams -----------------------------------------------------------------

void
emitMimdStream(Assembler &as, const DaeStreamSpec &spec,
               FrameRotator &rot, const DaeStreamRegs &regs)
{
    if (!spec.fill || !spec.consume)
        fatal("codegen: MIMD stream needs fill and consume callbacks");
    int ahead = std::min(spec.ahead, spec.iters);
    for (int k = 0; k < ahead; ++k) {
        spec.fill(as, regs.off);
        rot.emitAdvance();
    }
    as.li(regs.it, 0);
    as.li(regs.bound, spec.iters);
    Loop loop(as, regs.it, regs.bound, 1);
    {
        // Top up one future frame while iterations remain.
        Label skip = as.newLabel();
        as.addi(regs.tmp, regs.it, ahead);
        as.bge(regs.tmp, regs.bound, skip);
        spec.fill(as, regs.off);
        rot.emitAdvance();
        as.bind(skip);

        as.frameStart(regs.frameBase);
        spec.consume(as, regs.frameBase);
        as.remem();
    }
    loop.end();
}

void
emitScalarStream(Assembler &as, const DaeStreamSpec &spec,
                 FrameRotator &rot, const DaeStreamRegs &regs)
{
    if (!spec.fill)
        fatal("codegen: scalar stream needs a fill callback");
    // Record what this stream intends as it is emitted; the manifest
    // is the reference leg of the translation-validation proof
    // (analysis/equiv.hh). Assembler::finish() resolves the body
    // range and snapshots the reference instruction copies.
    ManifestStream ms;
    ms.iters = spec.iters;
    ms.ahead = std::min(spec.ahead, spec.iters);
    ms.frameWords = spec.frameBytes / static_cast<int>(wordBytes);
    ms.numFrames = spec.numFrames;
    ms.boundReg = regs.bound;

    int ahead = ms.ahead;
    ms.prologueLo = as.pc();
    for (int k = 0; k < ahead; ++k) {
        spec.fill(as, regs.off);
        rot.emitAdvance();
    }
    ms.prologueHi = as.pc();
    ms.preheaderLo = as.pc();
    as.li(regs.it, 0);
    ms.boundPc = as.pc();
    as.li(regs.bound, spec.iters);
    ms.preheaderHi = as.pc();
    ms.loopLo = as.pc();
    Loop loop(as, regs.it, regs.bound, 1);
    {
        Label skip = as.newLabel();
        as.addi(regs.tmp, regs.it, ahead);
        as.bge(regs.tmp, regs.bound, skip);
        ms.fillLo = as.pc();
        spec.fill(as, regs.off);
        rot.emitAdvance();
        ms.fillHi = as.pc();
        as.bind(skip);

        ms.vissuePc = as.pc();
        as.vissue(spec.bodyMt);
    }
    loop.end();
    ms.loopHi = as.pc();
    as.manifest().streams.push_back(ms);
}

// --- Seeded miscompiles ------------------------------------------------------

int
applyMiscompile(Program &p, const MiscompileSpec &spec)
{
    if (spec.kind == MiscompileSpec::Kind::None)
        return -1;
    if (spec.streamIdx < 0 ||
        spec.streamIdx >=
            static_cast<int>(p.manifest.streams.size())) {
        return -1;
    }
    const ManifestStream &ms =
        p.manifest.streams[static_cast<size_t>(spec.streamIdx)];
    auto nth = [&](int lo, int hi, auto &&match) {
        int seen = 0;
        for (int pc = std::max(lo, 0);
             pc < std::min(hi, p.size()); ++pc) {
            if (match(p.code[static_cast<size_t>(pc)]) &&
                seen++ == spec.occurrence) {
                return pc;
            }
        }
        return -1;
    };
    switch (spec.kind) {
      case MiscompileSpec::Kind::DropLane: {
        int pc = nth(ms.fillLo, ms.fillHi, [](const Instruction &i) {
            return i.op == Opcode::VLOAD &&
                   static_cast<VloadVariant>(i.sub) ==
                       VloadVariant::Group;
        });
        if (pc >= 0)
            p.code[static_cast<size_t>(pc)].imm += spec.delta;
        return pc;
      }
      case MiscompileSpec::Kind::WrongStride: {
        // Skew a stream-pointer bump: an addi rd, rd, imm in the fill.
        int pc = nth(ms.fillLo, ms.fillHi, [](const Instruction &i) {
            return i.op == Opcode::ADDI && i.rd == i.rs1 &&
                   i.rd != regZero;
        });
        if (pc >= 0)
            p.code[static_cast<size_t>(pc)].imm +=
                spec.delta * static_cast<int>(wordBytes);
        return pc;
      }
      case MiscompileSpec::Kind::TripCount: {
        int pc = ms.boundPc;
        if (pc < 0 || pc >= p.size() ||
            p.code[static_cast<size_t>(pc)].op != Opcode::ADDI) {
            return -1;
        }
        p.code[static_cast<size_t>(pc)].imm += spec.delta;
        return pc;
      }
      case MiscompileSpec::Kind::PredPolarity: {
        int pc = nth(ms.bodyLo, ms.bodyHi, [](const Instruction &i) {
            return i.op == Opcode::PRED_EQ ||
                   i.op == Opcode::PRED_NEQ;
        });
        if (pc >= 0) {
            Instruction &i = p.code[static_cast<size_t>(pc)];
            i.op = i.op == Opcode::PRED_EQ ? Opcode::PRED_NEQ
                                           : Opcode::PRED_EQ;
        }
        return pc;
      }
      case MiscompileSpec::Kind::None:
        break;
    }
    return -1;
}

// --- SpmdBuilder ------------------------------------------------------------------

SpmdBuilder::SpmdBuilder(const std::string &name, const BenchConfig &cfg,
                         const MachineParams &params)
    : cfg_(cfg), params_(params), as_(name)
{
    emitEntry();
}

int
SpmdBuilder::tilesPerGroup() const
{
    return cfg_.isVector() ? cfg_.groupSize + 1 : 1;
}

int
SpmdBuilder::numGroups() const
{
    return cfg_.isVector() ? params_.numCores() / tilesPerGroup() : 0;
}

int
SpmdBuilder::numWorkers() const
{
    return cfg_.isVector() ? numGroups() * cfg_.groupSize
                           : params_.numCores();
}

int
SpmdBuilder::activeCores() const
{
    return cfg_.isVector() ? numGroups() * tilesPerGroup()
                           : params_.numCores();
}

int
SpmdBuilder::lineWords() const
{
    return static_cast<int>(params_.lineBytes / wordBytes);
}

void
SpmdBuilder::emitEntry()
{
    as_.csrr(rCoreId, Csr::CoreId);
    if (!cfg_.isVector())
        return;
    as_.li(rScratch, tilesPerGroup());
    as_.div(rGroupId, rCoreId, rScratch);
    as_.rem(rPos, rCoreId, rScratch);
    // Leftover cores that do not fit a whole group halt immediately
    // (the evaluation leaves them idle, Section 6.2).
    Label active = as_.newLabel();
    as_.li(rScratch, numGroups());
    as_.blt(rGroupId, rScratch, active);
    as_.halt();
    as_.bind(active);
}

void
SpmdBuilder::mimdPhase(const std::function<void(Assembler &)> &body)
{
    // Also legal in vector configurations: all non-halted cores
    // (ids [0, groups * tilesPerGroup)) participate with rCoreId as
    // the worker id, e.g. for cross-lane reduction phases.
    body(as_);
    as_.barrier();
}

void
SpmdBuilder::vectorPhase(
    int frame_words, int num_frames,
    const std::function<void(Assembler &)> &scalar_body)
{
    if (!cfg_.isVector())
        fatal("codegen: vectorPhase on a MIMD configuration");
    // Vector cores (pos != 0) configure their frame queue, then every
    // group member writes vconfig. The scalar core falls through into
    // its scalar-only stream; vector cores sit in vector mode until
    // the devec below redirects them to the resume label.
    Label is_scalar = as_.newLabel();
    as_.beq(rPos, regZero, is_scalar);
    as_.li(rScratch,
           frame_words | (num_frames << 16));
    as_.csrw(Csr::FrameCfg, rScratch);
    as_.bind(is_scalar);
    as_.li(rScratch, 1);
    as_.csrw(Csr::Vconfig, rScratch);

    scalar_body(as_);

    Label resume = as_.newLabel();
    as_.devec(resume);
    as_.bind(resume);
    as_.barrier();
}

Label
SpmdBuilder::declareMicrothread()
{
    return as_.newLabel();
}

void
SpmdBuilder::defineMicrothread(
    Label l, const std::function<void(Assembler &)> &body)
{
    microthreads_.emplace_back(l, body);
}

void
SpmdBuilder::emitWorkerId(Assembler &as, RegIdx wid, RegIdx tmp)
{
    as.csrr(tmp, Csr::CoreId);
    as.li(wid, tilesPerGroup());
    as.div(tmp, tmp, wid);              // tmp = group id
    emitScale(as, tmp, tmp, vlen(), wid);
    as.csrr(wid, Csr::GroupTid);
    as.add(wid, wid, tmp);              // wid = group * VLEN + tid
}

Program
SpmdBuilder::finish()
{
    if (finished_)
        fatal("codegen: finish() called twice");
    as_.halt();
    for (auto &[label, body] : microthreads_) {
        as_.bind(label);
        body(as_);
        as_.vend();
    }
    finished_ = true;
    Program p = as_.finish();
    if (sabotage_.kind != MiscompileSpec::Kind::None &&
        applyMiscompile(p, sabotage_) < 0) {
        fatal("codegen: armed miscompile matched no site in '",
              p.name, "'");
    }
    return p;
}

} // namespace rockcress
