#include "compiler/sync.hh"

#include "sim/log.hh"
#include "sim/types.hh"

namespace rockcress
{

SyncParams
syncParams(const MachineParams &params)
{
    SyncParams p;
    p.qInet = params.inetQueueEntries;
    p.pipelineBufs = params.core.decodeDepth + 2;
    p.robEntries = params.core.robEntries;
    return p;
}

int
instructionDelayBound(const SyncParams &p, int hops)
{
    if (hops < 0)
        fatal("sync: negative hop count");
    return hops * p.qInet + p.pipelineBufs + p.robEntries;
}

int
numActiveFrames(int delay_bound, int instructions_per_frame)
{
    if (instructions_per_frame <= 0)
        fatal("sync: non-positive microthread length");
    return ceilDiv(delay_bound, instructions_per_frame);
}

int
aheadOffset(int max_frames, int num_active_frames, int q_inet)
{
    return max_frames - (num_active_frames + q_inet);
}

} // namespace rockcress
