/**
 * @file
 * The compiler-driven implicit synchronization math of Section 4.2.
 *
 * The inet forms a bounded queue, so any two instructions in the
 * pipelines of any two cores of an m x m vector group are separated
 * by at most
 *
 *     n = (2m - 2) * q_inet + sum_i buf_i + ROB
 *
 * dynamic instructions. From n the compiler derives how many frames
 * may be in flight and how far ahead the scalar core may run:
 *
 *     num_active_frames = ceil(n / instructions_per_frame)
 *     ahead_offset = max_frames - (num_active_frames + q_inet)
 */

#ifndef ROCKCRESS_COMPILER_SYNC_HH
#define ROCKCRESS_COMPILER_SYNC_HH

#include "machine/params.hh"

namespace rockcress
{

/** Pipeline buffering visible to the sync bound. */
struct SyncParams
{
    int qInet = 2;          ///< inet queue entries.
    int pipelineBufs = 4;   ///< Sum of decode/rename/issue/commit bufs.
    int robEntries = 8;
};

/** Extract SyncParams from a machine configuration. */
SyncParams syncParams(const MachineParams &params);

/**
 * Maximum dynamic-instruction separation between any two cores of a
 * group whose longest forwarding path has `hops` links
 * (for an m x m group, hops = 2m - 2; for a linear chain of k vector
 * cores, hops = k - 1).
 */
int instructionDelayBound(const SyncParams &p, int hops);

/** Frames that can be receiving data simultaneously. */
int numActiveFrames(int delay_bound, int instructions_per_frame);

/**
 * How many frames the scalar core can safely run ahead given
 * max_frames hardware counters (Section 4.2). Can be <= 0 when the
 * microthreads are too short for the configured counter count; the
 * hardware guard then paces the scalar core dynamically.
 */
int aheadOffset(int max_frames, int num_active_frames, int q_inet);

} // namespace rockcress

#endif // ROCKCRESS_COMPILER_SYNC_HH
