#include "exp/result_io.hh"

#include <charconv>

namespace rockcress
{

namespace
{

Json
mapToJson(const std::map<int, std::uint64_t> &m)
{
    Json j = Json::object();
    for (const auto &[hop, count] : m)
        j[std::to_string(hop)] = Json(count);
    return j;
}

bool
mapFromJson(const Json &j, std::map<int, std::uint64_t> &out)
{
    if (!j.isObj())
        return false;
    out.clear();
    for (const auto &[key, v] : j.members()) {
        int hop = 0;
        auto [ptr, ec] =
            std::from_chars(key.data(), key.data() + key.size(), hop);
        if (ec != std::errc() || ptr != key.data() + key.size())
            return false;
        if (v.kind() != Json::Kind::Uint)
            return false;
        out[hop] = v.asU64();
    }
    return true;
}

bool
readU64(const Json &j, const char *name, std::uint64_t &out)
{
    if (!j.has(name) || j.at(name).kind() != Json::Kind::Uint)
        return false;
    out = j.at(name).asU64();
    return true;
}

bool
readDouble(const Json &j, const char *name, double &out)
{
    if (!j.has(name) || !j.at(name).isNumber())
        return false;
    out = j.at(name).asDouble();
    return true;
}

bool
readStr(const Json &j, const char *name, std::string &out)
{
    if (!j.has(name) || j.at(name).kind() != Json::Kind::Str)
        return false;
    out = j.at(name).asStr();
    return true;
}

bool
readBool(const Json &j, const char *name, bool &out)
{
    if (!j.has(name) || j.at(name).kind() != Json::Kind::Bool)
        return false;
    out = j.at(name).asBool();
    return true;
}

} // namespace

Json
resultToJson(const RunResult &r)
{
    Json j = Json::object();
    j["bench"] = Json(r.bench);
    j["config"] = Json(r.config);
    j["ok"] = Json(r.ok);
    j["error"] = Json(r.error);
    j["cycles"] = Json(r.cycles);
    j["energyPj"] = Json(r.energyPj);

    Json e = Json::object();
    e["fetch"] = Json(r.energy.fetch);
    e["pipeline"] = Json(r.energy.pipeline);
    e["functional"] = Json(r.energy.functional);
    e["memOps"] = Json(r.energy.memOps);
    e["spad"] = Json(r.energy.spad);
    e["llc"] = Json(r.energy.llc);
    e["inet"] = Json(r.energy.inet);
    e["noc"] = Json(r.energy.noc);
    j["energy"] = std::move(e);

    j["icacheAccesses"] = Json(r.icacheAccesses);
    j["issued"] = Json(r.issued);
    j["vloadBytes"] = Json(r.vloadBytes);
    j["nocWordHops"] = Json(r.nocWordHops);
    j["coreCycles"] = Json(r.coreCycles);
    j["stallFrame"] = Json(r.stallFrame);
    j["stallInet"] = Json(r.stallInet);
    j["stallBackpressure"] = Json(r.stallBackpressure);
    j["stallOther"] = Json(r.stallOther);
    j["expCycles"] = Json(r.expCycles);
    j["expIssued"] = Json(r.expIssued);
    j["expStallFrame"] = Json(r.expStallFrame);
    j["expStallInet"] = Json(r.expStallInet);
    j["expStallOther"] = Json(r.expStallOther);
    j["llcMissRate"] = Json(r.llcMissRate);
    j["hopInetStalls"] = mapToJson(r.hopInetStalls);
    j["hopBackpressure"] = mapToJson(r.hopBackpressure);
    j["hopCycles"] = mapToJson(r.hopCycles);
    j["vectorCycles"] = Json(r.vectorCycles);
    j["frameStallVector"] = Json(r.frameStallVector);
    j["staticIpcBound"] = Json(r.staticIpcBound);
    j["measuredIpc"] = Json(r.measuredIpc);
    j["spSanViolations"] = Json(r.spSanViolations);
    // Only traced runs carry a trace object, so untraced artifacts —
    // including the golden snapshots — keep the pre-trace format
    // byte for byte.
    if (r.trace.enabled) {
        Json t = Json::object();
        t["events"] = Json(r.trace.events);
        t["dropped"] = Json(r.trace.dropped);
        t["coreSpans"] = Json(r.trace.coreSpans);
        t["frameEvents"] = Json(r.trace.frameEvents);
        t["nocLinkEvents"] = Json(r.trace.nocLinkEvents);
        t["inetHopEvents"] = Json(r.trace.inetHopEvents);
        t["llcEvents"] = Json(r.trace.llcEvents);
        t["fullCoverage"] = Json(r.trace.fullCoverage);
        t["cpiCrossChecked"] = Json(r.trace.cpiCrossChecked);
        j["trace"] = std::move(t);
    }
    // Only paused / checkpointing runs carry the checkpoint fields,
    // keeping complete-run artifacts byte-stable.
    if (r.partial)
        j["partial"] = Json(true);
    if (!r.checkpoints.empty()) {
        Json c = Json::array();
        for (const std::string &p : r.checkpoints)
            c.push(Json(p));
        j["checkpoints"] = std::move(c);
    }
    // Same pattern for translation validation: only runs that asked
    // for the verdict carry an equiv object.
    if (r.equiv.checked) {
        Json q = Json::object();
        q["streams"] = Json(static_cast<std::uint64_t>(r.equiv.streams));
        q["proved"] = Json(static_cast<std::uint64_t>(r.equiv.proved));
        Json w = Json::array();
        for (const std::string &s : r.equiv.witnesses)
            w.push(Json(s));
        q["witnesses"] = std::move(w);
        j["equiv"] = std::move(q);
    }
    return j;
}

bool
resultFromJson(const Json &j, RunResult &out)
{
    if (!j.isObj())
        return false;
    RunResult r;
    bool ok = readStr(j, "bench", r.bench) &&
              readStr(j, "config", r.config) &&
              readBool(j, "ok", r.ok) &&
              readStr(j, "error", r.error) &&
              readU64(j, "cycles", r.cycles) &&
              readDouble(j, "energyPj", r.energyPj) &&
              j.has("energy") && j.at("energy").isObj();
    if (!ok)
        return false;
    const Json &e = j.at("energy");
    ok = readDouble(e, "fetch", r.energy.fetch) &&
         readDouble(e, "pipeline", r.energy.pipeline) &&
         readDouble(e, "functional", r.energy.functional) &&
         readDouble(e, "memOps", r.energy.memOps) &&
         readDouble(e, "spad", r.energy.spad) &&
         readDouble(e, "llc", r.energy.llc) &&
         readDouble(e, "inet", r.energy.inet) &&
         readDouble(e, "noc", r.energy.noc);
    if (!ok)
        return false;
    ok = readU64(j, "icacheAccesses", r.icacheAccesses) &&
         readU64(j, "issued", r.issued) &&
         readU64(j, "vloadBytes", r.vloadBytes) &&
         readU64(j, "nocWordHops", r.nocWordHops) &&
         readU64(j, "coreCycles", r.coreCycles) &&
         readU64(j, "stallFrame", r.stallFrame) &&
         readU64(j, "stallInet", r.stallInet) &&
         readU64(j, "stallBackpressure", r.stallBackpressure) &&
         readU64(j, "stallOther", r.stallOther) &&
         readU64(j, "expCycles", r.expCycles) &&
         readU64(j, "expIssued", r.expIssued) &&
         readU64(j, "expStallFrame", r.expStallFrame) &&
         readU64(j, "expStallInet", r.expStallInet) &&
         readU64(j, "expStallOther", r.expStallOther) &&
         readDouble(j, "llcMissRate", r.llcMissRate) &&
         readU64(j, "vectorCycles", r.vectorCycles) &&
         readU64(j, "frameStallVector", r.frameStallVector) &&
         readDouble(j, "staticIpcBound", r.staticIpcBound) &&
         readDouble(j, "measuredIpc", r.measuredIpc) &&
         readU64(j, "spSanViolations", r.spSanViolations);
    if (!ok)
        return false;
    if (!j.has("hopInetStalls") ||
        !mapFromJson(j.at("hopInetStalls"), r.hopInetStalls))
        return false;
    if (!j.has("hopBackpressure") ||
        !mapFromJson(j.at("hopBackpressure"), r.hopBackpressure))
        return false;
    if (!j.has("hopCycles") ||
        !mapFromJson(j.at("hopCycles"), r.hopCycles))
        return false;
    if (j.has("trace")) {
        const Json &t = j.at("trace");
        if (!t.isObj())
            return false;
        r.trace.enabled = true;
        ok = readU64(t, "events", r.trace.events) &&
             readU64(t, "dropped", r.trace.dropped) &&
             readU64(t, "coreSpans", r.trace.coreSpans) &&
             readU64(t, "frameEvents", r.trace.frameEvents) &&
             readU64(t, "nocLinkEvents", r.trace.nocLinkEvents) &&
             readU64(t, "inetHopEvents", r.trace.inetHopEvents) &&
             readU64(t, "llcEvents", r.trace.llcEvents) &&
             readBool(t, "fullCoverage", r.trace.fullCoverage) &&
             readBool(t, "cpiCrossChecked", r.trace.cpiCrossChecked);
        if (!ok)
            return false;
    }
    if (j.has("partial")) {
        if (!readBool(j, "partial", r.partial))
            return false;
    }
    if (j.has("checkpoints")) {
        const Json &c = j.at("checkpoints");
        if (!c.isArr())
            return false;
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (c.at(i).kind() != Json::Kind::Str)
                return false;
            r.checkpoints.push_back(c.at(i).asStr());
        }
    }
    if (j.has("equiv")) {
        const Json &q = j.at("equiv");
        if (!q.isObj())
            return false;
        r.equiv.checked = true;
        std::uint64_t streams = 0, proved = 0;
        if (!readU64(q, "streams", streams) ||
            !readU64(q, "proved", proved) || !q.has("witnesses") ||
            !q.at("witnesses").isArr()) {
            return false;
        }
        r.equiv.streams = static_cast<int>(streams);
        r.equiv.proved = static_cast<int>(proved);
        const Json &w = q.at("witnesses");
        for (std::size_t i = 0; i < w.size(); ++i) {
            if (w.at(i).kind() != Json::Kind::Str)
                return false;
            r.equiv.witnesses.push_back(w.at(i).asStr());
        }
    }
    out = std::move(r);
    return true;
}

Json
overridesToJson(const RunOverrides &o)
{
    Json j = Json::object();
    j["cols"] = Json(static_cast<std::uint64_t>(o.cols));
    j["rows"] = Json(static_cast<std::uint64_t>(o.rows));
    j["dramBytesPerCycle"] = Json(o.dramBytesPerCycle);
    j["llcBankBytes"] = Json(static_cast<std::uint64_t>(o.llcBankBytes));
    j["nocWidthWords"] =
        Json(static_cast<std::uint64_t>(o.nocWidthWords));
    j["maxCycles"] = Json(o.maxCycles);
    j["naiveTick"] = Json(o.naiveTick);
    j["verify"] = Json(o.verify);
    j["equiv"] = Json(o.equiv);
    j["cosim"] = Json(o.cosim);
    j["cosimStrictLoads"] = Json(o.cosimStrictLoads);
    j["perfLint"] = Json(o.perfLint);
    j["perfLintMinFraction"] = Json(o.perfLintMinFraction);
    j["spSan"] = Json(o.spSan);
    j["trace"] = Json(o.trace);
    j["traceStartCycle"] = Json(o.traceStartCycle);
    j["traceMaxEvents"] = Json(o.traceMaxEvents);
    // Checkpoint knobs appear only when set, so pre-checkpoint cache
    // keys (exp/engine.cc hashes this document) stay byte-stable.
    if (o.stopAtCycle != 0)
        j["stopAtCycle"] = Json(o.stopAtCycle);
    if (o.checkpointEveryN != 0)
        j["checkpointEveryN"] = Json(o.checkpointEveryN);
    if (!o.resumeFrom.empty())
        j["resumeFrom"] = Json(o.resumeFrom);
    if (!o.ckptDir.empty())
        j["ckptDir"] = Json(o.ckptDir);
    if (!o.ckptTag.empty())
        j["ckptTag"] = Json(o.ckptTag);
    return j;
}

} // namespace rockcress
