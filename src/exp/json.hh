/**
 * @file
 * A minimal JSON value type for the experiment engine's run
 * artifacts: objects, arrays, strings, booleans, and numbers, with a
 * deterministic (sorted-key) serializer and a strict parser. Numbers
 * that arrive as non-negative integers are kept as exact uint64 so
 * cycle and event counters round-trip bit-identically.
 */

#ifndef ROCKCRESS_EXP_JSON_HH
#define ROCKCRESS_EXP_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rockcress
{

/** One JSON value (recursive). */
class Json
{
  public:
    enum class Kind { Null, Bool, Uint, Double, Str, Arr, Obj };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(std::uint64_t u) : kind_(Kind::Uint), uint_(u) {}
    Json(double d) : kind_(Kind::Double), double_(d) {}
    Json(std::string s) : kind_(Kind::Str), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::Str), str_(s) {}

    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isObj() const { return kind_ == Kind::Obj; }
    bool isArr() const { return kind_ == Kind::Arr; }
    bool isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Double;
    }

    /** @name Readers (fatal on kind mismatch). */
    ///@{
    bool asBool() const;
    std::uint64_t asU64() const;
    /** Any number (uint or double) as double. */
    double asDouble() const;
    const std::string &asStr() const;
    ///@}

    /** @name Object access. */
    ///@{
    /** Set (creating) a member; value must be an object. */
    Json &operator[](const std::string &key);
    bool has(const std::string &key) const;
    /** Read a member; fatal if missing or not an object. */
    const Json &at(const std::string &key) const;
    const std::map<std::string, Json> &members() const;
    ///@}

    /** @name Array access. */
    ///@{
    void push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    ///@}

    /** Serialize (deterministic: object keys sorted). */
    std::string dump() const;

    /**
     * Parse a complete JSON document.
     * @return false on any syntax error or trailing garbage.
     */
    static bool parse(const std::string &text, Json &out);

    bool operator==(const Json &) const = default;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    double double_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

} // namespace rockcress

#endif // ROCKCRESS_EXP_JSON_HH
