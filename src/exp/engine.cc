#include "exp/engine.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "exp/hash.hh"
#include "exp/pool.hh"
#include "exp/result_io.hh"
#include "gpu/gpu.hh"
#include "sim/checkpoint.hh"
#include "sim/log.hh"

namespace rockcress
{

int
jobsFromEnv()
{
    if (const char *env = std::getenv("ROCKCRESS_JOBS")) {
        // Strict parse: the whole string must be one integer in
        // range, so "4abc" or "" warn instead of silently running
        // with whatever prefix atoi happened to accept.
        errno = 0;
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (errno == 0 && end != env && *end == '\0' && v >= 1 &&
            v <= 4096)
            return static_cast<int>(v);
        warn("exp: ignoring ROCKCRESS_JOBS='", env,
             "' (want an integer in [1, 4096])");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace
{

std::string
cacheDirFromEnv()
{
    const char *env = std::getenv("ROCKCRESS_CACHE_DIR");
    return env ? std::string(env) : std::string();
}

bool
auditDefault()
{
    if (const char *env = std::getenv("ROCKCRESS_AUDIT")) {
        errno = 0;
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (errno == 0 && end != env && *end == '\0')
            return v != 0;
        warn("exp: ignoring ROCKCRESS_AUDIT='", env,
             "' (want an integer)");
    }
#ifndef NDEBUG
    return true;
#else
    return false;
#endif
}

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/** Absorb an assembled program: instruction words + entry points. */
void
hashProgram(Sha256 &h, const Program &program)
{
    h.updateU64(static_cast<std::uint64_t>(program.size()));
    for (const Instruction &inst : program.code) {
        Encoded e = encode(inst);
        h.updateU64(e.w0);
        h.updateU64(e.w1);
        h.updateU64(e.w2);
    }
    for (const auto &[symbol, pc] : program.symbols) {
        h.update(symbol);
        h.update("\0", 1);
        h.updateU64(static_cast<std::uint64_t>(pc));
    }
}

} // namespace

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options{}) {}

ExperimentEngine::ExperimentEngine(Options opts)
    : jobs_(opts.jobs >= 1 ? opts.jobs : jobsFromEnv()),
      cache_(opts.cacheDir.empty() ? cacheDirFromEnv()
                                   : opts.cacheDir),
      progress_(opts.progress),
      audit_(opts.audit < 0 ? auditDefault() : opts.audit != 0)
{
}

RunResult
ExperimentEngine::runPoint(const RunPoint &point)
{
    if (point.isGpu())
        return runGpu(point.bench);
    return runManycore(point.bench, point.config, point.overrides);
}

std::string
ExperimentEngine::cacheKey(const RunPoint &point)
{
    Sha256 h;
    h.update("rockcress-exp-cache-v1\n");
    h.update(point.bench);
    h.update("\0", 1);
    h.update(point.config);
    h.update("\0", 1);
    h.update(overridesToJson(point.overrides).dump());

    try {
        auto benchmark = makeBenchmark(point.bench);
        if (point.isGpu()) {
            GpuMachine gpu;
            Heap heap(GpuParams{}.heapBytes);
            benchmark->setup(gpu.mem(), heap);
            GpuProgram program = benchmark->gpuProgram();
            h.updateU64(program.dispatches.size());
            for (const GpuKernelSpec &spec : program.dispatches) {
                h.updateU64(static_cast<std::uint64_t>(spec.threads));
                // Assemble exactly as GpuMachine::runDispatch does.
                Assembler as("gpu_dispatch");
                spec.emit(as);
                as.halt();
                hashProgram(h, as.finish());
            }
        } else {
            BenchConfig cfg = configByName(point.config);
            MachineParams params = machineFor(
                cfg, point.overrides.cols, point.overrides.rows);
            params.dramBytesPerCycle =
                point.overrides.dramBytesPerCycle;
            params.llcTotalBytes =
                point.overrides.llcBankBytes *
                static_cast<Addr>(params.numBanks());
            params.nocWidthWords = point.overrides.nocWidthWords;
            Machine machine(params);
            auto program = benchmark->prepare(machine, cfg);
            hashProgram(h, *program);
        }
    } catch (const std::exception &) {
        // Unassemblable point: bypass the cache, let the simulation
        // path produce the error result.
        return std::string();
    }
    return h.hex();
}

RunResult
ExperimentEngine::runSegmented(const RunPoint &point,
                               Cycle segmentCycles)
{
    // GPU runs have no checkpointable machine; cosim/trace observers
    // are process-local history resumeFrom rejects by design.
    if (point.isGpu() || segmentCycles == 0 ||
        point.overrides.cosim || point.overrides.trace)
        return runPoint(point);

    // Identity of the whole point, independent of how it is sharded:
    // the checkpoint knobs are stripped before hashing, so a
    // segmented and an unsegmented run share one cache entry.
    RunPoint base = point;
    base.overrides.stopAtCycle = 0;
    base.overrides.checkpointEveryN = 0;
    base.overrides.resumeFrom.clear();
    base.overrides.ckptDir.clear();
    base.overrides.ckptTag.clear();
    std::string key = cacheKey(base);
    if (key.empty())
        return runPoint(base);  // Unassemblable: surface the error.
    RunResult cached;
    if (cache_.enabled() && cache_.load(key, cached))
        return cached;

    std::string dir = point.overrides.ckptDir;
    if (dir.empty()) {
        const char *env = std::getenv("ROCKCRESS_CKPT_DIR");
        dir = (env != nullptr && *env != '\0') ? env : ".";
    }
    // Segment files are content-addressed by (program, config,
    // boundary cycle): the key prefix names the point, the runner's
    // `_c<cycle>` suffix names the segment.
    std::string tag = "seg_" + key.substr(0, 16);
    auto segPath = [&](std::uint64_t boundary) {
        return dir + "/" + tag + "_c" +
               std::to_string(boundary * segmentCycles) + ".rkcp";
    };

    // Resume from the newest intact boundary file, if any.
    std::uint64_t seg = 0;
    for (std::uint64_t i = 1;; ++i) {
        try {
            peekCheckpoint(readCheckpointFile(segPath(i)));
        } catch (const std::exception &) {
            break;
        }
        seg = i;
    }

    bool retried_cold = false;
    RunResult r;
    for (;;) {
        RunOverrides ov = base.overrides;
        ov.checkpointEveryN = segmentCycles;
        ov.stopAtCycle = (seg + 1) * segmentCycles;
        ov.ckptDir = dir;
        ov.ckptTag = tag;
        if (seg > 0)
            ov.resumeFrom = segPath(seg);
        r = runManycore(point.bench, point.config, ov);
        if (!r.ok) {
            // A stale or corrupt segment file (frame-intact but from
            // another program/geometry) fails restore; fall back to a
            // cold start once rather than trusting it.
            if (seg > 0 && !retried_cold) {
                retried_cold = true;
                seg = 0;
                continue;
            }
            return r;
        }
        if (!r.partial)
            break;
        ++seg;
    }
    // The checkpoint files are segmentation plumbing, not part of the
    // point's artifact: the returned result is byte-identical to an
    // unsegmented run.
    r.checkpoints.clear();
    if (cache_.enabled() && r.ok)
        cache_.store(key, r);
    return r;
}

std::vector<RunResult>
ExperimentEngine::sweep(const std::vector<RunPoint> &points)
{
    auto sweepStart = std::chrono::steady_clock::now();
    std::size_t n = points.size();
    std::vector<RunResult> results(n);

    // Collapse duplicate points: cross-figure duplicates are caught
    // by the on-disk cache, intra-sweep duplicates right here.
    std::vector<std::size_t> canonical(n);
    std::vector<std::size_t> unique;
    for (std::size_t i = 0; i < n; ++i) {
        canonical[i] = i;
        for (std::size_t u : unique) {
            if (points[u] == points[i]) {
                canonical[i] = u;
                break;
            }
        }
        if (canonical[i] == i)
            unique.push_back(i);
    }

    SweepStats stats;
    stats.jobs = static_cast<int>(unique.size());
    stats.duplicates = static_cast<int>(n - unique.size());

    std::mutex progressMutex;
    int done = 0;
    double wallSum = 0;

    {
        ThreadPool pool(jobs_);
        for (std::size_t u : unique) {
            pool.submit([&, u] {
                auto t0 = std::chrono::steady_clock::now();
                const RunPoint &point = points[u];
                bool hit = false;
                RunResult r;
                std::string key;
                try {
                    if (cache_.enabled())
                        key = cacheKey(point);
                    hit = cache_.load(key, r);
                    if (!hit) {
                        r = runPoint(point);
                        if (r.ok)
                            cache_.store(key, r);
                    }
                } catch (const std::exception &e) {
                    r.bench = point.bench;
                    r.config = point.config;
                    r.ok = false;
                    r.error = e.what();
                }
                results[u] = std::move(r);
                double wall =
                    seconds(std::chrono::steady_clock::now() - t0);

                std::lock_guard<std::mutex> lock(progressMutex);
                ++done;
                if (hit)
                    ++stats.cacheHits;
                else
                    ++stats.simulated;
                wallSum += wall;
                if (progress_) {
                    double avg = wallSum / done;
                    double eta = avg *
                                 static_cast<double>(stats.jobs - done) /
                                 static_cast<double>(jobs_);
                    std::fprintf(stderr,
                                 "[exp] %d/%d %s/%s %.2fs%s "
                                 "(hits %d) eta %.0fs\n",
                                 done, stats.jobs, point.bench.c_str(),
                                 point.config.c_str(), wall,
                                 hit ? " [cached]" : "",
                                 stats.cacheHits, eta);
                }
            });
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < n; ++i)
        if (canonical[i] != i)
            results[i] = results[canonical[i]];

    stats.wallSeconds =
        seconds(std::chrono::steady_clock::now() - sweepStart);
    last_ = stats;
    if (progress_) {
        std::fprintf(stderr,
                     "[exp] sweep done: %d jobs, %d duplicates, "
                     "%d cache hits, %d simulated, wall %.2fs\n",
                     stats.jobs, stats.duplicates, stats.cacheHits,
                     stats.simulated, stats.wallSeconds);
    }

    // Determinism audit: a pooled simulation must be bit-identical to
    // the same point run serially on this thread. A mismatch means
    // mutable state is shared across concurrent simulations.
    if (audit_ && jobs_ > 1) {
        for (std::size_t u : unique) {
            RunResult serial = runPoint(points[u]);
            if (!(serial == results[u]))
                panic("exp audit: parallel result for ",
                      points[u].bench, "/", points[u].config,
                      " differs from serial rerun — shared mutable "
                      "state in the simulator?");
            break; // One point: the audit is a spot check.
        }
    }
    return results;
}

} // namespace rockcress
