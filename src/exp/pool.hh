/**
 * @file
 * A work-stealing thread pool for independent simulation jobs. Each
 * worker owns a deque: it pops its own work from the front and steals
 * from the back of a victim's deque when empty, so large sweeps
 * balance across workers without a single contended queue.
 */

#ifndef ROCKCRESS_EXP_POOL_HH
#define ROCKCRESS_EXP_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rockcress
{

/** Fixed-size work-stealing pool; jobs must not throw. */
class ThreadPool
{
  public:
    /** @param threads Worker count; clamped to at least 1. */
    explicit ThreadPool(int threads);

    /** Drains remaining jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job (round-robin across worker deques). */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    int threads() const { return static_cast<int>(workers_.size()); }

  private:
    struct Deque
    {
        std::mutex mutex;
        std::deque<std::function<void()>> jobs;
    };

    void workerLoop(std::size_t self);
    bool take(std::size_t self, std::function<void()> &job);

    std::vector<std::unique_ptr<Deque>> deques_;
    std::vector<std::thread> workers_;

    std::mutex stateMutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0;  ///< Submitted but not yet finished.
    std::size_t nextDeque_ = 0;
    bool shutdown_ = false;
};

} // namespace rockcress

#endif // ROCKCRESS_EXP_POOL_HH
