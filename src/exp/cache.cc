#include "exp/cache.hh"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/result_io.hh"
#include "sim/log.hh"

namespace fs = std::filesystem;

namespace rockcress
{

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::entryPath(const std::string &keyHex) const
{
    return dir_ + "/" + keyHex + ".json";
}

bool
ResultCache::load(const std::string &keyHex, RunResult &out) const
{
    if (!enabled() || keyHex.empty())
        return false;
    std::ifstream in(entryPath(keyHex));
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();

    Json j;
    if (!Json::parse(text.str(), j) || !j.isObj())
        return false;
    if (!j.has("version") ||
        j.at("version").kind() != Json::Kind::Uint ||
        j.at("version").asU64() != version)
        return false;
    if (!j.has("key") || j.at("key").kind() != Json::Kind::Str ||
        j.at("key").asStr() != keyHex)
        return false;
    if (!j.has("result") || !resultFromJson(j.at("result"), out))
        return false;
    return true;
}

void
ResultCache::store(const std::string &keyHex, const RunResult &r) const
{
    if (!enabled() || keyHex.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        warn("exp cache: cannot create ", dir_, ": ", ec.message());
        return;
    }

    Json j = Json::object();
    j["version"] = Json(version);
    j["key"] = Json(keyHex);
    j["result"] = resultToJson(r);

    // Write-then-rename so a concurrent or interrupted writer never
    // leaves a half-written entry under the final name.
    std::string tmp = entryPath(keyHex) + ".tmp." +
                      std::to_string(::getpid());
    {
        std::ofstream outf(tmp, std::ios::trunc);
        if (!outf) {
            warn("exp cache: cannot write ", tmp);
            return;
        }
        outf << j.dump() << "\n";
    }
    fs::rename(tmp, entryPath(keyHex), ec);
    if (ec) {
        warn("exp cache: rename failed: ", ec.message());
        fs::remove(tmp, ec);
    }
}

} // namespace rockcress
