/**
 * @file
 * SHA-256 for content-addressing cached run results. A cache entry's
 * filename is the hex digest of everything that determines the run:
 * benchmark name, configuration, machine overrides, and the assembled
 * program bytes — so any change to kernels, codegen, or parameters
 * produces a different key and never resurrects a stale result.
 */

#ifndef ROCKCRESS_EXP_HASH_HH
#define ROCKCRESS_EXP_HASH_HH

#include <array>
#include <cstdint>
#include <string>

namespace rockcress
{

/** Incremental SHA-256 (FIPS 180-4). */
class Sha256
{
  public:
    Sha256();

    /** Absorb raw bytes. */
    void update(const void *data, std::size_t len);

    /** Absorb a string's bytes. */
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Absorb an integer in a fixed (little-endian) byte order. */
    void
    updateU64(std::uint64_t v)
    {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        update(b, sizeof(b));
    }

    /** Finalize and return the digest as lowercase hex. */
    std::string hex();

  private:
    void compress(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buf_;
    std::size_t bufLen_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/** One-shot hex digest of a string. */
std::string sha256Hex(const std::string &data);

} // namespace rockcress

#endif // ROCKCRESS_EXP_HASH_HH
