#include "exp/pool.hh"

#include <chrono>

namespace rockcress
{

ThreadPool::ThreadPool(int threads)
{
    std::size_t n = threads < 1 ? 1 : static_cast<std::size_t>(threads);
    deques_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        deques_.push_back(std::make_unique<Deque>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        shutdown_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        ++pending_;
        target = nextDeque_;
        nextDeque_ = (nextDeque_ + 1) % deques_.size();
    }
    {
        std::lock_guard<std::mutex> lock(deques_[target]->mutex);
        deques_[target]->jobs.push_back(std::move(job));
    }
    workReady_.notify_one();
}

bool
ThreadPool::take(std::size_t self, std::function<void()> &job)
{
    // Own deque first (front: LIFO locality is irrelevant here, but
    // front-of-own keeps submission order roughly intact)...
    {
        Deque &d = *deques_[self];
        std::lock_guard<std::mutex> lock(d.mutex);
        if (!d.jobs.empty()) {
            job = std::move(d.jobs.front());
            d.jobs.pop_front();
            return true;
        }
    }
    // ...then steal from the back of the other deques.
    for (std::size_t k = 1; k < deques_.size(); ++k) {
        Deque &d = *deques_[(self + k) % deques_.size()];
        std::lock_guard<std::mutex> lock(d.mutex);
        if (!d.jobs.empty()) {
            job = std::move(d.jobs.back());
            d.jobs.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    while (true) {
        std::function<void()> job;
        if (take(self, job)) {
            job();
            std::lock_guard<std::mutex> lock(stateMutex_);
            if (--pending_ == 0)
                allDone_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(stateMutex_);
        if (shutdown_)
            return;
        // Re-check under the lock: a submit may have raced the empty
        // scan above; waking spuriously is fine, missing work is not.
        workReady_.wait_for(lock, std::chrono::milliseconds(50));
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

} // namespace rockcress
