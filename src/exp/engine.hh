/**
 * @file
 * The experiment engine: runs a sweep of independent simulation
 * points on a work-stealing thread pool, memoizes finished runs in a
 * content-addressed on-disk cache, and reports structured progress
 * (done/total, per-job wall time, ETA, cache hits) to stderr.
 *
 * Every simulation is self-contained — a fresh Machine, its own
 * StatRegistry, its own RNG — so points parallelize without touching
 * the tick loop, and results are deterministic regardless of
 * completion order: sweep() returns results in point order, and a
 * debug-build audit re-runs one pooled point serially and asserts the
 * two results are field-identical (guards against mutable global
 * state creeping into the simulator).
 *
 * Environment knobs:
 *   ROCKCRESS_JOBS       worker threads (default: hardware threads)
 *   ROCKCRESS_CACHE_DIR  result cache directory (default: disabled)
 */

#ifndef ROCKCRESS_EXP_ENGINE_HH
#define ROCKCRESS_EXP_ENGINE_HH

#include <string>
#include <vector>

#include "exp/cache.hh"
#include "harness/runner.hh"

namespace rockcress
{

/** One simulation to run: a (bench, config, overrides) coordinate. */
struct RunPoint
{
    std::string bench;
    std::string config;  ///< Table 3 name, or "GPU" for the GPU model.
    RunOverrides overrides;

    bool isGpu() const { return config == "GPU"; }
    bool operator==(const RunPoint &) const = default;
};

/** What one sweep did (for smoke tests and wall-time reporting). */
struct SweepStats
{
    int jobs = 0;       ///< Points submitted (after deduplication).
    int duplicates = 0; ///< Points collapsed onto an earlier twin.
    int cacheHits = 0;
    int simulated = 0;
    double wallSeconds = 0;
};

/**
 * Worker-thread count from ROCKCRESS_JOBS: a strict full-string
 * integer parse in [1, 4096]. Anything else — a partial number like
 * "4abc", zero, negatives, overflow — warns and falls back to the
 * hardware concurrency (1 when unknown).
 */
int jobsFromEnv();

/** Thread-pooled, cache-memoized sweep runner. */
class ExperimentEngine
{
  public:
    struct Options
    {
        int jobs = 0;          ///< <= 0: ROCKCRESS_JOBS / hardware.
        std::string cacheDir;  ///< Empty: ROCKCRESS_CACHE_DIR / off.
        bool progress = true;  ///< Structured progress on stderr.
        /**
         * Re-run one pooled point serially after the sweep and
         * assert bit-identical results. -1 = auto: on in debug
         * builds and when ROCKCRESS_AUDIT=1; 0/1 force off/on.
         */
        int audit = -1;
    };

    /** Engine configured entirely from the environment. */
    ExperimentEngine();
    explicit ExperimentEngine(Options opts);

    /**
     * Run every point and return results in point order (identical
     * points are simulated once and share one result). Failures are
     * returned as !ok results, never thrown.
     */
    std::vector<RunResult> sweep(const std::vector<RunPoint> &points);

    /** Statistics of the most recent sweep(). */
    const SweepStats &lastSweep() const { return last_; }

    int jobs() const { return jobs_; }
    bool cacheEnabled() const { return cache_.enabled(); }

    /**
     * The content-addressed cache key of a point: SHA-256 over the
     * engine format version, bench and config names, every override
     * field, and the assembled program bytes (so kernel or codegen
     * changes can never resurrect a stale result). Empty if the
     * program cannot be assembled — such points bypass the cache.
     */
    static std::string cacheKey(const RunPoint &point);

    /** Run one point inline, no pool/cache (for audits and tests). */
    static RunResult runPoint(const RunPoint &point);

    /**
     * Run one manycore point in resumable segments of segmentCycles
     * cycles. Each segment boundary writes a checkpoint file into the
     * point's checkpoint directory ($ROCKCRESS_CKPT_DIR unless the
     * overrides name one), content-addressed by the point's cache key
     * and the boundary cycle; an interrupted sweep restarted later
     * resumes from the newest intact segment instead of simulating
     * from cycle 0. The returned result is the completing segment's,
     * with the intermediate checkpoint bookkeeping stripped, and is
     * byte-identical (through resultToJson) to an unsegmented run of
     * the same point. Points the segment machinery cannot shard — GPU
     * runs, cosim or trace observers (process-local history), or a
     * zero segmentCycles — fall back to one straight runPoint. A
     * stale or corrupt segment file is discarded and the point rerun
     * from cycle 0, never trusted.
     */
    RunResult runSegmented(const RunPoint &point, Cycle segmentCycles);

  private:
    int jobs_;
    ResultCache cache_;
    bool progress_;
    bool audit_;
    SweepStats last_;
};

} // namespace rockcress

#endif // ROCKCRESS_EXP_ENGINE_HH
