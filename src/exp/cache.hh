/**
 * @file
 * Content-addressed on-disk result cache. Entries are JSON run
 * artifacts named by the SHA-256 of everything that determines the
 * run (see ExperimentEngine::cacheKey); an entry carries its format
 * version and its own key, and any mismatch, truncation, or parse
 * failure is a miss — a damaged entry is re-simulated, never trusted.
 */

#ifndef ROCKCRESS_EXP_CACHE_HH
#define ROCKCRESS_EXP_CACHE_HH

#include <string>

#include "harness/runner.hh"

namespace rockcress
{

/** Result cache rooted at a directory; empty directory = disabled. */
class ResultCache
{
  public:
    /** On-disk format version; bump on any RunResult schema change. */
    static constexpr std::uint64_t version = 1;

    /**
     * @param dir Cache directory (created on first store). Empty
     *            disables the cache entirely.
     */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }

    /**
     * Look up a result by key.
     * @return true on a valid hit; false on miss or a corrupt,
     *         truncated, or mismatched entry.
     */
    bool load(const std::string &keyHex, RunResult &out) const;

    /** Store a result (atomic write-then-rename; best-effort). */
    void store(const std::string &keyHex, const RunResult &r) const;

    /** The path an entry would live at (for tests). */
    std::string entryPath(const std::string &keyHex) const;

  private:
    std::string dir_;
};

} // namespace rockcress

#endif // ROCKCRESS_EXP_CACHE_HH
