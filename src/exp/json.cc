#include "exp/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "sim/log.hh"

namespace rockcress
{

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Arr;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Obj;
    return j;
}

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("json: not a bool");
    return bool_;
}

std::uint64_t
Json::asU64() const
{
    if (kind_ == Kind::Uint)
        return uint_;
    fatal("json: not an unsigned integer");
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Uint)
        return static_cast<double>(uint_);
    if (kind_ == Kind::Double)
        return double_;
    fatal("json: not a number");
}

const std::string &
Json::asStr() const
{
    if (kind_ != Kind::Str)
        fatal("json: not a string");
    return str_;
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Obj;
    if (kind_ != Kind::Obj)
        fatal("json: not an object");
    return obj_[key];
}

bool
Json::has(const std::string &key) const
{
    return kind_ == Kind::Obj && obj_.count(key) > 0;
}

const Json &
Json::at(const std::string &key) const
{
    if (kind_ != Kind::Obj)
        fatal("json: not an object");
    auto it = obj_.find(key);
    if (it == obj_.end())
        fatal("json: missing member '", key, "'");
    return it->second;
}

const std::map<std::string, Json> &
Json::members() const
{
    if (kind_ != Kind::Obj)
        fatal("json: not an object");
    return obj_;
}

void
Json::push(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Arr;
    if (kind_ != Kind::Arr)
        fatal("json: not an array");
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Arr)
        return arr_.size();
    if (kind_ == Kind::Obj)
        return obj_.size();
    fatal("json: not a container");
}

const Json &
Json::at(std::size_t i) const
{
    if (kind_ != Kind::Arr)
        fatal("json: not an array");
    if (i >= arr_.size())
        fatal("json: index out of range");
    return arr_[i];
}

namespace
{

void
dumpString(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
Json::dump() const
{
    std::string out;
    switch (kind_) {
    case Kind::Null:
        out = "null";
        break;
    case Kind::Bool:
        out = bool_ ? "true" : "false";
        break;
    case Kind::Uint:
        out = std::to_string(uint_);
        break;
    case Kind::Double: {
        // Round-trip precision; JSON has no inf/nan, encode as null.
        if (!std::isfinite(double_)) {
            out = "null";
            break;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out = buf;
        // Mark as floating point so the parser keeps the kind.
        if (out.find_first_of(".eE") == std::string::npos)
            out += ".0";
        break;
    }
    case Kind::Str:
        dumpString(str_, out);
        break;
    case Kind::Arr: {
        out = "[";
        bool first = true;
        for (const Json &v : arr_) {
            if (!first)
                out += ",";
            first = false;
            out += v.dump();
        }
        out += "]";
        break;
    }
    case Kind::Obj: {
        out = "{";
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out += ",";
            first = false;
            dumpString(k, out);
            out += ":";
            out += v.dump();
        }
        out += "}";
        break;
    }
    }
    return out;
}

namespace
{

/** Recursive-descent parser over a text span. */
struct Parser
{
    const char *p;
    const char *end;
    int depth = 0;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (static_cast<std::size_t>(end - p) < n ||
            std::memcmp(p, lit, n) != 0)
            return false;
        p += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                return false;
            char e = *p++;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (end - p < 4)
                    return false;
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Only the escapes dump() emits (< 0x20) round-trip.
                if (v > 0xff)
                    return false;
                out += static_cast<char>(v);
                break;
            }
            default:
                return false;
            }
        }
        if (p >= end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(Json &out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                           *p == '.' || *p == 'e' || *p == 'E' ||
                           *p == '+' || *p == '-'))
            ++p;
        std::string tok(start, p);
        if (tok.empty())
            return false;
        bool integral =
            tok.find_first_of(".eE") == std::string::npos;
        if (integral && tok[0] != '-') {
            std::uint64_t u = 0;
            auto [ptr, ec] =
                std::from_chars(tok.data(), tok.data() + tok.size(), u);
            if (ec != std::errc() || ptr != tok.data() + tok.size())
                return false;
            out = Json(u);
            return true;
        }
        try {
            std::size_t used = 0;
            double d = std::stod(tok, &used);
            if (used != tok.size())
                return false;
            out = Json(d);
            return true;
        } catch (const std::exception &) {
            return false;
        }
    }

    bool
    parseValue(Json &out)
    {
        if (++depth > 64)
            return false;
        skipWs();
        if (p >= end) {
            --depth;
            return false;
        }
        bool ok = false;
        if (*p == '{') {
            ++p;
            out = Json::object();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                ok = true;
            } else {
                while (true) {
                    skipWs();
                    std::string key;
                    if (!parseString(key))
                        break;
                    skipWs();
                    if (p >= end || *p != ':')
                        break;
                    ++p;
                    Json v;
                    if (!parseValue(v))
                        break;
                    out[key] = std::move(v);
                    skipWs();
                    if (p < end && *p == ',') {
                        ++p;
                        continue;
                    }
                    if (p < end && *p == '}') {
                        ++p;
                        ok = true;
                    }
                    break;
                }
            }
        } else if (*p == '[') {
            ++p;
            out = Json::array();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                ok = true;
            } else {
                while (true) {
                    Json v;
                    if (!parseValue(v))
                        break;
                    out.push(std::move(v));
                    skipWs();
                    if (p < end && *p == ',') {
                        ++p;
                        continue;
                    }
                    if (p < end && *p == ']') {
                        ++p;
                        ok = true;
                    }
                    break;
                }
            }
        } else if (*p == '"') {
            std::string s;
            ok = parseString(s);
            if (ok)
                out = Json(std::move(s));
        } else if (literal("true")) {
            out = Json(true);
            ok = true;
        } else if (literal("false")) {
            out = Json(false);
            ok = true;
        } else if (literal("null")) {
            out = Json();
            ok = true;
        } else {
            ok = parseNumber(out);
        }
        --depth;
        return ok;
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json &out)
{
    Parser parser{text.data(), text.data() + text.size()};
    Json v;
    if (!parser.parseValue(v))
        return false;
    parser.skipWs();
    if (parser.p != parser.end)
        return false; // trailing garbage
    out = std::move(v);
    return true;
}

} // namespace rockcress
