/**
 * @file
 * JSON (de)serialization of RunResult and RunOverrides: the on-disk
 * format of the experiment engine's run artifacts and result cache.
 * Every field round-trips bit-identically (counters as exact uint64,
 * energies at full double precision, the per-hop maps as objects).
 */

#ifndef ROCKCRESS_EXP_RESULT_IO_HH
#define ROCKCRESS_EXP_RESULT_IO_HH

#include "exp/json.hh"
#include "harness/runner.hh"

namespace rockcress
{

/** Serialize a run result (all fields, including hop maps). */
Json resultToJson(const RunResult &r);

/**
 * Deserialize a run result.
 * @return false if any field is missing or has the wrong type — the
 *         caller must treat the artifact as corrupt, never partial.
 */
bool resultFromJson(const Json &j, RunResult &out);

/** Serialize the machine overrides (part of the cache key). */
Json overridesToJson(const RunOverrides &o);

} // namespace rockcress

#endif // ROCKCRESS_EXP_RESULT_IO_HH
