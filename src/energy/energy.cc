#include "energy/energy.hh"

namespace rockcress
{

EnergyBreakdown
computeEnergy(const StatRegistry &stats, int simd_width,
              const EnergyCosts &costs)
{
    EnergyBreakdown e;

    // Frontend: one I-cache access is modeled per fetched
    // instruction; vector cores' frontends are powered down so their
    // counters never move (Section 5.2).
    double fetches =
        static_cast<double>(stats.sumSuffix("icache.accesses"));
    e.fetch = fetches * (costs.icacheAccess + costs.fetchPipe);

    double issued = static_cast<double>(stats.sumSuffix(".issued"));
    e.pipeline = issued * costs.basePipe;

    e.functional =
        static_cast<double>(stats.sumSuffix(".n_int_alu")) *
            costs.intAlu +
        static_cast<double>(stats.sumSuffix(".n_mul")) * costs.mul +
        static_cast<double>(stats.sumSuffix(".n_div")) * costs.divide +
        static_cast<double>(stats.sumSuffix(".n_fp")) * costs.fpAlu +
        static_cast<double>(stats.sumSuffix(".n_simd")) *
            costs.simdPerLane * simd_width;

    double mem_ops =
        static_cast<double>(stats.sumSuffix(".n_load_global")) +
        static_cast<double>(stats.sumSuffix(".n_load_spad")) +
        static_cast<double>(stats.sumSuffix(".n_store_global")) +
        static_cast<double>(stats.sumSuffix(".n_store_spad")) +
        static_cast<double>(stats.sumSuffix(".n_store_remote")) +
        static_cast<double>(stats.sumSuffix(".n_vload"));
    e.memOps = mem_ops * costs.memOp;

    double spad_accesses =
        static_cast<double>(stats.sumSuffix("spad.reads")) +
        static_cast<double>(stats.sumSuffix("spad.writes")) +
        static_cast<double>(stats.sumSuffix("spad.network_writes"));
    e.spad = spad_accesses * costs.spadAccess;

    // LLC: tag energy per request, word energy per word moved. A
    // 4-wide vector load thus costs as much as 4 scalar loads on the
    // data side, as the paper's model prescribes.
    double llc_reqs =
        static_cast<double>(stats.sumSuffix(".wide_accesses")) +
        static_cast<double>(stats.sumSuffix(".word_reads")) +
        static_cast<double>(stats.sumSuffix(".word_writes"));
    double llc_words =
        static_cast<double>(stats.sumSuffix(".response_words")) +
        static_cast<double>(stats.sumSuffix(".word_writes"));
    e.llc = llc_reqs * costs.llcTag + llc_words * costs.llcAccess;

    e.inet = static_cast<double>(stats.get("inet.sends")) *
             costs.inetHop;
    e.noc = static_cast<double>(stats.get("noc.word_hops")) *
            costs.nocWordHop;

    return e;
}

} // namespace rockcress
