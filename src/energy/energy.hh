/**
 * @file
 * First-order dynamic energy model (Section 5.2): per-event costs
 * assigned to simulation statistics — Ariane-style per-instruction
 * pipeline costs, CACTI-style SRAM access costs for the I-caches,
 * scratchpads, and LLC, and a small per-hop cost for the NoC and
 * inet. Cores in vector mode contribute no fetch or I-cache energy
 * (their counters simply never increment). DRAM energy is excluded:
 * the paper reports total *on-chip* energy.
 */

#ifndef ROCKCRESS_ENERGY_ENERGY_HH
#define ROCKCRESS_ENERGY_ENERGY_HH

#include "sim/stats.hh"

namespace rockcress
{

/** Per-event energy costs in picojoules. */
struct EnergyCosts
{
    // Frontend (only frontend-enabled cores accrue these).
    double icacheAccess = 20.0;   ///< 4 kB SRAM read.
    double fetchPipe = 8.0;       ///< Fetch-stage logic per instruction.
    // Backend, per issued instruction on any core.
    double basePipe = 15.0;       ///< Decode/issue/writeback/commit.
    double intAlu = 6.0;
    double mul = 24.0;            ///< Multiplier scaled to 2 cycles.
    double divide = 120.0;        ///< Divider scaled to its latency.
    double fpAlu = 12.0;
    double memOp = 10.0;          ///< AGU + LSQ per load/store.
    // SIMD: FU + writeback scaled by the vector length (Section 5.2).
    double simdPerLane = 10.0;
    // Memories.
    double spadAccess = 12.0;     ///< 4 kB scratchpad word access.
    double llcAccess = 25.0;      ///< Per word moved at an LLC bank.
    double llcTag = 15.0;         ///< Per request (tag + control).
    // Interconnect.
    double inetHop = 1.5;         ///< 32-bit register read + write.
    double nocWordHop = 4.0;
};

/** Energy breakdown for one run, in picojoules. */
struct EnergyBreakdown
{
    double fetch = 0;      ///< I-cache + fetch pipe.
    double pipeline = 0;   ///< Base per-instruction cost.
    double functional = 0; ///< ALU/MUL/DIV/FP/SIMD.
    double memOps = 0;     ///< LSQ-side costs.
    double spad = 0;
    double llc = 0;
    double inet = 0;
    double noc = 0;

    double
    total() const
    {
        return fetch + pipeline + functional + memOps + spad + llc +
               inet + noc;
    }

    bool operator==(const EnergyBreakdown &) const = default;
};

/**
 * Compute the dynamic on-chip energy of a finished run from its
 * statistics.
 * @param simd_width Lanes per SIMD instruction for the simd scaling.
 */
EnergyBreakdown computeEnergy(const StatRegistry &stats,
                              int simd_width = 4,
                              const EnergyCosts &costs = {});

} // namespace rockcress

#endif // ROCKCRESS_ENERGY_ENERGY_HH
