/**
 * @file
 * The tile CPU (Sections 3.1-3.2): an 8-stage, single-issue core with
 * in-order issue, out-of-order writeback, and in-order commit,
 * augmented with the Rockcress roles. A core is Independent by
 * default; writing vconfig turns it into the Scalar core, the
 * Expander (a vector core that still fetches), or a trailing Vector
 * core whose frontend and I-cache are disabled in favor of the inet.
 *
 * Branch handling pauses fetch until the branch issues, which both
 * models a simple in-order frontend and guarantees the expander never
 * forwards wrong-path instructions (Section 3.2).
 */

#ifndef ROCKCRESS_CORE_CORE_HH
#define ROCKCRESS_CORE_CORE_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "core/commit.hh"
#include "core/decode_cache.hh"
#include "core/env.hh"
#include "isa/program.hh"
#include "mem/icache.hh"
#include "mem/scratchpad.hh"
#include "noc/inet.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "trace/trace.hh"

namespace rockcress
{

class SnapshotWriter;
class SnapshotReader;

/** Tile microarchitectural parameters (Table 1a). */
struct CoreParams
{
    int robEntries = 8;
    int lqEntries = 2;          ///< Load Queue Entries: 2.
    int decodeDepth = 2;        ///< Decode/issue buffer entries.
    Cycle frontendDelay = 2;    ///< Fetch-to-issueable pipeline depth.
    Cycle spadLatency = 2;      ///< Spm Hit Latency: 2 cycles.
    int simdWidth = 4;          ///< SIMD Width: 4 words (PCV).
    ICache::Params icache;
};

/** One tile CPU. */
class Core : public Ticked
{
  public:
    /** Execution role; Expander is a vector core that fetches. */
    enum class Role
    {
        Independent,
        Scalar,
        Expander,
        Vector,
    };

    Core(CoreId id, const CoreParams &params, CoreEnv &env,
         Scratchpad &spad, Inet &inet, const StatScope &stats);

    /** Load a program and reset architectural state. */
    void setProgram(std::shared_ptr<const Program> program, int entry_pc);

    /**
     * Mesh sink: memory responses and remote scratchpad writes.
     *
     * @return True when the delivery could unblock this core's tick
     * (a register-load completion or a head-frame-ready edge) — the
     * fast-tick wake condition. Word arrivals that merely land data
     * or advance a frame counter return false: a sleeping core is
     * blocked on one of the tracked conditions and none of them
     * observe those until the completing edge, which does wake it.
     */
    bool receive(const Packet &pkt);

    void tick(Cycle now) override;
    Cycle nextTickAt(Cycle now) override;
    void skipTicks(Cycle begin, Cycle end) override;

    bool halted() const { return halted_; }
    Role role() const { return role_; }
    CoreId id() const { return id_; }

    /** Pipeline is empty and no loads outstanding (for drain checks). */
    bool quiesced() const;

    /** @name Co-simulation (RunOverrides::cosim). */
    ///@{
    /**
     * Attach a commit-stream consumer. While attached, every retired
     * instruction carries a CommitRecord delivered at commit; null
     * detaches (record capture is fully skipped when detached).
     */
    void attachCosim(CommitSink *sink) { cosim_ = sink; }
    /**
     * Debug-only fault hook: corrupt the nth (1-based) committed
     * register writeback on this core by XORing `mask` into its first
     * word — proves the co-sim checker isn't vacuous.
     */
    void injectCosimFault(std::uint64_t nth, Word mask);
    /**
     * Debug-only fault hook: at cycle `at`, XOR `mask` into
     * architectural register `reg` — a real state corruption (unlike
     * injectCosimFault, which only perturbs the delivered record), so
     * checkpoint digests diverge from the corrupted cycle on. Fires
     * exactly at `at` under both tick kernels (rc_bisect fixtures).
     */
    void injectTimedFault(Cycle at, RegIdx reg, Word mask);
    /**
     * Zero the timed-fault fixture (also done automatically when it
     * fires). rc_bisect clears it on restored scratch machines so
     * state digests compare only architectural state, not whether a
     * fixture is still armed on one side.
     */
    void clearTimedFault()
    {
        timedFaultArmed_ = false;
        timedFaultAt_ = 0;
        timedFaultReg_ = 0;
        timedFaultMask_ = 0;
    }
    /**
     * Flush records of completed-but-uncommitted ROB entries to the
     * sink after the machine stops (halt never drains the ROB).
     * @return false if an incomplete entry (in-flight load) remained.
     */
    bool drainCosim(Cycle now);
    ///@}

    /** @name Event tracing (RunOverrides::trace). */
    ///@{
    /**
     * Attach (null: detach) the trace sink. While attached, every
     * non-halted cycle extends or opens a CoreSpan whose cause is the
     * cycle's exclusive CPI attribution; spans are emitted to the
     * sink when the cause changes (or at flushTraceSpan).
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }
    /**
     * Emit the still-open span, if any. The machine calls this after
     * the simulation stops — the final span has no following
     * cause-change to close it.
     */
    void flushTraceSpan();
    ///@}

    /** @name Architectural state access (for tests). */
    ///@{
    Word readIntReg(int n) const;
    float readFpReg(int n) const;
    ///@}

    /**
     * Checkpoint field visitor (sim/checkpoint.hh): every run-varying
     * member except the observer pointers (trace/cosim reattach after
     * restore), the stat pointers (values live in the registry), the
     * program (validated by digest), and the decode cache (a
     * host-side accelerator, flushed on restore). Defined in core.cc;
     * instantiated for both archives there.
     */
    template <class Ar> void serializeFields(Ar &ar);

  private:
    struct RobEntry
    {
        Instruction inst;
        std::uint64_t seq = 0;
        Cycle doneAt = 0;
        bool waitingLoad = false;
        bool done = false;
        /** The destination's scoreboard bit was already released; a
         * younger writer may own it now, so never clear it again. */
        bool busyCleared = false;
        /** Architectural effects, captured only while cosim runs. */
        std::unique_ptr<CommitRecord> rec;

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(inst, seq, doneAt, waitingLoad, done, busyCleared, rec);
        }
    };

    struct LqEntry
    {
        std::uint32_t reqId = 0;
        RegIdx destReg = 0;
        std::uint64_t robSeq = 0;
        Addr addr = 0;

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(reqId, destReg, robSeq, addr);
        }
    };

    struct DecodedOp
    {
        Instruction inst;
        Cycle readyAt = 0;
        bool isMicrothread = false;  ///< Came from the inet / mt fetch.
        int pc = -1;                 ///< Fetch pc; -1 for inet ops.

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(inst, readyAt, isMicrothread, pc);
        }
    };

    /** @name Stage logic, called in reverse pipeline order. */
    ///@{
    void commit(Cycle now);
    void issue(Cycle now);
    void pumpInet(Cycle now);
    void fetch(Cycle now);
    ///@}

    /**
     * @name Exclusive per-cycle CPI accounting.
     * Every non-halted cycle is attributed to exactly one counter —
     * issued or one of the five stall causes — so that per core
     * cycles == issued + stall_frame + stall_inet_input +
     * stall_backpressure + stall_other + stall_dae holds as an
     * identity (the baseline the trace aggregation reconciles
     * against). issue() charges the primary attribution;
     * pumpInet()/fetch() may re-attribute a stalled cycle to
     * backpressure when the inet is what is actually blocking.
     */
    ///@{
    /** Charge this cycle to a stall counter (from issue()). */
    void stallCycle(std::uint64_t *counter);
    /**
     * The frontend hit inet backpressure this cycle: re-attribute a
     * tentative stall to stall_backpressure. A busy cycle stays busy
     * (the backpressure did not cost an issue slot).
     */
    void chargeBackpressure();
    /** Close/extend the cycle's trace span (end of tick). */
    void traceCycle(Cycle now);
    ///@}

    /** Execute the instruction functionally and write results. */
    void execute(const Instruction &inst, Cycle now, RobEntry &rob);

    /** Issue-side memory operations (pc: sanitizer attribution). */
    void doLoadGlobal(const Instruction &inst, Cycle now, RobEntry &rob);
    void doStore(const Instruction &inst, Cycle now, int pc);
    void doVload(const Instruction &inst, Cycle now, int pc);

    /** True when the vload's destination frames fit the counter window. */
    bool vloadGuardOk(const Instruction &inst) const;

    /** Resolve vload geometry shared by the guard and the send path. */
    struct VloadGeom
    {
        Addr addr = 0;
        Word spadOffset = 0;
        int width = 0;
        int coreOff = 0;
        VloadVariant variant = VloadVariant::Self;
        int totalWords = 0;
        int respPerCore = 0;
        GroupLayoutPtr group;
        std::vector<CoreId> destCores;
    };
    VloadGeom vloadGeom(const Instruction &inst) const;

    bool sourcesReady(const Instruction &inst, bool &load_wait) const;
    bool destReady(const Instruction &inst) const;
    void setBusy(int reg, bool busy);

    Word intReg(RegIdx r) const { return regs_[r]; }
    void setIntReg(RegIdx r, Word v);
    float fpReg(RegIdx r) const { return wordToFloat(regs_[r]); }
    void setFpReg(RegIdx r, float v);

    /** Enter vector mode with the planned role (vconfig commit). */
    void enterVectorMode();
    /** Leave vector mode and resume MIMD execution at pc. */
    void exitVectorMode(int resume_pc);

    void squashFrontend();

    CoreId id_;
    CoreParams params_;
    CoreEnv &env_;
    Scratchpad &spad_;
    Inet &inet_;
    ICache icache_;

    std::shared_ptr<const Program> program_;

    // Architectural state.
    std::array<Word, numArchRegs> regs_{};
    std::vector<std::array<Word, 32>> simdRegs_;  ///< [lane][vreg].
    bool predFlag_ = true;

    // Frontend.
    Role role_ = Role::Independent;
    int fetchPc_ = 0;
    bool fetchBusy_ = false;
    Cycle fetchReadyAt_ = 0;
    Instruction fetchedInst_;
    bool fetchedIsCtl_ = false;    ///< Cached isBranch(fetchedInst_).
    bool fetchedIsHalt_ = false;
    bool fetchedIsVend_ = false;
    DecodeCache dcache_;
    bool fetchPausedForBranch_ = false;
    bool forwardBlocked_ = false;
    bool mtActive_ = false;     ///< Expander: microthread in progress.
    std::deque<DecodedOp> decodeQueue_;

    // Backend.
    std::deque<RobEntry> rob_;
    std::vector<LqEntry> lq_;
    std::array<int, numArchRegs> busy_{};
    std::uint64_t nextSeq_ = 1;
    std::uint32_t nextReqId_ = 1;

    bool halted_ = false;
    bool barrierWaiting_ = false;
    bool joinPending_ = false;

    /**
     * Set whenever the current tick changes any state — architectural,
     * microarchitectural, or a peer's (sends, env calls). Reset at
     * tick start. A tick that ends with this clear is provably inert,
     * so nextTickAt() may sleep past a whole span of identical cycles;
     * a set flag always forces a tick next cycle, because the new
     * state may change the cycle's CPI classification.
     */
    bool mutated_ = false;

    // Co-simulation.
    CommitSink *cosim_ = nullptr;
    std::uint64_t cosimFaultNth_ = 0;   ///< 0 = no fault pending.
    Word cosimFaultMask_ = 0;
    std::uint64_t cosimWritebacks_ = 0;

    // Timed state-corruption hook (injectTimedFault).
    bool timedFaultArmed_ = false;
    Cycle timedFaultAt_ = 0;
    RegIdx timedFaultReg_ = 0;
    Word timedFaultMask_ = 0;

    /** Exclusive-CPI pointer as a stable index (checkpointing). */
    int cycleStatIndex() const;
    std::uint64_t *cycleStatFromIndex(int idx) const;
    /** Attach a fresh record to rob_.back(); null when detached. */
    CommitRecord *attachRecord(const Instruction &inst, int pc);
    /** Deliver one record to the sink (applies the fault hook). */
    void emitRecord(RobEntry &e, Cycle now);

    // Event tracing (null: off; record sites cost one branch).
    TraceSink *trace_ = nullptr;
    bool spanOpen_ = false;
    TraceCause spanCause_ = TraceCause::Busy;
    Cycle spanStart_ = 0;
    std::uint32_t spanLen_ = 0;
    int spanPc_ = -1;
    int issuedPc_ = -1;    ///< pc at the issue stage this cycle.

    // Exclusive CPI attribution of the current cycle (see stallCycle).
    std::uint64_t *cycleStat_ = nullptr;

    // Statistics.
    std::uint64_t *statCycles_;
    std::uint64_t *statVectorCycles_;
    std::uint64_t *statIssued_;
    std::uint64_t *statStallFrame_;
    std::uint64_t *statStallInetInput_;
    std::uint64_t *statStallBackpressure_;
    std::uint64_t *statStallOther_;
    std::uint64_t *statStallDae_;
    std::uint64_t *statIntAlu_;
    std::uint64_t *statMul_;
    std::uint64_t *statDiv_;
    std::uint64_t *statFp_;
    std::uint64_t *statLoadGlobal_;
    std::uint64_t *statLoadSpad_;
    std::uint64_t *statStoreGlobal_;
    std::uint64_t *statStoreSpad_;
    std::uint64_t *statStoreRemote_;
    std::uint64_t *statSimd_;
    std::uint64_t *statVload_;
    std::uint64_t *statVloadWords_;
    std::uint64_t *statVissue_;
    std::uint64_t *statInetInstrs_;
    std::uint64_t *statUnalignedVload_;
};

} // namespace rockcress

#endif // ROCKCRESS_CORE_CORE_HH
