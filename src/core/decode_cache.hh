/**
 * @file
 * Per-core decoded-instruction cache: a small direct-mapped table in
 * front of Program::at() that also precomputes the frontend's static
 * instruction properties (branch/HALT/VEND classification), so the
 * fetch stage stops re-deriving them for every hot-loop iteration.
 * Purely a host-side accelerator — it never changes what is fetched,
 * so cycle counts and statistics are unaffected (the hit/miss
 * counters are host diagnostics, deliberately kept out of the
 * StatRegistry).
 */

#ifndef ROCKCRESS_CORE_DECODE_CACHE_HH
#define ROCKCRESS_CORE_DECODE_CACHE_HH

#include <array>
#include <cstdint>

#include "isa/program.hh"

namespace rockcress
{

/** Direct-mapped cache of decoded instructions, indexed by pc. */
class DecodeCache
{
  public:
    struct Entry
    {
        int pc = -1;            ///< Cached pc; -1 marks an empty slot.
        Instruction inst;
        bool isCtl = false;     ///< isBranch(): fetch pauses after it.
        bool isHalt = false;
        bool isVend = false;
    };

    /**
     * Fetch the decoded entry for `pc`, filling the slot on a miss.
     * Out-of-range pcs take the miss path and die in Program::at()
     * with its usual diagnostic.
     */
    const Entry &
    lookup(const Program &prog, int pc)
    {
        Entry &e = entries_[static_cast<std::size_t>(
            static_cast<unsigned>(pc) & (kEntries - 1))];
        if (pc < 0 || e.pc != pc) {
            e.inst = prog.at(pc);
            e.pc = pc;
            e.isCtl = isBranch(e.inst.op);
            e.isHalt = e.inst.op == Opcode::HALT;
            e.isVend = e.inst.op == Opcode::VEND;
            ++misses_;
        } else {
            ++hits_;
        }
        return e;
    }

    /** Invalidate every slot (program image changed). */
    void
    flush()
    {
        for (Entry &e : entries_)
            e.pc = -1;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    static constexpr unsigned kEntries = 64;   // Power of two.
    std::array<Entry, kEntries> entries_{};
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace rockcress

#endif // ROCKCRESS_CORE_DECODE_CACHE_HH
