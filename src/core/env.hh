/**
 * @file
 * The interface a tile core uses to reach the rest of the machine:
 * memory request injection, vector group bookkeeping, the global
 * barrier, and the DAE run-ahead guard. Implemented by Machine.
 */

#ifndef ROCKCRESS_CORE_ENV_HH
#define ROCKCRESS_CORE_ENV_HH

#include "mem/addrmap.hh"
#include "mem/mainmem.hh"
#include "mem/msg.hh"
#include "mem/scratchpad.hh"

namespace rockcress
{

/** Machine services visible to a core. */
class CoreEnv
{
  public:
    virtual ~CoreEnv() = default;

    /** Route a memory request to the LLC bank owning its line. */
    virtual void sendMemReq(CoreId src, const MemReq &req) = 0;

    /** Remote scratchpad store (shuffles). */
    virtual void sendSpadWrite(CoreId src, const SpadWrite &write) = 0;

    /** @name Vector group formation and membership. */
    ///@{
    /** Core arrived at its vconfig write (idempotent). */
    virtual void groupJoin(CoreId core) = 0;
    /** Has every member of this core's planned group joined? */
    virtual bool groupFormed(CoreId core) const = 0;
    /** The memory-system view of the core's group (null if none). */
    virtual GroupLayoutPtr groupLayout(CoreId core) const = 0;
    /** Thread id within the group (expander = 0). */
    virtual int groupTid(CoreId core) const = 0;
    /** Planned role of this core when its group forms. */
    virtual bool plannedAsScalar(CoreId core) const = 0;
    virtual bool plannedAsExpander(CoreId core) const = 0;
    /** Core left vector mode (on devec). */
    virtual void leftGroup(CoreId core) = 0;
    ///@}

    /** @name Global kernel barrier. */
    ///@{
    virtual void barrierArrive(CoreId core) = 0;
    /** True once the generation this core arrived in has released. */
    virtual bool barrierReleased(CoreId core) const = 0;
    ///@}

    /** @name Quiescence notifications (fast-tick scheduler hooks). */
    ///@{
    /**
     * This core just executed HALT. Lets the machine maintain the
     * halted count in O(1) instead of rescanning every tile per
     * cycle. Default: ignore (standalone-core tests).
     */
    virtual void coreHalted(CoreId core) { (void)core; }
    /**
     * This core's scratchpad frame window advanced (freeFrame) or was
     * reconfigured (configureFrames): remote issuers sleeping on the
     * DAE run-ahead guard against this scratchpad must be re-armed.
     * Default: ignore.
     */
    virtual void frameWindowMoved(CoreId core) { (void)core; }
    ///@}

    /** Another core's scratchpad (DAE run-ahead guard checks). */
    virtual Scratchpad &spadOf(CoreId core) = 0;

    /** Functional global memory (stores apply at execute). */
    virtual MainMemory &mainMem() = 0;

    virtual const AddrMap &addrMap() const = 0;
};

} // namespace rockcress

#endif // ROCKCRESS_CORE_ENV_HH
