#include "core/core.hh"

#include <algorithm>
#include <cmath>

#include "sim/checkpoint.hh"
#include "sim/log.hh"

namespace rockcress
{

Core::Core(CoreId id, const CoreParams &params, CoreEnv &env,
           Scratchpad &spad, Inet &inet, const StatScope &stats)
    : id_(id), params_(params), env_(env), spad_(spad), inet_(inet),
      icache_(params.icache, stats.nested("icache")),
      simdRegs_(static_cast<size_t>(params.simdWidth))
{
    statCycles_ = stats.counter("cycles");
    statVectorCycles_ = stats.counter("vector_cycles");
    statIssued_ = stats.counter("issued");
    statStallFrame_ = stats.counter("stall_frame");
    statStallInetInput_ = stats.counter("stall_inet_input");
    statStallBackpressure_ = stats.counter("stall_backpressure");
    statStallOther_ = stats.counter("stall_other");
    statStallDae_ = stats.counter("stall_dae");
    statIntAlu_ = stats.counter("n_int_alu");
    statMul_ = stats.counter("n_mul");
    statDiv_ = stats.counter("n_div");
    statFp_ = stats.counter("n_fp");
    statLoadGlobal_ = stats.counter("n_load_global");
    statLoadSpad_ = stats.counter("n_load_spad");
    statStoreGlobal_ = stats.counter("n_store_global");
    statStoreSpad_ = stats.counter("n_store_spad");
    statStoreRemote_ = stats.counter("n_store_remote");
    statSimd_ = stats.counter("n_simd");
    statVload_ = stats.counter("n_vload");
    statVloadWords_ = stats.counter("vload_words");
    statVissue_ = stats.counter("n_vissue");
    statInetInstrs_ = stats.counter("inet_instrs");
    statUnalignedVload_ = stats.counter("n_vload_unaligned");
}

void
Core::setProgram(std::shared_ptr<const Program> program, int entry_pc)
{
    program_ = std::move(program);
    fetchPc_ = entry_pc;
    regs_.fill(0);
    for (auto &lane : simdRegs_)
        lane.fill(0);
    predFlag_ = true;
    role_ = Role::Independent;
    fetchBusy_ = false;
    fetchPausedForBranch_ = false;
    forwardBlocked_ = false;
    mtActive_ = false;
    decodeQueue_.clear();
    rob_.clear();
    lq_.clear();
    busy_.fill(0);
    halted_ = false;
    barrierWaiting_ = false;
    joinPending_ = false;
    cycleStat_ = nullptr;
    spanOpen_ = false;
    issuedPc_ = -1;
    mutated_ = false;
    icache_.flush();
    dcache_.flush();
}

// --- Exclusive CPI accounting and trace spans --------------------------------

void
Core::stallCycle(std::uint64_t *counter)
{
    *counter += 1;
    cycleStat_ = counter;
}

void
Core::chargeBackpressure()
{
    // A busy cycle stays busy: the frontend being blocked did not cost
    // an issue slot. A cycle already attributed to backpressure is
    // never charged twice (pumpInet and fetch can both block).
    if (cycleStat_ == statIssued_ ||
        cycleStat_ == statStallBackpressure_) {
        return;
    }
    if (cycleStat_ != nullptr)
        *cycleStat_ -= 1;
    *statStallBackpressure_ += 1;
    cycleStat_ = statStallBackpressure_;
}

void
Core::traceCycle(Cycle now)
{
    if (cycleStat_ == nullptr) {
        // Halted this whole cycle: close any open span.
        flushTraceSpan();
        return;
    }
    TraceCause cause = TraceCause::Other;
    if (cycleStat_ == statIssued_)
        cause = TraceCause::Busy;
    else if (cycleStat_ == statStallFrame_)
        cause = TraceCause::Frame;
    else if (cycleStat_ == statStallInetInput_)
        cause = TraceCause::InetInput;
    else if (cycleStat_ == statStallBackpressure_)
        cause = TraceCause::Backpressure;
    else if (cycleStat_ == statStallDae_)
        cause = TraceCause::Dae;

    if (spanOpen_ && spanCause_ == cause &&
        spanStart_ + spanLen_ == now) {
        ++spanLen_;
        return;
    }
    flushTraceSpan();
    spanOpen_ = true;
    spanCause_ = cause;
    spanStart_ = now;
    spanLen_ = 1;
    spanPc_ = issuedPc_;
}

void
Core::flushTraceSpan()
{
    if (trace_ == nullptr || !spanOpen_)
        return;
    TraceEvent ev;
    ev.cycle = static_cast<std::uint32_t>(spanStart_);
    ev.tile = static_cast<std::uint16_t>(id_);
    ev.kind = static_cast<std::uint8_t>(TraceKind::CoreSpan);
    ev.sub = static_cast<std::uint8_t>(spanCause_);
    ev.pc = spanPc_;
    ev.a = spanLen_;
    trace_->record(ev);
    spanOpen_ = false;
}

Word
Core::readIntReg(int n) const
{
    return regs_[static_cast<size_t>(x(n))];
}

float
Core::readFpReg(int n) const
{
    return wordToFloat(regs_[static_cast<size_t>(f(n))]);
}

void
Core::setIntReg(RegIdx r, Word v)
{
    if (r != regZero)
        regs_[r] = v;
}

void
Core::setFpReg(RegIdx r, float v)
{
    regs_[r] = floatToWord(v);
}

void
Core::setBusy(int reg, bool busy)
{
    if (reg <= 0)
        return;
    busy_[static_cast<size_t>(reg)] = busy ? 1 : 0;
}

bool
Core::sourcesReady(const Instruction &inst, bool &load_wait) const
{
    load_wait = false;
    RegIdx srcs[3] = {inst.rs1, inst.rs2, inst.rs3};
    for (RegIdx r : srcs) {
        if (r != regZero && busy_[r]) {
            // Is a pending load the producer? Then this is a
            // load-use (frame-class) stall.
            for (const LqEntry &e : lq_) {
                if (e.destReg == r)
                    load_wait = true;
            }
            return false;
        }
    }
    return true;
}

bool
Core::destReady(const Instruction &inst) const
{
    int rd = destReg(inst);
    return rd < 0 || busy_[static_cast<size_t>(rd)] == 0;
}

bool
Core::quiesced() const
{
    return rob_.empty() && lq_.empty() && decodeQueue_.empty() &&
           !fetchBusy_;
}

// --- Co-simulation ----------------------------------------------------------

CommitRecord *
Core::attachRecord(const Instruction &inst, int pc)
{
    if (!cosim_)
        return nullptr;
    auto rec = std::make_unique<CommitRecord>();
    rec->inst = inst;
    rec->pc = pc;
    rob_.back().rec = std::move(rec);
    return rob_.back().rec.get();
}

void
Core::injectCosimFault(std::uint64_t nth, Word mask)
{
    cosimFaultNth_ = nth;
    cosimFaultMask_ = mask;
    cosimWritebacks_ = 0;
}

void
Core::injectTimedFault(Cycle at, RegIdx reg, Word mask)
{
    timedFaultArmed_ = true;
    timedFaultAt_ = at;
    timedFaultReg_ = reg;
    timedFaultMask_ = mask;
}

void
Core::emitRecord(RobEntry &e, Cycle now)
{
    if (!cosim_ || !e.rec)
        return;
    CommitRecord &r = *e.rec;
    if (r.wrote && !r.value.empty()) {
        ++cosimWritebacks_;
        if (cosimFaultNth_ != 0 && cosimWritebacks_ == cosimFaultNth_)
            r.value[0] ^= cosimFaultMask_;
    }
    cosim_->onCommit(id_, now, r);
}

bool
Core::drainCosim(Cycle now)
{
    while (!rob_.empty()) {
        RobEntry &head = rob_.front();
        if (!head.done)
            return false;  // In-flight load: never became architectural.
        emitRecord(head, now);
        rob_.pop_front();
    }
    return true;
}

// --- Mesh sink --------------------------------------------------------------

bool
Core::receive(const Packet &pkt)
{
    switch (pkt.kind) {
      case PacketKind::MemRespKind: {
        const MemResp &resp = pkt.resp;
        if (resp.toSpad) {
            return spad_.networkWrite(resp.spadOffset, resp.data,
                                      resp.srcCore, resp.srcPc);
        }
        for (size_t i = 0; i < lq_.size(); ++i) {
            if (lq_[i].reqId == resp.reqId) {
                setIntReg(resp.destReg, resp.data);
                setBusy(resp.destReg, false);
                for (RobEntry &e : rob_) {
                    if (e.seq == lq_[i].robSeq) {
                        e.done = true;
                        e.doneAt = 0;
                        e.busyCleared = true;
                        if (e.rec)
                            e.rec->value = {resp.data};
                    }
                }
                lq_.erase(lq_.begin() + static_cast<long>(i));
                return true;
            }
        }
        panic("core ", id_, ": load response with unknown reqId ",
              resp.reqId);
      }
      case PacketKind::SpadWriteKind:
        return spad_.networkWrite(pkt.spadWrite.spadOffset,
                                  pkt.spadWrite.data, pkt.spadWrite.src,
                                  pkt.spadWrite.srcPc);
      default:
        panic("core ", id_, ": unexpected packet kind");
    }
}

// --- Vector group transitions ------------------------------------------------

void
Core::squashFrontend()
{
    decodeQueue_.clear();
    fetchBusy_ = false;
    fetchPausedForBranch_ = false;
    forwardBlocked_ = false;
}

void
Core::enterVectorMode()
{
    if (env_.plannedAsScalar(id_)) {
        role_ = Role::Scalar;
        // The scalar core keeps its frontend and continues in its
        // own instruction stream.
    } else if (env_.plannedAsExpander(id_)) {
        role_ = Role::Expander;
        squashFrontend();
        mtActive_ = false;
    } else {
        role_ = Role::Vector;
        squashFrontend();
    }
}

void
Core::exitVectorMode(int resume_pc)
{
    env_.leftGroup(id_);
    role_ = Role::Independent;
    mtActive_ = false;
    predFlag_ = true;
    squashFrontend();
    fetchPc_ = resume_pc;
}

// --- vload -----------------------------------------------------------------

Core::VloadGeom
Core::vloadGeom(const Instruction &inst) const
{
    VloadGeom g;
    g.addr = intReg(inst.rs1);
    g.spadOffset = intReg(inst.rs2);
    g.width = inst.imm2;
    g.coreOff = inst.imm;
    g.variant = static_cast<VloadVariant>(inst.sub);
    g.group = env_.groupLayout(id_);

    switch (g.variant) {
      case VloadVariant::Self:
        g.totalWords = g.width;
        g.respPerCore = g.width;
        g.destCores = {id_};
        break;
      case VloadVariant::Single:
        if (!g.group)
            fatal("core ", id_, ": vload.single outside a vector group");
        g.totalWords = g.width;
        g.respPerCore = g.width;
        g.destCores = {g.group->vectorCores.at(
            static_cast<size_t>(g.coreOff))};
        break;
      case VloadVariant::Group: {
        if (!g.group)
            fatal("core ", id_, ": vload.group outside a vector group");
        int n = g.group->size() - g.coreOff;
        g.totalWords = g.width * n;
        g.respPerCore = g.width;
        for (int i = g.coreOff; i < g.group->size(); ++i)
            g.destCores.push_back(g.group->vectorCores[
                static_cast<size_t>(i)]);
        break;
      }
    }

    Addr line = env_.addrMap().lineBytes;
    if (static_cast<Addr>(g.totalWords) * wordBytes > line)
        fatal("core ", id_, ": vload of ", g.totalWords,
              " words exceeds the cache line (", line, "B)");
    if (g.addr % wordBytes != 0)
        fatal("core ", id_, ": unaligned vload address ", g.addr);
    return g;
}

bool
Core::vloadGuardOk(const Instruction &inst) const
{
    VloadGeom g = vloadGeom(inst);
    Word last = g.spadOffset +
                static_cast<Word>(g.respPerCore - 1) * wordBytes;
    for (CoreId dst : g.destCores) {
        const Scratchpad &sp = env_.spadOf(dst);
        if (!sp.canAcceptFrameWrite(g.spadOffset) ||
            !sp.canAcceptFrameWrite(last)) {
            return false;
        }
    }
    return true;
}

void
Core::doVload(const Instruction &inst, Cycle, int pc)
{
    VloadGeom g = vloadGeom(inst);
    const AddrMap &map = env_.addrMap();
    if (!map.isGlobal(g.addr))
        fatal("core ", id_, ": vload source must be a global address");

    MemReq req;
    req.op = MemOp::ReadWide;
    req.addr = g.addr;
    req.src = id_;
    req.srcPc = pc;
    req.variant = g.variant;
    req.baseCoreOff = g.coreOff;
    req.spadOffset = g.spadOffset;
    req.respPerCore = g.respPerCore;
    req.group = g.group;

    // Aligned blocks hit one line; unaligned blocks are issued as the
    // suffix/prefix request pair of Section 2.3.2.
    Addr line = map.lineBytes;
    int first = static_cast<int>(
        std::min<Addr>(static_cast<Addr>(g.totalWords),
                       (line - g.addr % line) / wordBytes));
    req.wordLo = 0;
    req.wordHi = first;
    env_.sendMemReq(id_, req);
    if (first < g.totalWords) {
        MemReq second = req;
        second.wordLo = first;
        second.wordHi = g.totalWords;
        env_.sendMemReq(id_, second);
        *statUnalignedVload_ += 1;
    }
    *statVload_ += 1;
    *statVloadWords_ += static_cast<std::uint64_t>(g.totalWords);
}

// --- Issue-side memory ops ----------------------------------------------------

void
Core::doLoadGlobal(const Instruction &inst, Cycle, RobEntry &rob)
{
    Addr addr = intReg(inst.rs1) + static_cast<Addr>(inst.imm);
    MemReq req;
    req.op = MemOp::ReadWord;
    req.addr = addr;
    req.src = id_;
    req.reqId = nextReqId_++;
    req.destReg = inst.rd;
    env_.sendMemReq(id_, req);

    LqEntry e;
    e.reqId = req.reqId;
    e.destReg = inst.rd;
    e.robSeq = rob.seq;
    e.addr = addr;
    lq_.push_back(e);

    setBusy(destReg(inst), true);
    rob.waitingLoad = true;
    rob.done = false;
    *statLoadGlobal_ += 1;
}

void
Core::doStore(const Instruction &inst, Cycle, int pc)
{
    Addr addr = intReg(inst.rs1) + static_cast<Addr>(inst.imm);
    const AddrMap &map = env_.addrMap();

    if (inst.op == Opcode::SIMD_SW) {
        if (map.isSpad(addr) && map.spadCore(addr) == id_) {
            Addr off = map.spadOffset(addr);
            for (int l = 0; l < params_.simdWidth; ++l) {
                spad_.writeWord(off + static_cast<Addr>(l) * wordBytes,
                                simdRegs_[static_cast<size_t>(l)]
                                         [inst.rs2 - simdRegBase],
                                pc);
            }
            *statStoreSpad_ += 1;
            return;
        }
        if (!map.isGlobal(addr))
            fatal("core ", id_, ": simd store to a remote scratchpad");
        MemReq req;
        req.op = MemOp::WriteWord;
        req.addr = addr;
        req.src = id_;
        for (int l = 0; l < params_.simdWidth; ++l) {
            env_.mainMem().writeWord(
                addr + static_cast<Addr>(l) * wordBytes,
                simdRegs_[static_cast<size_t>(l)][inst.rs2 - simdRegBase]);
        }
        env_.sendMemReq(id_, req);
        *statStoreGlobal_ += 1;
        return;
    }

    Word data = regs_[inst.rs2];
    if (map.isGlobal(addr)) {
        for (const LqEntry &e : lq_) {
            if (e.addr == addr)
                panic("core ", id_, ": WAR hazard: store to ", addr,
                      " while an older load is outstanding");
        }
        env_.mainMem().writeWord(addr, data);
        MemReq req;
        req.op = MemOp::WriteWord;
        req.addr = addr;
        req.data = data;
        req.src = id_;
        env_.sendMemReq(id_, req);
        *statStoreGlobal_ += 1;
    } else if (map.spadCore(addr) == id_) {
        spad_.writeWord(map.spadOffset(addr), data, pc);
        *statStoreSpad_ += 1;
    } else {
        // Remote scratchpad store (shuffles, Section 2.4).
        SpadWrite w;
        w.dst = map.spadCore(addr);
        w.spadOffset = map.spadOffset(addr);
        w.data = data;
        w.src = id_;
        w.srcPc = pc;
        env_.sendSpadWrite(id_, w);
        *statStoreRemote_ += 1;
    }
}

// --- Functional execution -----------------------------------------------------

void
Core::execute(const Instruction &inst, Cycle now, RobEntry &rob)
{
    auto si = [this](RegIdx r) {
        return static_cast<std::int32_t>(regs_[r]);
    };
    Opcode op = inst.op;
    Cycle lat = static_cast<Cycle>(fuLatency(op));
    rob.doneAt = now + lat;
    rob.done = true;

    Word result = 0;
    bool write = destReg(inst) >= 0;

    switch (op) {
      case Opcode::NOP:
        write = false;
        break;
      case Opcode::ADD: result = regs_[inst.rs1] + regs_[inst.rs2]; break;
      case Opcode::SUB: result = regs_[inst.rs1] - regs_[inst.rs2]; break;
      case Opcode::AND: result = regs_[inst.rs1] & regs_[inst.rs2]; break;
      case Opcode::OR:  result = regs_[inst.rs1] | regs_[inst.rs2]; break;
      case Opcode::XOR: result = regs_[inst.rs1] ^ regs_[inst.rs2]; break;
      case Opcode::SLL: result = regs_[inst.rs1]
                                 << (regs_[inst.rs2] & 31); break;
      case Opcode::SRL: result = regs_[inst.rs1] >>
                                 (regs_[inst.rs2] & 31); break;
      case Opcode::SRA:
        result = static_cast<Word>(si(inst.rs1) >>
                                   (regs_[inst.rs2] & 31));
        break;
      case Opcode::SLT:
        result = si(inst.rs1) < si(inst.rs2) ? 1 : 0;
        break;
      case Opcode::SLTU:
        result = regs_[inst.rs1] < regs_[inst.rs2] ? 1 : 0;
        break;
      case Opcode::MUL:
        // Unsigned wrap-around product; low 32 bits match the signed
        // product without the signed-overflow UB.
        result = regs_[inst.rs1] * regs_[inst.rs2];
        break;
      case Opcode::MULH:
        result = static_cast<Word>(
            (static_cast<std::int64_t>(si(inst.rs1)) *
             static_cast<std::int64_t>(si(inst.rs2))) >> 32);
        break;
      case Opcode::DIV:
        result = regs_[inst.rs2] == 0
                     ? static_cast<Word>(-1)
                     : static_cast<Word>(si(inst.rs1) / si(inst.rs2));
        break;
      case Opcode::REM:
        result = regs_[inst.rs2] == 0
                     ? regs_[inst.rs1]
                     : static_cast<Word>(si(inst.rs1) % si(inst.rs2));
        break;
      case Opcode::ADDI:
        result = regs_[inst.rs1] + static_cast<Word>(inst.imm);
        break;
      case Opcode::ANDI:
        result = regs_[inst.rs1] & static_cast<Word>(inst.imm);
        break;
      case Opcode::ORI:
        result = regs_[inst.rs1] | static_cast<Word>(inst.imm);
        break;
      case Opcode::XORI:
        result = regs_[inst.rs1] ^ static_cast<Word>(inst.imm);
        break;
      case Opcode::SLLI: result = regs_[inst.rs1] << inst.imm; break;
      case Opcode::SRLI: result = regs_[inst.rs1] >> inst.imm; break;
      case Opcode::SRAI:
        result = static_cast<Word>(si(inst.rs1) >> inst.imm);
        break;
      case Opcode::SLTI:
        result = si(inst.rs1) < inst.imm ? 1 : 0;
        break;
      case Opcode::LUI:
        result = static_cast<Word>(inst.imm) << 12;
        break;

      case Opcode::FADD:
        setFpReg(inst.rd, fpReg(inst.rs1) + fpReg(inst.rs2));
        write = false;
        break;
      case Opcode::FSUB:
        setFpReg(inst.rd, fpReg(inst.rs1) - fpReg(inst.rs2));
        write = false;
        break;
      case Opcode::FMUL:
        setFpReg(inst.rd, fpReg(inst.rs1) * fpReg(inst.rs2));
        write = false;
        break;
      case Opcode::FDIV:
        setFpReg(inst.rd, fpReg(inst.rs1) / fpReg(inst.rs2));
        write = false;
        break;
      case Opcode::FSQRT:
        setFpReg(inst.rd, std::sqrt(fpReg(inst.rs1)));
        write = false;
        break;
      case Opcode::FMIN:
        setFpReg(inst.rd, std::fmin(fpReg(inst.rs1), fpReg(inst.rs2)));
        write = false;
        break;
      case Opcode::FMAX:
        setFpReg(inst.rd, std::fmax(fpReg(inst.rs1), fpReg(inst.rs2)));
        write = false;
        break;
      case Opcode::FMADD:
        setFpReg(inst.rd, fpReg(inst.rs1) * fpReg(inst.rs2) +
                              fpReg(inst.rs3));
        write = false;
        break;
      case Opcode::FABS:
        setFpReg(inst.rd, std::fabs(fpReg(inst.rs1)));
        write = false;
        break;
      case Opcode::FSGNJ:
        setFpReg(inst.rd, std::copysign(fpReg(inst.rs1),
                                        fpReg(inst.rs2)));
        write = false;
        break;
      case Opcode::FEQ:
        result = fpReg(inst.rs1) == fpReg(inst.rs2) ? 1 : 0;
        break;
      case Opcode::FLT:
        result = fpReg(inst.rs1) < fpReg(inst.rs2) ? 1 : 0;
        break;
      case Opcode::FLE:
        result = fpReg(inst.rs1) <= fpReg(inst.rs2) ? 1 : 0;
        break;
      case Opcode::FCVT_WS:
        result = static_cast<Word>(
            static_cast<std::int32_t>(fpReg(inst.rs1)));
        break;
      case Opcode::FCVT_SW:
        setFpReg(inst.rd, static_cast<float>(si(inst.rs1)));
        write = false;
        break;
      case Opcode::FMV_XW:
        result = regs_[inst.rs1];
        break;
      case Opcode::FMV_WX:
        regs_[inst.rd] = regs_[inst.rs1];
        write = false;
        break;

      // SIMD lane-wise arithmetic.
      case Opcode::SIMD_ADD:
      case Opcode::SIMD_SUB:
      case Opcode::SIMD_MUL:
      case Opcode::SIMD_FADD:
      case Opcode::SIMD_FSUB:
      case Opcode::SIMD_FMUL:
      case Opcode::SIMD_FMA: {
        int rd = inst.rd - simdRegBase;
        int a = inst.rs1 - simdRegBase;
        int b = inst.rs2 - simdRegBase;
        int c = inst.rs3 - simdRegBase;
        for (int l = 0; l < params_.simdWidth; ++l) {
            auto &lane = simdRegs_[static_cast<size_t>(l)];
            switch (op) {
              case Opcode::SIMD_ADD:
                lane[rd] = lane[a] + lane[b];
                break;
              case Opcode::SIMD_SUB:
                lane[rd] = lane[a] - lane[b];
                break;
              case Opcode::SIMD_MUL:
                lane[rd] = lane[a] * lane[b];
                break;
              case Opcode::SIMD_FADD:
                lane[rd] = floatToWord(wordToFloat(lane[a]) +
                                       wordToFloat(lane[b]));
                break;
              case Opcode::SIMD_FSUB:
                lane[rd] = floatToWord(wordToFloat(lane[a]) -
                                       wordToFloat(lane[b]));
                break;
              case Opcode::SIMD_FMUL:
                lane[rd] = floatToWord(wordToFloat(lane[a]) *
                                       wordToFloat(lane[b]));
                break;
              case Opcode::SIMD_FMA:
                lane[rd] = floatToWord(wordToFloat(lane[a]) *
                                           wordToFloat(lane[b]) +
                                       wordToFloat(lane[c]));
                break;
              default:
                break;
            }
        }
        write = false;
        break;
      }
      case Opcode::SIMD_BCAST: {
        int rd = inst.rd - simdRegBase;
        for (int l = 0; l < params_.simdWidth; ++l)
            simdRegs_[static_cast<size_t>(l)][rd] = regs_[inst.rs1];
        write = false;
        break;
      }
      case Opcode::SIMD_REDSUM: {
        int a = inst.rs1 - simdRegBase;
        float sum = 0.0f;
        for (int l = 0; l < params_.simdWidth; ++l)
            sum += wordToFloat(simdRegs_[static_cast<size_t>(l)][a]);
        setFpReg(inst.rd, sum);
        write = false;
        break;
      }

      default:
        panic("core ", id_, ": execute() got non-functional op ",
              opcodeName(op));
    }

    if (write)
        setIntReg(inst.rd, result);

    // Reserve the destination until the FU completes.
    int rd = destReg(inst);
    if (rd >= 0 && lat > 1) {
        setBusy(rd, true);
        rob.waitingLoad = false;
    }
}

// --- Issue --------------------------------------------------------------------

void
Core::issue(Cycle now)
{
    if (halted_)
        return;
    *statCycles_ += 1;
    bool vector_mode = role_ == Role::Vector || role_ == Role::Expander;
    if (vector_mode)
        *statVectorCycles_ += 1;

    // Free destination registers whose FU completes this cycle —
    // exactly once per entry, or a younger writer that re-acquired
    // the register would be released early.
    for (RobEntry &e : rob_) {
        if (e.done && !e.waitingLoad && !e.busyCleared &&
            e.doneAt <= now) {
            int rd = destReg(e.inst);
            if (rd >= 0)
                setBusy(rd, false);
            e.busyCleared = true;
            mutated_ = true;
        }
    }

    if (static_cast<int>(rob_.size()) >= params_.robEntries) {
        stallCycle(statStallOther_);
        return;
    }

    if (decodeQueue_.empty() || decodeQueue_.front().readyAt > now) {
        if (vector_mode && !mtActive_ && !inet_.hasMsg(id_) &&
            decodeQueue_.empty() && !fetchBusy_) {
            stallCycle(statStallInetInput_);
        } else {
            stallCycle(statStallOther_);
        }
        return;
    }

    const Instruction inst = decodeQueue_.front().inst;
    const int instPc = decodeQueue_.front().pc;
    issuedPc_ = instPc;
    Opcode op = inst.op;

    auto retire_simple = [&](Cycle done_at) {
        decodeQueue_.pop_front();
        RobEntry e;
        e.inst = inst;
        e.seq = nextSeq_++;
        e.done = true;
        e.doneAt = done_at;
        rob_.push_back(std::move(e));
        *statIssued_ += 1;
        cycleStat_ = statIssued_;
    };

    // Predication: with the flag clear, non-predicate instructions
    // execute as nops but still flow through the pipeline.
    if (!predFlag_ && op != Opcode::PRED_EQ && op != Opcode::PRED_NEQ &&
        op != Opcode::DEVEC && op != Opcode::VEND) {
        retire_simple(now + 1);
        attachRecord(inst, instPc);  // Squashed: bare record.
        return;
    }

    bool load_wait = false;
    if (!sourcesReady(inst, load_wait) || !destReady(inst)) {
        if (load_wait)
            stallCycle(statStallFrame_);
        else
            stallCycle(statStallOther_);
        return;
    }

    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU: {
        auto sa = static_cast<std::int32_t>(regs_[inst.rs1]);
        auto sb = static_cast<std::int32_t>(regs_[inst.rs2]);
        bool taken = false;
        switch (op) {
          case Opcode::BEQ: taken = sa == sb; break;
          case Opcode::BNE: taken = sa != sb; break;
          case Opcode::BLT: taken = sa < sb; break;
          case Opcode::BGE: taken = sa >= sb; break;
          case Opcode::BLTU: taken = regs_[inst.rs1] < regs_[inst.rs2];
                             break;
          case Opcode::BGEU: taken = regs_[inst.rs1] >= regs_[inst.rs2];
                             break;
          default: break;
        }
        fetchPc_ = taken ? inst.imm : fetchPc_ + 1;
        fetchPausedForBranch_ = false;
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc))
            r->aux = {static_cast<Word>(fetchPc_)};
        *statIntAlu_ += 1;
        return;
      }
      case Opcode::JAL: {
        Word link = static_cast<Word>(fetchPc_ + 1);
        setIntReg(inst.rd, link);
        fetchPc_ = inst.imm;
        fetchPausedForBranch_ = false;
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc)) {
            if (destReg(inst) >= 0) {
                r->wrote = true;
                r->rd = inst.rd;
                r->value = {link};
            }
            r->aux = {static_cast<Word>(fetchPc_)};
        }
        *statIntAlu_ += 1;
        return;
      }
      case Opcode::JALR: {
        Word target = regs_[inst.rs1] + static_cast<Word>(inst.imm);
        Word link = static_cast<Word>(fetchPc_ + 1);
        setIntReg(inst.rd, link);
        fetchPc_ = static_cast<int>(target);
        fetchPausedForBranch_ = false;
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc)) {
            if (destReg(inst) >= 0) {
                r->wrote = true;
                r->rd = inst.rd;
                r->value = {link};
            }
            r->aux = {static_cast<Word>(fetchPc_)};
        }
        *statIntAlu_ += 1;
        return;
      }

      case Opcode::LW: case Opcode::FLW: {
        Addr addr = regs_[inst.rs1] + static_cast<Addr>(inst.imm);
        const AddrMap &map = env_.addrMap();
        if (map.isGlobal(addr)) {
            if (static_cast<int>(lq_.size()) >= params_.lqEntries) {
                stallCycle(statStallOther_);
                return;
            }
            decodeQueue_.pop_front();
            RobEntry e;
            e.inst = inst;
            e.seq = nextSeq_++;
            rob_.push_back(std::move(e));
            doLoadGlobal(inst, now, rob_.back());
            if (auto *r = attachRecord(inst, instPc)) {
                r->wrote = true;
                r->rd = inst.rd;
                r->mem = true;
                r->addr = addr;  // Value lands with the response.
            }
            *statIssued_ += 1;
            cycleStat_ = statIssued_;
            return;
        }
        if (map.spadCore(addr) != id_)
            fatal("core ", id_, ": load from a remote scratchpad");
        Word data = spad_.readWord(map.spadOffset(addr), instPc);
        setIntReg(inst.rd, data);
        int rd = destReg(inst);
        if (rd >= 0)
            setBusy(rd, true);
        retire_simple(now + params_.spadLatency);
        rob_.back().waitingLoad = false;
        if (auto *r = attachRecord(inst, instPc)) {
            r->wrote = true;
            r->rd = inst.rd;
            r->value = {data};
            r->mem = true;
            r->addr = addr;
        }
        *statLoadSpad_ += 1;
        return;
      }

      case Opcode::SIMD_LW: {
        Addr addr = regs_[inst.rs1] + static_cast<Addr>(inst.imm);
        const AddrMap &map = env_.addrMap();
        if (!map.isSpad(addr) || map.spadCore(addr) != id_)
            fatal("core ", id_, ": simd load must target own scratchpad");
        Addr off = map.spadOffset(addr);
        int rd = inst.rd - simdRegBase;
        for (int l = 0; l < params_.simdWidth; ++l) {
            simdRegs_[static_cast<size_t>(l)][rd] =
                spad_.readWord(off + static_cast<Addr>(l) * wordBytes,
                               instPc);
        }
        setBusy(destReg(inst), true);
        retire_simple(now + params_.spadLatency);
        if (auto *r = attachRecord(inst, instPc)) {
            r->wrote = true;
            r->rd = inst.rd;
            for (int l = 0; l < params_.simdWidth; ++l)
                r->value.push_back(simdRegs_[static_cast<size_t>(l)]
                                            [static_cast<size_t>(rd)]);
            r->mem = true;
            r->addr = addr;
        }
        *statSimd_ += 1;
        *statLoadSpad_ += 1;
        return;
      }

      case Opcode::SW: case Opcode::FSW: case Opcode::SIMD_SW:
        doStore(inst, now, instPc);
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc)) {
            r->mem = true;
            r->isStore = true;
            r->addr = regs_[inst.rs1] + static_cast<Addr>(inst.imm);
            if (op == Opcode::SIMD_SW) {
                for (int l = 0; l < params_.simdWidth; ++l)
                    r->data.push_back(
                        simdRegs_[static_cast<size_t>(l)]
                                 [inst.rs2 - simdRegBase]);
            } else {
                r->data = {regs_[inst.rs2]};
            }
        }
        if (op == Opcode::SIMD_SW)
            *statSimd_ += 1;
        return;

      case Opcode::VLOAD:
        if (!vloadGuardOk(inst)) {
            stallCycle(statStallDae_);
            return;
        }
        doVload(inst, now, instPc);
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc))
            r->aux = {intReg(inst.rs1), intReg(inst.rs2)};
        return;

      case Opcode::VISSUE:
        // The launch message is sent at commit (Section 3.2).
        retire_simple(now + 1);
        attachRecord(inst, instPc);
        *statVissue_ += 1;
        return;

      case Opcode::VEND:
        retire_simple(now + 1);
        attachRecord(inst, instPc);
        return;

      case Opcode::DEVEC:
        if (role_ == Role::Vector || role_ == Role::Expander) {
            int resume = inst.imm;
            decodeQueue_.pop_front();
            RobEntry e;
            e.inst = inst;
            e.seq = nextSeq_++;
            e.done = true;
            e.doneAt = now + 1;
            rob_.push_back(std::move(e));
            attachRecord(inst, instPc);
            *statIssued_ += 1;
            cycleStat_ = statIssued_;
            exitVectorMode(resume);
            return;
        }
        // Scalar core: message sent at commit.
        retire_simple(now + 1);
        attachRecord(inst, instPc);
        return;

      case Opcode::FRAME_START: {
        if (!spad_.frameReady()) {
            stallCycle(statStallFrame_);
            return;
        }
        Word base = env_.addrMap().spadBase(id_) +
                    spad_.headFrameByteOffset();
        spad_.beginConsume(instPc);
        setIntReg(inst.rd, base);
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc)) {
            r->wrote = true;
            r->rd = inst.rd;
            r->value = {base};
        }
        return;
      }

      case Opcode::REMEM:
        spad_.freeFrame(instPc);
        env_.frameWindowMoved(id_);
        retire_simple(now + 1);
        attachRecord(inst, instPc);
        return;

      case Opcode::PRED_EQ:
        predFlag_ = regs_[inst.rs1] == regs_[inst.rs2];
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc))
            r->aux = {predFlag_ ? Word(1) : Word(0)};
        return;
      case Opcode::PRED_NEQ:
        predFlag_ = regs_[inst.rs1] != regs_[inst.rs2];
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc))
            r->aux = {predFlag_ ? Word(1) : Word(0)};
        return;

      case Opcode::CSRW: {
        Csr csr = static_cast<Csr>(inst.sub);
        Word value = regs_[inst.rs1];
        if (csr == Csr::Vconfig) {
            if (value != 0) {
                if (!joinPending_) {
                    env_.groupJoin(id_);
                    joinPending_ = true;
                    mutated_ = true;
                }
                if (!env_.groupFormed(id_)) {
                    stallCycle(statStallOther_);
                    return;
                }
                joinPending_ = false;
                retire_simple(now + 1);
                if (auto *r = attachRecord(inst, instPc))
                    r->aux = {value};
                enterVectorMode();
                return;
            }
            retire_simple(now + 1);
            if (auto *r = attachRecord(inst, instPc))
                r->aux = {value};
            return;
        }
        if (csr == Csr::FrameCfg) {
            spad_.configureFrames(static_cast<int>(value & 0xffff),
                                  static_cast<int>(value >> 16));
            env_.frameWindowMoved(id_);
            retire_simple(now + 1);
            if (auto *r = attachRecord(inst, instPc))
                r->aux = {value};
            return;
        }
        fatal("core ", id_, ": write to read-only CSR");
      }

      case Opcode::CSRR: {
        Csr csr = static_cast<Csr>(inst.sub);
        Word value = 0;
        switch (csr) {
          case Csr::CoreId: value = static_cast<Word>(id_); break;
          case Csr::NumCores:
            value = static_cast<Word>(env_.addrMap().numCores);
            break;
          case Csr::GroupTid:
            value = static_cast<Word>(env_.groupTid(id_));
            break;
          case Csr::GroupLen: {
            GroupLayoutPtr g = env_.groupLayout(id_);
            value = g ? static_cast<Word>(g->size()) : 0;
            break;
          }
          default:
            fatal("core ", id_, ": read of unknown CSR");
        }
        setIntReg(inst.rd, value);
        retire_simple(now + 1);
        if (auto *r = attachRecord(inst, instPc)) {
            if (destReg(inst) >= 0) {
                r->wrote = true;
                r->rd = inst.rd;
                r->value = {value};
            }
        }
        return;
      }

      case Opcode::HALT:
        halted_ = true;
        env_.coreHalted(id_);
        *statIssued_ += 1;
        cycleStat_ = statIssued_;
        return;

      case Opcode::BARRIER:
        if (!barrierWaiting_) {
            env_.barrierArrive(id_);
            barrierWaiting_ = true;
            mutated_ = true;
        }
        if (!env_.barrierReleased(id_)) {
            stallCycle(statStallOther_);
            return;
        }
        barrierWaiting_ = false;
        retire_simple(now + 1);
        attachRecord(inst, instPc);
        return;

      default: {
        // Plain functional instruction.
        decodeQueue_.pop_front();
        RobEntry e;
        e.inst = inst;
        e.seq = nextSeq_++;
        rob_.push_back(std::move(e));
        execute(inst, now, rob_.back());
        if (auto *r = attachRecord(inst, instPc)) {
            int rd = destReg(inst);
            if (rd >= 0) {
                r->wrote = true;
                r->rd = static_cast<RegIdx>(rd);
                if (rd >= simdRegBase) {
                    for (int l = 0; l < params_.simdWidth; ++l)
                        r->value.push_back(
                            simdRegs_[static_cast<size_t>(l)]
                                     [rd - simdRegBase]);
                } else {
                    r->value = {regs_[static_cast<size_t>(rd)]};
                }
            }
        }
        *statIssued_ += 1;
        cycleStat_ = statIssued_;
        if (isSimd(op))
            *statSimd_ += 1;
        else if (op == Opcode::MUL || op == Opcode::MULH)
            *statMul_ += 1;
        else if (op == Opcode::DIV || op == Opcode::REM)
            *statDiv_ += 1;
        else if (isFloatOp(op))
            *statFp_ += 1;
        else
            *statIntAlu_ += 1;
        return;
      }
    }
}

// --- Commit -------------------------------------------------------------------

void
Core::commit(Cycle now)
{
    if (rob_.empty())
        return;
    RobEntry &head = rob_.front();
    if (!head.done || head.doneAt > now)
        return;

    Opcode op = head.inst.op;
    if (op == Opcode::VISSUE) {
        if (!inet_.canSend(id_)) {
            // Hold commit until the launch message can go out; the
            // flag makes the inet wake us when it can.
            inet_.noteSendBlocked(id_);
            return;
        }
        InetMsg msg;
        msg.kind = InetMsg::Kind::Vissue;
        msg.pc = head.inst.imm;
        inet_.send(id_, msg);
    } else if (op == Opcode::DEVEC && role_ == Role::Scalar) {
        if (!inet_.canSend(id_)) {
            inet_.noteSendBlocked(id_);
            return;
        }
        InetMsg msg;
        msg.kind = InetMsg::Kind::Devec;
        msg.pc = head.inst.imm;
        inet_.send(id_, msg);
        env_.leftGroup(id_);
        role_ = Role::Independent;
    }

    mutated_ = true;
    int rd = destReg(head.inst);
    if (rd >= 0 && !head.waitingLoad && !head.busyCleared)
        setBusy(rd, false);
    emitRecord(head, now);
    rob_.pop_front();
}

// --- Inet pump ------------------------------------------------------------------

void
Core::pumpInet(Cycle now)
{
    if (halted_)
        return;

    if (role_ == Role::Vector) {
        if (static_cast<int>(decodeQueue_.size()) >= params_.decodeDepth)
            return;
        if (!inet_.hasMsg(id_))
            return;
        const InetMsg &msg = inet_.front(id_);
        bool must_forward = inet_.hasDownstream(id_);
        if (must_forward && !inet_.canSend(id_)) {
            inet_.noteSendBlocked(id_);
            chargeBackpressure();
            return;
        }
        switch (msg.kind) {
          case InetMsg::Kind::Instr: {
            DecodedOp d;
            d.inst = msg.inst;
            d.readyAt = now + 1;
            d.isMicrothread = true;
            if (must_forward)
                inet_.send(id_, msg);
            decodeQueue_.push_back(d);
            inet_.pop(id_);
            mutated_ = true;
            *statInetInstrs_ += 1;
            return;
          }
          case InetMsg::Kind::Devec: {
            DecodedOp d;
            d.inst.op = Opcode::DEVEC;
            d.inst.imm = msg.pc;
            d.readyAt = now + 1;
            d.isMicrothread = true;
            if (must_forward)
                inet_.send(id_, msg);
            decodeQueue_.push_back(d);
            inet_.pop(id_);
            mutated_ = true;
            return;
          }
          case InetMsg::Kind::Vissue:
            panic("core ", id_,
                  ": vissue message reached a non-expander vector core");
        }
        return;
    }

    if (role_ == Role::Expander && !mtActive_ && !fetchBusy_) {
        if (!inet_.hasMsg(id_))
            return;
        const InetMsg &msg = inet_.front(id_);
        switch (msg.kind) {
          case InetMsg::Kind::Vissue:
            mtActive_ = true;
            fetchPc_ = msg.pc;
            inet_.pop(id_);
            mutated_ = true;
            return;
          case InetMsg::Kind::Devec: {
            if (static_cast<int>(decodeQueue_.size()) >=
                params_.decodeDepth) {
                return;
            }
            bool must_forward = inet_.hasDownstream(id_);
            if (must_forward && !inet_.canSend(id_)) {
                inet_.noteSendBlocked(id_);
                chargeBackpressure();
                return;
            }
            DecodedOp d;
            d.inst.op = Opcode::DEVEC;
            d.inst.imm = msg.pc;
            d.readyAt = now + 1;
            d.isMicrothread = true;
            if (must_forward)
                inet_.send(id_, msg);
            decodeQueue_.push_back(d);
            inet_.pop(id_);
            mutated_ = true;
            return;
          }
          case InetMsg::Kind::Instr:
            panic("core ", id_,
                  ": raw instruction message reached the expander");
        }
    }
}

// --- Fetch ----------------------------------------------------------------------

void
Core::fetch(Cycle now)
{
    if (halted_)
        return;
    bool frontend_on =
        role_ == Role::Independent || role_ == Role::Scalar ||
        (role_ == Role::Expander && mtActive_);
    if (!frontend_on)
        return;

    // Complete an outstanding fetch.
    if (fetchBusy_ && fetchReadyAt_ <= now) {
        const Instruction &inst = fetchedInst_;
        bool is_ctl = fetchedIsCtl_;
        bool forward = role_ == Role::Expander && !is_ctl &&
                       !fetchedIsVend_ && inet_.hasDownstream(id_);
        if (forward && !inet_.canSend(id_)) {
            inet_.noteSendBlocked(id_);
            forwardBlocked_ = true;
            chargeBackpressure();
            return;  // Retry next cycle; fetch buffer holds the inst.
        }
        forwardBlocked_ = false;
        mutated_ = true;
        if (forward) {
            InetMsg msg;
            msg.kind = InetMsg::Kind::Instr;
            msg.inst = inst;
            inet_.send(id_, msg);
        }
        DecodedOp d;
        d.inst = inst;
        d.readyAt = now + params_.frontendDelay;
        d.isMicrothread = role_ == Role::Expander;
        d.pc = fetchPc_;
        decodeQueue_.push_back(d);
        fetchBusy_ = false;
        if (is_ctl || fetchedIsHalt_) {
            // Pause until the branch issues (also keeps the expander
            // from ever forwarding wrong-path instructions). A HALT
            // terminates the stream, so never fetch past it.
            fetchPausedForBranch_ = true;
        } else {
            if (role_ == Role::Expander && fetchedIsVend_)
                mtActive_ = false;
            else
                fetchPc_ += 1;
        }
    }

    // Start a new fetch.
    if (!fetchBusy_ && !fetchPausedForBranch_ &&
        static_cast<int>(decodeQueue_.size()) < params_.decodeDepth) {
        if (role_ == Role::Expander && !mtActive_)
            return;  // vend consumed; wait for the next vissue.
        const DecodeCache::Entry &de = dcache_.lookup(*program_, fetchPc_);
        fetchedInst_ = de.inst;
        fetchedIsCtl_ = de.isCtl;
        fetchedIsHalt_ = de.isHalt;
        fetchedIsVend_ = de.isVend;
        fetchReadyAt_ = icache_.fetch(fetchPc_, now);
        fetchBusy_ = true;
        mutated_ = true;
    }
}

void
Core::tick(Cycle now)
{
    cycleStat_ = nullptr;
    mutated_ = false;
    if (timedFaultArmed_ && now >= timedFaultAt_) {
        // Debug hook (rc_bisect fixtures): corrupt architectural
        // state at a chosen cycle. nextTickAt() guarantees a tick at
        // exactly timedFaultAt_, so both kernels fire identically.
        regs_[timedFaultReg_] ^= timedFaultMask_;
        mutated_ = true;
        // Zero the whole fixture so post-fire snapshots of a faulted
        // and a clean core differ only in the corruption itself.
        clearTimedFault();
    }
    commit(now);
    issue(now);
    pumpInet(now);
    fetch(now);
    // An issuing cycle always mutated state (retire paths cover every
    // instruction class); checking the attribution here is cheaper
    // than marking each of them.
    if (cycleStat_ == statIssued_)
        mutated_ = true;
    if (trace_ != nullptr)
        traceCycle(now);
}

Cycle
Core::nextTickAt(Cycle now)
{
    if (mutated_)
        return now + 1;  // New state may re-classify the next cycle.

    Cycle at = kNeverTick;
    auto consider = [&at](Cycle c) { at = std::min(at, c); };

    // Commit: the rob head becomes committable at its doneAt. A head
    // whose doneAt already passed yet was not committed this tick
    // (mutated_ is clear) is necessarily a VISSUE / DEVEC launch held
    // by inet backpressure — every other done head commits and sets
    // mutated_ — and the inet wakes this core when the link or the
    // downstream queue slot frees, so no deadline is needed for it.
    if (!rob_.empty() && rob_.front().done && rob_.front().doneAt > now)
        consider(rob_.front().doneAt);

    if (halted_) {
        // Only commit drains a halted core; everything else is off.
        // With an empty (or load-blocked) rob, sleep until the mesh
        // sink delivers the response and wakes us.
        return at;
    }

    // Busy-release deadlines of completed FU ops still in the rob.
    for (const RobEntry &e : rob_) {
        if (e.done && !e.waitingLoad && !e.busyCleared && e.doneAt > now)
            consider(e.doneAt);
    }
    // Decode-front readiness and the fetch in flight. Everything else
    // that could unblock this core is an external event — inet
    // arrivals, mesh deliveries, barrier release, group formation,
    // frame-window movement — and each of those wakes us explicitly.
    if (!decodeQueue_.empty() && decodeQueue_.front().readyAt > now)
        consider(decodeQueue_.front().readyAt);
    if (fetchBusy_ && fetchReadyAt_ > now)
        consider(fetchReadyAt_);
    if (timedFaultArmed_)
        consider(std::max(timedFaultAt_, now + 1));
    return at;
}

// --- Checkpointing ----------------------------------------------------------

int
Core::cycleStatIndex() const
{
    if (cycleStat_ == statIssued_)
        return 1;
    if (cycleStat_ == statStallFrame_)
        return 2;
    if (cycleStat_ == statStallInetInput_)
        return 3;
    if (cycleStat_ == statStallBackpressure_)
        return 4;
    if (cycleStat_ == statStallOther_)
        return 5;
    if (cycleStat_ == statStallDae_)
        return 6;
    return 0;   // nullptr (no attribution yet this run).
}

std::uint64_t *
Core::cycleStatFromIndex(int idx) const
{
    switch (idx) {
      case 1: return statIssued_;
      case 2: return statStallFrame_;
      case 3: return statStallInetInput_;
      case 4: return statStallBackpressure_;
      case 5: return statStallOther_;
      case 6: return statStallDae_;
      default: return nullptr;
    }
}

template <class Ar>
void
Core::serializeFields(Ar &ar)
{
    ar(regs_, simdRegs_, predFlag_, role_, fetchPc_, fetchBusy_,
       fetchReadyAt_, fetchedInst_, fetchedIsCtl_, fetchedIsHalt_,
       fetchedIsVend_, fetchPausedForBranch_, forwardBlocked_,
       mtActive_, decodeQueue_, rob_, lq_, busy_, nextSeq_,
       nextReqId_, halted_, barrierWaiting_, joinPending_, mutated_,
       cosimFaultNth_, cosimFaultMask_, cosimWritebacks_,
       timedFaultArmed_, timedFaultAt_, timedFaultReg_,
       timedFaultMask_, spanOpen_, spanCause_, spanStart_, spanLen_,
       spanPc_, issuedPc_, icache_);
    // The exclusive-CPI attribution pointer travels as a stable
    // index: skipTicks() keeps charging it after a resume, so it is
    // load-bearing state, not a transient.
    int cs = cycleStatIndex();
    ar(cs);
    if constexpr (Ar::isReader) {
        cycleStat_ = cycleStatFromIndex(cs);
        // Host-side accelerator over the (digest-validated) program
        // image; contents never affect simulated behaviour.
        dcache_.flush();
    }
}

template void Core::serializeFields<SnapshotWriter>(SnapshotWriter &);
template void Core::serializeFields<SnapshotReader>(SnapshotReader &);

void
Core::skipTicks(Cycle begin, Cycle end)
{
    // Replay the per-cycle bookkeeping of `end - begin` provably inert
    // cycles in one step: the naive kernel would have charged each of
    // them to statCycles_ and to the same exclusive CPI counter as the
    // last executed tick (the classification is a pure function of
    // state that did not change), and extended the same trace span.
    if (halted_)
        return;  // Halted cycles charge nothing.
    std::uint64_t k = end - begin;
    *statCycles_ += k;
    if (role_ == Role::Vector || role_ == Role::Expander)
        *statVectorCycles_ += k;
    if (cycleStat_ != nullptr)
        *cycleStat_ += k;
    if (trace_ != nullptr && spanOpen_)
        spanLen_ += static_cast<std::uint32_t>(k);
}

} // namespace rockcress
