/**
 * @file
 * Architectural commit records: the co-simulation interface between
 * the cycle-level core and the functional reference model (src/ref).
 * Every instruction that retires through the ROB produces one record
 * describing its architectural effects — register writebacks, memory
 * effects, and resolved control flow — which a CommitSink (the
 * golden-model checker) consumes in commit order.
 */

#ifndef ROCKCRESS_CORE_COMMIT_HH
#define ROCKCRESS_CORE_COMMIT_HH

#include <vector>

#include "isa/instr.hh"
#include "sim/types.hh"

namespace rockcress
{

/**
 * One committed instruction's architectural effects.
 *
 * `pc` is the instruction index in the committing core's own fetch
 * stream, or -1 for instructions delivered over the inet (trailing
 * vector cores never know the expander's pc). `value` holds the
 * written register's words (one for int/fp, simdWidth lanes for SIMD
 * destinations). `aux` carries per-opcode extras: the resolved next
 * pc for branches and jumps, the predicate flag for PRED_*, the CSR
 * operand for CSRW, and {address, scratchpad offset} for VLOAD.
 */
struct CommitRecord
{
    Instruction inst;
    int pc = -1;

    bool wrote = false;           ///< A register writeback happened.
    RegIdx rd = 0;                ///< Flat destination register index.
    std::vector<Word> value;      ///< Written words (lanes for SIMD).

    bool mem = false;             ///< Instruction touched memory.
    bool isStore = false;
    Addr addr = 0;
    std::vector<Word> data;       ///< Stored words.

    std::vector<Word> aux;        ///< Opcode-specific extras (above).

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(inst, pc, wrote, rd, value, mem, isStore, addr, data, aux);
    }
};

/** Consumer of a core's commit stream (the co-simulation checker). */
class CommitSink
{
  public:
    virtual ~CommitSink() = default;

    /**
     * Called at every commit, in commit order per core. May throw to
     * abort the simulation (divergence found).
     */
    virtual void onCommit(CoreId core, Cycle now,
                          const CommitRecord &rec) = 0;
};

} // namespace rockcress

#endif // ROCKCRESS_CORE_COMMIT_HH
