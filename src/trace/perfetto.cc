#include "trace/perfetto.hh"

#include <cstdio>
#include <map>
#include <set>

namespace rockcress
{

namespace
{

/** Mesh output directions, in Mesh::Dir order. */
constexpr int kNumDirs = 5;
const char *const kDirNames[kNumDirs] = {"N", "S", "E", "W", "local"};

const char *
llcOpName(std::uint8_t sub)
{
    // sub = op * 2 + hit, MemOp order: ReadWord, WriteWord, ReadWide.
    switch (sub / 2) {
    case 0:
        return "read";
    case 1:
        return "write";
    case 2:
        return "vload";
    default:
        return "?";
    }
}

const char *
inetKindName(std::uint8_t sub)
{
    // InetMsg::Kind order: Instr, Vissue, Devec.
    switch (sub) {
    case 0:
        return "instr";
    case 1:
        return "vissue";
    case 2:
        return "devec";
    default:
        return "?";
    }
}

class Doc
{
  public:
    explicit Doc(const std::string &title)
    {
        out_.reserve(1u << 20);
        out_ += "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"title\":\"";
        out_ += title;  // Bench/config names: no escaping needed.
        out_ += "\"},\"traceEvents\":[";
    }

    void push(const std::string &ev)
    {
        if (!first_)
            out_ += ",\n";
        first_ = false;
        out_ += ev;
    }

    void meta(int pid, long tid, const char *what, const std::string &name)
    {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"M\",\"pid\":%d,\"tid\":%ld,\"name\":"
                      "\"%s\",\"args\":{\"name\":\"%s\"}}",
                      pid, tid, what, name.c_str());
        push(buf);
    }

    std::string finish()
    {
        out_ += "]}\n";
        return std::move(out_);
    }

  private:
    std::string out_;
    bool first_ = true;
};

} // namespace

std::string
perfettoJson(const TraceSink &sink, const std::string &title)
{
    Doc doc(title);
    char buf[320];

    doc.meta(0, 0, "process_name", "cores");
    doc.meta(1, 0, "process_name", "frames");
    doc.meta(2, 0, "process_name", "noc");
    doc.meta(3, 0, "process_name", "inet");
    doc.meta(4, 0, "process_name", "llc");

    // Core pipeline spans: one thread per core.
    std::set<int> coreTids;
    for (const TraceEvent &ev : sink.events(TraceKind::CoreSpan))
        coreTids.insert(ev.tile);
    for (int tid : coreTids)
        doc.meta(0, tid, "thread_name",
                 "core" + std::to_string(tid));
    for (const TraceEvent &ev : sink.events(TraceKind::CoreSpan)) {
        auto cause = static_cast<TraceCause>(ev.sub);
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%u,"
                      "\"dur\":%u,\"name\":\"%s\",\"cat\":\"core\","
                      "\"args\":{\"pc\":%d}}",
                      ev.tile, ev.cycle, ev.a, traceCauseName(cause),
                      ev.pc);
        doc.push(buf);
    }

    // Frame lifecycle: async spans keyed by (core, absolute frame).
    std::set<int> frameTids;
    for (const TraceEvent &ev : sink.events(TraceKind::Frame))
        frameTids.insert(ev.tile);
    for (int tid : frameTids)
        doc.meta(1, tid, "thread_name",
                 "spad" + std::to_string(tid));
    for (const TraceEvent &ev : sink.events(TraceKind::Frame)) {
        auto phase = static_cast<FramePhase>(ev.sub);
        const char *ph = phase == FramePhase::Fill    ? "b"
                         : phase == FramePhase::Free ? "e"
                                                     : "n";
        unsigned long long id =
            (static_cast<unsigned long long>(ev.tile) << 40) | ev.b;
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"%s\",\"pid\":1,\"tid\":%u,\"ts\":%u,"
                      "\"name\":\"frame\",\"cat\":\"frame\",\"id\":"
                      "\"0x%llx\",\"args\":{\"phase\":\"%s\",\"pc\":%d,"
                      "\"offset\":%u}}",
                      ph, ev.tile, ev.cycle, id, framePhaseName(phase),
                      ev.pc, ev.a);
        doc.push(buf);
    }

    // NoC link occupancy spans plus cumulative word counters.
    std::set<std::pair<int, int>> linkTids;
    for (const TraceEvent &ev : sink.events(TraceKind::NocLink))
        linkTids.insert({ev.tile, ev.sub});
    for (auto [node, dir] : linkTids) {
        doc.meta(2, static_cast<long>(node) * kNumDirs + dir,
                 "thread_name",
                 "r" + std::to_string(node) + "." +
                     kDirNames[dir % kNumDirs]);
    }
    std::map<std::pair<int, int>, std::uint64_t> linkWords;
    for (const TraceEvent &ev : sink.events(TraceKind::NocLink)) {
        long tid = static_cast<long>(ev.tile) * kNumDirs + ev.sub;
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":2,\"tid\":%ld,\"ts\":%u,"
                      "\"dur\":%u,\"name\":\"pkt\",\"cat\":\"noc\","
                      "\"args\":{\"words\":%llu}}",
                      tid, ev.cycle, ev.a,
                      static_cast<unsigned long long>(ev.b));
        doc.push(buf);
        std::uint64_t &words = linkWords[{ev.tile, ev.sub}];
        words += ev.b;
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"C\",\"pid\":2,\"tid\":%ld,\"ts\":%u,"
                      "\"name\":\"words r%u.%s\",\"args\":{\"words\":"
                      "%llu}}",
                      tid, ev.cycle, ev.tile,
                      kDirNames[ev.sub % kNumDirs],
                      static_cast<unsigned long long>(words));
        doc.push(buf);
    }

    // Inet hops: instants at the sending core.
    std::set<int> inetTids;
    for (const TraceEvent &ev : sink.events(TraceKind::InetHop))
        inetTids.insert(ev.tile);
    for (int tid : inetTids)
        doc.meta(3, tid, "thread_name",
                 "core" + std::to_string(tid));
    for (const TraceEvent &ev : sink.events(TraceKind::InetHop)) {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"i\",\"pid\":3,\"tid\":%u,\"ts\":%u,"
                      "\"s\":\"t\",\"name\":\"%s\",\"cat\":\"inet\","
                      "\"args\":{\"down\":%u,\"pc\":%d}}",
                      ev.tile, ev.cycle, inetKindName(ev.sub), ev.a,
                      ev.pc);
        doc.push(buf);
    }

    // LLC requests and response streams: instants per bank.
    std::set<int> llcTids;
    for (const TraceEvent &ev : sink.events(TraceKind::LlcReq))
        llcTids.insert(ev.tile);
    for (const TraceEvent &ev : sink.events(TraceKind::LlcResp))
        llcTids.insert(ev.tile);
    for (int tid : llcTids)
        doc.meta(4, tid, "thread_name", "llc" + std::to_string(tid));
    for (const TraceEvent &ev : sink.events(TraceKind::LlcReq)) {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"i\",\"pid\":4,\"tid\":%u,\"ts\":%u,"
                      "\"s\":\"t\",\"name\":\"%s %s\",\"cat\":\"llc\","
                      "\"args\":{\"addr\":%u,\"core\":%llu,\"pc\":%d}}",
                      ev.tile, ev.cycle, llcOpName(ev.sub),
                      ev.sub % 2 ? "hit" : "miss", ev.a,
                      static_cast<unsigned long long>(ev.b), ev.pc);
        doc.push(buf);
    }
    for (const TraceEvent &ev : sink.events(TraceKind::LlcResp)) {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"i\",\"pid\":4,\"tid\":%u,\"ts\":%u,"
                      "\"s\":\"t\",\"name\":\"resp\",\"cat\":\"llc\","
                      "\"args\":{\"addr\":%u,\"words\":%llu,\"pc\":%d}}",
                      ev.tile, ev.cycle, ev.a,
                      static_cast<unsigned long long>(ev.b), ev.pc);
        doc.push(buf);
    }

    return doc.finish();
}

} // namespace rockcress
