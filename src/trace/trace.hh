/**
 * @file
 * Structured event-trace subsystem (DESIGN.md S5h): a per-simulation
 * TraceSink records compact typed binary events — core pipeline
 * phases (one span per run of identically-attributed cycles), frame
 * lifecycle transitions, NoC link occupancy, inet hops, and LLC
 * request/response activity — each stamped with cycle, tile, and pc.
 *
 * Cost model: tracing is attached by pointer; a null pointer means
 * every record site is a single branch (zero cost when off, and no
 * perturbation of timing or statistics when on — the sink only
 * observes). Buffers are preallocated per category and bounded by
 * TraceOptions::maxEventsPerCategory; once a category is full,
 * further events are counted as dropped rather than recorded, so a
 * trace of a long run degrades to a sampled prefix instead of
 * exhausting memory. TraceOptions::startCycle skips the warm-up
 * prefix of a run. A trace is *full-coverage* — and only then
 * eligible for the exact CPI-stack cross-check — when it starts at
 * cycle 0 and dropped nothing.
 */

#ifndef ROCKCRESS_TRACE_TRACE_HH
#define ROCKCRESS_TRACE_TRACE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace rockcress
{

/** Event categories; each owns one preallocated buffer. */
enum class TraceKind : std::uint8_t
{
    CoreSpan,  ///< A run of identically-attributed core cycles.
    Frame,     ///< Scratchpad frame lifecycle transition.
    NocLink,   ///< A packet occupying one mesh output link.
    InetHop,   ///< One message sent on an inet chain link.
    LlcReq,    ///< Request accepted at an LLC bank's tag port.
    LlcResp,   ///< Response stream enqueued at an LLC bank.
};

constexpr int numTraceKinds = 6;

/** Per-cycle attribution of a CoreSpan (the five stall causes). */
enum class TraceCause : std::uint8_t
{
    Busy,          ///< Issued an instruction.
    Frame,         ///< Load-use / frame_start wait.
    InetInput,     ///< Vector core starved for inet input.
    Backpressure,  ///< Downstream inet queue full.
    Other,         ///< Structural (ROB/LQ/decode/barrier/...).
    Dae,           ///< vload held back by the frame-counter window.
};

/** Frame lifecycle transition (mirrors the sanitizer shadow states). */
enum class FramePhase : std::uint8_t
{
    Fill,     ///< First word of a frame round arrived (Free->Filling).
    Armed,    ///< Counter reached frame size (Filling->Armed).
    Consume,  ///< frame_start handed the frame over (Armed->Consuming).
    Free,     ///< remem released the frame (Consuming->Free).
};

const char *traceKindName(TraceKind k);
const char *traceCauseName(TraceCause c);
const char *framePhaseName(FramePhase p);

/**
 * One compact binary event (24 bytes). Field use by kind:
 *
 * kind      tile        sub           pc            a            b
 * CoreSpan  core        TraceCause    first pc      span cycles  0
 * Frame     owner core  FramePhase    attributed pc byte offset  abs frame #
 * NocLink   router      direction     -1            span cycles  words
 * InetHop   src core    InetMsg kind  msg pc        downstream   0
 * LlcReq    bank        op*2+hit      issuing pc    address      src core
 * LlcResp   bank        0             issuing pc    address      words
 */
struct TraceEvent
{
    std::uint32_t cycle = 0;  ///< Start cycle (u32: runs < 2^32 cycles).
    std::uint16_t tile = 0;   ///< Core / router node / bank index.
    std::uint8_t kind = 0;    ///< TraceKind.
    std::uint8_t sub = 0;     ///< Kind-specific discriminator.
    std::int32_t pc = -1;     ///< Attributed instruction (-1: none).
    std::uint32_t a = 0;      ///< Kind-specific (see table above).
    std::uint64_t b = 0;      ///< Kind-specific (see table above).

    bool operator==(const TraceEvent &) const = default;
};

/** Capture window and capacity knobs (RunOverrides::trace*). */
struct TraceOptions
{
    Cycle startCycle = 0;  ///< Drop events that start before this.
    /**
     * Buffers grow on demand up to this bound, so a generous default
     * costs nothing on small runs; it is sized to hold the busiest
     * category of the largest golden-suite pair (atax/NV_PF peaks at
     * ~8.8M NoC link events) with full coverage.
     */
    std::uint64_t maxEventsPerCategory = 16'777'216;
};

/**
 * The per-simulation event store. One instance is shared by every
 * component of a Machine; the machine points the sink at the
 * simulator clock so components without a `now` in scope can stamp
 * events.
 */
class TraceSink
{
  public:
    explicit TraceSink(TraceOptions opts = {});

    /** Point at the simulator's cycle counter (Machine::attachTrace). */
    void setClock(const Cycle *now) { clock_ = now; }
    /** Current simulated time (0 before a clock is attached). */
    Cycle now() const { return clock_ ? *clock_ : 0; }

    /** Record one event into its category (window/capacity checked). */
    void record(const TraceEvent &ev);

    /** @name Reading the capture. */
    ///@{
    const std::vector<TraceEvent> &events(TraceKind k) const
    {
        return buffers_[static_cast<size_t>(k)].events;
    }
    std::uint64_t recorded(TraceKind k) const
    {
        return buffers_[static_cast<size_t>(k)].events.size();
    }
    std::uint64_t dropped(TraceKind k) const
    {
        return buffers_[static_cast<size_t>(k)].dropped;
    }
    std::uint64_t recordedTotal() const;
    std::uint64_t droppedTotal() const;
    /**
     * Started at cycle 0 and dropped nothing: every simulated cycle
     * of every core is covered, so the trace-rebuilt CPI stack must
     * equal the flat counters exactly.
     */
    bool fullCoverage() const
    {
        return opts_.startCycle == 0 && droppedTotal() == 0;
    }
    /** All categories merged, stably sorted by (cycle, kind, tile). */
    std::vector<TraceEvent> sortedEvents() const;
    const TraceOptions &options() const { return opts_; }
    ///@}

  private:
    struct Buffer
    {
        std::vector<TraceEvent> events;
        std::uint64_t dropped = 0;
    };

    TraceOptions opts_;
    const Cycle *clock_ = nullptr;
    std::array<Buffer, numTraceKinds> buffers_;
};

/**
 * What a traced run reports back in its artifact (RunResult::trace).
 * Serialized into run artifacts only when enabled, so untraced run
 * artifacts — including the golden snapshots — are byte-identical to
 * the pre-trace format.
 */
struct TraceSummary
{
    bool enabled = false;
    std::uint64_t events = 0;   ///< Total events kept.
    std::uint64_t dropped = 0;  ///< Events lost to capacity limits.
    std::uint64_t coreSpans = 0;
    std::uint64_t frameEvents = 0;
    std::uint64_t nocLinkEvents = 0;
    std::uint64_t inetHopEvents = 0;
    std::uint64_t llcEvents = 0;
    bool fullCoverage = false;
    /** The trace-rebuilt CPI stack matched the flat counters. */
    bool cpiCrossChecked = false;

    bool operator==(const TraceSummary &) const = default;
};

} // namespace rockcress

#endif // ROCKCRESS_TRACE_TRACE_HH
