#include "trace/trace.hh"

#include <algorithm>
#include <limits>

namespace rockcress
{

const char *
traceKindName(TraceKind k)
{
    switch (k) {
    case TraceKind::CoreSpan:
        return "core_span";
    case TraceKind::Frame:
        return "frame";
    case TraceKind::NocLink:
        return "noc_link";
    case TraceKind::InetHop:
        return "inet_hop";
    case TraceKind::LlcReq:
        return "llc_req";
    case TraceKind::LlcResp:
        return "llc_resp";
    }
    return "?";
}

const char *
traceCauseName(TraceCause c)
{
    switch (c) {
    case TraceCause::Busy:
        return "busy";
    case TraceCause::Frame:
        return "stall_frame";
    case TraceCause::InetInput:
        return "stall_inet_input";
    case TraceCause::Backpressure:
        return "stall_backpressure";
    case TraceCause::Other:
        return "stall_other";
    case TraceCause::Dae:
        return "stall_dae";
    }
    return "?";
}

const char *
framePhaseName(FramePhase p)
{
    switch (p) {
    case FramePhase::Fill:
        return "fill";
    case FramePhase::Armed:
        return "armed";
    case FramePhase::Consume:
        return "consume";
    case FramePhase::Free:
        return "free";
    }
    return "?";
}

TraceSink::TraceSink(TraceOptions opts) : opts_(opts)
{
    // Preallocate enough that short runs never reallocate, capped so
    // a tight maxEventsPerCategory doesn't overshoot the bound.
    constexpr std::uint64_t kPrealloc = 1u << 16;
    for (Buffer &b : buffers_)
        b.events.reserve(static_cast<size_t>(
            std::min(opts_.maxEventsPerCategory, kPrealloc)));
}

void
TraceSink::record(const TraceEvent &ev)
{
    Buffer &b = buffers_[ev.kind];
    if (ev.cycle < opts_.startCycle)
        return;  // Outside the capture window: not a drop.
    if (b.events.size() >=
        static_cast<size_t>(opts_.maxEventsPerCategory)) {
        ++b.dropped;
        return;
    }
    b.events.push_back(ev);
}

std::uint64_t
TraceSink::recordedTotal() const
{
    std::uint64_t n = 0;
    for (const Buffer &b : buffers_)
        n += b.events.size();
    return n;
}

std::uint64_t
TraceSink::droppedTotal() const
{
    std::uint64_t n = 0;
    for (const Buffer &b : buffers_)
        n += b.dropped;
    return n;
}

std::vector<TraceEvent>
TraceSink::sortedEvents() const
{
    std::vector<TraceEvent> all;
    all.reserve(static_cast<size_t>(recordedTotal()));
    for (const Buffer &b : buffers_)
        all.insert(all.end(), b.events.begin(), b.events.end());
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &x, const TraceEvent &y) {
                         if (x.cycle != y.cycle)
                             return x.cycle < y.cycle;
                         if (x.kind != y.kind)
                             return x.kind < y.kind;
                         return x.tile < y.tile;
                     });
    return all;
}

} // namespace rockcress
