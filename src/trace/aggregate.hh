/**
 * @file
 * Trace aggregation: rebuild the fig12 CPI stack and a NoC
 * link-utilization table from a captured event trace, and cross-check
 * the rebuilt stack against the simulator's flat statistics counters.
 * On a full-coverage trace the two must agree *exactly* — every core
 * cycle is attributed to exactly one cause by the issue stage, and
 * the trace records precisely those attributions as spans — so any
 * difference is a bug in either the span compression or the counter
 * bookkeeping, and the harness fails the run.
 */

#ifndef ROCKCRESS_TRACE_AGGREGATE_HH
#define ROCKCRESS_TRACE_AGGREGATE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace rockcress
{

/** One core's (or the fleet's) cycle-attribution totals. */
struct CpiStack
{
    std::uint64_t busy = 0;  ///< Cycles that issued an instruction.
    std::uint64_t frame = 0;
    std::uint64_t inetInput = 0;
    std::uint64_t backpressure = 0;
    std::uint64_t other = 0;
    std::uint64_t dae = 0;

    std::uint64_t total() const
    {
        return busy + frame + inetInput + backpressure + other + dae;
    }
    std::uint64_t &of(TraceCause c);
    std::uint64_t of(TraceCause c) const;
    bool operator==(const CpiStack &) const = default;
};

/** Occupancy of one mesh output link over the capture window. */
struct LinkUse
{
    int node = 0;                  ///< Router id (row-major grid).
    int dir = 0;                   ///< Output direction (Mesh::Dir).
    std::uint64_t busyCycles = 0;  ///< Cycles the link was occupied.
    std::uint64_t words = 0;       ///< Payload words launched.
};

/** Everything the summarize/export paths derive from a trace. */
struct TraceAggregate
{
    CpiStack cpi;                        ///< Summed over all cores.
    std::map<int, CpiStack> perCore;
    std::vector<LinkUse> links;          ///< Sorted by (node, dir).
    std::map<int, std::uint64_t> framesPerCore;  ///< Free transitions.
    Cycle firstCycle = 0;
    Cycle lastCycle = 0;
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;
    bool fullCoverage = false;
};

/** Fold a captured trace into totals (deterministic). */
TraceAggregate aggregateTrace(const TraceSink &sink);

/** Flat-counter totals to reconcile a full-coverage trace against. */
struct CpiTotals
{
    std::uint64_t cycles = 0;
    std::uint64_t issued = 0;
    std::uint64_t stallFrame = 0;
    std::uint64_t stallInet = 0;
    std::uint64_t stallBackpressure = 0;
    std::uint64_t stallOther = 0;  ///< stall_other only (not dae).
    std::uint64_t stallDae = 0;
};

/**
 * Compare the trace-rebuilt stack against flat counters.
 * @return An empty string when every component matches exactly, else
 *         a human-readable description of the first mismatch.
 */
std::string crossCheckCpi(const TraceAggregate &agg,
                          const CpiTotals &want);

} // namespace rockcress

#endif // ROCKCRESS_TRACE_AGGREGATE_HH
