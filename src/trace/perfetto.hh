/**
 * @file
 * Chrome trace-event JSON export (loadable in Perfetto / chrome://
 * tracing). The capture is laid out as five processes:
 *
 *   pid 0 "cores"   one thread per core; complete ("X") spans named
 *                   by cycle attribution (busy / the five stalls),
 *                   with the attributed pc in args.
 *   pid 1 "frames"  per-core async spans ("b"/"n"/"e"), one per frame
 *                   round: begins at first fill, instants at armed
 *                   and consume, ends at free.
 *   pid 2 "noc"     one thread per (router, direction) output link;
 *                   "X" spans while a packet occupies the link, plus
 *                   a cumulative words counter ("C") track per link.
 *   pid 3 "inet"    instants per source core for every chain hop.
 *   pid 4 "llc"     instants per bank for requests (hit/miss) and
 *                   response streams.
 *
 * Timestamps are simulated cycles, durations likewise; the exported
 * document is strict JSON (validated by the Json parser in tests and
 * by rc_trace before writing).
 */

#ifndef ROCKCRESS_TRACE_PERFETTO_HH
#define ROCKCRESS_TRACE_PERFETTO_HH

#include <string>

#include "trace/trace.hh"

namespace rockcress
{

/** Serialize a capture as Chrome trace-event JSON. */
std::string perfettoJson(const TraceSink &sink,
                         const std::string &title);

} // namespace rockcress

#endif // ROCKCRESS_TRACE_PERFETTO_HH
