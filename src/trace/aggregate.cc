#include "trace/aggregate.hh"

#include <algorithm>
#include <sstream>

namespace rockcress
{

std::uint64_t &
CpiStack::of(TraceCause c)
{
    switch (c) {
    case TraceCause::Busy:
        return busy;
    case TraceCause::Frame:
        return frame;
    case TraceCause::InetInput:
        return inetInput;
    case TraceCause::Backpressure:
        return backpressure;
    case TraceCause::Other:
        return other;
    case TraceCause::Dae:
        return dae;
    }
    return other;
}

std::uint64_t
CpiStack::of(TraceCause c) const
{
    return const_cast<CpiStack *>(this)->of(c);
}

TraceAggregate
aggregateTrace(const TraceSink &sink)
{
    TraceAggregate agg;
    agg.events = sink.recordedTotal();
    agg.dropped = sink.droppedTotal();
    agg.fullCoverage = sink.fullCoverage();

    bool first = true;
    auto touch = [&](const TraceEvent &ev, Cycle end) {
        if (first || ev.cycle < agg.firstCycle)
            agg.firstCycle = ev.cycle;
        if (first || end > agg.lastCycle)
            agg.lastCycle = end;
        first = false;
    };

    for (const TraceEvent &ev : sink.events(TraceKind::CoreSpan)) {
        auto cause = static_cast<TraceCause>(ev.sub);
        CpiStack &core = agg.perCore[ev.tile];
        core.of(cause) += ev.a;
        agg.cpi.of(cause) += ev.a;
        touch(ev, static_cast<Cycle>(ev.cycle) + ev.a);
    }

    std::map<std::pair<int, int>, LinkUse> links;
    for (const TraceEvent &ev : sink.events(TraceKind::NocLink)) {
        LinkUse &l = links[{ev.tile, ev.sub}];
        l.node = ev.tile;
        l.dir = ev.sub;
        l.busyCycles += ev.a;
        l.words += ev.b;
        touch(ev, static_cast<Cycle>(ev.cycle) + ev.a);
    }
    for (const auto &[key, use] : links)
        agg.links.push_back(use);

    for (const TraceEvent &ev : sink.events(TraceKind::Frame)) {
        if (static_cast<FramePhase>(ev.sub) == FramePhase::Free)
            agg.framesPerCore[ev.tile] += 1;
        touch(ev, ev.cycle);
    }
    for (const TraceEvent &ev : sink.events(TraceKind::InetHop))
        touch(ev, ev.cycle);
    for (const TraceEvent &ev : sink.events(TraceKind::LlcReq))
        touch(ev, ev.cycle);
    for (const TraceEvent &ev : sink.events(TraceKind::LlcResp))
        touch(ev, ev.cycle);

    return agg;
}

std::string
crossCheckCpi(const TraceAggregate &agg, const CpiTotals &want)
{
    struct Row
    {
        const char *name;
        std::uint64_t got;
        std::uint64_t want;
    };
    const Row rows[] = {
        {"busy", agg.cpi.busy, want.issued},
        {"stall_frame", agg.cpi.frame, want.stallFrame},
        {"stall_inet_input", agg.cpi.inetInput, want.stallInet},
        {"stall_backpressure", agg.cpi.backpressure,
         want.stallBackpressure},
        {"stall_other", agg.cpi.other, want.stallOther},
        {"stall_dae", agg.cpi.dae, want.stallDae},
        {"cycles", agg.cpi.total(), want.cycles},
    };
    for (const Row &r : rows) {
        if (r.got != r.want) {
            std::ostringstream os;
            os << "trace CPI cross-check: " << r.name << " from trace "
               << r.got << " != flat counter " << r.want;
            return os.str();
        }
    }
    return std::string();
}

} // namespace rockcress
